package streamlake

// Silent-corruption drills: seeded corruption is planted in replicated
// and EC-coded PLog copies mid-workload, and the integrity layer must
// hold the line — consumers never observe a wrong payload byte, the
// scrubber detects every injected corruption within a bounded
// virtual-time window, and repair restores full redundancy.

import (
	"fmt"
	"testing"
	"time"
)

// corruptWorkload publishes total keyed messages, planting one random
// silent corruption at each trigger index and running a background
// scrub pass every scrubEvery messages (0 = none). The periodic scrub
// is what bounds the window in which independent corruptions can stack
// up on the same extent's redundancy set — exactly why production
// scrubbers run continuously. Returns how many corruptions landed.
func corruptWorkload(t *testing.T, lake *Lake, topic string, total int, triggers []int, scrubEvery int) int {
	t.Helper()
	p := lake.Producer("")
	trig := make(map[int]bool, len(triggers))
	for _, i := range triggers {
		trig[i] = true
	}
	injected := 0
	for i := 0; i < total; i++ {
		if trig[i] {
			if _, err := lake.Faults().CorruptRandom("ssd"); err != nil {
				t.Fatalf("corrupt at %d: %v", i, err)
			}
			injected++
		}
		if scrubEvery > 0 && i > 0 && i%scrubEvery == 0 {
			if _, err := lake.RunScrub(); err != nil {
				t.Fatalf("scrub at %d: %v", i, err)
			}
		}
		if _, _, err := p.Send(topic, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	return injected
}

// drainVerify consumes every message from offset zero and checks every
// payload byte: key k<i> must carry value v<i>. This is the
// zero-wrong-bytes assertion — with verification on, a corrupt copy may
// cost a fallback read but must never leak damage into a payload.
func drainVerify(t *testing.T, lake *Lake, topic string, want int) {
	t.Helper()
	c := lake.Consumer("corruption-check")
	if err := c.Subscribe(topic); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			if len(m.Key) < 1 || string(m.Value) != "v"+string(m.Key[1:]) {
				t.Fatalf("wrong payload bytes observed: key=%q value=%q", m.Key, m.Value)
			}
		}
		total += len(msgs)
	}
	if total != want {
		t.Fatalf("consumed %d/%d messages", total, want)
	}
}

// scrubAndVerifyHealed sweeps the whole population, then asserts every
// injected corruption was detected (by a read or the scrubber), repair
// restored full redundancy, and the detect+repair loop fit in a bounded
// virtual-time window.
func scrubAndVerifyHealed(t *testing.T, lake *Lake, injected int) {
	t.Helper()
	before := lake.Clock().Now()
	rep, err := lake.ScrubCycle()
	if err != nil {
		t.Fatalf("scrub cycle: %v", err)
	}
	elapsed := lake.Clock().Now() - before
	if !rep.FullCycle || rep.LogsScanned == 0 || rep.BytesScanned == 0 {
		t.Fatalf("scrub did not sweep the population: %+v", rep)
	}
	if elapsed <= 0 {
		t.Fatal("scrub consumed no virtual time")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("detect+repair window unbounded: %v of virtual time", elapsed)
	}
	integ := lake.Integrity()
	if integ.Injected != int64(injected) {
		t.Fatalf("injected %d corruptions, plog layer saw %d", injected, integ.Injected)
	}
	// Every injection lands on a healthy copy, so each one must be
	// detected exactly once — by a foreground read's verification or by
	// the scrubber — and quarantined.
	if integ.Mismatches != int64(injected) {
		t.Fatalf("detected %d/%d corruptions: %+v", integ.Mismatches, injected, integ)
	}
	if integ.Quarantined == 0 {
		t.Fatalf("nothing quarantined: %+v", integ)
	}
	if st := lake.Stats(); st.DegradedLogs != 0 || st.StaleBytes != 0 {
		t.Fatalf("redundancy not restored after scrub+repair: %+v", st)
	}
	// The repair work is visible in the services' stats.
	if rs := lake.Repairer().Stats(); rs.RepairedBytes == 0 {
		t.Fatalf("repair stats show no restored bytes: %+v", rs)
	}
	if ss := lake.Scrubber().Stats(); ss.BytesScanned == 0 || ss.Passes == 0 {
		t.Fatalf("scrub stats empty: %+v", ss)
	}
	// A follow-up sweep finds a clean lake.
	again, err := lake.ScrubCycle()
	if err != nil {
		t.Fatal(err)
	}
	if again.Mismatches != 0 {
		t.Fatalf("second sweep still found corruption: %+v", again)
	}
}

func TestSilentCorruptionReplicatedWorkload(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "rep", StreamNum: 2, Redundancy: ReplicateN(3)}); err != nil {
		t.Fatal(err)
	}
	// Streams flush to their PLog chains every 256 records, so with two
	// streams the first corruptible extents exist around message ~512;
	// the drills trigger after that.
	const total = 1500
	injected := corruptWorkload(t, lake, "rep", total, []int{600, 900, 1100, 1300}, 250)
	drainVerify(t, lake, "rep", total)
	scrubAndVerifyHealed(t, lake, injected)
	// The lake keeps serving cleanly after the drill.
	corruptWorkload(t, lake, "rep", 50, nil, 0)
	drainVerify(t, lake, "rep", total+50)
}

func TestSilentCorruptionErasureCodedWorkload(t *testing.T) {
	lake, err := Open(Config{SSDDisks: 8, PLogCapacity: 64 << 10, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "ec", StreamNum: 1, Redundancy: EC(4, 2)}); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	injected := corruptWorkload(t, lake, "ec", total, []int{300, 600, 900}, 250)
	drainVerify(t, lake, "ec", total)
	scrubAndVerifyHealed(t, lake, injected)
	drainVerify(t, lake, "ec", total)
}

// TestBackgroundBitFlipRate runs the drill with a standing per-byte
// corruption rate instead of point injections: corruption accrues with
// the write volume, consumers stay clean, and the scrub loop heals
// everything once the rate is cleared.
func TestBackgroundBitFlipRate(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "rot", StreamNum: 2, Redundancy: ReplicateN(3)}); err != nil {
		t.Fatal(err)
	}
	if err := lake.Faults().SetBitFlipRate("ssd", 2e-4); err != nil {
		t.Fatal(err)
	}
	const total = 1500
	corruptWorkload(t, lake, "rot", total, nil, 250)
	lake.Faults().Clear() // rot stops; the damage stays
	injected := len(lake.Faults().CorruptionLog())
	if injected == 0 {
		t.Fatal("bit-flip rate produced no corruption over the workload")
	}
	if st := lake.Faults().Stats(); st.InjectedCorruptions != int64(injected) {
		t.Fatalf("stats disagree with corruption log: %+v vs %d", st, injected)
	}
	drainVerify(t, lake, "rot", total)
	scrubAndVerifyHealed(t, lake, injected)
}

// TestSilentCorruptionDeterministic replays a full drill from the same
// seed and requires identical corruption placement and stats — the
// reproducibility contract of the fault layer.
func TestSilentCorruptionDeterministic(t *testing.T) {
	run := func() ([]CorruptionEvent, IntegrityStats) {
		lake, err := Open(Config{PLogCapacity: 64 << 10, Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		if err := lake.CreateTopic(TopicConfig{Name: "det", StreamNum: 2, Redundancy: ReplicateN(3)}); err != nil {
			t.Fatal(err)
		}
		if err := lake.Faults().SetBitFlipRate("ssd", 2e-4); err != nil {
			t.Fatal(err)
		}
		corruptWorkload(t, lake, "det", 800, []int{600, 700}, 250)
		if _, err := lake.ScrubCycle(); err != nil {
			t.Fatal(err)
		}
		return lake.Faults().CorruptionLog(), lake.Integrity()
	}
	evA, stA := run()
	evB, stB := run()
	if len(evA) != len(evB) {
		t.Fatalf("corruption logs diverged: %d vs %d events", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("event %d differs: %v vs %v", i, evA[i], evB[i])
		}
	}
	if stA != stB {
		t.Fatalf("integrity stats diverged: %+v vs %+v", stA, stB)
	}
}
