package streamlake

// Cross-module integration and failure-injection tests: scenarios that
// span the stream service, conversion, lakehouse, and the simulated
// storage substrate, including degraded operation after disk failures.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tiering"
)

// TestDegradedReadsAfterDiskFailure injects a disk failure under a
// replicated stream object and verifies reads continue from surviving
// replicas, then reconstructs and verifies full health.
func TestDegradedReadsAfterDiskFailure(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("it", clock, sim.NVMeSSD, 4, 4<<20)
	store := streamobj.NewStore(clock, plog.NewManager(p, 1<<20))
	svc := streamsvc.New(clock, store, 2)
	if err := svc.CreateTopic(streamsvc.TopicConfig{Name: "t", StreamNum: 2, Redundancy: plog.ReplicateN(3)}); err != nil {
		t.Fatal(err)
	}
	prod := svc.Producer("p")
	for i := 0; i < 1000; i++ {
		if _, _, err := prod.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a disk. Three-way replication tolerates it.
	if err := p.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	c := svc.Consumer("g")
	c.Subscribe("t")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatalf("degraded poll: %v", err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 1000 {
		t.Fatalf("degraded read returned %d/1000 messages", total)
	}
	// Reconstruction restores redundancy; service keeps working.
	migrated, _, err := p.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("nothing reconstructed")
	}
	if _, _, err := prod.Send("t", []byte("after"), []byte("recovery")); err != nil {
		t.Fatalf("produce after reconstruction: %v", err)
	}
}

// TestOneCopyLifecycle exercises the paper's central storage story end
// to end: ingest, convert with delete_msg, verify the stream copy is
// reclaimed while the table answers queries, then play the table back
// into a stream.
func TestOneCopyLifecycle(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema("url:string", "ts:int64", "province:string")
	if err := lake.CreateTopic(TopicConfig{
		Name: "events", StreamNum: 1,
		Convert: ConvertConfig{
			Enabled: true, TableName: "events_tbl", TablePath: "/events",
			TableSchema: schema, PartitionColumn: "province",
			SplitOffset: 100, DeleteMsg: true,
		},
	}); err != nil {
		t.Fatal(err)
	}
	p := lake.Producer("src")
	for i := 0; i < 3000; i++ {
		row := Row{StringValue("u"), IntValue(int64(i)), StringValue([]string{"B", "S"}[i%2])}
		val, _ := EncodeRow(schema, row)
		if _, _, err := p.Send("events", []byte(fmt.Sprint(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	physBefore := lake.Stats().PhysicalBytes
	results, _, err := lake.RunConversion()
	if err != nil || len(results) != 1 {
		t.Fatalf("conversion: %+v %v", results, err)
	}
	if results[0].FreedLog == 0 {
		t.Fatal("delete_msg reclaimed nothing")
	}
	// The one remaining copy answers SQL.
	res, err := lake.Query("select count(*) from events_tbl group by province")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("query: %+v %v", res, err)
	}
	// Physical storage did not double from the conversion: the stream
	// side was reclaimed (columnar table + redundancy remains).
	physAfter := lake.Stats().PhysicalBytes
	if physAfter > physBefore {
		t.Fatalf("conversion grew storage: %d -> %d", physBefore, physAfter)
	}
	// Reverse conversion: play the table back as a stream.
	snap, err := lake.TableSnapshot("events_tbl")
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "replay", StreamNum: 2}); err != nil {
		t.Fatal(err)
	}
	n, _, err := lake.Playback("events_tbl", snap, "replay")
	if err != nil || n != 3000 {
		t.Fatalf("playback: %d %v", n, err)
	}
}

// TestConcurrentPipelines runs producers, conversion, and queries
// concurrently under the race detector.
func TestConcurrentPipelines(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema("k:string", "v:int64", "p:string")
	if err := lake.CreateTopic(TopicConfig{
		Name: "hot", StreamNum: 4,
		Convert: ConvertConfig{
			Enabled: true, TableName: "hot_tbl", TablePath: "/hot",
			TableSchema: schema, PartitionColumn: "p", SplitOffset: 200,
		},
	}); err != nil {
		t.Fatal(err)
	}
	var producers sync.WaitGroup
	for w := 0; w < 3; w++ {
		producers.Add(1)
		go func(w int) {
			defer producers.Done()
			p := lake.Producer(fmt.Sprintf("p%d", w))
			for i := 0; i < 800; i++ {
				row := Row{StringValue("k"), IntValue(int64(i)), StringValue("A")}
				val, _ := EncodeRow(schema, row)
				if _, _, err := p.Send("hot", []byte(fmt.Sprintf("%d-%d", w, i)), val); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Converter loop runs until the producers finish.
	stop := make(chan struct{})
	var services sync.WaitGroup
	services.Add(1)
	go func() {
		defer services.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := lake.RunConversion(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// A consumer polls concurrently.
	services.Add(1)
	go func() {
		defer services.Done()
		c := lake.Consumer("watcher")
		c.Subscribe("hot")
		for i := 0; i < 50; i++ {
			if _, _, err := c.Poll(100); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	producers.Wait()
	close(stop)
	services.Wait()

	// Final conversion drains everything; the table must hold all rows.
	if _, _, err := lake.ConvertNow("hot"); err != nil {
		t.Fatal(err)
	}
	res, err := lake.Query("select count(*) from hot_tbl")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "2400" {
		t.Fatalf("table rows: %v, want 2400", res.Rows)
	}
}

// TestECFaultToleranceEndToEnd uses erasure-coded streams and verifies
// the system survives exactly M disk failures and not more.
func TestECFaultToleranceEndToEnd(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("ec-it", clock, sim.NVMeSSD, 6, 4<<20)
	store := streamobj.NewStore(clock, plog.NewManager(p, 1<<20))
	obj, err := store.Create(streamobj.CreateOptions{Topic: "t", Redundancy: plog.EC(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, _, err := obj.Append([]streamobj.Record{{Key: []byte("k"), Value: []byte(fmt.Sprintf("v%d", i))}}, "p", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// M=2 failures: still readable.
	p.FailDisk(0)
	p.FailDisk(1)
	recs, _, err := obj.Read(0, streamobj.ReadCtrl{MaxRecords: 10})
	if err != nil || len(recs) != 10 {
		t.Fatalf("read with 2 failures: %d %v", len(recs), err)
	}
	// Third failure exceeds fault tolerance for stripes touching all
	// three disks; at least some reads must now fail.
	p.FailDisk(2)
	failed := false
	for off := int64(0); off < obj.End(); off += 256 {
		if _, _, err := obj.Read(off, streamobj.ReadCtrl{MaxRecords: 1}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no read failed with 3 of 6 disks down under EC(4,2)")
	}
}

// TestTieringLifecycleWithArchiver wires the tiering service and
// archiver to a topic and verifies cold data drains off the hot tier.
func TestTieringLifecycleWithArchiver(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{
		Name: "history", StreamNum: 1,
		Archive: ArchiveConfig{Enabled: true, ArchiveBytes: 10 << 10, RowToCol: true},
	}); err != nil {
		t.Fatal(err)
	}
	p := lake.Producer("gen")
	for i := 0; i < 2000; i++ {
		if _, _, err := p.Send("history", []byte("sensor"), []byte(fmt.Sprintf("reading-%06d", i%50))); err != nil {
			t.Fatal(err)
		}
	}
	arch := lake.Archiver()
	results, _, err := arch.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("archive: %+v %v", results, err)
	}
	if results[0].Freed == 0 || results[0].ArchivedBytes >= results[0].RawBytes {
		t.Fatalf("archive result: %+v", results[0])
	}
	st := lake.Tiering().Stats()
	if st.BytesPerTier[tiering.Archive] == 0 {
		t.Fatal("nothing landed in the archive tier")
	}
}
