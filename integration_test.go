package streamlake

// Cross-module integration and failure-injection tests: scenarios that
// span the stream service, conversion, lakehouse, and the simulated
// storage substrate, including degraded operation after disk failures.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tiering"
)

// TestDegradedReadsAfterDiskFailure injects a disk failure under a
// replicated stream object and verifies reads continue from surviving
// replicas, then reconstructs and verifies full health.
func TestDegradedReadsAfterDiskFailure(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("it", clock, sim.NVMeSSD, 4, 4<<20)
	store := streamobj.NewStore(clock, plog.NewManager(p, 1<<20))
	svc := streamsvc.New(clock, store, 2)
	if err := svc.CreateTopic(streamsvc.TopicConfig{Name: "t", StreamNum: 2, Redundancy: plog.ReplicateN(3)}); err != nil {
		t.Fatal(err)
	}
	prod := svc.Producer("p")
	for i := 0; i < 1000; i++ {
		if _, _, err := prod.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill a disk. Three-way replication tolerates it.
	if err := p.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	c := svc.Consumer("g")
	c.Subscribe("t")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatalf("degraded poll: %v", err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 1000 {
		t.Fatalf("degraded read returned %d/1000 messages", total)
	}
	// Reconstruction restores redundancy; service keeps working.
	migrated, _, err := p.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("nothing reconstructed")
	}
	if _, _, err := prod.Send("t", []byte("after"), []byte("recovery")); err != nil {
		t.Fatalf("produce after reconstruction: %v", err)
	}
}

// TestOneCopyLifecycle exercises the paper's central storage story end
// to end: ingest, convert with delete_msg, verify the stream copy is
// reclaimed while the table answers queries, then play the table back
// into a stream.
func TestOneCopyLifecycle(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema("url:string", "ts:int64", "province:string")
	if err := lake.CreateTopic(TopicConfig{
		Name: "events", StreamNum: 1,
		Convert: ConvertConfig{
			Enabled: true, TableName: "events_tbl", TablePath: "/events",
			TableSchema: schema, PartitionColumn: "province",
			SplitOffset: 100, DeleteMsg: true,
		},
	}); err != nil {
		t.Fatal(err)
	}
	p := lake.Producer("src")
	for i := 0; i < 3000; i++ {
		row := Row{StringValue("u"), IntValue(int64(i)), StringValue([]string{"B", "S"}[i%2])}
		val, _ := EncodeRow(schema, row)
		if _, _, err := p.Send("events", []byte(fmt.Sprint(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	physBefore := lake.Stats().PhysicalBytes
	results, _, err := lake.RunConversion()
	if err != nil || len(results) != 1 {
		t.Fatalf("conversion: %+v %v", results, err)
	}
	if results[0].FreedLog == 0 {
		t.Fatal("delete_msg reclaimed nothing")
	}
	// The one remaining copy answers SQL.
	res, err := lake.Query("select count(*) from events_tbl group by province")
	if err != nil || len(res.Rows) != 2 {
		t.Fatalf("query: %+v %v", res, err)
	}
	// Physical storage did not double from the conversion: the stream
	// side was reclaimed (columnar table + redundancy remains).
	physAfter := lake.Stats().PhysicalBytes
	if physAfter > physBefore {
		t.Fatalf("conversion grew storage: %d -> %d", physBefore, physAfter)
	}
	// Reverse conversion: play the table back as a stream.
	snap, err := lake.TableSnapshot("events_tbl")
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "replay", StreamNum: 2}); err != nil {
		t.Fatal(err)
	}
	n, _, err := lake.Playback("events_tbl", snap, "replay")
	if err != nil || n != 3000 {
		t.Fatalf("playback: %d %v", n, err)
	}
}

// TestConcurrentPipelines runs producers, conversion, and queries
// concurrently under the race detector.
func TestConcurrentPipelines(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	schema := MustSchema("k:string", "v:int64", "p:string")
	if err := lake.CreateTopic(TopicConfig{
		Name: "hot", StreamNum: 4,
		Convert: ConvertConfig{
			Enabled: true, TableName: "hot_tbl", TablePath: "/hot",
			TableSchema: schema, PartitionColumn: "p", SplitOffset: 200,
		},
	}); err != nil {
		t.Fatal(err)
	}
	var producers sync.WaitGroup
	for w := 0; w < 3; w++ {
		producers.Add(1)
		go func(w int) {
			defer producers.Done()
			p := lake.Producer(fmt.Sprintf("p%d", w))
			for i := 0; i < 800; i++ {
				row := Row{StringValue("k"), IntValue(int64(i)), StringValue("A")}
				val, _ := EncodeRow(schema, row)
				if _, _, err := p.Send("hot", []byte(fmt.Sprintf("%d-%d", w, i)), val); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Converter loop runs until the producers finish.
	stop := make(chan struct{})
	var services sync.WaitGroup
	services.Add(1)
	go func() {
		defer services.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := lake.RunConversion(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// A consumer polls concurrently.
	services.Add(1)
	go func() {
		defer services.Done()
		c := lake.Consumer("watcher")
		c.Subscribe("hot")
		for i := 0; i < 50; i++ {
			if _, _, err := c.Poll(100); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	producers.Wait()
	close(stop)
	services.Wait()

	// Final conversion drains everything; the table must hold all rows.
	if _, _, err := lake.ConvertNow("hot"); err != nil {
		t.Fatal(err)
	}
	res, err := lake.Query("select count(*) from hot_tbl")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "2400" {
		t.Fatalf("table rows: %v, want 2400", res.Rows)
	}
}

// TestECFaultToleranceEndToEnd uses erasure-coded streams and verifies
// the system survives exactly M disk failures and not more.
func TestECFaultToleranceEndToEnd(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("ec-it", clock, sim.NVMeSSD, 6, 4<<20)
	store := streamobj.NewStore(clock, plog.NewManager(p, 1<<20))
	obj, err := store.Create(streamobj.CreateOptions{Topic: "t", Redundancy: plog.EC(4, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, _, err := obj.Append([]streamobj.Record{{Key: []byte("k"), Value: []byte(fmt.Sprintf("v%d", i))}}, "p", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// M=2 failures: still readable.
	p.FailDisk(0)
	p.FailDisk(1)
	recs, _, err := obj.Read(0, streamobj.ReadCtrl{MaxRecords: 10})
	if err != nil || len(recs) != 10 {
		t.Fatalf("read with 2 failures: %d %v", len(recs), err)
	}
	// Third failure exceeds fault tolerance for stripes touching all
	// three disks; at least some reads must now fail.
	p.FailDisk(2)
	failed := false
	for off := int64(0); off < obj.End(); off += 256 {
		if _, _, err := obj.Read(off, streamobj.ReadCtrl{MaxRecords: 1}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no read failed with 3 of 6 disks down under EC(4,2)")
	}
}

// faultWorkload produces total messages on topic, invoking kill(i) before
// message i for each scheduled kill, and asserts every append succeeds
// (degraded writes must absorb the failures). It returns the produced
// count.
func faultWorkload(t *testing.T, lake *Lake, topic string, total int, kills map[int]func()) {
	t.Helper()
	p := lake.Producer("") // fresh identity: repeated calls must not dedupe

	for i := 0; i < total; i++ {
		if kill := kills[i]; kill != nil {
			kill()
		}
		if _, _, err := p.Send(topic, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("append %d with disks down: %v", i, err)
		}
	}
}

// drainAll consumes every message of a topic from offset zero and
// verifies the count — the zero-data-loss check after fault injection.
func drainAll(t *testing.T, lake *Lake, topic string, want int) {
	t.Helper()
	c := lake.Consumer("fault-check")
	if err := c.Subscribe(topic); err != nil {
		t.Fatal(err)
	}
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatalf("poll after faults: %v", err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != want {
		t.Fatalf("consumed %d/%d messages after faults", total, want)
	}
}

// TestFaultInjectionReplicatedWorkload kills FaultTolerance disks
// mid-workload under 3-way replication: appends keep succeeding
// (degraded), no message is lost, and the repair service restores full
// redundancy in bounded virtual time while the dead disks stay dead.
func TestFaultInjectionReplicatedWorkload(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "rep", StreamNum: 2, Redundancy: ReplicateN(3)}); err != nil {
		t.Fatal(err)
	}
	inj := lake.Faults()
	// Streams flush a slice to their PLog chain every 256 records; the
	// kills land between flushes so later flushes append to chains whose
	// placement groups contain dead disks.
	const total = 2000
	faultWorkload(t, lake, "rep", total, map[int]func(){
		600: func() {
			if err := inj.KillDisk("ssd", 0); err != nil {
				t.Fatal(err)
			}
		},
		1200: func() {
			if _, err := inj.KillRandomDisk("ssd"); err != nil {
				t.Fatal(err)
			}
		},
	})
	if len(inj.KilledDisks()) != 2 {
		t.Fatalf("killed disks: %v", inj.KilledDisks())
	}
	st := lake.Stats()
	if st.DegradedLogs == 0 || st.StaleBytes == 0 {
		t.Fatalf("no degradation recorded after 2 disk kills: %+v", st)
	}
	drainAll(t, lake, "rep", total)
	// Repair with the disks still dead: stale copies relocate onto the
	// surviving disks.
	before := lake.Clock().Now()
	rep, ok := lake.RepairUntilRedundant(8)
	if !ok {
		t.Fatalf("redundancy not restored: %+v", rep)
	}
	if rep.RepairedBytes == 0 || rep.Cost <= 0 {
		t.Fatalf("repair report: %+v", rep)
	}
	elapsed := lake.Clock().Now() - before
	if elapsed < rep.Cost {
		t.Fatalf("repair cost %v not charged to the clock (elapsed %v)", rep.Cost, elapsed)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("repair took unbounded virtual time: %v", elapsed)
	}
	if st := lake.Stats(); st.DegradedLogs != 0 || st.StaleBytes != 0 {
		t.Fatalf("stale state after repair: %+v", st)
	}
	// The lake keeps serving: appends and reads work post-repair.
	faultWorkload(t, lake, "rep", 50, nil)
	drainAll(t, lake, "rep", total+50)
}

// TestFaultInjectionErasureCodedWorkload is the EC(4,2) variant: exactly
// M=2 disks die mid-workload, appends degrade but never fail, reads
// reconstruct from K shards, and repair re-encodes the missing columns
// onto spare disks.
func TestFaultInjectionErasureCodedWorkload(t *testing.T) {
	lake, err := Open(Config{SSDDisks: 8, PLogCapacity: 64 << 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{Name: "ec", StreamNum: 1, Redundancy: EC(4, 2)}); err != nil {
		t.Fatal(err)
	}
	inj := lake.Faults()
	const total = 800
	faultWorkload(t, lake, "ec", total, map[int]func(){
		300: func() {
			if err := inj.KillDisk("ssd", 0); err != nil {
				t.Fatal(err)
			}
		},
		600: func() {
			if err := inj.KillDisk("ssd", 1); err != nil {
				t.Fatal(err)
			}
		},
	})
	drainAll(t, lake, "ec", total)
	rep, ok := lake.RepairUntilRedundant(8)
	if !ok {
		t.Fatalf("EC redundancy not restored: %+v", rep)
	}
	if st := lake.Stats(); st.DegradedLogs != 0 || st.StaleBytes != 0 {
		t.Fatalf("stale state after EC repair: %+v", st)
	}
	// Reconstruction I/O was charged to the pool.
	if ps := lake.SSDPool().Stats(); ps.Reconstructed == 0 {
		t.Fatalf("no reconstruction recorded: %+v", ps)
	}
	drainAll(t, lake, "ec", total)
	faultWorkload(t, lake, "ec", 50, nil)
}

// TestTransientWriteErrorsAbsorbedAndRepaired drives a seeded transient
// write-error rate through a replicated workload: appends degrade, the
// repair service heals the fallout once the error burst ends, and the
// whole scenario replays deterministically from the lake seed.
func TestTransientWriteErrorsAbsorbedAndRepaired(t *testing.T) {
	run := func() (int64, int64) {
		lake, err := Open(Config{PLogCapacity: 64 << 10, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		if err := lake.CreateTopic(TopicConfig{Name: "flaky", StreamNum: 1, Redundancy: ReplicateN(3)}); err != nil {
			t.Fatal(err)
		}
		lake.Faults().SetWriteErrorRate(0.2)
		faultWorkload(t, lake, "flaky", 300, nil)
		injected := lake.Faults().Stats().InjectedWriteErrors
		if injected == 0 {
			t.Fatal("no transient errors injected at rate 0.2")
		}
		stale := lake.Stats().StaleBytes
		if stale == 0 {
			t.Fatal("transient write errors left no stale copies")
		}
		drainAll(t, lake, "flaky", 300)
		lake.Faults().SetWriteErrorRate(0)
		if rep, ok := lake.RepairUntilRedundant(8); !ok {
			t.Fatalf("repair after transient errors: %+v", rep)
		}
		drainAll(t, lake, "flaky", 300)
		return injected, stale
	}
	i1, s1 := run()
	i2, s2 := run()
	if i1 != i2 || s1 != s2 {
		t.Fatalf("seeded scenario not deterministic: (%d,%d) vs (%d,%d)", i1, s1, i2, s2)
	}
}

// TestTieringLifecycleWithArchiver wires the tiering service and
// archiver to a topic and verifies cold data drains off the hot tier.
func TestTieringLifecycleWithArchiver(t *testing.T) {
	lake, err := Open(Config{PLogCapacity: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(TopicConfig{
		Name: "history", StreamNum: 1,
		Archive: ArchiveConfig{Enabled: true, ArchiveBytes: 10 << 10, RowToCol: true},
	}); err != nil {
		t.Fatal(err)
	}
	p := lake.Producer("gen")
	for i := 0; i < 2000; i++ {
		if _, _, err := p.Send("history", []byte("sensor"), []byte(fmt.Sprintf("reading-%06d", i%50))); err != nil {
			t.Fatal(err)
		}
	}
	arch := lake.Archiver()
	results, _, err := arch.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("archive: %+v %v", results, err)
	}
	if results[0].Freed == 0 || results[0].ArchivedBytes >= results[0].RawBytes {
		t.Fatalf("archive result: %+v", results[0])
	}
	st := lake.Tiering().Stats()
	if st.BytesPerTier[tiering.Archive] == 0 {
		t.Fatal("nothing landed in the archive tier")
	}
}
