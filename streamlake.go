// Package streamlake is the public API of the StreamLake reproduction:
// a data lake storage system combining message streaming and lakehouse
// batch processing over one copy of the data, with a
// compute-and-storage disaggregated architecture, erasure-coded tiered
// storage, automatic stream-to-table conversion, metadata-accelerated
// lakehouse operations, and the LakeBrain storage-side optimizer —
// the system described in "Separation Is for Better Reunion: Data Lake
// Storage at Huawei" (ICDE 2024).
//
// A Lake wires the full stack together:
//
//	lake, _ := streamlake.Open(streamlake.Config{})
//	lake.CreateTopic(streamlake.TopicConfig{Name: "events", StreamNum: 4})
//	p := lake.Producer("my-app")
//	p.Send("events", []byte("k"), []byte("v"))
//
// See the examples directory for end-to-end scenarios.
package streamlake

import (
	"fmt"
	"time"

	"streamlake/internal/cache"
	"streamlake/internal/cluster"
	"streamlake/internal/colfile"
	"streamlake/internal/convert"
	"streamlake/internal/faults"
	"streamlake/internal/lakebrain/compact"
	"streamlake/internal/lakehouse"
	"streamlake/internal/obs"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/query"
	"streamlake/internal/repair"
	"streamlake/internal/scrub"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tableobj"
	"streamlake/internal/tenant"
	"streamlake/internal/tiering"
)

// Re-exported configuration and data types. The reproduction keeps
// implementations under internal/; these aliases form the supported
// surface.
type (
	// TopicConfig configures a message topic (Figure 8 of the paper).
	TopicConfig = streamsvc.TopicConfig
	// ConvertConfig is the convert_2_table block of a topic config.
	ConvertConfig = streamsvc.ConvertConfig
	// ArchiveConfig is the archive block of a topic config.
	ArchiveConfig = streamsvc.ArchiveConfig
	// Message is one consumed record.
	Message = streamsvc.Message
	// Producer publishes messages.
	Producer = streamsvc.Producer
	// Consumer subscribes to topics.
	Consumer = streamsvc.Consumer
	// Schema describes a table's columns.
	Schema = colfile.Schema
	// Row is one table record.
	Row = colfile.Row
	// Value is one typed cell.
	Value = colfile.Value
	// Result is a SQL query result.
	Result = query.Result
	// Redundancy selects replication or erasure coding.
	Redundancy = plog.Redundancy
	// TableMeta is a table's catalog profile.
	TableMeta = tableobj.TableMeta
	// Snapshot is a table snapshot (for time travel).
	Snapshot = tableobj.Snapshot
	// FaultInjector kills/revives disks and injects transient I/O faults.
	FaultInjector = faults.Injector
	// RepairReport summarizes one pass of the repair service.
	RepairReport = repair.Report
	// ScrubReport summarizes one pass of the background scrubber.
	ScrubReport = scrub.Report
	// ScrubStats accumulates scrub activity across passes.
	ScrubStats = scrub.Stats
	// IntegrityStats counts checksum verifications, mismatches, and
	// fallback reads across the lake's PLogs.
	IntegrityStats = plog.IntegrityStats
	// CorruptionEvent identifies one injected silent corruption.
	CorruptionEvent = plog.CorruptionEvent
	// PoolStats is a storage pool accounting snapshot.
	PoolStats = pool.Stats
	// TenantConfig is one tenant's QoS contract: weight, shed priority,
	// and capacity/IOPS/bandwidth quotas.
	TenantConfig = tenant.Config
	// TenantStatus is one tenant's contract plus its admission counters.
	TenantStatus = tenant.Status
)

// Value constructors, re-exported.
var (
	IntValue    = colfile.IntValue
	FloatValue  = colfile.FloatValue
	StringValue = colfile.StringValue
	BoolValue   = colfile.BoolValue
	// MustSchema parses "name:type" field specs, panicking on error.
	MustSchema = colfile.MustSchema
	// NewSchema parses "name:type" field specs.
	NewSchema = colfile.NewSchema
	// ReplicateN builds an n-copy replication policy.
	ReplicateN = plog.ReplicateN
	// EC builds a k+m erasure coding policy.
	EC = plog.EC
	// EncodeRow serializes a row as a stream message payload for
	// stream-to-table conversion.
	EncodeRow = convert.EncodeRow
	// DecodeRow parses a message payload produced by EncodeRow.
	DecodeRow = convert.DecodeRow
)

// Config sizes a Lake.
type Config struct {
	// SSDDisks and HDDDisks size the storage pools (defaults 6 and 6).
	SSDDisks, HDDDisks int
	// Workers is the stream worker fleet size (default 3).
	Workers int
	// PLogCapacity overrides the 128 MB PLog address space (tests use
	// smaller logs).
	PLogCapacity int64
	// DisableMetadataAcceleration turns the lakehouse metadata cache
	// off (the Figure 15 baseline).
	DisableMetadataAcceleration bool
	// DisableVerifyOnRead turns off checksum verification on the read
	// path — the no-end-to-end-integrity baseline, where reads landing
	// on a corrupt copy silently return wrong bytes.
	DisableVerifyOnRead bool
	// ScrubBytesPerPass bounds one scrub pass's verification bytes
	// (0 = each pass sweeps every log once).
	ScrubBytesPerPass int64
	// ScrubRate is the scrubber's bandwidth in bytes per second of
	// virtual time (default 64 MiB/s).
	ScrubRate int64
	// DisableObservability skips the metrics registry and tracer; every
	// instrument becomes a no-op (the overhead baseline).
	DisableObservability bool
	// DisableResilience turns off the produce path's retry/ack/breaker
	// machinery — the fragile baseline where any dropped transfer fails
	// the send outright.
	DisableResilience bool
	// DisableHedging turns off hedged replica reads (the tail-latency
	// baseline: a slow replica is simply waited out).
	DisableHedging bool
	// HedgeQuantile overrides the hedge-delay quantile (default 0.95).
	HedgeQuantile float64
	// GroupCommitSlices coalesces up to this many full slice flushes
	// into one PLog group commit (one device write per placement copy
	// instead of one per slice). 0 or 1 (the default) keeps the legacy
	// one-commit-per-slice path; flush timing and device write-op counts
	// change when enabled, so replay digests are comparable only between
	// runs with the same setting.
	GroupCommitSlices int
	// ZoneMaps records per-row-group column min/max values and per-column
	// bloom filters in table file metadata at insert time, letting scan
	// planning prune files no predicate can match before any device read.
	// Off by default: the stats encoding changes when enabled, so replay
	// digests are comparable only between runs with the same setting.
	ZoneMaps bool
	// Compression turns on transparent per-extent compression at the
	// tiering boundary: sealed logs demoted to the HDD cold tier
	// negotiate a codec per extent (flate, or RLE for run-heavy columnar
	// payloads, with an incompressible bailout) and store compressed
	// bytes on device; promotion back to SSD decompresses. Reads stay
	// bit-identical and every checksum stays keyed over uncompressed
	// bytes. Off by default: device byte/op accounting and codec CPU
	// change when enabled, so replay digests are comparable only between
	// runs with the same setting.
	Compression bool
	// Nodes turns on the multi-node cluster plane with this many nodes:
	// disks partition into per-node failure domains, placement spreads
	// copies across nodes via consistent hashing, a heartbeat failure
	// detector and Raft-lite replicated metadata log run over the network
	// fault plane, and every produce ack waits for a majority metadata
	// commit. 0 or 1 (the default) keeps the single-node legacy behavior
	// byte-identical; replay digests are comparable only between runs
	// with the same setting.
	Nodes int
	// PreferLocalReads turns on placement-aware reads: replicated plog
	// reads try the copy in LocalReadNode's failure domain first and
	// degrade to cross-domain copies when the local one is suspect,
	// stale, quarantined, or failed. Requires Nodes > 1. Off by default:
	// copy try-order changes when enabled, so replay digests are
	// comparable only between runs with the same setting.
	PreferLocalReads bool
	// LocalReadNode is the node whose domain PreferLocalReads favors
	// (the requester's location; default 0).
	LocalReadNode int
	// CacheMB sizes the two-tier (DRAM + SCM) read cache in megabytes;
	// 0 (the default) disables it, leaving every read on the device
	// path. The DRAM tier gets 1/8 of the budget, the SCM tier the
	// rest. Extent reads fill it only after checksum verification, and
	// repair/scrub/migration/DML events invalidate affected entries.
	CacheMB int
	// Tenants declares the lake's tenants and their QoS contracts,
	// turning on the multi-tenancy plane: per-tenant quota admission,
	// weighted-fair scheduling on the worker buses and at pool
	// admission, and priority-ordered load shedding under overload.
	// Empty (the default) keeps the legacy single-tenant path
	// byte-identical, including all chaos replay digests.
	Tenants []TenantConfig
	// TenantQoS forces the tenant plane on even with an empty Tenants
	// list (tenants are then added at runtime via SetTenant / lakectl).
	TenantQoS bool
	// ModelContention attaches the unisolated shared-queue contention
	// model to the worker buses WITHOUT tenant isolation — the control
	// baseline for the noisy-neighbor experiment, where one tenant's
	// backlog delays everyone in its priority class. Mutually exclusive
	// with Tenants/TenantQoS (isolation wins when both are set).
	ModelContention bool
	// Seed drives all randomized components deterministically.
	Seed uint64
}

// Lake is a fully wired StreamLake instance: storage pools, PLog
// manager, stream service, lakehouse engine, conversion service,
// tiering, and SQL.
type Lake struct {
	clock   *sim.Clock
	ssdPool *pool.Pool
	hddPool *pool.Pool
	logs    *plog.Manager
	store   *streamobj.Store
	svc     *streamsvc.Service
	fs      *tableobj.FileStore
	cat     *tableobj.Catalog
	lh      *lakehouse.Engine
	conv    *convert.Converter
	arch    *convert.Archiver
	tiers   *tiering.Service
	repl    *tiering.Replicator
	sql     *query.Engine
	inj     *faults.Injector
	rep     *repair.Service
	scrub   *scrub.Service
	reg     *obs.Registry    // nil when observability is disabled
	tracer  *obs.Tracer      // nil when observability is disabled
	rcache  *cache.Cache     // nil when Config.CacheMB is 0
	clus    *cluster.Cluster // nil when Config.Nodes <= 1
	tenants *tenant.Registry // nil when the tenant plane is off

	tierSizes map[plog.ID]int64 // per-log size at the last tiering pass
}

// Open builds a Lake.
func Open(cfg Config) (*Lake, error) {
	if cfg.SSDDisks <= 0 {
		cfg.SSDDisks = 6
	}
	if cfg.HDDDisks <= 0 {
		cfg.HDDDisks = 6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.PLogCapacity <= 0 {
		cfg.PLogCapacity = plog.DefaultCapacity
	}
	clock := sim.NewClock()
	ssd := pool.New("ssd", clock, sim.NVMeSSD, cfg.SSDDisks, 0)
	hdd := pool.New("hdd", clock, sim.SASHDD, cfg.HDDDisks, 0)
	logs := plog.NewManager(ssd, cfg.PLogCapacity)
	store := streamobj.NewStore(clock, logs)
	svc := streamsvc.New(clock, store, cfg.Workers)
	fs := tableobj.NewFileStore(logs)
	cat := tableobj.NewCatalog(clock)
	if cfg.GroupCommitSlices > 1 {
		store.EnableGroupCommit(cfg.GroupCommitSlices)
	}
	lh := lakehouse.New(clock, fs, cat, lakehouse.Options{
		Acceleration: !cfg.DisableMetadataAcceleration,
		ZoneMaps:     cfg.ZoneMaps,
	})
	tiers := tiering.NewService(clock, tiering.Policy{DemoteAfter: time.Hour, ArchiveAfter: 24 * time.Hour})
	inj := faults.New(cfg.Seed)
	inj.Attach(ssd)
	inj.Attach(hdd)
	l := &Lake{
		clock:   clock,
		ssdPool: ssd,
		hddPool: hdd,
		logs:    logs,
		store:   store,
		svc:     svc,
		fs:      fs,
		cat:     cat,
		lh:      lh,
		conv:    convert.New(clock, svc, fs, cat),
		arch:    convert.NewArchiver(clock, svc, tiers),
		tiers:   tiers,
		repl:    tiering.NewReplicator(),
		sql:     query.New(lh),
		inj:     inj,
	}
	logs.SetVerifyOnRead(!cfg.DisableVerifyOnRead)
	if cfg.Compression {
		logs.SetCompression(hdd)
	}
	inj.AttachCorruptor("ssd", logs)
	if cfg.CacheMB > 0 {
		total := int64(cfg.CacheMB) << 20
		l.rcache = cache.New(cache.Config{DRAMBytes: total / 8, SCMBytes: total - total/8})
		logs.SetCache(l.rcache)
		lh.SetCache(l.rcache)
	}
	// The network fault plane sits under every worker bus; the produce
	// path rides it with retries, modelled acks, and per-endpoint circuit
	// breakers unless the fragile baseline is requested.
	svc.SetNet(inj.Net())
	if !cfg.DisableResilience {
		svc.SetResilience(streamsvc.ResilienceConfig{Seed: int64(cfg.Seed)})
	}
	// Multi-tenancy plane: quota admission at the producer, weighted-fair
	// scheduling on the worker buses and at pool admission, capacity
	// charging at durable append. Off (nil registry) unless configured,
	// keeping the legacy path byte-identical.
	if len(cfg.Tenants) > 0 || cfg.TenantQoS {
		reg, err := tenant.NewRegistry(cfg.Tenants)
		if err != nil {
			return nil, err
		}
		l.tenants = reg
		svc.SetTenants(reg)
		store.SetTenants(reg)
	} else if cfg.ModelContention {
		svc.SetContention()
	}
	if !cfg.DisableHedging {
		logs.SetHedge(plog.HedgeConfig{Enabled: true, Quantile: cfg.HedgeQuantile})
	}
	l.rep = repair.New(clock, logs, repair.Config{})
	l.scrub = scrub.New(clock, logs, l.rep, scrub.Config{
		BytesPerPass: cfg.ScrubBytesPerPass,
		Rate:         cfg.ScrubRate,
		Repair:       true,
	})
	if cfg.Nodes > 1 {
		cl := cluster.New(cluster.Config{Nodes: cfg.Nodes, Seed: cfg.Seed}, clock, inj.Net())
		cl.AttachPool(ssd, logs)
		cl.AttachPool(hdd, logs) // shares the SSD manager's logs (tiering migrates them)
		cl.AttachRepair(l.rep)
		workers := cfg.Workers
		nodes := cfg.Nodes
		net := inj.Net()
		// A killed node's process is gone before any detection: its
		// workers' client links partition immediately, and heal on revival.
		// Stream workers map onto the birth nodes only; a node joined at
		// runtime (id >= birth N) contributes storage and consensus but
		// hosts no workers — without the guard its id would alias onto an
		// old node's workers (node%nodes) and kill the wrong links.
		cl.OnKill(func(node int, up bool) {
			if node >= nodes {
				return
			}
			for w := node % nodes; w < workers; w += nodes {
				ep := fmt.Sprintf("worker/%d", w)
				if up {
					net.Heal("client", ep)
					net.Heal(ep, "client")
				} else {
					net.Partition("client", ep)
					net.Partition(ep, "client")
				}
			}
		})
		// Committed membership changes reassign the node's stream workers
		// (same birth-node aliasing guard as OnKill).
		cl.OnMembership(func(node int, serving bool) {
			if node >= nodes {
				return
			}
			for w := node % nodes; w < workers; w += nodes {
				svc.SetWorkerDown(w, !serving)
			}
		})
		svc.SetCommitGate(cl)
		if cfg.PreferLocalReads {
			local := cfg.LocalReadNode
			logs.SetLocalReads(func(p *pool.Pool, d pool.DiskID) bool {
				return cl.DomainOfPoolDisk(p, d) == local
			})
		}
		l.clus = cl
	}
	if !cfg.DisableObservability {
		l.reg = obs.NewRegistry(clock)
		l.tracer = obs.NewTracer(clock)
		ssd.SetObs(l.reg)
		hdd.SetObs(l.reg)
		logs.SetObs(l.reg)
		store.SetObs(l.reg)
		svc.SetObs(l.reg)
		lh.SetObs(l.reg)
		l.sql.SetObs(l.reg)
		l.rep.SetObs(l.reg)
		l.scrub.SetObs(l.reg)
		if l.rcache != nil {
			l.rcache.SetObs(l.reg)
		}
		if l.clus != nil {
			l.clus.SetObs(l.reg)
		}
		if l.tenants != nil {
			l.tenants.SetObs(l.reg)
		}
	}
	if l.clus != nil {
		if err := l.clus.Bootstrap(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Cache exposes the two-tier read cache; nil when Config.CacheMB is 0.
func (l *Lake) Cache() *cache.Cache { return l.rcache }

// FlushCache drops every resident cache entry (statistics survive) and
// returns how many entries were dropped; 0 when no cache is configured.
func (l *Lake) FlushCache() int {
	if l.rcache == nil {
		return 0
	}
	return l.rcache.Flush()
}

// Obs exposes the lake's metrics registry; nil when observability is
// disabled. The registry aggregates every layer's counters, gauges, and
// virtual-time histograms.
func (l *Lake) Obs() *obs.Registry { return l.reg }

// Tracer exposes the lake's request tracer; nil when observability is
// disabled.
func (l *Lake) Tracer() *obs.Tracer { return l.tracer }

// Clock exposes the lake's virtual clock (experiments advance it).
func (l *Lake) Clock() *sim.Clock { return l.clock }

// CreateTopic declares a message topic. On a clustered lake the
// definition replicates through the metadata log first — a minority
// partition cannot create topics.
func (l *Lake) CreateTopic(cfg TopicConfig) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMeta("topic/" + cfg.Name); err != nil {
			return fmt.Errorf("streamlake: replicate topic %q: %w", cfg.Name, err)
		}
	}
	return l.svc.CreateTopic(cfg)
}

// DeleteTopic removes a topic and its stream objects. On a clustered
// lake the deletion replicates through the metadata log first — the
// mirror of CreateTopic, so a minority partition can neither create nor
// delete, and a later CreateTopic of the same name replicates again.
func (l *Lake) DeleteTopic(name string) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMetaDelete("topic/" + name); err != nil {
			return fmt.Errorf("streamlake: replicate topic delete %q: %w", name, err)
		}
	}
	return l.svc.DeleteTopic(name)
}

// Producer returns a producer handle (empty id = fresh identity).
func (l *Lake) Producer(id string) *Producer { return l.svc.Producer(id) }

// TenantProducer returns a producer bound to a tenant identity: batches
// are admitted against the tenant's quotas and carry the tenant through
// scheduling, storage accounting, and spans.
func (l *Lake) TenantProducer(id, ten string) *Producer { return l.svc.TenantProducer(id, ten) }

// Tenants exposes the tenant registry; nil when the tenant plane is off.
func (l *Lake) Tenants() *tenant.Registry { return l.tenants }

// SetTenant adds or updates a tenant's QoS contract at runtime. It
// fails when the tenant plane is off (configure Tenants or TenantQoS at
// Open).
func (l *Lake) SetTenant(cfg TenantConfig) error {
	if l.tenants == nil {
		return fmt.Errorf("streamlake: tenant plane is off (set Config.Tenants or TenantQoS)")
	}
	return l.tenants.Set(cfg)
}

// Consumer returns a consumer handle in the given group.
func (l *Lake) Consumer(group string) *Consumer { return l.svc.Consumer(group) }

// ScaleWorkers rescales the stream worker fleet; the returned count is
// how many stream assignments moved (metadata only, no data migration).
func (l *Lake) ScaleWorkers(n int) (moved int, cost time.Duration) {
	return l.svc.SetWorkerCount(n)
}

// RunConversion runs one pass of the stream-to-table conversion service.
func (l *Lake) RunConversion() ([]convert.Result, time.Duration, error) {
	return l.conv.RunOnce()
}

// ConvertNow force-converts one topic regardless of its triggers.
func (l *Lake) ConvertNow(topic string) (convert.Result, time.Duration, error) {
	return l.conv.ForceTopic(topic)
}

// Playback re-publishes a table snapshot's rows as stream messages.
func (l *Lake) Playback(table string, snap Snapshot, topic string) (int64, time.Duration, error) {
	tbl, err := l.lh.Table(table)
	if err != nil {
		return 0, 0, err
	}
	return convert.Playback(tbl, snap, l.Producer(""), topic)
}

// CreateTable registers a lakehouse table, replicating the definition
// through the metadata log on a clustered lake.
func (l *Lake) CreateTable(meta TableMeta) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMeta("table/" + meta.Name); err != nil {
			return fmt.Errorf("streamlake: replicate table %q: %w", meta.Name, err)
		}
	}
	_, err := l.lh.CreateTable(meta)
	return err
}

// Insert writes rows into a table through the metadata write cache.
func (l *Lake) Insert(table string, rows []Row) error {
	_, err := l.lh.Insert(table, rows)
	return err
}

// FlushTable folds the table's cached metadata into persistent
// snapshots (the MetaFresher).
func (l *Lake) FlushTable(table string) error {
	_, err := l.lh.Flush(table)
	return err
}

// Delete removes rows matching col in [lo, hi] (nil = unbounded).
func (l *Lake) Delete(table, column string, lo, hi *Value) (int64, error) {
	n, _, err := l.lh.Delete(table, []lakehouse.RangeFilter{{Column: column, Lo: lo, Hi: hi}})
	return n, err
}

// Update rewrites rows matching col in [lo, hi] through set.
func (l *Lake) Update(table, column string, lo, hi *Value, set func(Row) Row) (int64, error) {
	n, _, err := l.lh.Update(table, []lakehouse.RangeFilter{{Column: column, Lo: lo, Hi: hi}}, set)
	return n, err
}

// DropTableSoft unregisters a table, keeping its data restorable. Like
// CreateTable, the catalog change replicates through the metadata log on
// a clustered lake before taking local effect.
func (l *Lake) DropTableSoft(table string) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMetaDelete("table/" + table); err != nil {
			return fmt.Errorf("streamlake: replicate table drop %q: %w", table, err)
		}
	}
	_, err := l.lh.DropSoft(table)
	return err
}

// RestoreTable re-registers a soft-dropped table, re-replicating the
// registration on a clustered lake.
func (l *Lake) RestoreTable(table string) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMeta("table/" + table); err != nil {
			return fmt.Errorf("streamlake: replicate table restore %q: %w", table, err)
		}
	}
	_, err := l.lh.Restore(table)
	return err
}

// DropTableHard removes a table's data, metadata and catalog entry; the
// deletion replicates through the metadata log on a clustered lake.
func (l *Lake) DropTableHard(table string) error {
	if l.clus != nil {
		if _, err := l.clus.ProposeMetaDelete("table/" + table); err != nil {
			return fmt.Errorf("streamlake: replicate table drop %q: %w", table, err)
		}
	}
	_, err := l.lh.DropHard(table)
	return err
}

// Query executes a SQL SELECT (COUNT/SUM aggregates, WHERE ranges,
// GROUP BY) with predicate and aggregate pushdown.
func (l *Lake) Query(sql string) (*Result, error) { return l.sql.Query(sql) }

// QueryCost executes a query and also returns its modelled virtual
// latency (planning plus execution).
func (l *Lake) QueryCost(sql string) (*Result, time.Duration, error) {
	res, err := l.sql.Query(sql)
	if err != nil {
		return nil, 0, err
	}
	return res, res.Stats.PlanCost + res.Stats.ExecCost, nil
}

// TableSnapshot returns the table's current snapshot.
func (l *Lake) TableSnapshot(table string) (Snapshot, error) {
	tbl, err := l.lh.Table(table)
	if err != nil {
		return Snapshot{}, err
	}
	s, _, err := tbl.Current()
	return s, err
}

// TableAsOf returns the table's snapshot as of a virtual time (time
// travel).
func (l *Lake) TableAsOf(table string, ts time.Duration) (Snapshot, error) {
	tbl, err := l.lh.Table(table)
	if err != nil {
		return Snapshot{}, err
	}
	s, _, err := tbl.AsOf(ts)
	return s, err
}

// CompactTable binpack-merges a partition's small files.
func (l *Lake) CompactTable(table, partition string, targetFileSize int64) (int, error) {
	tbl, err := l.lh.Table(table)
	if err != nil {
		return 0, err
	}
	n, _, err := compact.CompactPartition(tbl, partition, targetFileSize)
	return n, err
}

// Stats summarizes the lake's storage state.
type Stats struct {
	StreamObjects   int
	Topics          int
	TableFiles      int
	LogicalBytes    int64
	PhysicalBytes   int64
	PoolUtilization float64
	DegradedLogs    int   // PLogs holding stale replicas/shards
	StaleBytes      int64 // redundancy bytes awaiting repair
	Mismatches      int64 // checksum mismatches detected (reads + scrub)
	FallbackReads   int64 // reads served from a fallback copy after a mismatch
}

// Stats returns a storage snapshot.
func (l *Lake) Stats() Stats {
	ps := l.ssdPool.Stats()
	integ := l.logs.IntegrityStats()
	return Stats{
		StreamObjects:   l.store.Count(),
		Topics:          len(l.svc.Topics()),
		TableFiles:      l.fs.Count(),
		LogicalBytes:    l.logs.LogicalBytes(),
		PhysicalBytes:   l.logs.PhysicalBytes(),
		PoolUtilization: ps.Utilization(),
		DegradedLogs:    l.logs.DegradedCount(),
		StaleBytes:      l.logs.StaleBytes(),
		Mismatches:      integ.Mismatches,
		FallbackReads:   integ.FallbackReads,
	}
}

// Engine exposes the lakehouse engine for advanced use (benchmarks).
func (l *Lake) Engine() *lakehouse.Engine { return l.lh }

// SQLEngine exposes the SQL engine for advanced use (pushdown and
// memory-budget knobs).
func (l *Lake) SQLEngine() *query.Engine { return l.sql }

// Service exposes the streaming service for advanced use.
func (l *Lake) Service() *streamsvc.Service { return l.svc }

// Tiering exposes the tiering service.
func (l *Lake) Tiering() *tiering.Service { return l.tiers }

// Archiver exposes the stream archiving service.
func (l *Lake) Archiver() *convert.Archiver { return l.arch }

// Catalog exposes the table catalog.
func (l *Lake) Catalog() *tableobj.Catalog { return l.cat }

// RunTiering registers quiescent PLogs with the tiering service and
// applies the dynamic migration policy once: data idle past the policy's
// thresholds drains from SSD toward HDD and the archive tier (the data
// service layer's tiering service, Section III). A log is quiescent when
// it is sealed, or when its size has not changed since the previous
// tiering pass (streaming chains stay open but go cold). Sealed logs
// demoted between the SSD and HDD tiers are physically migrated: their
// placement groups move pools, carrying the CRC sidecar and stale
// accounting verbatim so scrub and repair stay coherent across the
// move. A migration that fails (e.g. the destination pool is full) is
// left for the next pass; the accounting-level move stands either way.
func (l *Lake) RunTiering() ([]tiering.Migration, time.Duration) {
	if l.tierSizes == nil {
		l.tierSizes = make(map[plog.ID]int64)
	}
	for _, info := range l.logs.Logs() {
		quiescent := info.Sealed || (info.Size > 0 && l.tierSizes[info.ID] == info.Size)
		l.tierSizes[info.ID] = info.Size
		if !quiescent {
			continue
		}
		id := fmt.Sprintf("plog/%d", info.ID)
		if _, err := l.tiers.TierOf(id); err != nil {
			l.tiers.Register(id, info.Size, tiering.SSD)
		}
	}
	migs, cost := l.tiers.RunOnce()
	for _, m := range migs {
		var id int64
		if _, err := fmt.Sscanf(m.ID, "plog/%d", &id); err != nil {
			continue
		}
		lg := l.logs.Get(plog.ID(id))
		if lg == nil || !lg.Sealed() {
			continue // open logs tier by accounting only
		}
		var dst *pool.Pool
		switch m.To {
		case tiering.HDD:
			dst = l.hddPool
		case tiering.SSD:
			dst = l.ssdPool
		default:
			continue // the archive tier has no storage pool behind it
		}
		if c, err := lg.Migrate(dst); err == nil {
			cost += c
		}
	}
	return migs, cost
}

// ReplicateOffsite ships every tiered item to the remote backup site
// (the replication service), returning the bytes shipped and the
// modelled transfer time.
func (l *Lake) ReplicateOffsite() (int64, time.Duration) {
	return l.repl.Replicate(l.tiers)
}

// Cluster exposes the multi-node cluster plane; nil when Config.Nodes
// left the lake single-node.
func (l *Lake) Cluster() *cluster.Cluster { return l.clus }

// Faults exposes the fault injector attached to the lake's storage
// pools: disk kill/revive, transient error rates, latency degradation.
// All randomness derives from Config.Seed, so fault scenarios replay
// deterministically.
func (l *Lake) Faults() *faults.Injector { return l.inj }

// Net exposes the network fault plane the worker buses consult:
// per-link drop rates, delay/jitter, directed partitions.
func (l *Lake) Net() *faults.NetPlane { return l.inj.Net() }

// HedgeStats reports hedged-read activity across the lake's PLogs.
func (l *Lake) HedgeStats() plog.HedgeStats { return l.logs.HedgeStats() }

// GroupCommitStats reports slice-flush coalescing activity; zeros when
// Config.GroupCommitSlices left group commit off.
func (l *Lake) GroupCommitStats() plog.GroupCommitStats { return l.store.GroupCommitStats() }

// Repairer exposes the background repair service that re-replicates or
// re-encodes stale slices left behind by degraded writes.
func (l *Lake) Repairer() *repair.Service { return l.rep }

// RunRepair runs one repair pass over every degraded PLog and returns
// what it accomplished.
func (l *Lake) RunRepair() RepairReport { return l.rep.RunOnce() }

// RepairUntilRedundant runs repair passes until full redundancy is
// restored or maxRounds is exhausted; ok reports whether the lake ended
// fully redundant.
func (l *Lake) RepairUntilRedundant(maxRounds int) (RepairReport, bool) {
	return l.rep.RunUntilRedundant(maxRounds)
}

// Scrubber exposes the background scrubber that verifies every copy's
// checksums and feeds what it finds into the repair service.
func (l *Lake) Scrubber() *scrub.Service { return l.scrub }

// RunScrub runs one scrub pass (bounded by Config.ScrubBytesPerPass)
// and repairs what it found.
func (l *Lake) RunScrub() (ScrubReport, error) { return l.scrub.RunOnce() }

// ScrubCycle scrubs until every live PLog has been verified once — a
// full population sweep, merging budgeted passes as needed.
func (l *Lake) ScrubCycle() (ScrubReport, error) { return l.scrub.RunCycle() }

// Integrity reports checksum activity across the lake's PLogs:
// verifications, mismatches, fallback reads, injected corruptions.
func (l *Lake) Integrity() IntegrityStats { return l.logs.IntegrityStats() }

// SSDPool exposes the hot storage pool (fault scenarios inspect
// per-disk accounting).
func (l *Lake) SSDPool() *pool.Pool { return l.ssdPool }

// HDDPool exposes the warm storage pool.
func (l *Lake) HDDPool() *pool.Pool { return l.hddPool }

// Logs exposes the PLog manager (degraded-log introspection).
func (l *Lake) Logs() *plog.Manager { return l.logs }
