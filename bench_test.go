package streamlake

// Macro-benchmarks: one testing.B benchmark per table and figure of the
// paper's evaluation. Each iteration regenerates the experiment at a
// reduced scale; `go run ./cmd/benchsuite` runs the full scaled sweeps
// and prints the paper-style tables.

import (
	"fmt"
	"testing"

	"streamlake/internal/bench"
)

func BenchmarkTable1Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable1([]int{20_000}, 1)
		b.ReportMetric(rows[0].StorageRatio(), "HK/S-storage-ratio")
	}
}

func BenchmarkTable1Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable1([]int{20_000}, 1)
		b.ReportMetric(rows[0].StreamRatio(), "K/S-stream-ratio")
	}
}

func BenchmarkTable1Batch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunTable1([]int{20_000}, 1)
		b.ReportMetric(rows[0].BatchRatio(), "H/S-batch-ratio")
	}
}

func BenchmarkFig1bOverall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig1b(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ServerReduction, "server-reduction-%")
		b.ReportMetric(res.TCOSaving, "tco-saving-%")
	}
}

func BenchmarkFig14aLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig14a([]float64{100_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].Set1.Nanoseconds()), "set1-latency-ns")
		b.ReportMetric(float64(points[0].Set2.Nanoseconds()), "set2-latency-ns")
	}
}

func BenchmarkFig14bThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig14b([]float64{1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Set1, "set1-msgs-per-sec")
	}
}

func BenchmarkFig14cElasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig14c()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.StreamLakeRemap.Seconds(), "remap-sec")
		b.ReportMetric(res.KafkaRebalance.Seconds(), "kafka-rebalance-sec")
	}
}

func BenchmarkFig14dSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig14d()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[1].Replication, "ft2-replication-x")
		b.ReportMetric(points[1].ECColStore, "ft2-ec-colstore-x")
	}
}

func BenchmarkFig15aMetadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig15a([]int{48})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].NoAccel.Seconds()/points[0].Accel.Seconds(), "accel-speedup")
	}
}

func BenchmarkFig15bMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig15b([]int64{4 << 20})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].NoAccelTime.Seconds()/points[0].AccelTime.Seconds(), "accel-speedup")
	}
}

func BenchmarkFig16aCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig16a([]int{8}, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].AutoImprovement, "auto-improvement-%")
		b.ReportMetric(points[0].DefaultImprovement, "default-improvement-%")
	}
}

func BenchmarkFig16aUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points := bench.RunFig16aUtil([]float64{10}, 5)
		b.ReportMetric(points[0].AutoUtil/points[0].DefaultUtil, "auto-vs-default-util")
	}
}

func BenchmarkFig16bPartitionSkipping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig16bc([]int{2}, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(points[0].OursSkipped)/float64(points[0].DaySkipped), "ours-vs-day-skipped")
	}
}

func BenchmarkFig16cPartitionRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := bench.RunFig16bc([]int{2}, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].DayTime.Seconds()/points[0].OursTime.Seconds(), "ours-vs-day-speedup")
	}
}

// BenchmarkEndToEndIngest measures the real (wall-clock) cost of the
// full produce -> convert -> query path at small scale, as a regression
// guard on the implementation itself rather than the simulated devices.
func BenchmarkEndToEndIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lake, err := Open(Config{PLogCapacity: 1 << 20})
		if err != nil {
			b.Fatal(err)
		}
		schema := MustSchema("url:string", "ts:int64", "province:string")
		if err := lake.CreateTopic(TopicConfig{
			Name: "t", StreamNum: 2,
			Convert: ConvertConfig{
				Enabled: true, TableName: "tt", TablePath: "/tt",
				TableSchema: schema, PartitionColumn: "province", SplitOffset: 500,
			},
		}); err != nil {
			b.Fatal(err)
		}
		p := lake.Producer("bench")
		for j := 0; j < 2000; j++ {
			row := Row{StringValue("u"), IntValue(int64(j)), StringValue("B")}
			val, _ := EncodeRow(schema, row)
			if _, _, err := p.Send("t", []byte(fmt.Sprint(j)), val); err != nil {
				b.Fatal(err)
			}
		}
		if _, _, err := lake.RunConversion(); err != nil {
			b.Fatal(err)
		}
		if _, err := lake.Query("select count(*) from tt"); err != nil {
			b.Fatal(err)
		}
	}
}
