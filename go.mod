module streamlake

go 1.22
