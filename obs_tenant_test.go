package streamlake_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"streamlake"
	"streamlake/internal/tenant"
)

// runTenantWorkload drives a fixed two-tenant workload — an unlimited
// "gold" tenant and a "tin" tenant whose bandwidth quota the schedule
// deliberately exhausts — and returns the rendered /metrics text.
func runTenantWorkload(t *testing.T) []byte {
	t.Helper()
	lake, err := streamlake.Open(streamlake.Config{
		PLogCapacity: 1 << 20,
		Seed:         42,
		Tenants: []streamlake.TenantConfig{
			{Name: "gold", Weight: 3},
			{Name: "tin", Weight: 1, Priority: 1, BandwidthBps: 8 << 10},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: "events", StreamNum: 2}); err != nil {
		t.Fatal(err)
	}
	gold := lake.TenantProducer("det-gold", "gold")
	tin := lake.TenantProducer("det-tin", "tin")
	big := bytes.Repeat([]byte("t"), 1024)
	var throttled int
	for i := 0; i < 300; i++ {
		if _, _, err := gold.Send("events", []byte(fmt.Sprintf("g%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			// 1 KiB against an 8 KB burst: the ninth send and everything
			// after is over quota — the throttle path must be exercised
			// and measured identically run to run.
			if _, _, err := tin.Send("events", []byte(fmt.Sprintf("t%d", i)), big); err != nil {
				if !errors.Is(err, tenant.ErrOverQuota) {
					t.Fatal(err)
				}
				throttled++
			}
		}
	}
	if throttled == 0 {
		t.Fatal("tin tenant never throttled — the workload is degenerate")
	}
	c := lake.Consumer("g")
	if err := c.Subscribe("events"); err != nil {
		t.Fatal(err)
	}
	for {
		msgs, _, err := c.Poll(128)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
	}
	var buf bytes.Buffer
	if err := lake.Obs().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsDeterministicWithTenants: the tenant plane's instruments —
// per-tenant admission, throttle, and WFQ-delay series — measure
// virtual time and seeded decisions only, so the full exposition stays
// byte-identical run to run with quotas actively rejecting traffic.
func TestMetricsDeterministicWithTenants(t *testing.T) {
	a := runTenantWorkload(t)
	b := runTenantWorkload(t)
	if !bytes.Equal(a, b) {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := i - 100
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("metrics diverge at byte %d:\nrun1: ...%s\nrun2: ...%s", i, a[lo:i+1], b[lo:i+1])
			}
		}
		t.Fatalf("metrics lengths differ: %d vs %d", len(a), len(b))
	}
	text := string(a)
	for _, want := range []string{
		`tenant_admitted_total{tenant="gold"}`,
		`tenant_admitted_total{tenant="tin"}`,
		`tenant_throttled_total{tenant="tin"}`,
		`tenant_stored_bytes{tenant="gold"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestDisabledObsTenantOverhead: with observability off, the tenant
// plane still enforces quotas through nil-safe instruments, and the
// produce hot path stays within the allocation budget — the "you only
// pay for what you scrape" contract extended to tenancy.
func TestDisabledObsTenantOverhead(t *testing.T) {
	lake, err := streamlake.Open(streamlake.Config{
		PLogCapacity:         1 << 20,
		Seed:                 7,
		DisableObservability: true,
		Tenants: []streamlake.TenantConfig{
			{Name: "gold"},
			{Name: "tin", BandwidthBps: 2048},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lake.Obs() != nil {
		t.Fatal("observability registry present despite DisableObservability")
	}
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: "events", StreamNum: 2}); err != nil {
		t.Fatal(err)
	}
	// Quotas still bite without a registry to report to.
	tin := lake.TenantProducer("o-tin", "tin")
	if _, _, err := tin.Send("events", []byte("k"), bytes.Repeat([]byte("v"), 4096)); !errors.Is(err, tenant.ErrOverQuota) {
		t.Fatalf("unobserved over-quota send: %v, want ErrOverQuota", err)
	}
	st, ok := lake.Tenants().StatsOf("tin")
	if !ok || st.Throttled != 1 {
		t.Fatalf("unobserved throttle not counted: %+v", st)
	}

	gold := lake.TenantProducer("o-gold", "gold")
	val := []byte("payload")
	var i int
	allocs := testing.AllocsPerRun(500, func() {
		i++
		if _, _, err := gold.Send("events", []byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			t.Fatal(err)
		}
	})
	// The obs-on benchsnap gate pins produce at <=64 allocs/op; obs-off
	// with tenancy must not blow past it (generous headroom for the
	// runtime, not a license for instrument allocations).
	if allocs > 96 {
		t.Fatalf("disabled-obs tenanted produce = %.0f allocs/op, ceiling 96", allocs)
	}
}
