// Package sim provides the simulated hardware substrate that StreamLake
// runs on in this reproduction: a deterministic virtual clock, device
// models for the storage media classes used by OceanStor Pacific (SCM,
// NVMe SSD, SAS HDD) and the cluster interconnects (10 GbE, RDMA), and
// latency/utilization accounting.
//
// The paper's evaluation was run on physical OceanStor hardware. Here
// every device operation charges an analytically modelled cost (fixed
// per-operation latency plus a bandwidth term) to a virtual clock, which
// keeps experiments deterministic and lets the benchmark harness report
// the same relative shapes the paper reports without the hardware.
package sim

import (
	"sync/atomic"
	"time"
)

// Clock is a monotonically advancing virtual clock. All simulated device
// and network costs are charged to a Clock; experiment harnesses read it
// to compute virtual latencies and throughput. The zero value is a clock
// at time zero, ready for use.
type Clock struct {
	ns atomic.Int64
}

// NewClock returns a virtual clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time as an offset from the clock epoch.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored so
// that cost models can never move time backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Duration(c.ns.Load())
	}
	return time.Duration(c.ns.Add(int64(d)))
}

// AdvanceTo moves the clock forward to at least t, returning the new time.
// It is safe under concurrent use; the clock never moves backwards.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.ns.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.ns.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}
