package sim

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram collects latency samples and reports percentiles. It keeps
// log-scaled buckets so memory stays constant regardless of sample count,
// which matters for the million-message streaming sweeps in Figure 14.
type Histogram struct {
	mu      sync.Mutex
	buckets [128]int64 // bucket i covers [2^(i/4) .. 2^((i+1)/4)) microseconds-ish, see index
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// bucketIndex maps a duration to a log-scale bucket: 4 buckets per
// doubling, anchored at 1 microsecond.
func bucketIndex(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	i := int(math.Log2(us) * 4)
	if i < 0 {
		i = 0
	}
	if i >= 128 {
		i = 127
	}
	return i
}

// bucketValue returns a representative duration for bucket i (its lower
// bound).
func bucketValue(i int) time.Duration {
	us := math.Pow(2, float64(i)/4)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketIndex(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the mean of all samples, or zero with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile reports the approximate q-quantile (0 <= q <= 1) of observed
// samples. Exact min and max are returned for q==0 and q==1.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.count))
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			return bucketValue(i)
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [128]int64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}

// Percentiles is a convenience snapshot of common percentiles.
type Percentiles struct {
	P50, P95, P99, Max time.Duration
	Mean               time.Duration
	Count              int64
}

// Snapshot returns common percentiles in one locked pass.
func (h *Histogram) Snapshot() Percentiles {
	return Percentiles{
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Quantile(1),
		Mean:  h.Mean(),
		Count: h.Count(),
	}
}

// SortDurations sorts a duration slice ascending; a small helper shared by
// tests and the benchmark harness.
func SortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
