package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(-time.Second) // must be ignored
	if got := c.Now(); got != 5*time.Millisecond {
		t.Fatalf("negative advance moved clock to %v", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("AdvanceTo: got %v", c.Now())
	}
	c.AdvanceTo(time.Millisecond) // earlier than now: no-op
	if c.Now() != time.Second {
		t.Fatalf("AdvanceTo backwards moved clock to %v", c.Now())
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8000*time.Microsecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestDeviceCostModel(t *testing.T) {
	d := NewDeviceOf("ssd0", NVMeSSD)
	spec := d.Spec()
	// A zero-byte read costs exactly the fixed latency.
	if got := d.Read(0); got != spec.ReadLatency {
		t.Fatalf("zero-byte read cost %v, want %v", got, spec.ReadLatency)
	}
	// A large read is dominated by the bandwidth term.
	big := d.Read(spec.ReadBandwidth) // one second of data
	if big < time.Second || big > time.Second+spec.ReadLatency+time.Millisecond {
		t.Fatalf("1s-of-data read cost %v", big)
	}
	st := d.Stats()
	if st.ReadOps != 2 || st.ReadBytes != spec.ReadBandwidth {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeviceClassOrdering(t *testing.T) {
	// The whole reproduction leans on SCM < SSD < HDD latency and
	// RDMA < TCP; make that calibration explicit.
	n := int64(4096)
	scm := NewDeviceOf("scm", SCM).Read(n)
	ssd := NewDeviceOf("ssd", NVMeSSD).Read(n)
	hdd := NewDeviceOf("hdd", SASHDD).Read(n)
	if !(scm < ssd && ssd < hdd) {
		t.Fatalf("latency ordering violated: scm=%v ssd=%v hdd=%v", scm, ssd, hdd)
	}
	rdma := NewDeviceOf("rdma", NetRDMA).Write(n)
	tcp := NewDeviceOf("tcp", Net10GbE).Write(n)
	if rdma >= tcp {
		t.Fatalf("rdma (%v) should beat tcp (%v)", rdma, tcp)
	}
}

func TestDeviceCapacity(t *testing.T) {
	d := NewDevice("tiny", DeviceSpec{Class: NVMeSSD, Capacity: 100})
	if err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(60); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	d.Free(60)
	if err := d.Alloc(100); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	d.Free(1000)
	if d.Used() != 0 {
		t.Fatalf("Used() = %d after over-free, want 0", d.Used())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 300*time.Microsecond || p50 > 700*time.Microsecond {
		t.Fatalf("p50 = %v, want ~500us", p50)
	}
	if h.Quantile(0) != time.Microsecond {
		t.Fatalf("min = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 1000*time.Microsecond {
		t.Fatalf("max = %v", h.Quantile(1))
	}
	mean := h.Mean()
	if mean < 450*time.Microsecond || mean > 550*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	var h Histogram
	r := NewRNG(7)
	for i := 0; i < 5000; i++ {
		h.Observe(time.Duration(r.Intn(1_000_000)) * time.Nanosecond)
	}
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantiles not monotone: q=%v -> %v < %v", q, v, last)
		}
		last = v
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	// Head must dominate tail under skew.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[97] + counts[98] + counts[99]
	if head <= tail*3 {
		t.Fatalf("zipf not skewed: head=%d tail=%d", head, tail)
	}
}

func TestZipfUniform(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform zipf bucket %d has %d samples", i, c)
		}
	}
}

func TestQuickBucketRoundTrip(t *testing.T) {
	// Property: a duration always lands in a bucket whose representative
	// value is within 2x of the original (log-scale resolution bound).
	f := func(us uint32) bool {
		if us == 0 {
			us = 1
		}
		d := time.Duration(us) * time.Microsecond
		i := bucketIndex(d)
		v := bucketValue(i)
		return v <= d*2 && d <= v*3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortDurations(t *testing.T) {
	ds := []time.Duration{3, 1, 2}
	SortDurations(ds)
	if ds[0] != 1 || ds[1] != 2 || ds[2] != 3 {
		t.Fatalf("not sorted: %v", ds)
	}
}
