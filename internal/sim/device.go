package sim

import (
	"fmt"
	"sync"
	"time"
)

// DeviceClass identifies the modelled hardware class of a Device.
type DeviceClass int

// Device classes modelled after the hardware in the paper's evaluation
// cluster (Section VII-C): storage-class memory used as a cache in Set-2,
// NVMe SSD and SAS HDD pools, and the two interconnect paths of the data
// exchange bus.
const (
	SCM DeviceClass = iota
	NVMeSSD
	SASHDD
	Net10GbE
	NetRDMA
)

// String returns a short human-readable name for the class.
func (c DeviceClass) String() string {
	switch c {
	case SCM:
		return "scm"
	case NVMeSSD:
		return "nvme-ssd"
	case SASHDD:
		return "sas-hdd"
	case Net10GbE:
		return "10gbe"
	case NetRDMA:
		return "rdma"
	default:
		return fmt.Sprintf("device-class-%d", int(c))
	}
}

// DeviceSpec is the analytic cost model for a device: a fixed
// per-operation latency plus a bandwidth (bytes per second) term, and a
// capacity for storage devices (zero means unlimited, used for links).
type DeviceSpec struct {
	Class          DeviceClass
	ReadLatency    time.Duration
	WriteLatency   time.Duration
	ReadBandwidth  int64 // bytes/second
	WriteBandwidth int64 // bytes/second
	Capacity       int64 // bytes; 0 = unlimited
}

// Spec returns the default calibrated specification for a device class.
// The numbers are order-of-magnitude figures for the hardware named in
// Section VII-C (NVMe SSD, SAS HDD, 16 GB persistent memory, 10 Gb
// ethernet) plus an RDMA path for the data exchange bus.
func Spec(class DeviceClass) DeviceSpec {
	switch class {
	case SCM:
		return DeviceSpec{
			Class:          SCM,
			ReadLatency:    300 * time.Nanosecond,
			WriteLatency:   500 * time.Nanosecond,
			ReadBandwidth:  8 << 30, // 8 GB/s
			WriteBandwidth: 6 << 30,
			Capacity:       16 << 30, // 16 GB, per Set-2
		}
	case NVMeSSD:
		return DeviceSpec{
			Class:          NVMeSSD,
			ReadLatency:    80 * time.Microsecond,
			WriteLatency:   20 * time.Microsecond,
			ReadBandwidth:  3 << 30, // 3 GB/s
			WriteBandwidth: 2 << 30,
			Capacity:       800 << 30, // 800 GB NVMe, per Set-1
		}
	case SASHDD:
		return DeviceSpec{
			Class:          SASHDD,
			ReadLatency:    8 * time.Millisecond,
			WriteLatency:   8 * time.Millisecond,
			ReadBandwidth:  200 << 20, // 200 MB/s
			WriteBandwidth: 180 << 20,
			Capacity:       10 << 40, // 10 TB per spindle
		}
	case Net10GbE:
		return DeviceSpec{
			Class:          Net10GbE,
			ReadLatency:    50 * time.Microsecond, // kernel TCP/IP stack
			WriteLatency:   50 * time.Microsecond,
			ReadBandwidth:  1250 << 20, // 10 Gb/s
			WriteBandwidth: 1250 << 20,
		}
	case NetRDMA:
		return DeviceSpec{
			Class:          NetRDMA,
			ReadLatency:    3 * time.Microsecond, // kernel bypass
			WriteLatency:   3 * time.Microsecond,
			ReadBandwidth:  5 << 30, // 40 Gb/s class fabric
			WriteBandwidth: 5 << 30,
		}
	default:
		return DeviceSpec{Class: class, ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30}
	}
}

// DeviceStats is a snapshot of a device's accumulated activity.
type DeviceStats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   time.Duration
	Used       int64 // bytes currently allocated (storage devices)
}

// Device is a simulated storage device or network link. Read and Write
// return the modelled duration of the operation and accumulate busy time
// and byte counters for utilization reporting.
type Device struct {
	spec DeviceSpec
	name string

	mu    sync.Mutex
	stats DeviceStats
}

// NewDevice creates a device with the given name and spec.
func NewDevice(name string, spec DeviceSpec) *Device {
	return &Device{spec: spec, name: name}
}

// NewDeviceOf creates a device of the given class with its default spec.
func NewDeviceOf(name string, class DeviceClass) *Device {
	return NewDevice(name, Spec(class))
}

// Name returns the device's name.
func (d *Device) Name() string { return d.name }

// Class returns the device's hardware class.
func (d *Device) Class() DeviceClass { return d.spec.Class }

// Spec returns the device's cost model.
func (d *Device) Spec() DeviceSpec { return d.spec }

func transferTime(n int64, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

// Read charges the cost of reading n bytes and returns the modelled
// duration.
func (d *Device) Read(n int64) time.Duration {
	dur := d.spec.ReadLatency + transferTime(n, d.spec.ReadBandwidth)
	d.mu.Lock()
	d.stats.ReadOps++
	d.stats.ReadBytes += n
	d.stats.BusyTime += dur
	d.mu.Unlock()
	return dur
}

// Write charges the cost of writing n bytes and returns the modelled
// duration.
func (d *Device) Write(n int64) time.Duration {
	dur := d.spec.WriteLatency + transferTime(n, d.spec.WriteBandwidth)
	d.mu.Lock()
	d.stats.WriteOps++
	d.stats.WriteBytes += n
	d.stats.BusyTime += dur
	d.mu.Unlock()
	return dur
}

// Alloc reserves n bytes of capacity. It returns an error when the device
// has a finite capacity and the allocation would exceed it.
func (d *Device) Alloc(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.spec.Capacity > 0 && d.stats.Used+n > d.spec.Capacity {
		return fmt.Errorf("sim: device %s full: used %d + %d > capacity %d",
			d.name, d.stats.Used, n, d.spec.Capacity)
	}
	d.stats.Used += n
	return nil
}

// Free releases n bytes of previously allocated capacity.
func (d *Device) Free(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Used -= n
	if d.stats.Used < 0 {
		d.stats.Used = 0
	}
}

// Used reports the bytes currently allocated on the device.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Used
}

// Stats returns a snapshot of the device's accumulated activity.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
