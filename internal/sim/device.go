package sim

import (
	"fmt"
	"sync"
	"time"
)

// DeviceClass identifies the modelled hardware class of a Device.
type DeviceClass int

// Device classes modelled after the hardware in the paper's evaluation
// cluster (Section VII-C): storage-class memory used as a cache in Set-2,
// NVMe SSD and SAS HDD pools, and the two interconnect paths of the data
// exchange bus.
const (
	SCM DeviceClass = iota
	NVMeSSD
	SASHDD
	Net10GbE
	NetRDMA
)

// String returns a short human-readable name for the class.
func (c DeviceClass) String() string {
	switch c {
	case SCM:
		return "scm"
	case NVMeSSD:
		return "nvme-ssd"
	case SASHDD:
		return "sas-hdd"
	case Net10GbE:
		return "10gbe"
	case NetRDMA:
		return "rdma"
	default:
		return fmt.Sprintf("device-class-%d", int(c))
	}
}

// DeviceSpec is the analytic cost model for a device: a fixed
// per-operation latency plus a bandwidth (bytes per second) term, and a
// capacity for storage devices (zero means unlimited, used for links).
type DeviceSpec struct {
	Class          DeviceClass
	ReadLatency    time.Duration
	WriteLatency   time.Duration
	ReadBandwidth  int64 // bytes/second
	WriteBandwidth int64 // bytes/second
	Capacity       int64 // bytes; 0 = unlimited
}

// Spec returns the default calibrated specification for a device class.
// The numbers are order-of-magnitude figures for the hardware named in
// Section VII-C (NVMe SSD, SAS HDD, 16 GB persistent memory, 10 Gb
// ethernet) plus an RDMA path for the data exchange bus.
func Spec(class DeviceClass) DeviceSpec {
	switch class {
	case SCM:
		return DeviceSpec{
			Class:          SCM,
			ReadLatency:    300 * time.Nanosecond,
			WriteLatency:   500 * time.Nanosecond,
			ReadBandwidth:  8 << 30, // 8 GB/s
			WriteBandwidth: 6 << 30,
			Capacity:       16 << 30, // 16 GB, per Set-2
		}
	case NVMeSSD:
		return DeviceSpec{
			Class:          NVMeSSD,
			ReadLatency:    80 * time.Microsecond,
			WriteLatency:   20 * time.Microsecond,
			ReadBandwidth:  3 << 30, // 3 GB/s
			WriteBandwidth: 2 << 30,
			Capacity:       800 << 30, // 800 GB NVMe, per Set-1
		}
	case SASHDD:
		return DeviceSpec{
			Class:          SASHDD,
			ReadLatency:    8 * time.Millisecond,
			WriteLatency:   8 * time.Millisecond,
			ReadBandwidth:  200 << 20, // 200 MB/s
			WriteBandwidth: 180 << 20,
			Capacity:       10 << 40, // 10 TB per spindle
		}
	case Net10GbE:
		return DeviceSpec{
			Class:          Net10GbE,
			ReadLatency:    50 * time.Microsecond, // kernel TCP/IP stack
			WriteLatency:   50 * time.Microsecond,
			ReadBandwidth:  1250 << 20, // 10 Gb/s
			WriteBandwidth: 1250 << 20,
		}
	case NetRDMA:
		return DeviceSpec{
			Class:          NetRDMA,
			ReadLatency:    3 * time.Microsecond, // kernel bypass
			WriteLatency:   3 * time.Microsecond,
			ReadBandwidth:  5 << 30, // 40 Gb/s class fabric
			WriteBandwidth: 5 << 30,
		}
	default:
		return DeviceSpec{Class: class, ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30}
	}
}

// DeviceStats is a snapshot of a device's accumulated activity.
type DeviceStats struct {
	ReadOps    int64
	WriteOps   int64
	ReadBytes  int64
	WriteBytes int64
	BusyTime   time.Duration
	Used       int64 // bytes currently allocated (storage devices)
}

// Device is a simulated storage device or network link. Read and Write
// return the modelled duration of the operation and accumulate busy time
// and byte counters for utilization reporting.
type Device struct {
	spec DeviceSpec
	name string

	mu       sync.Mutex
	stats    DeviceStats
	slowdown float64 // latency multiplier, 1 = healthy (fault injection)
}

// NewDevice creates a device with the given name and spec.
func NewDevice(name string, spec DeviceSpec) *Device {
	return &Device{spec: spec, name: name}
}

// NewDeviceOf creates a device of the given class with its default spec.
func NewDeviceOf(name string, class DeviceClass) *Device {
	return NewDevice(name, Spec(class))
}

// Name returns the device's name.
func (d *Device) Name() string { return d.name }

// Class returns the device's hardware class.
func (d *Device) Class() DeviceClass { return d.spec.Class }

// Spec returns the device's cost model.
func (d *Device) Spec() DeviceSpec { return d.spec }

func transferTime(n int64, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(bw) * float64(time.Second))
}

// SetSlowdown degrades (factor > 1) or restores (factor <= 1) the
// device's latency and bandwidth by a multiplier — the fault injector's
// model of a sick-but-alive device (media retries, thermal throttling,
// a congested link).
func (d *Device) SetSlowdown(factor float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if factor < 1 {
		factor = 1
	}
	d.slowdown = factor
}

// Slowdown reports the current latency multiplier (1 = healthy).
func (d *Device) Slowdown() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.slowdown < 1 {
		return 1
	}
	return d.slowdown
}

func (d *Device) readDur(n int64) time.Duration {
	dur := d.spec.ReadLatency + transferTime(n, d.spec.ReadBandwidth)
	if d.slowdown > 1 {
		dur = time.Duration(float64(dur) * d.slowdown)
	}
	return dur
}

func (d *Device) writeDur(n int64) time.Duration {
	dur := d.spec.WriteLatency + transferTime(n, d.spec.WriteBandwidth)
	if d.slowdown > 1 {
		dur = time.Duration(float64(dur) * d.slowdown)
	}
	return dur
}

// Read charges the cost of reading n bytes and returns the modelled
// duration.
func (d *Device) Read(n int64) time.Duration {
	d.mu.Lock()
	dur := d.readDur(n)
	d.stats.ReadOps++
	d.stats.ReadBytes += n
	d.stats.BusyTime += dur
	d.mu.Unlock()
	return dur
}

// Write charges the cost of writing n bytes and returns the modelled
// duration.
func (d *Device) Write(n int64) time.Duration {
	d.mu.Lock()
	dur := d.writeDur(n)
	d.stats.WriteOps++
	d.stats.WriteBytes += n
	d.stats.BusyTime += dur
	d.mu.Unlock()
	return dur
}

// RefundWrite reverses the accounting of one Write of n bytes. Redundant
// writes are issued in parallel; when enough of a placement group fails
// that the whole operation is abandoned, the survivors' charges are
// refunded so failed operations leave utilization stats unchanged.
func (d *Device) RefundWrite(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dur := d.writeDur(n)
	d.stats.WriteOps--
	d.stats.WriteBytes -= n
	d.stats.BusyTime -= dur
	if d.stats.WriteOps < 0 {
		d.stats.WriteOps = 0
	}
	if d.stats.WriteBytes < 0 {
		d.stats.WriteBytes = 0
	}
	if d.stats.BusyTime < 0 {
		d.stats.BusyTime = 0
	}
}

// Alloc reserves n bytes of capacity. It returns an error when the device
// has a finite capacity and the allocation would exceed it.
func (d *Device) Alloc(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.spec.Capacity > 0 && d.stats.Used+n > d.spec.Capacity {
		return fmt.Errorf("sim: device %s full: used %d + %d > capacity %d",
			d.name, d.stats.Used, n, d.spec.Capacity)
	}
	d.stats.Used += n
	return nil
}

// Free releases n bytes of previously allocated capacity.
func (d *Device) Free(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Used -= n
	if d.stats.Used < 0 {
		d.stats.Used = 0
	}
}

// Used reports the bytes currently allocated on the device.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats.Used
}

// Stats returns a snapshot of the device's accumulated activity.
func (d *Device) Stats() DeviceStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
