package sim

import (
	"testing"
	"time"
)

func TestDeviceClassStrings(t *testing.T) {
	cases := map[DeviceClass]string{
		SCM: "scm", NVMeSSD: "nvme-ssd", SASHDD: "sas-hdd",
		Net10GbE: "10gbe", NetRDMA: "rdma",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
	if DeviceClass(99).String() == "" {
		t.Fatal("unknown class has empty name")
	}
}

func TestSpecUnknownClassHasSaneDefaults(t *testing.T) {
	s := Spec(DeviceClass(42))
	if s.ReadBandwidth <= 0 || s.WriteBandwidth <= 0 {
		t.Fatalf("default spec: %+v", s)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("snapshot: %+v", s)
	}
	if !(s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("percentile ordering: %+v", s)
	}
	if s.Mean < 40*time.Millisecond || s.Mean > 60*time.Millisecond {
		t.Fatalf("mean: %v", s.Mean)
	}
}

func TestNormFloat64Distribution(t *testing.T) {
	r := NewRNG(17)
	var sum, sumSq float64
	n := 10_000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.1 || mean > 0.1 {
		t.Fatalf("mean %v not near 0", mean)
	}
	if variance < 0.8 || variance > 1.2 {
		t.Fatalf("variance %v not near 1", variance)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(-1) did not panic")
		}
	}()
	NewRNG(1).Int63n(-1)
}

func TestZeroSeedRemapped(t *testing.T) {
	a := NewRNG(0)
	if a.Uint64() == 0 {
		t.Fatal("zero-seed generator degenerate")
	}
}
