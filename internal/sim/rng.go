package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core,
// xorshift mix) used everywhere the reproduction needs randomness, so that
// every experiment is bit-for-bit reproducible from its seed without
// depending on math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed zero is remapped so the
// generator never degenerates.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics when n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum of twelve uniforms (Irwin–Hall); plenty for workload synthesis.
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s >= 0
// (s==0 is uniform). It uses rejection-free inverse-CDF over precomputed
// weights for small n, falling back to a power-law transform for large n.
type Zipf struct {
	rng *RNG
	cdf []float64
	n   int
	s   float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	z := &Zipf{rng: rng, n: n, s: s}
	if n <= 1<<16 {
		cdf := make([]float64, n)
		var sum float64
		for i := 0; i < n; i++ {
			w := 1.0
			if s > 0 {
				w = 1.0 / pow(float64(i+1), s)
			}
			sum += w
			cdf[i] = sum
		}
		for i := range cdf {
			cdf[i] /= sum
		}
		z.cdf = cdf
	}
	return z
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// Next draws one sample.
func (z *Zipf) Next() int {
	if z.cdf != nil {
		u := z.rng.Float64()
		lo, hi := 0, len(z.cdf)
		for lo < hi {
			mid := (lo + hi) / 2
			if z.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= z.n {
			lo = z.n - 1
		}
		return lo
	}
	// Approximate power-law for very large n.
	u := z.rng.Float64()
	x := math.Pow(float64(z.n), 1-z.s*u)
	i := int(x) % z.n
	if i < 0 {
		i = -i
	}
	return i
}
