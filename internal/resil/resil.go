// Package resil provides the request-resilience primitives the data
// path composes against an unreliable network: virtual-time deadlines
// carried down the stack by a request context, seeded jittered
// exponential backoff for retries, and a per-endpoint circuit breaker
// with half-open probing. Everything is measured against the simulated
// virtual clock — the request path never advances the clock itself, so
// a context tracks the virtual time a request *would* complete at
// (start + accumulated modelled cost) and deadlines are checked against
// that, keeping seeded scenarios bit-for-bit reproducible.
package resil

import (
	"errors"
	"sync"
	"time"

	"streamlake/internal/sim"
)

// Errors surfaced by the resilience layer. The gateway maps both to
// 503 + Retry-After: the client did nothing wrong, the service is
// shedding or out of time.
var (
	// ErrDeadlineExceeded reports that a request ran past its
	// virtual-time deadline. The operation may still have become durable
	// (an ambiguous timeout); idempotent retry resolves the ambiguity.
	ErrDeadlineExceeded = errors.New("resil: virtual-time deadline exceeded")
	// ErrBreakerOpen reports that the endpoint's circuit breaker is
	// shedding load instead of queueing requests behind a sick endpoint.
	ErrBreakerOpen = errors.New("resil: circuit breaker open")
)

// Ctx carries one request's resilience state down the stack: the
// absolute virtual-time deadline and the modelled cost accumulated so
// far. Each layer charges the costs it generates (bus transfer, journal
// ack, PLog read) and checks the deadline before starting work. A nil
// *Ctx is valid everywhere and means "no deadline, no tracking" — the
// same nil-receiver idiom as obs.Span.
//
// A Ctx belongs to one request on one goroutine; it is not shared.
type Ctx struct {
	deadline time.Duration // absolute virtual time; 0 = none
	start    time.Duration // virtual time the request began
	spent    time.Duration // modelled cost accumulated so far
}

// NewCtx builds a request context starting at virtual time now with the
// given timeout (<= 0 means no deadline, cost tracking only).
func NewCtx(now, timeout time.Duration) *Ctx {
	c := &Ctx{start: now}
	if timeout > 0 {
		c.deadline = now + timeout
	}
	return c
}

// Deadline returns the absolute virtual-time deadline (0 = none).
func (c *Ctx) Deadline() time.Duration {
	if c == nil {
		return 0
	}
	return c.deadline
}

// Now returns the request's effective virtual time: its start plus
// every cost charged so far.
func (c *Ctx) Now() time.Duration {
	if c == nil {
		return 0
	}
	return c.start + c.spent
}

// Spent returns the modelled cost accumulated so far.
func (c *Ctx) Spent() time.Duration {
	if c == nil {
		return 0
	}
	return c.spent
}

// Check reports ErrDeadlineExceeded when the request's effective time
// has passed its deadline. Nil-safe no-op.
func (c *Ctx) Check() error {
	if c == nil || c.deadline == 0 {
		return nil
	}
	if c.start+c.spent > c.deadline {
		return ErrDeadlineExceeded
	}
	return nil
}

// Charge accumulates a modelled cost onto the request and then checks
// the deadline. The charge always lands — time spent is spent even when
// it pushes the request over — so callers can report the true cost
// alongside the error. Nil-safe no-op.
func (c *Ctx) Charge(d time.Duration) error {
	if c == nil {
		return nil
	}
	if d > 0 {
		c.spent += d
	}
	return c.Check()
}

// Remaining returns the virtual time left before the deadline (0 when
// exceeded; a large positive value when no deadline is set).
func (c *Ctx) Remaining() time.Duration {
	if c == nil || c.deadline == 0 {
		return time.Duration(1<<63 - 1)
	}
	r := c.deadline - (c.start + c.spent)
	if r < 0 {
		return 0
	}
	return r
}

// RetryPolicy is a seeded jittered exponential backoff schedule.
type RetryPolicy struct {
	// MaxAttempts bounds total tries (first attempt included); <= 1
	// means no retries.
	MaxAttempts int
	// Base is the backoff before the first retry.
	Base time.Duration
	// Cap bounds the exponential growth.
	Cap time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
}

// DefaultRetryPolicy matches the bus's RDMA-class timeouts: a handful
// of quick retries, jittered so synchronized retry storms decorrelate.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Base: 200 * time.Microsecond, Cap: 5 * time.Millisecond, Multiplier: 2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Cap <= 0 {
		p.Cap = d.Cap
	}
	if p.Multiplier <= 1 {
		p.Multiplier = d.Multiplier
	}
	return p
}

// Backoff returns the jittered wait before retry number attempt (0 =
// first retry). Equal jitter: half the exponential step is fixed, half
// drawn from rng, so backoff stays bounded away from zero while
// decorrelating concurrent retriers. Deterministic given the rng state.
func (p RetryPolicy) Backoff(attempt int, rng *sim.RNG) time.Duration {
	p = p.withDefaults()
	b := float64(p.Base)
	for i := 0; i < attempt; i++ {
		b *= p.Multiplier
		if b >= float64(p.Cap) {
			b = float64(p.Cap)
			break
		}
	}
	half := b / 2
	j := half
	if rng != nil {
		j = rng.Float64() * half
	}
	return time.Duration(half + j)
}

// BreakerState is the circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes traffic, Open sheds it, HalfOpen lets
// one probe through to test recovery.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String names the state for status displays.
func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is how many failures within Window trip the
	// breaker (default 5).
	FailureThreshold int
	// Window is the virtual-time span failures are counted over
	// (default 50ms).
	Window time.Duration
	// Cooldown is how long the breaker stays open before letting a
	// half-open probe through (default 20ms).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Window <= 0 {
		c.Window = 50 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 20 * time.Millisecond
	}
	return c
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	Trips  int64 // transitions into Open
	Sheds  int64 // requests rejected while Open (or during a probe)
	Probes int64 // half-open probes admitted
}

// Breaker is a per-endpoint circuit breaker over virtual time. All
// times passed in are virtual (a request's effective now); the breaker
// never reads a clock itself.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    []time.Duration // failure times within the window
	openedAt time.Duration
	probing  bool // a half-open probe is in flight
	stats    BreakerStats
}

// NewBreaker builds a breaker with the given (defaulted) config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed at virtual time now. Open
// breakers shed (ErrBreakerOpen) until the cooldown elapses, then admit
// exactly one half-open probe; further requests shed until the probe
// resolves via Success or Failure.
func (b *Breaker) Allow(now time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if now >= b.openedAt+b.cfg.Cooldown {
			b.state = HalfOpen
			b.probing = true
			b.stats.Probes++
			return nil
		}
		b.stats.Sheds++
		return ErrBreakerOpen
	default: // HalfOpen
		if b.probing {
			b.stats.Sheds++
			return ErrBreakerOpen
		}
		b.probing = true
		b.stats.Probes++
		return nil
	}
}

// Success reports a request that completed; a half-open probe success
// closes the breaker and clears the failure window.
func (b *Breaker) Success(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.state = Closed
		b.probing = false
	}
	b.fails = b.fails[:0]
}

// Failure reports a failed request at virtual time now and returns
// whether this failure tripped the breaker into Open.
func (b *Breaker) Failure(now time.Duration) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		// The probe failed: snap back open and restart the cooldown.
		b.state = Open
		b.openedAt = now
		b.probing = false
		b.stats.Trips++
		return true
	}
	if b.state == Open {
		return false
	}
	b.fails = append(b.fails, now)
	keep := b.fails[:0]
	for _, t := range b.fails {
		if t+b.cfg.Window >= now {
			keep = append(keep, t)
		}
	}
	b.fails = keep
	if len(b.fails) >= b.cfg.FailureThreshold {
		b.state = Open
		b.openedAt = now
		b.fails = b.fails[:0]
		b.stats.Trips++
		return true
	}
	return false
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long from virtual time now until the breaker
// would admit a probe (0 when not open).
func (b *Breaker) RetryAfter(now time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	r := b.openedAt + b.cfg.Cooldown - now
	if r < 0 {
		return 0
	}
	return r
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
