package resil

import (
	"testing"
	"time"

	"streamlake/internal/sim"
)

func TestCtxNilIsNoOp(t *testing.T) {
	var rc *Ctx
	if err := rc.Check(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Charge(time.Hour); err != nil {
		t.Fatal(err)
	}
	if rc.Spent() != 0 || rc.Now() != 0 || rc.Deadline() != 0 {
		t.Fatal("nil ctx leaked state")
	}
	if rc.Remaining() <= 0 {
		t.Fatal("nil ctx should report unbounded remaining time")
	}
}

func TestCtxChargesAgainstDeadline(t *testing.T) {
	rc := NewCtx(10*time.Millisecond, 5*time.Millisecond)
	if err := rc.Charge(2 * time.Millisecond); err != nil {
		t.Fatalf("under budget: %v", err)
	}
	if got := rc.Now(); got != 12*time.Millisecond {
		t.Fatalf("effective now: %v", got)
	}
	if got := rc.Remaining(); got != 3*time.Millisecond {
		t.Fatalf("remaining: %v", got)
	}
	// The charge that pushes past the deadline still lands: time spent
	// is spent, the caller just learns it was too much.
	if err := rc.Charge(4 * time.Millisecond); err != ErrDeadlineExceeded {
		t.Fatalf("over budget: %v", err)
	}
	if got := rc.Spent(); got != 6*time.Millisecond {
		t.Fatalf("spent after overrun: %v", got)
	}
	if got := rc.Remaining(); got != 0 {
		t.Fatalf("remaining after overrun: %v", got)
	}
}

func TestCtxNoDeadlineTracksCostOnly(t *testing.T) {
	rc := NewCtx(time.Millisecond, 0)
	if err := rc.Charge(time.Hour); err != nil {
		t.Fatalf("deadline-free ctx errored: %v", err)
	}
	if rc.Spent() != time.Hour {
		t.Fatalf("spent: %v", rc.Spent())
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, Base: 200 * time.Microsecond, Cap: 5 * time.Millisecond, Multiplier: 2}
	a := sim.NewRNG(99)
	b := sim.NewRNG(99)
	for attempt := 0; attempt < 8; attempt++ {
		d1 := p.Backoff(attempt, a)
		d2 := p.Backoff(attempt, b)
		if d1 != d2 {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, d1, d2)
		}
		// Equal jitter: the wait is in [step/2, step] for the attempt's
		// exponential step, and never exceeds the cap.
		step := time.Duration(float64(p.Base) * float64(int(1)<<attempt))
		if step > p.Cap {
			step = p.Cap
		}
		if d1 < step/2 || d1 > step {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d1, step/2, step)
		}
	}
}

func TestBackoffNilRNGIsFullStep(t *testing.T) {
	p := RetryPolicy{Base: time.Millisecond, Cap: time.Second, Multiplier: 2, MaxAttempts: 3}
	if got := p.Backoff(0, nil); got != time.Millisecond {
		t.Fatalf("nil rng backoff: %v", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Window: 10 * time.Millisecond, Cooldown: 5 * time.Millisecond})
	now := time.Duration(0)
	if b.State() != Closed {
		t.Fatal("new breaker not closed")
	}
	// Two failures stay under the threshold.
	for i := 0; i < 2; i++ {
		if b.Failure(now) {
			t.Fatal("tripped early")
		}
	}
	if !b.Failure(now) {
		t.Fatal("threshold failure did not trip")
	}
	if b.State() != Open {
		t.Fatalf("state after trip: %v", b.State())
	}
	// Open sheds until the cooldown elapses.
	if err := b.Allow(now + time.Millisecond); err != ErrBreakerOpen {
		t.Fatalf("open breaker admitted: %v", err)
	}
	if got := b.RetryAfter(now + time.Millisecond); got != 4*time.Millisecond {
		t.Fatalf("retry after: %v", got)
	}
	// Cooldown over: exactly one probe goes through, the rest shed.
	now += 5 * time.Millisecond
	if err := b.Allow(now); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	if err := b.Allow(now); err != ErrBreakerOpen {
		t.Fatalf("second probe admitted: %v", err)
	}
	// Probe failure snaps back open and restarts the cooldown.
	if !b.Failure(now) {
		t.Fatal("probe failure did not reopen")
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe: %v", b.State())
	}
	// Next probe succeeds: closed, and the failure window is clear.
	now += 5 * time.Millisecond
	if err := b.Allow(now); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Success(now)
	if b.State() != Closed {
		t.Fatalf("state after successful probe: %v", b.State())
	}
	if b.Failure(now) {
		t.Fatal("window not cleared by recovery")
	}
	st := b.Stats()
	if st.Trips != 2 || st.Probes != 2 || st.Sheds != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Window: time.Millisecond, Cooldown: time.Millisecond})
	b.Failure(0)
	// The first failure ages out of the window before the second lands,
	// so the breaker never sees two concurrent failures.
	if b.Failure(5 * time.Millisecond) {
		t.Fatal("stale failure counted toward the threshold")
	}
	if b.State() != Closed {
		t.Fatalf("state: %v", b.State())
	}
}
