package compact

import (
	"errors"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

// Env is the compaction training/evaluation environment: partitions
// continuously ingest small files; compaction merges them binpack-style
// toward the target file size, consuming compute and racing ingestion
// commits (a concurrent ingest commit fails the compaction, the negative
// path of the paper's reward).
type Env struct {
	clock          *sim.Clock
	rng            *sim.RNG
	BlockSize      int64
	TargetFileSize int64
	IngestRate     float64 // small files per second per partition
	QueryRate      float64
	SmallFileSize  int64
	ConflictProb   float64 // chance an active ingest kills a compaction

	parts []*envPartition
}

type envPartition struct {
	name         string
	files        []int64
	accessFreq   float64
	lastAccess   time.Duration
	recentIngest int // files that arrived in the last tick
}

// NewEnv builds an environment with n partitions.
func NewEnv(clock *sim.Clock, n int, seed uint64) *Env {
	e := &Env{
		clock:          clock,
		rng:            sim.NewRNG(seed),
		BlockSize:      4 << 20,
		TargetFileSize: 64 << 20,
		IngestRate:     10,
		QueryRate:      5,
		SmallFileSize:  2 << 20,
		// Probability a compaction loses the commit race at full
		// ingestion activity.
		ConflictProb: 0.9,
	}
	for i := 0; i < n; i++ {
		e.parts = append(e.parts, &envPartition{
			name:       partName(i),
			accessFreq: 0.2 + e.rng.Float64(),
		})
	}
	return e
}

func partName(i int) string {
	return string(rune('p')) + string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}

// Partitions returns the partition count.
func (e *Env) Partitions() int { return len(e.parts) }

// GlobalUtil computes the environment-wide block utilization.
func (e *Env) GlobalUtil() float64 {
	var all []int64
	for _, p := range e.parts {
		all = append(all, p.files...)
	}
	return BlockUtilization(all, e.BlockSize)
}

// StateOf builds the RL state for partition i.
func (e *Env) StateOf(i int) State {
	p := e.parts[i]
	recency := float64(e.clock.Now()-p.lastAccess) / float64(time.Hour+1)
	return State{
		TargetFileSize: e.TargetFileSize,
		IngestRate:     e.IngestRate,
		QueryRate:      e.QueryRate,
		GlobalUtil:     e.GlobalUtil(),
		PartFiles:      len(p.files),
		PartUtil:       BlockUtilization(p.files, e.BlockSize),
		PartAccessFreq: p.accessFreq,
		PartRecency:    recency,
	}
}

// Ingest advances the environment by dt: each partition receives
// ingestRate*dt small files (stochastically rounded).
func (e *Env) Ingest(dt time.Duration) {
	expected := e.IngestRate * dt.Seconds()
	for _, p := range e.parts {
		n := int(expected)
		if e.rng.Float64() < expected-float64(n) {
			n++
		}
		p.recentIngest = n
		for j := 0; j < n; j++ {
			size := e.SmallFileSize/2 + e.rng.Int63n(e.SmallFileSize)
			p.files = append(p.files, size)
		}
		if e.rng.Float64() < p.accessFreq*dt.Seconds() {
			p.lastAccess = e.clock.Now()
		}
	}
	e.clock.Advance(dt)
}

// StepResult reports one compaction attempt.
type StepResult struct {
	Attempted  bool
	Success    bool
	UtilBefore float64
	UtilAfter  float64
	Reward     float64
	Merged     int
}

// Compact attempts to compact partition i, returning the outcome and
// the paper-formula reward.
func (e *Env) Compact(i int) StepResult {
	p := e.parts[i]
	before := BlockUtilization(p.files, e.BlockSize)
	plan := BinpackPlan(p.files, e.TargetFileSize)
	if len(plan) == 0 {
		return StepResult{Attempted: false, UtilBefore: before, UtilAfter: before}
	}
	// Expected post-merge utilization, for the failure reward.
	expectedAfter := e.utilAfterPlan(p.files, plan)
	expectedImprovement := expectedAfter - before
	// Concurrent ingest commits conflict with the compaction commit:
	// the busier the partition's ingestion right now, the likelier the
	// compaction loses the commit race — the state-dependent failure
	// mode the RL agent learns to sidestep.
	activity := float64(p.recentIngest) / 20
	if activity > 1 {
		activity = 1
	}
	ingestActive := e.rng.Float64() < e.ConflictProb*activity
	if ingestActive {
		r := Reward(false, before, before, expectedImprovement)
		return StepResult{Attempted: true, Success: false, UtilBefore: before, UtilAfter: before, Reward: r}
	}
	merged := e.applyPlan(p, plan)
	after := BlockUtilization(p.files, e.BlockSize)
	return StepResult{
		Attempted: true, Success: true,
		UtilBefore: before, UtilAfter: after,
		Reward: Reward(true, before, after, expectedImprovement),
		Merged: merged,
	}
}

func (e *Env) utilAfterPlan(files []int64, plan [][]int) float64 {
	out := append([]int64(nil), files...)
	inPlan := map[int]bool{}
	var merged []int64
	for _, bin := range plan {
		var sum int64
		for _, idx := range bin {
			inPlan[idx] = true
			sum += files[idx]
		}
		merged = append(merged, sum)
	}
	kept := merged
	for i, f := range out {
		if !inPlan[i] {
			kept = append(kept, f)
		}
	}
	return BlockUtilization(kept, e.BlockSize)
}

func (e *Env) applyPlan(p *envPartition, plan [][]int) int {
	inPlan := map[int]bool{}
	var merged []int64
	mergedCount := 0
	for _, bin := range plan {
		var sum int64
		for _, idx := range bin {
			inPlan[idx] = true
			sum += p.files[idx]
			mergedCount++
		}
		merged = append(merged, sum)
	}
	var kept []int64
	for i, f := range p.files {
		if !inPlan[i] {
			kept = append(kept, f)
		}
	}
	p.files = append(kept, merged...)
	return mergedCount
}

// QueryCost models the read cost over a partition: a per-file open cost
// plus a bandwidth term — why many small files hurt merge-on-read
// queries.
func (e *Env) QueryCost(i int) time.Duration {
	p := e.parts[i]
	const perFile = 2 * time.Millisecond
	var bytes int64
	for _, f := range p.files {
		bytes += f
	}
	return time.Duration(len(p.files))*perFile +
		time.Duration(float64(bytes)/(1<<30)*float64(time.Second))
}

// TotalQueryCost sums QueryCost over all partitions.
func (e *Env) TotalQueryCost() time.Duration {
	var total time.Duration
	for i := range e.parts {
		total += e.QueryCost(i)
	}
	return total
}

// CycleIngestRate sets the environment's ingest rate following a
// high/low duty cycle — the varying file ingestion speed of the paper's
// block-utilization experiment.
func (e *Env) CycleIngestRate(round int) {
	if round%16 < 12 {
		e.IngestRate = 20 // ingestion storm: compactions likely conflict
	} else {
		e.IngestRate = 1 // calm window: compactions succeed
	}
}

// TrainAuto trains a QLearner on the environment for the given number of
// decision rounds (with a cycling ingest rate and decaying exploration)
// and returns it with exploration turned off.
func TrainAuto(env *Env, rounds int, seed uint64) *QLearner {
	q := NewQLearner(seed)
	for r := 0; r < rounds; r++ {
		// Decay exploration from 0.5 to 0.05 across training.
		q.SetEpsilon(0.5 - 0.45*float64(r)/float64(rounds))
		env.CycleIngestRate(r)
		env.Ingest(5 * time.Second)
		for i := 0; i < env.Partitions(); i++ {
			s := env.StateOf(i)
			act := q.Decide(s)
			var reward float64
			if act {
				res := env.Compact(i)
				reward = res.Reward
			} else {
				// Declining to compact: negative pressure proportional
				// to how badly the partition's utilization is rotting.
				reward = -0.25 * (1 - s.PartUtil)
			}
			q.Observe(s, act, reward, env.StateOf(i), false)
		}
		if r%32 == 31 {
			q.Train(1)
		}
	}
	q.SetEpsilon(0)
	return q
}

// CompactPartition merges a real table partition's small files binpack-
// style in one transaction: the merged rows are rewritten as one file
// and the inputs removed. A concurrent commit surfaces as
// tableobj.ErrConflict — the real-system failure the RL reward models.
// It returns how many files were merged away and the modelled I/O cost.
func CompactPartition(tbl *tableobj.Table, partition string, targetFileSize int64) (int, time.Duration, error) {
	snap, snapCost, err := tbl.Current()
	if err != nil {
		return 0, snapCost, err
	}
	cost := snapCost
	var files []tableobj.DataFile
	var sizes []int64
	for _, f := range snap.Files {
		if f.Partition == partition {
			files = append(files, f)
			sizes = append(sizes, f.Bytes)
		}
	}
	plan := BinpackPlan(sizes, targetFileSize)
	if len(plan) == 0 {
		return 0, cost, nil
	}
	x, err := tbl.Begin()
	if err != nil {
		return 0, cost, err
	}
	merged := 0
	for _, bin := range plan {
		var rows []colfile.Row
		for _, idx := range bin {
			r, rc, err := tbl.ReadFile(files[idx])
			if err != nil {
				return 0, cost, err
			}
			cost += rc
			r.Scan(func(row colfile.Row) bool {
				rows = append(rows, append(colfile.Row(nil), row...))
				return true
			})
			x.RemoveFile(files[idx])
			merged++
		}
		if len(rows) == 0 {
			continue
		}
		if _, err := x.WriteRows(rows); err != nil {
			return 0, cost, err
		}
	}
	if _, err := x.Commit(); err != nil {
		if errors.Is(err, tableobj.ErrConflict) {
			x.Abort()
		}
		return 0, cost + x.Cost(), err
	}
	return merged, cost + x.Cost(), nil
}
