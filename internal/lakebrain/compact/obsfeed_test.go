package compact

import (
	"testing"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

func TestObsStateDerivesRates(t *testing.T) {
	clock := sim.NewClock()
	reg := obs.NewRegistry(clock)
	feed := NewObsFeed(reg)

	reg.Gauge(`pool_utilization{pool="ssd"}`).Set(0.4)
	reg.Counter("streamsvc_produced_messages_total").Add(50)
	reg.Counter("query_queries_total").Add(10)
	reg.Counter("lakehouse_plans_total").Add(10)
	clock.Advance(10 * time.Second)

	s := feed.State(64 << 20)
	if s.IngestRate != 5 {
		t.Fatalf("ingest rate = %v, want 5 msgs/s", s.IngestRate)
	}
	if s.QueryRate != 2 {
		t.Fatalf("query rate = %v, want 2/s", s.QueryRate)
	}
	if s.GlobalUtil != 0.4 {
		t.Fatalf("global util = %v, want 0.4", s.GlobalUtil)
	}
	if s.TargetFileSize != 64<<20 {
		t.Fatalf("target file size = %v", s.TargetFileSize)
	}

	// The window slides: a second call with no new activity reads zero
	// rates, not the cumulative totals.
	clock.Advance(10 * time.Second)
	s = feed.State(64 << 20)
	if s.IngestRate != 0 || s.QueryRate != 0 {
		t.Fatalf("stale window: ingest=%v query=%v", s.IngestRate, s.QueryRate)
	}
}

func TestObsStateZeroWindow(t *testing.T) {
	clock := sim.NewClock()
	reg := obs.NewRegistry(clock)
	feed := NewObsFeed(reg)
	// No virtual time elapsed: rates are zero rather than dividing by
	// zero.
	s := feed.State(1)
	if s.IngestRate != 0 || s.QueryRate != 0 {
		t.Fatalf("zero-window rates: %+v", s)
	}
	// A nil registry degrades to zero features.
	nilFeed := NewObsFeed(nil)
	if s := nilFeed.State(7); s.TargetFileSize != 7 || s.GlobalUtil != 0 {
		t.Fatalf("nil-registry state: %+v", s)
	}
}

// TestPolicyFollowsObservedHeat closes the LakeBrain loop: a trained
// policy fed from registry snapshots compacts when the observed system
// is hot (heavy ingest, slack utilization) and holds off when the
// observed system is cold and tight — the same learner, different
// decisions, driven only by what the metrics registry reports.
func TestPolicyFollowsObservedHeat(t *testing.T) {
	q := NewQLearner(11)
	hot := State{PartFiles: 20, PartUtil: 0.5, GlobalUtil: 0.3, IngestRate: 10}
	cold := State{PartFiles: 20, PartUtil: 0.5, GlobalUtil: 0.9, IngestRate: 0}
	for i := 0; i < 2000; i++ {
		q.Observe(hot, true, 0.7, hot, false)
		q.Observe(hot, false, -0.2, hot, false)
		q.Observe(cold, true, -0.6, cold, false)
		q.Observe(cold, false, 0.0, cold, false)
	}
	q.Train(3)
	q.SetEpsilon(0)

	clock := sim.NewClock()
	reg := obs.NewRegistry(clock)
	feed := NewObsFeed(reg)
	produced := reg.Counter("streamsvc_produced_messages_total")
	util := reg.Gauge(`pool_utilization{pool="ssd"}`)

	observe := func() State {
		s := feed.State(64 << 20)
		// Partition features are per-partition inputs, held constant so
		// the decision difference is attributable to the observed
		// globals.
		s.PartFiles = 20
		s.PartUtil = 0.5
		return s
	}

	// Hot window: 100 messages over 10s, utilization 0.3.
	util.Set(0.3)
	produced.Add(100)
	clock.Advance(10 * time.Second)
	if !q.Exploit(observe()) {
		t.Fatal("policy refused compaction under observed hot ingest")
	}

	// Cold window: no ingest, utilization 0.9.
	util.Set(0.9)
	clock.Advance(10 * time.Second)
	if q.Exploit(observe()) {
		t.Fatal("policy compacted under observed cold, tight system")
	}
}
