// Observability feed: LakeBrain's compaction policy derives its global
// state features from the metrics registry instead of hand-fed inputs.
// Two registry snapshots bracket an observation window; counter deltas
// over the window's virtual time become rates, and the pool utilization
// gauge becomes the global utilization feature. This closes the loop the
// paper describes — the storage-side optimizer watching the system it
// optimizes.
package compact

import (
	"time"

	"streamlake/internal/obs"
)

// ObsState derives a State's global features from two registry
// snapshots taken across an observation window (prev before, cur
// after). Partition features are not observable from global metrics and
// are left zero for the caller to fill per partition. targetFileSize
// passes through.
//
// Feature mapping:
//   - IngestRate: streaming messages produced per virtual second — the
//     small-file arrival pressure of Section VI-A's ingestion speed.
//   - QueryRate: SQL queries plus lakehouse scan plans per virtual
//     second — the query pattern feature.
//   - GlobalUtil: the SSD pool's utilization gauge at cur.
func ObsState(prev, cur obs.Snapshot, targetFileSize int64) State {
	window := (cur.At - prev.At).Seconds()
	s := State{
		TargetFileSize: targetFileSize,
		GlobalUtil:     cur.Gauge(`pool_utilization{pool="ssd"}`),
	}
	if window <= 0 {
		return s
	}
	produced := cur.Counter("streamsvc_produced_messages_total") - prev.Counter("streamsvc_produced_messages_total")
	queries := cur.Counter("query_queries_total") - prev.Counter("query_queries_total")
	plans := cur.Counter("lakehouse_plans_total") - prev.Counter("lakehouse_plans_total")
	s.IngestRate = float64(produced) / window
	s.QueryRate = float64(queries+plans) / window
	return s
}

// ObsFeed maintains the previous snapshot so callers can periodically
// pull a fresh observed State from a live registry.
type ObsFeed struct {
	reg  *obs.Registry
	prev obs.Snapshot
}

// NewObsFeed starts a feed over the registry, priming the window with
// the current snapshot. A nil registry yields zero-feature states.
func NewObsFeed(reg *obs.Registry) *ObsFeed {
	f := &ObsFeed{reg: reg}
	if reg != nil {
		f.prev = reg.Snapshot()
	}
	return f
}

// State snapshots the registry, derives the observed global features
// over the window since the last call, and slides the window forward.
func (f *ObsFeed) State(targetFileSize int64) State {
	if f.reg == nil {
		return State{TargetFileSize: targetFileSize}
	}
	cur := f.reg.Snapshot()
	s := ObsState(f.prev, cur, targetFileSize)
	f.prev = cur
	return s
}

// Window reports the virtual time covered since the previous snapshot.
func (f *ObsFeed) Window(now time.Duration) time.Duration {
	return now - f.prev.At
}
