package compact

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

func TestBlockUtilizationFormula(t *testing.T) {
	// One 1MB file in a 4MB block: 0.25.
	if got := BlockUtilization([]int64{1 << 20}, 4<<20); got != 0.25 {
		t.Fatalf("util = %v", got)
	}
	// A full block: 1.0.
	if got := BlockUtilization([]int64{4 << 20}, 4<<20); got != 1 {
		t.Fatalf("full block util = %v", got)
	}
	// 5MB file: ceil(5/4)=2 blocks -> 5/8.
	if got := BlockUtilization([]int64{5 << 20}, 4<<20); got != 0.625 {
		t.Fatalf("spill util = %v", got)
	}
	// Merging helps: four 1MB files (4 blocks) vs one 4MB file (1 block).
	small := BlockUtilization([]int64{1 << 20, 1 << 20, 1 << 20, 1 << 20}, 4<<20)
	merged := BlockUtilization([]int64{4 << 20}, 4<<20)
	if small != 0.25 || merged != 1 {
		t.Fatalf("merge effect: %v -> %v", small, merged)
	}
	// Edge cases.
	if BlockUtilization(nil, 4<<20) != 1 || BlockUtilization([]int64{1}, 0) != 1 {
		t.Fatal("degenerate utilization")
	}
}

func TestBinpackPlan(t *testing.T) {
	target := int64(100)
	sizes := []int64{60, 50, 40, 30, 20, 150}
	plan := BinpackPlan(sizes, target)
	// File 5 (150 >= target) must not appear; each bin <= target; only
	// multi-file bins returned.
	seen := map[int]bool{}
	for _, bin := range plan {
		if len(bin) < 2 {
			t.Fatalf("singleton bin: %v", bin)
		}
		var sum int64
		for _, idx := range bin {
			if idx == 5 {
				t.Fatal("full file included in plan")
			}
			if seen[idx] {
				t.Fatalf("file %d in two bins", idx)
			}
			seen[idx] = true
			sum += sizes[idx]
		}
		if sum > target {
			t.Fatalf("bin exceeds target: %v = %d", bin, sum)
		}
	}
	if len(seen) < 4 {
		t.Fatalf("plan covers only %d files", len(seen))
	}
}

func TestQuickBinpackInvariants(t *testing.T) {
	f := func(raw []uint16, targetSel uint16) bool {
		target := int64(targetSel%1000) + 100
		sizes := make([]int64, len(raw))
		for i, r := range raw {
			sizes[i] = int64(r%500) + 1
		}
		plan := BinpackPlan(sizes, target)
		seen := map[int]bool{}
		for _, bin := range plan {
			if len(bin) < 2 {
				return false
			}
			var sum int64
			for _, idx := range bin {
				if idx < 0 || idx >= len(sizes) || seen[idx] || sizes[idx] >= target {
					return false
				}
				seen[idx] = true
				sum += sizes[idx]
			}
			if sum > target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRewardFormula(t *testing.T) {
	// Success: utilization improvement.
	if got := Reward(true, 0.3, 0.8, 0.5); got != 0.5 {
		t.Fatalf("success reward %v", got)
	}
	// Failure: -(1 - expected improvement).
	if got := Reward(false, 0.3, 0.3, 0.1); got != -0.9 {
		t.Fatalf("failure reward %v", got)
	}
	// A failure with large expected improvement is punished less: the
	// agent should still try when the payoff is big.
	if Reward(false, 0, 0, 0.8) <= Reward(false, 0, 0, 0.1) {
		t.Fatal("failure reward not monotone in expected improvement")
	}
}

func TestDefaultStrategyInterval(t *testing.T) {
	d := NewDefault(30 * time.Second)
	p := d.ForPartition("p1")
	s := State{PartFiles: 10}
	if !p.ShouldCompact(30*time.Second, s) {
		t.Fatal("interval elapsed but no compaction")
	}
	if p.ShouldCompact(45*time.Second, s) {
		t.Fatal("fired before interval")
	}
	if !p.ShouldCompact(61*time.Second, s) {
		t.Fatal("second interval missed")
	}
	// Never compacts a single file.
	if p.ShouldCompact(200*time.Second, State{PartFiles: 1}) {
		t.Fatal("compacted single file")
	}
}

func TestEnvIngestAndCompact(t *testing.T) {
	clock := sim.NewClock()
	env := NewEnv(clock, 4, 1)
	env.ConflictProb = 0 // deterministic success for this test
	env.Ingest(10 * time.Second)
	if env.StateOf(0).PartFiles == 0 {
		t.Fatal("no files ingested")
	}
	before := env.StateOf(0).PartUtil
	res := env.Compact(0)
	if !res.Attempted || !res.Success {
		t.Fatalf("compact: %+v", res)
	}
	if res.UtilAfter <= before || res.Reward <= 0 {
		t.Fatalf("no improvement: %+v", res)
	}
	// Query cost drops after compaction.
	costBefore := env.QueryCost(1)
	env.ConflictProb = 0
	env.Compact(1)
	if env.QueryCost(1) >= costBefore {
		t.Fatal("compaction did not reduce query cost")
	}
}

func TestEnvConflictGivesNegativeReward(t *testing.T) {
	clock := sim.NewClock()
	env := NewEnv(clock, 1, 2)
	env.ConflictProb = 1 // every compaction loses the commit race
	env.Ingest(10 * time.Second)
	res := env.Compact(0)
	if !res.Attempted || res.Success || res.Reward >= 0 {
		t.Fatalf("conflicted compaction: %+v", res)
	}
	// Files unchanged on failure.
	if res.UtilAfter != res.UtilBefore {
		t.Fatal("failed compaction mutated files")
	}
}

func TestQLearnerLearnsObviousPolicy(t *testing.T) {
	// Construct a world where compacting low-utilization partitions
	// always succeeds with high reward and compacting high-utilization
	// ones always wastes: the learner must separate the two states.
	q := NewQLearner(3)
	lowUtil := State{PartFiles: 40, PartUtil: 0.2, GlobalUtil: 0.3}
	highUtil := State{PartFiles: 2, PartUtil: 0.95, GlobalUtil: 0.9}
	for i := 0; i < 2000; i++ {
		q.Observe(lowUtil, true, 0.7, lowUtil, false)
		q.Observe(lowUtil, false, -0.2, lowUtil, false)
		q.Observe(highUtil, true, -0.6, highUtil, false)
		q.Observe(highUtil, false, 0.0, highUtil, false)
	}
	q.Train(3)
	q.SetEpsilon(0)
	if !q.Exploit(lowUtil) {
		t.Fatal("learner refuses profitable compaction")
	}
	if q.Exploit(highUtil) {
		t.Fatal("learner compacts already-tight partition")
	}
}

func TestTrainAutoBeatsDefaultOnUtilization(t *testing.T) {
	// Train, then run auto vs default over identical ingest traces and
	// compare average block utilization — the paper reports ~50% higher
	// for auto.
	train := NewEnv(sim.NewClock(), 8, 7)
	learner := TrainAuto(train, 300, 7)

	run := func(strategy Strategy, seed uint64) float64 {
		clock := sim.NewClock()
		env := NewEnv(clock, 8, seed)
		var utilSum float64
		var samples int
		def, isDefault := strategy.(*Default)
		for r := 0; r < 150; r++ {
			env.CycleIngestRate(r)
			env.Ingest(5 * time.Second)
			for i := 0; i < env.Partitions(); i++ {
				s := env.StateOf(i)
				var act bool
				if isDefault {
					act = def.ForPartition(partName(i)).ShouldCompact(clock.Now(), s)
				} else {
					act = strategy.ShouldCompact(clock.Now(), s)
				}
				if act {
					env.Compact(i)
				}
			}
			utilSum += env.GlobalUtil()
			samples++
		}
		return utilSum / float64(samples)
	}
	auto := run(&Auto{Learner: learner}, 99)
	def := run(NewDefault(30*time.Second), 99)
	t.Logf("auto util=%.3f default util=%.3f", auto, def)
	if auto <= def {
		t.Fatalf("auto-compaction (%.3f) did not beat default (%.3f)", auto, def)
	}
}

func TestCompactPartitionRealTable(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("cp", clock, sim.NVMeSSD, 8, 4<<20)
	fs := tableobj.NewFileStore(plog.NewManager(p, 8<<20))
	cat := tableobj.NewCatalog(clock)
	schema := colfile.MustSchema("k:int64", "p:string")
	tbl, _, err := tableobj.Create(clock, fs, cat, tableobj.TableMeta{
		Name: "t", Path: "/t", Schema: schema, PartitionColumn: "p",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ten tiny single-row files in one partition.
	for i := 0; i < 10; i++ {
		x, _ := tbl.Begin()
		if _, err := x.WriteRows([]colfile.Row{{colfile.IntValue(int64(i)), colfile.StringValue("A")}}); err != nil {
			t.Fatal(err)
		}
		if _, err := x.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	merged, cost, err := CompactPartition(tbl, "p=A", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 10 || cost <= 0 {
		t.Fatalf("merged %d files, cost %v", merged, cost)
	}
	cur, _, _ := tbl.Current()
	var partFiles int
	for _, f := range cur.Files {
		if f.Partition == "p=A" {
			partFiles++
		}
	}
	if partFiles != 1 || cur.RowCount != 10 {
		t.Fatalf("after compaction: %d files, %d rows", partFiles, cur.RowCount)
	}
	// All rows still readable.
	var rows int
	for _, f := range cur.Files {
		r, _, err := tbl.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		r.Scan(func(colfile.Row) bool { rows++; return true })
	}
	if rows != 10 {
		t.Fatalf("rows after compaction: %d", rows)
	}
}

func TestCompactPartitionConflict(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("cc", clock, sim.NVMeSSD, 8, 4<<20)
	fs := tableobj.NewFileStore(plog.NewManager(p, 8<<20))
	cat := tableobj.NewCatalog(clock)
	schema := colfile.MustSchema("k:int64", "p:string")
	tbl, _, _ := tableobj.Create(clock, fs, cat, tableobj.TableMeta{
		Name: "t", Path: "/t", Schema: schema, PartitionColumn: "p",
	})
	for i := 0; i < 4; i++ {
		x, _ := tbl.Begin()
		x.WriteRows([]colfile.Row{{colfile.IntValue(int64(i)), colfile.StringValue("A")}})
		x.Commit()
	}
	// Interleave: a concurrent ingest commits between the compaction's
	// snapshot read and its commit. Reproduce by committing under the
	// compactor's feet via a second transaction started first.
	snapBefore, _, _ := tbl.Current()
	ingest, _ := tbl.Begin()
	ingest.WriteRows([]colfile.Row{{colfile.IntValue(99), colfile.StringValue("A")}})

	done := make(chan error, 1)
	go func() {
		// The compactor reads current state, plans, then the ingest
		// wins the pointer CAS first.
		_, err := ingest.Commit()
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Now run a compaction whose Begin() predates... simulate by using
	// the stale snapshot through a manual transaction.
	x, _ := tbl.Begin()
	_ = snapBefore
	for _, f := range snapBefore.Files {
		x.RemoveFile(f)
	}
	// A racing ingest commits again before x.
	y, _ := tbl.Begin()
	y.WriteRows([]colfile.Row{{colfile.IntValue(100), colfile.StringValue("A")}})
	if _, err := y.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.Commit(); !errors.Is(err, tableobj.ErrConflict) {
		t.Fatalf("stale compaction commit: %v", err)
	}
}
