// Package compact implements LakeBrain's automatic compaction
// (Section VI-A, Figure 10): a reinforcement-learning agent that decides,
// per table partition and system state, whether to compact small files.
// The state concatenates global features (target file size, ingestion
// speed, query pattern, global block utilization) with partition
// features (access frequency/recency, partition block utilization); the
// reward is the block-utilization improvement on success and
// -(1 - expected improvement) on a commit-conflict failure; the merge
// itself uses the binpack strategy. The paper's Default-compaction
// baseline — a static 30-second interval — is also provided.
package compact

import (
	"math"
	"sort"
	"time"

	"streamlake/internal/sim"
)

// BlockUtilization is the paper's formula: sum(f_i) / (K * sum(ceil(f_i/K)))
// for file sizes f_i and block size K — how much of the allocated block
// space the files actually fill.
func BlockUtilization(fileSizes []int64, blockSize int64) float64 {
	if len(fileSizes) == 0 || blockSize <= 0 {
		return 1
	}
	var used, allocated int64
	for _, f := range fileSizes {
		if f <= 0 {
			continue
		}
		used += f
		allocated += blockSize * ((f + blockSize - 1) / blockSize)
	}
	if allocated == 0 {
		return 1
	}
	return float64(used) / float64(allocated)
}

// BinpackPlan groups files into compaction outputs of at most targetSize
// bytes using first-fit decreasing — the binpack strategy the paper
// cites from Iceberg. Groups with a single file are dropped (nothing to
// merge).
func BinpackPlan(fileSizes []int64, targetSize int64) [][]int {
	type item struct {
		idx  int
		size int64
	}
	items := make([]item, 0, len(fileSizes))
	for i, s := range fileSizes {
		if s < targetSize { // already-full files are left alone
			items = append(items, item{i, s})
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].size > items[b].size })
	var bins [][]int
	var binSizes []int64
	for _, it := range items {
		placed := false
		for b := range bins {
			if binSizes[b]+it.size <= targetSize {
				bins[b] = append(bins[b], it.idx)
				binSizes[b] += it.size
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []int{it.idx})
			binSizes = append(binSizes, it.size)
		}
	}
	out := bins[:0]
	for _, b := range bins {
		if len(b) > 1 {
			sort.Ints(b)
			out = append(out, b)
		}
	}
	return out
}

// State is the RL state: the two feature sets of Section VI-A,
// concatenated as the policy input.
type State struct {
	// Global features.
	TargetFileSize int64
	IngestRate     float64 // small files arriving per second
	QueryRate      float64 // concurrent queries per second
	GlobalUtil     float64 // global block utilization
	// Partition features.
	PartFiles      int     // number of files in the partition
	PartUtil       float64 // partition block utilization
	PartAccessFreq float64 // data access frequency
	PartRecency    float64 // normalized time since last access (ordering)
}

// features returns the normalized feature vector (with a bias term).
func (s State) features() []float64 {
	return []float64{
		1, // bias
		math.Min(float64(s.PartFiles)/64, 2),
		s.PartUtil,
		s.GlobalUtil,
		math.Min(s.IngestRate/20, 2),
		math.Min(s.QueryRate/20, 2),
		math.Min(s.PartAccessFreq, 2),
		math.Min(s.PartRecency, 2),
	}
}

// FeatureDim is the policy input width.
const FeatureDim = 8

// experience is one replay-buffer entry.
type experience struct {
	state  []float64
	action int
	reward float64
	next   []float64
	done   bool
}

// QLearner is a linear-approximation Q-learner with an experience replay
// buffer — the reproduction's stand-in for the paper's DQN policy
// network (the RL formulation, not the network depth, is the
// contribution being reproduced; see DESIGN.md).
type QLearner struct {
	weights [2][]float64 // Q(s, a) = w_a · φ(s)
	alpha   float64      // learning rate
	gamma   float64      // discount
	epsilon float64      // exploration
	rng     *sim.RNG

	replay    []experience
	replayCap int
	trained   int
}

// NewQLearner builds a learner with standard hyperparameters.
func NewQLearner(seed uint64) *QLearner {
	q := &QLearner{
		alpha:     0.05,
		gamma:     0.6,
		epsilon:   0.2,
		rng:       sim.NewRNG(seed),
		replayCap: 4096,
	}
	for a := 0; a < 2; a++ {
		q.weights[a] = make([]float64, FeatureDim)
	}
	return q
}

func (q *QLearner) qValue(phi []float64, a int) float64 {
	var v float64
	for i, w := range q.weights[a] {
		v += w * phi[i]
	}
	return v
}

// Decide returns the ε-greedy action for the state: true = compact.
func (q *QLearner) Decide(s State) bool {
	phi := s.features()
	if q.rng.Float64() < q.epsilon {
		return q.rng.Intn(2) == 1
	}
	return q.qValue(phi, 1) > q.qValue(phi, 0)
}

// Exploit returns the greedy action (inference after training).
func (q *QLearner) Exploit(s State) bool {
	phi := s.features()
	return q.qValue(phi, 1) > q.qValue(phi, 0)
}

// Observe stores one transition in the replay buffer and performs one
// online TD(0) update.
func (q *QLearner) Observe(s State, action bool, reward float64, next State, done bool) {
	a := 0
	if action {
		a = 1
	}
	e := experience{state: s.features(), action: a, reward: reward, next: next.features(), done: done}
	if len(q.replay) < q.replayCap {
		q.replay = append(q.replay, e)
	} else {
		q.replay[q.rng.Intn(q.replayCap)] = e
	}
	q.update(e)
}

func (q *QLearner) update(e experience) {
	target := e.reward
	if !e.done {
		target += q.gamma * math.Max(q.qValue(e.next, 0), q.qValue(e.next, 1))
	}
	pred := q.qValue(e.state, e.action)
	delta := target - pred
	// Clip to keep the linear model stable under bursty rewards.
	if delta > 5 {
		delta = 5
	} else if delta < -5 {
		delta = -5
	}
	for i := range q.weights[e.action] {
		q.weights[e.action][i] += q.alpha * delta * e.state[i]
	}
}

// Train replays the buffer the given number of epochs (the experience
// reuse of Figure 10's training loop).
func (q *QLearner) Train(epochs int) {
	for e := 0; e < epochs; e++ {
		for _, i := range q.rng.Perm(len(q.replay)) {
			q.update(q.replay[i])
		}
	}
	q.trained += epochs
}

// SetEpsilon adjusts exploration (set to 0 for inference).
func (q *QLearner) SetEpsilon(eps float64) { q.epsilon = eps }

// Reward computes the paper's reward: the utilization improvement on
// success, or -(1 - expectedImprovement) on failure.
func Reward(success bool, utilBefore, utilAfter, expectedImprovement float64) float64 {
	if success {
		return utilAfter - utilBefore
	}
	return -(1 - expectedImprovement)
}

// Strategy decides whether to compact a partition given the state.
type Strategy interface {
	ShouldCompact(now time.Duration, s State) bool
}

// Default is the paper's Default-compaction baseline: compact on a fixed
// interval (30 s in Section VII-E) regardless of state.
type Default struct {
	Interval time.Duration
	last     map[string]time.Duration
	key      string
}

// NewDefault builds the static strategy (zero interval = 30 s).
func NewDefault(interval time.Duration) *Default {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	return &Default{Interval: interval, last: map[string]time.Duration{}}
}

// ShouldCompact fires whenever the interval elapsed, with at least two
// files present.
func (d *Default) ShouldCompact(now time.Duration, s State) bool {
	if s.PartFiles < 2 {
		return false
	}
	if now-d.last[d.key] >= d.Interval {
		d.last[d.key] = now
		return true
	}
	return false
}

// ForPartition keys the interval tracking per partition.
func (d *Default) ForPartition(p string) *Default {
	return &Default{Interval: d.Interval, last: d.last, key: p}
}

// Auto wraps a trained QLearner as a Strategy.
type Auto struct {
	Learner *QLearner
}

// ShouldCompact consults the learned policy.
func (a *Auto) ShouldCompact(now time.Duration, s State) bool {
	if s.PartFiles < 2 {
		return false
	}
	return a.Learner.Exploit(s)
}
