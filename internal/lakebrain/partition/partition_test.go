package partition

import (
	"fmt"
	"testing"

	"streamlake/internal/colfile"
	"streamlake/internal/sim"
)

var schema = colfile.MustSchema("age:int64", "gender:string", "amount:float64")

func sample(n int, seed uint64) []colfile.Row {
	rng := sim.NewRNG(seed)
	rows := make([]colfile.Row, n)
	for i := range rows {
		g := "Male"
		if rng.Intn(2) == 0 {
			g = "Female"
		}
		rows[i] = colfile.Row{
			colfile.IntValue(int64(18 + rng.Intn(60))),
			colfile.StringValue(g),
			colfile.FloatValue(rng.Float64() * 1000),
		}
	}
	return rows
}

// figure11Workload mirrors the paper's example: predicates on age and
// gender.
func figure11Workload() []Query {
	return []Query{
		{Preds: []Predicate{
			{Column: "age", Op: LT, Value: colfile.IntValue(30)},
			{Column: "gender", Op: EQ, Value: colfile.StringValue("Male")},
		}},
		{Preds: []Predicate{
			{Column: "age", Op: GE, Value: colfile.IntValue(30)},
		}},
		{Preds: []Predicate{
			{Column: "gender", Op: EQ, Value: colfile.StringValue("Female")},
			{Column: "age", Op: LE, Value: colfile.IntValue(50)},
		}},
	}
}

func TestEncoderOrderPreserving(t *testing.T) {
	rows := sample(100, 1)
	e := NewEncoder(schema, rows)
	if e.EncodeValue(0, colfile.IntValue(20)) >= e.EncodeValue(0, colfile.IntValue(30)) {
		t.Fatal("int encoding not order preserving")
	}
	// Dictionary codes preserve lexicographic order.
	if e.EncodeValue(1, colfile.StringValue("Female")) >= e.EncodeValue(1, colfile.StringValue("Male")) {
		t.Fatal("string encoding not order preserving")
	}
	// Unknown strings fall outside the dictionary.
	if e.EncodeValue(1, colfile.StringValue("ZZZ")) < 2 {
		t.Fatal("unknown string encoded inside dictionary")
	}
}

func TestQueryBounds(t *testing.T) {
	e := NewEncoder(schema, sample(10, 2))
	q := Query{Preds: []Predicate{
		{Column: "age", Op: GE, Value: colfile.IntValue(30)},
		{Column: "age", Op: LT, Value: colfile.IntValue(40)},
	}}
	b := e.queryBounds(q)
	r := b[0]
	if r.Lo != 30 || r.Hi >= 40 || r.Hi < 39 {
		t.Fatalf("bounds: %+v", r)
	}
	// IN covers its value range.
	q2 := Query{Preds: []Predicate{{Column: "age", Op: IN, Values: []colfile.Value{
		colfile.IntValue(25), colfile.IntValue(35),
	}}}}
	r2 := e.queryBounds(q2)[0]
	if r2.Lo != 25 || r2.Hi != 35 {
		t.Fatalf("IN bounds: %+v", r2)
	}
}

func TestBuildTreePartitionsAndRoutes(t *testing.T) {
	rows := sample(4000, 3)
	tree := Build(schema, rows, figure11Workload(), 4000, Config{MaxPartitions: 8})
	if tree.NumPartitions() < 2 {
		t.Fatalf("tree did not split: %d partitions", tree.NumPartitions())
	}
	// Routing is total and stable.
	counts := make([]int, tree.NumPartitions())
	for _, r := range rows {
		p := tree.Route(r)
		if p < 0 || p >= tree.NumPartitions() {
			t.Fatalf("route out of range: %d", p)
		}
		if tree.Route(r) != p {
			t.Fatal("routing unstable")
		}
		counts[p]++
	}
	// Every partition the tree built should receive some rows.
	for p, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d empty", p)
		}
	}
}

func TestRoutingConsistentWithTouches(t *testing.T) {
	// Soundness: if a row matches a query, the partition the row routes
	// to must be touched by that query.
	rows := sample(3000, 4)
	workload := figure11Workload()
	tree := Build(schema, rows, workload, 3000, Config{MaxPartitions: 16})
	matches := func(r colfile.Row, q Query) bool {
		for _, p := range q.Preds {
			c := schema.FieldIndex(p.Column)
			cmp := colfile.Compare(r[c], p.Value)
			switch p.Op {
			case LT:
				if cmp >= 0 {
					return false
				}
			case LE:
				if cmp > 0 {
					return false
				}
			case GT:
				if cmp <= 0 {
					return false
				}
			case GE:
				if cmp < 0 {
					return false
				}
			case EQ:
				if cmp != 0 {
					return false
				}
			}
		}
		return true
	}
	for _, q := range workload {
		for _, r := range rows {
			if matches(r, q) && !tree.Touches(q, tree.Route(r)) {
				t.Fatalf("query %+v skips partition holding a matching row", q)
			}
		}
	}
}

func TestTreeSkipsMoreThanBaselines(t *testing.T) {
	// The Figure 16(b) comparison: tuples skipped under Full, ByValue
	// and predicate-aware partitioning for the same workload.
	rows := sample(5000, 5)
	workload := figure11Workload()
	tree := Build(schema, rows, workload, 5000, Config{MaxPartitions: 16})
	baselineFull := Full{}
	baselineDay := NewByValue(schema, rows, "amount", 100) // partition by unqueried column

	skipped := func(r Router) int {
		perPartition := make([]int, r.NumPartitions())
		for _, row := range rows {
			perPartition[r.Route(row)]++
		}
		var total int
		for _, q := range workload {
			for p := 0; p < r.NumPartitions(); p++ {
				if !r.Touches(q, p) {
					total += perPartition[p]
				}
			}
		}
		return total
	}
	sFull := skipped(baselineFull)
	sDay := skipped(baselineDay)
	sTree := skipped(tree)
	t.Logf("skipped: full=%d by-amount=%d tree=%d", sFull, sDay, sTree)
	if sFull != 0 {
		t.Fatal("full scan skipped tuples")
	}
	if sTree <= sDay {
		t.Fatalf("predicate-aware (%d) not better than by-value (%d)", sTree, sDay)
	}
}

func TestByValueRelevantColumnStillLoses(t *testing.T) {
	// Even when the baseline partitions on a queried column, the
	// predicate-aware tree (which also uses the second column) skips at
	// least as much.
	rows := sample(5000, 6)
	workload := figure11Workload()
	tree := Build(schema, rows, workload, 5000, Config{MaxPartitions: 16})
	byAge := NewByValue(schema, rows, "age", 10)
	perTree := make([]int, tree.NumPartitions())
	perAge := make([]int, byAge.NumPartitions())
	for _, row := range rows {
		perTree[tree.Route(row)]++
		perAge[byAge.Route(row)]++
	}
	var sTree, sAge int
	for _, q := range workload {
		for p := range perTree {
			if !tree.Touches(q, p) {
				sTree += perTree[p]
			}
		}
		for p := range perAge {
			if !byAge.Touches(q, p) {
				sAge += perAge[p]
			}
		}
	}
	t.Logf("skipped: tree=%d by-age=%d", sTree, sAge)
	if sTree < sAge {
		t.Fatalf("tree (%d) skipped less than by-age (%d)", sTree, sAge)
	}
}

func TestByValueBucketing(t *testing.T) {
	rows := sample(1000, 7)
	b := NewByValue(schema, rows, "age", 10)
	if b.NumPartitions() < 5 {
		t.Fatalf("buckets: %d", b.NumPartitions())
	}
	for _, r := range rows {
		p := b.Route(r)
		if p < 0 || p >= b.NumPartitions() {
			t.Fatalf("bucket out of range: %d", p)
		}
	}
	// Unconstrained query touches everything.
	for p := 0; p < b.NumPartitions(); p++ {
		if !b.Touches(Query{}, p) {
			t.Fatal("empty query skipped a bucket")
		}
	}
	// Missing column degrades to a single catch-all.
	b2 := NewByValue(schema, rows, "ghost", 10)
	if b2.NumPartitions() != 1 || b2.Route(rows[0]) != 0 || !b2.Touches(Query{}, 0) {
		t.Fatal("missing-column ByValue broken")
	}
}

func TestFullBaseline(t *testing.T) {
	f := Full{}
	if f.NumPartitions() != 1 || f.Route(nil) != 0 || !f.Touches(Query{}, 0) || f.Name() != "full" {
		t.Fatal("Full baseline broken")
	}
}

func TestMinPartitionRowsRespected(t *testing.T) {
	rows := sample(1000, 8)
	// Huge minimum: the tree must refuse to split at all.
	tree := Build(schema, rows, figure11Workload(), 1000, Config{MaxPartitions: 16, MinPartitionRows: 900})
	if tree.NumPartitions() != 1 {
		t.Fatalf("tree split despite MinPartitionRows: %d", tree.NumPartitions())
	}
}

func TestEstimatePartitionRows(t *testing.T) {
	rows := sample(4000, 9)
	tree := Build(schema, rows, figure11Workload(), 4000, Config{MaxPartitions: 8})
	var est float64
	actual := make([]int, tree.NumPartitions())
	for _, r := range rows {
		actual[tree.Route(r)]++
	}
	for p := 0; p < tree.NumPartitions(); p++ {
		e := tree.EstimatePartitionRows(p)
		est += e
		// Each estimate within a loose factor of the truth.
		if actual[p] > 100 && (e < float64(actual[p])/4 || e > float64(actual[p])*4) {
			t.Fatalf("partition %d estimate %f vs actual %d", p, e, actual[p])
		}
	}
	if est < 2000 || est > 8000 {
		t.Fatalf("total estimated rows %f", est)
	}
}

func TestWorkloadWithINPredicates(t *testing.T) {
	rows := sample(2000, 10)
	workload := []Query{
		{Preds: []Predicate{{Column: "age", Op: IN, Values: []colfile.Value{
			colfile.IntValue(20), colfile.IntValue(21), colfile.IntValue(22),
		}}}},
		{Preds: []Predicate{{Column: "age", Op: GT, Value: colfile.IntValue(60)}}},
	}
	tree := Build(schema, rows, workload, 2000, Config{MaxPartitions: 8})
	// Must route and answer Touches without panicking, and skip the
	// >60 partition for the IN query.
	for _, q := range workload {
		anySkipped := false
		for p := 0; p < tree.NumPartitions(); p++ {
			if !tree.Touches(q, p) {
				anySkipped = true
			}
		}
		if tree.NumPartitions() > 1 && !anySkipped {
			t.Logf("query %v skipped nothing (%d partitions)", q, tree.NumPartitions())
		}
	}
}

func BenchmarkBuildTree(b *testing.B) {
	rows := sample(3000, 11)
	w := figure11Workload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(schema, rows, w, 3000, Config{MaxPartitions: 16})
	}
}

func BenchmarkRoute(b *testing.B) {
	rows := sample(3000, 12)
	tree := Build(schema, rows, figure11Workload(), 3000, Config{MaxPartitions: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Route(rows[i%len(rows)])
	}
}

func ExampleBuild() {
	rows := sample(2000, 13)
	tree := Build(schema, rows, figure11Workload(), 2000, Config{MaxPartitions: 4})
	fmt.Println(tree.NumPartitions() > 1)
	// Output: true
}
