// Package partition implements LakeBrain's predicate-aware partitioning
// (Section VI-B, Figure 11): a query tree — a decision tree whose inner
// nodes are workload predicates of the form (attribute, operator,
// literal) and whose leaves are partitions — built greedily to maximize
// the tuples queries can skip, with partition cardinalities estimated by
// a learned sum-product network instead of sampling or scanning. The
// package also provides the paper's comparison baselines: no
// partitioning (Full) and partitioning by a column value (Day).
package partition

import (
	"fmt"
	"math"
	"sort"

	"streamlake/internal/colfile"
	"streamlake/internal/spn"
)

// Op is a predicate operator; the paper's set is {<=, >=, <, >, =, IN}.
type Op int

// Predicate operators.
const (
	LE Op = iota
	GE
	LT
	GT
	EQ
	IN
)

// Predicate is one pushdown predicate (attribute, operator, literal).
type Predicate struct {
	Column string
	Op     Op
	Value  colfile.Value
	Values []colfile.Value // IN list
}

// Query is a conjunction of predicates.
type Query struct {
	Preds []Predicate
}

// Router assigns rows to partitions and resolves which partitions a
// query must touch.
type Router interface {
	// Route returns the partition index for a row.
	Route(row colfile.Row) int
	// NumPartitions returns the partition count.
	NumPartitions() int
	// Touches reports whether a query can match rows in partition p.
	Touches(q Query, p int) bool
	// Name identifies the strategy in reports.
	Name() string
}

// Encoder maps typed column values into the numeric space the SPN and
// the query tree operate in: numerics pass through, strings get
// order-preserving dictionary codes.
type Encoder struct {
	schema colfile.Schema
	dicts  []map[string]float64
}

// NewEncoder builds an encoder, deriving string dictionaries from the
// sample.
func NewEncoder(schema colfile.Schema, sample []colfile.Row) *Encoder {
	e := &Encoder{schema: schema, dicts: make([]map[string]float64, schema.NumFields())}
	for c, f := range schema.Fields {
		if f.Type != colfile.String {
			continue
		}
		set := map[string]bool{}
		for _, r := range sample {
			set[r[c].Str] = true
		}
		words := make([]string, 0, len(set))
		for w := range set {
			words = append(words, w)
		}
		sort.Strings(words)
		dict := make(map[string]float64, len(words))
		for i, w := range words {
			dict[w] = float64(i)
		}
		e.dicts[c] = dict
	}
	return e
}

// EncodeValue maps one cell to its numeric code. Unknown strings land
// just outside the dictionary, preserving order only approximately.
func (e *Encoder) EncodeValue(c int, v colfile.Value) float64 {
	switch v.Type {
	case colfile.Int64:
		return float64(v.Int)
	case colfile.Float64:
		return v.Float
	case colfile.Bool:
		if v.Bool {
			return 1
		}
		return 0
	case colfile.String:
		if code, ok := e.dicts[c][v.Str]; ok {
			return code
		}
		return float64(len(e.dicts[c]))
	}
	return 0
}

// EncodeRow maps a whole row.
func (e *Encoder) EncodeRow(r colfile.Row) []float64 {
	out := make([]float64, len(r))
	for c, v := range r {
		out[c] = e.EncodeValue(c, v)
	}
	return out
}

const eps = 1e-6

// queryBounds converts a query to per-column ranges in encoded space
// (IN becomes the covering range, a sound over-approximation).
func (e *Encoder) queryBounds(q Query) map[int]spn.Range {
	bounds := map[int]spn.Range{}
	get := func(c int) spn.Range {
		if r, ok := bounds[c]; ok {
			return r
		}
		return spn.Unbounded()
	}
	for _, p := range q.Preds {
		c := e.schema.FieldIndex(p.Column)
		if c < 0 {
			continue
		}
		r := get(c)
		switch p.Op {
		case LE:
			r.Hi = math.Min(r.Hi, e.EncodeValue(c, p.Value))
		case GE:
			r.Lo = math.Max(r.Lo, e.EncodeValue(c, p.Value))
		case LT:
			r.Hi = math.Min(r.Hi, e.EncodeValue(c, p.Value)-eps)
		case GT:
			r.Lo = math.Max(r.Lo, e.EncodeValue(c, p.Value)+eps)
		case EQ:
			v := e.EncodeValue(c, p.Value)
			r.Lo = math.Max(r.Lo, v)
			r.Hi = math.Min(r.Hi, v)
		case IN:
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, v := range p.Values {
				ev := e.EncodeValue(c, v)
				lo = math.Min(lo, ev)
				hi = math.Max(hi, ev)
			}
			r.Lo = math.Max(r.Lo, lo)
			r.Hi = math.Min(r.Hi, hi)
		}
		bounds[c] = r
	}
	return bounds
}

// region is a leaf's constraint box in encoded space.
type region map[int]spn.Range

func (r region) clone() region {
	out := make(region, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// disjoint reports whether the query bounds cannot intersect the region.
func disjoint(r region, q map[int]spn.Range) bool {
	for c, qr := range q {
		rr, ok := r[c]
		if !ok {
			continue
		}
		if qr.Lo > rr.Hi || qr.Hi < rr.Lo {
			return true
		}
	}
	return false
}

// node is one query-tree node.
type node struct {
	cut     *cut
	yes, no *node
	leaf    int
	reg     region
}

// cut is an inner-node predicate: go yes when value <= split.
type cut struct {
	col   int
	split float64
}

// Tree is the built query tree.
type Tree struct {
	enc    *Encoder
	root   *node
	leaves []*node
	est    *spn.SPN
	rows   int64
}

// Config tunes tree building.
type Config struct {
	// MaxPartitions bounds the leaf count (default 16).
	MaxPartitions int
	// MinPartitionRows refuses cuts producing partitions estimated
	// smaller than this (default rows/256).
	MinPartitionRows float64
	// SPN tunes the estimator.
	SPN spn.Config
}

// Build learns an SPN on the sample and greedily grows the query tree:
// at each step, the (leaf, candidate-cut) pair that maximizes the
// expected tuples skipped across the workload is split, with partition
// cardinalities estimated by the SPN (the paper's replacement for
// sampling/scanning in QD-tree).
func Build(schema colfile.Schema, sample []colfile.Row, workload []Query, totalRows int64, cfg Config) *Tree {
	if cfg.MaxPartitions <= 0 {
		cfg.MaxPartitions = 16
	}
	if cfg.MinPartitionRows <= 0 {
		cfg.MinPartitionRows = float64(totalRows) / 256
	}
	enc := NewEncoder(schema, sample)
	data := make([][]float64, len(sample))
	for i, r := range sample {
		data[i] = enc.EncodeRow(r)
	}
	est := spn.Learn(data, cfg.SPN)
	t := &Tree{enc: enc, est: est, rows: totalRows}
	t.root = &node{reg: region{}}
	t.leaves = []*node{t.root}

	// Candidate cuts come from the workload's predicate literals.
	type candidate struct {
		col   int
		split float64
	}
	seen := map[candidate]bool{}
	var candidates []candidate
	for _, q := range workload {
		for _, p := range q.Preds {
			c := schema.FieldIndex(p.Column)
			if c < 0 {
				continue
			}
			vals := p.Values
			if p.Op != IN {
				vals = []colfile.Value{p.Value}
			}
			for _, v := range vals {
				cd := candidate{col: c, split: enc.EncodeValue(c, v)}
				if !seen[cd] {
					seen[cd] = true
					candidates = append(candidates, cd)
				}
			}
		}
	}
	qbounds := make([]map[int]spn.Range, len(workload))
	for i, q := range workload {
		qbounds[i] = enc.queryBounds(q)
	}

	count := func(r region) float64 {
		return est.EstimateCount(map[int]spn.Range(r), totalRows)
	}
	// A leaf's best cut depends only on the leaf's region and the fixed
	// workload, so each leaf is scored once when created and cached —
	// the greedy loop is then O(leaves) per split instead of
	// O(leaves x candidates).
	type scored struct {
		gain float64
		cut  candidate
	}
	scoreLeaf := func(leaf *node) scored {
		best := scored{gain: -1}
		skipBefore := 0.0
		for _, qb := range qbounds {
			if disjoint(leaf.reg, qb) {
				skipBefore += count(leaf.reg)
			}
		}
		for _, cd := range candidates {
			rr, ok := leaf.reg[cd.col]
			if !ok {
				rr = spn.Unbounded()
			}
			if cd.split <= rr.Lo || cd.split >= rr.Hi {
				continue // cut outside the region: no-op
			}
			yesReg := leaf.reg.clone()
			yesReg[cd.col] = spn.Range{Lo: rr.Lo, Hi: cd.split}
			noReg := leaf.reg.clone()
			noReg[cd.col] = spn.Range{Lo: cd.split + eps, Hi: rr.Hi}
			cYes, cNo := count(yesReg), count(noReg)
			if cYes < cfg.MinPartitionRows || cNo < cfg.MinPartitionRows {
				continue
			}
			var after float64
			for _, qb := range qbounds {
				if disjoint(yesReg, qb) {
					after += cYes
				}
				if disjoint(noReg, qb) {
					after += cNo
				}
			}
			if gain := after - skipBefore; gain > best.gain {
				best = scored{gain: gain, cut: cd}
			}
		}
		return best
	}
	scores := map[*node]scored{t.root: scoreLeaf(t.root)}

	for len(t.leaves) < cfg.MaxPartitions {
		bestLeaf := -1
		var best scored
		for li, leaf := range t.leaves {
			if s := scores[leaf]; s.gain > 0 && (bestLeaf < 0 || s.gain > best.gain) {
				bestLeaf = li
				best = s
			}
		}
		if bestLeaf < 0 {
			break
		}
		leaf := t.leaves[bestLeaf]
		rr, ok := leaf.reg[best.cut.col]
		if !ok {
			rr = spn.Unbounded()
		}
		leaf.cut = &cut{col: best.cut.col, split: best.cut.split}
		leaf.yes = &node{reg: leaf.reg.clone()}
		leaf.yes.reg[best.cut.col] = spn.Range{Lo: rr.Lo, Hi: best.cut.split}
		leaf.no = &node{reg: leaf.reg.clone()}
		leaf.no.reg[best.cut.col] = spn.Range{Lo: best.cut.split + eps, Hi: rr.Hi}
		delete(scores, leaf)
		t.leaves = append(t.leaves[:bestLeaf], t.leaves[bestLeaf+1:]...)
		t.leaves = append(t.leaves, leaf.yes, leaf.no)
		scores[leaf.yes] = scoreLeaf(leaf.yes)
		scores[leaf.no] = scoreLeaf(leaf.no)
	}
	for i, l := range t.leaves {
		l.leaf = i
	}
	return t
}

// Name implements Router.
func (t *Tree) Name() string { return "predicate-aware" }

// NumPartitions implements Router.
func (t *Tree) NumPartitions() int { return len(t.leaves) }

// Route implements Router: descend the tree by the row's values.
func (t *Tree) Route(row colfile.Row) int {
	n := t.root
	for n.cut != nil {
		if t.enc.EncodeValue(n.cut.col, row[n.cut.col]) <= n.cut.split {
			n = n.yes
		} else {
			n = n.no
		}
	}
	return n.leaf
}

// Touches implements Router.
func (t *Tree) Touches(q Query, p int) bool {
	return !disjoint(t.leaves[p].reg, t.enc.queryBounds(q))
}

// EstimatePartitionRows returns the SPN's cardinality estimate for a
// partition.
func (t *Tree) EstimatePartitionRows(p int) float64 {
	return t.est.EstimateCount(map[int]spn.Range(t.leaves[p].reg), t.rows)
}

// Full is the no-partitioning baseline: one partition holding
// everything.
type Full struct{}

// Name implements Router.
func (Full) Name() string { return "full" }

// Route implements Router.
func (Full) Route(colfile.Row) int { return 0 }

// NumPartitions implements Router.
func (Full) NumPartitions() int { return 1 }

// Touches implements Router.
func (Full) Touches(Query, int) bool { return true }

// ByValue partitions by buckets of one column's encoded value — the
// paper's "partition by the day of l_shipdate" baseline when the column
// is a date counted in days.
type ByValue struct {
	Column     string
	col        int
	enc        *Encoder
	BucketSize float64
	buckets    int
	lo         float64
}

// NewByValue builds a by-value partitioner over the sample's range of
// the column.
func NewByValue(schema colfile.Schema, sample []colfile.Row, column string, bucketSize float64) *ByValue {
	b := &ByValue{Column: column, BucketSize: bucketSize, enc: NewEncoder(schema, sample)}
	b.col = schema.FieldIndex(column)
	if b.col < 0 || len(sample) == 0 {
		b.buckets = 1
		return b
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range sample {
		v := b.enc.EncodeValue(b.col, r[b.col])
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	b.lo = lo
	b.buckets = int((hi-lo)/bucketSize) + 1
	return b
}

// Name implements Router.
func (b *ByValue) Name() string { return fmt.Sprintf("by-%s", b.Column) }

// NumPartitions implements Router.
func (b *ByValue) NumPartitions() int { return b.buckets }

// Route implements Router.
func (b *ByValue) Route(row colfile.Row) int {
	if b.col < 0 {
		return 0
	}
	v := b.enc.EncodeValue(b.col, row[b.col])
	p := int((v - b.lo) / b.BucketSize)
	if p < 0 {
		p = 0
	}
	if p >= b.buckets {
		p = b.buckets - 1
	}
	return p
}

// Touches implements Router.
func (b *ByValue) Touches(q Query, p int) bool {
	if b.col < 0 {
		return true
	}
	qb := b.enc.queryBounds(q)
	r, ok := qb[b.col]
	if !ok {
		return true // query does not constrain the partition column
	}
	pLo := b.lo + float64(p)*b.BucketSize
	pHi := pLo + b.BucketSize - eps
	return !(r.Lo > pHi || r.Hi < pLo)
}
