package spn

import (
	"math"
	"testing"
	"testing/quick"

	"streamlake/internal/sim"
)

// uniformData generates n rows of independent uniforms on [0, 100).
func uniformData(n int, cols int, seed uint64) [][]float64 {
	rng := sim.NewRNG(seed)
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, cols)
		for c := range row {
			row[c] = rng.Float64() * 100
		}
		data[i] = row
	}
	return data
}

func TestUniformMarginal(t *testing.T) {
	s := Learn(uniformData(5000, 2, 1), Config{})
	// P(0 <= x0 <= 50) should be about 0.5.
	p := s.Prob(map[int]Range{0: {Lo: 0, Hi: 50}})
	if p < 0.4 || p > 0.6 {
		t.Fatalf("P(x0<=50) = %v, want ~0.5", p)
	}
	// Unconstrained query has probability ~1.
	if p := s.Prob(nil); p < 0.99 {
		t.Fatalf("P(true) = %v", p)
	}
	// Disjoint range has probability ~0.
	if p := s.Prob(map[int]Range{0: {Lo: 200, Hi: 300}}); p > 0.01 {
		t.Fatalf("P(out of range) = %v", p)
	}
}

func TestIndependentConjunction(t *testing.T) {
	s := Learn(uniformData(8000, 3, 2), Config{})
	// Independent columns: P(x0<=50 AND x1<=25) ~ 0.5 * 0.25.
	p := s.Prob(map[int]Range{
		0: {Lo: math.Inf(-1), Hi: 50},
		1: {Lo: math.Inf(-1), Hi: 25},
	})
	if p < 0.08 || p > 0.18 {
		t.Fatalf("joint = %v, want ~0.125", p)
	}
}

func TestCorrelatedColumnsBeatIndependenceAssumption(t *testing.T) {
	// x1 = x0 + noise: P(x0<=20 AND x1<=25) is ~P(x0<=20) = 0.2, NOT
	// 0.2*0.25=0.05. The SPN must capture the correlation that a naive
	// independence model misses.
	rng := sim.NewRNG(3)
	var data [][]float64
	for i := 0; i < 8000; i++ {
		x := rng.Float64() * 100
		data = append(data, []float64{x, x + rng.NormFloat64()})
	}
	s := Learn(data, Config{})
	p := s.Prob(map[int]Range{
		0: {Lo: math.Inf(-1), Hi: 20},
		1: {Lo: math.Inf(-1), Hi: 25},
	})
	truth := 0.0
	for _, r := range data {
		if r[0] <= 20 && r[1] <= 25 {
			truth++
		}
	}
	truth /= float64(len(data))
	if math.Abs(p-truth) > 0.08 {
		t.Fatalf("correlated estimate %v, truth %v", p, truth)
	}
	naive := 0.2 * 0.25
	if math.Abs(p-truth) >= math.Abs(naive-truth) {
		t.Fatalf("SPN (%v) no better than independence (%v), truth %v", p, naive, truth)
	}
}

func TestMultimodalDistribution(t *testing.T) {
	// Two well-separated clusters; a query on one cluster should return
	// that cluster's share.
	rng := sim.NewRNG(4)
	var data [][]float64
	for i := 0; i < 6000; i++ {
		if i%4 == 0 { // 25% in the high cluster
			data = append(data, []float64{80 + rng.Float64()*10, 80 + rng.Float64()*10})
		} else {
			data = append(data, []float64{rng.Float64() * 10, rng.Float64() * 10})
		}
	}
	s := Learn(data, Config{})
	p := s.Prob(map[int]Range{0: {Lo: 70, Hi: 100}, 1: {Lo: 70, Hi: 100}})
	if p < 0.17 || p > 0.33 {
		t.Fatalf("high-cluster mass = %v, want ~0.25", p)
	}
}

func TestEstimateCountScales(t *testing.T) {
	s := Learn(uniformData(2000, 1, 5), Config{})
	// Learned on a sample, applied to a 1M-row population.
	est := s.EstimateCount(map[int]Range{0: {Lo: 0, Hi: 10}}, 1_000_000)
	if est < 50_000 || est > 150_000 {
		t.Fatalf("estimated count %v, want ~100k", est)
	}
}

func TestDegenerateInputs(t *testing.T) {
	// Empty data.
	s := Learn(nil, Config{})
	if s.Rows() != 0 {
		t.Fatal("empty SPN rows")
	}
	// Constant column.
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{42}
	}
	s = Learn(data, Config{})
	if p := s.Prob(map[int]Range{0: {Lo: 40, Hi: 44}}); p < 0.99 {
		t.Fatalf("constant column containing query: %v", p)
	}
	if p := s.Prob(map[int]Range{0: {Lo: 50, Hi: 60}}); p > 0.01 {
		t.Fatalf("constant column disjoint query: %v", p)
	}
	// Out-of-range column index is ignored.
	if p := s.Prob(map[int]Range{7: {Lo: 0, Hi: 1}}); p < 0.99 {
		t.Fatalf("bad column index: %v", p)
	}
}

func TestQuickProbabilityAxioms(t *testing.T) {
	s := Learn(uniformData(3000, 2, 7), Config{})
	// Property: probabilities are in [0,1] and monotone in range width.
	f := func(aLo, aWidth, bWidth uint8) bool {
		lo := float64(aLo % 100)
		w1 := float64(aWidth % 100)
		w2 := w1 + float64(bWidth%50)
		p1 := s.Prob(map[int]Range{0: {Lo: lo, Hi: lo + w1}})
		p2 := s.Prob(map[int]Range{0: {Lo: lo, Hi: lo + w2}})
		return p1 >= 0 && p1 <= 1 && p2 >= p1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLearnDeterministic(t *testing.T) {
	data := uniformData(1000, 2, 9)
	s1 := Learn(data, Config{Seed: 42})
	s2 := Learn(data, Config{Seed: 42})
	for i := 0; i < 20; i++ {
		q := map[int]Range{0: {Lo: float64(i * 5), Hi: float64(i*5 + 10)}}
		if s1.Prob(q) != s2.Prob(q) {
			t.Fatal("same-seed SPNs disagree")
		}
	}
}

func BenchmarkLearn(b *testing.B) {
	data := uniformData(5000, 4, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Learn(data, Config{})
	}
}

func BenchmarkProb(b *testing.B) {
	s := Learn(uniformData(5000, 4, 13), Config{})
	q := map[int]Range{0: {Lo: 10, Hi: 60}, 2: {Lo: 0, Hi: 30}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Prob(q)
	}
}
