// Package spn implements a sum-product network learned from data, the
// AI-driven cardinality estimator LakeBrain's predicate-aware
// partitioner uses (Section VI-B): "we use the sum-product network as
// the estimator". Structure learning follows the standard recipe the
// DeepDB line of work popularized — product nodes split independent
// column groups (pairwise correlation test), sum nodes cluster rows
// (2-means), leaves are per-column histograms — so conjunctive range
// queries are answered in one bottom-up pass without scanning data.
package spn

import (
	"math"

	"streamlake/internal/sim"
)

// Config tunes structure learning.
type Config struct {
	// MinRows stops recursion: a slice smaller than this becomes leaves
	// (default 64).
	MinRows int
	// CorrThreshold is the absolute Pearson correlation below which two
	// columns are considered independent (default 0.3).
	CorrThreshold float64
	// Bins is the histogram resolution of leaves (default 32).
	Bins int
	// MaxDepth bounds recursion (default 12).
	MaxDepth int
	// Seed drives the clustering initialization.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.MinRows <= 0 {
		c.MinRows = 64
	}
	if c.CorrThreshold <= 0 {
		c.CorrThreshold = 0.3
	}
	if c.Bins <= 0 {
		c.Bins = 32
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Range is a closed interval query bound; use math.Inf for open ends.
type Range struct {
	Lo, Hi float64
}

// Unbounded returns the full-range query bound.
func Unbounded() Range { return Range{Lo: math.Inf(-1), Hi: math.Inf(1)} }

// SPN is a learned sum-product network over numeric columns.
type SPN struct {
	root node
	rows int
	cols int
}

type node interface {
	// prob returns P(query) for the node's scope. bounds is indexed by
	// original column; active marks constrained columns.
	prob(bounds []Range, active []bool) float64
}

// productNode multiplies independent scopes.
type productNode struct {
	children []node
}

func (p *productNode) prob(bounds []Range, active []bool) float64 {
	out := 1.0
	for _, c := range p.children {
		out *= c.prob(bounds, active)
	}
	return out
}

// sumNode mixes row clusters.
type sumNode struct {
	weights  []float64
	children []node
}

func (s *sumNode) prob(bounds []Range, active []bool) float64 {
	var out float64
	for i, c := range s.children {
		out += s.weights[i] * c.prob(bounds, active)
	}
	return out
}

// leafNode is an equi-width histogram over one column.
type leafNode struct {
	col      int
	min, max float64
	counts   []float64 // normalized to sum 1
}

func (l *leafNode) prob(bounds []Range, active []bool) float64 {
	if !active[l.col] {
		return 1
	}
	q := bounds[l.col]
	if q.Hi < l.min || q.Lo > l.max {
		return 0
	}
	if l.max == l.min {
		// Degenerate single-value column.
		if q.Lo <= l.min && l.min <= q.Hi {
			return 1
		}
		return 0
	}
	width := (l.max - l.min) / float64(len(l.counts))
	var p float64
	for i, c := range l.counts {
		bLo := l.min + float64(i)*width
		bHi := bLo + width
		// Overlap fraction of the bin with [q.Lo, q.Hi].
		lo := math.Max(bLo, q.Lo)
		hi := math.Min(bHi, q.Hi)
		if hi <= lo {
			continue
		}
		p += c * (hi - lo) / width
	}
	if p > 1 {
		p = 1
	}
	return p
}

// Learn builds an SPN from row-major numeric data. Columns with
// categorical content should be dictionary-coded to floats by the
// caller.
func Learn(data [][]float64, cfg Config) *SPN {
	cfg.applyDefaults()
	if len(data) == 0 {
		return &SPN{root: &productNode{}, rows: 0}
	}
	cols := len(data[0])
	scope := make([]int, cols)
	for i := range scope {
		scope[i] = i
	}
	rng := sim.NewRNG(cfg.Seed)
	root := learnNode(data, scope, cfg, rng, 0)
	return &SPN{root: root, rows: len(data), cols: cols}
}

// Rows returns the training row count.
func (s *SPN) Rows() int { return s.rows }

// Prob estimates P(AND of ranges) for the given per-column bounds.
func (s *SPN) Prob(q map[int]Range) float64 {
	bounds := make([]Range, s.cols)
	active := make([]bool, s.cols)
	for c, r := range q {
		if c < 0 || c >= s.cols {
			continue
		}
		bounds[c] = r
		active[c] = true
	}
	p := s.root.prob(bounds, active)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// EstimateCount scales Prob by a population of n rows (use the full
// table cardinality when the SPN was learned on a sample).
func (s *SPN) EstimateCount(q map[int]Range, n int64) float64 {
	return s.Prob(q) * float64(n)
}

func learnNode(data [][]float64, scope []int, cfg Config, rng *sim.RNG, depth int) node {
	if len(scope) == 1 {
		return buildLeaf(data, scope[0], cfg)
	}
	if len(data) < cfg.MinRows || depth >= cfg.MaxDepth {
		// Factorize fully: naive independence at the base case.
		p := &productNode{}
		for _, c := range scope {
			p.children = append(p.children, buildLeaf(data, c, cfg))
		}
		return p
	}
	// Try a product split: connected components of the "correlated"
	// graph.
	groups := independentGroups(data, scope, cfg.CorrThreshold)
	if len(groups) > 1 {
		p := &productNode{}
		for _, g := range groups {
			p.children = append(p.children, learnNode(data, g, cfg, rng, depth+1))
		}
		return p
	}
	// Sum split: 2-means over the scope columns.
	a, b := cluster2(data, scope, rng)
	if len(a) == 0 || len(b) == 0 {
		p := &productNode{}
		for _, c := range scope {
			p.children = append(p.children, buildLeaf(data, c, cfg))
		}
		return p
	}
	s := &sumNode{
		weights: []float64{float64(len(a)) / float64(len(data)), float64(len(b)) / float64(len(data))},
	}
	s.children = append(s.children,
		learnNode(a, scope, cfg, rng, depth+1),
		learnNode(b, scope, cfg, rng, depth+1))
	return s
}

func buildLeaf(data [][]float64, col int, cfg Config) *leafNode {
	l := &leafNode{col: col, counts: make([]float64, cfg.Bins)}
	if len(data) == 0 {
		return l
	}
	l.min, l.max = data[0][col], data[0][col]
	for _, r := range data {
		v := r[col]
		if v < l.min {
			l.min = v
		}
		if v > l.max {
			l.max = v
		}
	}
	if l.max == l.min {
		l.counts[0] = 1
		return l
	}
	width := (l.max - l.min) / float64(cfg.Bins)
	for _, r := range data {
		i := int((r[col] - l.min) / width)
		if i >= cfg.Bins {
			i = cfg.Bins - 1
		}
		l.counts[i]++
	}
	for i := range l.counts {
		l.counts[i] /= float64(len(data))
	}
	return l
}

// independentGroups partitions scope columns into connected components
// of the |corr| >= threshold graph.
func independentGroups(data [][]float64, scope []int, threshold float64) [][]int {
	n := len(scope)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(pearson(data, scope[i], scope[j])) >= threshold {
				adj[i][j], adj[j][i] = true, true
			}
		}
	}
	seen := make([]bool, n)
	var groups [][]int
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		var group []int
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			group = append(group, scope[v])
			for u := 0; u < n; u++ {
				if adj[v][u] && !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		groups = append(groups, group)
	}
	return groups
}

func pearson(data [][]float64, a, b int) float64 {
	n := float64(len(data))
	if n < 2 {
		return 0
	}
	var sumA, sumB float64
	for _, r := range data {
		sumA += r[a]
		sumB += r[b]
	}
	meanA, meanB := sumA/n, sumB/n
	var cov, varA, varB float64
	for _, r := range data {
		da, db := r[a]-meanA, r[b]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// cluster2 splits rows into two clusters by 2-means over the scope
// columns (values standardized per column), with a fixed iteration
// budget.
func cluster2(data [][]float64, scope []int, rng *sim.RNG) ([][]float64, [][]float64) {
	n := len(data)
	// Standardize scope columns.
	means := make([]float64, len(scope))
	stds := make([]float64, len(scope))
	for k, c := range scope {
		var s float64
		for _, r := range data {
			s += r[c]
		}
		means[k] = s / float64(n)
		var v float64
		for _, r := range data {
			d := r[c] - means[k]
			v += d * d
		}
		stds[k] = math.Sqrt(v / float64(n))
		if stds[k] == 0 {
			stds[k] = 1
		}
	}
	norm := func(r []float64) []float64 {
		out := make([]float64, len(scope))
		for k, c := range scope {
			out[k] = (r[c] - means[k]) / stds[k]
		}
		return out
	}
	c1 := norm(data[rng.Intn(n)])
	c2 := norm(data[rng.Intn(n)])
	assign := make([]bool, n)
	for iter := 0; iter < 8; iter++ {
		changed := false
		for i, r := range data {
			v := norm(r)
			toC2 := dist2(v, c2) < dist2(v, c1)
			if assign[i] != toC2 {
				assign[i] = toC2
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		n1, n2 := 0, 0
		s1 := make([]float64, len(scope))
		s2 := make([]float64, len(scope))
		for i, r := range data {
			v := norm(r)
			if assign[i] {
				n2++
				for k := range v {
					s2[k] += v[k]
				}
			} else {
				n1++
				for k := range v {
					s1[k] += v[k]
				}
			}
		}
		if n1 == 0 || n2 == 0 {
			break
		}
		for k := range s1 {
			c1[k] = s1[k] / float64(n1)
			c2[k] = s2[k] / float64(n2)
		}
	}
	var a, b [][]float64
	for i, r := range data {
		if assign[i] {
			b = append(b, r)
		} else {
			a = append(a, r)
		}
	}
	return a, b
}

func dist2(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}
