// Package rowcodec is a compact schema'd binary record codec — the
// reproduction's stand-in for the Avro files the paper uses for commit
// metadata (Section IV-B) — and the message-payload codec used when
// stream records carry structured fields for stream-to-table conversion.
// A record batch carries its schema inline, so files are self-describing
// the way Avro object container files are.
package rowcodec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"streamlake/internal/colfile"
)

var magic = []byte("SLRC")

// Encode serializes rows (validated against schema) into a
// self-describing batch.
func Encode(schema colfile.Schema, rows []colfile.Row) ([]byte, error) {
	var out []byte
	out = append(out, magic...)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	// Schema block.
	putUvarint(uint64(len(schema.Fields)))
	for _, f := range schema.Fields {
		putUvarint(uint64(len(f.Name)))
		out = append(out, f.Name...)
		out = append(out, byte(f.Type))
	}
	// Rows.
	putUvarint(uint64(len(rows)))
	for i, r := range rows {
		if err := schema.Validate(r); err != nil {
			return nil, fmt.Errorf("rowcodec: row %d: %w", i, err)
		}
		for c, v := range r {
			switch schema.Fields[c].Type {
			case colfile.Int64:
				n := binary.PutVarint(tmp[:], v.Int)
				out = append(out, tmp[:n]...)
			case colfile.Float64:
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], floatBits(v.Float))
				out = append(out, b[:]...)
			case colfile.String:
				putUvarint(uint64(len(v.Str)))
				out = append(out, v.Str...)
			case colfile.Bool:
				if v.Bool {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			}
		}
	}
	return out, nil
}

// Decode parses a batch produced by Encode, returning the embedded schema
// and rows.
func Decode(data []byte) (colfile.Schema, []colfile.Row, error) {
	if len(data) < 4 || string(data[:4]) != string(magic) {
		return colfile.Schema{}, nil, errors.New("rowcodec: bad magic")
	}
	data = data[4:]
	readUvarint := func() (uint64, error) {
		v, sz := binary.Uvarint(data)
		if sz <= 0 {
			return 0, errors.New("rowcodec: truncated")
		}
		data = data[sz:]
		return v, nil
	}
	nf, err := readUvarint()
	if err != nil {
		return colfile.Schema{}, nil, err
	}
	var schema colfile.Schema
	for i := uint64(0); i < nf; i++ {
		nl, err := readUvarint()
		if err != nil {
			return colfile.Schema{}, nil, err
		}
		if uint64(len(data)) < nl+1 {
			return colfile.Schema{}, nil, errors.New("rowcodec: truncated schema")
		}
		schema.Fields = append(schema.Fields, colfile.Field{
			Name: string(data[:nl]),
			Type: colfile.Type(data[nl]),
		})
		data = data[nl+1:]
	}
	nr, err := readUvarint()
	if err != nil {
		return colfile.Schema{}, nil, err
	}
	// The count is untrusted input: rows cost at least one byte each, so
	// a count beyond the remaining bytes is corrupt, and preallocation
	// is clamped regardless.
	if nr > uint64(len(data))+1 {
		return colfile.Schema{}, nil, errors.New("rowcodec: row count exceeds input")
	}
	cap := nr
	if cap > 1024 {
		cap = 1024
	}
	rows := make([]colfile.Row, 0, cap)
	for i := uint64(0); i < nr; i++ {
		row := make(colfile.Row, len(schema.Fields))
		for c, f := range schema.Fields {
			switch f.Type {
			case colfile.Int64:
				v, sz := binary.Varint(data)
				if sz <= 0 {
					return colfile.Schema{}, nil, errors.New("rowcodec: truncated int")
				}
				data = data[sz:]
				row[c] = colfile.IntValue(v)
			case colfile.Float64:
				if len(data) < 8 {
					return colfile.Schema{}, nil, errors.New("rowcodec: truncated float")
				}
				row[c] = colfile.FloatValue(floatFrom(binary.LittleEndian.Uint64(data)))
				data = data[8:]
			case colfile.String:
				l, err := readUvarint()
				if err != nil || uint64(len(data)) < l {
					return colfile.Schema{}, nil, errors.New("rowcodec: truncated string")
				}
				row[c] = colfile.StringValue(string(data[:l]))
				data = data[l:]
			case colfile.Bool:
				if len(data) < 1 {
					return colfile.Schema{}, nil, errors.New("rowcodec: truncated bool")
				}
				row[c] = colfile.BoolValue(data[0] != 0)
				data = data[1:]
			default:
				return colfile.Schema{}, nil, fmt.Errorf("rowcodec: unknown type %d", f.Type)
			}
		}
		rows = append(rows, row)
	}
	return schema, rows, nil
}
