package rowcodec

import (
	"fmt"
	"testing"
	"testing/quick"

	"streamlake/internal/colfile"
	"streamlake/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	s := colfile.MustSchema("path:string", "rows:int64", "min_ts:int64", "max_ts:int64", "score:float64", "valid:bool")
	rows := []colfile.Row{
		{colfile.StringValue("data/p=1/f1.col"), colfile.IntValue(100), colfile.IntValue(5), colfile.IntValue(50), colfile.FloatValue(0.5), colfile.BoolValue(true)},
		{colfile.StringValue(""), colfile.IntValue(-3), colfile.IntValue(0), colfile.IntValue(0), colfile.FloatValue(-1.25), colfile.BoolValue(false)},
	}
	data, err := Encode(s, rows)
	if err != nil {
		t.Fatal(err)
	}
	gotSchema, gotRows, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !gotSchema.Equal(s) {
		t.Fatalf("schema: %+v", gotSchema)
	}
	if len(gotRows) != len(rows) {
		t.Fatalf("rows: %d", len(gotRows))
	}
	for i := range rows {
		for c := range rows[i] {
			if colfile.Compare(rows[i][c], gotRows[i][c]) != 0 {
				t.Fatalf("row %d col %d: %v != %v", i, c, gotRows[i][c], rows[i][c])
			}
		}
	}
}

func TestEncodeValidates(t *testing.T) {
	s := colfile.MustSchema("a:int64")
	if _, err := Encode(s, []colfile.Row{{colfile.StringValue("x")}}); err == nil {
		t.Fatal("type mismatch accepted")
	}
	if _, err := Encode(s, []colfile.Row{{}}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	s := colfile.MustSchema("a:int64", "b:string")
	good, _ := Encode(s, []colfile.Row{{colfile.IntValue(7), colfile.StringValue("hello")}})
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-3],
	} {
		if _, _, err := Decode(data); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	s := colfile.MustSchema("a:int64")
	data, err := Encode(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs, rows, err := Decode(data)
	if err != nil || len(rows) != 0 || !gs.Equal(s) {
		t.Fatalf("empty batch: %v rows=%d", err, len(rows))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := colfile.MustSchema("i:int64", "f:float64", "s:string", "b:bool")
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		n := rng.Intn(50)
		rows := make([]colfile.Row, n)
		for i := range rows {
			rows[i] = colfile.Row{
				colfile.IntValue(int64(rng.Uint64())),
				colfile.FloatValue(rng.Float64() * 1e9),
				colfile.StringValue(fmt.Sprintf("%016x", rng.Uint64())[:rng.Intn(16)]),
				colfile.BoolValue(rng.Intn(2) == 0),
			}
		}
		data, err := Encode(s, rows)
		if err != nil {
			return false
		}
		_, got, err := Decode(data)
		if err != nil || len(got) != n {
			return false
		}
		for i := range rows {
			for c := range rows[i] {
				if colfile.Compare(rows[i][c], got[i][c]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
