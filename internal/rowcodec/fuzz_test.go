package rowcodec

import (
	"testing"

	"streamlake/internal/colfile"
)

// FuzzDecode hardens the record-batch parser against arbitrary input.
func FuzzDecode(f *testing.F) {
	schema := colfile.MustSchema("a:int64", "b:string")
	valid, _ := Encode(schema, []colfile.Row{
		{colfile.IntValue(7), colfile.StringValue("hello")},
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("SLRC"))
	f.Add(valid[:len(valid)-2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, rows, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent.
		for _, r := range rows {
			if len(r) != s.NumFields() {
				t.Fatalf("row width %d != schema %d", len(r), s.NumFields())
			}
		}
	})
}
