package streamsvc

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

// TestObsSnapshotRace is the torn-read regression test for the obs
// wiring: producers, consumers, worker rescales, per-worker Appended()
// reads, registry snapshots and Prometheus renders all race. Under
// -race this fails on any metric bumped outside its owning lock or any
// snapshot path reading shared state unlocked (the GaugeFuncs call back
// into Service/Worker accessors while traffic is live).
func TestObsSnapshotRace(t *testing.T) {
	s := newService(t, 3)
	reg := obs.NewRegistry(sim.NewClock())
	s.SetObs(reg)
	for i := 0; i < 2; i++ {
		if err := s.CreateTopic(TopicConfig{Name: fmt.Sprintf("t%d", i), StreamNum: 2}); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 40
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := s.Producer("racer")
		for i := 0; i < rounds; i++ {
			for topic := 0; topic < 2; topic++ {
				p.Send(fmt.Sprintf("t%d", topic), []byte("k"), []byte("v"))
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := s.Consumer("g")
		if err := c.Subscribe("t0"); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < rounds; i++ {
			if _, _, err := c.Poll(16); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Topology churn: rescaling re-wires new workers' buses onto the
	// shared registry mid-traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/4; i++ {
			s.SetWorkerCount(2 + i%3)
		}
	}()
	// Observers: registry snapshots, Prometheus renders, and per-worker
	// counters, all while the writers above are live.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			snap := reg.Snapshot()
			if snap.Counter("streamsvc_produced_messages_total") < 0 {
				t.Error("negative counter")
				return
			}
			if err := reg.WriteProm(io.Discard); err != nil {
				t.Error(err)
				return
			}
			for _, w := range s.Workers() {
				if w.Appended() < 0 {
					t.Error("negative appended")
					return
				}
			}
		}
	}()
	wg.Wait()
	// Post-race consistency: the registry counter saw every send; the
	// per-worker counters only bound it from below, since rescales
	// replace worker objects (and their counts) mid-run.
	var workerTotal int64
	for _, w := range s.Workers() {
		workerTotal += w.Appended()
	}
	snap := reg.Snapshot()
	produced := snap.Counter("streamsvc_produced_messages_total")
	if produced != 2*rounds {
		t.Fatalf("produced counter = %d, want %d", produced, 2*rounds)
	}
	if workerTotal < 0 || workerTotal > produced {
		t.Fatalf("worker appended sum %d outside [0, %d]", workerTotal, produced)
	}
}
