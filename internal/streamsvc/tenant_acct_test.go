package streamsvc

import (
	"testing"
	"time"

	"streamlake/internal/tenant"
)

// acctService builds a one-worker service with a single-tenant registry
// wired through both the produce path and the store, optionally behind
// a scripted-loss network.
func acctService(t *testing.T, hook interface {
	Deliver(from, to string, n int64) (time.Duration, error)
}) (*Service, *tenant.Registry) {
	t.Helper()
	s := newService(t, 1)
	reg, err := tenant.NewRegistry([]tenant.Config{
		{Name: "acme", IOPS: 1000, BandwidthBps: 1 << 20, CapacityBytes: 1 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTenants(reg)
	s.Store().SetTenants(reg)
	if hook != nil {
		s.SetNet(hook)
	}
	s.SetResilience(ResilienceConfig{Seed: 42})
	if err := s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1}); err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// TestLostAckRetryChargesQuotaOnce pins the retry-accounting contract:
// the append lands, the ack is lost, and the internal redelivery dedups
// — but because an attempt of THIS batch did the durable work, the
// admission charge stands. One batch, one admission, zero refunds, one
// capacity charge.
func TestLostAckRetryChargesQuotaOnce(t *testing.T) {
	s, reg := acctService(t, &scriptNet{failAck: 1})
	p := s.TenantProducer("p1", "acme")
	msg, _, err := p.Send("t", []byte("a"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Offset != 0 {
		t.Fatalf("offset = %d, want 0", msg.Offset)
	}
	st, ok := reg.StatsOf("acme")
	if !ok {
		t.Fatal("tenant vanished")
	}
	if st.Admitted != 1 || st.AdmittedOps != 1 {
		t.Fatalf("lost-ack retry re-admitted: %+v", st)
	}
	if st.RefundedOps != 0 || st.RefundedBytes != 0 {
		t.Fatalf("internal retry refunded its own work: %+v", st)
	}
	if st.StoredBytes <= 0 {
		t.Fatalf("capacity not charged: %+v", st)
	}
	// A second, same-sized, fault-free batch must exactly double the
	// capacity charge — proving the retried batch was charged once,
	// not twice.
	one := st.StoredBytes
	if _, _, err := p.Send("t", []byte("b"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	st, _ = reg.StatsOf("acme")
	if st.StoredBytes != 2*one {
		t.Fatalf("stored after second batch = %d, want %d", st.StoredBytes, 2*one)
	}
	objs, _ := s.Streams("t")
	if end := objs[0].End(); end != 2 {
		t.Fatalf("stream end = %d, want 2", end)
	}
}

// TestDedupReplayRefundsExactlyOnce: a reincarnated producer (same id,
// sequence numbers restart) replays a batch an earlier incarnation
// already appended. The replay is freshly admitted — the gate cannot
// know yet — but the dedup re-ack did no work, so the admission is
// refunded exactly once and capacity is never charged a second time.
func TestDedupReplayRefundsExactlyOnce(t *testing.T) {
	s, reg := acctService(t, nil)
	key, val := []byte("k"), []byte("v")

	first := s.TenantProducer("p1", "acme")
	msg, _, err := first.Send("t", key, val)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Offset != 0 {
		t.Fatalf("first offset = %d", msg.Offset)
	}
	st, _ := reg.StatsOf("acme")
	stored := st.StoredBytes

	// Same producer id, fresh incarnation: its first send reuses seq 1
	// and lands in the dedup window.
	replay := s.TenantProducer("p1", "acme")
	msg, _, err = replay.Send("t", key, val)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Offset != 0 {
		t.Fatalf("replay offset = %d, want original base 0", msg.Offset)
	}
	objs, _ := s.Streams("t")
	if end := objs[0].End(); end != 1 {
		t.Fatalf("replay double-appended: end = %d", end)
	}

	st, _ = reg.StatsOf("acme")
	if st.Admitted != 2 || st.AdmittedOps != 2 || st.AdmittedBytes != 4 {
		t.Fatalf("admissions: %+v, want 2 batches / 2 ops / 4 bytes", st)
	}
	if st.RefundedOps != 1 || st.RefundedBytes != 2 {
		t.Fatalf("refunds: %+v, want exactly one op / 2 bytes back", st)
	}
	if st.StoredBytes != stored {
		t.Fatalf("dedup re-ack re-charged capacity: %d, want %d", st.StoredBytes, stored)
	}
}

// TestGroupCommitFlushPaysPoolAdmission: with group commit folding
// slices into coalesced PLog writes, the flushed bytes still drain the
// per-tenant pending ledger through weighted-fair pool admission — the
// coalesced commit is attributed to the tenant that produced it, not
// lost in the fold.
func TestGroupCommitFlushPaysPoolAdmission(t *testing.T) {
	// No resilience config: the bus runs its untenanted fast path, so
	// weighted-fair pool admission at slice flush is the ONLY possible
	// source of WFQ delay below.
	s := newService(t, 1)
	reg, err := tenant.NewRegistry([]tenant.Config{{Name: "acme"}})
	if err != nil {
		t.Fatal(err)
	}
	s.SetTenants(reg)
	s.Store().SetTenants(reg)
	s.Store().EnableGroupCommit(2)
	if err := s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1}); err != nil {
		t.Fatal(err)
	}
	p := s.TenantProducer("gp", "acme")

	// One slice buffered: group commit defers, so nothing has entered
	// the pool and no admission delay may be charged yet.
	for i := 0; i < 256; i++ {
		if _, _, err := p.Send("t", []byte{byte(i), byte(i >> 8), 'a'}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := reg.StatsOf("acme")
	if st.WFQDelay != 0 {
		t.Fatalf("pool admission charged before any flush: %v", st.WFQDelay)
	}
	if st.StoredBytes <= 0 {
		t.Fatal("capacity not charged at durable append")
	}

	// Second slice reaches the coordinator's target: one coalesced
	// commit flushes both slices and the tenant pays admission for them.
	for i := 256; i < 512; i++ {
		if _, _, err := p.Send("t", []byte{byte(i), byte(i >> 8), 'a'}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if gcs := s.Store().GroupCommitStats(); gcs.Commits < 1 {
		t.Fatalf("group commit never fired: %+v", gcs)
	}
	st, _ = reg.StatsOf("acme")
	if st.WFQDelay <= 0 {
		t.Fatal("coalesced flush skipped weighted-fair pool admission")
	}
}
