package streamsvc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamlake/internal/bus"
	"streamlake/internal/obs"
	"streamlake/internal/resil"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
)

// Producer publishes messages to topics. The API mirrors the open-source
// de facto standard of Figure 7: construct a producer, Send to a topic.
// Producers are idempotent: every (producer, stream) batch carries a
// sequence number the stream object deduplicates on.
type Producer struct {
	svc    *Service
	id     string
	tenant string // tenant identity carried on every batch; "" = system

	mu  sync.Mutex
	seq map[string]int64
	rng *sim.RNG // seeded backoff jitter, lazily built from the service's resilience seed
}

// Producer returns a producer handle with the given client id. Sequence
// numbers — and therefore idempotent deduplication — are scoped to the
// id, so two producer instances sharing an id are treated as the same
// logical producer (a restart), not as independent senders. An empty id
// is assigned a fresh unique identity.
func (s *Service) Producer(id string) *Producer {
	if id == "" {
		s.mu.Lock()
		s.txnSeq++
		id = fmt.Sprintf("producer-%d", s.txnSeq)
		s.mu.Unlock()
	}
	return &Producer{svc: s, id: id, seq: make(map[string]int64)}
}

// TenantProducer is Producer bound to a tenant identity: every batch is
// admitted against the tenant's quotas before fan-out and carries the
// tenant through bus scheduling, storage accounting, spans, and load
// shedding. An empty tenant is the system identity (plain Producer).
func (s *Service) TenantProducer(id, ten string) *Producer {
	p := s.Producer(id)
	p.tenant = ten
	return p
}

// Tenant returns the producer's tenant identity ("" = system).
func (p *Producer) Tenant() string { return p.tenant }

// Send publishes one key-value message, returning the stored message and
// the modelled end-to-end produce latency (bus transfer to the stream
// worker plus the durable append).
func (p *Producer) Send(topic string, key, value []byte) (Message, time.Duration, error) {
	msgs, cost, err := p.SendBatch(topic, []streamobj.Record{{Key: key, Value: value}})
	if err != nil {
		return Message{}, cost, err
	}
	return msgs[0], cost, nil
}

// SendBatch publishes records that share a routing key stream (each
// record routes independently by its key).
func (p *Producer) SendBatch(topic string, recs []streamobj.Record) ([]Message, time.Duration, error) {
	return p.sendBatch(nil, topic, recs, nil)
}

// SendCtx is Send under a resilience context: bus transfers, backoff
// waits, and append costs are charged against rc's virtual-time
// deadline. A nil rc is Send.
func (p *Producer) SendCtx(topic string, key, value []byte, rc *resil.Ctx) (Message, time.Duration, error) {
	msgs, cost, err := p.sendBatch(nil, topic, []streamobj.Record{{Key: key, Value: value}}, rc)
	if err != nil {
		return Message{}, cost, err
	}
	return msgs[0], cost, nil
}

// SendBatchCtx is SendBatch under a resilience context.
func (p *Producer) SendBatchCtx(topic string, recs []streamobj.Record, rc *resil.Ctx) ([]Message, time.Duration, error) {
	return p.sendBatch(nil, topic, recs, rc)
}

// SendSpan is Send with tracing: the request's bus transfer, durable
// append, and everything below (PLog placement writes, slice flushes)
// are recorded as children of sp. A nil span traces nothing.
func (p *Producer) SendSpan(topic string, key, value []byte, sp *obs.Span) (Message, time.Duration, error) {
	return p.SendSpanCtx(topic, key, value, sp, nil)
}

// SendSpanCtx combines SendSpan and SendCtx for callers — the gateway —
// that both trace a request and bound it with a virtual-time deadline.
// Either argument may be nil.
func (p *Producer) SendSpanCtx(topic string, key, value []byte, sp *obs.Span, rc *resil.Ctx) (Message, time.Duration, error) {
	msgs, cost, err := p.sendBatch(sp, topic, []streamobj.Record{{Key: key, Value: value}}, rc)
	if err != nil {
		return Message{}, cost, err
	}
	return msgs[0], cost, nil
}

// backoffRNG returns the producer's seeded backoff jitter stream,
// derived from the service's resilience seed and the producer id so
// distinct producers decorrelate while the same seed replays the same
// schedule.
func (p *Producer) backoffRNG() *sim.RNG {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		cfg, _ := p.svc.resilience()
		p.rng = sim.NewRNG(uint64(cfg.Seed) ^ hashString("producer-backoff/"+p.id))
	}
	return p.rng
}

func (p *Producer) sendBatch(sp *obs.Span, topic string, recs []streamobj.Record, rc *resil.Ctx) ([]Message, time.Duration, error) {
	p.svc.mu.Lock()
	ts, ok := p.svc.topics[topic]
	m := p.svc.metrics
	p.svc.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	// Tenant admission: the whole client batch is charged against the
	// tenant's IOPS and bandwidth buckets exactly once, before fan-out —
	// internal per-stream retries below never re-admit, so a retried
	// batch can't be double-charged.
	if reg := p.svc.Tenants(); reg != nil && p.tenant != "" {
		var total int64
		for _, r := range recs {
			total += int64(len(r.Key) + len(r.Value))
		}
		now := p.svc.clock.Now()
		if rc != nil {
			now = rc.Now()
		}
		if err := reg.Admit(p.tenant, now, len(recs), total); err != nil {
			return nil, 0, err
		}
		if sp != nil {
			sp.SetAttr("tenant", p.tenant)
		}
	}
	// Group records by target stream.
	byStream := make(map[int][]streamobj.Record)
	for _, r := range recs {
		byStream[routeKey(r.Key, len(ts.streams))] = append(byStream[routeKey(r.Key, len(ts.streams))], r)
	}
	// Deterministic stream order: map iteration order would make retry,
	// backoff, and breaker decisions depend on runtime map layout,
	// breaking bit-identical chaos replay.
	idxs := make([]int, 0, len(byStream))
	for idx := range byStream {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var out []Message
	var cost time.Duration
	for _, idx := range idxs {
		batch := byStream[idx]
		obj := ts.streams[idx]
		w := p.svc.ownerOf(topic, idx)
		base, c, err := p.sendOne(sp, topic, idx, batch, obj, w, rc)
		cost += c
		if err != nil {
			return nil, cost, err
		}
		w.mu.Lock()
		w.appended += int64(len(batch))
		w.mu.Unlock()
		for i, r := range batch {
			out = append(out, Message{
				Topic: topic, Stream: idx, Key: r.Key, Value: r.Value,
				Offset: base + int64(i), Timestamp: p.svc.clock.Now(),
			})
		}
	}
	m.producedMsgs.Add(int64(len(out)))
	var total int64
	for _, r := range recs {
		total += int64(len(r.Key) + len(r.Value))
	}
	m.producedBytes.Add(total)
	m.produceLat.Observe(cost)
	return out, cost, nil
}

// sendOne delivers one stream's batch to its worker: forward transfer,
// durable append, acknowledgement, with retries under the service's
// resilience config. The sequence number is assigned once before the
// first attempt and reused by every retry, so a redelivered batch —
// whether the forward transfer or the ack was lost — lands in the
// stream object's dedup window instead of appending twice.
func (p *Producer) sendOne(sp *obs.Span, topic string, idx int, batch []streamobj.Record, obj *streamobj.Object, w *Worker, rc *resil.Ctx) (int64, time.Duration, error) {
	var bytes int64
	for _, r := range batch {
		bytes += int64(len(r.Key) + len(r.Value))
	}
	p.mu.Lock()
	p.seq[streamKey(topic, idx)]++
	seq := p.seq[streamKey(topic, idx)]
	p.mu.Unlock()

	cfg, on := p.svc.resilience()
	ep := workerEndpoint(w.id)
	var br *resil.Breaker
	if on {
		br = p.svc.breakerFor(ep)
	}
	reg := p.svc.Tenants()
	m := p.svc.metrics
	var cost time.Duration
	// appendedThisCall: a real (non-dedup) append happened under this
	// batch's admission; refunded: the admission was already refunded. A
	// dedup re-ack refunds the admission exactly once, and only when no
	// attempt of THIS call did the work (otherwise the charge stands).
	var appendedThisCall, refunded bool
	if err := rc.Check(); err != nil {
		m.deadlines.Inc()
		return 0, 0, err
	}
	// Virtual now for breaker decisions: the request's effective time
	// when a deadline context is threaded, otherwise the clock plus the
	// cost modelled so far.
	vnow := func() time.Duration {
		if rc != nil {
			return rc.Now()
		}
		return p.svc.clock.Now() + cost
	}
	attempts := 1
	if on {
		attempts = cfg.Retry.MaxAttempts
		if attempts <= 0 {
			attempts = resil.DefaultRetryPolicy().MaxAttempts
		}
	}

	// attemptOnce runs one full try. final=true means the outcome must
	// be returned as-is (success, shed, deadline, application error);
	// final=false is a transient transport failure worth retrying.
	attemptOnce := func(attempt int) (base int64, err error, final bool) {
		// Admission control under overload: when the endpoint's breaker
		// has left Closed, lowest-priority tenant traffic is shed first —
		// a deliberate 429 before any bytes move, so shed load never
		// reaches storage and can never be acked-then-lost.
		if br != nil && reg != nil && p.tenant != "" && br.State() != resil.Closed && reg.ShouldShed(p.tenant) {
			m.sheds.Inc()
			if sp != nil {
				e := sp.Child("tenant.shed")
				e.SetAttr("endpoint", ep)
				e.SetAttr("tenant", p.tenant)
				e.End(0)
			}
			return 0, reg.Shed(p.tenant, br.RetryAfter(vnow())), true
		}
		if br != nil {
			if aerr := br.Allow(vnow()); aerr != nil {
				m.sheds.Inc()
				if sp != nil {
					e := sp.Child("breaker.shed")
					e.SetAttr("endpoint", ep)
					e.End(0)
				}
				return 0, fmt.Errorf("streamsvc: produce to %s: %w", ep, aerr), true
			}
		}
		// Forward transfer to the stream worker.
		var busCost time.Duration
		var serr error
		if on {
			busCost, serr = w.bus.SendLinkT("client", ep, bytes, bus.Normal, p.tenant)
		} else {
			busCost = w.bus.Send(bytes, bus.Normal)
		}
		cost += busCost
		if sp != nil {
			b := sp.Child("bus.send")
			b.SetAttr("worker", strconv.Itoa(w.id))
			if attempt > 0 {
				b.SetAttr("attempt", strconv.Itoa(attempt))
			}
			if serr != nil {
				b.SetAttr("outcome", "dropped")
			}
			b.End(busCost)
			sp.Advance(busCost)
		}
		if derr := rc.Charge(busCost); derr != nil {
			m.deadlines.Inc()
			return 0, derr, true
		}
		if serr != nil {
			return 0, fmt.Errorf("streamsvc: send to %s: %w", ep, serr), false
		}
		// Durable append at the worker.
		var osp *obs.Span
		if sp != nil {
			osp = sp.Child("streamobj.append")
			osp.SetAttr("stream", strconv.Itoa(idx))
			if attempt > 0 {
				osp.SetAttr("attempt", strconv.Itoa(attempt))
			}
		}
		base, c, appended, aerr := obj.AppendTenantCtx(batch, p.id, seq, p.tenant, osp, rc)
		if osp != nil {
			osp.End(c)
			sp.Advance(c)
		}
		cost += c
		if appended {
			appendedThisCall = true
		} else if aerr == nil && !appendedThisCall && !refunded && reg != nil && p.tenant != "" {
			// Dedup re-ack of a batch some EARLIER producer incarnation
			// appended: this call's fresh admission did no work — hand
			// the tokens back so the retried batch nets one charge.
			refunded = true
			reg.Refund(p.tenant, len(batch), bytes)
		}
		if aerr != nil {
			if errors.Is(aerr, resil.ErrDeadlineExceeded) {
				// Ambiguous timeout: the append may have landed durably
				// (past the ack point the true base still comes back).
				// Retrying internally would double-spend the deadline;
				// the caller observes the ambiguity explicitly, as in
				// real systems where a timed-out produce may still have
				// committed.
				m.deadlines.Inc()
				if br != nil {
					br.Success(vnow())
				}
				return base, aerr, true
			}
			// Application errors (quota, sealed stream) are not endpoint
			// failures; surface them without burning the breaker.
			return 0, aerr, true
		}
		// Cluster commit gate: the append is durable, but in clustered
		// mode it must also commit to the replicated metadata log before
		// the client may be acknowledged. A quorum failure is retryable —
		// the re-sent batch lands in the dedup window (same seq, same
		// base) and the commit re-proposes idempotently, so failover
		// neither loses the acked write nor duplicates it. A minority
		// partition can never pass this gate, which is what "the minority
		// side serves no new writes" means operationally.
		if gate := p.svc.commitGate(); gate != nil {
			gc, gerr := gate.CommitProduce(topic, idx, base, len(batch))
			cost += gc
			if sp != nil {
				g := sp.Child("cluster.commit")
				g.SetAttr("stream", strconv.Itoa(idx))
				if gerr != nil {
					g.SetAttr("outcome", "no-quorum")
				}
				g.End(gc)
				sp.Advance(gc)
			}
			if derr := rc.Charge(gc); derr != nil {
				m.deadlines.Inc()
				if br != nil {
					br.Success(vnow())
				}
				return base, derr, true
			}
			if gerr != nil {
				return 0, fmt.Errorf("streamsvc: commit %s/%d: %w", topic, idx, gerr), false
			}
		}
		if !on {
			return base, nil, true
		}
		// Acknowledgement on the reverse link: small and high-priority.
		// A lost ack leaves the append durable but the client unsure —
		// the retry resends and the dedup window answers with the
		// original base offset.
		ackCost, ackErr := w.bus.SendLinkT(ep, "client", cfg.AckBytes, bus.High, p.tenant)
		cost += ackCost
		if sp != nil {
			sp.Advance(ackCost)
		}
		if derr := rc.Charge(ackCost); derr != nil {
			m.deadlines.Inc()
			if br != nil {
				br.Success(vnow())
			}
			return base, derr, true
		}
		if ackErr != nil {
			m.ackDrops.Inc()
			return 0, fmt.Errorf("streamsvc: ack from %s lost: %w", ep, ackErr), false
		}
		if br != nil {
			br.Success(vnow())
		}
		return base, nil, true
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		base, err, final := attemptOnce(attempt)
		if final {
			return base, cost, err
		}
		lastErr = err
		if br != nil {
			if br.Failure(vnow()) {
				m.trips.Inc()
			}
		}
		if attempt+1 >= attempts {
			break
		}
		m.retries.Inc()
		backoff := cfg.Retry.Backoff(attempt, p.backoffRNG())
		cost += backoff
		if sp != nil {
			b := sp.Child("retry.backoff")
			b.SetAttr("endpoint", ep)
			b.End(backoff)
			sp.Advance(backoff)
		}
		if derr := rc.Charge(backoff); derr != nil {
			m.deadlines.Inc()
			return 0, cost, derr
		}
	}
	return 0, cost, fmt.Errorf("streamsvc: %s: %w after %d attempts: %w", ep, ErrRetriesExhausted, attempts, lastErr)
}

// TxnState tracks a transaction through the two-phase commit protocol.
type TxnState int

const (
	// TxnOpen accepts sends.
	TxnOpen TxnState = iota
	// TxnCommitted is terminal success.
	TxnCommitted
	// TxnAborted is terminal failure.
	TxnAborted
)

// Txn is a producer transaction: sends are buffered and made durable
// atomically at Commit through the transaction manager's two-phase
// commit, giving exactly-once semantics — all of the transaction's
// messages become visible together or not at all.
type Txn struct {
	p     *Producer
	id    int64
	state TxnState
	// buffered records per (topic, stream).
	parts map[string]*txnPart
}

type txnPart struct {
	topic string
	idx   int
	obj   *streamobj.Object
	recs  []streamobj.Record
}

// BeginTxn opens a transaction, logging it with the transaction manager
// (the dispatcher's KV store).
func (p *Producer) BeginTxn() *Txn {
	p.svc.mu.Lock()
	p.svc.txnSeq++
	id := p.svc.txnSeq
	p.svc.mu.Unlock()
	p.svc.meta.Put([]byte(fmt.Sprintf("txn/%d", id)), []byte("begin"))
	return &Txn{p: p, id: id, parts: make(map[string]*txnPart)}
}

// Send buffers one message in the transaction.
func (t *Txn) Send(topic string, key, value []byte) error {
	if t.state != TxnOpen {
		return ErrTxnAborted
	}
	t.p.svc.mu.Lock()
	ts, ok := t.p.svc.topics[topic]
	t.p.svc.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	idx := routeKey(key, len(ts.streams))
	k := streamKey(topic, idx)
	part, ok := t.parts[k]
	if !ok {
		part = &txnPart{topic: topic, idx: idx, obj: ts.streams[idx]}
		t.parts[k] = part
	}
	part.recs = append(part.recs, streamobj.Record{Key: key, Value: value})
	return nil
}

// Commit runs two-phase commit: every participant stream prepares
// (validating it can accept the batch), then all batches are appended
// under the service's commit latch so consumers observe the transaction
// atomically. Any prepare failure aborts the whole transaction.
func (t *Txn) Commit() (time.Duration, error) {
	if t.state != TxnOpen {
		return 0, ErrTxnAborted
	}
	svc := t.p.svc
	// Participants in sorted key order: deterministic prepare/commit
	// sequencing regardless of map layout, for bit-identical replay.
	keys := make([]string, 0, len(t.parts))
	for k := range t.parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Phase 1: prepare.
	for _, k := range keys {
		part := t.parts[k]
		if err := part.obj.CanAppend(len(part.recs)); err != nil {
			t.abortInternal()
			return 0, fmt.Errorf("%w: prepare failed on %s/%d: %v", ErrTxnAborted, part.topic, part.idx, err)
		}
	}
	svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("prepared"))
	// Phase 2: commit. The commit latch makes the appends atomic with
	// respect to polling consumers.
	svc.commitMu.Lock()
	var cost time.Duration
	for _, k := range keys {
		part := t.parts[k]
		t.p.mu.Lock()
		t.p.seq[streamKey(part.topic, part.idx)]++
		seq := t.p.seq[streamKey(part.topic, part.idx)]
		t.p.mu.Unlock()
		_, c, err := part.obj.Append(part.recs, t.p.id, seq)
		if err != nil {
			// Prepare validated capacity; failure here is a programming
			// error surfaced loudly rather than silently partial.
			svc.commitMu.Unlock()
			t.state = TxnAborted
			svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("failed"))
			return cost, fmt.Errorf("streamsvc: commit phase-2 append: %w", err)
		}
		cost += c
	}
	svc.commitMu.Unlock()
	svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("committed"))
	t.state = TxnCommitted
	return cost, nil
}

// Abort discards the transaction's buffered messages.
func (t *Txn) Abort() {
	if t.state == TxnOpen {
		t.abortInternal()
	}
}

func (t *Txn) abortInternal() {
	t.state = TxnAborted
	t.p.svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("aborted"))
}

// State returns the transaction's current state.
func (t *Txn) State() TxnState { return t.state }
