package streamsvc

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"streamlake/internal/bus"
	"streamlake/internal/obs"
	"streamlake/internal/streamobj"
)

// Producer publishes messages to topics. The API mirrors the open-source
// de facto standard of Figure 7: construct a producer, Send to a topic.
// Producers are idempotent: every (producer, stream) batch carries a
// sequence number the stream object deduplicates on.
type Producer struct {
	svc *Service
	id  string

	mu  sync.Mutex
	seq map[string]int64
}

// Producer returns a producer handle with the given client id. Sequence
// numbers — and therefore idempotent deduplication — are scoped to the
// id, so two producer instances sharing an id are treated as the same
// logical producer (a restart), not as independent senders. An empty id
// is assigned a fresh unique identity.
func (s *Service) Producer(id string) *Producer {
	if id == "" {
		s.mu.Lock()
		s.txnSeq++
		id = fmt.Sprintf("producer-%d", s.txnSeq)
		s.mu.Unlock()
	}
	return &Producer{svc: s, id: id, seq: make(map[string]int64)}
}

// Send publishes one key-value message, returning the stored message and
// the modelled end-to-end produce latency (bus transfer to the stream
// worker plus the durable append).
func (p *Producer) Send(topic string, key, value []byte) (Message, time.Duration, error) {
	msgs, cost, err := p.SendBatch(topic, []streamobj.Record{{Key: key, Value: value}})
	if err != nil {
		return Message{}, cost, err
	}
	return msgs[0], cost, nil
}

// SendBatch publishes records that share a routing key stream (each
// record routes independently by its key).
func (p *Producer) SendBatch(topic string, recs []streamobj.Record) ([]Message, time.Duration, error) {
	return p.sendBatch(nil, topic, recs)
}

// SendSpan is Send with tracing: the request's bus transfer, durable
// append, and everything below (PLog placement writes, slice flushes)
// are recorded as children of sp. A nil span traces nothing.
func (p *Producer) SendSpan(topic string, key, value []byte, sp *obs.Span) (Message, time.Duration, error) {
	msgs, cost, err := p.sendBatch(sp, topic, []streamobj.Record{{Key: key, Value: value}})
	if err != nil {
		return Message{}, cost, err
	}
	return msgs[0], cost, nil
}

func (p *Producer) sendBatch(sp *obs.Span, topic string, recs []streamobj.Record) ([]Message, time.Duration, error) {
	p.svc.mu.Lock()
	ts, ok := p.svc.topics[topic]
	m := p.svc.metrics
	p.svc.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	// Group records by target stream.
	byStream := make(map[int][]streamobj.Record)
	for _, r := range recs {
		byStream[routeKey(r.Key, len(ts.streams))] = append(byStream[routeKey(r.Key, len(ts.streams))], r)
	}
	var out []Message
	var cost time.Duration
	for idx, batch := range byStream {
		obj := ts.streams[idx]
		w := p.svc.ownerOf(topic, idx)
		var bytes int64
		for _, r := range batch {
			bytes += int64(len(r.Key) + len(r.Value))
		}
		busCost := w.bus.Send(bytes, bus.Normal)
		cost += busCost
		if sp != nil {
			b := sp.Child("bus.send")
			b.SetAttr("worker", strconv.Itoa(w.id))
			b.End(busCost)
			sp.Advance(busCost)
		}
		p.mu.Lock()
		p.seq[streamKey(topic, idx)]++
		seq := p.seq[streamKey(topic, idx)]
		p.mu.Unlock()
		var osp *obs.Span
		if sp != nil {
			osp = sp.Child("streamobj.append")
			osp.SetAttr("stream", strconv.Itoa(idx))
		}
		base, c, err := obj.AppendSpan(batch, p.id, seq, osp)
		if err != nil {
			return nil, cost, err
		}
		osp.End(c)
		sp.Advance(c)
		cost += c
		w.mu.Lock()
		w.appended += int64(len(batch))
		w.mu.Unlock()
		for i, r := range batch {
			out = append(out, Message{
				Topic: topic, Stream: idx, Key: r.Key, Value: r.Value,
				Offset: base + int64(i), Timestamp: p.svc.clock.Now(),
			})
		}
	}
	m.producedMsgs.Add(int64(len(out)))
	var total int64
	for _, r := range recs {
		total += int64(len(r.Key) + len(r.Value))
	}
	m.producedBytes.Add(total)
	m.produceLat.Observe(cost)
	return out, cost, nil
}

// TxnState tracks a transaction through the two-phase commit protocol.
type TxnState int

const (
	// TxnOpen accepts sends.
	TxnOpen TxnState = iota
	// TxnCommitted is terminal success.
	TxnCommitted
	// TxnAborted is terminal failure.
	TxnAborted
)

// Txn is a producer transaction: sends are buffered and made durable
// atomically at Commit through the transaction manager's two-phase
// commit, giving exactly-once semantics — all of the transaction's
// messages become visible together or not at all.
type Txn struct {
	p     *Producer
	id    int64
	state TxnState
	// buffered records per (topic, stream).
	parts map[string]*txnPart
}

type txnPart struct {
	topic string
	idx   int
	obj   *streamobj.Object
	recs  []streamobj.Record
}

// BeginTxn opens a transaction, logging it with the transaction manager
// (the dispatcher's KV store).
func (p *Producer) BeginTxn() *Txn {
	p.svc.mu.Lock()
	p.svc.txnSeq++
	id := p.svc.txnSeq
	p.svc.mu.Unlock()
	p.svc.meta.Put([]byte(fmt.Sprintf("txn/%d", id)), []byte("begin"))
	return &Txn{p: p, id: id, parts: make(map[string]*txnPart)}
}

// Send buffers one message in the transaction.
func (t *Txn) Send(topic string, key, value []byte) error {
	if t.state != TxnOpen {
		return ErrTxnAborted
	}
	t.p.svc.mu.Lock()
	ts, ok := t.p.svc.topics[topic]
	t.p.svc.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	idx := routeKey(key, len(ts.streams))
	k := streamKey(topic, idx)
	part, ok := t.parts[k]
	if !ok {
		part = &txnPart{topic: topic, idx: idx, obj: ts.streams[idx]}
		t.parts[k] = part
	}
	part.recs = append(part.recs, streamobj.Record{Key: key, Value: value})
	return nil
}

// Commit runs two-phase commit: every participant stream prepares
// (validating it can accept the batch), then all batches are appended
// under the service's commit latch so consumers observe the transaction
// atomically. Any prepare failure aborts the whole transaction.
func (t *Txn) Commit() (time.Duration, error) {
	if t.state != TxnOpen {
		return 0, ErrTxnAborted
	}
	svc := t.p.svc
	// Phase 1: prepare.
	for _, part := range t.parts {
		if err := part.obj.CanAppend(len(part.recs)); err != nil {
			t.abortInternal()
			return 0, fmt.Errorf("%w: prepare failed on %s/%d: %v", ErrTxnAborted, part.topic, part.idx, err)
		}
	}
	svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("prepared"))
	// Phase 2: commit. The commit latch makes the appends atomic with
	// respect to polling consumers.
	svc.commitMu.Lock()
	var cost time.Duration
	for _, part := range t.parts {
		t.p.mu.Lock()
		t.p.seq[streamKey(part.topic, part.idx)]++
		seq := t.p.seq[streamKey(part.topic, part.idx)]
		t.p.mu.Unlock()
		_, c, err := part.obj.Append(part.recs, t.p.id, seq)
		if err != nil {
			// Prepare validated capacity; failure here is a programming
			// error surfaced loudly rather than silently partial.
			svc.commitMu.Unlock()
			t.state = TxnAborted
			svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("failed"))
			return cost, fmt.Errorf("streamsvc: commit phase-2 append: %w", err)
		}
		cost += c
	}
	svc.commitMu.Unlock()
	svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("committed"))
	t.state = TxnCommitted
	return cost, nil
}

// Abort discards the transaction's buffered messages.
func (t *Txn) Abort() {
	if t.state == TxnOpen {
		t.abortInternal()
	}
}

func (t *Txn) abortInternal() {
	t.state = TxnAborted
	t.p.svc.meta.Put([]byte(fmt.Sprintf("txn/%d", t.id)), []byte("aborted"))
}

// State returns the transaction's current state.
func (t *Txn) State() TxnState { return t.state }
