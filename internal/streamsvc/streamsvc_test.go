package streamsvc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
)

func newService(t testing.TB, workers int) *Service {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("svc", clock, sim.NVMeSSD, 6, 4<<20)
	store := streamobj.NewStore(clock, plog.NewManager(p, 1<<20))
	return New(clock, store, workers)
}

func TestCreateDeleteTopic(t *testing.T) {
	s := newService(t, 2)
	if err := s.CreateTopic(TopicConfig{Name: "logins", StreamNum: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTopic(TopicConfig{Name: "logins"}); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("duplicate topic: %v", err)
	}
	cfg, err := s.Topic("logins")
	if err != nil || cfg.StreamNum != 3 {
		t.Fatalf("topic: %+v %v", cfg, err)
	}
	if s.Store().Count() != 3 {
		t.Fatalf("stream objects: %d", s.Store().Count())
	}
	if err := s.DeleteTopic("logins"); err != nil {
		t.Fatal(err)
	}
	if s.Store().Count() != 0 {
		t.Fatal("delete topic left stream objects")
	}
	if err := s.DeleteTopic("logins"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestTopicDefaults(t *testing.T) {
	s := newService(t, 1)
	s.CreateTopic(TopicConfig{Name: "t", Convert: ConvertConfig{Enabled: true}, Archive: ArchiveConfig{Enabled: true}})
	cfg, _ := s.Topic("t")
	if cfg.StreamNum != 1 || cfg.Convert.SplitOffset != 10_000_000 ||
		cfg.Convert.SplitTime != 36000*time.Second || cfg.Archive.ArchiveBytes != 256<<20 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestRoundRobinWorkerAssignment(t *testing.T) {
	s := newService(t, 3)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 9})
	for _, w := range s.workers {
		if w.StreamCount() != 3 {
			t.Fatalf("worker %d has %d streams, want 3", w.ID(), w.StreamCount())
		}
	}
}

func TestProduceConsume(t *testing.T) {
	s := newService(t, 2)
	s.CreateTopic(TopicConfig{Name: "topic_streamlake_test", StreamNum: 2})
	p := s.Producer("p1")
	msg, cost, err := p.Send("topic_streamlake_test", []byte("key"), []byte("Hello world"))
	if err != nil || cost <= 0 {
		t.Fatalf("send: %v cost=%v", err, cost)
	}
	if msg.Topic != "topic_streamlake_test" || msg.Offset != 0 {
		t.Fatalf("message: %+v", msg)
	}
	c := s.Consumer("g1")
	if err := c.Subscribe("topic_streamlake_test"); err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Poll(10)
	if err != nil || len(got) != 1 || string(got[0].Value) != "Hello world" {
		t.Fatalf("poll: %+v %v", got, err)
	}
	// Caught up: empty poll.
	got, _, err = c.Poll(10)
	if err != nil || len(got) != 0 {
		t.Fatalf("second poll: %+v %v", got, err)
	}
}

func TestProduceToUnknownTopic(t *testing.T) {
	s := newService(t, 1)
	if _, _, err := s.Producer("p").Send("nope", []byte("k"), []byte("v")); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("unknown topic: %v", err)
	}
	c := s.Consumer("g")
	if err := c.Subscribe("nope"); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("subscribe unknown: %v", err)
	}
	if _, _, err := c.Poll(1); !errors.Is(err, ErrNotSubscribed) {
		t.Fatalf("poll unsubscribed: %v", err)
	}
}

func TestOrderingWithinStream(t *testing.T) {
	s := newService(t, 2)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 3})
	p := s.Producer("p")
	key := []byte("same-key") // one key -> one stream -> strict order
	for i := 0; i < 500; i++ {
		if _, _, err := p.Send("t", key, []byte(fmt.Sprintf("%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	var seen []string
	for {
		msgs, _, err := c.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			seen = append(seen, string(m.Value))
		}
	}
	if len(seen) != 500 {
		t.Fatalf("got %d messages", len(seen))
	}
	for i, v := range seen {
		if v != fmt.Sprintf("%06d", i) {
			t.Fatalf("order broken at %d: %q", i, v)
		}
	}
}

func TestConsumerGroupOffsetsSurviveRestart(t *testing.T) {
	s := newService(t, 1)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1})
	p := s.Producer("p")
	for i := 0; i < 10; i++ {
		p.Send("t", []byte("k"), []byte(fmt.Sprintf("v%d", i)))
	}
	c1 := s.Consumer("group-a")
	c1.Subscribe("t")
	msgs, _, _ := c1.Poll(4)
	if len(msgs) != 4 {
		t.Fatalf("first poll: %d", len(msgs))
	}
	if _, err := c1.CommitOffsets(); err != nil {
		t.Fatal(err)
	}
	// A new consumer in the same group resumes at the committed offset.
	c2 := s.Consumer("group-a")
	c2.Subscribe("t")
	msgs, _, _ = c2.Poll(100)
	if len(msgs) != 6 || string(msgs[0].Value) != "v4" {
		t.Fatalf("resumed poll: %d msgs, first %q", len(msgs), msgs[0].Value)
	}
	// A different group starts from zero.
	c3 := s.Consumer("group-b")
	c3.Subscribe("t")
	msgs, _, _ = c3.Poll(100)
	if len(msgs) != 10 {
		t.Fatalf("fresh group: %d msgs", len(msgs))
	}
}

func TestSeekAndLag(t *testing.T) {
	s := newService(t, 1)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1})
	p := s.Producer("p")
	for i := 0; i < 20; i++ {
		p.Send("t", []byte("k"), []byte("v"))
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	lag, err := c.Lag("t")
	if err != nil || lag != 20 {
		t.Fatalf("lag: %d %v", lag, err)
	}
	if err := c.Seek("t", 0, 15); err != nil {
		t.Fatal(err)
	}
	msgs, _, _ := c.Poll(100)
	if len(msgs) != 5 {
		t.Fatalf("after seek: %d msgs", len(msgs))
	}
	if err := c.Seek("t", 9, 0); err == nil {
		t.Fatal("seek to bad stream accepted")
	}
}

func TestElasticScaleNoDataMigration(t *testing.T) {
	s := newService(t, 2)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 100})
	p := s.Producer("p")
	for i := 0; i < 1000; i++ {
		p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	objs, _ := s.Streams("t")
	var before int64
	for _, o := range objs {
		before += o.End()
	}
	moved, cost := s.SetWorkerCount(8)
	if moved == 0 {
		t.Fatal("scale-out moved no streams")
	}
	if s.WorkerCount() != 8 {
		t.Fatalf("worker count: %d", s.WorkerCount())
	}
	// Remap is metadata-only: stream contents untouched, and fast
	// (paper: 1000->10000 partitions in under 10 s).
	var after int64
	for _, o := range objs {
		after += o.End()
	}
	if after != before {
		t.Fatal("scaling migrated data")
	}
	if cost > 10*time.Second {
		t.Fatalf("remap cost %v too slow", cost)
	}
	// Service still works end to end.
	if _, _, err := p.Send("t", []byte("post-scale"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 1001 {
		t.Fatalf("consumed %d messages after scaling", total)
	}
}

func TestTransactionCommitAtomicVisibility(t *testing.T) {
	s := newService(t, 2)
	s.CreateTopic(TopicConfig{Name: "accounts", StreamNum: 4})
	p := s.Producer("txn-p")
	c := s.Consumer("g")
	c.Subscribe("accounts")

	txn := p.BeginTxn()
	for i := 0; i < 10; i++ {
		if err := txn.Send("accounts", []byte(fmt.Sprintf("acct-%d", i)), []byte("debit")); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing visible before commit.
	if msgs, _, _ := c.Poll(100); len(msgs) != 0 {
		t.Fatalf("uncommitted messages visible: %d", len(msgs))
	}
	if _, err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if txn.State() != TxnCommitted {
		t.Fatalf("state: %v", txn.State())
	}
	var total int
	for {
		msgs, _, err := c.Poll(100)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 10 {
		t.Fatalf("committed messages: %d", total)
	}
	// Terminal transactions reject further use.
	if err := txn.Send("accounts", []byte("k"), []byte("v")); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("send after commit: %v", err)
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTransactionAbortDiscardsAll(t *testing.T) {
	s := newService(t, 1)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 2})
	p := s.Producer("p")
	txn := p.BeginTxn()
	txn.Send("t", []byte("a"), []byte("1"))
	txn.Send("t", []byte("b"), []byte("2"))
	txn.Abort()
	if txn.State() != TxnAborted {
		t.Fatalf("state: %v", txn.State())
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	if msgs, _, _ := c.Poll(100); len(msgs) != 0 {
		t.Fatalf("aborted messages visible: %d", len(msgs))
	}
}

func TestTransactionPrepareFailureAbortsAll(t *testing.T) {
	// One participant stream has a tiny quota; 2PC must abort the whole
	// transaction and no stream may receive anything.
	s := newService(t, 1)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 2, QuotaPerSec: 5})
	s.Clock().Advance(time.Second) // fill buckets: 5 tokens per stream
	p := s.Producer("p")
	txn := p.BeginTxn()
	// Overload one stream (same key -> same stream) beyond its quota.
	for i := 0; i < 8; i++ {
		txn.Send("t", []byte("hot-key"), []byte("v"))
	}
	if _, err := txn.Commit(); !errors.Is(err, ErrTxnAborted) {
		t.Fatalf("over-quota commit: %v", err)
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	if msgs, _, _ := c.Poll(100); len(msgs) != 0 {
		t.Fatalf("partial transaction visible: %d msgs", len(msgs))
	}
}

func TestConcurrentProducersAndConsumer(t *testing.T) {
	s := newService(t, 4)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 8})
	var wg sync.WaitGroup
	const perProducer = 200
	for pi := 0; pi < 4; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			p := s.Producer(fmt.Sprintf("p%d", pi))
			for i := 0; i < perProducer; i++ {
				if _, _, err := p.Send("t", []byte(fmt.Sprintf("k%d-%d", pi, i)), []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(pi)
	}
	wg.Wait()
	c := s.Consumer("g")
	c.Subscribe("t")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 4*perProducer {
		t.Fatalf("consumed %d, want %d", total, 4*perProducer)
	}
}

func TestTopologyVersionAdvances(t *testing.T) {
	s := newService(t, 1)
	v0 := s.TopologyVersion()
	s.CreateTopic(TopicConfig{Name: "t"})
	v1 := s.TopologyVersion()
	s.SetWorkerCount(3)
	v2 := s.TopologyVersion()
	if !(v0 < v1 && v1 < v2) {
		t.Fatalf("topology versions: %d %d %d", v0, v1, v2)
	}
}

func TestWorkerFailover(t *testing.T) {
	s := newService(t, 3)
	s.CreateTopic(TopicConfig{Name: "t", StreamNum: 9})
	p := s.Producer("p")
	for i := 0; i < 300; i++ {
		if _, _, err := p.Send("t", []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	v := s.TopologyVersion()
	moved, err := s.FailWorker(1)
	if err != nil || moved != 3 {
		t.Fatalf("failover moved %d streams: %v", moved, err)
	}
	if s.WorkerCount() != 2 {
		t.Fatalf("workers after failure: %d", s.WorkerCount())
	}
	if s.TopologyVersion() <= v {
		t.Fatal("topology version did not advance")
	}
	// Every stream is still owned and the service keeps flowing.
	for _, w := range s.workers {
		if w.StreamCount() == 0 {
			t.Fatal("survivor owns nothing")
		}
	}
	if _, _, err := p.Send("t", []byte("post"), []byte("failover")); err != nil {
		t.Fatal(err)
	}
	c := s.Consumer("g")
	c.Subscribe("t")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	if total != 301 {
		t.Fatalf("consumed %d after failover", total)
	}
	// Guard rails.
	if _, err := s.FailWorker(99); err == nil {
		t.Fatal("failed unknown worker")
	}
	s.FailWorker(0)
	if _, err := s.FailWorker(0); err == nil {
		t.Fatal("failed the last worker")
	}
}

// snapshotAssignments maps every assigned stream key to its owner.
func snapshotAssignments(s *Service) map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for _, w := range s.workers {
		w.mu.Lock()
		for k := range w.streams {
			out[k] = w.id
		}
		w.mu.Unlock()
	}
	return out
}

// TestSetWorkerDownMinimalChurn pins the failover reassignment contract:
// marking one worker down moves only that worker's streams (rendezvous
// over the survivors), and marking it back up returns exactly those
// streams home — streams on unaffected workers never churn.
func TestSetWorkerDownMinimalChurn(t *testing.T) {
	s := newService(t, 4)
	if err := s.CreateTopic(TopicConfig{Name: "churn", StreamNum: 16}); err != nil {
		t.Fatal(err)
	}
	before := snapshotAssignments(s)
	moved, _ := s.SetWorkerDown(1, true)
	after := snapshotAssignments(s)
	displaced := 0
	for k, owner := range before {
		if owner == 1 {
			displaced++
			if after[k] == 1 {
				t.Fatalf("stream %s left on the down worker", k)
			}
			continue
		}
		if after[k] != owner {
			t.Fatalf("stream %s churned %d -> %d though worker %d stayed up",
				k, owner, after[k], owner)
		}
	}
	if moved != displaced {
		t.Fatalf("down moved %d streams, want exactly the down worker's %d", moved, displaced)
	}
	// Revival: the displaced streams — and only they — return home.
	moved, _ = s.SetWorkerDown(1, false)
	if moved != displaced {
		t.Fatalf("revive moved %d streams, want %d", moved, displaced)
	}
	restored := snapshotAssignments(s)
	for k, owner := range before {
		if restored[k] != owner {
			t.Fatalf("stream %s not restored: %d, want %d", k, restored[k], owner)
		}
	}
}
