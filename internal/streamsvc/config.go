// Package streamsvc implements StreamLake's message streaming service
// (Section V-A, Figure 6): producers and consumers connected through a
// stream dispatcher to stream workers, which persist messages in stream
// objects. The dispatcher keeps topics, streams, workers and their
// relationships as key-value pairs in a fault-tolerant KV store; workers
// are assigned streams round-robin; scaling the worker fleet is a
// metadata-only remap with no data migration. Exactly-once delivery is
// provided by a transaction manager running two-phase commit across the
// stream workers.
package streamsvc

import (
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
)

// ConvertConfig is the convert_2_table block of the topic configuration
// (Figure 8): automatic conversion of stream messages to table records.
type ConvertConfig struct {
	Enabled     bool
	TableName   string
	TablePath   string
	TableSchema colfile.Schema
	// PartitionColumn partitions the produced table.
	PartitionColumn string
	// SplitOffset triggers conversion after this many accumulated
	// messages (the paper's default: 10^7).
	SplitOffset int64
	// SplitTime triggers conversion after this much time (the paper's
	// default: 36000 s).
	SplitTime time.Duration
	// DeleteMsg reclaims converted stream slices, keeping one copy of
	// the data (the storage saving of Section V-B).
	DeleteMsg bool
	// Transform, when set, applies the table schema to a raw message
	// (returning ok=false to reject it) instead of expecting
	// rowcodec-encoded rows — the schema-application step of the
	// conversion.
	Transform func(key, value []byte) (colfile.Row, bool) `json:"-"`
}

// ArchiveConfig is the archive block of the topic configuration
// (Figure 8).
type ArchiveConfig struct {
	Enabled bool
	// ExternalURL, when set, exports archives to an external system
	// instead of the StreamLake archive pool.
	ExternalURL string
	// ArchiveBytes is the accumulated data volume that triggers
	// archiving (the paper expresses it in MB).
	ArchiveBytes int64
	// RowToCol archives in columnar format.
	RowToCol bool
}

// TopicConfig configures one topic (Figure 8).
type TopicConfig struct {
	Name string
	// StreamNum is the topic's parallelism: how many streams (and
	// stream objects) serve it.
	StreamNum int
	// QuotaPerSec caps each stream's processing rate.
	QuotaPerSec int64
	// SCMCache enables the storage-class-memory cache.
	SCMCache bool
	// Redundancy selects the stream objects' redundancy (default 3x).
	Redundancy plog.Redundancy
	Convert    ConvertConfig
	Archive    ArchiveConfig
}

func (c *TopicConfig) applyDefaults() {
	if c.StreamNum <= 0 {
		c.StreamNum = 1
	}
	if c.Convert.Enabled {
		if c.Convert.SplitOffset <= 0 {
			c.Convert.SplitOffset = 10_000_000
		}
		if c.Convert.SplitTime <= 0 {
			c.Convert.SplitTime = 36000 * time.Second
		}
	}
	if c.Archive.Enabled && c.Archive.ArchiveBytes <= 0 {
		c.Archive.ArchiveBytes = 256 << 20
	}
}

// Message is one delivered record.
type Message struct {
	Topic     string
	Stream    int
	Key       []byte
	Value     []byte
	Offset    int64
	Timestamp time.Duration
}
