package streamsvc

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSubscribePollCommit is the lock-order regression test for
// Consumer.Poll's documented ordering (c.mu, then svc.commitMu, then
// svc.mu): producers, transactional commits, subscriptions, polls, offset
// commits and topic creation all race; run under -race this fails on any
// reordering that reintroduces a data race or a lock-order inversion
// deadlock.
func TestConcurrentSubscribePollCommit(t *testing.T) {
	s := newService(t, 3)
	for i := 0; i < 3; i++ {
		if err := s.CreateTopic(TopicConfig{Name: fmt.Sprintf("t%d", i), StreamNum: 2}); err != nil {
			t.Fatal(err)
		}
	}
	const (
		consumers = 4
		rounds    = 50
	)
	var wg sync.WaitGroup
	// Producers keep all topics moving, one of them transactionally, so
	// polls contend with svc.commitMu held exclusively.
	wg.Add(2)
	go func() {
		defer wg.Done()
		p := s.Producer("plain")
		for i := 0; i < rounds; i++ {
			for topic := 0; topic < 3; topic++ {
				p.Send(fmt.Sprintf("t%d", topic), []byte("k"), []byte("v"))
			}
		}
	}()
	go func() {
		defer wg.Done()
		p := s.Producer("txn")
		for i := 0; i < rounds; i++ {
			txn := p.BeginTxn()
			txn.Send("t0", []byte("tk"), []byte("tv"))
			txn.Send("t1", []byte("tk"), []byte("tv"))
			if _, err := txn.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Consumers subscribe incrementally while polling and committing.
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cons := s.Consumer(fmt.Sprintf("g%d", c%2))
			if err := cons.Subscribe("t0"); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				if i == rounds/2 {
					if err := cons.Subscribe(fmt.Sprintf("t%d", 1+c%2)); err != nil {
						t.Error(err)
						return
					}
				}
				if _, _, err := cons.Poll(16); err != nil {
					t.Error(err)
					return
				}
				if _, err := cons.CommitOffsets(); err != nil {
					t.Error(err)
					return
				}
				cons.Lag("t0")
			}
		}(c)
	}
	// Topic churn on unrelated topics exercises svc.mu against the
	// pollers' one-shot topic snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("churn%d", i)
			if err := s.CreateTopic(TopicConfig{Name: name, StreamNum: 1}); err != nil {
				t.Error(err)
				return
			}
			if err := s.DeleteTopic(name); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	// Every published message must still be consumable: no data loss from
	// the concurrent mutation.
	cons := s.Consumer("final")
	for i := 0; i < 3; i++ {
		if err := cons.Subscribe(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for {
		msgs, _, err := cons.Poll(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		total += len(msgs)
	}
	want := 3*rounds + 2*rounds // plain sends + transactional sends
	if total != want {
		t.Fatalf("consumed %d messages, want %d", total, want)
	}
}
