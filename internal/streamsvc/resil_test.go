package streamsvc

import (
	"errors"
	"testing"
	"time"

	"streamlake/internal/faults"
	"streamlake/internal/obs"
	"streamlake/internal/resil"
)

// scriptNet fails a scripted number of forward and reverse deliveries,
// then passes everything — deterministic loss for retry tests.
type scriptNet struct {
	failFwd int // drop this many client->worker deliveries
	failAck int // drop this many worker->client deliveries
	fwd     int
	ack     int
}

var errNetDrop = errors.New("scripted drop")

func (h *scriptNet) Deliver(from, to string, n int64) (time.Duration, error) {
	if from == "client" {
		h.fwd++
		if h.fwd <= h.failFwd {
			return 0, errNetDrop
		}
	}
	if to == "client" {
		h.ack++
		if h.ack <= h.failAck {
			return 0, errNetDrop
		}
	}
	return 0, nil
}

func resilService(t *testing.T, hook interface {
	Deliver(from, to string, n int64) (time.Duration, error)
}) (*Service, *obs.Registry) {
	t.Helper()
	s := newService(t, 1)
	reg := obs.NewRegistry(s.Clock())
	s.SetObs(reg)
	s.Store().SetObs(reg)
	s.SetNet(hook)
	s.SetResilience(ResilienceConfig{Seed: 42})
	if err := s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1}); err != nil {
		t.Fatal(err)
	}
	return s, reg
}

// TestRetrySurvivesForwardDrops: dropped forward transfers are retried
// with backoff until one lands; the record appends exactly once.
func TestRetrySurvivesForwardDrops(t *testing.T) {
	s, reg := resilService(t, &scriptNet{failFwd: 2})
	p := s.Producer("p1")
	msg, cost, err := p.Send("t", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Offset != 0 {
		t.Fatalf("offset: %d", msg.Offset)
	}
	objs, _ := s.Streams("t")
	if end := objs[0].End(); end != 1 {
		t.Fatalf("retries double-appended: end=%d want 1", end)
	}
	if got := reg.Counter("streamsvc_retries_total").Value(); got != 2 {
		t.Fatalf("retries counter: %d want 2", got)
	}
	if cost <= 0 {
		t.Fatalf("cost: %v", cost)
	}
}

// TestLostAckDedups is the ambiguous-failure case retries exist for:
// the append lands durably, the ack is lost, and the redelivered batch
// must dedup to the original offset instead of appending twice.
func TestLostAckDedups(t *testing.T) {
	s, reg := resilService(t, &scriptNet{failAck: 1})
	p := s.Producer("p1")
	msg, _, err := p.Send("t", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Offset != 0 {
		t.Fatalf("dedup did not return the original base: offset=%d", msg.Offset)
	}
	objs, _ := s.Streams("t")
	if end := objs[0].End(); end != 1 {
		t.Fatalf("lost ack double-appended: end=%d want 1", end)
	}
	if got := reg.Counter("streamsvc_ack_drops_total").Value(); got != 1 {
		t.Fatalf("ack drops counter: %d want 1", got)
	}
	if got := reg.Counter("streamobj_dedup_acks_total").Value(); got != 1 {
		t.Fatalf("dedup acks counter: %d want 1", got)
	}
	// The producer keeps working after the wobble.
	msg2, _, err := p.Send("t", []byte("k2"), []byte("v2"))
	if err != nil || msg2.Offset != 1 {
		t.Fatalf("follow-up send: %+v %v", msg2, err)
	}
}

// TestBreakerShedsAndRecovers: a partitioned worker exhausts retries
// until the breaker trips, sheds cheaply while open, then recovers
// through a half-open probe once the partition heals and the cooldown
// elapses.
func TestBreakerShedsAndRecovers(t *testing.T) {
	np := faults.NewNetPlane(7)
	s := newService(t, 1)
	reg := obs.NewRegistry(s.Clock())
	s.SetObs(reg)
	s.SetNet(np)
	s.SetResilience(ResilienceConfig{
		Retry:   resil.RetryPolicy{MaxAttempts: 2},
		Breaker: resil.BreakerConfig{FailureThreshold: 3, Window: time.Second, Cooldown: 10 * time.Millisecond},
		Seed:    42,
	})
	if err := s.CreateTopic(TopicConfig{Name: "t", StreamNum: 1}); err != nil {
		t.Fatal(err)
	}
	np.Partition("client", "worker/0")
	p := s.Producer("p1")
	// 2 sends x 2 attempts = 4 failures >= threshold 3: breaker trips.
	for i := 0; i < 2; i++ {
		if _, _, err := p.Send("t", []byte("k"), []byte("v")); err == nil {
			t.Fatal("partitioned send succeeded")
		}
	}
	_, _, err := p.Send("t", []byte("k"), []byte("v"))
	if !errors.Is(err, resil.ErrBreakerOpen) {
		t.Fatalf("open breaker did not shed: %v", err)
	}
	if got := reg.Counter("streamsvc_breaker_trips_total").Value(); got == 0 {
		t.Fatal("no breaker trip recorded")
	}
	if got := reg.Counter("streamsvc_breaker_sheds_total").Value(); got == 0 {
		t.Fatal("no shed recorded")
	}
	ebs := s.BreakerStates()
	if len(ebs) != 1 || ebs[0].Endpoint != "worker/0" || ebs[0].State != resil.Open {
		t.Fatalf("breaker states: %+v", ebs)
	}
	// Heal, let the cooldown pass, and the half-open probe closes it.
	np.Heal("client", "worker/0")
	s.Clock().Advance(20 * time.Millisecond)
	msg, _, err := p.Send("t", []byte("k"), []byte("v"))
	if err != nil {
		t.Fatalf("probe send: %v", err)
	}
	if msg.Offset != 0 {
		t.Fatalf("offset after recovery: %d", msg.Offset)
	}
	if st := s.BreakerStates()[0].State; st != resil.Closed {
		t.Fatalf("breaker did not close after probe: %v", st)
	}
}

// TestProduceDeadline: a request that is already over budget fails
// with ErrDeadlineExceeded before anything is appended.
func TestProduceDeadline(t *testing.T) {
	s, reg := resilService(t, &scriptNet{})
	p := s.Producer("p1")
	rc := resil.NewCtx(s.Clock().Now(), time.Nanosecond)
	rc.Charge(time.Millisecond) // over budget on arrival
	_, _, err := p.SendCtx("t", []byte("k"), []byte("v"), rc)
	if !errors.Is(err, resil.ErrDeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v", err)
	}
	objs, _ := s.Streams("t")
	if end := objs[0].End(); end != 0 {
		t.Fatalf("expired deadline still appended: end=%d", end)
	}
	if got := reg.Counter("streamsvc_deadline_exceeded_total").Value(); got == 0 {
		t.Fatal("deadline counter not bumped")
	}
}

// TestPollCtxDeadline: an expired consumer deadline surfaces
// ErrDeadlineExceeded; a fresh poll then drains normally.
func TestPollCtxDeadline(t *testing.T) {
	s, _ := resilService(t, &scriptNet{})
	p := s.Producer("p1")
	for i := 0; i < 3; i++ {
		if _, _, err := p.Send("t", []byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Consumer("g")
	if err := c.Subscribe("t"); err != nil {
		t.Fatal(err)
	}
	rc := resil.NewCtx(s.Clock().Now(), time.Nanosecond)
	rc.Charge(time.Millisecond) // request already over budget on arrival
	msgs, _, err := c.PollCtx(10, rc)
	if !errors.Is(err, resil.ErrDeadlineExceeded) {
		t.Fatalf("want deadline exceeded, got %v (msgs=%d)", err, len(msgs))
	}
	msgs, _, err = c.Poll(10)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("fresh poll: %d msgs, %v", len(msgs), err)
	}
}
