package streamsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"streamlake/internal/resil"
	"streamlake/internal/streamobj"
)

// Consumer subscribes to topics and polls for published messages
// (Figure 7's consumer loop). Consumers belong to a group whose read
// offsets are tracked in the dispatcher's KV store, so a restarted
// consumer resumes where the group left off.
type Consumer struct {
	svc   *Service
	group string

	mu   sync.Mutex
	subs map[string]*subscription
}

type subscription struct {
	topic   string
	offsets []int64
	rr      int // round-robin cursor over the topic's streams
}

// Consumer returns a consumer handle in the given group.
func (s *Service) Consumer(group string) *Consumer {
	return &Consumer{svc: s, group: group, subs: make(map[string]*subscription)}
}

func offsetKey(group, topic string, idx int) []byte {
	return []byte(fmt.Sprintf("offsets/%s/%s/%d", group, topic, idx))
}

// Subscribe registers interest in a topic, resuming from the group's
// committed offsets.
func (c *Consumer) Subscribe(topic string) error {
	c.svc.mu.Lock()
	ts, ok := c.svc.topics[topic]
	c.svc.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	sub := &subscription{topic: topic, offsets: make([]int64, len(ts.streams))}
	for i := range sub.offsets {
		if blob, _, ok := c.svc.meta.Get(offsetKey(c.group, topic, i)); ok {
			if v, n := binary.Varint(blob); n > 0 {
				sub.offsets[i] = v
			}
		}
	}
	c.mu.Lock()
	c.subs[topic] = sub
	c.mu.Unlock()
	return nil
}

// Poll fetches up to max messages across the consumer's subscriptions,
// returning the modelled read latency. An empty result means the
// consumer is caught up.
//
// Lock ordering: c.mu is taken first, then svc.commitMu (shared), then
// svc.mu — strictly in that order, and svc.mu only for the one-shot
// topic snapshot below, never inside the stream loop. No code path may
// acquire c.mu or commitMu while holding svc.mu, or c.mu while holding
// commitMu; Txn.Commit takes commitMu exclusively without c.mu, which is
// consistent with this order.
func (c *Consumer) Poll(max int) ([]Message, time.Duration, error) {
	return c.PollCtx(max, nil)
}

// PollCtx is Poll under a resilience context: slice-load and cache
// costs are charged against rc's virtual-time deadline as the scan
// proceeds. When the deadline expires mid-poll the messages fetched so
// far are returned (offsets advanced past them) alongside
// resil.ErrDeadlineExceeded, so a caller can consume the partial batch
// and poll again. A nil rc is Poll.
func (c *Consumer) PollCtx(max int, rc *resil.Ctx) ([]Message, time.Duration, error) {
	if max <= 0 {
		max = 256
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.subs) == 0 {
		return nil, 0, ErrNotSubscribed
	}
	var out []Message
	var cost time.Duration
	// The commit latch: transactions become visible atomically.
	c.svc.commitMu.RLock()
	defer c.svc.commitMu.RUnlock()
	// Snapshot the topic states in one svc.mu acquisition, hoisted out of
	// the per-subscription loop.
	c.svc.mu.Lock()
	states := make(map[string]*topicState, len(c.subs))
	for topic := range c.subs {
		if ts, ok := c.svc.topics[topic]; ok {
			states[topic] = ts
		}
	}
	m := c.svc.metrics
	reg := c.svc.reg
	c.svc.mu.Unlock()
	for _, sub := range c.subs {
		ts, ok := states[sub.topic]
		if !ok {
			continue
		}
		for tries := 0; tries < len(ts.streams) && len(out) < max; tries++ {
			idx := sub.rr % len(ts.streams)
			sub.rr++
			obj := ts.streams[idx]
			recs, rcost, err := obj.Read(sub.offsets[idx], streamobj.ReadCtrl{MaxRecords: max - len(out), Ctx: rc})
			if err == streamobj.ErrPastEnd {
				continue
			}
			cost += rcost
			for _, r := range recs {
				out = append(out, Message{
					Topic: sub.topic, Stream: idx, Key: r.Key, Value: r.Value,
					Offset: r.Offset, Timestamp: r.Timestamp,
				})
			}
			if len(recs) > 0 {
				sub.offsets[idx] = recs[len(recs)-1].Offset + 1
			}
			if err != nil {
				// A deadline expiry keeps the partial batch: the records
				// already read are delivered and the offsets above have
				// advanced past them, so nothing is re-fetched or lost.
				if errors.Is(err, resil.ErrDeadlineExceeded) {
					m.deadlines.Inc()
				}
				m.consumedMsgs.Add(int64(len(out)))
				return out, cost, err
			}
		}
		if reg != nil {
			// Consumer lag after this poll: messages still ahead of the
			// group's position across the topic's streams.
			var lag int64
			for i, obj := range ts.streams {
				lag += obj.End() - sub.offsets[i]
			}
			reg.Gauge(`streamsvc_consumer_lag{group="` + c.group + `",topic="` + sub.topic + `"}`).Set(float64(lag))
		}
	}
	m.consumedMsgs.Add(int64(len(out)))
	m.pollLat.Observe(cost)
	return out, cost, nil
}

// CommitOffsets persists the group's current read positions to the
// dispatcher KV store.
func (c *Consumer) CommitOffsets() (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cost time.Duration
	for _, sub := range c.subs {
		for i, off := range sub.offsets {
			cst, err := c.svc.meta.Put(offsetKey(c.group, sub.topic, i), binary.AppendVarint(nil, off))
			if err != nil {
				return cost, err
			}
			cost += cst
		}
	}
	return cost, nil
}

// Seek repositions the consumer on one stream of a topic.
func (c *Consumer) Seek(topic string, stream int, offset int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub, ok := c.subs[topic]
	if !ok {
		return ErrNotSubscribed
	}
	if stream < 0 || stream >= len(sub.offsets) {
		return fmt.Errorf("streamsvc: topic %s has no stream %d", topic, stream)
	}
	sub.offsets[stream] = offset
	return nil
}

// Lag reports how many messages the consumer is behind across a topic's
// streams.
func (c *Consumer) Lag(topic string) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sub, ok := c.subs[topic]
	if !ok {
		return 0, ErrNotSubscribed
	}
	c.svc.mu.Lock()
	ts, tok := c.svc.topics[topic]
	c.svc.mu.Unlock()
	if !tok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	var lag int64
	for i, obj := range ts.streams {
		lag += obj.End() - sub.offsets[i]
	}
	return lag, nil
}
