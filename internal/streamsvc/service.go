package streamsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/bus"
	"streamlake/internal/kv"
	"streamlake/internal/obs"
	"streamlake/internal/resil"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/tenant"
)

// Errors returned by the streaming service.
var (
	ErrUnknownTopic  = errors.New("streamsvc: unknown topic")
	ErrTopicExists   = errors.New("streamsvc: topic already exists")
	ErrNotSubscribed = errors.New("streamsvc: consumer not subscribed to topic")
	ErrTxnAborted    = errors.New("streamsvc: transaction aborted")
)

// topicState is the dispatcher's view of one topic.
type topicState struct {
	cfg     TopicConfig
	streams []*streamobj.Object
}

// Worker is one stream worker: it owns the stream object clients for the
// streams assigned to it and talks to storage over the data bus via
// RDMA.
type Worker struct {
	id  int
	bus *bus.Bus

	mu       sync.Mutex
	streams  map[string]bool // "topic/idx" keys currently assigned
	appended int64
	down     bool // cluster verdict: the worker's node is dead or draining
}

// Down reports whether the worker is marked down by the cluster plane.
func (w *Worker) Down() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.down
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

// StreamCount reports how many streams the worker currently serves.
func (w *Worker) StreamCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.streams)
}

// Appended reports the messages appended through this worker. The
// counter is written under w.mu on the produce path; reading it here
// under the same lock is the only torn-read-free way to observe it.
func (w *Worker) Appended() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Service is the streaming service: dispatcher plus worker fleet.
type Service struct {
	clock *sim.Clock
	store *streamobj.Store
	meta  *kv.DB // the dispatcher's fault-tolerant key-value store

	mu       sync.Mutex
	topics   map[string]*topicState
	workers  []*Worker
	topology int64 // topology version, bumped on every change
	txnSeq   int64

	// displaced remembers the home worker of every stream moved off a
	// down worker, so SetWorkerDown's revival leg returns exactly those
	// streams and touches nothing else.
	displaced map[string]int

	// commitMu is the transaction visibility latch: Txn.Commit holds it
	// exclusively while appending so Poll (shared) observes either all
	// of a transaction's messages or none.
	commitMu sync.RWMutex

	// reg is retained so workers created after wiring (SetWorkerCount)
	// register their buses too; metrics holds the service's instruments.
	reg     *obs.Registry
	metrics svcMetrics

	// Resilience state (see resil.go): the network fault hook worker
	// buses consult, the retry/ack/breaker config, and the per-endpoint
	// circuit breakers (keyed by endpoint name so they survive rescales).
	netHook  bus.NetHook
	resilCfg ResilienceConfig
	resilOn  bool
	breakers map[string]*resil.Breaker

	// gate, when set, must commit every durable append to the cluster's
	// replicated metadata log before the producer acks (see
	// Producer.sendOne). Swapped atomically so the produce hot path
	// reads it without s.mu.
	gate atomic.Pointer[CommitGate]

	// tenants is the optional multi-tenancy plane (nil = legacy path);
	// qosWire attaches the per-worker bus scheduler so rescaled fleets
	// (SetWorkerCount) inherit it.
	tenants *tenant.Registry
	qosWire func(*Worker)
}

// SetTenants attaches the tenant registry and gives every worker bus a
// weighted-fair scheduler over its link bandwidth. Workers created by
// later rescales inherit the wiring. Call at wiring time.
func (s *Service) SetTenants(reg *tenant.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenants = reg
	s.qosWire = func(w *Worker) {
		w.bus.SetQoS(tenant.NewSched(s.clock, reg, w.bus.Link().Spec().WriteBandwidth))
	}
	for _, w := range s.workers {
		s.qosWire(w)
	}
}

// SetContention attaches the unisolated shared-queue contention model
// to every worker bus — the control baseline for the noisy-neighbor
// experiment: all tenants share one backlog per priority class, so a
// heavy sender's queue delays everyone behind it.
func (s *Service) SetContention() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.qosWire = func(w *Worker) {
		w.bus.SetQoS(tenant.NewSched(s.clock, nil, w.bus.Link().Spec().WriteBandwidth))
	}
	for _, w := range s.workers {
		s.qosWire(w)
	}
}

// Tenants returns the attached tenant registry (nil on the legacy
// single-tenant path).
func (s *Service) Tenants() *tenant.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants
}

// CommitGate is the cluster's produce-commit hook: called after a batch
// is durably appended and before the client is acknowledged. An error
// means the metadata quorum is unavailable — the producer must not ack
// and retries instead (the stream object's dedup window absorbs the
// re-append).
type CommitGate interface {
	CommitProduce(topic string, stream int, base int64, count int) (time.Duration, error)
}

// SetCommitGate installs (or clears, with nil) the produce commit gate.
func (s *Service) SetCommitGate(g CommitGate) {
	if g == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&g)
}

func (s *Service) commitGate() CommitGate {
	if gp := s.gate.Load(); gp != nil {
		return *gp
	}
	return nil
}

// svcMetrics is the streaming service's obs instrument set; wired once
// by SetObs, nil-safe no-ops until then.
type svcMetrics struct {
	producedMsgs  *obs.Counter
	producedBytes *obs.Counter
	consumedMsgs  *obs.Counter
	produceLat    *obs.Histogram
	pollLat       *obs.Histogram
	retries       *obs.Counter
	sheds         *obs.Counter
	trips         *obs.Counter
	deadlines     *obs.Counter
	ackDrops      *obs.Counter
}

// SetObs registers the service's telemetry — produce/consume throughput
// counters, latency histograms, topology gauges — and wires the worker
// buses (current and future: rescaled fleets inherit the registry, and
// because bus instruments are shared by path label, totals survive the
// rescale). Call at wiring time.
func (s *Service) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	s.reg = reg
	s.metrics = svcMetrics{
		producedMsgs:  reg.Counter("streamsvc_produced_messages_total"),
		producedBytes: reg.Counter("streamsvc_produced_bytes_total"),
		consumedMsgs:  reg.Counter("streamsvc_consumed_messages_total"),
		produceLat:    reg.Histogram("streamsvc_produce_seconds"),
		pollLat:       reg.Histogram("streamsvc_poll_seconds"),
		retries:       reg.Counter("streamsvc_retries_total"),
		sheds:         reg.Counter("streamsvc_breaker_sheds_total"),
		trips:         reg.Counter("streamsvc_breaker_trips_total"),
		deadlines:     reg.Counter("streamsvc_deadline_exceeded_total"),
		ackDrops:      reg.Counter("streamsvc_ack_drops_total"),
	}
	workers := append([]*Worker(nil), s.workers...)
	s.mu.Unlock()
	for _, w := range workers {
		w.bus.SetObs(reg)
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("streamsvc_topics", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.topics))
	})
	reg.GaugeFunc("streamsvc_workers", func() float64 { return float64(s.WorkerCount()) })
}

// New builds a streaming service with workerCount stream workers over
// the given stream object store.
func New(clock *sim.Clock, store *streamobj.Store, workerCount int) *Service {
	if workerCount <= 0 {
		workerCount = 1
	}
	s := &Service{
		clock:     clock,
		store:     store,
		meta:      kv.Open(kv.Options{Device: sim.NewDeviceOf("dispatcher-kv", sim.SCM)}),
		topics:    make(map[string]*topicState),
		displaced: make(map[string]int),
	}
	for i := 0; i < workerCount; i++ {
		s.workers = append(s.workers, newWorker(i))
	}
	return s
}

func newWorker(id int) *Worker {
	return &Worker{id: id, bus: bus.New(bus.Config{Path: bus.RDMA, Aggregation: true}), streams: map[string]bool{}}
}

// Clock exposes the virtual clock the service charges costs against.
func (s *Service) Clock() *sim.Clock { return s.clock }

// Store exposes the underlying stream object store.
func (s *Service) Store() *streamobj.Store { return s.store }

// CreateTopic declares a topic: StreamNum stream objects are created and
// the streams are added to the stream workers in a round-robin manner.
func (s *Service) CreateTopic(cfg TopicConfig) error {
	cfg.applyDefaults()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.topics[cfg.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTopicExists, cfg.Name)
	}
	ts := &topicState{cfg: cfg}
	for i := 0; i < cfg.StreamNum; i++ {
		o, err := s.store.Create(streamobj.CreateOptions{
			Topic:       cfg.Name,
			Redundancy:  cfg.Redundancy,
			QuotaPerSec: cfg.QuotaPerSec,
			SCMCache:    cfg.SCMCache,
		})
		if err != nil {
			return err
		}
		ts.streams = append(ts.streams, o)
	}
	s.topics[cfg.Name] = ts
	s.assignStreamsLocked(cfg.Name, cfg.StreamNum)
	s.topology++
	s.recordTopologyLocked()
	return nil
}

// assignStreamsLocked distributes a topic's streams round-robin over the
// workers, recording each assignment in the dispatcher KV store.
func (s *Service) assignStreamsLocked(topic string, n int) {
	for i := 0; i < n; i++ {
		w := s.workers[i%len(s.workers)]
		w.mu.Lock()
		w.streams[streamKey(topic, i)] = true
		w.mu.Unlock()
		s.meta.Put([]byte("assign/"+streamKey(topic, i)), []byte(fmt.Sprintf("%d", w.id)))
	}
}

func streamKey(topic string, idx int) string { return fmt.Sprintf("%s/%d", topic, idx) }

func (s *Service) recordTopologyLocked() {
	s.meta.Put([]byte("topology/version"), binary.AppendVarint(nil, s.topology))
	s.meta.Put([]byte("topology/workers"), binary.AppendVarint(nil, int64(len(s.workers))))
}

// DeleteTopic removes a topic and destroys its stream objects.
func (s *Service) DeleteTopic(name string) error {
	s.mu.Lock()
	ts, ok := s.topics[name]
	if ok {
		delete(s.topics, name)
	}
	for _, w := range s.workers {
		w.mu.Lock()
		for k := range w.streams {
			if len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '/' {
				delete(w.streams, k)
			}
		}
		w.mu.Unlock()
	}
	for k := range s.displaced {
		if len(k) > len(name) && k[:len(name)] == name && k[len(name)] == '/' {
			delete(s.displaced, k)
		}
	}
	s.topology++
	s.recordTopologyLocked()
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	for _, o := range ts.streams {
		if err := s.store.Destroy(o.ID()); err != nil {
			return err
		}
	}
	return nil
}

// Topic returns a topic's configuration.
func (s *Service) Topic(name string) (TopicConfig, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.topics[name]
	if !ok {
		return TopicConfig{}, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	return ts.cfg, nil
}

// Topics lists declared topic names.
func (s *Service) Topics() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.topics))
	for name := range s.topics {
		out = append(out, name)
	}
	return out
}

// Streams returns a topic's stream objects (read-only use: conversion,
// archiving, metrics).
func (s *Service) Streams(topic string) ([]*streamobj.Object, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.topics[topic]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTopic, topic)
	}
	return append([]*streamobj.Object(nil), ts.streams...), nil
}

// WorkerCount reports the current worker fleet size.
func (s *Service) WorkerCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.workers)
}

// Workers returns the current worker fleet (read-only use: stats,
// rebalancing displays).
func (s *Service) Workers() []*Worker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Worker(nil), s.workers...)
}

// SetWorkerCount rescales the worker fleet. Because storage is
// disaggregated, only the stream→worker mapping changes: the method
// returns how many stream assignments moved and the modelled remap time
// (a metadata update per moved stream), with zero data migration —
// the elasticity of Figure 14(c).
func (s *Service) SetWorkerCount(n int) (moved int, cost time.Duration) {
	if n <= 0 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Collect all stream keys in deterministic topic order.
	old := make(map[string]int) // stream key -> worker id
	for _, w := range s.workers {
		w.mu.Lock()
		for k := range w.streams {
			old[k] = w.id
		}
		w.mu.Unlock()
	}
	workers := make([]*Worker, n)
	for i := 0; i < n; i++ {
		workers[i] = newWorker(i)
		workers[i].bus.SetObs(s.reg)
		if s.netHook != nil {
			workers[i].bus.SetNet(s.netHook, workerEndpoint(i))
		}
		if s.qosWire != nil {
			s.qosWire(workers[i])
		}
	}
	// The fleet is rebuilt from scratch (fresh down flags, hash-based
	// baseline): displaced-stream bookkeeping restarts with it.
	s.displaced = make(map[string]int)
	for name, ts := range s.topics {
		for i := range ts.streams {
			k := streamKey(name, i)
			target := int(hashString(k) % uint64(n))
			workers[target].streams[k] = true
			if old[k] != target {
				moved++
				// Metadata-only move: one dispatcher KV update.
				c, _ := s.meta.Put([]byte("assign/"+k), []byte(fmt.Sprintf("%d", target)))
				cost += c
			}
		}
	}
	s.workers = workers
	s.topology++
	s.recordTopologyLocked()
	return moved, cost
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// FailWorker simulates a stream worker crash: the dispatcher detects it
// through the health exchange (Section V-A) and reassigns the dead
// worker's streams across the survivors — a metadata-only failover,
// since the stream objects live in disaggregated storage. It returns
// how many streams were reassigned.
func (s *Service) FailWorker(id int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.workers) {
		return 0, fmt.Errorf("streamsvc: no worker %d", id)
	}
	if len(s.workers) < 2 {
		return 0, errors.New("streamsvc: cannot fail the last worker")
	}
	dead := s.workers[id]
	s.workers = append(s.workers[:id:id], s.workers[id+1:]...)
	// The crashed worker never comes back (unlike SetWorkerDown): streams
	// displaced off it have no home to return to.
	for k, home := range s.displaced {
		if home == dead.id {
			delete(s.displaced, k)
		}
	}
	dead.mu.Lock()
	orphans := make([]string, 0, len(dead.streams))
	for k := range dead.streams {
		orphans = append(orphans, k)
	}
	dead.streams = map[string]bool{}
	dead.mu.Unlock()
	for i, k := range orphans {
		w := s.workers[i%len(s.workers)]
		w.mu.Lock()
		w.streams[k] = true
		w.mu.Unlock()
		s.meta.Put([]byte("assign/"+k), []byte(fmt.Sprintf("%d", w.id)))
	}
	s.topology++
	s.recordTopologyLocked()
	return len(orphans), nil
}

// SetWorkerDown flips one worker's cluster-liveness verdict — the
// metadata-only failover the dispatcher runs when the cluster commits a
// node dead (down=true) or back alive (down=false). Unlike FailWorker
// the worker object survives, so a revived node's worker resumes with
// its breaker history and bus wiring intact. Reassignment is minimal:
// marking a worker down moves only ITS streams, spread over the up
// workers by rendezvous hashing, and marking it back up returns exactly
// the streams displaced off it — streams on unaffected workers never
// churn. It returns how many stream assignments moved and the modelled
// remap cost.
func (s *Service) SetWorkerDown(id int, down bool) (moved int, cost time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || id >= len(s.workers) {
		return 0, 0
	}
	w := s.workers[id]
	w.mu.Lock()
	changed := w.down != down
	w.down = down
	w.mu.Unlock()
	if !changed {
		return 0, 0
	}
	if down {
		// Up-worker set in ID order; with every worker down, ownership is
		// left untouched (no ack can succeed anyway — links are dead).
		up := make([]*Worker, 0, len(s.workers))
		for _, cand := range s.workers {
			cand.mu.Lock()
			ok := !cand.down
			cand.mu.Unlock()
			if ok {
				up = append(up, cand)
			}
		}
		if len(up) == 0 {
			return 0, 0
		}
		w.mu.Lock()
		keys := make([]string, 0, len(w.streams))
		for k := range w.streams {
			keys = append(keys, k)
		}
		w.streams = map[string]bool{}
		w.mu.Unlock()
		sort.Strings(keys)
		for _, k := range keys {
			target := rendezvousPick(k, up)
			target.mu.Lock()
			target.streams[k] = true
			target.mu.Unlock()
			// A stream hopping across a second down event keeps its
			// original home, so it returns there on that node's revival.
			if _, ok := s.displaced[k]; !ok {
				s.displaced[k] = id
			}
			moved++
			c, _ := s.meta.Put([]byte("assign/"+k), []byte(fmt.Sprintf("%d", target.id)))
			cost += c
		}
	} else {
		keys := make([]string, 0, len(s.displaced))
		for k, home := range s.displaced {
			if home == id {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			delete(s.displaced, k)
			for _, cand := range s.workers {
				if cand == w {
					continue
				}
				cand.mu.Lock()
				delete(cand.streams, k)
				cand.mu.Unlock()
			}
			w.mu.Lock()
			w.streams[k] = true
			w.mu.Unlock()
			moved++
			c, _ := s.meta.Put([]byte("assign/"+k), []byte(fmt.Sprintf("%d", id)))
			cost += c
		}
	}
	s.topology++
	s.recordTopologyLocked()
	return moved, cost
}

// rendezvousPick chooses a stream's owner among the up workers by
// highest-random-weight (rendezvous) hashing: each (stream, worker) pair
// scores independently, so removing a worker from the up set moves only
// that worker's streams — never a reshuffle among the survivors.
func rendezvousPick(key string, up []*Worker) *Worker {
	best := up[0]
	bestScore := hashString(key + "\x00" + strconv.Itoa(best.id))
	for _, w := range up[1:] {
		if score := hashString(key + "\x00" + strconv.Itoa(w.id)); score > bestScore {
			best, bestScore = w, score
		}
	}
	return best
}

// TopologyVersion returns the dispatcher's topology version.
func (s *Service) TopologyVersion() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.topology
}

// ownerOf returns the worker serving a stream, skipping workers the
// cluster has marked down; with no up owner it falls back to the first
// up worker, then to worker 0 (whose dead links will fail the send —
// the correct outcome when the whole fleet is down).
func (s *Service) ownerOf(topic string, idx int) *Worker {
	key := streamKey(topic, idx)
	var firstUp *Worker
	for _, w := range s.workers {
		w.mu.Lock()
		ok := w.streams[key] && !w.down
		if firstUp == nil && !w.down {
			firstUp = w
		}
		w.mu.Unlock()
		if ok {
			return w
		}
	}
	if firstUp != nil {
		return firstUp
	}
	return s.workers[0]
}

// routeLocked picks the stream index for a key (hash routing, matching
// the stream object's topic/key assignment of Figure 4).
func routeKey(key []byte, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(n))
}
