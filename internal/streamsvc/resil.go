package streamsvc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"streamlake/internal/bus"
	"streamlake/internal/resil"
)

// ErrRetriesExhausted reports that a produce burned every attempt its
// retry policy allowed and still could not reach the worker. Like the
// resil errors, it means the service (not the request) is unhealthy, so
// the gateway maps it to 503.
var ErrRetriesExhausted = errors.New("retries exhausted")

// ResilienceConfig turns on the produce path's end-to-end resilience
// machinery: seeded jittered retries over the fallible network links,
// modelled acknowledgement transfers on the reverse link, and a circuit
// breaker per stream-worker endpoint. Until SetResilience is called the
// service uses the legacy infallible cost-model path.
type ResilienceConfig struct {
	// Retry is the backoff schedule for dropped transfers and lost acks
	// (zero fields take resil.DefaultRetryPolicy).
	Retry resil.RetryPolicy
	// Breaker tunes the per-endpoint circuit breakers (zero fields take
	// the resil defaults).
	Breaker resil.BreakerConfig
	// Seed drives the per-producer backoff jitter RNGs; the same seed
	// replays the same backoff schedule.
	Seed int64
	// AckBytes is the modelled size of a produce acknowledgement on the
	// reverse link (default 64).
	AckBytes int64
}

func (c ResilienceConfig) withDefaults() ResilienceConfig {
	if c.AckBytes <= 0 {
		c.AckBytes = 64
	}
	return c
}

// workerEndpoint names a stream worker on the network fault plane; the
// client side of every produce link is "client".
func workerEndpoint(id int) string { return fmt.Sprintf("worker/%d", id) }

// SetNet installs the network fault hook on every worker bus, present
// and future: workers created by later rescales inherit it. Each worker
// sends as endpoint "worker/<id>", so directed partitions and per-link
// drop rates can target individual workers.
func (s *Service) SetNet(h bus.NetHook) {
	s.mu.Lock()
	s.netHook = h
	workers := append([]*Worker(nil), s.workers...)
	s.mu.Unlock()
	for _, w := range workers {
		w.bus.SetNet(h, workerEndpoint(w.id))
	}
}

// SetResilience enables retries, modelled acks, and per-endpoint
// circuit breakers on the produce path (defaults applied; see
// ResilienceConfig). Existing breaker state is reset.
func (s *Service) SetResilience(cfg ResilienceConfig) {
	s.mu.Lock()
	s.resilCfg = cfg.withDefaults()
	s.resilOn = true
	s.breakers = make(map[string]*resil.Breaker)
	s.mu.Unlock()
}

// resilience snapshots the resilience config and whether it is enabled.
func (s *Service) resilience() (ResilienceConfig, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resilCfg, s.resilOn
}

// breakerFor returns the circuit breaker guarding an endpoint, creating
// it on first use. Breakers are keyed by endpoint name, not by worker
// object, so they survive fleet rescales: a rebuilt "worker/0" inherits
// the old one's open/closed state, which is what a client-side breaker
// observing a named endpoint would do.
func (s *Service) breakerFor(ep string) *resil.Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.resilOn {
		return nil
	}
	b := s.breakers[ep]
	if b == nil {
		b = resil.NewBreaker(s.resilCfg.Breaker)
		s.breakers[ep] = b
	}
	return b
}

// BreakerStates snapshots each tracked endpoint's breaker position for
// status displays, sorted by endpoint name.
func (s *Service) BreakerStates() []EndpointBreaker {
	s.mu.Lock()
	eps := make([]string, 0, len(s.breakers))
	for ep := range s.breakers {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	out := make([]EndpointBreaker, 0, len(eps))
	for _, ep := range eps {
		b := s.breakers[ep]
		out = append(out, EndpointBreaker{Endpoint: ep, State: b.State(), Stats: b.Stats()})
	}
	s.mu.Unlock()
	return out
}

// EndpointBreaker is one endpoint's breaker snapshot.
type EndpointBreaker struct {
	Endpoint string
	State    resil.BreakerState
	Stats    resil.BreakerStats
}

// RetryAfter returns the longest cooldown any open breaker still has to
// serve at virtual time now — the gateway's Retry-After hint. Zero when
// no breaker is open.
func (s *Service) RetryAfter(now time.Duration) time.Duration {
	s.mu.Lock()
	breakers := make([]*resil.Breaker, 0, len(s.breakers))
	for _, b := range s.breakers {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	var max time.Duration
	for _, b := range breakers {
		if r := b.RetryAfter(now); r > max {
			max = r
		}
	}
	return max
}

// ResilienceStats aggregates breaker activity across endpoints.
func (s *Service) ResilienceStats() resil.BreakerStats {
	var total resil.BreakerStats
	for _, eb := range s.BreakerStates() {
		total.Trips += eb.Stats.Trips
		total.Sheds += eb.Stats.Sheds
		total.Probes += eb.Stats.Probes
	}
	return total
}
