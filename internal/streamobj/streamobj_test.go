package streamobj

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newStore(t testing.TB) (*Store, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("sobj", clock, sim.NVMeSSD, 6, 4<<20)
	return NewStore(clock, plog.NewManager(p, 1<<20)), clock
}

func rec(k, v string) Record { return Record{Key: []byte(k), Value: []byte(v)} }

func TestCreateDestroy(t *testing.T) {
	s, _ := newStore(t)
	o, err := s.Create(CreateOptions{Topic: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(o.ID()) != o || s.Count() != 1 {
		t.Fatal("store lost object")
	}
	if o.Topic() != "t1" {
		t.Fatalf("topic: %q", o.Topic())
	}
	if err := s.Destroy(o.ID()); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Fatal("destroy left object")
	}
	if err := s.Destroy(o.ID()); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("double destroy: %v", err)
	}
}

func TestAppendAssignsContiguousOffsets(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	off1, _, err := o.Append([]Record{rec("k1", "v1"), rec("k2", "v2")}, "p1", 1)
	if err != nil || off1 != 0 {
		t.Fatalf("append1: %d %v", off1, err)
	}
	off2, _, err := o.Append([]Record{rec("k3", "v3")}, "p1", 2)
	if err != nil || off2 != 2 {
		t.Fatalf("append2: %d %v", off2, err)
	}
	if o.End() != 3 {
		t.Fatalf("end: %d", o.End())
	}
}

func TestReadFromOpenBuffer(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	o.Append([]Record{rec("a", "1"), rec("b", "2"), rec("c", "3")}, "p", 1)
	recs, _, err := o.Read(1, ReadCtrl{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Key) != "b" || recs[0].Offset != 1 {
		t.Fatalf("read: %+v", recs)
	}
}

func TestReadAcrossPersistedSlices(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	// Write 600 records: slices at 0..255, 256..511, open buf 512..599.
	for i := 0; i < 600; i++ {
		if _, _, err := o.Append([]Record{rec(fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i))}, "p", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := o.Stats()
	if st.Slices != 2 || st.OpenBuf != 600-512 {
		t.Fatalf("stats: %+v", st)
	}
	// Read spanning sealed slice -> open buffer.
	recs, cost, err := o.Read(250, ReadCtrl{MaxRecords: 20})
	if err != nil || cost <= 0 {
		t.Fatalf("read: %v cost=%v", err, cost)
	}
	if len(recs) != 20 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.Offset != int64(250+i) || string(r.Value) != fmt.Sprintf("v%04d", 250+i) {
			t.Fatalf("record %d: off=%d val=%q", i, r.Offset, r.Value)
		}
	}
	// Read everything from zero in pages.
	var total int
	off := int64(0)
	for off < o.End() {
		recs, _, err := o.Read(off, ReadCtrl{MaxRecords: 256})
		if err != nil || len(recs) == 0 {
			t.Fatalf("page read at %d: %v (%d recs)", off, err, len(recs))
		}
		total += len(recs)
		off = recs[len(recs)-1].Offset + 1
	}
	if total != 600 {
		t.Fatalf("paged through %d records", total)
	}
}

func TestReadLimits(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	for i := 0; i < 10; i++ {
		o.Append([]Record{rec("key", "0123456789")}, "p", int64(i+1))
	}
	recs, _, _ := o.Read(0, ReadCtrl{MaxRecords: 3})
	if len(recs) != 3 {
		t.Fatalf("MaxRecords: got %d", len(recs))
	}
	one := recs[0].encodedSize()
	recs, _, _ = o.Read(0, ReadCtrl{MaxRecords: 10, MaxBytes: one*2 + 1})
	if len(recs) != 2 {
		t.Fatalf("MaxBytes: got %d", len(recs))
	}
}

func TestReadPastEndAndCaughtUp(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	o.Append([]Record{rec("a", "1")}, "p", 1)
	if _, _, err := o.Read(5, ReadCtrl{}); !errors.Is(err, ErrPastEnd) {
		t.Fatalf("past end: %v", err)
	}
	recs, _, err := o.Read(1, ReadCtrl{}) // exactly at end: caught up
	if err != nil || recs != nil {
		t.Fatalf("caught up: %v %v", recs, err)
	}
	if _, _, err := o.Read(-1, ReadCtrl{}); !errors.Is(err, ErrPastEnd) {
		t.Fatalf("negative offset: %v", err)
	}
}

func TestIdempotentProducer(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	batch := []Record{rec("k", "v")}
	o.Append(batch, "producer-1", 7)
	// Network failure: the producer retries the same sequence.
	o.Append(batch, "producer-1", 7)
	o.Append(batch, "producer-1", 7)
	if o.End() != 1 {
		t.Fatalf("duplicates appended: end=%d", o.End())
	}
	// A different producer with the same seq is independent.
	o.Append(batch, "producer-2", 7)
	if o.End() != 2 {
		t.Fatalf("independent producer blocked: end=%d", o.End())
	}
	// Higher seq goes through.
	o.Append(batch, "producer-1", 8)
	if o.End() != 3 {
		t.Fatalf("next seq blocked: end=%d", o.End())
	}
}

func TestStrictOrdering(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	for i := 0; i < 1000; i++ {
		o.Append([]Record{rec(fmt.Sprintf("k%d", i), fmt.Sprintf("%d", i))}, "p", int64(i+1))
	}
	var prev int64 = -1
	off := int64(0)
	for off < o.End() {
		recs, _, err := o.Read(off, ReadCtrl{MaxRecords: 100})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.Offset != prev+1 {
				t.Fatalf("ordering broken at %d -> %d", prev, r.Offset)
			}
			prev = r.Offset
		}
		off = prev + 1
	}
}

func TestQuotaThrottling(t *testing.T) {
	s, clock := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t", QuotaPerSec: 100})
	clock.Advance(time.Second) // fill the bucket
	for i := 0; i < 100; i++ {
		if _, _, err := o.Append([]Record{rec("k", "v")}, "p", int64(i+1)); err != nil {
			t.Fatalf("append %d within quota: %v", i, err)
		}
	}
	if _, _, err := o.Append([]Record{rec("k", "v")}, "p", 200); !errors.Is(err, ErrThrottled) {
		t.Fatalf("over quota: %v", err)
	}
	// Virtual time passes; tokens refill.
	clock.Advance(500 * time.Millisecond)
	for i := 0; i < 50; i++ {
		if _, _, err := o.Append([]Record{rec("k", "v")}, "p", int64(300+i)); err != nil {
			t.Fatalf("append after refill: %v", err)
		}
	}
	if _, _, err := o.Append([]Record{rec("k", "v")}, "p", 400); !errors.Is(err, ErrThrottled) {
		t.Fatal("bucket should be empty again")
	}
}

func TestSCMCacheLatency(t *testing.T) {
	s, _ := newStore(t)
	cached, _ := s.Create(CreateOptions{Topic: "cached", SCMCache: true})
	plain, _ := s.Create(CreateOptions{Topic: "plain"})
	var cachedCost, plainCost time.Duration
	for i := 0; i < 512; i++ {
		batch := []Record{rec(fmt.Sprintf("k%d", i), "0123456789abcdef")}
		_, c1, err := cached.Append(batch, "p", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		cachedCost += c1
		_, c2, err := plain.Append(batch, "p", int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		plainCost += c2
	}
	// SCM ack path must be cheaper than the SSD persistence path — the
	// Figure 14(a) effect.
	if cachedCost >= plainCost {
		t.Fatalf("SCM cache did not reduce ack latency: scm=%v ssd=%v", cachedCost, plainCost)
	}
	// Reads of recent slices hit the cache and cost SCM, not SSD time.
	recsC, costC, err := cached.Read(0, ReadCtrl{MaxRecords: 256})
	if err != nil || len(recsC) != 256 {
		t.Fatalf("cached read: %v", err)
	}
	recsP, costP, err := plain.Read(0, ReadCtrl{MaxRecords: 256})
	if err != nil || len(recsP) != 256 {
		t.Fatalf("plain read: %v", err)
	}
	if costC >= costP {
		t.Fatalf("cached read %v not faster than plain %v", costC, costP)
	}
}

func TestFlushShortSlice(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	o.Append([]Record{rec("a", "1"), rec("b", "2")}, "p", 1)
	if _, err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Slices != 1 || st.OpenBuf != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	recs, _, err := o.Read(0, ReadCtrl{})
	if err != nil || len(recs) != 2 || string(recs[1].Value) != "2" {
		t.Fatalf("read after flush: %+v %v", recs, err)
	}
	// Appends continue after a short-slice flush with correct offsets.
	o.Append([]Record{rec("c", "3")}, "p", 2)
	recs, _, _ = o.Read(2, ReadCtrl{})
	if len(recs) != 1 || string(recs[0].Key) != "c" || recs[0].Offset != 2 {
		t.Fatalf("append after flush: %+v", recs)
	}
}

func TestDefaultRedundancyIsTripleReplica(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	if o.opts.Redundancy.Kind != plog.Replicate || o.opts.Redundancy.Replicas != 3 {
		t.Fatalf("default redundancy: %+v", o.opts.Redundancy)
	}
}

func TestSliceCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Key: []byte("k1"), Value: []byte("v1"), Timestamp: 5 * time.Millisecond},
		{Key: nil, Value: []byte{}, Timestamp: 0},
		{Key: bytes.Repeat([]byte("x"), 300), Value: bytes.Repeat([]byte("y"), 1000), Timestamp: time.Hour},
	}
	enc := encodeSlice(recs)
	got, err := decodeSlice(enc, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !bytes.Equal(got[i].Key, recs[i].Key) || !bytes.Equal(got[i].Value, recs[i].Value) {
			t.Fatalf("record %d payload mismatch", i)
		}
		if got[i].Offset != 42+int64(i) || got[i].Timestamp != recs[i].Timestamp {
			t.Fatalf("record %d meta: %+v", i, got[i])
		}
	}
	if _, err := decodeSlice(enc[:3], 0); err == nil {
		t.Fatal("truncated slice accepted")
	}
}

func TestQuickWriteReadAnywhere(t *testing.T) {
	// Property: after writing N records, reading any valid offset
	// returns records starting exactly there, in order.
	f := func(nSel, offSel uint16) bool {
		s, _ := newStore(t)
		o, _ := s.Create(CreateOptions{Topic: "q"})
		n := int(nSel%1500) + 1
		for i := 0; i < n; i++ {
			if _, _, err := o.Append([]Record{rec(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))}, "p", int64(i+1)); err != nil {
				return false
			}
		}
		off := int64(offSel) % int64(n)
		recs, _, err := o.Read(off, ReadCtrl{MaxRecords: 10})
		if err != nil || len(recs) == 0 {
			return false
		}
		for i, r := range recs {
			if r.Offset != off+int64(i) || string(r.Value) != fmt.Sprintf("v%d", off+int64(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
