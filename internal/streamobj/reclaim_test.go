package streamobj

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func TestReclaimThroughFreesDrainedLogs(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("rec", clock, sim.NVMeSSD, 6, 4<<20)
	mgr := plog.NewManager(p, 32<<10) // small logs roll quickly
	store := NewStore(clock, mgr)
	o, _ := store.Create(CreateOptions{Topic: "t"})
	for i := 0; i < 3000; i++ {
		o.Append([]Record{{Key: []byte("k"), Value: []byte(fmt.Sprintf("v%06d", i))}}, "p", int64(i+1))
	}
	o.Flush()
	logsBefore := mgr.Count()
	if logsBefore < 2 {
		t.Fatalf("test premise: need multiple logs, have %d", logsBefore)
	}
	// Reclamation happens at PLog granularity: the watermark must cover
	// every slice the chain's first log holds before that log can go.
	o.mu.Lock()
	firstLog := o.slices[0].loc.Log
	var boundary int64
	for _, e := range o.slices {
		if e.loc.Log == firstLog {
			boundary = e.base + int64(e.count)
		}
	}
	o.mu.Unlock()
	// One record short of the boundary: the log still holds live data.
	freed, err := o.ReclaimThrough(boundary - 1)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("freed %d from a log with a live record", freed)
	}
	// At the boundary the first log is fully drained and destroyed.
	freed, err = o.ReclaimThrough(boundary)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("nothing freed")
	}
	if mgr.Count() >= logsBefore {
		t.Fatalf("no logs destroyed: %d -> %d", logsBefore, mgr.Count())
	}
	// Records beyond the reclaim point stay readable.
	recs, _, err := o.Read(boundary, ReadCtrl{MaxRecords: 5})
	if err != nil || len(recs) != 5 || recs[0].Offset != boundary {
		t.Fatalf("post-reclaim read: %d recs %v", len(recs), err)
	}
	// Appends continue with correct offsets.
	off, _, err := o.Append([]Record{{Key: []byte("k"), Value: []byte("new")}}, "p", 9001)
	if err != nil || off != 3000 {
		t.Fatalf("append after reclaim: off=%d %v", off, err)
	}
	// Full reclaim of everything persisted so far.
	o.Flush()
	if _, err := o.ReclaimThrough(o.End()); err != nil {
		t.Fatal(err)
	}
	if got := o.Stats().Slices; got != 0 {
		t.Fatalf("slices left after full reclaim: %d", got)
	}
}

func TestReclaimThroughPartialLogKept(t *testing.T) {
	clock := sim.NewClock()
	p := pool.New("rec2", clock, sim.NVMeSSD, 6, 4<<20)
	mgr := plog.NewManager(p, 1<<20) // one big log holds everything
	store := NewStore(clock, mgr)
	o, _ := store.Create(CreateOptions{Topic: "t"})
	for i := 0; i < 600; i++ {
		o.Append([]Record{{Key: []byte("k"), Value: []byte("v")}}, "p", int64(i+1))
	}
	o.Flush()
	// A watermark in the middle of a slice: the slice (and its log)
	// still holds unconverted records, so nothing may be reclaimed from
	// it.
	freed, err := o.ReclaimThrough(100)
	if err != nil {
		t.Fatal(err)
	}
	if freed != 0 {
		t.Fatalf("freed %d from a slice with live records", freed)
	}
	if _, _, err := o.Read(0, ReadCtrl{MaxRecords: 1}); err != nil {
		t.Fatalf("read below mid-slice watermark should still work: %v", err)
	}
}

func TestSCMCacheEviction(t *testing.T) {
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t", SCMCache: true})
	// Write far more than cacheSlices slices.
	for i := 0; i < (cacheSlices+10)*SliceRecords; i++ {
		o.Append([]Record{{Key: []byte("k"), Value: []byte("v")}}, "p", int64(i+1))
	}
	o.mu.Lock()
	cached := len(o.cache)
	o.mu.Unlock()
	if cached > cacheSlices {
		t.Fatalf("cache grew to %d slices, cap %d", cached, cacheSlices)
	}
	// Evicted slices still readable (from PLogs, at SSD cost).
	recs, _, err := o.Read(0, ReadCtrl{MaxRecords: 3})
	if err != nil || len(recs) != 3 {
		t.Fatalf("read of evicted slice: %v", err)
	}
}

func TestCanAppendPeeksWithoutConsuming(t *testing.T) {
	s, clock := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t", QuotaPerSec: 10})
	clock.Advance(time.Second)
	// Peeking never consumes tokens.
	for i := 0; i < 100; i++ {
		if err := o.CanAppend(10); err != nil {
			t.Fatalf("peek %d: %v", i, err)
		}
	}
	if err := o.CanAppend(11); !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-quota peek: %v", err)
	}
	// Unlimited quota always admits.
	free, _ := s.Create(CreateOptions{Topic: "free"})
	if err := free.CanAppend(1 << 20); err != nil {
		t.Fatal(err)
	}
}

func TestReadCostsReflectTiering(t *testing.T) {
	// A read served from persisted slices charges SSD-class time; the
	// open buffer is free. This is what makes recent data cheap.
	s, _ := newStore(t)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	for i := 0; i < SliceRecords+10; i++ {
		o.Append([]Record{{Key: []byte("k"), Value: []byte("v")}}, "p", int64(i+1))
	}
	_, costPersisted, err := o.Read(0, ReadCtrl{MaxRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, costBuffer, err := o.Read(int64(SliceRecords), ReadCtrl{MaxRecords: 5})
	if err != nil {
		t.Fatal(err)
	}
	if costPersisted <= costBuffer {
		t.Fatalf("persisted read %v not dearer than buffer read %v", costPersisted, costBuffer)
	}
}
