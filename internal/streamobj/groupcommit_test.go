package streamobj

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newStoreWithPool(t testing.TB) (*Store, *pool.Pool, *plog.Manager) {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("sobj-gc", clock, sim.NVMeSSD, 6, 16<<20)
	mgr := plog.NewManager(p, 4<<20)
	return NewStore(clock, mgr), p, mgr
}

func writeOps(p *pool.Pool) int64 {
	var total int64
	for i := 0; i < 6; i++ {
		total += p.DiskStats(pool.DiskID(i)).WriteOps
	}
	return total
}

func fill(t *testing.T, o *Object, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := o.Append([]Record{rec(fmt.Sprintf("k%05d", i), fmt.Sprintf("v%05d", i))}, "p", int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
}

func checkAll(t *testing.T, o *Object, n int) {
	t.Helper()
	var off int64
	for off < int64(n) {
		recs, _, err := o.Read(off, ReadCtrl{MaxRecords: SliceRecords})
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if len(recs) == 0 {
			t.Fatalf("read at %d returned nothing", off)
		}
		for _, r := range recs {
			if r.Offset != off {
				t.Fatalf("offset %d: got record %d", off, r.Offset)
			}
			if want := fmt.Sprintf("v%05d", off); string(r.Value) != want {
				t.Fatalf("offset %d: value %q, want %q", off, r.Value, want)
			}
			off++
		}
	}
}

// Group commit holds full slices until the coordinator's target count
// is buffered, then folds them into one coalesced device commit: same
// records, same per-slice index entries, a fraction of the write ops.
func TestGroupCommitCoalescesSliceFlushes(t *testing.T) {
	const target, n = 4, 4 * SliceRecords
	legacy, lp, _ := newStoreWithPool(t)
	lo, _ := legacy.Create(CreateOptions{Topic: "t"})
	fill(t, lo, n)

	grouped, gp, _ := newStoreWithPool(t)
	grouped.EnableGroupCommit(target)
	go2, _ := grouped.Create(CreateOptions{Topic: "t"})
	// One record short of the trigger: every slice flush is deferred.
	fill(t, go2, n-1)
	if st := go2.Stats(); st.Slices != 0 || st.OpenBuf != n-1 {
		t.Fatalf("flushed before the group target: %+v", st)
	}
	flushedBefore := writeOps(gp)
	if _, _, err := go2.Append([]Record{rec("last", fmt.Sprintf("v%05d", n-1))}, "p", int64(n)); err != nil {
		t.Fatal(err)
	}
	if st := go2.Stats(); st.Slices != target || st.OpenBuf != 0 {
		t.Fatalf("group flush did not drain %d slices: %+v", target, st)
	}
	// The coalesced flush costs one device write per placement copy —
	// the same as ONE legacy slice flush, not four.
	perSlice := int64(lo.opts.Redundancy.Width())
	if got := writeOps(gp) - flushedBefore; got != perSlice {
		t.Fatalf("group flush used %d device writes, want %d", got, perSlice)
	}
	if lw, gw := writeOps(lp), writeOps(gp); gw >= lw {
		t.Fatalf("group commit saved nothing: legacy %d, grouped %d", lw, gw)
	}
	st := grouped.GroupCommitStats()
	if st.Commits != 1 || st.Payloads != target || st.SavedDeviceWrites != perSlice*int64(target-1) {
		t.Fatalf("group commit stats: %+v", st)
	}
	// The records and their offsets are indistinguishable from legacy.
	if lo.End() != go2.End() {
		t.Fatalf("ends diverged: %d vs %d", lo.End(), go2.End())
	}
	checkAll(t, go2, n)
}

// Flush with group commit on drains full slices AND the short tail in
// one coalesced commit; everything stays readable.
func TestGroupCommitFlushDrainsTail(t *testing.T) {
	s, _, _ := newStoreWithPool(t)
	s.EnableGroupCommit(8)
	o, _ := s.Create(CreateOptions{Topic: "t"})
	n := SliceRecords + 44 // one full slice plus a tail, below the trigger
	fill(t, o, n)
	if st := o.Stats(); st.Slices != 0 {
		t.Fatalf("flushed below the trigger: %+v", st)
	}
	if _, err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Slices != 2 || st.OpenBuf != 0 {
		t.Fatalf("flush left records behind: %+v", st)
	}
	checkAll(t, o, n)
	if st := s.GroupCommitStats(); st.Commits != 1 || st.Payloads != 2 {
		t.Fatalf("stats after tail drain: %+v", st)
	}
}

// The SCM-cache path caches each slice of a group individually, same as
// legacy flushes.
func TestGroupCommitWithSCMCache(t *testing.T) {
	s, _, _ := newStoreWithPool(t)
	s.EnableGroupCommit(2)
	o, _ := s.Create(CreateOptions{Topic: "t", SCMCache: true})
	n := 2 * SliceRecords
	fill(t, o, n)
	if st := o.Stats(); st.Slices != 2 {
		t.Fatalf("group flush: %+v", st)
	}
	checkAll(t, o, n)
}

// TestConcurrentFlushSealReclaimMigrate is the -race regression for the
// sealed-while-open edge: appends, group flushes, reclaims (which seal
// and destroy chain logs), and tiering migrations (which can hold stale
// log handles) all race. Destroyed logs must refuse migration, late
// appends must get a deterministic ErrSealed (rolling the chain), and
// every surviving record must read back intact.
func TestConcurrentFlushSealReclaimMigrate(t *testing.T) {
	clock := sim.NewClock()
	src := pool.New("race-src", clock, sim.NVMeSSD, 6, 16<<20)
	dst := pool.New("race-dst", clock, sim.SASHDD, 6, 16<<20)
	mgr := plog.NewManager(src, 1<<17) // tiny logs: the chain rolls often
	s := NewStore(clock, mgr)
	s.EnableGroupCommit(3)
	o, err := s.Create(CreateOptions{Topic: "race"})
	if err != nil {
		t.Fatal(err)
	}
	const total = 3000
	done := make(chan struct{})
	var horizon atomic.Int64 // highest offset handed to ReclaimThrough
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // appender
		defer wg.Done()
		defer close(done)
		for i := 0; i < total; i++ {
			if _, _, err := o.Append([]Record{rec(fmt.Sprintf("k%05d", i), fmt.Sprintf("v%05d", i))}, "p", int64(i+1)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	go func() { // reclaimer: seals + destroys drained chain logs
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			end := o.End()
			if cut := end - int64(2*SliceRecords); cut > 0 {
				if _, err := o.ReclaimThrough(cut); err != nil {
					t.Errorf("reclaim: %v", err)
					return
				}
				if cut > horizon.Load() {
					horizon.Store(cut)
				}
			}
		}
	}()
	go func() { // tiering: migrates whatever snapshot it sees
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, info := range mgr.Logs() {
				if info.Sealed {
					mgr.MigrateLog(info.ID, dst) // destroyed logs refuse; that's the fix
				}
			}
		}
	}()
	wg.Wait()
	if _, err := o.Flush(); err != nil {
		t.Fatal(err)
	}
	// Everything from the reclaim horizon to the end reads back intact.
	start, end := horizon.Load(), o.End()
	if end != total {
		t.Fatalf("end: %d", end)
	}
	for off := start; off < end; {
		recs, _, err := o.Read(off, ReadCtrl{MaxRecords: SliceRecords})
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if len(recs) == 0 {
			t.Fatalf("no records at %d", off)
		}
		for _, r := range recs {
			if want := fmt.Sprintf("v%05d", r.Offset); string(r.Value) != want {
				t.Fatalf("offset %d: %q", r.Offset, r.Value)
			}
		}
		off = recs[len(recs)-1].Offset + 1
	}
}
