// Package streamobj implements the stream object (Section IV-A), the
// paper's novel storage abstraction for key-value message streaming: a
// partition of key-value records organized as data slices of up to 256
// records, appended by topic/key/offset, distributed over the 4096
// logical shards of Figure 4 and persisted redundantly through PLogs.
//
// The Go API mirrors the C operations of Figure 3:
//
//	CreateServerStreamObject  -> Store.Create
//	DestroyServerStreamObject -> Store.Destroy
//	AppendServerStreamObject  -> Object.Append
//	ReadServerStreamObject    -> Object.Read
//
// IO_CONTENT_S's non-blocking buffers appear as the open slice buffer:
// appends accumulate in memory and persist a full slice at a time;
// ReadCtrl carries the read limits.
package streamobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/kv"
	"streamlake/internal/obs"
	"streamlake/internal/plog"
	"streamlake/internal/resil"
	"streamlake/internal/shard"
	"streamlake/internal/sim"
	"streamlake/internal/tenant"
)

// SliceRecords is the paper's fixed slice capacity: up to 256 records.
const SliceRecords = 256

// Record is one key-value message. Offset and Timestamp are assigned by
// the object on append.
type Record struct {
	Key       []byte
	Value     []byte
	Offset    int64
	Timestamp time.Duration
}

func (r Record) encodedSize() int64 {
	return int64(len(r.Key) + len(r.Value) + 2*binary.MaxVarintLen64)
}

// CreateOptions is the CREATE_OPTIONS_S of Figure 3: redundancy method,
// I/O quota, and cache policy.
type CreateOptions struct {
	// Topic names the message stream the object belongs to.
	Topic string
	// Redundancy selects replicate or erasure code (default: 3 copies).
	Redundancy plog.Redundancy
	// QuotaPerSec caps appended records per virtual second; 0 = unlimited
	// (the quota field of Figure 8).
	QuotaPerSec int64
	// SCMCache acks appends from a storage-class-memory buffer and keeps
	// recent slices cached there (the scm_cache flag of Figure 8,
	// hardware Set-2 of Section VII-C).
	SCMCache bool
}

// ReadCtrl is the READ_CTRL_S of Figure 3: limits on a read.
type ReadCtrl struct {
	// MaxRecords caps returned records; 0 means SliceRecords.
	MaxRecords int
	// MaxBytes caps returned payload bytes; 0 means unlimited.
	MaxBytes int64
	// Ctx carries the request's virtual-time deadline down through the
	// shard space into the PLog reads; nil means no deadline. When a
	// slice load pushes the request past its deadline, Read returns the
	// records collected so far together with resil.ErrDeadlineExceeded.
	Ctx *resil.Ctx
}

// Errors returned by stream object operations.
var (
	ErrThrottled     = errors.New("streamobj: quota exceeded, retry later")
	ErrUnknownObject = errors.New("streamobj: unknown object")
	ErrPastEnd       = errors.New("streamobj: offset past end of stream")
)

// ObjectID identifies a stream object, the object_id_t of Figure 3.
type ObjectID int64

// Store creates and owns stream objects over a shard space; it is the
// store-layer entry point for the stream abstraction.
type Store struct {
	clock   *sim.Clock
	mgr     *plog.Manager
	index   *kv.DB
	scm     *sim.Device
	journal *sim.Device

	mu      sync.Mutex
	objects map[ObjectID]*Object
	nextID  ObjectID
	metrics storeMetrics

	// gc is the optional group-commit coordinator (see
	// plog.GroupCommitter): when set, full-slice flushes are deferred
	// until its target count is buffered and folded into one coalesced
	// PLog commit. Atomic so flush paths read it without the store lock.
	gc atomic.Pointer[plog.GroupCommitter]

	// tenants is the optional multi-tenancy plane: capacity quotas are
	// charged at durable append, and poolQoS imposes weighted-fair
	// admission delay at the pool (slice-flush) entry point. Both nil on
	// the legacy single-tenant path.
	tenants atomic.Pointer[tenant.Registry]
	poolQoS atomic.Pointer[tenant.Sched]
}

// SetTenants attaches the tenant registry: capacity charging at durable
// append and weighted-fair pool admission at slice flush. Call at
// wiring time.
func (s *Store) SetTenants(reg *tenant.Registry) {
	s.tenants.Store(reg)
	s.poolQoS.Store(tenant.NewSched(s.clock, reg, sim.Spec(sim.NVMeSSD).WriteBandwidth))
}

// EnableGroupCommit installs a group-commit coordinator folding up to
// `slices` full-slice flushes into one coalesced PLog commit per
// placement group. Values below 2 remove the coordinator (one device
// commit per slice, the legacy path). Call at wiring time; flipping it
// mid-traffic is safe but makes flush timing config-dependent.
func (s *Store) EnableGroupCommit(slices int) {
	if slices > 1 {
		s.gc.Store(plog.NewGroupCommitter(slices))
	} else {
		s.gc.Store(nil)
	}
}

// GroupCommitStats snapshots the group-commit coordinator's counters;
// zeros when group commit is off.
func (s *Store) GroupCommitStats() plog.GroupCommitStats {
	return s.gc.Load().Stats()
}

// storeMetrics is the stream-object layer's obs instrument set; wired
// once by SetObs, nil-safe no-ops until then.
type storeMetrics struct {
	flushes       *obs.Counter // slices persisted into PLogs
	flushBytes    *obs.Counter
	dedupAcks     *obs.Counter   // duplicate batches re-acked without appending
	flushDeferred *obs.Counter   // slice flushes deferred by storage errors
	ackLat        *obs.Histogram // per-batch ack (journal/SCM) latency
}

// SetObs registers the store's telemetry with an obs registry. Call at
// wiring time, before the store serves traffic.
func (s *Store) SetObs(reg *obs.Registry) {
	s.mu.Lock()
	s.metrics = storeMetrics{
		flushes:       reg.Counter("streamobj_slice_flushes_total"),
		flushBytes:    reg.Counter("streamobj_flush_bytes_total"),
		dedupAcks:     reg.Counter("streamobj_dedup_acks_total"),
		flushDeferred: reg.Counter("streamobj_flush_deferred_total"),
		ackLat:        reg.Histogram("streamobj_ack_seconds"),
	}
	s.mu.Unlock()
	if reg == nil {
		return
	}
	reg.GaugeFunc("streamobj_objects", func() float64 { return float64(s.Count()) })
}

// NewStore builds a store creating PLogs from mgr. The index DB serves as
// the key-value record-lookup index for PLogs the paper describes; the
// SCM device backs objects created with SCMCache.
func NewStore(clock *sim.Clock, mgr *plog.Manager) *Store {
	return &Store{
		clock:   clock,
		mgr:     mgr,
		index:   kv.Open(kv.Options{Device: sim.NewDeviceOf("plog-index", sim.SCM)}),
		scm:     sim.NewDeviceOf("stream-scm", sim.SCM),
		journal: sim.NewDeviceOf("stream-journal", sim.NVMeSSD),
		objects: make(map[ObjectID]*Object),
	}
}

// Create allocates a new stream object (CreateServerStreamObject).
func (s *Store) Create(opts CreateOptions) (*Object, error) {
	if opts.Redundancy.Width() == 0 {
		opts.Redundancy = plog.ReplicateN(3)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	o := &Object{
		id:          s.nextID,
		opts:        opts,
		store:       s,
		space:       shard.NewSpace(s.mgr, opts.Redundancy),
		producerSeq: make(map[string]dedupEntry),
		cache:       make(map[int64][]Record),
	}
	s.objects[o.id] = o
	return o, nil
}

// Get returns the object with the given id, or nil.
func (s *Store) Get(id ObjectID) *Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objects[id]
}

// Destroy releases an object and its PLogs (DestroyServerStreamObject).
func (s *Store) Destroy(id ObjectID) error {
	s.mu.Lock()
	o, ok := s.objects[id]
	if ok {
		delete(s.objects, id)
	}
	s.mu.Unlock()
	if !ok {
		return ErrUnknownObject
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, sh := range o.touchedShards() {
		if err := o.space.Drop(sh); err != nil {
			return err
		}
	}
	return nil
}

// Count reports live objects.
func (s *Store) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.objects)
}

// StaleBytes sums the missing redundancy bytes across all live objects —
// zero when the store is fully redundant.
func (s *Store) StaleBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, o := range s.objects {
		total += o.StaleBytes()
	}
	return total
}

// sliceEntry locates one persisted slice.
type sliceEntry struct {
	base  int64 // offset of the slice's first record
	count int
	loc   shard.Loc
}

// Object is one stream object: a strictly ordered partition of records.
type Object struct {
	id    ObjectID
	opts  CreateOptions
	store *Store
	space *shard.Space

	mu          sync.Mutex
	nextOffset  int64
	buf         []Record // open slice (non-blocking append buffer)
	bufBase     int64
	slices      []sliceEntry // persisted slice directory, ascending base
	producerSeq map[string]dedupEntry
	cache       map[int64][]Record // recent slices kept in SCM
	cacheOrder  []int64
	// Quota token bucket on the virtual clock.
	tokens        float64
	lastRefill    time.Duration
	appended      int64
	bytesAppended int64
	// Per-tenant byte accounting (lazily allocated, only with a tenant
	// registry attached): pending counts journal-durable bytes awaiting
	// pool admission at slice flush; stored counts capacity-charged
	// bytes, credited back on reclamation.
	tenantPending map[string]int64
	tenantStored  map[string]int64
}

// ID returns the object's identifier.
func (o *Object) ID() ObjectID { return o.id }

// Topic returns the topic the object serves.
func (o *Object) Topic() string { return o.opts.Topic }

// End returns the offset one past the last appended record.
func (o *Object) End() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nextOffset
}

// dedupEntry remembers, per producer, the last acknowledged batch: its
// sequence number and the base offset the batch landed at, so a retried
// batch is re-acked with the offsets the original got. The dedup window
// is one batch deep — exactly what a producer that retries one batch at
// a time with the same sequence number needs.
type dedupEntry struct {
	seq  int64
	base int64
}

// Append appends records (AppendServerStreamObject), returning the
// offset of the first appended record and the modelled latency. Writes
// are idempotent per producer: a batch whose sequence number was already
// seen is acknowledged again without being re-appended, which is how
// duplicate sends after a network failure are absorbed.
func (o *Object) Append(records []Record, producerID string, seq int64) (int64, time.Duration, error) {
	return o.AppendCtx(records, producerID, seq, nil, nil)
}

// AppendSpan is Append with tracing: the durable ack writes and any
// slice flushes triggered by the batch are recorded as children of sp.
// The flush children do not advance the span cursor — flushing happens
// off the ack path, exactly as the returned latency excludes it. A nil
// span traces nothing.
func (o *Object) AppendSpan(records []Record, producerID string, seq int64, sp *obs.Span) (int64, time.Duration, error) {
	return o.AppendCtx(records, producerID, seq, sp, nil)
}

// AppendCtx is AppendSpan under a resilience context carrying the
// request's virtual-time deadline. The batch is all-or-nothing with
// respect to visibility: every error that can leave nothing behind
// (throttle, deadline on entry) is checked before the first record is
// buffered, and once buffering starts the whole batch becomes durable.
// If charging the ack cost then lands past the deadline, the batch IS
// durable — its sequence number is recorded and the base offset is
// returned alongside resil.ErrDeadlineExceeded, so an idempotent retry
// resolves the ambiguous timeout with a duplicate ack instead of a
// duplicate append.
func (o *Object) AppendCtx(records []Record, producerID string, seq int64, sp *obs.Span, rc *resil.Ctx) (int64, time.Duration, error) {
	base, cost, _, err := o.AppendTenantCtx(records, producerID, seq, "", sp, rc)
	return base, cost, err
}

// AppendTenantCtx is AppendCtx with a tenant identity: the batch's
// durable bytes are charged against the tenant's capacity quota (rolled
// back if the object-level throttle then rejects), and the flushed bytes
// later pay weighted-fair pool admission. The appended return reports
// whether records were actually buffered this call — false for a dedup
// re-ack, which the producer uses to refund a fresh admission charge
// that did no work. The system identity "" bypasses all tenant
// accounting.
func (o *Object) AppendTenantCtx(records []Record, producerID string, seq int64, ten string, sp *obs.Span, rc *resil.Ctx) (int64, time.Duration, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if e, ok := o.producerSeq[producerID]; ok && producerID != "" && seq <= e.seq {
		o.store.metrics.dedupAcks.Inc()
		if sp != nil {
			sp.SetAttr("dedup", "hit")
		}
		if seq == e.seq {
			return e.base, 0, false, nil // retried batch: re-ack its original base
		}
		return o.nextOffset, 0, false, nil // older duplicate: long since durable
	}
	if err := rc.Check(); err != nil {
		return 0, 0, false, err // out of time before any work: nothing appended
	}
	var batchBytes int64
	for i := range records {
		batchBytes += records[i].encodedSize()
	}
	// Capacity is charged before the object-level throttle and rolled
	// back if the throttle rejects, so a rejected batch consumes neither.
	// The dedup window above already ruled the batch new, so a retried
	// batch can never be capacity-charged twice.
	reg := o.store.tenants.Load()
	tenanted := reg != nil && ten != ""
	if tenanted {
		if err := reg.ChargeCapacity(ten, batchBytes); err != nil {
			return 0, 0, false, err
		}
	}
	if err := o.takeTokens(len(records)); err != nil {
		if tenanted {
			reg.CreditCapacity(ten, batchBytes)
		}
		return 0, 0, false, err
	}
	base := o.nextOffset
	now := o.store.clock.Now()
	var cost time.Duration
	for i := range records {
		r := records[i]
		r.Offset = o.nextOffset
		r.Timestamp = now
		o.nextOffset++
		o.buf = append(o.buf, r)
		// Each record is durable before it is acknowledged: the ack path
		// is a journal write to SCM (Set-2) or to the SSD pool (Set-1).
		// The slice flush into PLogs below happens off the ack path.
		if o.opts.SCMCache {
			cost += o.store.scm.Write(r.encodedSize())
		} else {
			cost += o.store.journal.Write(r.encodedSize())
		}
	}
	if sp != nil {
		ack := sp.Child("ack.scm")
		if !o.opts.SCMCache {
			ack.Name = "ack.journal"
		}
		ack.End(cost)
		sp.Advance(cost) // acks gate the producer's observed latency
	}
	if producerID != "" {
		o.producerSeq[producerID] = dedupEntry{seq: seq, base: base}
	}
	o.appended += int64(len(records))
	o.bytesAppended += batchBytes
	if tenanted {
		if o.tenantPending == nil {
			o.tenantPending = make(map[string]int64)
			o.tenantStored = make(map[string]int64)
		}
		o.tenantPending[ten] += batchBytes
		o.tenantStored[ten] += batchBytes
	}
	o.store.metrics.ackLat.Observe(cost)
	// Persist full slices into PLogs, after the whole batch is journaled
	// and visible. A flush failure (storage beyond fault tolerance) does
	// not fail the append — the records are journal-durable and stay in
	// the open buffer for the next flush attempt — because failing here
	// after part of the batch became visible would make a retry
	// double-append the rest.
	if g := o.store.gc.Load(); g != nil {
		// Group commit: full slices wait until the coordinator's target
		// count is buffered, then fold into one coalesced PLog commit.
		// Deferral risks nothing — the records are journal-durable and
		// readable from the open buffer while they wait.
		if len(o.buf) >= g.Target()*SliceRecords {
			if _, err := o.flushGroupLocked(sp); err != nil {
				o.store.metrics.flushDeferred.Inc()
			}
		}
	} else {
		for len(o.buf) >= SliceRecords {
			if _, err := o.flushChunkLocked(SliceRecords, sp); err != nil {
				o.store.metrics.flushDeferred.Inc()
				break
			}
		}
	}
	derr := rc.Charge(cost)
	return base, cost, true, derr
}

// poolAdmitLocked drains pending per-tenant bytes through the pool's
// weighted-fair admission scheduler as flushed bytes enter the SSD
// pool, returning the scheduling delay to fold into the flush cost.
// Draining walks tenants in sorted-name order so replays are
// bit-identical. A no-op without a tenant plane.
func (o *Object) poolAdmitLocked(flushed int64) time.Duration {
	sched := o.store.poolQoS.Load()
	if sched == nil || flushed <= 0 || len(o.tenantPending) == 0 {
		return 0
	}
	names := make([]string, 0, len(o.tenantPending))
	for n := range o.tenantPending {
		names = append(names, n)
	}
	sort.Strings(names)
	var total time.Duration
	rem := flushed
	for _, name := range names {
		if rem <= 0 {
			break
		}
		take := o.tenantPending[name]
		if take > rem {
			take = rem
		}
		total += sched.Delay(name, 1, take) // class 1 = Normal

		rem -= take
		if o.tenantPending[name] -= take; o.tenantPending[name] <= 0 {
			delete(o.tenantPending, name)
		}
	}
	return total
}

// creditReclaimLocked returns reclaimed bytes to tenant capacity
// quotas, proportionally to each tenant's stored share (slices mix
// tenants, so per-slice attribution is not tracked). Sorted-name order
// keeps replays bit-identical.
func (o *Object) creditReclaimLocked(freed int64) {
	reg := o.store.tenants.Load()
	if reg == nil || freed <= 0 || len(o.tenantStored) == 0 {
		return
	}
	var total int64
	names := make([]string, 0, len(o.tenantStored))
	for n, v := range o.tenantStored {
		names = append(names, n)
		total += v
	}
	if total == 0 {
		return
	}
	if freed > total {
		freed = total
	}
	sort.Strings(names)
	for _, name := range names {
		credit := freed * o.tenantStored[name] / total
		if credit <= 0 {
			continue
		}
		reg.CreditCapacity(name, credit)
		if o.tenantStored[name] -= credit; o.tenantStored[name] <= 0 {
			delete(o.tenantStored, name)
		}
	}
}

// CanAppend reports whether the quota currently admits n more records,
// without consuming tokens — the prepare check of the streaming
// service's two-phase commit.
func (o *Object) CanAppend(n int) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.opts.QuotaPerSec <= 0 {
		return nil
	}
	now := o.store.clock.Now()
	tokens := o.tokens + (now-o.lastRefill).Seconds()*float64(o.opts.QuotaPerSec)
	if max := float64(o.opts.QuotaPerSec); tokens > max {
		tokens = max
	}
	if tokens < float64(n) {
		return ErrThrottled
	}
	return nil
}

// takeTokens enforces the per-second quota against the virtual clock.
func (o *Object) takeTokens(n int) error {
	if o.opts.QuotaPerSec <= 0 {
		return nil
	}
	now := o.store.clock.Now()
	elapsed := now - o.lastRefill
	o.lastRefill = now
	o.tokens += elapsed.Seconds() * float64(o.opts.QuotaPerSec)
	if max := float64(o.opts.QuotaPerSec); o.tokens > max {
		o.tokens = max
	}
	if o.tokens < float64(n) {
		return ErrThrottled
	}
	o.tokens -= float64(n)
	return nil
}

// Flush persists everything in the open buffer, even a short trailing
// slice — used on topic shutdown and before conversion so no records
// are stranded in memory. If slice flushes were deferred by storage
// errors the buffer may hold several slices' worth; they are persisted
// in SliceRecords-sized chunks.
func (o *Object) Flush() (time.Duration, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.store.gc.Load() != nil {
		// Group commit drains the whole buffer — full slices plus the
		// short tail — as one coalesced PLog commit.
		var counts []int
		for rem := len(o.buf); rem > 0; {
			n := rem
			if n > SliceRecords {
				n = SliceRecords
			}
			counts = append(counts, n)
			rem -= n
		}
		return o.flushBatchLocked(counts, nil)
	}
	var total time.Duration
	for len(o.buf) > 0 {
		n := len(o.buf)
		if n > SliceRecords {
			n = SliceRecords
		}
		cost, err := o.flushChunkLocked(n, nil)
		total += cost
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// flushChunkLocked persists the oldest n buffered records as one slice.
// On error the records stay buffered and visible (they are journal-
// durable); the caller decides whether to surface or defer.
func (o *Object) flushChunkLocked(n int, sp *obs.Span) (time.Duration, error) {
	if n <= 0 || len(o.buf) == 0 {
		return 0, nil
	}
	if n > len(o.buf) {
		n = len(o.buf)
	}
	chunk := o.buf[:n]
	bp := sliceBufPool.Get().(*[]byte)
	data := encodeSliceInto((*bp)[:0], chunk)
	// Figure 4 a-d: the object is assigned to a logical shard by hashing
	// topic and object id; the shard persists its slices through a chain
	// of PLogs. Hashing the slice position here instead would give every
	// slice its own shard — and thus its own single-use PLog, which never
	// fills, never chains, and never sees an append after its placement
	// group was allocated (so a disk death could never degrade a write).
	sh := shard.ForKey([]byte(fmt.Sprintf("%s/%d", o.opts.Topic, o.id)))
	// The flush rides under its own child span and never advances the
	// parent cursor: persisting the slice into PLogs happens off the
	// ack path, so it overlaps the acks in the trace, exactly as the
	// returned latency excludes it.
	var fsp *obs.Span
	if sp != nil {
		fsp = sp.Child("slice.flush")
	}
	loc, cost, err := o.space.AppendSpan(sh, data, fsp)
	// The PLog copies the payload into its logical stream and computes
	// sidecar checksums within the append, so the encode buffer is dead
	// the moment the call returns — success or not — and can be recycled.
	encoded := int64(len(data))
	*bp = data[:0]
	sliceBufPool.Put(bp)
	if err != nil {
		return 0, err
	}
	fsp.End(cost)
	o.store.metrics.flushes.Inc()
	o.store.metrics.flushBytes.Add(encoded)
	entry := sliceEntry{base: o.bufBase, count: n, loc: loc}
	o.slices = append(o.slices, entry)
	// Persist the slice index in the KV store (the PLog lookup index).
	key := fmt.Sprintf("sobj/%d/%020d", o.id, o.bufBase)
	val := encodeLoc(loc, n)
	if _, err := o.store.index.Put([]byte(key), val); err != nil {
		return 0, err
	}
	if o.opts.SCMCache {
		o.cacheSlice(o.bufBase, chunk)
	}
	o.bufBase += int64(n)
	o.buf = append(o.buf[:0:0], o.buf[n:]...)
	if len(o.buf) == 0 {
		o.buf = nil
	}
	cost += o.poolAdmitLocked(encoded)
	return cost, nil
}

// flushGroupLocked persists every full slice currently buffered as one
// coalesced PLog commit. The short tail (if any) stays in the open
// buffer for the next group or an explicit Flush.
func (o *Object) flushGroupLocked(sp *obs.Span) (time.Duration, error) {
	counts := make([]int, 0, len(o.buf)/SliceRecords)
	for rem := len(o.buf); rem >= SliceRecords; rem -= SliceRecords {
		counts = append(counts, SliceRecords)
	}
	return o.flushBatchLocked(counts, sp)
}

// flushBatchLocked persists the oldest buffered records as len(counts)
// consecutive slices folded into ONE device commit per placement copy
// (plog.AppendBatch): each slice keeps its own payload, CRC sidecar,
// index entry, and SCM-cache entry — only the device write ops
// coalesce. On error nothing is persisted and the records stay buffered
// and visible, exactly like flushChunkLocked.
func (o *Object) flushBatchLocked(counts []int, sp *obs.Span) (time.Duration, error) {
	if len(counts) == 0 {
		return 0, nil
	}
	if len(counts) == 1 {
		return o.flushChunkLocked(counts[0], sp)
	}
	payloads := make([][]byte, len(counts))
	bufs := make([]*[]byte, len(counts))
	start := 0
	for i, n := range counts {
		bufs[i] = sliceBufPool.Get().(*[]byte)
		payloads[i] = encodeSliceInto((*bufs[i])[:0], o.buf[start:start+n])
		start += n
	}
	sh := shard.ForKey([]byte(fmt.Sprintf("%s/%d", o.opts.Topic, o.id)))
	var fsp *obs.Span
	if sp != nil {
		fsp = sp.Child("slice.flush")
		fsp.SetAttr("group", strconv.Itoa(len(counts)))
	}
	locs, cost, err := o.space.AppendBatch(sh, payloads, fsp)
	encoded := make([]int64, len(payloads))
	for i, p := range payloads {
		encoded[i] = int64(len(p))
		*bufs[i] = p[:0]
		sliceBufPool.Put(bufs[i])
	}
	if err != nil {
		return 0, err
	}
	fsp.End(cost)
	o.store.gc.Load().Note(len(counts), o.opts.Redundancy.Width())
	start = 0
	for i, n := range counts {
		chunk := o.buf[start : start+n]
		o.store.metrics.flushes.Inc()
		o.store.metrics.flushBytes.Add(encoded[i])
		o.slices = append(o.slices, sliceEntry{base: o.bufBase, count: n, loc: locs[i]})
		key := fmt.Sprintf("sobj/%d/%020d", o.id, o.bufBase)
		_, perr := o.store.index.Put([]byte(key), encodeLoc(locs[i], n))
		if o.opts.SCMCache {
			o.cacheSlice(o.bufBase, chunk)
		}
		o.bufBase += int64(n)
		start += n
		if perr != nil {
			// This chunk is persisted and tracked in o.slices; trim
			// through it so a retry can't double-flush, then surface.
			o.buf = append(o.buf[:0:0], o.buf[start:]...)
			return cost, perr
		}
	}
	o.buf = append(o.buf[:0:0], o.buf[start:]...)
	if len(o.buf) == 0 {
		o.buf = nil
	}
	var flushedTotal int64
	for _, e := range encoded {
		flushedTotal += e
	}
	cost += o.poolAdmitLocked(flushedTotal)
	return cost, nil
}

const cacheSlices = 64

func (o *Object) cacheSlice(base int64, recs []Record) {
	cp := make([]Record, len(recs))
	copy(cp, recs)
	o.cache[base] = cp
	o.cacheOrder = append(o.cacheOrder, base)
	if len(o.cacheOrder) > cacheSlices {
		evict := o.cacheOrder[0]
		o.cacheOrder = o.cacheOrder[1:]
		delete(o.cache, evict)
	}
}

// Read returns records from offset (ReadServerStreamObject), subject to
// ctrl limits, with the modelled read latency. Reads past the current
// end return ErrPastEnd; the streaming service turns that into a poll.
// With a deadline (ctrl.Ctx), a slice load that runs the request out of
// time returns the records collected so far with
// resil.ErrDeadlineExceeded — partial progress is kept, not discarded.
func (o *Object) Read(offset int64, ctrl ReadCtrl) ([]Record, time.Duration, error) {
	maxRecords := ctrl.MaxRecords
	if maxRecords <= 0 {
		maxRecords = SliceRecords
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := ctrl.Ctx.Check(); err != nil {
		return nil, 0, err
	}
	if offset < 0 || offset > o.nextOffset {
		return nil, 0, ErrPastEnd
	}
	if offset == o.nextOffset {
		return nil, 0, nil // caught up; poll again
	}
	var out []Record
	var cost time.Duration
	var bytes int64
	for int64(len(out)) == 0 || (offset < o.nextOffset && len(out) < maxRecords) {
		if offset >= o.bufBase {
			// Open slice: served from memory.
			for _, r := range o.buf {
				if r.Offset >= offset && len(out) < maxRecords {
					if ctrl.MaxBytes > 0 && bytes+r.encodedSize() > ctrl.MaxBytes && len(out) > 0 {
						return out, cost, nil
					}
					out = append(out, r)
					bytes += r.encodedSize()
					offset = r.Offset + 1
				}
			}
			break
		}
		entry, ok := o.findSlice(offset)
		if !ok {
			break
		}
		recs, c, err := o.loadSlice(entry, ctrl.Ctx)
		if errors.Is(err, resil.ErrDeadlineExceeded) {
			return out, cost + c, err
		}
		if err != nil {
			return nil, 0, err
		}
		cost += c
		for _, r := range recs {
			if r.Offset >= offset && len(out) < maxRecords {
				if ctrl.MaxBytes > 0 && bytes+r.encodedSize() > ctrl.MaxBytes && len(out) > 0 {
					return out, cost, nil
				}
				out = append(out, r)
				bytes += r.encodedSize()
			}
		}
		offset = entry.base + int64(entry.count)
		if len(out) >= maxRecords {
			break
		}
	}
	return out, cost, nil
}

// findSlice locates the persisted slice containing offset.
func (o *Object) findSlice(offset int64) (sliceEntry, bool) {
	i := sort.Search(len(o.slices), func(i int) bool {
		return o.slices[i].base+int64(o.slices[i].count) > offset
	})
	if i >= len(o.slices) {
		return sliceEntry{}, false
	}
	return o.slices[i], true
}

// loadSlice fetches a slice from SCM cache or PLog storage, charging
// the load cost to the request context (when present).
func (o *Object) loadSlice(e sliceEntry, rc *resil.Ctx) ([]Record, time.Duration, error) {
	if recs, ok := o.cache[e.base]; ok {
		var n int64
		for _, r := range recs {
			n += r.encodedSize()
		}
		cost := o.store.scm.Read(n)
		return recs, cost, rc.Charge(cost)
	}
	data, cost, err := o.space.ReadCtx(e.loc, rc)
	if err != nil {
		return nil, cost, err
	}
	recs, err := decodeSlice(data, e.base)
	if err != nil {
		return nil, 0, err
	}
	return recs, cost, nil
}

// ReclaimThrough destroys the PLogs whose slices all end at or before
// offset — the storage-reclamation half of stream-to-table conversion
// with delete_msg set (Section V-B): once messages are converted to
// table records, the stream copy is released so only one copy remains.
// It returns the logical bytes freed. The open slice buffer and any log
// still holding unconverted slices are untouched.
func (o *Object) ReclaimThrough(offset int64) (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	type logGroup struct {
		reclaimable bool
		entries     []int
	}
	groups := map[plog.ID]*logGroup{}
	for i, e := range o.slices {
		g := groups[e.loc.Log]
		if g == nil {
			g = &logGroup{reclaimable: true}
			groups[e.loc.Log] = g
		}
		g.entries = append(g.entries, i)
		if e.base+int64(e.count) > offset {
			g.reclaimable = false
		}
	}
	var freed int64
	drop := map[int]bool{}
	for id, g := range groups {
		if !g.reclaimable {
			continue
		}
		l := o.store.mgr.Get(id)
		if l == nil {
			continue
		}
		// A fully drained log still open for appends is sealed here; the
		// shard space rolls a fresh log on the next append.
		l.Seal()
		freed += l.Size()
		if err := o.space.DestroyLog(id); err != nil {
			return freed, err
		}
		for _, i := range g.entries {
			drop[i] = true
			delete(o.cache, o.slices[i].base)
		}
	}
	if len(drop) > 0 {
		kept := o.slices[:0]
		for i, e := range o.slices {
			if !drop[i] {
				kept = append(kept, e)
			}
		}
		o.slices = kept
	}
	o.creditReclaimLocked(freed)
	return freed, nil
}

// FullyRedundant reports whether every PLog backing the object holds its
// full redundancy — false while degraded writes await the repair
// service.
func (o *Object) FullyRedundant() bool { return o.space.FullyRedundant() }

// StaleBytes sums the missing redundancy bytes across the object's
// PLogs.
func (o *Object) StaleBytes() int64 { return o.space.StaleBytes() }

// touchedShards returns the distinct shards the object has written.
func (o *Object) touchedShards() []shard.ID {
	seen := map[shard.ID]bool{}
	var out []shard.ID
	for _, e := range o.slices {
		if !seen[e.loc.Shard] {
			seen[e.loc.Shard] = true
			out = append(out, e.loc.Shard)
		}
	}
	return out
}

// Stats reports object counters.
type Stats struct {
	Appended int64
	Bytes    int64
	End      int64
	OpenBuf  int
	Slices   int
}

// Stats returns a snapshot of the object's counters.
func (o *Object) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Stats{
		Appended: o.appended,
		Bytes:    o.bytesAppended,
		End:      o.nextOffset,
		OpenBuf:  len(o.buf),
		Slices:   len(o.slices),
	}
}

// Slice wire format: count, then per record key/value lengths and bytes
// plus the timestamp. Offsets are implicit from the slice base.

// sliceBufPool recycles slice-encode buffers. A payload is copied into
// the PLog's logical stream (and checksummed) within the append call,
// so the encode buffer is dead the moment the append returns and the
// next flush can reuse it instead of allocating.
var sliceBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 16<<10)
	return &b
}}

func encodeSlice(recs []Record) []byte { return encodeSliceInto(nil, recs) }

func encodeSliceInto(out []byte, recs []Record) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(recs)))
	out = append(out, tmp[:n]...)
	for _, r := range recs {
		n = binary.PutUvarint(tmp[:], uint64(len(r.Key)))
		out = append(out, tmp[:n]...)
		out = append(out, r.Key...)
		n = binary.PutUvarint(tmp[:], uint64(len(r.Value)))
		out = append(out, tmp[:n]...)
		out = append(out, r.Value...)
		n = binary.PutVarint(tmp[:], int64(r.Timestamp))
		out = append(out, tmp[:n]...)
	}
	return out
}

func decodeSlice(data []byte, base int64) ([]Record, error) {
	count, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, errors.New("streamobj: truncated slice")
	}
	data = data[sz:]
	// Untrusted count: each record costs at least 3 bytes.
	if count > uint64(len(data))/3+1 {
		return nil, errors.New("streamobj: record count exceeds slice size")
	}
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		kl, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < kl {
			return nil, errors.New("streamobj: truncated key")
		}
		data = data[sz:]
		// Zero-copy borrow: the key and value alias the slice buffer —
		// either a read-only borrow of the PLog's logical stream or the
		// object's SCM-cached copy, both immutable — so decoding a slice
		// allocates only the Record headers, never the payload bytes.
		// Full-capped so an append on a Record can't scribble on the log.
		key := data[:kl:kl]
		data = data[kl:]
		vl, sz := binary.Uvarint(data)
		if sz <= 0 || uint64(len(data)-sz) < vl {
			return nil, errors.New("streamobj: truncated value")
		}
		data = data[sz:]
		val := data[:vl:vl]
		data = data[vl:]
		ts, sz := binary.Varint(data)
		if sz <= 0 {
			return nil, errors.New("streamobj: truncated timestamp")
		}
		data = data[sz:]
		out = append(out, Record{Key: key, Value: val, Offset: base + int64(i), Timestamp: time.Duration(ts)})
	}
	return out, nil
}

func encodeLoc(loc shard.Loc, count int) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []int64{int64(loc.Shard), int64(loc.Log), loc.Offset, int64(loc.Len), int64(count)} {
		n := binary.PutVarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	return out
}
