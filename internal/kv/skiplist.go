package kv

import (
	"bytes"

	"streamlake/internal/sim"
)

// skiplist is a byte-ordered concurrent-unsafe skip list used as the
// memtable; the DB serializes access. Values are stored as-is; deletes
// are tombstones (nil value with present==true handled by entry.tomb).
const (
	maxLevel = 24
	levelP   = 4 // 1/4 promotion probability
)

type slNode struct {
	key   []byte
	value []byte
	tomb  bool
	next  []*slNode
}

type skiplist struct {
	head  *slNode
	level int
	size  int // live entries (including tombstones)
	bytes int64
	rng   *sim.RNG
}

func newSkiplist(seed uint64) *skiplist {
	return &skiplist{
		head:  &slNode{next: make([]*slNode, maxLevel)},
		level: 1,
		rng:   sim.NewRNG(seed),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rng.Intn(levelP) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or replaces key. tomb marks a delete record.
func (s *skiplist) put(key, value []byte, tomb bool) {
	update := make([]*slNode, maxLevel)
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		s.bytes += int64(len(value) - len(x.value))
		x.value = value
		x.tomb = tomb
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &slNode{key: key, value: value, tomb: tomb, next: make([]*slNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size++
	s.bytes += int64(len(key) + len(value))
}

// get returns (value, tomb, found).
func (s *skiplist) get(key []byte) ([]byte, bool, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && bytes.Equal(x.key, key) {
		return x.value, x.tomb, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(target []byte) *slNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// entries returns all records in order (tombstones included), for flush.
func (s *skiplist) entries() []entry {
	out := make([]entry, 0, s.size)
	for x := s.head.next[0]; x != nil; x = x.next[0] {
		out = append(out, entry{key: x.key, value: x.value, tomb: x.tomb})
	}
	return out
}
