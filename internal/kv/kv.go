// Package kv is the embedded key-value engine StreamLake leans on in
// four places the paper calls out: the record-lookup indexes for PLogs
// (Section IV-A), the stream dispatcher's fault-tolerant topology store
// (Section V-A), the table catalog "stored in a distributed key-value
// engine optimized for RDMA and SCM" (Section IV-B), and the metadata
// write cache behind the lakehouse's metadata acceleration (Section V-B).
//
// It is a single-node log-structured engine: writes land in a
// WAL-protected memtable (skip list) and flush to immutable sorted runs;
// reads merge memtable and runs newest-first; range scans use a k-way
// merge. Every operation charges its modelled cost to a backing device,
// so a catalog on SCM is measurably faster than one on HDD — the effect
// Figure 15 measures.
package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/sim"
)

type entry struct {
	key   []byte
	value []byte
	tomb  bool
}

// run is an immutable sorted array of entries, the engine's SSTable
// analogue.
type run struct {
	entries []entry
	bytes   int64
}

func (r *run) get(key []byte) (value []byte, tomb, found bool) {
	i := sort.Search(len(r.entries), func(i int) bool {
		return bytes.Compare(r.entries[i].key, key) >= 0
	})
	if i < len(r.entries) && bytes.Equal(r.entries[i].key, key) {
		e := r.entries[i]
		return e.value, e.tomb, true
	}
	return nil, false, false
}

// Options configures a DB.
type Options struct {
	// Device receives the modelled I/O charges (WAL appends, run reads).
	// Nil means a pure in-memory store with zero cost, used for tests.
	Device *sim.Device
	// MemtableBytes triggers an automatic flush once the active memtable
	// exceeds it. Zero means 4 MiB.
	MemtableBytes int64
	// Seed seeds the skiplist's level generator.
	Seed uint64
}

// DB is the key-value engine. The zero value is not usable; call Open.
type DB struct {
	opts Options

	mu   sync.RWMutex
	mem  *skiplist
	runs []*run // newest first
	wal  int64  // bytes appended to the WAL since the last flush
	puts int64
	gets atomic.Int64 // atomic: bumped under the shared read lock
}

// ErrCASMismatch is returned by CompareAndSwap when the current value
// does not match the expected one.
var ErrCASMismatch = errors.New("kv: compare-and-swap mismatch")

// Open creates a DB with the given options.
func Open(opts Options) *DB {
	if opts.MemtableBytes <= 0 {
		opts.MemtableBytes = 4 << 20
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &DB{opts: opts, mem: newSkiplist(opts.Seed)}
}

func (db *DB) charge(write bool, n int64) time.Duration {
	if db.opts.Device == nil {
		return 0
	}
	if write {
		return db.opts.Device.Write(n)
	}
	return db.opts.Device.Read(n)
}

// Put stores key=value, returning the modelled WAL latency.
func (db *DB) Put(key, value []byte) (time.Duration, error) {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	db.mu.Lock()
	db.mem.put(k, v, false)
	db.wal += int64(len(k) + len(v))
	db.puts++
	needFlush := db.mem.bytes > db.opts.MemtableBytes
	db.mu.Unlock()
	cost := db.charge(true, int64(len(k)+len(v)))
	if needFlush {
		db.Flush()
	}
	return cost, nil
}

// Delete removes key (writing a tombstone) and returns the WAL latency.
func (db *DB) Delete(key []byte) (time.Duration, error) {
	k := append([]byte(nil), key...)
	db.mu.Lock()
	db.mem.put(k, nil, true)
	db.wal += int64(len(k) + 1)
	db.mu.Unlock()
	return db.charge(true, int64(len(k)+1)), nil
}

// Get returns the value for key. The modelled cost is one device read of
// the entry when it is served from a flushed run, zero from the memtable
// (RAM), which is what makes the metadata cache's O(1) lookups cheap.
func (db *DB) Get(key []byte) (value []byte, cost time.Duration, ok bool) {
	db.mu.RLock()
	db.gets.Add(1)
	if v, tomb, found := db.mem.get(key); found {
		db.mu.RUnlock()
		if tomb {
			return nil, 0, false
		}
		return v, 0, true
	}
	runs := db.runs
	db.mu.RUnlock()
	for _, r := range runs {
		if v, tomb, found := r.get(key); found {
			cost = db.charge(false, int64(len(key)+len(v)))
			if tomb {
				return nil, cost, false
			}
			return v, cost, true
		}
	}
	return nil, cost, false
}

// CompareAndSwap atomically replaces key's value with next if the current
// value equals expect (nil expect means "key absent"). It returns
// ErrCASMismatch otherwise. This is the catalog-pointer primitive that
// the table object's optimistic concurrency control publishes commits
// through.
func (db *DB) CompareAndSwap(key, expect, next []byte) (time.Duration, error) {
	db.mu.Lock()
	cur, tomb, found := db.mem.get(key)
	if !found {
		for _, r := range db.runs {
			if v, tb, f := r.get(key); f {
				cur, tomb, found = v, tb, true
				break
			}
		}
	}
	if tomb {
		found = false
	}
	if found != (expect != nil) || (found && !bytes.Equal(cur, expect)) {
		db.mu.Unlock()
		return 0, ErrCASMismatch
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), next...)
	db.mem.put(k, v, false)
	db.wal += int64(len(k) + len(v))
	db.mu.Unlock()
	return db.charge(true, int64(len(k)+len(v))), nil
}

// Scan calls fn for each live key in [start, end) in order, merging
// memtable and runs; fn returning false stops the scan. A nil end scans
// to the last key.
func (db *DB) Scan(start, end []byte, fn func(key, value []byte) bool) time.Duration {
	db.mu.RLock()
	sources := make([][]entry, 0, len(db.runs)+1)
	memEntries := collectRange(db.mem, start, end)
	sources = append(sources, memEntries)
	for _, r := range db.runs {
		sources = append(sources, sliceRange(r.entries, start, end))
	}
	db.mu.RUnlock()

	var scanned int64
	merged := mergeEntries(sources)
	for _, e := range merged {
		scanned += int64(len(e.key) + len(e.value))
		if e.tomb {
			continue
		}
		if !fn(e.key, e.value) {
			break
		}
	}
	return db.charge(false, scanned)
}

func collectRange(s *skiplist, start, end []byte) []entry {
	var out []entry
	for x := s.seek(start); x != nil; x = x.next[0] {
		if end != nil && bytes.Compare(x.key, end) >= 0 {
			break
		}
		out = append(out, entry{key: x.key, value: x.value, tomb: x.tomb})
	}
	return out
}

func sliceRange(es []entry, start, end []byte) []entry {
	lo := sort.Search(len(es), func(i int) bool {
		return bytes.Compare(es[i].key, start) >= 0
	})
	hi := len(es)
	if end != nil {
		hi = sort.Search(len(es), func(i int) bool {
			return bytes.Compare(es[i].key, end) >= 0
		})
	}
	return es[lo:hi]
}

// mergeEntries merges sorted entry slices; earlier sources win on equal
// keys (sources must be ordered newest first).
func mergeEntries(sources [][]entry) []entry {
	idx := make([]int, len(sources))
	var out []entry
	for {
		best := -1
		for i, s := range sources {
			if idx[i] >= len(s) {
				continue
			}
			if best == -1 || bytes.Compare(s[idx[i]].key, sources[best][idx[best]].key) < 0 {
				best = i
			}
		}
		if best == -1 {
			return out
		}
		e := sources[best][idx[best]]
		out = append(out, e)
		// Skip the same key in all older sources (and the chosen one).
		for i, s := range sources {
			for idx[i] < len(s) && bytes.Equal(s[idx[i]].key, e.key) {
				idx[i]++
			}
		}
	}
}

// Flush freezes the memtable into a new immutable run. Flushes are the
// MetaFresher moment in the metadata-acceleration design: buffered
// key-value updates become persistent sorted data.
func (db *DB) Flush() time.Duration {
	db.mu.Lock()
	if db.mem.size == 0 {
		db.mu.Unlock()
		return 0
	}
	es := db.mem.entries()
	r := &run{entries: es, bytes: db.mem.bytes}
	db.runs = append([]*run{r}, db.runs...)
	db.mem = newSkiplist(db.opts.Seed + uint64(len(db.runs)))
	db.wal = 0
	needCompact := len(db.runs) > 8
	db.mu.Unlock()
	cost := db.charge(true, r.bytes)
	if needCompact {
		cost += db.Compact()
	}
	return cost
}

// Compact merges all runs into one, dropping superseded versions and
// tombstones.
func (db *DB) Compact() time.Duration {
	db.mu.Lock()
	if len(db.runs) <= 1 {
		db.mu.Unlock()
		return 0
	}
	sources := make([][]entry, len(db.runs))
	var inBytes int64
	for i, r := range db.runs {
		sources[i] = r.entries
		inBytes += r.bytes
	}
	merged := mergeEntries(sources)
	live := merged[:0]
	var outBytes int64
	for _, e := range merged {
		if e.tomb {
			continue
		}
		live = append(live, e)
		outBytes += int64(len(e.key) + len(e.value))
	}
	db.runs = []*run{{entries: live, bytes: outBytes}}
	db.mu.Unlock()
	return db.charge(false, inBytes) + db.charge(true, outBytes)
}

// Snapshot returns a consistent point-in-time read-only view.
func (db *DB) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	frozen := &run{entries: db.mem.entries(), bytes: db.mem.bytes}
	runs := make([]*run, 0, len(db.runs)+1)
	runs = append(runs, frozen)
	runs = append(runs, db.runs...)
	return &Snapshot{runs: runs, db: db}
}

// Stats reports engine counters.
type Stats struct {
	Puts, Gets    int64
	MemtableBytes int64
	Runs          int
	LiveKeys      int
}

// Stats returns a snapshot of engine counters. LiveKeys is exact but
// costs a full merge; callers use it in tests and diagnostics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := Stats{
		Puts:          db.puts,
		Gets:          db.gets.Load(),
		MemtableBytes: db.mem.bytes,
		Runs:          len(db.runs),
	}
	sources := [][]entry{db.mem.entries()}
	for _, r := range db.runs {
		sources = append(sources, r.entries)
	}
	for _, e := range mergeEntries(sources) {
		if !e.tomb {
			st.LiveKeys++
		}
	}
	return st
}

// Checkpoint serializes the DB's live contents — the durable state a
// fault-tolerant deployment ships to stable storage so a restarted node
// can recover (the dispatcher's topology store and the catalog both
// claim fault tolerance in the paper).
func (db *DB) Checkpoint() []byte {
	db.mu.RLock()
	sources := [][]entry{db.mem.entries()}
	for _, r := range db.runs {
		sources = append(sources, r.entries)
	}
	db.mu.RUnlock()
	var out []byte
	out = append(out, 'K', 'V', 'C', '1')
	for _, e := range mergeEntries(sources) {
		if e.tomb {
			continue
		}
		out = binary.AppendUvarint(out, uint64(len(e.key)))
		out = append(out, e.key...)
		out = binary.AppendUvarint(out, uint64(len(e.value)))
		out = append(out, e.value...)
	}
	return out
}

// Restore rebuilds a DB from a Checkpoint into a single immutable run.
// Existing contents are discarded.
func (db *DB) Restore(data []byte) error {
	if len(data) < 4 || string(data[:4]) != "KVC1" {
		return errors.New("kv: bad checkpoint magic")
	}
	data = data[4:]
	var es []entry
	var bytes int64
	for len(data) > 0 {
		kl, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < kl {
			return errors.New("kv: truncated checkpoint key")
		}
		data = data[n:]
		key := append([]byte(nil), data[:kl]...)
		data = data[kl:]
		vl, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data)-n) < vl {
			return errors.New("kv: truncated checkpoint value")
		}
		data = data[n:]
		val := append([]byte(nil), data[:vl]...)
		data = data[vl:]
		es = append(es, entry{key: key, value: val})
		bytes += int64(len(key) + len(val))
	}
	db.mu.Lock()
	db.mem = newSkiplist(db.opts.Seed)
	db.runs = []*run{{entries: es, bytes: bytes}}
	db.wal = 0
	db.mu.Unlock()
	return nil
}

// Snapshot is a read-only point-in-time view of a DB.
type Snapshot struct {
	runs []*run
	db   *DB
}

// Get returns the value for key as of the snapshot.
func (s *Snapshot) Get(key []byte) (value []byte, ok bool) {
	for _, r := range s.runs {
		if v, tomb, found := r.get(key); found {
			if tomb {
				return nil, false
			}
			return v, true
		}
	}
	return nil, false
}

// Scan iterates live keys in [start, end) as of the snapshot.
func (s *Snapshot) Scan(start, end []byte, fn func(key, value []byte) bool) {
	sources := make([][]entry, len(s.runs))
	for i, r := range s.runs {
		sources[i] = sliceRange(r.entries, start, end)
	}
	for _, e := range mergeEntries(sources) {
		if e.tomb {
			continue
		}
		if !fn(e.key, e.value) {
			return
		}
	}
}
