package kv

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"streamlake/internal/sim"
)

func TestPutGetDelete(t *testing.T) {
	db := Open(Options{})
	if _, err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, _, ok := db.Get([]byte("a"))
	if !ok || string(v) != "1" {
		t.Fatalf("get: %q %v", v, ok)
	}
	if _, _, ok := db.Get([]byte("missing")); ok {
		t.Fatal("phantom key")
	}
	db.Delete([]byte("a"))
	if _, _, ok := db.Get([]byte("a")); ok {
		t.Fatal("get after delete")
	}
	// Overwrite.
	db.Put([]byte("b"), []byte("x"))
	db.Put([]byte("b"), []byte("y"))
	v, _, _ = db.Get([]byte("b"))
	if string(v) != "y" {
		t.Fatalf("overwrite: %q", v)
	}
}

func TestGetAcrossFlush(t *testing.T) {
	db := Open(Options{})
	db.Put([]byte("k1"), []byte("v1"))
	db.Flush()
	db.Put([]byte("k2"), []byte("v2"))
	for _, k := range []string{"k1", "k2"} {
		if v, _, ok := db.Get([]byte(k)); !ok || string(v) != "v"+k[1:] {
			t.Fatalf("get %s after flush: %q %v", k, v, ok)
		}
	}
	// Newest version wins across runs.
	db.Put([]byte("k1"), []byte("v1b"))
	db.Flush()
	if v, _, _ := db.Get([]byte("k1")); string(v) != "v1b" {
		t.Fatalf("version order: %q", v)
	}
	// Tombstone in a newer run hides an older value.
	db.Delete([]byte("k1"))
	db.Flush()
	if _, _, ok := db.Get([]byte("k1")); ok {
		t.Fatal("tombstone not honored across runs")
	}
}

func TestAutoFlushOnMemtableSize(t *testing.T) {
	db := Open(Options{MemtableBytes: 1024})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), make([]byte, 100))
	}
	if st := db.Stats(); st.Runs == 0 {
		t.Fatal("no automatic flush happened")
	}
	for i := 0; i < 100; i++ {
		if _, _, ok := db.Get([]byte(fmt.Sprintf("key-%03d", i))); !ok {
			t.Fatalf("key %d lost across auto flush", i)
		}
	}
}

func TestCompactDropsTombstonesAndOldVersions(t *testing.T) {
	db := Open(Options{})
	for i := 0; i < 10; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		db.Flush()
	}
	db.Delete([]byte("k0"))
	db.Put([]byte("k1"), []byte("v2"))
	db.Flush()
	db.Compact()
	st := db.Stats()
	if st.Runs != 1 {
		t.Fatalf("runs after compact: %d", st.Runs)
	}
	if st.LiveKeys != 9 {
		t.Fatalf("live keys: %d, want 9", st.LiveKeys)
	}
	if _, _, ok := db.Get([]byte("k0")); ok {
		t.Fatal("deleted key resurrected by compaction")
	}
	if v, _, _ := db.Get([]byte("k1")); string(v) != "v2" {
		t.Fatalf("k1 = %q", v)
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	db := Open(Options{})
	keys := []string{"b", "d", "a", "e", "c"}
	for _, k := range keys {
		db.Put([]byte(k), []byte("v-"+k))
	}
	db.Flush()
	db.Put([]byte("bb"), []byte("v-bb")) // memtable entry merged into scan
	db.Delete([]byte("d"))

	var got []string
	db.Scan([]byte("a"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	want := []string{"a", "b", "bb", "c"}
	if len(got) != len(want) {
		t.Fatalf("scan got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan got %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	db.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop scanned %d", n)
	}
}

func TestCompareAndSwap(t *testing.T) {
	db := Open(Options{})
	// Create when absent: expect nil.
	if _, err := db.CompareAndSwap([]byte("ptr"), nil, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	// Stale create fails.
	if _, err := db.CompareAndSwap([]byte("ptr"), nil, []byte("s2")); err != ErrCASMismatch {
		t.Fatalf("stale create: %v", err)
	}
	// Swap with correct expectation.
	if _, err := db.CompareAndSwap([]byte("ptr"), []byte("s1"), []byte("s2")); err != nil {
		t.Fatal(err)
	}
	// Swap with stale expectation fails.
	if _, err := db.CompareAndSwap([]byte("ptr"), []byte("s1"), []byte("s3")); err != ErrCASMismatch {
		t.Fatalf("stale swap: %v", err)
	}
	v, _, _ := db.Get([]byte("ptr"))
	if string(v) != "s2" {
		t.Fatalf("final value %q", v)
	}
	// CAS sees values in flushed runs too.
	db.Flush()
	if _, err := db.CompareAndSwap([]byte("ptr"), []byte("s2"), []byte("s3")); err != nil {
		t.Fatalf("CAS across flush: %v", err)
	}
}

func TestCASConcurrentOnlyOneWins(t *testing.T) {
	db := Open(Options{})
	db.Put([]byte("head"), []byte("v0"))
	var wins int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := db.CompareAndSwap([]byte("head"), []byte("v0"), []byte(fmt.Sprintf("v%d", i+1))); err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", wins)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := Open(Options{})
	db.Put([]byte("x"), []byte("old"))
	snap := db.Snapshot()
	db.Put([]byte("x"), []byte("new"))
	db.Put([]byte("y"), []byte("created-later"))
	db.Delete([]byte("x"))

	if v, ok := snap.Get([]byte("x")); !ok || string(v) != "old" {
		t.Fatalf("snapshot get: %q %v", v, ok)
	}
	if _, ok := snap.Get([]byte("y")); ok {
		t.Fatal("snapshot sees later write")
	}
	var keys []string
	snap.Scan(nil, nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if len(keys) != 1 || keys[0] != "x" {
		t.Fatalf("snapshot scan: %v", keys)
	}
}

func TestDeviceCostCharging(t *testing.T) {
	dev := sim.NewDeviceOf("scm0", sim.SCM)
	db := Open(Options{Device: dev})
	cost, _ := db.Put([]byte("k"), []byte("v"))
	if cost <= 0 {
		t.Fatal("put did not charge the device")
	}
	// Memtable hit is free (RAM).
	if _, cost, _ := db.Get([]byte("k")); cost != 0 {
		t.Fatalf("memtable hit charged %v", cost)
	}
	db.Flush()
	// Run hit charges one device read.
	if _, cost, ok := db.Get([]byte("k")); !ok || cost <= 0 {
		t.Fatalf("run hit: ok=%v cost=%v", ok, cost)
	}
	if dev.Stats().WriteOps == 0 || dev.Stats().ReadOps == 0 {
		t.Fatalf("device counters: %+v", dev.Stats())
	}
}

func TestStats(t *testing.T) {
	db := Open(Options{})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	db.Delete([]byte("a"))
	st := db.Stats()
	if st.Puts != 2 || st.LiveKeys != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQuickModelConformance(t *testing.T) {
	// Property: the DB behaves like a map[string]string under random
	// put/delete/flush interleavings, and Scan returns keys sorted.
	type op struct {
		Key   uint8
		Val   uint16
		Del   bool
		Flush bool
	}
	f := func(ops []op) bool {
		db := Open(Options{})
		model := map[string]string{}
		for _, o := range ops {
			k := fmt.Sprintf("key-%d", o.Key%32)
			if o.Flush {
				db.Flush()
			}
			if o.Del {
				db.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("val-%d", o.Val)
				db.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		// Point lookups agree.
		for k, want := range model {
			got, _, ok := db.Get([]byte(k))
			if !ok || string(got) != want {
				return false
			}
		}
		// Scan agrees and is sorted.
		var scanned []string
		db.Scan(nil, nil, func(k, v []byte) bool {
			scanned = append(scanned, string(k))
			if model[string(k)] != string(v) {
				scanned = append(scanned, "MISMATCH")
			}
			return true
		})
		if len(scanned) != len(model) {
			return false
		}
		return sort.StringsAreSorted(scanned)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSnapshotImmutable(t *testing.T) {
	// Property: a snapshot's contents never change regardless of
	// subsequent writes.
	f := func(initial, later []uint8) bool {
		db := Open(Options{})
		for _, k := range initial {
			db.Put([]byte{k}, []byte{k})
		}
		snap := db.Snapshot()
		var before [][2][]byte
		snap.Scan(nil, nil, func(k, v []byte) bool {
			before = append(before, [2][]byte{append([]byte(nil), k...), append([]byte(nil), v...)})
			return true
		})
		for _, k := range later {
			db.Put([]byte{k}, []byte{k ^ 0xFF})
			db.Delete([]byte{k ^ 0x55})
		}
		db.Flush()
		db.Compact()
		var after [][2][]byte
		snap.Scan(nil, nil, func(k, v []byte) bool {
			after = append(after, [2][]byte{k, v})
			return true
		})
		if len(before) != len(after) {
			return false
		}
		for i := range before {
			if !bytes.Equal(before[i][0], after[i][0]) || !bytes.Equal(before[i][1], after[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db := Open(Options{MemtableBytes: 1 << 10})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			db.Put([]byte(fmt.Sprintf("k%d", i%64)), []byte(fmt.Sprintf("v%d", i)))
		}
	}()
	for i := 0; i < 500; i++ {
		db.Get([]byte(fmt.Sprintf("k%d", i%64)))
		db.Scan([]byte("k0"), []byte("k5"), func(k, v []byte) bool { return true })
	}
	<-done
}

func BenchmarkKVPut(b *testing.B) {
	db := Open(Options{MemtableBytes: 64 << 20})
	key := make([]byte, 16)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key[0], key[1], key[2] = byte(i), byte(i>>8), byte(i>>16)
		db.Put(key, val)
	}
}

func BenchmarkKVGet(b *testing.B) {
	db := Open(Options{MemtableBytes: 64 << 20})
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte("value"))
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key-%05d", i%10000)))
	}
}

func TestCheckpointRestore(t *testing.T) {
	db := Open(Options{})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k007"))
	db.Flush()
	db.Put([]byte("late"), []byte("write"))

	blob := db.Checkpoint()
	// A "restarted node": fresh DB restored from the checkpoint.
	db2 := Open(Options{})
	if err := db2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := db2.Get([]byte("k007")); ok {
		t.Fatal("tombstoned key resurrected by recovery")
	}
	for _, k := range []string{"k000", "k199", "late"} {
		if _, _, ok := db2.Get([]byte(k)); !ok {
			t.Fatalf("key %s lost in recovery", k)
		}
	}
	if got, want := db2.Stats().LiveKeys, db.Stats().LiveKeys; got != want {
		t.Fatalf("live keys after restore: %d, want %d", got, want)
	}
	// Restored DB accepts writes.
	if _, err := db2.Put([]byte("post"), []byte("restore")); err != nil {
		t.Fatal(err)
	}
	// Corrupt checkpoints rejected.
	if err := db2.Restore([]byte("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := db2.Restore(blob[:len(blob)-2]); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// Concurrent readers share the RWMutex read lock, so the get counter
// they bump must be atomic — a plain increment under RLock is a data
// race between two Gets (caught by the query-layer race test first;
// this pins it at the source).
func TestConcurrentGetsRaceFree(t *testing.T) {
	db := Open(Options{})
	if _, err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	db.Flush()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				db.Get([]byte("k"))
				db.Scan(nil, nil, func(k, v []byte) bool { return true })
			}
		}()
	}
	wg.Wait()
	if got := db.Stats().Gets; got != 2000 {
		t.Fatalf("lost get increments under concurrency: %d, want 2000", got)
	}
}
