package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c Codec, data []byte) int64 {
	t.Helper()
	enc, err := Encode(c, data)
	if err != nil {
		t.Fatalf("Encode(%v): %v", c, err)
	}
	dec, err := Decode(c, enc)
	if err != nil {
		t.Fatalf("Decode(%v): %v", c, err)
	}
	if !bytes.Equal(dec, data) {
		t.Fatalf("%v round-trip mismatch: %d bytes in, %d out", c, len(data), len(dec))
	}
	return int64(len(enc))
}

func TestRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	random := make([]byte, 4096)
	rng.Read(random)
	inputs := [][]byte{
		nil,
		{},
		{0x7f},
		[]byte("hello"),
		[]byte(strings.Repeat("a", 1000)),
		[]byte(strings.Repeat("key-000123|value|", 500)),
		bytes.Repeat([]byte{0, 0, 0, 1}, 512), // columnar-ish: runs of zero padding
		random,
		append(bytes.Repeat([]byte{9}, 300), random[:300]...),
	}
	for _, c := range []Codec{None, RLE, Flate} {
		for i, in := range inputs {
			if n := roundTrip(t, c, in); c == None && n != int64(len(in)) {
				t.Fatalf("input %d: None changed length %d -> %d", i, len(in), n)
			}
		}
	}
}

func TestRLECompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 4096)
	enc, err := Encode(RLE, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(data)/16 {
		t.Fatalf("RLE left %d of %d bytes on an all-zero input", len(enc), len(data))
	}
}

func TestRLEWorstCaseBounded(t *testing.T) {
	// Alternating bytes have no runs; PackBits overhead is one control
	// byte per 128 literals.
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i & 1)
	}
	enc, err := Encode(RLE, data)
	if err != nil {
		t.Fatal(err)
	}
	if max := len(data) + (len(data)+127)/128; len(enc) > max {
		t.Fatalf("RLE worst case %d exceeds bound %d", len(enc), max)
	}
}

func TestRLEDecodeRejectsTruncated(t *testing.T) {
	for _, bad := range [][]byte{
		{5},            // literal header promising 6 bytes, none follow
		{200},          // run header with no value byte
		{128},          // reserved control byte
		{1, 'a'},       // literal truncated after 1 of 2
		{0, 'a', 3, 1}, // second literal packet truncated
	} {
		if _, err := rleDecode(bad); err == nil {
			t.Fatalf("rleDecode(%v) accepted truncated input", bad)
		}
	}
}

func TestNegotiatePicksSmallerCodec(t *testing.T) {
	runs := bytes.Repeat([]byte{7}, 8192)
	c, n := Negotiate(runs)
	if c == None {
		t.Fatalf("Negotiate bailed out on an all-run input")
	}
	if n >= int64(len(runs))/4 {
		t.Fatalf("Negotiate kept %d of %d bytes on an all-run input", n, len(runs))
	}
	// The reported length must be the real encoded length.
	enc, err := Encode(c, runs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc)) != n {
		t.Fatalf("Negotiate reported %d bytes, Encode produced %d", n, len(enc))
	}

	text := []byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 200))
	c, n = Negotiate(text)
	if c != Flate {
		t.Fatalf("Negotiate chose %v for english text, want flate", c)
	}
	if n >= int64(len(text)) {
		t.Fatalf("flate did not shrink text: %d -> %d", len(text), n)
	}
}

func TestNegotiateBailsOutOnIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 16384)
	rng.Read(data)
	c, n := Negotiate(data)
	if c != None {
		t.Fatalf("Negotiate chose %v for random bytes, want None", c)
	}
	if n != int64(len(data)) {
		t.Fatalf("None bailout reported %d bytes, want raw %d", n, len(data))
	}
}

func TestNegotiateEmpty(t *testing.T) {
	if c, n := Negotiate(nil); c != None || n != 0 {
		t.Fatalf("Negotiate(nil) = %v, %d", c, n)
	}
}

func TestCostModelDeterministicAndMonotonic(t *testing.T) {
	for _, c := range []Codec{RLE, Flate} {
		if Cost(c, 0) != 0 || DecompressCost(c, 0) != 0 {
			t.Fatalf("%v: zero-length extents must cost nothing", c)
		}
		if Cost(c, 1<<20) != Cost(c, 1<<20) {
			t.Fatalf("%v: cost not deterministic", c)
		}
		if Cost(c, 1<<20) <= Cost(c, 1<<10) {
			t.Fatalf("%v: cost not monotonic in length", c)
		}
		if DecompressCost(c, 1<<20) >= Cost(Flate, 1<<20)+Cost(RLE, 1<<20) {
			t.Fatalf("%v: decompress should undercut the negotiate trial", c)
		}
	}
	if Cost(None, 1<<20) != 0 || DecompressCost(None, 1<<20) != 0 {
		t.Fatal("None must be free: the bailout means no codec runs at serve time")
	}
	if NegotiateCost(1<<20) != Cost(RLE, 1<<20)+Cost(Flate, 1<<20) {
		t.Fatal("NegotiateCost must charge both trial encodes")
	}
	// RLE exists to be the cheap path.
	if Cost(RLE, 1<<20) >= Cost(Flate, 1<<20) {
		t.Fatal("RLE compress must be cheaper than flate")
	}
	if DecompressCost(RLE, 1<<20) >= DecompressCost(Flate, 1<<20) {
		t.Fatal("RLE decompress must be cheaper than flate")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	data := []byte(strings.Repeat("columnar payload 0123456789 ", 300))
	for _, c := range []Codec{RLE, Flate} {
		a, err := Encode(c, data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(c, data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%v: encode not deterministic", c)
		}
	}
}

func TestFuzzishRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := rng.Intn(2000)
		data := make([]byte, n)
		// Mix run-heavy and random segments.
		for j := 0; j < n; {
			if rng.Intn(2) == 0 {
				run := rng.Intn(64) + 1
				b := byte(rng.Intn(4))
				for k := 0; k < run && j < n; k++ {
					data[j] = b
					j++
				}
			} else {
				data[j] = byte(rng.Intn(256))
				j++
			}
		}
		for _, c := range []Codec{RLE, Flate} {
			roundTrip(t, c, data)
		}
		c, clen := Negotiate(data)
		if c == None {
			if clen != int64(n) {
				t.Fatalf("bailout length %d != raw %d", clen, n)
			}
			continue
		}
		enc, err := Encode(c, data)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(enc)) != clen {
			t.Fatalf("negotiated %v length %d, encode gave %d", c, clen, len(enc))
		}
	}
}
