// Package compress is the per-extent compression layer for cold-tier
// byte reduction: extents compress as they demote to the HDD tier and
// decompress on promote, so the hot path always serves raw bytes while
// the cold tier stores fewer of them.
//
// Two codecs, both stdlib-only: Flate (DEFLATE at BestSpeed — the
// general path) and RLE (a PackBits-style run-length coder — the cheap
// path for columnar payloads, whose fixed-width encodings produce long
// byte runs). Negotiate tries both per extent and keeps the smaller
// output, bailing out to None when neither earns its keep: compressed
// extents that save less than 1/16 of their size are stored raw, so
// incompressible data never pays decompress CPU on every cold read.
//
// CPU time is charged to the virtual clock through a calibrated cost
// model (see Cost/DecompressCost): fixed ns-per-byte constants measured
// offline on a commodity core, never the wall clock, so seeded runs
// replay bit-identically and the latency/bytes tradeoff shows up in
// virtual-time histograms, not just byte counters.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"
)

// Codec identifies one compression algorithm.
type Codec uint8

const (
	// None stores the extent raw — the incompressible-data bailout.
	None Codec = iota
	// RLE is a PackBits-style run-length coder: a control byte c
	// followed by either c+1 literal bytes (c <= 127) or one byte
	// repeated 257-c times (c >= 129). Cheap enough to be nearly free,
	// and columnar payloads (zero padding, repeated dictionary codes)
	// are exactly the run-heavy inputs it wins on.
	RLE
	// Flate is stdlib DEFLATE at BestSpeed — the general-purpose path.
	Flate
)

func (c Codec) String() string {
	switch c {
	case None:
		return "none"
	case RLE:
		return "rle"
	case Flate:
		return "flate"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// Encode compresses data with the given codec. None returns a copy of
// the input. The output of a given (codec, input) pair is deterministic
// — Negotiate's size decisions and the virtual-byte accounting built on
// them replay identically from a seed.
func Encode(c Codec, data []byte) ([]byte, error) {
	switch c {
	case None:
		return append([]byte(nil), data...), nil
	case RLE:
		return rleEncode(data), nil
	case Flate:
		var buf bytes.Buffer
		w, err := flate.NewWriter(&buf, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(data); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("compress: unknown codec %d", uint8(c))
}

// Decode reverses Encode.
func Decode(c Codec, data []byte) ([]byte, error) {
	switch c {
	case None:
		return append([]byte(nil), data...), nil
	case RLE:
		return rleDecode(data)
	case Flate:
		r := flate.NewReader(bytes.NewReader(data))
		out, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		return out, r.Close()
	}
	return nil, fmt.Errorf("compress: unknown codec %d", uint8(c))
}

// Negotiate picks the codec for one extent: it encodes data with both
// real codecs and keeps the smaller result, bailing out to None (with
// the raw length) when the best saving is under 1/16 of the input —
// incompressible extents are stored raw rather than paying decompress
// CPU forever for a rounding-error saving. It returns the chosen codec
// and the exact on-device byte count of the extent under it.
func Negotiate(data []byte) (Codec, int64) {
	raw := int64(len(data))
	if raw == 0 {
		return None, 0
	}
	best, bestLen := None, raw
	if rl := int64(len(rleEncode(data))); rl < bestLen {
		best, bestLen = RLE, rl
	}
	enc, err := Encode(Flate, data)
	if err == nil && int64(len(enc)) < bestLen {
		best, bestLen = Flate, int64(len(enc))
	}
	if bestLen >= raw-raw/16 {
		return None, raw
	}
	return best, bestLen
}

// The virtual-CPU cost model. Constants are ns per input byte,
// calibrated offline against stdlib flate and the RLE coder on a ~3 GHz
// core (flate/BestSpeed compresses ~200 MB/s and inflates ~500 MB/s;
// the RLE coder runs roughly an order of magnitude faster). They are
// deliberately constants, not measurements: the simulation charges the
// virtual clock, so the model must replay bit-identically regardless of
// the hardware the process runs on.
const (
	// opOverhead is the fixed per-extent setup cost of one codec
	// invocation (window allocation, table setup).
	opOverhead = 200 * time.Nanosecond

	flateCompressNsPerByte   = 5
	flateDecompressNsPerByte = 2
	// RLE cost is sub-ns per byte; modeled as ns per 4 (compress) and
	// per 8 (decompress) bytes.
	rleCompressBytesPerNs   = 4
	rleDecompressBytesPerNs = 8
)

// Cost returns the virtual CPU time to compress rawLen bytes with the
// codec. None is free: the bailout means no codec ran at serve time.
func Cost(c Codec, rawLen int64) time.Duration {
	if rawLen <= 0 {
		return 0
	}
	switch c {
	case RLE:
		return opOverhead + time.Duration(rawLen/rleCompressBytesPerNs)
	case Flate:
		return opOverhead + time.Duration(rawLen*flateCompressNsPerByte)
	}
	return 0
}

// DecompressCost returns the virtual CPU time to decompress an extent
// back to rawLen bytes.
func DecompressCost(c Codec, rawLen int64) time.Duration {
	if rawLen <= 0 {
		return 0
	}
	switch c {
	case RLE:
		return opOverhead + time.Duration(rawLen/rleDecompressBytesPerNs)
	case Flate:
		return opOverhead + time.Duration(rawLen*flateDecompressNsPerByte)
	}
	return 0
}

// NegotiateCost returns the virtual CPU time Negotiate spends choosing
// a codec for rawLen bytes: both trial encodes run, so the bailout is
// not free — that is the tradeoff the cost model exists to surface.
func NegotiateCost(rawLen int64) time.Duration {
	return Cost(RLE, rawLen) + Cost(Flate, rawLen)
}

// rleEncode is PackBits: runs of 3+ identical bytes become a 2-byte
// (control, value) packet; everything else is copied as literal packets
// of up to 128 bytes. Worst case output is len + ceil(len/128).
func rleEncode(data []byte) []byte {
	out := make([]byte, 0, len(data)/2+8)
	i := 0
	for i < len(data) {
		// Measure the run starting at i.
		j := i + 1
		for j < len(data) && data[j] == data[i] && j-i < 128 {
			j++
		}
		if run := j - i; run >= 3 {
			out = append(out, byte(257-run), data[i])
			i = j
			continue
		}
		// Literal stretch: until the next 3+ run or 128 bytes.
		start := i
		for i < len(data) && i-start < 128 {
			if i+2 < len(data) && data[i] == data[i+1] && data[i] == data[i+2] {
				break
			}
			i++
		}
		out = append(out, byte(i-start-1))
		out = append(out, data[start:i]...)
	}
	return out
}

func rleDecode(data []byte) ([]byte, error) {
	out := make([]byte, 0, len(data)*2)
	for i := 0; i < len(data); {
		c := data[i]
		i++
		if c <= 127 {
			n := int(c) + 1
			if i+n > len(data) {
				return nil, fmt.Errorf("compress: rle literal truncated at %d", i)
			}
			out = append(out, data[i:i+n]...)
			i += n
			continue
		}
		if c == 128 {
			return nil, fmt.Errorf("compress: rle reserved control byte at %d", i-1)
		}
		if i >= len(data) {
			return nil, fmt.Errorf("compress: rle run truncated at %d", i)
		}
		n := 257 - int(c)
		for k := 0; k < n; k++ {
			out = append(out, data[i])
		}
		i++
	}
	return out, nil
}
