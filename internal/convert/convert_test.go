package convert

import (
	"fmt"
	"testing"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tableobj"
	"streamlake/internal/tiering"
)

type env struct {
	clock *sim.Clock
	svc   *streamsvc.Service
	fs    *tableobj.FileStore
	cat   *tableobj.Catalog
	conv  *Converter
}

var logSchema = colfile.MustSchema("url:string", "start_time:int64", "province:string")

func newEnv(t testing.TB) *env {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("conv", clock, sim.NVMeSSD, 6, 4<<20)
	mgr := plog.NewManager(p, 64<<10)
	store := streamobj.NewStore(clock, mgr)
	svc := streamsvc.New(clock, store, 2)
	fs := tableobj.NewFileStore(plog.NewManager(pool.New("convfs", clock, sim.NVMeSSD, 6, 4<<20), 8<<20))
	cat := tableobj.NewCatalog(clock)
	return &env{clock: clock, svc: svc, fs: fs, cat: cat, conv: New(clock, svc, fs, cat)}
}

func convertTopic(name string) streamsvc.TopicConfig {
	return streamsvc.TopicConfig{
		Name:      name,
		StreamNum: 2,
		Convert:   ConvertCfg(name),
	}
}

// ConvertCfg builds a standard conversion config for tests.
func ConvertCfg(name string) streamsvc.ConvertConfig {
	return streamsvc.ConvertConfig{
		Enabled:         true,
		TableName:       name + "_table",
		TablePath:       "/lake/" + name,
		TableSchema:     logSchema,
		PartitionColumn: "province",
		SplitOffset:     100,
		SplitTime:       time.Hour,
	}
}

func produceRows(t testing.TB, e *env, topic string, n int) {
	t.Helper()
	p := e.svc.Producer("") // fresh identity per batch: these are new senders, not retries
	provs := []string{"Beijing", "Shanghai", "Guangdong"}
	for i := 0; i < n; i++ {
		row := colfile.Row{
			colfile.StringValue(fmt.Sprintf("http://a/%d", i)),
			colfile.IntValue(int64(1000 + i)),
			colfile.StringValue(provs[i%3]),
		}
		val, err := EncodeRow(logSchema, row)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.Send(topic, []byte(fmt.Sprintf("k%d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRowCodecHelpers(t *testing.T) {
	row := colfile.Row{colfile.StringValue("u"), colfile.IntValue(7), colfile.StringValue("B")}
	data, err := EncodeRow(logSchema, row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRow(data)
	if err != nil || len(got) != 3 || got[1].Int != 7 {
		t.Fatalf("decode: %+v %v", got, err)
	}
	if _, err := DecodeRow([]byte("junk")); err == nil {
		t.Fatal("junk decoded")
	}
}

func TestConversionTriggeredByCount(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(convertTopic("logs"))
	produceRows(t, e, "logs", 50) // below SplitOffset=100
	results, _, err := e.conv.RunOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("converted below threshold: %+v", results)
	}
	produceRows(t, e, "logs", 60) // now 110 pending
	results, cost, err := e.conv.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("conversion: %+v %v", results, err)
	}
	if results[0].Messages != 110 || cost <= 0 {
		t.Fatalf("result: %+v", results[0])
	}
	// The table now holds all rows, partitioned by province.
	tbl, _, err := tableobj.Open(e.clock, e.fs, e.cat, "logs_table")
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := tbl.Current()
	if cur.RowCount != 110 {
		t.Fatalf("table rows: %d", cur.RowCount)
	}
	parts := map[string]bool{}
	for _, f := range cur.Files {
		parts[f.Partition] = true
	}
	if len(parts) != 3 {
		t.Fatalf("partitions: %v", parts)
	}
}

func TestConversionTriggeredByTime(t *testing.T) {
	e := newEnv(t)
	cfg := convertTopic("slow")
	cfg.Convert.SplitOffset = 1 << 40 // count trigger unreachable
	cfg.Convert.SplitTime = 10 * time.Minute
	e.svc.CreateTopic(cfg)
	produceRows(t, e, "slow", 5)
	if results, _, _ := e.conv.RunOnce(); len(results) != 0 {
		t.Fatal("converted before time trigger")
	}
	e.clock.Advance(11 * time.Minute)
	results, _, err := e.conv.RunOnce()
	if err != nil || len(results) != 1 || results[0].Messages != 5 {
		t.Fatalf("time-triggered: %+v %v", results, err)
	}
}

func TestConversionIncremental(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(convertTopic("inc"))
	produceRows(t, e, "inc", 120)
	if _, _, err := e.conv.RunOnce(); err != nil {
		t.Fatal(err)
	}
	produceRows(t, e, "inc", 150)
	results, _, err := e.conv.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("second run: %+v %v", results, err)
	}
	if results[0].Messages != 150 {
		t.Fatalf("incremental run re-read old messages: %+v", results[0])
	}
	if e.conv.Converted("inc") != 270 {
		t.Fatalf("converted total: %d", e.conv.Converted("inc"))
	}
	tbl, _, _ := tableobj.Open(e.clock, e.fs, e.cat, "inc_table")
	cur, _, _ := tbl.Current()
	if cur.RowCount != 270 {
		t.Fatalf("table rows: %d", cur.RowCount)
	}
}

func TestDeleteMsgReclaimsStreamStorage(t *testing.T) {
	e := newEnv(t)
	cfg := convertTopic("reclaim")
	cfg.Convert.DeleteMsg = true
	cfg.StreamNum = 1
	e.svc.CreateTopic(cfg)
	produceRows(t, e, "reclaim", 2000)
	results, _, err := e.conv.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("conversion: %v", err)
	}
	if results[0].FreedLog <= 0 {
		t.Fatalf("no stream storage reclaimed: %+v", results[0])
	}
	// The table copy is intact.
	tbl, _, _ := tableobj.Open(e.clock, e.fs, e.cat, "reclaim_table")
	cur, _, _ := tbl.Current()
	if cur.RowCount != 2000 {
		t.Fatalf("table rows: %d", cur.RowCount)
	}
}

func TestMalformedMessagesCounted(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(convertTopic("bad"))
	p := e.svc.Producer("p")
	for i := 0; i < 5; i++ {
		p.Send("bad", []byte("k"), []byte("not-a-row"))
	}
	produceRows(t, e, "bad", 3)
	res, _, err := e.conv.ForceTopic("bad")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3 || res.Malformed != 5 {
		t.Fatalf("result: %+v", res)
	}
}

func TestForceTopicRequiresConversion(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(streamsvc.TopicConfig{Name: "plain"})
	if _, _, err := e.conv.ForceTopic("plain"); err == nil {
		t.Fatal("ForceTopic on non-convert topic succeeded")
	}
	if _, _, err := e.conv.ForceTopic("ghost"); err == nil {
		t.Fatal("ForceTopic on unknown topic succeeded")
	}
}

func TestPlaybackTableToStream(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(convertTopic("src"))
	produceRows(t, e, "src", 150)
	if _, _, err := e.conv.ForceTopic("src"); err != nil {
		t.Fatal(err)
	}
	tbl, _, _ := tableobj.Open(e.clock, e.fs, e.cat, "src_table")
	snap, _, _ := tbl.Current()

	// Play the table back into a fresh topic.
	e.svc.CreateTopic(streamsvc.TopicConfig{Name: "replay", StreamNum: 2})
	n, cost, err := Playback(tbl, snap, e.svc.Producer("pb"), "replay")
	if err != nil || n != 150 || cost <= 0 {
		t.Fatalf("playback: n=%d %v", n, err)
	}
	c := e.svc.Consumer("g")
	c.Subscribe("replay")
	total := 0
	for {
		msgs, _, err := c.Poll(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		for _, m := range msgs {
			if _, err := DecodeRow(m.Value); err != nil {
				t.Fatalf("replayed message not a row: %v", err)
			}
		}
		total += len(msgs)
	}
	if total != 150 {
		t.Fatalf("replayed %d messages", total)
	}
}

func TestArchiverRowToCol(t *testing.T) {
	e := newEnv(t)
	tiers := tiering.NewService(e.clock, tiering.Policy{})
	arch := NewArchiver(e.clock, e.svc, tiers)
	cfg := streamsvc.TopicConfig{
		Name: "hist", StreamNum: 1,
		Archive: streamsvc.ArchiveConfig{Enabled: true, ArchiveBytes: 1 << 10, RowToCol: true},
	}
	e.svc.CreateTopic(cfg)
	p := e.svc.Producer("p")
	for i := 0; i < 500; i++ {
		p.Send("hist", []byte("sensor"), []byte(fmt.Sprintf("reading-%04d", i%10)))
	}
	results, cost, err := arch.RunOnce()
	if err != nil || len(results) != 1 {
		t.Fatalf("archive: %+v %v", results, err)
	}
	r := results[0]
	if r.Messages != 500 || cost <= 0 {
		t.Fatalf("result: %+v", r)
	}
	// Columnar re-encoding compresses the repetitive values.
	if r.ArchivedBytes >= r.RawBytes {
		t.Fatalf("row_2_col did not shrink: %d >= %d", r.ArchivedBytes, r.RawBytes)
	}
	if r.Freed <= 0 {
		t.Fatal("archiving did not reclaim hot storage")
	}
	st := tiers.Stats()
	if st.BytesPerTier[tiering.Archive] != r.ArchivedBytes {
		t.Fatalf("archive tier: %+v", st)
	}
	// Below threshold afterwards: second run is a no-op.
	if results, _, _ := arch.RunOnce(); len(results) != 0 {
		t.Fatalf("re-archived: %+v", results)
	}
}

func TestArchiverExternalExport(t *testing.T) {
	e := newEnv(t)
	tiers := tiering.NewService(e.clock, tiering.Policy{})
	arch := NewArchiver(e.clock, e.svc, tiers)
	e.svc.CreateTopic(streamsvc.TopicConfig{
		Name: "exp", StreamNum: 1,
		Archive: streamsvc.ArchiveConfig{Enabled: true, ArchiveBytes: 100, ExternalURL: "hdfs://legacy/archive"},
	})
	p := e.svc.Producer("p")
	for i := 0; i < 50; i++ {
		p.Send("exp", []byte("k"), []byte("0123456789"))
	}
	results, _, err := arch.RunOnce()
	if err != nil || len(results) != 1 || !results[0].External {
		t.Fatalf("external archive: %+v %v", results, err)
	}
	if arch.ExternalBytes() == 0 {
		t.Fatal("no bytes exported")
	}
	if st := tiers.Stats(); st.BytesPerTier[tiering.Archive] != 0 {
		t.Fatal("external export also landed in archive tier")
	}
}
