package convert

import (
	"fmt"
	"sync"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tiering"
)

// ArchiveResult reports one topic's archiving outcome.
type ArchiveResult struct {
	Topic         string
	Messages      int64
	RawBytes      int64 // stream bytes drained
	ArchivedBytes int64 // bytes landed in the archive (smaller if row_2_col)
	External      bool
	Freed         int64
}

// Archiver automates the archiving of historical stream data (the
// archive block of Figure 8): when a topic accumulates archive_size
// bytes, its drained messages move to the cost-effective archive pool —
// optionally converted to columnar format first — or are exported to an
// external system.
type Archiver struct {
	clock  *sim.Clock
	svc    *streamsvc.Service
	tiers  *tiering.Service
	extDev *sim.Device

	mu       sync.Mutex
	marks    map[string][]int64 // per-topic per-stream archive watermarks
	archived map[string]int64
	extBytes int64
	seq      int64
}

// NewArchiver builds an archiver storing into the given tiering service's
// archive tier.
func NewArchiver(clock *sim.Clock, svc *streamsvc.Service, tiers *tiering.Service) *Archiver {
	return &Archiver{
		clock:    clock,
		svc:      svc,
		tiers:    tiers,
		extDev:   sim.NewDeviceOf("external-archive", sim.Net10GbE),
		marks:    make(map[string][]int64),
		archived: make(map[string]int64),
	}
}

// ExternalBytes reports bytes exported to external archive systems.
func (a *Archiver) ExternalBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.extBytes
}

// RunOnce archives every topic whose unarchived volume passed its
// threshold.
func (a *Archiver) RunOnce() ([]ArchiveResult, time.Duration, error) {
	var out []ArchiveResult
	var total time.Duration
	for _, name := range a.svc.Topics() {
		cfg, err := a.svc.Topic(name)
		if err != nil || !cfg.Archive.Enabled {
			continue
		}
		res, cost, err := a.archiveTopic(name, cfg)
		total += cost
		if err != nil {
			return out, total, err
		}
		if res.Messages > 0 {
			out = append(out, res)
		}
	}
	return out, total, nil
}

func (a *Archiver) archiveTopic(name string, cfg streamsvc.TopicConfig) (ArchiveResult, time.Duration, error) {
	streams, err := a.svc.Streams(name)
	if err != nil {
		return ArchiveResult{}, 0, err
	}
	a.mu.Lock()
	marks := a.marks[name]
	if marks == nil {
		marks = make([]int64, len(streams))
		a.marks[name] = marks
	}
	a.mu.Unlock()

	// Volume check: unarchived bytes across the topic's streams.
	var pendingBytes int64
	for _, o := range streams {
		st := o.Stats()
		if st.End > 0 {
			// Approximate: proportional share of appended bytes.
			pendingBytes += st.Bytes
		}
	}
	a.mu.Lock()
	pendingBytes -= a.archived[name]
	a.mu.Unlock()
	if pendingBytes < cfg.Archive.ArchiveBytes {
		return ArchiveResult{Topic: name}, 0, nil
	}

	res := ArchiveResult{Topic: name, External: cfg.Archive.ExternalURL != ""}
	var cost time.Duration
	var rows []colfile.Row
	rawSchema := colfile.MustSchema("key:string", "value:string", "offset:int64")
	for i, o := range streams {
		if _, err := o.Flush(); err != nil {
			return res, cost, err
		}
		off := marks[i]
		for off < o.End() {
			recs, rc, err := o.Read(off, streamobj.ReadCtrl{MaxRecords: streamobj.SliceRecords})
			if err != nil {
				return res, cost, err
			}
			cost += rc
			if len(recs) == 0 {
				break
			}
			for _, r := range recs {
				res.Messages++
				res.RawBytes += int64(len(r.Key) + len(r.Value))
				if cfg.Archive.RowToCol {
					rows = append(rows, colfile.Row{
						colfile.StringValue(string(r.Key)),
						colfile.StringValue(string(r.Value)),
						colfile.IntValue(r.Offset),
					})
				}
			}
			off = recs[len(recs)-1].Offset + 1
		}
		marks[i] = off
	}

	// Land the archive: columnar re-encode shrinks it (EC+Col-store of
	// Figure 14-d); otherwise raw bytes move as-is.
	archivedBytes := res.RawBytes
	if cfg.Archive.RowToCol && len(rows) > 0 {
		w := colfile.NewWriter(rawSchema, 0)
		for _, r := range rows {
			if err := w.Append(r); err != nil {
				return res, cost, err
			}
		}
		blob, err := w.Finish()
		if err != nil {
			return res, cost, err
		}
		archivedBytes = int64(len(blob))
	}
	res.ArchivedBytes = archivedBytes
	a.mu.Lock()
	a.seq++
	id := fmt.Sprintf("archive/%s/%d", name, a.seq)
	a.mu.Unlock()
	if res.External {
		cost += a.extDev.Write(archivedBytes)
		a.mu.Lock()
		a.extBytes += archivedBytes
		a.mu.Unlock()
	} else {
		a.tiers.Register(id, archivedBytes, tiering.Archive)
	}

	// Archived stream data is reclaimed from the hot tier.
	for i, o := range streams {
		freed, err := o.ReclaimThrough(marks[i])
		if err != nil {
			return res, cost, err
		}
		res.Freed += freed
	}
	a.mu.Lock()
	a.archived[name] += res.RawBytes
	a.mu.Unlock()
	return res, cost, nil
}
