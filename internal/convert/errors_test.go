package convert

import (
	"testing"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tableobj"
)

func TestConverterReusesExistingTable(t *testing.T) {
	// If the target table already exists in the catalog, conversion
	// appends to it instead of failing or recreating.
	e := newEnv(t)
	if _, _, err := tableobj.Create(e.clock, e.fs, e.cat, tableobj.TableMeta{
		Name: "pre_table", Path: "/lake/pre", Schema: logSchema, PartitionColumn: "province",
	}); err != nil {
		t.Fatal(err)
	}
	cfg := streamsvc.TopicConfig{
		Name: "pre", StreamNum: 1,
		Convert: streamsvc.ConvertConfig{
			Enabled: true, TableName: "pre_table", TablePath: "/lake/pre",
			TableSchema: logSchema, PartitionColumn: "province", SplitOffset: 10,
		},
	}
	e.svc.CreateTopic(cfg)
	produceRows(t, e, "pre", 20)
	res, _, err := e.conv.RunOnce()
	if err != nil || len(res) != 1 || res[0].Messages != 20 {
		t.Fatalf("conversion into existing table: %+v %v", res, err)
	}
}

func TestConverterSkipsEmptyTopics(t *testing.T) {
	e := newEnv(t)
	e.svc.CreateTopic(convertTopic("empty"))
	res, cost, err := e.conv.RunOnce()
	if err != nil || len(res) != 0 || cost != 0 {
		t.Fatalf("empty topic conversion: %+v %v %v", res, cost, err)
	}
}

func TestTransformHookApplied(t *testing.T) {
	e := newEnv(t)
	cfg := convertTopic("raw")
	// The transform turns arbitrary text payloads into schema rows and
	// rejects payloads starting with '!'.
	cfg.Convert.Transform = func(key, value []byte) (colfile.Row, bool) {
		if len(value) > 0 && value[0] == '!' {
			return nil, false
		}
		return colfile.Row{
			colfile.StringValue(string(value)),
			colfile.IntValue(int64(len(value))),
			colfile.StringValue("Beijing"),
		}, true
	}
	e.svc.CreateTopic(cfg)
	p := e.svc.Producer("")
	p.Send("raw", []byte("k"), []byte("good-one"))
	p.Send("raw", []byte("k"), []byte("!bad"))
	p.Send("raw", []byte("k"), []byte("good-two"))
	res, _, err := e.conv.ForceTopic("raw")
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 2 || res.Malformed != 1 {
		t.Fatalf("transform results: %+v", res)
	}
}

func TestTimeTriggerResetsAfterRun(t *testing.T) {
	e := newEnv(t)
	cfg := convertTopic("tt")
	cfg.Convert.SplitOffset = 1 << 40
	cfg.Convert.SplitTime = 10 * time.Minute
	e.svc.CreateTopic(cfg)
	produceRows(t, e, "tt", 3)
	// The converter's timer starts when it first observes the topic.
	if res, _, _ := e.conv.RunOnce(); len(res) != 0 {
		t.Fatal("converted before the timer started")
	}
	e.clock.Advance(11 * time.Minute)
	if res, _, _ := e.conv.RunOnce(); len(res) != 1 {
		t.Fatal("first time trigger missed")
	}
	// Immediately after, the timer restarts: nothing converts.
	produceRows(t, e, "tt", 2)
	if res, _, _ := e.conv.RunOnce(); len(res) != 0 {
		t.Fatal("converted before the timer elapsed again")
	}
	e.clock.Advance(11 * time.Minute)
	res, _, _ := e.conv.RunOnce()
	if len(res) != 1 || res[0].Messages != 2 {
		t.Fatalf("second time trigger: %+v", res)
	}
}
