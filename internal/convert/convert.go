// Package convert implements the automatic stream-to-table conversion of
// Section V-B: a background service that applies a topic's table schema
// to accumulated stream messages and writes them as table object records,
// triggered by message count (split_offset) or elapsed time (split_time).
// With delete_msg set, converted stream slices are reclaimed so one copy
// of the data serves both stream and batch processing — the storage
// saving at the heart of Table 1. The reverse conversion (table records
// played back as stream messages) is also provided.
package convert

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/rowcodec"
	"streamlake/internal/sim"
	"streamlake/internal/streamobj"
	"streamlake/internal/streamsvc"
	"streamlake/internal/tableobj"
)

// EncodeRow serializes a structured row as a stream message value, the
// payload format the converter expects.
func EncodeRow(schema colfile.Schema, row colfile.Row) ([]byte, error) {
	return rowcodec.Encode(schema, []colfile.Row{row})
}

// DecodeRow parses a message value produced by EncodeRow.
func DecodeRow(data []byte) (colfile.Row, error) {
	_, rows, err := rowcodec.Decode(data)
	if err != nil {
		return nil, err
	}
	if len(rows) != 1 {
		return nil, fmt.Errorf("convert: message carries %d rows, want 1", len(rows))
	}
	return rows[0], nil
}

// Result reports one topic's conversion outcome.
type Result struct {
	Topic     string
	Messages  int64
	Files     int
	FreedLog  int64 // logical stream bytes reclaimed (delete_msg)
	Malformed int64 // messages that failed schema application
}

// Converter is the background conversion service.
type Converter struct {
	clock *sim.Clock
	svc   *streamsvc.Service
	fs    *tableobj.FileStore
	cat   *tableobj.Catalog

	mu    sync.Mutex
	state map[string]*topicState
}

type topicState struct {
	table      *tableobj.Table
	watermarks []int64
	lastRun    time.Duration
	converted  int64
}

// New builds a converter over the streaming service and table storage.
func New(clock *sim.Clock, svc *streamsvc.Service, fs *tableobj.FileStore, cat *tableobj.Catalog) *Converter {
	return &Converter{clock: clock, svc: svc, fs: fs, cat: cat, state: make(map[string]*topicState)}
}

// Converted reports how many messages have been converted for a topic.
func (c *Converter) Converted(topic string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.state[topic]; st != nil {
		return st.converted
	}
	return 0
}

// RunOnce evaluates every convert-enabled topic's trigger and converts
// the ones that fire, returning per-topic results and the total modelled
// cost.
func (c *Converter) RunOnce() ([]Result, time.Duration, error) {
	var results []Result
	var total time.Duration
	for _, name := range c.svc.Topics() {
		cfg, err := c.svc.Topic(name)
		if err != nil || !cfg.Convert.Enabled {
			continue
		}
		res, cost, err := c.convertTopic(name, cfg)
		total += cost
		if err != nil {
			return results, total, err
		}
		if res.Messages > 0 {
			results = append(results, res)
		}
	}
	return results, total, nil
}

// ForceTopic converts a topic immediately, ignoring the triggers (used
// by flush-on-shutdown and tests).
func (c *Converter) ForceTopic(name string) (Result, time.Duration, error) {
	cfg, err := c.svc.Topic(name)
	if err != nil {
		return Result{}, 0, err
	}
	if !cfg.Convert.Enabled {
		return Result{}, 0, fmt.Errorf("convert: topic %s has conversion disabled", name)
	}
	return c.doConvert(name, cfg)
}

func (c *Converter) convertTopic(name string, cfg streamsvc.TopicConfig) (Result, time.Duration, error) {
	streams, err := c.svc.Streams(name)
	if err != nil {
		return Result{}, 0, err
	}
	c.mu.Lock()
	st := c.state[name]
	if st == nil {
		st = &topicState{watermarks: make([]int64, len(streams)), lastRun: c.clock.Now()}
		c.state[name] = st
	}
	var pending int64
	for i, o := range streams {
		pending += o.End() - st.watermarks[i]
	}
	elapsed := c.clock.Now() - st.lastRun
	c.mu.Unlock()
	if pending == 0 {
		return Result{Topic: name}, 0, nil
	}
	if pending < cfg.Convert.SplitOffset && elapsed < cfg.Convert.SplitTime {
		return Result{Topic: name}, 0, nil
	}
	return c.doConvert(name, cfg)
}

func (c *Converter) doConvert(name string, cfg streamsvc.TopicConfig) (Result, time.Duration, error) {
	streams, err := c.svc.Streams(name)
	if err != nil {
		return Result{}, 0, err
	}
	c.mu.Lock()
	st := c.state[name]
	if st == nil {
		st = &topicState{watermarks: make([]int64, len(streams)), lastRun: c.clock.Now()}
		c.state[name] = st
	}
	c.mu.Unlock()

	var cost time.Duration
	tbl, tcost, err := c.ensureTable(st, cfg)
	cost += tcost
	if err != nil {
		return Result{}, cost, err
	}

	res := Result{Topic: name}
	byPartition := map[string][]colfile.Row{}
	newMarks := make([]int64, len(streams))
	for i, o := range streams {
		// Drain the open buffer so conversion sees everything.
		if _, err := o.Flush(); err != nil {
			return res, cost, err
		}
		off := st.watermarks[i]
		for off < o.End() {
			recs, rc, err := o.Read(off, streamobj.ReadCtrl{MaxRecords: streamobj.SliceRecords})
			if err != nil {
				return res, cost, err
			}
			cost += rc
			if len(recs) == 0 {
				break
			}
			for _, r := range recs {
				var row colfile.Row
				if cfg.Convert.Transform != nil {
					var ok bool
					row, ok = cfg.Convert.Transform(r.Key, r.Value)
					if !ok {
						res.Malformed++
						continue
					}
				} else {
					var derr error
					row, derr = DecodeRow(r.Value)
					if derr != nil {
						res.Malformed++
						continue
					}
				}
				if len(row) != cfg.Convert.TableSchema.NumFields() {
					res.Malformed++
					continue
				}
				byPartition[tbl.PartitionFor(row)] = append(byPartition[tbl.PartitionFor(row)], row)
				res.Messages++
			}
			off = recs[len(recs)-1].Offset + 1
		}
		newMarks[i] = off
	}
	if res.Messages > 0 {
		x, err := tbl.Begin()
		if err != nil {
			return res, cost, err
		}
		for _, rows := range byPartition {
			if _, err := x.WriteRows(rows); err != nil {
				return res, cost, err
			}
			res.Files++
		}
		_, err = x.Commit()
		for errors.Is(err, tableobj.ErrConflict) {
			_, err = x.Retry()
		}
		if err != nil {
			return res, cost, err
		}
		cost += x.Cost()
	}
	c.mu.Lock()
	st.watermarks = newMarks
	st.lastRun = c.clock.Now()
	st.converted += res.Messages
	c.mu.Unlock()

	if cfg.Convert.DeleteMsg {
		for i, o := range streams {
			freed, err := o.ReclaimThrough(newMarks[i])
			if err != nil {
				return res, cost, err
			}
			res.FreedLog += freed
		}
	}
	return res, cost, nil
}

func (c *Converter) ensureTable(st *topicState, cfg streamsvc.TopicConfig) (*tableobj.Table, time.Duration, error) {
	c.mu.Lock()
	tbl := st.table
	c.mu.Unlock()
	if tbl != nil {
		return tbl, 0, nil
	}
	tbl, cost, err := tableobj.Open(c.clock, c.fs, c.cat, cfg.Convert.TableName)
	if errors.Is(err, tableobj.ErrUnknownTable) {
		tbl, cost, err = tableobj.Create(c.clock, c.fs, c.cat, tableobj.TableMeta{
			Name:            cfg.Convert.TableName,
			Path:            cfg.Convert.TablePath,
			Schema:          cfg.Convert.TableSchema,
			PartitionColumn: cfg.Convert.PartitionColumn,
		})
	}
	if err != nil {
		return nil, cost, err
	}
	c.mu.Lock()
	st.table = tbl
	c.mu.Unlock()
	return tbl, cost, nil
}

// Playback performs the reverse conversion (Section V-B): the rows of a
// table snapshot are re-published as stream messages to a topic, for
// data replay. It returns the number of messages produced.
func Playback(tbl *tableobj.Table, snap tableobj.Snapshot, producer *streamsvc.Producer, topic string) (int64, time.Duration, error) {
	var n int64
	var cost time.Duration
	schema := tbl.Schema()
	for _, f := range snap.Files {
		r, rc, err := tbl.ReadFile(f)
		if err != nil {
			return n, cost, err
		}
		cost += rc
		var scanErr error
		r.Scan(func(row colfile.Row) bool {
			val, err := EncodeRow(schema, row)
			if err != nil {
				scanErr = err
				return false
			}
			key := []byte(row[0].String())
			_, sc, err := producer.Send(topic, key, val)
			if err != nil {
				scanErr = err
				return false
			}
			cost += sc
			n++
			return true
		})
		if scanErr != nil {
			return n, cost, scanErr
		}
	}
	return n, cost, nil
}
