package shard

import (
	"testing"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func TestMapOwnerWithNoNodes(t *testing.T) {
	m := NewMap(nil)
	if m.Owner(0) != "" {
		t.Fatal("empty map produced an owner")
	}
}

func TestSpaceReadUnknownLog(t *testing.T) {
	sp := newSpace(t)
	if _, _, err := sp.Read(Loc{Log: 999, Len: 4}); err == nil {
		t.Fatal("read from unknown log succeeded")
	}
}

func TestDestroyLogUnknown(t *testing.T) {
	sp := newSpace(t)
	if err := sp.DestroyLog(12345); err == nil {
		t.Fatal("destroying unknown log succeeded")
	}
}

func TestDestroyLogRemovesFromChain(t *testing.T) {
	p := pool.New("dlr", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	sp := NewSpace(plog.NewManager(p, 1<<20), plog.ReplicateN(2))
	loc, _, err := sp.Append(5, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.DestroyLog(loc.Log); err != nil {
		t.Fatal(err)
	}
	if got := sp.Chain(5); len(got) != 0 {
		t.Fatalf("chain after destroy: %v", got)
	}
	// Appends after destroy roll a fresh log.
	loc2, _, err := sp.Append(5, []byte("again"))
	if err != nil {
		t.Fatal(err)
	}
	if loc2.Log == loc.Log {
		t.Fatal("destroyed log id reused")
	}
}

func TestSpaceAppendAfterSeal(t *testing.T) {
	p := pool.New("seal", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	mgr := plog.NewManager(p, 1<<20)
	sp := NewSpace(mgr, plog.ReplicateN(2))
	loc, _, err := sp.Append(1, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	// Seal the open log out from under the space; the next append must
	// roll to a new log rather than fail.
	mgr.Get(loc.Log).Seal()
	loc2, _, err := sp.Append(1, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if loc2.Log == loc.Log {
		t.Fatal("append went to a sealed log")
	}
	// Both records readable.
	if _, _, err := sp.Read(loc); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Read(loc2); err != nil {
		t.Fatal(err)
	}
}
