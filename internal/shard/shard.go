// Package shard implements the distributed hash table of Figure 4-d:
// data slices are distributed evenly over 4096 logical shards, each of
// which manages its storage space through a chain of PLogs. The package
// also implements the serving-side shard→node map whose metadata-only
// rebalance is what gives StreamLake its elasticity claim (Figure 14-c):
// scaling the serving layer reassigns shard ownership without moving
// data.
package shard

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"sync"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/plog"
	"streamlake/internal/resil"
)

// NumShards is the paper's fixed logical shard count.
const NumShards = 4096

// ID is a logical shard identifier in [0, NumShards).
type ID uint16

// ForKey maps a key to its shard by FNV-1a hash, the even-distribution
// step of Figure 4-d.
func ForKey(key []byte) ID {
	h := fnv.New32a()
	h.Write(key)
	return ID(h.Sum32() % NumShards)
}

// rendezvous computes the HRW weight of (node, shard); the owner of a
// shard is the node with the highest weight, which changes for only
// ~1/n of shards when a node joins or leaves.
func rendezvous(node string, s ID) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{byte(s >> 8), byte(s)})
	// FNV alone lacks avalanche in the high bits, which HRW's max
	// comparison is sensitive to; finish with a splitmix64 mix.
	z := h.Sum64() + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Map assigns shards to serving nodes with rendezvous hashing.
type Map struct {
	mu      sync.RWMutex
	nodes   []string
	version int64
}

// NewMap builds a map over the given serving nodes.
func NewMap(nodes []string) *Map {
	m := &Map{}
	m.SetNodes(nodes)
	return m
}

// Owner returns the node currently serving shard s, or "" with no nodes.
func (m *Map) Owner(s ID) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ownerLocked(s)
}

func (m *Map) ownerLocked(s ID) string {
	var best string
	var bestW uint64
	for _, n := range m.nodes {
		if w := rendezvous(n, s); best == "" || w > bestW {
			best, bestW = n, w
		}
	}
	return best
}

// Nodes returns a copy of the current node set.
func (m *Map) Nodes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.nodes...)
}

// Version returns the map's topology version, bumped on every change.
func (m *Map) Version() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// SetNodes replaces the node set and returns how many shards changed
// owner — the metadata-only "migration" of the disaggregated design.
func (m *Map) SetNodes(nodes []string) (moved int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := make([]string, NumShards)
	if len(m.nodes) > 0 {
		for s := 0; s < NumShards; s++ {
			old[s] = m.ownerLocked(ID(s))
		}
	}
	m.nodes = append([]string(nil), nodes...)
	m.version++
	for s := 0; s < NumShards; s++ {
		if old[s] != m.ownerLocked(ID(s)) {
			moved++
		}
	}
	return moved
}

// Loc addresses a record inside the shard space: which PLog, where, and
// how long.
type Loc struct {
	Shard  ID
	Log    plog.ID
	Offset int64
	Len    int32
}

// Space manages per-shard storage through chains of PLogs: appends go to
// the shard's open log, rolling to a fresh one when the 128 MB address
// space fills; sealed logs stay readable.
type Space struct {
	mgr *plog.Manager
	red plog.Redundancy

	mu     sync.Mutex
	open   map[ID]*plog.PLog
	chains map[ID][]plog.ID
}

// NewSpace builds a shard space creating PLogs from mgr with the given
// redundancy.
func NewSpace(mgr *plog.Manager, red plog.Redundancy) *Space {
	return &Space{
		mgr:    mgr,
		red:    red,
		open:   make(map[ID]*plog.PLog),
		chains: make(map[ID][]plog.ID),
	}
}

// Append persists data in shard s, rolling the PLog chain as needed, and
// returns the record's location and the modelled persistence latency.
func (sp *Space) Append(s ID, data []byte) (Loc, time.Duration, error) {
	return sp.AppendSpan(s, data, nil)
}

// AppendSpan is Append with tracing: the PLog append is recorded as a
// plog.append child of parent, annotated with the shard and log it
// landed in. A nil span traces nothing.
func (sp *Space) AppendSpan(s ID, data []byte, parent *obs.Span) (Loc, time.Duration, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.appendOneLocked(s, data, parent)
}

// AppendBatch persists several payloads in shard s as one group commit:
// every payload keeps its own offset and extent (so reads, checksums,
// and replay are indistinguishable from individual appends) but the
// whole batch costs one device write per placement copy
// (plog.AppendBatch). The chain rolls like AppendSpan; a batch too
// large even for a fresh log falls back to payload-at-a-time appends,
// which can split it across the roll. Locs are returned in payload
// order.
func (sp *Space) AppendBatch(s ID, payloads [][]byte, parent *obs.Span) ([]Loc, time.Duration, error) {
	if len(payloads) == 0 {
		return nil, 0, nil
	}
	if len(payloads) == 1 {
		loc, cost, err := sp.AppendSpan(s, payloads[0], parent)
		if err != nil {
			return nil, 0, err
		}
		return []Loc{loc}, cost, nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	l := sp.open[s]
	if l == nil {
		nl, err := sp.mgr.Create(sp.red)
		if err != nil {
			return nil, 0, err
		}
		l = nl
		sp.open[s] = l
		sp.chains[s] = append(sp.chains[s], l.ID())
	}
	var span *obs.Span
	if parent != nil {
		span = parent.Child("plog.append")
		span.SetAttr("shard", strconv.Itoa(int(s)))
		span.SetAttr("batch", strconv.Itoa(len(payloads)))
	}
	offs, cost, err := l.AppendBatch(payloads, span)
	if err == plog.ErrFull || err == plog.ErrSealed {
		l.Seal()
		nl, cerr := sp.mgr.Create(sp.red)
		if cerr != nil {
			return nil, 0, cerr
		}
		sp.open[s] = nl
		sp.chains[s] = append(sp.chains[s], nl.ID())
		l = nl
		offs, cost, err = l.AppendBatch(payloads, span)
	}
	if err == plog.ErrFull {
		// The batch overflows even a fresh log: coalescing is off the
		// table, so fall back to one append per payload (splitting
		// across the chain as each log fills). parent is reused so each
		// append traces as its own plog.append child.
		if span != nil {
			span.End(0)
		}
		locs := make([]Loc, len(payloads))
		var total time.Duration
		for i, p := range payloads {
			loc, c, aerr := sp.appendOneLocked(s, p, parent)
			if aerr != nil {
				return nil, total, aerr
			}
			locs[i] = loc
			if c > total {
				total = c
			}
		}
		return locs, total, nil
	}
	if err != nil {
		return nil, 0, err
	}
	if span != nil {
		span.SetAttr("log", strconv.FormatInt(int64(l.ID()), 10))
		span.End(cost)
		parent.Advance(cost)
	}
	locs := make([]Loc, len(payloads))
	for i, off := range offs {
		locs[i] = Loc{Shard: s, Log: l.ID(), Offset: off, Len: int32(len(payloads[i]))}
	}
	return locs, cost, nil
}

// appendOneLocked is AppendSpan's body with sp.mu already held — the
// oversized-batch fallback path of AppendBatch.
func (sp *Space) appendOneLocked(s ID, data []byte, parent *obs.Span) (Loc, time.Duration, error) {
	l := sp.open[s]
	if l == nil {
		nl, err := sp.mgr.Create(sp.red)
		if err != nil {
			return Loc{}, 0, err
		}
		l = nl
		sp.open[s] = l
		sp.chains[s] = append(sp.chains[s], l.ID())
	}
	var span *obs.Span
	if parent != nil {
		span = parent.Child("plog.append")
		span.SetAttr("shard", strconv.Itoa(int(s)))
	}
	off, cost, err := l.AppendSpan(data, span)
	if err == plog.ErrFull || err == plog.ErrSealed {
		l.Seal()
		nl, cerr := sp.mgr.Create(sp.red)
		if cerr != nil {
			return Loc{}, 0, cerr
		}
		sp.open[s] = nl
		sp.chains[s] = append(sp.chains[s], nl.ID())
		l = nl
		off, cost, err = l.AppendSpan(data, span)
	}
	if err != nil {
		return Loc{}, 0, err
	}
	if span != nil {
		span.SetAttr("log", strconv.FormatInt(int64(l.ID()), 10))
		span.End(cost)
		parent.Advance(cost)
	}
	return Loc{Shard: s, Log: l.ID(), Offset: off, Len: int32(len(data))}, cost, nil
}

// Read fetches the record at loc.
func (sp *Space) Read(loc Loc) ([]byte, time.Duration, error) {
	return sp.ReadCtx(loc, nil)
}

// ReadCtx is Read under a resilience context: the deadline check and
// cost charging happen in the PLog (see plog.ReadCtx). A nil rc makes
// it identical to Read.
func (sp *Space) ReadCtx(loc Loc, rc *resil.Ctx) ([]byte, time.Duration, error) {
	l := sp.mgr.Get(loc.Log)
	if l == nil {
		return nil, 0, fmt.Errorf("shard: no PLog %d", loc.Log)
	}
	return l.ReadCtx(loc.Offset, int64(loc.Len), rc)
}

// FullyRedundant reports whether every PLog across the space's chains
// holds its full redundancy (no stale replicas or shards awaiting
// repair) — the health signal stream objects surface after degraded
// writes.
func (sp *Space) FullyRedundant() bool {
	return sp.StaleBytes() == 0
}

// StaleBytes sums the missing redundancy bytes across the space's logs.
func (sp *Space) StaleBytes() int64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var total int64
	for _, chain := range sp.chains {
		for _, id := range chain {
			if l := sp.mgr.Get(id); l != nil {
				total += l.StaleBytes()
			}
		}
	}
	return total
}

// Chain returns the PLog chain of shard s, oldest first.
func (sp *Space) Chain(s ID) []plog.ID {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return append([]plog.ID(nil), sp.chains[s]...)
}

// DestroyLog destroys one PLog in the space, removing it from its
// chain — the reclamation step after stream-to-table conversion has
// drained a sealed log.
func (sp *Space) DestroyLog(id plog.ID) error {
	sp.mu.Lock()
	for s, chain := range sp.chains {
		for i, cid := range chain {
			if cid == id {
				sp.chains[s] = append(chain[:i:i], chain[i+1:]...)
				if sp.open[s] != nil && sp.open[s].ID() == id {
					delete(sp.open, s)
				}
				sp.mu.Unlock()
				return sp.mgr.Destroy(id)
			}
		}
	}
	sp.mu.Unlock()
	return fmt.Errorf("shard: log %d not in any chain", id)
}

// Drop destroys every PLog in shard s's chain (used when a stream object
// is destroyed or its data converted to a table and reclaimed).
func (sp *Space) Drop(s ID) error {
	sp.mu.Lock()
	chain := sp.chains[s]
	delete(sp.chains, s)
	delete(sp.open, s)
	sp.mu.Unlock()
	for _, id := range chain {
		if err := sp.mgr.Destroy(id); err != nil {
			return err
		}
	}
	return nil
}
