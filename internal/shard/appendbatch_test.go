package shard

import (
	"bytes"
	"testing"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newBatchSpace(t *testing.T, logCap int64) *Space {
	t.Helper()
	p := pool.New("shard-batch", sim.NewClock(), sim.NVMeSSD, 4, 4<<20)
	return NewSpace(plog.NewManager(p, logCap), plog.ReplicateN(2))
}

func batchPayloads(sizes ...int) [][]byte {
	out := make([][]byte, len(sizes))
	for i, n := range sizes {
		out[i] = bytes.Repeat([]byte{byte(i + 1)}, n)
	}
	return out
}

func readBack(t *testing.T, sp *Space, locs []Loc, payloads [][]byte) {
	t.Helper()
	for i, loc := range locs {
		got, _, err := sp.Read(loc)
		if err != nil {
			t.Fatalf("read loc %d: %v", i, err)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("loc %d: wrong bytes", i)
		}
	}
}

func TestAppendBatchBasic(t *testing.T) {
	sp := newBatchSpace(t, 1<<20)
	payloads := batchPayloads(100, 1, 4096)
	locs, _, err := sp.AppendBatch(ForKey([]byte("k")), payloads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != len(payloads) {
		t.Fatalf("locs: %d", len(locs))
	}
	for _, loc := range locs[1:] {
		if loc.Log != locs[0].Log {
			t.Fatal("batch split across logs without pressure")
		}
	}
	readBack(t, sp, locs, payloads)
}

// A batch that overflows the open log seals it and lands whole on a
// fresh one — the chain-roll path.
func TestAppendBatchRollsChain(t *testing.T) {
	sp := newBatchSpace(t, 4096)
	s := ForKey([]byte("roll"))
	if _, _, err := sp.Append(s, bytes.Repeat([]byte{9}, 3500)); err != nil {
		t.Fatal(err)
	}
	payloads := batchPayloads(1000, 1000, 1000)
	locs, _, err := sp.AppendBatch(s, payloads, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(sp.Chain(s)); n != 2 {
		t.Fatalf("chain length %d, want 2 after the roll", n)
	}
	readBack(t, sp, locs, payloads)
}

// A batch too large even for a fresh log falls back to per-payload
// appends, splitting across the chain rather than failing.
func TestAppendBatchOversizedFallsBack(t *testing.T) {
	sp := newBatchSpace(t, 4096)
	s := ForKey([]byte("big"))
	payloads := batchPayloads(3000, 3000, 3000)
	locs, _, err := sp.AppendBatch(s, payloads, nil)
	if err != nil {
		t.Fatalf("oversized batch should fall back, got %v", err)
	}
	if len(sp.Chain(s)) < 2 {
		t.Fatal("fallback never split the chain")
	}
	readBack(t, sp, locs, payloads)
}

func TestAppendBatchEmptyAndSingleton(t *testing.T) {
	sp := newBatchSpace(t, 1<<20)
	if locs, _, err := sp.AppendBatch(0, nil, nil); err != nil || locs != nil {
		t.Fatalf("empty batch: %v %v", locs, err)
	}
	payloads := batchPayloads(77)
	locs, _, err := sp.AppendBatch(1, payloads, nil)
	if err != nil || len(locs) != 1 {
		t.Fatalf("singleton batch: %v", err)
	}
	readBack(t, sp, locs, payloads)
}
