package shard

import (
	"fmt"
	"testing"
	"testing/quick"

	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func TestForKeyRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		s := ForKey([]byte(fmt.Sprintf("key-%d", i)))
		if s >= NumShards {
			t.Fatalf("shard %d out of range", s)
		}
	}
}

func TestForKeyEvenDistribution(t *testing.T) {
	counts := make(map[ID]int)
	n := 100_000
	for i := 0; i < n; i++ {
		counts[ForKey([]byte(fmt.Sprintf("topic/%d/key-%d", i%7, i)))]++
	}
	// With 100k keys over 4096 shards, expect ~24 per shard; no shard
	// should be wildly hot.
	for s, c := range counts {
		if c > 100 {
			t.Fatalf("shard %d has %d keys (hot spot)", s, c)
		}
	}
	if len(counts) < 4000 {
		t.Fatalf("only %d shards used", len(counts))
	}
}

func TestForKeyDeterministic(t *testing.T) {
	if ForKey([]byte("abc")) != ForKey([]byte("abc")) {
		t.Fatal("ForKey not deterministic")
	}
}

func TestMapOwnerStable(t *testing.T) {
	m := NewMap([]string{"n1", "n2", "n3"})
	for s := ID(0); s < 100; s++ {
		if m.Owner(s) != m.Owner(s) {
			t.Fatal("owner not stable")
		}
		if m.Owner(s) == "" {
			t.Fatal("no owner assigned")
		}
	}
}

func TestMapRebalanceIsMinimal(t *testing.T) {
	// Rendezvous hashing: adding one node to n nodes should move about
	// NumShards/(n+1) shards, far less than a full reshuffle.
	m := NewMap([]string{"n1", "n2", "n3"})
	moved := m.SetNodes([]string{"n1", "n2", "n3", "n4"})
	want := NumShards / 4
	if moved < want/2 || moved > want*2 {
		t.Fatalf("adding 4th node moved %d shards, want ~%d", moved, want)
	}
	// Removing it moves the same shards back.
	movedBack := m.SetNodes([]string{"n1", "n2", "n3"})
	if movedBack != moved {
		t.Fatalf("remove moved %d, add moved %d", movedBack, moved)
	}
}

func TestMapVersionBumps(t *testing.T) {
	m := NewMap([]string{"a"})
	v := m.Version()
	m.SetNodes([]string{"a", "b"})
	if m.Version() <= v {
		t.Fatal("version did not advance")
	}
	if got := m.Nodes(); len(got) != 2 {
		t.Fatalf("nodes: %v", got)
	}
}

func TestMapBalance(t *testing.T) {
	m := NewMap([]string{"n1", "n2", "n3", "n4"})
	counts := map[string]int{}
	for s := 0; s < NumShards; s++ {
		counts[m.Owner(ID(s))]++
	}
	for n, c := range counts {
		if c < NumShards/4-300 || c > NumShards/4+300 {
			t.Fatalf("node %s owns %d shards (imbalanced)", n, c)
		}
	}
}

func newSpace(t *testing.T) *Space {
	t.Helper()
	p := pool.New("shardtest", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	return NewSpace(plog.NewManager(p, 4096), plog.ReplicateN(2))
}

func TestSpaceAppendRead(t *testing.T) {
	sp := newSpace(t)
	loc, cost, err := sp.Append(7, []byte("record-1"))
	if err != nil || cost <= 0 {
		t.Fatalf("append: %v", err)
	}
	got, _, err := sp.Read(loc)
	if err != nil || string(got) != "record-1" {
		t.Fatalf("read: %q %v", got, err)
	}
}

func TestSpaceRollsPLogChain(t *testing.T) {
	sp := newSpace(t) // 4096-byte PLogs
	var locs []Loc
	for i := 0; i < 10; i++ {
		loc, _, err := sp.Append(3, make([]byte, 1000))
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	chain := sp.Chain(3)
	if len(chain) < 3 {
		t.Fatalf("chain length %d, want rolling", len(chain))
	}
	// Every record still readable across the chain.
	for i, loc := range locs {
		if _, _, err := sp.Read(loc); err != nil {
			t.Fatalf("read %d across chain: %v", i, err)
		}
	}
	// All but the open log are sealed.
	for _, id := range chain[:len(chain)-1] {
		if l := spLog(t, sp, id); !l.Sealed() {
			t.Fatalf("log %d in chain not sealed", id)
		}
	}
}

func spLog(t *testing.T, sp *Space, id plog.ID) *plog.PLog {
	t.Helper()
	l := sp.mgr.Get(id)
	if l == nil {
		t.Fatalf("no plog %d", id)
	}
	return l
}

func TestSpaceDrop(t *testing.T) {
	sp := newSpace(t)
	loc, _, err := sp.Append(9, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Drop(9); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Read(loc); err == nil {
		t.Fatal("read after drop succeeded")
	}
	if got := sp.Chain(9); len(got) != 0 {
		t.Fatalf("chain after drop: %v", got)
	}
	if sp.mgr.Count() != 0 {
		t.Fatalf("manager still holds %d logs", sp.mgr.Count())
	}
}

func TestSpaceShardsIsolated(t *testing.T) {
	sp := newSpace(t)
	l1, _, _ := sp.Append(1, []byte("one"))
	l2, _, _ := sp.Append(2, []byte("two"))
	if l1.Log == l2.Log {
		t.Fatal("shards share a PLog")
	}
}

func TestQuickRendezvousConsistency(t *testing.T) {
	// Property: a shard's owner changes only when its owner node leaves.
	f := func(shardSel uint16) bool {
		s := ID(shardSel % NumShards)
		m := NewMap([]string{"a", "b", "c", "d"})
		before := m.Owner(s)
		// Remove a node that is NOT the owner.
		var rest []string
		removed := false
		for _, n := range []string{"a", "b", "c", "d"} {
			if !removed && n != before {
				removed = true
				continue
			}
			rest = append(rest, n)
		}
		m.SetNodes(rest)
		return m.Owner(s) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
