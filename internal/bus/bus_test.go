package bus

import (
	"testing"
	"time"
)

func TestRDMABeatsTCP(t *testing.T) {
	r := New(Config{Path: RDMA})
	c := New(Config{Path: TCP})
	n := int64(1024)
	if rd, td := r.Send(n, Normal), c.Send(n, Normal); rd >= td {
		t.Fatalf("rdma %v >= tcp %v", rd, td)
	}
	if r.PerMessageFixedCost() >= c.PerMessageFixedCost() {
		t.Fatal("rdma fixed cost should be lower")
	}
}

func TestAggregationAmortizesFixedCost(t *testing.T) {
	agg := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	raw := New(Config{Path: TCP})
	var aggTotal, rawTotal time.Duration
	for i := 0; i < 160; i++ {
		aggTotal += agg.Send(512, Normal)
		rawTotal += raw.Send(512, Normal)
	}
	// 160 small sends: aggregated pays fixed cost 10 times, raw 160
	// times. Expect a large gap.
	if aggTotal*4 > rawTotal {
		t.Fatalf("aggregation saved too little: agg=%v raw=%v", aggTotal, rawTotal)
	}
	st := agg.Stats()
	if st.Batches != 10 || st.Aggregated != 150 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAggregationSkipsLargeIO(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, SmallIOBytes: 1024})
	for i := 0; i < 100; i++ {
		b.Send(1<<20, Normal) // 1 MiB: not small I/O
	}
	if st := b.Stats(); st.Aggregated != 0 {
		t.Fatalf("large I/O was aggregated: %+v", st)
	}
}

func TestPriorityScheduling(t *testing.T) {
	b := New(Config{Path: TCP})
	// Load the bus with high-priority traffic.
	b.Send(10<<20, High)
	lo := b.Send(1024, Low)
	b.Send(10<<20, High)
	no := b.Send(1024, Normal)
	b.Send(10<<20, High)
	hi := b.Send(1024, High)
	if !(hi < no && no < lo) {
		t.Fatalf("priority ordering violated: high=%v normal=%v low=%v", hi, no, lo)
	}
	if b.Stats().QueueDelay <= 0 {
		t.Fatal("no queue delay recorded")
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(Config{Path: RDMA})
	b.Send(100, Normal)
	b.Send(200, Normal)
	st := b.Stats()
	if st.Sends != 2 || st.Bytes != 300 {
		t.Fatalf("stats: %+v", st)
	}
	if b.Link().Stats().WriteBytes != 300 {
		t.Fatalf("link bytes: %d", b.Link().Stats().WriteBytes)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true})
	if b.cfg.AggregationCount != 16 || b.cfg.SmallIOBytes != 64<<10 {
		t.Fatalf("defaults: %+v", b.cfg)
	}
}
