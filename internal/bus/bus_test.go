package bus

import (
	"testing"
	"time"
)

func TestRDMABeatsTCP(t *testing.T) {
	r := New(Config{Path: RDMA})
	c := New(Config{Path: TCP})
	n := int64(1024)
	if rd, td := r.Send(n, Normal), c.Send(n, Normal); rd >= td {
		t.Fatalf("rdma %v >= tcp %v", rd, td)
	}
	if r.PerMessageFixedCost() >= c.PerMessageFixedCost() {
		t.Fatal("rdma fixed cost should be lower")
	}
}

func TestAggregationAmortizesFixedCost(t *testing.T) {
	agg := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	raw := New(Config{Path: TCP})
	var aggTotal, rawTotal time.Duration
	for i := 0; i < 160; i++ {
		aggTotal += agg.Send(512, Normal)
		rawTotal += raw.Send(512, Normal)
	}
	// 160 small sends: aggregated pays fixed cost 10 times, raw 160
	// times. Expect a large gap.
	if aggTotal*4 > rawTotal {
		t.Fatalf("aggregation saved too little: agg=%v raw=%v", aggTotal, rawTotal)
	}
	st := agg.Stats()
	if st.Batches != 10 || st.Aggregated != 150 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAggregationSkipsLargeIO(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, SmallIOBytes: 1024})
	for i := 0; i < 100; i++ {
		b.Send(1<<20, Normal) // 1 MiB: not small I/O
	}
	if st := b.Stats(); st.Aggregated != 0 {
		t.Fatalf("large I/O was aggregated: %+v", st)
	}
}

func TestPriorityScheduling(t *testing.T) {
	b := New(Config{Path: TCP})
	// Load the bus with high-priority traffic.
	b.Send(10<<20, High)
	lo := b.Send(1024, Low)
	b.Send(10<<20, High)
	no := b.Send(1024, Normal)
	b.Send(10<<20, High)
	hi := b.Send(1024, High)
	if !(hi < no && no < lo) {
		t.Fatalf("priority ordering violated: high=%v normal=%v low=%v", hi, no, lo)
	}
	if b.Stats().QueueDelay <= 0 {
		t.Fatal("no queue delay recorded")
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(Config{Path: RDMA})
	b.Send(100, Normal)
	b.Send(200, Normal)
	st := b.Stats()
	if st.Sends != 2 || st.Bytes != 300 {
		t.Fatalf("stats: %+v", st)
	}
	if b.Link().Stats().WriteBytes != 300 {
		t.Fatalf("link bytes: %d", b.Link().Stats().WriteBytes)
	}
}

func TestFlushChargesPartialBatch(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	fixed := b.Link().Spec().WriteLatency
	// 5 small sends never fill the 16-slot batch, so all of them defer
	// the fixed cost and the batch stays open until flushed.
	for i := 0; i < 5; i++ {
		b.Send(512, Normal)
	}
	if got := b.Flush(); got != fixed {
		t.Fatalf("flush cost = %v, want %v", got, fixed)
	}
	if got := b.Flush(); got != 0 {
		t.Fatalf("double flush charged %v", got)
	}
	st := b.Stats()
	if st.Flushes != 1 || st.FlushCost != fixed || st.Batches != 1 || st.Aggregated != 5 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

func TestStatsFlushesPendingBatch(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	// 20 sends: one full batch (16) plus 4 pending. A stats snapshot must
	// not leave the trailing partial batch riding free.
	for i := 0; i < 20; i++ {
		b.Send(512, Normal)
	}
	st := b.Stats()
	if st.Batches != 2 || st.Flushes != 1 {
		t.Fatalf("stats did not flush the partial batch: %+v", st)
	}
	if st.FlushCost != b.PerMessageFixedCost() {
		t.Fatalf("flush cost %v, want one fixed cost %v", st.FlushCost, b.PerMessageFixedCost())
	}
	// A full batch boundary leaves nothing pending: no extra flush.
	b2 := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	for i := 0; i < 16; i++ {
		b2.Send(512, Normal)
	}
	if st := b2.Stats(); st.Flushes != 0 || st.Batches != 1 {
		t.Fatalf("aligned batch should not flush: %+v", st)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true})
	if b.cfg.AggregationCount != 16 || b.cfg.SmallIOBytes != 64<<10 {
		t.Fatalf("defaults: %+v", b.cfg)
	}
	if b.cfg.DropTimeout <= 0 {
		t.Fatalf("drop timeout default missing: %+v", b.cfg)
	}
}

// scriptHook fails delivery according to a fixed script: call i fails
// iff fail[i] is true. Extra calls succeed.
type scriptHook struct {
	fail  []bool
	calls int
	err   error
}

func (h *scriptHook) Deliver(from, to string, n int64) (time.Duration, error) {
	i := h.calls
	h.calls++
	if i < len(h.fail) && h.fail[i] {
		return 0, h.err
	}
	return 0, nil
}

// errDrop stands in for the faults package's drop error (bus must not
// import faults).
var errDrop = &timeoutErr{}

type timeoutErr struct{}

func (*timeoutErr) Error() string { return "dropped" }

// TestDroppedSendLeavesBatchAccountingIntact is the satellite-1
// regression: a failed (dropped/partitioned) send must not fill an
// aggregation-batch slot, must not count in Sends/Bytes, and must not
// cause the batch's deferred fixed cost to be charged twice when the
// send is retried and the batch later flushes.
func TestDroppedSendLeavesBatchAccountingIntact(t *testing.T) {
	// Script: every third delivery attempt fails.
	fail := make([]bool, 30)
	for i := 2; i < len(fail); i += 3 {
		fail[i] = true
	}
	b := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	b.SetNet(&scriptHook{fail: fail, err: errDrop}, "client")
	fixed := b.Link().Spec().WriteLatency

	delivered, dropped := 0, 0
	for i := 0; i < 24; i++ {
		// Retry each message until it lands, like the producer does.
		for {
			_, err := b.SendLink("client", "worker/0", 512, Normal)
			if err == nil {
				delivered++
				break
			}
			dropped++
		}
	}
	if delivered != 24 || dropped == 0 {
		t.Fatalf("script did not exercise drops: delivered=%d dropped=%d", delivered, dropped)
	}
	st := b.Stats()
	if st.Sends != 24 || st.Bytes != 24*512 {
		t.Fatalf("delivered accounting polluted by drops: %+v", st)
	}
	if st.Drops != int64(dropped) || st.DroppedBytes != int64(dropped)*512 {
		t.Fatalf("drop accounting: %+v want %d drops", st, dropped)
	}
	// 24 delivered small sends = 1 full batch (16) + 8 pending flushed by
	// Stats: exactly 2 batches, one flush, one deferred fixed cost.
	if st.Batches != 2 || st.Flushes != 1 || st.FlushCost != fixed {
		t.Fatalf("batch accounting double-charged or leaked: %+v", st)
	}
	if st.Aggregated != 23 { // all but the batch-closing 16th send deferred
		t.Fatalf("aggregated count: %+v", st)
	}
	// Nothing pending afterwards: flushing again charges nothing.
	if got := b.Flush(); got != 0 {
		t.Fatalf("flush after stats charged %v", got)
	}
}

// TestDropChargesTimeoutNotTransfer: an undelivered message costs the
// sender its injected delay plus the drop timeout — never the transfer
// or fixed cost — and the link device sees no bytes for it.
func TestDropChargesTimeoutNotTransfer(t *testing.T) {
	b := New(Config{Path: RDMA, DropTimeout: time.Millisecond})
	b.SetNet(&scriptHook{fail: []bool{true, false}, err: errDrop}, "client")
	cost, err := b.SendLink("client", "worker/0", 1<<20, Normal)
	if err == nil {
		t.Fatal("scripted drop did not surface")
	}
	if cost != time.Millisecond {
		t.Fatalf("drop cost = %v, want the 1ms drop timeout", cost)
	}
	if got := b.Link().Stats().WriteBytes; got != 0 {
		t.Fatalf("dropped bytes reached the link device: %d", got)
	}
	if _, err := b.SendLink("client", "worker/0", 1<<20, Normal); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if got := b.Link().Stats().WriteBytes; got != 1<<20 {
		t.Fatalf("retry bytes: %d", got)
	}
}

// TestSendWithoutHookUnchanged: with no fault plane attached, SendLink
// behaves exactly like the legacy Send.
func TestSendWithoutHookUnchanged(t *testing.T) {
	a := New(Config{Path: TCP, Aggregation: true})
	b := New(Config{Path: TCP, Aggregation: true})
	for i := 0; i < 20; i++ {
		want := a.Send(512, Normal)
		got, err := b.SendLink("client", "worker/0", 512, Normal)
		if err != nil || got != want {
			t.Fatalf("send %d: got (%v,%v) want (%v,nil)", i, got, err, want)
		}
	}
}

func TestQueueDelayPerPriorityBreakdown(t *testing.T) {
	b := New(Config{Path: RDMA})
	// Establish outstanding high-priority bytes, then queue Normal and
	// Low sends behind them.
	b.Send(1<<20, High)
	b.Send(1<<10, Normal)
	b.Send(1<<20, High)
	b.Send(1<<10, Low)
	st := b.Stats()
	if st.QueueDelayNormal <= 0 || st.QueueDelayLow <= 0 {
		t.Fatalf("missing per-class delay: %+v", st)
	}
	if st.QueueDelayHigh != 0 {
		t.Fatalf("High never queues in the priority model: %+v", st)
	}
	// Low pays 2x the per-byte penalty of Normal for the same backlog.
	if st.QueueDelayLow != 2*st.QueueDelayNormal {
		t.Fatalf("Low = %v, want 2x Normal %v", st.QueueDelayLow, st.QueueDelayNormal)
	}
	if sum := st.QueueDelayHigh + st.QueueDelayNormal + st.QueueDelayLow; sum != st.QueueDelay {
		t.Fatalf("breakdown sum %v != cumulative %v", sum, st.QueueDelay)
	}
}

type fixedQoS struct{ d time.Duration }

func (f fixedQoS) Delay(tenant string, class int, n int64) time.Duration {
	if tenant == "" {
		return 0
	}
	return f.d
}

func TestSendLinkTChargesQoSDelay(t *testing.T) {
	b := New(Config{Path: RDMA})
	base, err := b.SendLinkT("a", "b", 1024, Normal, "")
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	b.SetQoS(fixedQoS{d: 3 * time.Millisecond})
	tagged, err := b.SendLinkT("a", "b", 1024, Normal, "tenantA")
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if tagged != base+3*time.Millisecond {
		t.Fatalf("qos delay not charged: base %v tagged %v", base, tagged)
	}
	system, err := b.SendLinkT("a", "b", 1024, Normal, "")
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if system != base {
		t.Fatalf("system identity delayed: %v vs %v", system, base)
	}
	st := b.Stats()
	if st.QueueDelayNormal != 3*time.Millisecond || st.QueueDelay != 3*time.Millisecond {
		t.Fatalf("qos delay not attributed to Normal class: %+v", st)
	}
}
