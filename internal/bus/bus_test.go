package bus

import (
	"testing"
	"time"
)

func TestRDMABeatsTCP(t *testing.T) {
	r := New(Config{Path: RDMA})
	c := New(Config{Path: TCP})
	n := int64(1024)
	if rd, td := r.Send(n, Normal), c.Send(n, Normal); rd >= td {
		t.Fatalf("rdma %v >= tcp %v", rd, td)
	}
	if r.PerMessageFixedCost() >= c.PerMessageFixedCost() {
		t.Fatal("rdma fixed cost should be lower")
	}
}

func TestAggregationAmortizesFixedCost(t *testing.T) {
	agg := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	raw := New(Config{Path: TCP})
	var aggTotal, rawTotal time.Duration
	for i := 0; i < 160; i++ {
		aggTotal += agg.Send(512, Normal)
		rawTotal += raw.Send(512, Normal)
	}
	// 160 small sends: aggregated pays fixed cost 10 times, raw 160
	// times. Expect a large gap.
	if aggTotal*4 > rawTotal {
		t.Fatalf("aggregation saved too little: agg=%v raw=%v", aggTotal, rawTotal)
	}
	st := agg.Stats()
	if st.Batches != 10 || st.Aggregated != 150 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAggregationSkipsLargeIO(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, SmallIOBytes: 1024})
	for i := 0; i < 100; i++ {
		b.Send(1<<20, Normal) // 1 MiB: not small I/O
	}
	if st := b.Stats(); st.Aggregated != 0 {
		t.Fatalf("large I/O was aggregated: %+v", st)
	}
}

func TestPriorityScheduling(t *testing.T) {
	b := New(Config{Path: TCP})
	// Load the bus with high-priority traffic.
	b.Send(10<<20, High)
	lo := b.Send(1024, Low)
	b.Send(10<<20, High)
	no := b.Send(1024, Normal)
	b.Send(10<<20, High)
	hi := b.Send(1024, High)
	if !(hi < no && no < lo) {
		t.Fatalf("priority ordering violated: high=%v normal=%v low=%v", hi, no, lo)
	}
	if b.Stats().QueueDelay <= 0 {
		t.Fatal("no queue delay recorded")
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := New(Config{Path: RDMA})
	b.Send(100, Normal)
	b.Send(200, Normal)
	st := b.Stats()
	if st.Sends != 2 || st.Bytes != 300 {
		t.Fatalf("stats: %+v", st)
	}
	if b.Link().Stats().WriteBytes != 300 {
		t.Fatalf("link bytes: %d", b.Link().Stats().WriteBytes)
	}
}

func TestFlushChargesPartialBatch(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	fixed := b.Link().Spec().WriteLatency
	// 5 small sends never fill the 16-slot batch, so all of them defer
	// the fixed cost and the batch stays open until flushed.
	for i := 0; i < 5; i++ {
		b.Send(512, Normal)
	}
	if got := b.Flush(); got != fixed {
		t.Fatalf("flush cost = %v, want %v", got, fixed)
	}
	if got := b.Flush(); got != 0 {
		t.Fatalf("double flush charged %v", got)
	}
	st := b.Stats()
	if st.Flushes != 1 || st.FlushCost != fixed || st.Batches != 1 || st.Aggregated != 5 {
		t.Fatalf("stats after flush: %+v", st)
	}
}

func TestStatsFlushesPendingBatch(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	// 20 sends: one full batch (16) plus 4 pending. A stats snapshot must
	// not leave the trailing partial batch riding free.
	for i := 0; i < 20; i++ {
		b.Send(512, Normal)
	}
	st := b.Stats()
	if st.Batches != 2 || st.Flushes != 1 {
		t.Fatalf("stats did not flush the partial batch: %+v", st)
	}
	if st.FlushCost != b.PerMessageFixedCost() {
		t.Fatalf("flush cost %v, want one fixed cost %v", st.FlushCost, b.PerMessageFixedCost())
	}
	// A full batch boundary leaves nothing pending: no extra flush.
	b2 := New(Config{Path: TCP, Aggregation: true, AggregationCount: 16})
	for i := 0; i < 16; i++ {
		b2.Send(512, Normal)
	}
	if st := b2.Stats(); st.Flushes != 0 || st.Batches != 1 {
		t.Fatalf("aligned batch should not flush: %+v", st)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Config{Path: TCP, Aggregation: true})
	if b.cfg.AggregationCount != 16 || b.cfg.SmallIOBytes != 64<<10 {
		t.Fatalf("defaults: %+v", b.cfg)
	}
}
