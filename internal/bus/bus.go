// Package bus models the data exchange and interworking bus of the store
// layer (Section III): the high-speed fabric interconnecting all nodes.
// It implements the three bus features the paper names — an RDMA path
// that bypasses the kernel stack, intelligent aggregation of small I/O
// requests, and I/O priority scheduling — as deterministic cost models
// over the simulated link devices, so that "RDMA vs TCP" and
// "aggregation on vs off" produce measurably different virtual latencies.
package bus

import (
	"sync"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

// Path selects the transport the bus uses.
type Path int

const (
	// RDMA bypasses the CPU and kernel stack (3 µs-class per-op cost).
	RDMA Path = iota
	// TCP is the conventional kernel path (50 µs-class per-op cost).
	TCP
)

// Priority orders competing I/O on the bus.
type Priority int

const (
	// High priority I/O (foreground reads, commit records) is never
	// queued behind other traffic.
	High Priority = iota
	// Normal priority is the default for data transfers.
	Normal
	// Low priority (background compaction, tiering migration) yields to
	// everything else.
	Low
)

// Config tunes a Bus.
type Config struct {
	Path Path
	// Aggregation coalesces small sends so the per-operation fixed cost
	// is paid once per batch instead of once per message. The paper
	// notes it can be disabled for latency-sensitive scenarios.
	Aggregation bool
	// AggregationCount is the number of small sends amortizing one fixed
	// cost (default 16).
	AggregationCount int
	// SmallIOBytes is the threshold below which a send is eligible for
	// aggregation (default 64 KiB).
	SmallIOBytes int64
	// DropTimeout is the virtual time a sender waits before concluding a
	// message was lost (default 500 µs). Charged, on top of any injected
	// delay, for every send the network fault plane fails.
	DropTimeout time.Duration
}

// NetHook decides the fate of a message on the directed link from→to:
// extra delivery delay, or an error when the message is dropped or the
// link partitioned. faults.NetPlane implements it.
type NetHook interface {
	Deliver(from, to string, n int64) (time.Duration, error)
}

// QoS imposes tenant-aware scheduling delay on delivered sends.
// tenant.Sched implements it: weighted-fair queuing within each priority
// class. The class is the int value of the send's Priority.
type QoS interface {
	Delay(tenant string, class int, n int64) time.Duration
}

// Stats reports bus activity. Sends/Bytes count delivered messages
// only; a dropped or partitioned send lands in Drops/DroppedBytes and
// never touches the aggregation-batch accounting.
type Stats struct {
	Sends        int64
	Bytes        int64
	Aggregated   int64 // sends that rode in a batch without paying fixed cost
	Batches      int64
	Flushes      int64         // partial batches closed out by Flush
	FlushCost    time.Duration // deferred fixed costs charged at flush time
	QueueDelay   time.Duration // cumulative priority queuing delay imposed
	Drops        int64         // sends failed by the network fault plane
	DroppedBytes int64
	NetDelay     time.Duration // injected delay on delivered messages

	// Per-class breakdown of QueueDelay (priority queuing plus any QoS
	// scheduling delay); the three always sum to QueueDelay.
	QueueDelayHigh   time.Duration
	QueueDelayNormal time.Duration
	QueueDelayLow    time.Duration
}

// Bus is one node's view of the data exchange fabric.
type Bus struct {
	link *sim.Device
	cfg  Config

	mu          sync.Mutex
	stats       Stats
	batchFill   int   // small sends since the last fixed-cost payment
	outstanding int64 // high-priority bytes notionally in flight
	metrics     busMetrics
	net         NetHook // consulted on every send when attached
	local       string  // this bus's endpoint name on the fault plane
	qos         QoS     // tenant-aware scheduler, nil = no tenant plane
}

// busMetrics is the bus's obs instrument set, labelled by path so RDMA
// and TCP traffic stay distinguishable on /metrics. Workers of one
// service share instruments (the registry dedups by name), so totals
// survive worker rescaling.
type busMetrics struct {
	sends, bytes, aggregated, batches *obs.Counter
	drops                             *obs.Counter
	netDelay                          *obs.Counter // injected delay, ns
	sendLat, flushLat                 *obs.Histogram
}

// pathLabel names the transport for metric labels.
func (p Path) pathLabel() string {
	if p == TCP {
		return "tcp"
	}
	return "rdma"
}

// SetObs registers the bus's telemetry with an obs registry. Call at
// wiring time, before the bus carries traffic.
func (b *Bus) SetObs(reg *obs.Registry) {
	label := `{path="` + b.cfg.Path.pathLabel() + `"}`
	b.mu.Lock()
	b.metrics = busMetrics{
		sends:      reg.Counter("bus_sends_total" + label),
		bytes:      reg.Counter("bus_bytes_total" + label),
		aggregated: reg.Counter("bus_aggregated_total" + label),
		batches:    reg.Counter("bus_batches_total" + label),
		drops:      reg.Counter("bus_drops_total" + label),
		netDelay:   reg.Counter("bus_net_delay_ns_total" + label),
		sendLat:    reg.Histogram("bus_send_seconds" + label),
		flushLat:   reg.Histogram("bus_flush_seconds" + label),
	}
	b.mu.Unlock()
}

// New builds a bus over the given path with its default link device.
func New(cfg Config) *Bus {
	if cfg.AggregationCount <= 0 {
		cfg.AggregationCount = 16
	}
	if cfg.SmallIOBytes <= 0 {
		cfg.SmallIOBytes = 64 << 10
	}
	if cfg.DropTimeout <= 0 {
		cfg.DropTimeout = 500 * time.Microsecond
	}
	class := sim.NetRDMA
	if cfg.Path == TCP {
		class = sim.Net10GbE
	}
	return &Bus{link: sim.NewDeviceOf("bus", class), cfg: cfg}
}

// Link exposes the underlying link device for utilization reporting.
func (b *Bus) Link() *sim.Device { return b.link }

// SetNet attaches a network fault plane and names this bus's endpoint
// on it. Every subsequent send is submitted to the hook for a
// drop/delay/partition verdict before any cost or aggregation state is
// touched.
func (b *Bus) SetNet(h NetHook, local string) {
	b.mu.Lock()
	b.net = h
	b.local = local
	b.mu.Unlock()
}

// SetQoS attaches a tenant-aware scheduler. Every subsequent tenant-
// tagged send pays its weighted-fair queuing delay on top of the
// priority model. A nil QoS (the default) keeps the legacy path
// byte-identical.
func (b *Bus) SetQoS(q QoS) {
	b.mu.Lock()
	b.qos = q
	b.mu.Unlock()
}

// Send models transferring n bytes at the given priority and returns the
// modelled latency the sender observes. It is the fault-blind legacy
// path (equivalent to SendLink from this bus's own endpoint to an
// unnamed peer): a fault-plane verdict against the anonymous link is
// absorbed as latency rather than surfaced, which suits the cost-model
// callers (benchmarks) that assume delivery. Data paths that must see
// failures use SendLink.
func (b *Bus) Send(n int64, prio Priority) time.Duration {
	b.mu.Lock()
	local, hook := b.local, b.net
	b.mu.Unlock()
	var delay time.Duration
	var err error
	if hook != nil {
		delay, err = hook.Deliver(local, "", n)
	}
	if err != nil {
		return b.failSend(n, delay)
	}
	return b.deliver(n, prio, delay, "")
}

// SendLink models transferring n bytes on the directed link from→to at
// the given priority. The network fault plane (when attached) rules on
// the message first: a drop or partition returns the time the sender
// lost (injected delay plus the drop timeout) and a non-nil error, and
// leaves the aggregation batch accounting untouched — an undelivered
// message must never fill a batch slot or double-charge the batch's
// deferred fixed cost when it is retried.
func (b *Bus) SendLink(from, to string, n int64, prio Priority) (time.Duration, error) {
	return b.SendLinkT(from, to, n, prio, "")
}

// SendLinkT is SendLink with a tenant identity attached: the attached
// QoS scheduler (when any) charges the send its weighted-fair queuing
// delay within the priority class. The empty tenant is the system
// identity and is never QoS-delayed.
func (b *Bus) SendLinkT(from, to string, n int64, prio Priority, tenant string) (time.Duration, error) {
	b.mu.Lock()
	hook := b.net
	b.mu.Unlock()
	var delay time.Duration
	var err error
	if hook != nil {
		delay, err = hook.Deliver(from, to, n)
	}
	if err != nil {
		return b.failSend(n, delay), err
	}
	return b.deliver(n, prio, delay, tenant), nil
}

// failSend accounts an undelivered message: the sender burns the
// injected delay plus the drop timeout, and nothing else changes.
func (b *Bus) failSend(n int64, delay time.Duration) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Drops++
	b.stats.DroppedBytes += n
	b.metrics.drops.Inc()
	return delay + b.cfg.DropTimeout
}

// deliver charges a delivered message: transfer cost, aggregation-batch
// fixed-cost amortization, priority queuing, tenant QoS scheduling, and
// any injected delay.
func (b *Bus) deliver(n int64, prio Priority, delay time.Duration, tenant string) time.Duration {
	spec := b.link.Spec()
	fixed := spec.WriteLatency
	transfer := b.link.Write(n) - fixed // bandwidth term only

	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Sends++
	b.stats.Bytes += n
	b.metrics.sends.Inc()
	b.metrics.bytes.Add(n)

	cost := transfer
	paysFixed := true
	if b.cfg.Aggregation && n <= b.cfg.SmallIOBytes {
		b.batchFill++
		if b.batchFill >= b.cfg.AggregationCount {
			b.batchFill = 0
			b.stats.Batches++
			b.metrics.batches.Inc()
		} else {
			paysFixed = false
			b.stats.Aggregated++
			b.metrics.aggregated.Inc()
		}
	}
	if paysFixed {
		cost += fixed
	}

	// Priority scheduling: lower-priority traffic queues behind the
	// notional in-flight high-priority bytes.
	var queued time.Duration
	if prio != High && b.outstanding > 0 {
		q := time.Duration(float64(b.outstanding) / float64(spec.WriteBandwidth) * float64(time.Second))
		if prio == Low {
			q *= 2
		}
		queued += q
	}
	// Tenant QoS: weighted-fair queuing within the priority class.
	if b.qos != nil {
		queued += b.qos.Delay(tenant, int(prio), n)
	}
	if queued > 0 {
		cost += queued
		b.stats.QueueDelay += queued
		switch prio {
		case High:
			b.stats.QueueDelayHigh += queued
		case Low:
			b.stats.QueueDelayLow += queued
		default:
			b.stats.QueueDelayNormal += queued
		}
	}
	if prio == High {
		// High-priority bytes decay as they complete; model a window of
		// the last send.
		b.outstanding = n
	} else if b.outstanding > 0 {
		b.outstanding /= 2
	}
	if delay > 0 {
		cost += delay
		b.stats.NetDelay += delay
		b.metrics.netDelay.Add(int64(delay))
	}
	b.metrics.sendLat.Observe(cost)
	return cost
}

// Flush closes out a partially filled aggregation batch, charging the
// fixed per-operation cost the batched sends deferred, and returns that
// cost. Without it, trailing small sends ride "free" forever and the
// aggregation stats understate latency. It is a no-op when no batch is
// pending.
func (b *Bus) Flush() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *Bus) flushLocked() time.Duration {
	if b.batchFill == 0 {
		return 0
	}
	b.batchFill = 0
	fixed := b.link.Spec().WriteLatency
	b.stats.Batches++
	b.stats.Flushes++
	b.stats.FlushCost += fixed
	b.metrics.batches.Inc()
	b.metrics.flushLat.Observe(fixed)
	return fixed
}

// Stats returns a snapshot of bus counters. Snapshotting flushes any
// pending aggregation batch first so Aggregated/Batches never understate
// the deferred fixed costs.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	return b.stats
}

// PerMessageFixedCost reports the path's fixed per-operation latency, the
// quantity RDMA exists to shrink. As a path-config query it also flushes
// any pending aggregation batch.
func (b *Bus) PerMessageFixedCost() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	return b.link.Spec().WriteLatency
}
