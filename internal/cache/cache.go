// Package cache implements the two-tier read cache the paper's
// OceanStor substrate places in front of the SSD/HDD pools (Section
// III): a DRAM tier backed by a simulated SCM device class, so hot
// reads stop paying device cost. Admission and eviction follow the
// S3-FIFO/2Q family: new keys enter a small probationary FIFO, keys
// re-referenced there graduate to the main FIFO, and keys evicted from
// DRAM destage to the SCM tier before a bounded ghost list remembers
// them — a key that returns while ghosted is admitted straight to main.
// Every structure is a plain FIFO plus reference counters, so the cache
// is fully deterministic: no wall clock, no randomness, byte-identical
// behaviour across replays of a seeded workload.
//
// The cache stores verified bytes only — callers insert after the
// integrity layer has checksum-verified the fill — and offers prefix
// invalidation so every coherence edge (quarantine, repair rewrite,
// degraded append, tiering migration, DML commit) can drop the ranges
// it touched. A DRAM hit costs nothing (a memory copy under the
// modelled device scale); an SCM hit charges the SCM device's read
// latency; destaging to SCM charges the SCM device write in the
// background (device busy time, not requester latency).
package cache

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

// Config sizes a Cache.
type Config struct {
	// DRAMBytes caps the DRAM tier (small + main FIFOs together).
	DRAMBytes int64
	// SCMBytes caps the SCM victim tier.
	SCMBytes int64
	// SmallFrac is the fraction of DRAMBytes reserved for the
	// probationary small FIFO (default 0.1, the S3-FIFO split).
	SmallFrac float64
	// GhostEntries bounds the ghost list (default 8192 keys).
	GhostEntries int
}

func (c Config) withDefaults() Config {
	if c.SmallFrac <= 0 || c.SmallFrac >= 1 {
		c.SmallFrac = 0.1
	}
	if c.GhostEntries <= 0 {
		c.GhostEntries = 8192
	}
	return c
}

// tier is where an entry currently lives.
type tier int

const (
	tierSmall tier = iota // DRAM probationary FIFO
	tierMain              // DRAM main FIFO
	tierSCM               // SCM victim tier
)

// entry is one cached object.
type entry struct {
	key  string
	data []byte
	freq uint8 // saturating re-reference counter (max 3, S3-FIFO style)
	tier tier
	elem *list.Element // position in its tier's FIFO
}

// Stats is a point-in-time accounting snapshot.
type Stats struct {
	DRAMHits      int64
	SCMHits       int64
	Misses        int64
	Fills         int64
	FillBytes     int64
	Evictions     int64 // entries dropped from the cache entirely
	Demotions     int64 // DRAM entries destaged to the SCM tier
	Invalidations int64 // entries dropped by coherence invalidation
	BytesSaved    int64 // bytes served from cache instead of devices
	UsedDRAM      int64
	UsedSCM       int64
	EntriesDRAM   int
	EntriesSCM    int
	GhostKeys     int
}

// HitRate returns hits / lookups, 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	total := s.DRAMHits + s.SCMHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.DRAMHits+s.SCMHits) / float64(total)
}

// cacheMetrics is the obs instrument set; nil-safe no-ops until SetObs.
type cacheMetrics struct {
	dramHits      *obs.Counter
	scmHits       *obs.Counter
	misses        *obs.Counter
	fills         *obs.Counter
	fillBytes     *obs.Counter
	evictions     *obs.Counter
	demotions     *obs.Counter
	invalidations *obs.Counter
	bytesSaved    *obs.Counter
}

// Cache is the two-tier read cache. All methods are safe for
// concurrent use.
type Cache struct {
	mu  sync.Mutex
	cfg Config
	scm *sim.Device // SCM victim tier: timing model for hits/destages

	index map[string]*entry
	small *list.List // *entry, FIFO head = oldest
	main  *list.List
	scmQ  *list.List

	ghost     map[string]*list.Element // key -> position in ghostQ
	ghostQ    *list.List               // string keys, FIFO head = oldest
	usedSmall int64
	usedMain  int64
	usedSCM   int64

	stats   Stats
	metrics cacheMetrics
}

// New builds a cache. Zero-byte tiers disable that tier.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:    cfg.withDefaults(),
		scm:    sim.NewDeviceOf("read-cache-scm", sim.SCM),
		index:  make(map[string]*entry),
		small:  list.New(),
		main:   list.New(),
		scmQ:   list.New(),
		ghost:  make(map[string]*list.Element),
		ghostQ: list.New(),
	}
}

// SetObs registers the cache's telemetry: hit/miss/eviction counters,
// bytes saved, and tier occupancy gauges evaluated at scrape time.
func (c *Cache) SetObs(reg *obs.Registry) {
	c.mu.Lock()
	c.metrics = cacheMetrics{
		dramHits:      reg.Counter(`cache_hits_total{tier="dram"}`),
		scmHits:       reg.Counter(`cache_hits_total{tier="scm"}`),
		misses:        reg.Counter("cache_misses_total"),
		fills:         reg.Counter("cache_fills_total"),
		fillBytes:     reg.Counter("cache_fill_bytes_total"),
		evictions:     reg.Counter("cache_evictions_total"),
		demotions:     reg.Counter("cache_demotions_total"),
		invalidations: reg.Counter("cache_invalidations_total"),
		bytesSaved:    reg.Counter("cache_bytes_saved_total"),
	}
	c.mu.Unlock()
	if reg == nil {
		return
	}
	reg.GaugeFunc(`cache_used_bytes{tier="dram"}`, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.usedSmall + c.usedMain)
	})
	reg.GaugeFunc(`cache_used_bytes{tier="scm"}`, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.usedSCM)
	})
	reg.GaugeFunc("cache_ghost_keys", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.ghostQ.Len())
	})
}

// Get looks key up, returning the cached bytes, the modelled lookup
// cost (zero for a DRAM hit, one SCM device read for an SCM hit), and
// whether it hit. An SCM hit promotes the entry back into DRAM's main
// FIFO — it has proven hot twice.
//
// Borrow discipline: the returned slice is shared with the cache (and
// with every other Get of the same key) — callers MUST NOT mutate it.
// Cached fills are verified reads of immutable log ranges, so sharing
// is safe and saves a copy on the hot read path.
func (c *Cache) Get(key string) ([]byte, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.index[key]
	if !ok {
		c.stats.Misses++
		c.metrics.misses.Inc()
		return nil, 0, false
	}
	if e.freq < 3 {
		e.freq++
	}
	n := int64(len(e.data))
	c.stats.BytesSaved += n
	c.metrics.bytesSaved.Add(n)
	var cost time.Duration
	if e.tier == tierSCM {
		cost = c.scm.Read(n)
		c.stats.SCMHits++
		c.metrics.scmHits.Inc()
		// Promote: SCM residency plus a re-reference means main-worthy.
		c.scmQ.Remove(e.elem)
		c.usedSCM -= n
		e.tier = tierMain
		e.elem = c.main.PushBack(e)
		c.usedMain += n
		c.evictDRAMLocked()
	} else {
		c.stats.DRAMHits++
		c.metrics.dramHits.Inc()
	}
	return e.data, cost, true
}

// Contains reports whether key is resident (either tier), without
// touching frequency state or counters.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.index[key]
	return ok
}

// Put inserts a verified fill. Admission: a key the ghost list
// remembers goes straight to the main FIFO; a cold key enters the
// probationary small FIFO. Objects larger than the DRAM tier are not
// admitted. The returned duration is any foreground device cost (none
// today: DRAM insertion is free and destaging is background busy time).
//
// The cache retains data itself — no defensive copy — so the caller
// must hand over bytes that stay immutable for the entry's lifetime
// (the fill path passes borrowed slices of append-only PLog streams,
// which satisfy this by construction).
func (c *Cache) Put(key string, data []byte) time.Duration {
	n := int64(len(data))
	c.mu.Lock()
	defer c.mu.Unlock()
	if n == 0 || n > c.cfg.DRAMBytes {
		return 0
	}
	if e, ok := c.index[key]; ok {
		// Fills are verified reads of immutable ranges, so a re-fill can
		// only carry identical bytes; just count the reference.
		if e.freq < 3 {
			e.freq++
		}
		return 0
	}
	e := &entry{key: key, data: data}
	if el, ghosted := c.ghost[key]; ghosted {
		c.ghostQ.Remove(el)
		delete(c.ghost, key)
		e.tier = tierMain
		e.elem = c.main.PushBack(e)
		c.usedMain += n
	} else {
		e.tier = tierSmall
		e.elem = c.small.PushBack(e)
		c.usedSmall += n
	}
	c.index[key] = e
	c.stats.Fills++
	c.stats.FillBytes += n
	c.metrics.fills.Inc()
	c.metrics.fillBytes.Add(n)
	c.evictDRAMLocked()
	return 0
}

// evictDRAMLocked restores the DRAM invariant: small ≤ its share and
// small+main ≤ DRAMBytes. Caller holds c.mu.
func (c *Cache) evictDRAMLocked() {
	smallCap := int64(float64(c.cfg.DRAMBytes) * c.cfg.SmallFrac)
	for c.usedSmall+c.usedMain > c.cfg.DRAMBytes || c.usedSmall > smallCap {
		if c.small.Len() > 0 && (c.usedSmall > smallCap || c.main.Len() == 0) {
			c.evictSmallLocked()
		} else if c.main.Len() > 0 {
			c.evictMainLocked()
		} else {
			return
		}
	}
}

// evictSmallLocked pops the small FIFO's oldest entry: re-referenced
// entries graduate to main, one-hit wonders destage to SCM.
func (c *Cache) evictSmallLocked() {
	e := c.small.Remove(c.small.Front()).(*entry)
	c.usedSmall -= int64(len(e.data))
	if e.freq > 1 {
		e.freq = 0
		e.tier = tierMain
		e.elem = c.main.PushBack(e)
		c.usedMain += int64(len(e.data))
		return
	}
	c.demoteLocked(e)
}

// evictMainLocked pops the main FIFO's oldest entry, giving recently
// re-referenced entries a second lap before destaging.
func (c *Cache) evictMainLocked() {
	// Bounded reinsertion: each resident entry is inspected at most once
	// per call, so a fully-hot main FIFO still terminates.
	for laps := c.main.Len(); laps > 0; laps-- {
		e := c.main.Remove(c.main.Front()).(*entry)
		if e.freq > 0 {
			e.freq--
			e.elem = c.main.PushBack(e)
			continue
		}
		c.usedMain -= int64(len(e.data))
		c.demoteLocked(e)
		return
	}
	// Everyone was hot: evict the (now decremented) head for progress.
	e := c.main.Remove(c.main.Front()).(*entry)
	c.usedMain -= int64(len(e.data))
	c.demoteLocked(e)
}

// demoteLocked destages a DRAM-evicted entry to the SCM tier (charging
// the device write as background busy time) or, when it does not fit,
// drops it and remembers the key in the ghost list.
func (c *Cache) demoteLocked(e *entry) {
	n := int64(len(e.data))
	if n > c.cfg.SCMBytes {
		c.dropLocked(e)
		return
	}
	c.scm.Write(n) // destage busy time; requester is not waiting on it
	e.tier = tierSCM
	e.elem = c.scmQ.PushBack(e)
	c.usedSCM += n
	c.stats.Demotions++
	c.metrics.demotions.Inc()
	for c.usedSCM > c.cfg.SCMBytes && c.scmQ.Len() > 0 {
		v := c.scmQ.Remove(c.scmQ.Front()).(*entry)
		c.usedSCM -= int64(len(v.data))
		c.dropLocked(v)
	}
}

// dropLocked evicts e from the cache entirely and ghosts its key.
func (c *Cache) dropLocked(e *entry) {
	delete(c.index, e.key)
	c.stats.Evictions++
	c.metrics.evictions.Inc()
	c.ghostAddLocked(e.key)
}

func (c *Cache) ghostAddLocked(key string) {
	if _, ok := c.ghost[key]; ok {
		return
	}
	c.ghost[key] = c.ghostQ.PushBack(key)
	for c.ghostQ.Len() > c.cfg.GhostEntries {
		old := c.ghostQ.Remove(c.ghostQ.Front()).(string)
		delete(c.ghost, old)
	}
}

// removeLocked detaches e from whatever tier holds it, without
// ghosting (invalidated keys must not earn re-admission credit).
func (c *Cache) removeLocked(e *entry) {
	n := int64(len(e.data))
	switch e.tier {
	case tierSmall:
		c.small.Remove(e.elem)
		c.usedSmall -= n
	case tierMain:
		c.main.Remove(e.elem)
		c.usedMain -= n
	case tierSCM:
		c.scmQ.Remove(e.elem)
		c.usedSCM -= n
	}
	delete(c.index, e.key)
}

// Invalidate drops one key. It reports whether the key was resident.
func (c *Cache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.index[key]
	if !ok {
		return false
	}
	c.removeLocked(e)
	c.stats.Invalidations++
	c.metrics.invalidations.Inc()
	return true
}

// InvalidatePrefix drops every key with the given prefix — the
// coherence edge used when a whole log or table changed under the
// cache. It returns how many entries were dropped.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var victims []*entry
	for k, e := range c.index {
		if strings.HasPrefix(k, prefix) {
			victims = append(victims, e)
		}
	}
	for _, e := range victims {
		c.removeLocked(e)
	}
	n := len(victims)
	c.stats.Invalidations += int64(n)
	c.metrics.invalidations.Add(int64(n))
	return n
}

// Flush empties both tiers and the ghost list, returning how many
// entries were dropped. Statistics survive a flush.
func (c *Cache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.index)
	c.index = make(map[string]*entry)
	c.small.Init()
	c.main.Init()
	c.scmQ.Init()
	c.ghost = make(map[string]*list.Element)
	c.ghostQ.Init()
	c.usedSmall, c.usedMain, c.usedSCM = 0, 0, 0
	return n
}

// Stats snapshots the cache's counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.UsedDRAM = c.usedSmall + c.usedMain
	s.UsedSCM = c.usedSCM
	s.EntriesDRAM = c.small.Len() + c.main.Len()
	s.EntriesSCM = c.scmQ.Len()
	s.GhostKeys = c.ghostQ.Len()
	return s
}

// SCMDevice exposes the SCM tier's device for accounting inspection.
func (c *Cache) SCMDevice() *sim.Device { return c.scm }
