package cache

import (
	"fmt"
	"testing"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

func testCache() *Cache {
	return New(Config{DRAMBytes: 1 << 10, SCMBytes: 4 << 10, GhostEntries: 64})
}

func TestMissThenHit(t *testing.T) {
	c := testCache()
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("hello"))
	got, cost, ok := c.Get("k")
	if !ok || string(got) != "hello" {
		t.Fatalf("get after put: %q ok=%v", got, ok)
	}
	if cost != 0 {
		t.Fatalf("DRAM hit charged %v", cost)
	}
	st := c.Stats()
	if st.DRAMHits != 1 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestGetSharesImmutableBytes pins the zero-copy borrow contract: Get
// returns the cache's own slice (no per-hit copy), so every hit of one
// key observes the same backing array. The fill path only inserts
// verified reads of immutable log ranges, which is what makes sharing
// safe.
func TestGetSharesImmutableBytes(t *testing.T) {
	c := testCache()
	c.Put("k", []byte("abc"))
	got, _, _ := c.Get("k")
	again, _, _ := c.Get("k")
	if len(got) == 0 || len(again) == 0 || &got[0] != &again[0] {
		t.Fatal("Get copied the cached bytes; hits should share the fill's slice")
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
}

func TestOversizedObjectNotAdmitted(t *testing.T) {
	c := testCache()
	c.Put("big", make([]byte, 2<<10)) // larger than DRAM tier
	if c.Contains("big") {
		t.Fatal("oversized object admitted")
	}
}

// One-hit wonders must not wash the hot set out of DRAM: after a cold
// scan twice the DRAM size, an entry that is re-read throughout stays
// resident in DRAM.
func TestScanResistance(t *testing.T) {
	c := testCache()
	c.Put("hot", make([]byte, 64))
	for i := 0; i < 32; i++ {
		if _, _, ok := c.Get("hot"); !ok {
			t.Fatalf("hot key lost before scan, i=%d", i)
		}
		c.Put(fmt.Sprintf("cold%d", i), make([]byte, 64)) // 32*64 = 2× DRAM
	}
	if _, _, ok := c.Get("hot"); !ok {
		t.Fatal("scan evicted the hot set from the cache")
	}
}

// DRAM-evicted entries land in the SCM tier and hits there charge the
// SCM device and promote back to DRAM.
func TestDemotionToSCMAndPromotion(t *testing.T) {
	c := testCache()
	// Fill far past DRAM so early entries destage.
	for i := 0; i < 24; i++ {
		c.Put(fmt.Sprintf("k%d", i), make([]byte, 100))
	}
	st := c.Stats()
	if st.Demotions == 0 || st.EntriesSCM == 0 {
		t.Fatalf("nothing destaged to SCM: %+v", st)
	}
	if st.UsedDRAM > 1<<10 || st.UsedSCM > 4<<10 {
		t.Fatalf("tier over capacity: %+v", st)
	}
	// Find an SCM resident and hit it.
	var key string
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("k%d", i)
		c.mu.Lock()
		e, ok := c.index[k]
		scm := ok && e.tier == tierSCM
		c.mu.Unlock()
		if scm {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no SCM-resident entry found")
	}
	_, cost, ok := c.Get(key)
	if !ok || cost <= 0 {
		t.Fatalf("SCM hit: ok=%v cost=%v (want device-charged hit)", ok, cost)
	}
	if got := c.Stats(); got.SCMHits != 1 {
		t.Fatalf("SCM hit not counted: %+v", got)
	}
}

// A key evicted all the way out is remembered by the ghost list and
// readmitted straight to the main FIFO.
func TestGhostReadmission(t *testing.T) {
	c := New(Config{DRAMBytes: 512, SCMBytes: 512, GhostEntries: 64})
	c.Put("victim", make([]byte, 128))
	// Push victim out of DRAM and then out of SCM.
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("f%d", i), make([]byte, 128))
	}
	if c.Contains("victim") {
		t.Fatal("victim still resident; workload too small")
	}
	if c.Stats().GhostKeys == 0 {
		t.Fatal("no ghost keys recorded")
	}
	c.Put("victim", make([]byte, 128))
	c.mu.Lock()
	e := c.index["victim"]
	c.mu.Unlock()
	if e == nil || e.tier != tierMain {
		t.Fatalf("ghosted key not readmitted to main: %+v", e)
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache()
	c.Put("a/1", []byte("x"))
	c.Put("a/2", []byte("y"))
	c.Put("b/1", []byte("z"))
	if !c.Invalidate("a/1") {
		t.Fatal("invalidate missed resident key")
	}
	if c.Invalidate("a/1") {
		t.Fatal("double invalidate reported resident")
	}
	if n := c.InvalidatePrefix("a/"); n != 1 {
		t.Fatalf("prefix invalidation dropped %d, want 1", n)
	}
	if c.Contains("a/2") || !c.Contains("b/1") {
		t.Fatal("prefix invalidation scope wrong")
	}
	// Invalidated keys earn no ghost credit: a re-fill is probationary.
	c.Put("a/1", []byte("x"))
	c.mu.Lock()
	tier := c.index["a/1"].tier
	c.mu.Unlock()
	if tier != tierSmall {
		t.Fatalf("invalidated key readmitted to tier %d, want small", tier)
	}
}

func TestFlush(t *testing.T) {
	c := testCache()
	c.Put("a", []byte("x"))
	c.Put("b", []byte("y"))
	if n := c.Flush(); n != 2 {
		t.Fatalf("flush dropped %d, want 2", n)
	}
	st := c.Stats()
	if st.UsedDRAM != 0 || st.UsedSCM != 0 || st.EntriesDRAM != 0 || st.EntriesSCM != 0 {
		t.Fatalf("state survived flush: %+v", st)
	}
	if st.Fills != 2 {
		t.Fatal("stats should survive flush")
	}
}

// The cache must be deterministic: the same operation sequence yields
// the same stats, residency, and device accounting.
func TestDeterministicReplay(t *testing.T) {
	run := func() (Stats, int64) {
		c := New(Config{DRAMBytes: 1 << 10, SCMBytes: 2 << 10, GhostEntries: 32})
		rng := sim.NewRNG(42)
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("k%d", rng.Intn(64))
			if _, _, ok := c.Get(k); !ok {
				c.Put(k, make([]byte, 32+rng.Intn(96)))
			}
			if rng.Intn(50) == 0 {
				c.InvalidatePrefix("k1")
			}
		}
		return c.Stats(), c.SCMDevice().Used()
	}
	s1, u1 := run()
	s2, u2 := run()
	if s1 != s2 || u1 != u2 {
		t.Fatalf("replay diverged:\n%+v used=%d\n%+v used=%d", s1, u1, s2, u2)
	}
}

func TestObsWiring(t *testing.T) {
	reg := obs.NewRegistry(sim.NewClock())
	c := testCache()
	c.SetObs(reg)
	c.Put("k", []byte("hello"))
	c.Get("k")
	c.Get("nope")
	snap := reg.Snapshot()
	if snap.Counters[`cache_hits_total{tier="dram"}`] != 1 {
		t.Fatalf("dram hit counter: %+v", snap.Counters)
	}
	if snap.Counters["cache_misses_total"] != 1 || snap.Counters["cache_fills_total"] != 1 {
		t.Fatalf("miss/fill counters: %+v", snap.Counters)
	}
	if snap.Counters["cache_bytes_saved_total"] != 5 {
		t.Fatalf("bytes saved: %+v", snap.Counters)
	}
}

func TestNilObsIsNoOp(t *testing.T) {
	c := testCache()
	c.SetObs(nil)
	c.Put("k", []byte("x"))
	if _, _, ok := c.Get("k"); !ok {
		t.Fatal("cache broken under nil registry")
	}
}
