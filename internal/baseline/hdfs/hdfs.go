// Package hdfs is the reproduction's HDFS baseline (Section VII): a
// namenode/datanode distributed file system with fixed-size blocks and
// 3x replication. It exists for Table 1's storage and batch rows — the
// six-full-copies ETL practice and the 33% disk utilization of
// replication — and for the file-based metadata listing whose linear
// cost Figure 15(a) contrasts with metadata acceleration.
package hdfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamlake/internal/sim"
)

// Config tunes the cluster.
type Config struct {
	// DataNodes is the datanode count (default 3).
	DataNodes int
	// Replication is the block replication factor (default 3).
	Replication int
	// BlockSize is the DFS block size (default 128 MiB).
	BlockSize int64
	// DiscardData keeps only file sizes, not contents — used by large
	// benchmark runs where only storage accounting and I/O costs
	// matter. Read returns zero-filled data of the right length.
	DiscardData bool
}

func (c *Config) applyDefaults() {
	if c.DataNodes <= 0 {
		c.DataNodes = 3
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Replication > c.DataNodes {
		c.Replication = c.DataNodes
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 128 << 20
	}
}

// block is one replicated block.
type block struct {
	data     []byte
	size     int64
	replicas []int // datanode indices
}

type file struct {
	blocks []*block
	size   int64
}

// FS is the simulated HDFS cluster.
type FS struct {
	cfg   Config
	clock *sim.Clock
	nodes []*sim.Device
	net   *sim.Device

	mu    sync.Mutex
	files map[string]*file
	rr    int
}

// ErrNotFound is returned for missing paths.
var ErrNotFound = errors.New("hdfs: file not found")

// New builds a cluster.
func New(clock *sim.Clock, cfg Config) *FS {
	cfg.applyDefaults()
	fs := &FS{
		cfg:   cfg,
		clock: clock,
		net:   sim.NewDeviceOf("hdfs-net", sim.Net10GbE),
		files: make(map[string]*file),
	}
	for i := 0; i < cfg.DataNodes; i++ {
		fs.nodes = append(fs.nodes, sim.NewDeviceOf(fmt.Sprintf("datanode%d", i), sim.NVMeSSD))
	}
	return fs
}

// Write stores data at path (overwrite), splitting into blocks and
// writing each block through the replication pipeline (client →
// datanode → datanode → datanode). The modelled cost is the pipeline's
// critical path.
func (fs *FS) Write(path string, data []byte) (time.Duration, error) {
	f := &file{size: int64(len(data))}
	var cost time.Duration
	for off := int64(0); off < int64(len(data)) || (len(data) == 0 && off == 0); off += fs.cfg.BlockSize {
		end := off + fs.cfg.BlockSize
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		b := &block{size: end - off}
		if !fs.cfg.DiscardData {
			b.data = data[off:end]
		}
		fs.mu.Lock()
		for r := 0; r < fs.cfg.Replication; r++ {
			b.replicas = append(b.replicas, (fs.rr+r)%fs.cfg.DataNodes)
		}
		fs.rr++
		fs.mu.Unlock()
		n := b.size
		// Pipeline: one network hop + disk write per replica, serial
		// along the chain.
		for _, node := range b.replicas {
			cost += fs.net.Write(n)
			cost += fs.nodes[node].Write(n)
		}
		f.blocks = append(f.blocks, b)
		if len(data) == 0 {
			break
		}
	}
	fs.mu.Lock()
	fs.files[path] = f
	fs.mu.Unlock()
	return cost, nil
}

// Read returns the file's contents, reading each block from its first
// replica.
func (fs *FS) Read(path string) ([]byte, time.Duration, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]byte, 0, f.size)
	var cost time.Duration
	for _, b := range f.blocks {
		node := 0
		if len(b.replicas) > 0 {
			node = b.replicas[0]
		}
		cost += fs.nodes[node].Read(b.size)
		cost += fs.net.Read(b.size)
		if fs.cfg.DiscardData {
			out = append(out, make([]byte, b.size)...)
		} else {
			out = append(out, b.data...)
		}
	}
	return out, cost, nil
}

// ReadCost charges the cost of reading a file without materializing its
// contents.
func (fs *FS) ReadCost(path string) (time.Duration, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var cost time.Duration
	for _, b := range f.blocks {
		node := 0
		if len(b.replicas) > 0 {
			node = b.replicas[0]
		}
		cost += fs.nodes[node].Read(b.size)
		cost += fs.net.Read(b.size)
	}
	return cost, nil
}

// Delete removes a path.
func (fs *FS) Delete(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(fs.files, path)
	return nil
}

// List returns paths under prefix; the namenode answers from memory but
// the RPC and listing cost is linear in the result size — the file-
// based catalog behaviour of Figure 15(a).
func (fs *FS) List(prefix string) ([]string, time.Duration) {
	fs.mu.Lock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	fs.mu.Unlock()
	sort.Strings(out)
	const perEntry = 120 * time.Microsecond
	return out, time.Duration(len(out)) * perEntry
}

// Exists reports whether path exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Size returns a file's length.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.size, nil
}

// StorageBytes reports physical bytes: logical size times replication —
// the HDFS column of Table 1 and the 33% disk-utilization arithmetic.
func (fs *FS) StorageBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var logical int64
	for _, f := range fs.files {
		logical += f.size
	}
	return logical * int64(fs.cfg.Replication)
}

// FileCount returns the number of files.
func (fs *FS) FileCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}

// DiskUtilization returns logical/physical — 1/3 under 3x replication,
// the number the paper contrasts with erasure coding's 91%.
func (fs *FS) DiskUtilization() float64 {
	return 1 / float64(fs.cfg.Replication)
}
