package hdfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"streamlake/internal/sim"
)

func newFS(t testing.TB, cfg Config) *FS {
	t.Helper()
	return New(sim.NewClock(), cfg)
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, Config{})
	data := bytes.Repeat([]byte("hdfs"), 1000)
	cost, err := fs.Write("/data/part-0000", data)
	if err != nil || cost <= 0 {
		t.Fatal(err)
	}
	got, rcost, err := fs.Read("/data/part-0000")
	if err != nil || rcost <= 0 || !bytes.Equal(got, data) {
		t.Fatalf("read: %v", err)
	}
	if n, _ := fs.Size("/data/part-0000"); n != int64(len(data)) {
		t.Fatalf("size: %d", n)
	}
	if !fs.Exists("/data/part-0000") || fs.Exists("/nope") {
		t.Fatal("Exists broken")
	}
}

func TestBlockSplitting(t *testing.T) {
	fs := newFS(t, Config{BlockSize: 1000})
	data := make([]byte, 3500)
	for i := range data {
		data[i] = byte(i)
	}
	fs.Write("/big", data)
	fs.mu.Lock()
	blocks := len(fs.files["/big"].blocks)
	fs.mu.Unlock()
	if blocks != 4 {
		t.Fatalf("blocks: %d, want 4", blocks)
	}
	got, _, _ := fs.Read("/big")
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block read mismatch")
	}
}

func TestReplicationAccounting(t *testing.T) {
	fs := newFS(t, Config{Replication: 3})
	fs.Write("/a", make([]byte, 1000))
	fs.Write("/b", make([]byte, 500))
	if got := fs.StorageBytes(); got != 4500 {
		t.Fatalf("storage: %d, want 4500", got)
	}
	// The paper's utilization contrast: 3x replication = 33%.
	if u := fs.DiskUtilization(); u < 0.33 || u > 0.34 {
		t.Fatalf("utilization: %v", u)
	}
}

func TestOverwriteReplaces(t *testing.T) {
	fs := newFS(t, Config{})
	fs.Write("/f", make([]byte, 1000))
	fs.Write("/f", make([]byte, 200))
	if got := fs.StorageBytes(); got != 600 {
		t.Fatalf("storage after overwrite: %d", got)
	}
}

func TestDeleteAndErrors(t *testing.T) {
	fs := newFS(t, Config{})
	fs.Write("/f", []byte("x"))
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, _, err := fs.Read("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read deleted: %v", err)
	}
	if _, err := fs.Size("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("size deleted: %v", err)
	}
}

func TestListLinearCost(t *testing.T) {
	fs := newFS(t, Config{})
	for i := 0; i < 200; i++ {
		fs.Write(fmt.Sprintf("/warehouse/tbl/part=%03d/f", i), []byte("x"))
	}
	paths, cost := fs.List("/warehouse/tbl/")
	if len(paths) != 200 || cost <= 0 {
		t.Fatalf("list: %d paths", len(paths))
	}
	_, small := fs.List("/warehouse/tbl/part=001")
	if small >= cost {
		t.Fatal("listing cost not proportional to results")
	}
	if fs.FileCount() != 200 {
		t.Fatalf("file count: %d", fs.FileCount())
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, Config{})
	if _, err := fs.Write("/empty", nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := fs.Read("/empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("empty read: %v %v", got, err)
	}
}

func TestReplicasOnDistinctNodes(t *testing.T) {
	fs := newFS(t, Config{DataNodes: 5, Replication: 3})
	fs.Write("/f", make([]byte, 100))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	reps := fs.files["/f"].blocks[0].replicas
	seen := map[int]bool{}
	for _, r := range reps {
		if seen[r] {
			t.Fatalf("replica repeated on node %d", r)
		}
		seen[r] = true
	}
	if len(reps) != 3 {
		t.Fatalf("replicas: %v", reps)
	}
}
