// Package kafkafs is the reproduction's Kafka baseline (Section VII):
// a file-based message broker that persists topic partitions as segment
// files on the brokers' local file systems, relying on the OS page cache
// for write acknowledgement and replicating segments to follower brokers
// over the cluster network. It exists so Table 1's storage and stream
// rows compare StreamLake against the same architecture the paper's
// customers ran.
package kafkafs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"streamlake/internal/sim"
)

// Config tunes the broker cluster.
type Config struct {
	// Brokers is the node count (default 3).
	Brokers int
	// Replication is the partition replication factor (default 3).
	Replication int
	// SegmentBytes rolls segment files at this size (default 64 MiB).
	SegmentBytes int64
	// AcksAll makes produces wait for all replicas (acks=all); false
	// acknowledges after the leader's page-cache write (acks=1).
	AcksAll bool
	// FlushBytes fsyncs the page cache to disk after this many dirty
	// bytes (default 1 MiB), charging the disk off the ack path.
	FlushBytes int64
}

func (c *Config) applyDefaults() {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.Replication > c.Brokers {
		c.Replication = c.Brokers
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 1 << 20
	}
}

// Record is one stored message.
type Record struct {
	Key, Value []byte
	Offset     int64
}

// segment is one log segment file.
type segment struct {
	base    int64
	records []Record
	bytes   int64
}

// partition is one replicated topic partition.
type partition struct {
	leader   int // broker index
	segments []*segment
	next     int64
	dirty    int64 // page-cache bytes not yet fsynced
}

type topic struct {
	parts []*partition
}

// Broker is a Kafka-style broker cluster.
type Broker struct {
	cfg   Config
	clock *sim.Clock
	disks []*sim.Device
	net   *sim.Device
	// pageCache models the memcpy-speed ack path of acks=1.
	pageCache *sim.Device

	mu     sync.Mutex
	topics map[string]*topic
}

// Errors returned by the broker.
var (
	ErrUnknownTopic = errors.New("kafkafs: unknown topic")
	ErrBadPartition = errors.New("kafkafs: partition out of range")
)

// New builds a broker cluster.
func New(clock *sim.Clock, cfg Config) *Broker {
	cfg.applyDefaults()
	b := &Broker{
		cfg:    cfg,
		clock:  clock,
		net:    sim.NewDeviceOf("kafka-net", sim.Net10GbE),
		topics: make(map[string]*topic),
	}
	for i := 0; i < cfg.Brokers; i++ {
		b.disks = append(b.disks, sim.NewDeviceOf(fmt.Sprintf("kafka-disk%d", i), sim.NVMeSSD))
	}
	// Page cache: RAM-speed with SCM-like spec.
	spec := sim.Spec(sim.SCM)
	spec.ReadLatency = 100 * time.Nanosecond
	spec.WriteLatency = 150 * time.Nanosecond
	spec.Capacity = 0
	b.pageCache = sim.NewDevice("kafka-pagecache", spec)
	return b
}

// CreateTopic declares a topic with n partitions, leaders round-robin
// across brokers.
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions <= 0 {
		partitions = 1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("kafkafs: topic %s exists", name)
	}
	t := &topic{}
	for i := 0; i < partitions; i++ {
		t.parts = append(t.parts, &partition{leader: i % b.cfg.Brokers})
	}
	b.topics[name] = t
	return nil
}

// Produce appends one message, returning its offset and the modelled
// produce latency.
func (b *Broker) Produce(name string, part int, key, value []byte) (int64, time.Duration, error) {
	b.mu.Lock()
	t, ok := b.topics[name]
	if !ok {
		b.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	if part < 0 || part >= len(t.parts) {
		b.mu.Unlock()
		return 0, 0, ErrBadPartition
	}
	p := t.parts[part]
	n := int64(len(key) + len(value))
	// Append to the active segment (page cache write).
	if len(p.segments) == 0 || p.segments[len(p.segments)-1].bytes+n > b.cfg.SegmentBytes {
		p.segments = append(p.segments, &segment{base: p.next})
	}
	seg := p.segments[len(p.segments)-1]
	off := p.next
	p.next++
	seg.records = append(seg.records, Record{Key: key, Value: value, Offset: off})
	seg.bytes += n
	p.dirty += n
	flush := p.dirty >= b.cfg.FlushBytes
	if flush {
		p.dirty = 0
	}
	leader := p.leader
	b.mu.Unlock()

	// Ack path: leader page-cache write; replication to followers rides
	// the network (followers also page-cache).
	cost := b.pageCache.Write(n)
	replCost := time.Duration(0)
	for r := 1; r < b.cfg.Replication; r++ {
		c := b.net.Write(n)
		fb := b.pageCache.Write(n)
		if c+fb > replCost {
			replCost = c + fb
		}
	}
	if b.cfg.AcksAll {
		cost += replCost
	}
	// Background fsync: disk busy time accrues (throughput-relevant)
	// but is off the ack path.
	if flush {
		for r := 0; r < b.cfg.Replication; r++ {
			b.disks[(leader+r)%b.cfg.Brokers].Write(b.cfg.FlushBytes)
		}
	}
	return off, cost, nil
}

// Consume reads up to max records from a partition starting at offset.
func (b *Broker) Consume(name string, part int, offset int64, max int) ([]Record, time.Duration, error) {
	if max <= 0 {
		max = 256
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	if part < 0 || part >= len(t.parts) {
		return nil, 0, ErrBadPartition
	}
	p := t.parts[part]
	var out []Record
	var bytes int64
	for _, seg := range p.segments {
		if seg.base+int64(len(seg.records)) <= offset {
			continue
		}
		for _, r := range seg.records {
			if r.Offset >= offset && len(out) < max {
				out = append(out, r)
				bytes += int64(len(r.Key) + len(r.Value))
			}
		}
		if len(out) >= max {
			break
		}
	}
	// Hot reads come from page cache; Kafka's design point.
	return out, b.pageCache.Read(bytes), nil
}

// End returns the next offset of a partition.
func (b *Broker) End(name string, part int) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	if part < 0 || part >= len(t.parts) {
		return 0, ErrBadPartition
	}
	return t.parts[part].next, nil
}

// Partitions returns a topic's partition count.
func (b *Broker) Partitions(name string) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	return len(t.parts), nil
}

// StorageBytes reports the cluster-wide physical bytes: logical log
// bytes times the replication factor — the Kafka column of Table 1.
func (b *Broker) StorageBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var logical int64
	for _, t := range b.topics {
		for _, p := range t.parts {
			for _, s := range p.segments {
				logical += s.bytes
			}
		}
	}
	return logical * int64(b.cfg.Replication)
}

// ScalePartitions grows a topic to n partitions. Unlike StreamLake's
// metadata-only remap, a file-based broker must move segment data to
// rebalance leaders across brokers; the returned cost charges the
// network and disks for the bytes moved — the Figure 14(c) contrast.
func (b *Broker) ScalePartitions(name string, n int) (moved int64, cost time.Duration, err error) {
	b.mu.Lock()
	t, ok := b.topics[name]
	if !ok {
		b.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownTopic, name)
	}
	old := len(t.parts)
	for i := old; i < n; i++ {
		t.parts = append(t.parts, &partition{leader: i % b.cfg.Brokers})
	}
	// Rebalancing moves a share of existing data proportional to the
	// ownership change.
	var logical int64
	for _, p := range t.parts[:old] {
		for _, s := range p.segments {
			logical += s.bytes
		}
	}
	b.mu.Unlock()
	if n > old && old > 0 {
		moved = logical * int64(n-old) / int64(n)
		cost = b.net.Write(moved)
		cost += b.disks[0].Write(moved)
	}
	return moved, cost, nil
}
