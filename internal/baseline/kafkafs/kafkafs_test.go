package kafkafs

import (
	"errors"
	"fmt"
	"testing"

	"streamlake/internal/sim"
)

func newBroker(t testing.TB, cfg Config) *Broker {
	t.Helper()
	return New(sim.NewClock(), cfg)
}

func TestProduceConsume(t *testing.T) {
	b := newBroker(t, Config{})
	if err := b.CreateTopic("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("t", 2); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	off, cost, err := b.Produce("t", 0, []byte("k"), []byte("hello"))
	if err != nil || off != 0 || cost <= 0 {
		t.Fatalf("produce: %d %v %v", off, cost, err)
	}
	b.Produce("t", 0, []byte("k"), []byte("world"))
	recs, _, err := b.Consume("t", 0, 0, 10)
	if err != nil || len(recs) != 2 || string(recs[1].Value) != "world" {
		t.Fatalf("consume: %+v %v", recs, err)
	}
	// Offsets are per partition.
	off2, _, _ := b.Produce("t", 1, []byte("k"), []byte("x"))
	if off2 != 0 {
		t.Fatalf("partition 1 offset: %d", off2)
	}
	if end, _ := b.End("t", 0); end != 2 {
		t.Fatalf("end: %d", end)
	}
	if n, _ := b.Partitions("t"); n != 2 {
		t.Fatalf("partitions: %d", n)
	}
}

func TestErrors(t *testing.T) {
	b := newBroker(t, Config{})
	if _, _, err := b.Produce("nope", 0, nil, nil); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("produce unknown: %v", err)
	}
	b.CreateTopic("t", 1)
	if _, _, err := b.Produce("t", 5, nil, nil); !errors.Is(err, ErrBadPartition) {
		t.Fatalf("bad partition: %v", err)
	}
	if _, _, err := b.Consume("nope", 0, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("consume unknown: %v", err)
	}
	if _, err := b.End("nope", 0); err == nil {
		t.Fatal("End on unknown topic")
	}
}

func TestStorageBytesCountReplication(t *testing.T) {
	b := newBroker(t, Config{Replication: 3})
	b.CreateTopic("t", 1)
	b.Produce("t", 0, []byte("kk"), []byte("vvvvvvvv")) // 10 logical bytes
	if got := b.StorageBytes(); got != 30 {
		t.Fatalf("storage: %d, want 30", got)
	}
}

func TestAcksAllSlowerThanAcksOne(t *testing.T) {
	one := newBroker(t, Config{AcksAll: false})
	all := newBroker(t, Config{AcksAll: true})
	one.CreateTopic("t", 1)
	all.CreateTopic("t", 1)
	_, c1, _ := one.Produce("t", 0, []byte("k"), make([]byte, 1024))
	_, cAll, _ := all.Produce("t", 0, []byte("k"), make([]byte, 1024))
	if cAll <= c1 {
		t.Fatalf("acks=all (%v) not slower than acks=1 (%v)", cAll, c1)
	}
}

func TestSegmentRolling(t *testing.T) {
	b := newBroker(t, Config{SegmentBytes: 100})
	b.CreateTopic("t", 1)
	for i := 0; i < 50; i++ {
		b.Produce("t", 0, []byte("key"), make([]byte, 30))
	}
	b.mu.Lock()
	segs := len(b.topics["t"].parts[0].segments)
	b.mu.Unlock()
	if segs < 10 {
		t.Fatalf("segments: %d, want rolling", segs)
	}
	// All records still consumable across segments.
	recs, _, _ := b.Consume("t", 0, 0, 100)
	if len(recs) != 50 {
		t.Fatalf("consumed %d", len(recs))
	}
	// Mid-stream offset works.
	recs, _, _ = b.Consume("t", 0, 25, 100)
	if len(recs) != 25 || recs[0].Offset != 25 {
		t.Fatalf("offset consume: %d recs, first %d", len(recs), recs[0].Offset)
	}
}

func TestScalePartitionsMovesData(t *testing.T) {
	b := newBroker(t, Config{})
	b.CreateTopic("t", 4)
	for i := 0; i < 1000; i++ {
		b.Produce("t", i%4, []byte("k"), make([]byte, 100))
	}
	moved, cost, err := b.ScalePartitions("t", 8)
	if err != nil {
		t.Fatal(err)
	}
	// Unlike StreamLake's metadata-only remap, scaling a file-based
	// broker moves real data.
	if moved == 0 || cost <= 0 {
		t.Fatalf("scale moved %d bytes, cost %v", moved, cost)
	}
	if n, _ := b.Partitions("t"); n != 8 {
		t.Fatalf("partitions after scale: %d", n)
	}
	if _, _, err := b.ScalePartitions("nope", 8); err == nil {
		t.Fatal("scale unknown topic")
	}
}

func TestThroughputParityData(t *testing.T) {
	// Sanity for Table 1's stream row: page-cache acks keep per-message
	// cost small and flat as volume grows.
	b := newBroker(t, Config{})
	b.CreateTopic("t", 3)
	var total int64
	for i := 0; i < 3000; i++ {
		_, c, err := b.Produce("t", i%3, []byte("k"), make([]byte, 1024))
		if err != nil {
			t.Fatal(err)
		}
		total += int64(c)
	}
	avg := total / 3000
	if avg > 20_000 { // ns; page-cache ack must stay microsecond-scale
		t.Fatalf("avg produce cost %d ns", avg)
	}
}

func ExampleBroker_Produce() {
	b := New(sim.NewClock(), Config{})
	b.CreateTopic("demo", 1)
	off, _, _ := b.Produce("demo", 0, []byte("key"), []byte("value"))
	fmt.Println(off)
	// Output: 0
}
