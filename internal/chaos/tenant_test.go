package chaos

import "testing"

// TestNoisyNeighborChaos: with the tenant plane on, a lower-priority
// tenant bursting far past its bandwidth quota is throttled while the
// protected steady tenant is never denied, every acked tenant write
// survives the drain, and the whole run — quota decisions included —
// replays bit-identically.
func TestNoisyNeighborChaos(t *testing.T) {
	cfg := Config{
		Seed:          21,
		Events:        500,
		NoisyNeighbor: true,
		Partitions:    true,
		DiskKills:     true,
	}
	rep, same, err := RunWithReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("noisy-neighbor replay diverged (digest %x)", rep.Digest)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.NoisyAcked == 0 || rep.SteadyAcked == 0 {
		t.Fatalf("degenerate tenant schedule: %+v", rep)
	}
	if rep.NoisyLimited == 0 {
		t.Fatalf("noisy tenant burst past its quota but was never throttled: %+v", rep)
	}
	// The steady tenant has no quotas and the most protected priority:
	// isolation means the noisy tenant's abuse never denies it.
	if rep.SteadyDenied != 0 {
		t.Fatalf("protected tenant was denied %d times: %+v", rep.SteadyDenied, rep)
	}
	if rep.Drained < rep.Produced {
		t.Fatalf("acked tenant writes lost in the drain: %+v", rep)
	}
	// A different seed must reshuffle the quota decisions too.
	other, err := Run(Config{Seed: 22, Events: 500, NoisyNeighbor: true, Partitions: true, DiskKills: true})
	if err != nil {
		t.Fatal(err)
	}
	if other.Digest == rep.Digest {
		t.Fatal("different seeds produced identical noisy-neighbor digests")
	}
}
