package chaos

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"streamlake"
)

// TestClusterFailoverChaos: randomized node kills and revives —
// including the metadata leader — break none of the invariants: no
// acked write lost, nothing duplicated, every ack in the replicated
// metadata log, committed logs agree.
func TestClusterFailoverChaos(t *testing.T) {
	rep, err := Run(Config{
		Seed:       3,
		Events:     400,
		Workers:    5,
		Failover:   true,
		Partitions: true,
		DeadlineMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Produced == 0 {
		t.Fatal("clustered chaos run acked nothing")
	}
	if rep.NodeKills == 0 {
		t.Fatal("failover schedule killed no nodes")
	}
	if rep.Elections == 0 {
		t.Fatal("no elections — the leader was never disturbed")
	}
	if rep.MetaCommits == 0 {
		t.Fatal("no metadata commits")
	}
	t.Logf("failover chaos: acked=%d kills=%d elections=%d metaCommits=%d",
		rep.Produced, rep.NodeKills, rep.Elections, rep.MetaCommits)
}

// TestClusterSplitBrainChaos: metadata-plane splits put the leader in a
// minority; acks may only come from the majority side, and healed logs
// must converge.
func TestClusterSplitBrainChaos(t *testing.T) {
	rep, err := Run(Config{
		Seed:       11,
		Events:     400,
		Workers:    5,
		SplitBrain: true,
		DeadlineMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Produced == 0 {
		t.Fatal("split-brain run acked nothing")
	}
	if rep.Elections == 0 {
		t.Fatal("no elections — no split ever isolated the leader")
	}
	t.Logf("split-brain chaos: acked=%d elections=%d", rep.Produced, rep.Elections)
}

// TestClusterChaosReplayIsBitIdentical: the full cluster fault mix is
// still a pure function of its seed.
func TestClusterChaosReplayIsBitIdentical(t *testing.T) {
	cfg := Config{
		Seed:       21,
		Events:     300,
		Workers:    5,
		Failover:   true,
		SplitBrain: true,
		DeadlineMS: 50,
	}
	rep, same, err := RunWithReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("clustered replay diverged (digest %x)", rep.Digest)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// drillResult is one scripted failover drill's outcome.
type drillResult struct {
	digest    uint64
	detect    time.Duration // kill → both deaths committed to membership
	unavail   time.Duration // kill → first post-failure ack
	rebalance time.Duration // re-replication elapsed virtual time
	acked     int
}

// runFailoverDrill is the paper's hardest scripted scenario: a 5-node
// cluster loses its metadata leader AND a storage node mid-workload,
// with no revival. Detection, re-election, and re-replication must all
// complete inside their virtual-time budgets, and every acked write
// must remain readable with the exact bytes that were acked.
func runFailoverDrill(t *testing.T, seed uint64) drillResult {
	t.Helper()
	const drillTopic = "drill"
	lake, err := streamlake.Open(streamlake.Config{
		Nodes:        5,
		Workers:      5,
		SSDDisks:     10,
		Seed:         seed,
		PLogCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := lake.Cluster()
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: drillTopic, StreamNum: 4}); err != nil {
		t.Fatal(err)
	}
	prod := lake.Producer("drill-producer")
	acked := map[int]map[int64]string{}
	seq := 0
	send := func() bool {
		seq++
		key := fmt.Sprintf("k%06d", seq)
		msg, _, err := prod.Send(drillTopic, []byte(key), []byte("v"+key))
		if err != nil {
			return false
		}
		m := acked[msg.Stream]
		if m == nil {
			m = map[int64]string{}
			acked[msg.Stream] = m
		}
		if _, dup := m[msg.Offset]; dup {
			t.Fatalf("stream %d offset %d acked twice", msg.Stream, msg.Offset)
		}
		m[msg.Offset] = key
		return true
	}

	// Phase 1: healthy traffic.
	for i := 0; i < 60; i++ {
		if !send() {
			t.Fatalf("healthy send %d failed", i)
		}
		if i%8 == 0 {
			lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
	}

	// Phase 2: kill the metadata leader and one storage node, together.
	leader := cl.Leader()
	storage := (leader + 2) % 5
	killAt := lake.Clock().Now()
	if err := cl.KillNode(leader); err != nil {
		t.Fatal(err)
	}
	if err := cl.KillNode(storage); err != nil {
		t.Fatal(err)
	}

	// Phase 3: keep the workload running through the failure. Track when
	// membership converges and when the first post-failure ack lands.
	var detect, unavail time.Duration
	for i := 0; i < 400; i++ {
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
		v := cl.CurrentView()
		if detect == 0 && !v.Alive[leader] && !v.Alive[storage] {
			detect = lake.Clock().Now() - killAt
		}
		if unavail == 0 && send() {
			unavail = lake.Clock().Now() - killAt
		}
		if detect > 0 && unavail > 0 {
			break
		}
	}
	if detect == 0 {
		t.Fatal("node deaths never committed to membership")
	}
	if unavail == 0 {
		t.Fatal("producers never recovered after the failover")
	}

	// Phase 4: more traffic on the survivors, then bounded
	// re-replication. Time advances every iteration so tripped breakers
	// from the outage window cool down and retried sends get through.
	extra := 0
	for i := 0; i < 400 && extra < 60; i++ {
		if send() {
			extra++
		}
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
	}
	if extra < 60 {
		t.Fatalf("post-failover traffic stalled: only %d acks", extra)
	}
	reb := cl.RunRebalance(2 * time.Second)
	if !reb.Complete {
		t.Fatalf("rebalance incomplete: %d logs, %d stale bytes left", reb.RemainingLogs, reb.RemainingStale)
	}

	// Phase 5: every acked write is readable with the acked bytes, once.
	cons := lake.Consumer("drill-verifier")
	if err := cons.Subscribe(drillTopic); err != nil {
		t.Fatal(err)
	}
	seen := map[int]map[int64]string{}
	for empty := 0; empty < 2; {
		msgs, _, err := cons.Poll(256)
		if err != nil {
			t.Fatalf("verifier poll: %v", err)
		}
		if len(msgs) == 0 {
			empty++
			continue
		}
		empty = 0
		for _, m := range msgs {
			sm := seen[m.Stream]
			if sm == nil {
				sm = map[int64]string{}
				seen[m.Stream] = sm
			}
			if _, dup := sm[m.Offset]; dup {
				t.Fatalf("stream %d offset %d delivered twice", m.Stream, m.Offset)
			}
			sm[m.Offset] = string(m.Key)
		}
	}
	total := 0
	for stream, offs := range acked {
		for off, key := range offs {
			got, ok := seen[stream][off]
			if !ok {
				t.Fatalf("acked write lost: stream %d offset %d (%s)", stream, off, key)
			}
			if got != key {
				t.Fatalf("acked write mangled: stream %d offset %d has %q want %q", stream, off, got, key)
			}
			if !cl.ProduceCommitted(drillTopic, stream, off, 1) {
				t.Fatalf("acked write missing from metadata log: stream %d offset %d", stream, off)
			}
			total++
		}
	}

	// Digest the observable outcome for the replay check.
	d := fnv.New64a()
	streams := make([]int, 0, len(acked))
	for s := range acked {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	for _, s := range streams {
		offs := make([]int64, 0, len(acked[s]))
		for off := range acked[s] {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, off := range offs {
			fmt.Fprintf(d, "%d/%d=%s;", s, off, acked[s][off])
		}
	}
	fmt.Fprintf(d, "detect=%d unavail=%d rebalanced=%d;", detect, unavail, reb.RepairedBytes)
	return drillResult{
		digest:    d.Sum64(),
		detect:    detect,
		unavail:   unavail,
		rebalance: reb.Elapsed,
		acked:     total,
	}
}

// TestClusterRebalanceMovesBytes: when a dead node actually hosts
// durable plog copies, the committed death verdict marks them stale
// and RunRebalance re-replicates them onto survivors. The drill's
// light traffic never fills a 256-record slice, so this test drives a
// single stream past the flush threshold first.
func TestClusterRebalanceMovesBytes(t *testing.T) {
	lake, err := streamlake.Open(streamlake.Config{
		Nodes:        5,
		Workers:      2,
		SSDDisks:     10,
		Seed:         9,
		PLogCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := lake.Cluster()
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: "bulk", StreamNum: 1}); err != nil {
		t.Fatal(err)
	}
	prod := lake.Producer("bulk-producer")
	payload := bytes.Repeat([]byte("x"), 512)
	for i := 0; i < 600; i++ {
		if _, _, err := prod.Send("bulk", []byte(fmt.Sprintf("k%04d", i)), payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i%32 == 0 {
			lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
	}

	// Kill every node hosting a copy of the first durable group — at
	// most 2 of them, to preserve the metadata majority (3 of 5).
	owned := map[int]int{}
	for _, n := range cl.Status().Nodes {
		owned[n.ID] = n.SlicesOwned
	}
	killed := 0
	for id := 0; id < 5 && killed < 2; id++ {
		if owned[id] > 0 {
			if err := cl.KillNode(id); err != nil {
				t.Fatal(err)
			}
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("no node owns a durable slice — the bulk stream never flushed")
	}
	for i := 0; i < 200; i++ {
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
		if cl.Stats().StaleMarkedByte > 0 {
			break
		}
	}
	if cl.Stats().StaleMarkedByte == 0 {
		t.Fatal("death verdicts committed but no bytes marked stale")
	}

	reb := cl.RunRebalance(2 * time.Second)
	if !reb.Complete {
		t.Fatalf("rebalance incomplete: %+v", reb)
	}
	if reb.RepairedBytes == 0 {
		t.Fatalf("stale bytes marked (%dB) but nothing re-replicated", cl.Stats().StaleMarkedByte)
	}

	// The re-replicated data still reads back in full.
	cons := lake.Consumer("bulk-verifier")
	if err := cons.Subscribe("bulk"); err != nil {
		t.Fatal(err)
	}
	got := 0
	for empty := 0; empty < 2; {
		msgs, _, err := cons.Poll(256)
		if err != nil {
			t.Fatalf("verifier poll: %v", err)
		}
		if len(msgs) == 0 {
			empty++
			continue
		}
		empty = 0
		for _, m := range msgs {
			if !bytes.Equal(m.Value, payload) {
				t.Fatalf("offset %d re-read mangled after rebalance", m.Offset)
			}
			got++
		}
	}
	if got != 600 {
		t.Fatalf("drained %d of 600 messages after losing %d node(s)", got, killed)
	}
	t.Logf("rebalance: staleMarked=%dB repaired=%dB elapsed=%v",
		cl.Stats().StaleMarkedByte, reb.RepairedBytes, reb.Elapsed)
}

// TestClusterFailoverDrill: the scripted leader-plus-storage-node kill,
// with virtual-time ceilings on detection, producer unavailability, and
// re-replication, and a bit-identical replay.
func TestClusterFailoverDrill(t *testing.T) {
	res := runFailoverDrill(t, 424242)
	if res.acked < 100 {
		t.Fatalf("drill acked only %d writes", res.acked)
	}
	// Detection budget: the detector needs DeadAfter of silence plus
	// election and commit rounds — 4x the full reaction window is the
	// enforced ceiling.
	if budget := 80 * time.Millisecond; res.detect > budget {
		t.Fatalf("detection took %v, ceiling %v", res.detect, budget)
	}
	if budget := 120 * time.Millisecond; res.unavail > budget {
		t.Fatalf("producers unavailable for %v, ceiling %v", res.unavail, budget)
	}
	if budget := 2 * time.Second; res.rebalance > budget {
		t.Fatalf("re-replication took %v, ceiling %v", res.rebalance, budget)
	}
	// Same seed, same drill, bit for bit.
	again := runFailoverDrill(t, 424242)
	if again.digest != res.digest {
		t.Fatalf("drill replay diverged: %x vs %x", res.digest, again.digest)
	}
	// And a different seed genuinely changes the run.
	other := runFailoverDrill(t, 777)
	if other.digest == res.digest {
		t.Fatal("different seeds produced identical drills")
	}
	t.Logf("drill: acked=%d detect=%v unavail=%v rebalance=%v",
		res.acked, res.detect, res.unavail, res.rebalance)
}
