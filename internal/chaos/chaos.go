// Package chaos is a deterministic chaos harness for the full lake: a
// seeded scheduler composes network drops, delays, directed partitions,
// disk kills, silent corruption, and repair/scrub passes against a
// produce/consume workload, then checks the invariants that define
// "resilient" — no acked write is lost, retries never double-append,
// consumer offsets stay monotonic, and the whole run replays
// bit-identically from the same seed.
//
// Everything runs in virtual time: the harness advances the lake's
// clock explicitly between events, so a run is a pure function of its
// Config.
package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"streamlake"
	"streamlake/internal/cluster"
	"streamlake/internal/plog"
	"streamlake/internal/resil"
	"streamlake/internal/sim"
	"streamlake/internal/tenant"
)

// Config parameterizes one chaos run. The zero value is usable; Seed
// selects the schedule.
type Config struct {
	// Seed drives the event scheduler, the lake's fault RNGs, and the
	// producers' backoff jitter. Same seed, same run.
	Seed uint64
	// Events is how many scheduler steps to run (default 400).
	Events int
	// Streams is the topic's stream count (default 4).
	Streams int
	// Workers sizes the stream worker fleet (default 3).
	Workers int
	// Hedging enables hedged replica reads.
	Hedging bool
	// DropRate bounds the per-link drop rates the scheduler injects
	// (default 0.25).
	DropRate float64
	// MaxDelay bounds injected link delays (default 2ms).
	MaxDelay time.Duration
	// DiskKills lets the scheduler kill and revive SSDs (at most two
	// down at once, inside 3x replication's loss tolerance).
	DiskKills bool
	// Corruption lets the scheduler flip bits in stored copies (the
	// scrubber and verify-on-read must mask them).
	Corruption bool
	// Partitions lets the scheduler cut client→worker links outright.
	Partitions bool
	// DeadlineMS, when > 0, attaches a virtual-time deadline to every
	// produce and poll.
	DeadlineMS int64
	// CacheMB sizes the lake's two-tier read cache (0 = disabled).
	CacheMB int
	// Mixed interleaves lakehouse inserts, scans, tiering passes, and
	// cache-coherence probes with the streaming schedule — the
	// everything-at-once workload. The probes enforce the cache
	// invariant: a cached read never differs from a device read.
	Mixed bool
	// Compressed runs the lake with cold-tier compression on (implies
	// Mixed, whose tiering events migrate quiescent logs to the HDD pool
	// — the compression boundary). The standard invariants now cover
	// compressed extents: coherence probes demand cached ≡ device bytes
	// across codec transitions, the drain proves acked writes survive a
	// compress/decompress round trip bit-exact, and the digest (which
	// folds in the compression counters) must replay identically.
	Compressed bool
	// GroupCommit runs the lake with slice group commit on (4 slices per
	// coalesced device write), so the loss/duplication invariants and the
	// replay digest are checked over the batched flush path.
	GroupCommit bool
	// NoisyNeighbor runs the lake with the tenant QoS plane on and
	// interleaves two tenants with the fault schedule: "steady", a
	// protected in-quota tenant, and "noisy", a lower-priority tenant
	// that bursts large values far past its bandwidth quota. The
	// standard invariants extend over both: an acked tenant write is
	// never lost, a throttled or shed one creates no obligations, and
	// the run replays bit-identically.
	NoisyNeighbor bool
	// Nodes runs the lake as a multi-node cluster of this size. Set
	// (or implied by Failover/SplitBrain, which default it to 5) it adds
	// the cluster-plane invariants: every acked produce is in the
	// replicated metadata log, committed logs agree across nodes, and at
	// most one leader wins any term.
	Nodes int
	// Failover lets the scheduler kill and revive whole nodes — at most
	// a minority down at once, with a thumb on the scale toward killing
	// the current metadata leader.
	Failover bool
	// SplitBrain lets the scheduler cut the metadata plane into a
	// minority holding the current leader and a majority that must
	// re-elect; acks may only come from the majority side while the
	// split stands.
	SplitBrain bool
	// Elastic lets the scheduler grow and shrink the cluster at runtime,
	// up to nine nodes: joins go learner → catch-up → committed config
	// entry, removals go drain → relocate → committed tombstone, both
	// through the same replicated-log path lakectl uses. Every
	// successful join is checked against the movement bound the
	// rebalance planner promised — at most (1/(N+1))·(1+slack) of the
	// live bytes. Composes with Failover and SplitBrain for the
	// join-under-fire drill; implies Nodes=5 when Nodes is unset.
	Elastic bool
}

func (c Config) withDefaults() Config {
	if c.Events <= 0 {
		c.Events = 400
	}
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.DropRate <= 0 {
		c.DropRate = 0.25
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if (c.Failover || c.SplitBrain || c.Elastic) && c.Nodes <= 1 {
		c.Nodes = 5
	}
	if c.Compressed {
		// Compression only engages at the tiering boundary; the Mixed
		// schedule is what drives logs across it.
		c.Mixed = true
	}
	return c
}

// Report is what one chaos run did and what it proved.
type Report struct {
	Events       int
	Produced     int64 // messages acked to producers
	Consumed     int64 // messages delivered during the run
	Drained      int64 // messages read back by the final full drain
	Retries      int64
	NetDrops     int64
	Sheds        int64
	Trips        int64
	Deadlines    int64
	Hedged       int64
	HedgeWins    int64
	DiskKills    int
	Corrupted    int
	TableRows    int64         // rows committed to the lakehouse table (Mixed runs)
	Coherence    int           // cached-vs-device read probes executed (Mixed runs)
	GroupCommits int64         // coalesced slice commits (GroupCommit runs)
	CacheHits    int64         // read-cache hits across both tiers at run end
	ReadP99      time.Duration // plog read latency p99 at run end
	NoisyAcked   int64         // noisy-tenant sends acked (NoisyNeighbor runs)
	NoisyLimited int64         // noisy-tenant sends throttled by quota
	NoisyShed    int64         // noisy-tenant sends shed under overload
	SteadyAcked  int64         // steady-tenant sends acked
	SteadyDenied int64         // steady-tenant sends throttled or shed (should stay rare)
	ColdLogs     int           // logs holding compressed extents at run end (Compressed runs)
	ColdRawB     int64         // logical bytes those logs hold
	ColdCompB    int64         // those bytes as stored after codec negotiation
	NodeKills    int           // whole-node kills (Failover runs)
	Elections    int64         // metadata-leader elections (clustered runs)
	MetaCommits  int64         // metadata-log commits (clustered runs)
	RebalancedB  int64         // bytes re-replicated by the settle rebalance
	RebalanceOK  bool          // settle rebalance restored full redundancy
	Joins        int           // committed runtime node joins (Elastic runs)
	Removes      int           // committed runtime node removals (Elastic runs)
	JoinMovedB   int64         // live bytes join rebalances scheduled to move
	EvacuatedB   int64         // live bytes relocated off leaving nodes
	Digest       uint64        // FNV-1a over the run's observable outcome
	Violations   []string      // empty on a clean run
}

const topic = "chaos"

// Run executes one chaos run and returns its report. A non-empty
// Report.Violations means an invariant broke; the error covers setup
// failures only.
func Run(cfg Config) (Report, error) { return run(cfg, 0) }

// RunDegraded is Run with an extra phase: after the fault schedule
// settles, one SSD is slowed by extra latency and every stream is
// re-read end to end several times — the sick-but-alive device
// scenario hedged reads exist for. Comparing the resulting ReadP99
// with and without Config.Hedging on the same seed quantifies what
// hedging buys.
func RunDegraded(cfg Config, extra time.Duration) (Report, error) { return run(cfg, extra) }

func run(cfg Config, degrade time.Duration) (Report, error) {
	cfg = cfg.withDefaults()
	lakeCfg := streamlake.Config{
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		PLogCapacity:   1 << 20,
		DisableHedging: !cfg.Hedging,
		CacheMB:        cfg.CacheMB,
		Nodes:          cfg.Nodes,
		Compression:    cfg.Compressed,
	}
	if cfg.Nodes > 1 {
		// Give every node at least two disks so a dead node's share can
		// re-replicate onto its survivors' domains.
		lakeCfg.SSDDisks = 2 * cfg.Nodes
	}
	if cfg.GroupCommit {
		lakeCfg.GroupCommitSlices = 4
	}
	if cfg.NoisyNeighbor {
		lakeCfg.Tenants = []streamlake.TenantConfig{
			{Name: "steady", Weight: 4, Priority: 0},
			{Name: "noisy", Weight: 1, Priority: 1, IOPS: 200, BandwidthBps: 256 << 10, CapacityBytes: 64 << 20},
		}
	}
	lake, err := streamlake.Open(lakeCfg)
	if err != nil {
		return Report{}, err
	}
	if cfg.Hedging {
		// Chaos runs see few, large slice reads, so warm the hedge
		// tracker faster and hedge off the median instead of the p95.
		lake.Logs().SetHedge(plog.HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8})
	}
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: topic, StreamNum: cfg.Streams}); err != nil {
		return Report{}, err
	}
	h := &harness{
		cfg:   cfg,
		lake:  lake,
		rng:   sim.NewRNG(cfg.Seed ^ 0x63_68_61_6f_73), // "chaos"
		acked: map[int]map[int64]string{},
		last:  map[int]int64{},
	}
	h.prod = lake.Producer("chaos-producer")
	if cfg.NoisyNeighbor {
		h.prodSteady = lake.TenantProducer("chaos-steady", "steady")
		h.prodNoisy = lake.TenantProducer("chaos-noisy", "noisy")
	}
	h.cons = lake.Consumer("chaos-group")
	if err := h.cons.Subscribe(topic); err != nil {
		return Report{}, err
	}
	for i := 0; i < cfg.Events; i++ {
		h.step(i)
	}
	h.settle()
	if degrade > 0 {
		// One healthy pass first so the hedge latency tracker is warm —
		// the comparison then measures steady-state hedging, not the
		// cold start (run in both modes for a like-for-like schedule).
		h.readSweep(1)
		lake.Faults().DegradeDisk("ssd", 0, degrade)
		h.readSweep(4)
	}
	h.drainAndCheck()
	h.clusterCheck()
	return h.report(), nil
}

// RunWithReplay runs the same config twice and reports whether the two
// runs were bit-identical (same digest). The returned report is the
// first run's.
func RunWithReplay(cfg Config) (Report, bool, error) {
	a, err := Run(cfg)
	if err != nil {
		return Report{}, false, err
	}
	b, err := Run(cfg)
	if err != nil {
		return a, false, err
	}
	return a, a.Digest == b.Digest, nil
}

type harness struct {
	cfg        Config
	lake       *streamlake.Lake
	rng        *sim.RNG
	prod       *streamlake.Producer
	prodSteady *streamlake.Producer
	prodNoisy  *streamlake.Producer
	cons       *streamlake.Consumer

	acked      map[int]map[int64]string // stream → offset → key
	last       map[int]int64            // stream → last consumed offset (monotonicity)
	produced   int64
	consumed   int64
	drained    int64
	eventSeq   int
	kills      []string // "pool/disk" currently dead, oldest first
	killCount  int
	corrupted  int
	partitions [][2]string
	violations []string

	// NoisyNeighbor state.
	noisyAcked     int64
	noisyThrottled int64
	noisyShed      int64
	steadyAcked    int64
	steadyDenied   int64

	// Mixed-workload state.
	tableMade bool
	tableRows int64 // rows whose insert was acked
	coherence int   // cache-coherence probes executed

	// Cluster-mode state.
	nodeKills     []int // nodes currently dead, oldest first
	nodeKillCount int
	split         *splitState
	reb           cluster.RebalanceReport
}

// splitState is one standing metadata-plane partition.
type splitState struct {
	minority map[int]bool
	links    [][2]string
}

func (h *harness) clustered() *cluster.Cluster { return h.lake.Cluster() }

func (h *harness) violate(format string, args ...any) {
	h.violations = append(h.violations, fmt.Sprintf(format, args...))
}

func (h *harness) ctx() *resil.Ctx {
	if h.cfg.DeadlineMS <= 0 {
		return nil
	}
	return resil.NewCtx(h.lake.Clock().Now(), time.Duration(h.cfg.DeadlineMS)*time.Millisecond)
}

// step runs one weighted scheduler event.
func (h *harness) step(i int) {
	// Cluster-mode draws are gated on their flags, so legacy schedules
	// (and their digests) are untouched; the trailing Tick keeps the
	// detector and election timers current with whatever virtual time the
	// event consumed.
	if cl := h.clustered(); cl != nil {
		defer cl.Tick()
	}
	if h.cfg.Failover && h.rng.Intn(12) == 0 {
		h.failoverEvent()
		return
	}
	if h.cfg.SplitBrain && h.rng.Intn(20) == 0 {
		h.splitBrainEvent()
		return
	}
	if h.cfg.Elastic && h.rng.Intn(10) == 0 {
		h.elasticEvent()
		return
	}
	if h.cfg.Mixed && h.rng.Intn(5) == 0 {
		// One event in five goes to the lakehouse side of the house. The
		// extra RNG draw happens only on Mixed runs, so non-mixed
		// schedules (and their digests) are untouched.
		h.mixedEvent()
		return
	}
	if h.cfg.NoisyNeighbor && h.rng.Intn(3) == 0 {
		// One event in three goes to the tenant pair. Like the Mixed
		// gate, the draw only happens when the mode is on, so legacy
		// schedules and digests are byte-identical with Tenants empty.
		h.tenantEvent()
		return
	}
	switch r := h.rng.Intn(100); {
	case r < 40:
		h.produce()
	case r < 60:
		h.consume()
	case r < 70:
		h.netChurn()
	case r < 75:
		if h.cfg.Partitions {
			h.partitionChurn()
		}
	case r < 80:
		if h.cfg.DiskKills {
			h.diskChurn()
		}
	case r < 83:
		if h.cfg.Corruption {
			if _, err := h.lake.Faults().CorruptRandom("ssd"); err == nil {
				h.corrupted++
			}
		}
	case r < 88:
		h.lake.RunRepair()
		if h.rng.Intn(2) == 0 {
			h.lake.RunScrub()
		}
	default:
		// Let virtual time pass: breaker cooldowns elapse, deadlines
		// become meaningful, tiering/repair timestamps move.
		h.lake.Clock().Advance(time.Duration(1+h.rng.Intn(5000)) * time.Microsecond)
	}
}

// failoverEvent kills or revives a whole node. At most a minority is
// ever down at once (a majority loss makes zero-loss unprovable — there
// is no quorum to ack against), and half the kills aim straight at the
// current metadata leader, the paper's hardest failover case.
func (h *harness) failoverEvent() {
	cl := h.clustered()
	n := cl.Nodes()
	// The down budget counts against the quorum denominator, not the
	// node-ID space: after elastic removals, tombstoned IDs still occupy
	// slots but hold no votes. Voters() == Nodes() on static clusters.
	maxDown := (cl.Voters() - 1) / 2
	if len(h.nodeKills) > 0 && (len(h.nodeKills) >= maxDown || h.rng.Intn(3) == 0) {
		node := h.nodeKills[0]
		h.nodeKills = h.nodeKills[1:]
		cl.ReviveNode(node)
		return
	}
	victim := h.rng.Intn(n)
	if h.rng.Intn(2) == 0 {
		if l := cl.Leader(); l >= 0 {
			victim = l
		}
	}
	for _, k := range h.nodeKills {
		if k == victim {
			return
		}
	}
	if err := cl.KillNode(victim); err == nil {
		h.nodeKills = append(h.nodeKills, victim)
		h.nodeKillCount++
	}
}

// splitBrainEvent cuts the metadata plane in two — the current leader
// plus enough followers to form a minority on one side, everyone else
// on the other — or heals a standing split. The data plane (client to
// worker links) stays connected: appends still land, but acks must wait
// for a majority-side commit, which is exactly the property the produce
// check below enforces.
func (h *harness) splitBrainEvent() {
	cl := h.clustered()
	np := h.lake.Net()
	if h.split != nil {
		for _, p := range h.split.links {
			np.Heal(p[0], p[1])
		}
		h.split = nil
		return
	}
	if len(h.nodeKills) > 0 {
		return // one membership experiment at a time
	}
	lead := cl.Leader()
	if lead < 0 {
		return
	}
	// Size the minority against the voter set, not the node-ID space:
	// with tombstoned or still-joining IDs in the count, an ID-based
	// "minority" could accidentally hold a voter quorum and legally ack.
	// On static clusters every node is a voter, so the set (and the
	// digest) is unchanged.
	n := cl.Nodes()
	v := cl.CurrentView()
	voters := 0
	for i := 0; i < n; i++ {
		if !v.Removed[i] && !v.Joining[i] {
			voters++
		}
	}
	minority := map[int]bool{lead: true}
	for i := 0; len(minority) < (voters-1)/2 && i < n; i++ {
		if i != lead && !v.Removed[i] && !v.Joining[i] {
			minority[i] = true
		}
	}
	var links [][2]string
	for a := 0; a < n; a++ {
		if !minority[a] {
			continue
		}
		for b := 0; b < n; b++ {
			if minority[b] {
				continue
			}
			ea, eb := fmt.Sprintf("node/%d", a), fmt.Sprintf("node/%d", b)
			np.Partition(ea, eb)
			np.Partition(eb, ea)
			links = append(links, [2]string{ea, eb}, [2]string{eb, ea})
		}
	}
	h.split = &splitState{minority: minority, links: links}
}

// elasticEvent grows or shrinks the cluster at runtime, through the
// same ProposeJoin/ProposeRemove paths lakectl drives. A join admits
// node Nodes() as a learner, catches it up from the leader's log, and
// commits the promotion; the movement bound the rebalance planner
// promised — (1/(N+1))·(1+slack) of the live bytes — is checked on
// every success. A removal drains the newest runtime-joined node and
// commits its tombstone; founding members are never removed, so the
// birth quorum always survives the schedule. Failures under standing
// faults (no leader, partitioned joiner, thin quorum) are legitimate:
// later events or settle retry the half-done change.
func (h *harness) elasticEvent() {
	cl := h.clustered()
	switch r := h.rng.Intn(10); {
	case r < 5:
		n := cl.Nodes()
		if n >= 9 {
			return
		}
		if err := cl.ProposeJoin(n); err != nil {
			return
		}
		rep := cl.LastJoin()
		if rep.MovedBytes > rep.BoundBytes {
			h.violate("join of node %d scheduled %d bytes to move, bound %d",
				rep.Node, rep.MovedBytes, rep.BoundBytes)
		}
	case r < 7:
		v := cl.CurrentView()
		victim := -1
		for i := cl.Nodes() - 1; i >= h.cfg.Nodes; i-- {
			if v.Removed[i] || v.Joining[i] || v.Leaving[i] || h.nodeDown(i) {
				continue
			}
			victim = i
			break
		}
		if victim < 0 {
			return
		}
		cl.ProposeRemove(victim)
	default:
		// Let the membership plane breathe: heartbeats flow, learner
		// promotions and drains make progress between pushes.
		h.lake.Clock().Advance(time.Duration(1+h.rng.Intn(3000)) * time.Microsecond)
	}
}

func (h *harness) nodeDown(node int) bool {
	for _, k := range h.nodeKills {
		if k == node {
			return true
		}
	}
	return false
}

const mixedTable = "chaos_t"

// mixedEvent runs one lakehouse-side event: an insert, a scan that must
// see exactly the acked rows, a cache-coherence probe, or a long time
// jump followed by a tiering pass that physically migrates cold logs.
func (h *harness) mixedEvent() {
	switch r := h.rng.Intn(10); {
	case r < 4:
		h.insertRows()
	case r < 7:
		h.scanTable()
	case r < 9:
		h.checkCacheCoherence()
	default:
		h.lake.Clock().Advance(time.Duration(10+h.rng.Intn(111)) * time.Minute)
		h.lake.RunTiering()
	}
}

func (h *harness) ensureTable() bool {
	if h.tableMade {
		return true
	}
	err := h.lake.CreateTable(streamlake.TableMeta{
		Name:   mixedTable,
		Schema: streamlake.MustSchema("k:string", "v:int64"),
	})
	if err != nil {
		return false
	}
	h.tableMade = true
	return true
}

func (h *harness) insertRows() {
	if !h.ensureTable() {
		return
	}
	n := 1 + h.rng.Intn(4)
	rows := make([]streamlake.Row, 0, n)
	for j := 0; j < n; j++ {
		seq := h.tableRows + int64(j)
		rows = append(rows, streamlake.Row{
			streamlake.StringValue(fmt.Sprintf("row%06d", seq)),
			streamlake.IntValue(seq),
		})
	}
	if err := h.lake.Insert(mixedTable, rows); err != nil {
		// Rejected inserts create no obligations, same as nacked sends.
		return
	}
	h.tableRows += int64(n)
	if h.rng.Intn(4) == 0 {
		// Fold the write cache occasionally so scans exercise both the
		// pending set and persistent snapshots (and the manifest cache
		// sees real commits to invalidate).
		h.lake.FlushTable(mixedTable)
	}
}

func (h *harness) scanTable() {
	if !h.tableMade {
		return
	}
	res, err := h.lake.Query("select count(*) from " + mixedTable)
	if err != nil {
		// Scans can fail while faults are live; correctness is only
		// defined for scans that complete.
		return
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		h.violate("mixed scan returned malformed result: %v", res.Rows)
		return
	}
	got, _ := strconv.ParseInt(res.Rows[0][0], 10, 64)
	if got != h.tableRows {
		h.violate("mixed scan saw %d rows, want %d acked", got, h.tableRows)
	}
}

// checkCacheCoherence picks a random live extent range and reads it
// three ways — straight from the devices, through a (possibly cold)
// cache fill, and again warm — and demands bit-identical bytes. This is
// the tier's core safety property: the cache may change cost, never
// content.
func (h *harness) checkCacheCoherence() {
	infos := h.lake.Logs().Logs()
	// Logs() drains a map; sort so the RNG pick is deterministic.
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	nonEmpty := infos[:0]
	for _, li := range infos {
		if li.Size > 0 {
			nonEmpty = append(nonEmpty, li)
		}
	}
	if len(nonEmpty) == 0 {
		return
	}
	li := nonEmpty[h.rng.Intn(len(nonEmpty))]
	l := h.lake.Logs().Get(li.ID)
	if l == nil {
		return
	}
	n := int64(1 + h.rng.Intn(4096))
	if n > li.Size {
		n = li.Size
	}
	var off int64
	if li.Size > n {
		off = h.rng.Int63n(li.Size - n + 1)
	}
	direct, _, derr := l.ReadDirect(off, n)
	cold, _, cerr := l.Read(off, n) // fills the cache
	warm, _, werr := l.Read(off, n) // served from the cache
	h.coherence++
	if derr != nil || cerr != nil || werr != nil {
		// Reads may legitimately fail while too many copies are dead or
		// quarantined; coherence is only defined when the data is
		// reachable.
		return
	}
	if !bytes.Equal(cold, direct) {
		h.violate("cache fill diverged from device read: plog %d [%d,%d)", li.ID, off, off+n)
	}
	if !bytes.Equal(warm, direct) {
		h.violate("cached read diverged from device read: plog %d [%d,%d)", li.ID, off, off+n)
	}
}

func (h *harness) produce() {
	n := 1 + h.rng.Intn(4)
	for j := 0; j < n; j++ {
		h.eventSeq++
		key := fmt.Sprintf("k%06d", h.eventSeq)
		val := fmt.Sprintf("v%06d", h.eventSeq)
		msg, _, err := h.prod.SendCtx(topic, []byte(key), []byte(val), h.ctx())
		if err != nil {
			// Dropped past all retries, shed by an open breaker, or out
			// of deadline — all legitimate under chaos. Only an *acked*
			// write creates obligations.
			continue
		}
		h.recordAck(msg, key)
	}
}

// recordAck registers one acked produce with the loss/duplication
// bookkeeping the final drain checks against, shared by the system
// producer and the tenant producers.
func (h *harness) recordAck(msg streamlake.Message, key string) {
	h.produced++
	if h.split != nil {
		// With the metadata plane split, an ack can only have committed
		// through the majority side's leader — the minority must be
		// write-dead, whatever its stale leader believes.
		if l := h.clustered().Leader(); l >= 0 && h.split.minority[l] {
			h.violate("produce acked while the committing leader %d sits in the minority partition", l)
		}
	}
	m := h.acked[msg.Stream]
	if m == nil {
		m = map[int64]string{}
		h.acked[msg.Stream] = m
	}
	if prev, dup := m[msg.Offset]; dup {
		h.violate("stream %d offset %d acked twice (%s then %s)", msg.Stream, msg.Offset, prev, key)
	}
	m[msg.Offset] = key
}

// tenantEvent runs one multi-tenant event: a noisy burst of large
// values that blows through its bandwidth quota, a steady in-quota
// send, or a pause that lets the noisy tenant's bucket refill. Acked
// tenant writes join the same obligation maps as system writes — the
// zero-loss drain covers them too.
func (h *harness) tenantEvent() {
	switch r := h.rng.Intn(10); {
	case r < 5:
		// Noisy burst: several large values back to back. Most must be
		// throttled once the 1s bandwidth burst is spent; whatever acks
		// creates the same obligations as any other write.
		n := 2 + h.rng.Intn(3)
		for j := 0; j < n; j++ {
			h.eventSeq++
			key := fmt.Sprintf("nk%06d", h.eventSeq)
			val := bytes.Repeat([]byte{'n'}, 4096+h.rng.Intn(4096))
			msg, _, err := h.prodNoisy.SendCtx(topic, []byte(key), val, h.ctx())
			switch {
			case err == nil:
				h.noisyAcked++
				h.recordAck(msg, key)
			case errors.Is(err, tenant.ErrShed):
				h.noisyShed++
			case errors.Is(err, tenant.ErrOverQuota):
				h.noisyThrottled++
			}
		}
	case r < 9:
		// Steady tenant: small paced sends well inside its contract.
		h.eventSeq++
		key := fmt.Sprintf("sk%06d", h.eventSeq)
		msg, _, err := h.prodSteady.SendCtx(topic, []byte(key), []byte("sv"+key), h.ctx())
		switch {
		case err == nil:
			h.steadyAcked++
			h.recordAck(msg, key)
		case errors.Is(err, tenant.ErrShed), errors.Is(err, tenant.ErrOverQuota):
			h.steadyDenied++
		}
	default:
		// Idle: quota buckets refill, breaker cooldowns elapse.
		h.lake.Clock().Advance(time.Duration(1+h.rng.Intn(2000)) * time.Microsecond)
	}
}

func (h *harness) consume() {
	msgs, _, err := h.cons.PollCtx(64, h.ctx())
	if err != nil && !errors.Is(err, resil.ErrDeadlineExceeded) {
		h.violate("poll failed: %v", err)
		return
	}
	for _, m := range msgs {
		if last, ok := h.last[m.Stream]; ok && m.Offset <= last {
			h.violate("stream %d consumer offset went backwards: %d after %d", m.Stream, m.Offset, last)
		}
		h.last[m.Stream] = m.Offset
		if want, ok := h.acked[m.Stream][m.Offset]; ok && want != string(m.Key) {
			h.violate("stream %d offset %d delivered key %q, acked %q", m.Stream, m.Offset, m.Key, want)
		}
	}
	h.consumed += int64(len(msgs))
}

func (h *harness) netChurn() {
	np := h.lake.Net()
	worker := fmt.Sprintf("worker/%d", h.rng.Intn(h.cfg.Workers))
	switch h.rng.Intn(4) {
	case 0:
		np.SetDropRate("client", worker, h.cfg.DropRate*h.rng.Float64())
	case 1:
		np.SetDropRate(worker, "client", h.cfg.DropRate*h.rng.Float64())
	case 2:
		base := time.Duration(h.rng.Int63n(int64(h.cfg.MaxDelay)))
		np.SetDelay("client", worker, base, base/2)
	default:
		np.SetDropRate("client", worker, 0)
		np.SetDelay("client", worker, 0, 0)
	}
}

func (h *harness) partitionChurn() {
	np := h.lake.Net()
	if len(h.partitions) > 0 && h.rng.Intn(2) == 0 {
		p := h.partitions[0]
		h.partitions = h.partitions[1:]
		np.Heal(p[0], p[1])
		return
	}
	worker := fmt.Sprintf("worker/%d", h.rng.Intn(h.cfg.Workers))
	np.Partition("client", worker)
	h.partitions = append(h.partitions, [2]string{"client", worker})
}

func (h *harness) diskChurn() {
	inj := h.lake.Faults()
	if len(h.kills) > 0 && (len(h.kills) >= 2 || h.rng.Intn(2) == 0) {
		var disk int
		fmt.Sscanf(h.kills[0], "ssd/%d", &disk)
		h.kills = h.kills[1:]
		inj.ReviveDisk("ssd", disk)
		return
	}
	if disk, err := inj.KillRandomDisk("ssd"); err == nil {
		h.kills = append(h.kills, fmt.Sprintf("ssd/%d", disk))
		h.killCount++
	}
}

// settle heals every fault and restores full redundancy so the final
// drain measures what survived, not what is currently unreachable.
func (h *harness) settle() {
	np := h.lake.Net()
	// Revive dead nodes before the blanket heal: ReviveNode restores
	// their worker links itself, and the detector needs their heartbeats
	// flowing again before membership can converge.
	if cl := h.clustered(); cl != nil {
		for _, node := range h.nodeKills {
			cl.ReviveNode(node)
		}
		h.nodeKills = nil
		h.split = nil // HealAll below removes its links
	}
	np.HealAll()
	np.Clear()
	for _, k := range h.kills {
		var disk int
		fmt.Sscanf(k, "ssd/%d", &disk)
		h.lake.Faults().ReviveDisk("ssd", disk)
	}
	h.kills = nil
	h.lake.Clock().Advance(50 * time.Millisecond) // breaker cooldowns elapse
	if cl := h.clustered(); cl != nil {
		// Converge membership: tick until every node's revival commits
		// and a leader stands, then re-replicate the dead interval's
		// stale copies inside a bounded virtual-time budget.
		for i := 0; i < 512; i++ {
			v := cl.CurrentView()
			all := cl.Leader() >= 0
			for n := 0; n < cl.Nodes(); n++ {
				// Tombstoned nodes never come back; their Alive=false is
				// the converged state, not a pending revival.
				if !v.Alive[n] && !v.Removed[n] {
					all = false
				}
			}
			if all {
				break
			}
			h.lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
		if h.cfg.Elastic {
			h.settleMembership(cl)
		}
		h.reb = cl.RunRebalance(2 * time.Second)
		if !h.reb.Complete {
			h.violate("rebalance left %d degraded logs (%d stale bytes) after its budget",
				h.reb.RemainingLogs, h.reb.RemainingStale)
		}
	}
	h.lake.RepairUntilRedundant(16)
	if h.cfg.Corruption {
		h.lake.ScrubCycle()
	}
}

// settleMembership finishes every membership change the fault schedule
// interrupted: limbo learners whose join entry never committed, and
// drained nodes whose tombstone didn't. Both proposals are resumable —
// ProposeJoin retries the catch-up and promotion for an existing
// learner, ProposeRemove skips straight to the tombstone once the leave
// is committed — so with faults healed they converge in a few ticks.
// A change still pending after the budget is an invariant failure: the
// protocol promised every proposed change eventually commits or aborts
// cleanly.
func (h *harness) settleMembership(cl *cluster.Cluster) {
	for i := 0; i < 128; i++ {
		v := cl.CurrentView()
		pending := -1
		leaving := false
		for n := 0; n < cl.Nodes(); n++ {
			if v.Joining[n] || v.Leaving[n] {
				pending, leaving = n, v.Leaving[n]
				break
			}
		}
		if pending < 0 {
			return
		}
		var err error
		if leaving {
			err = cl.ProposeRemove(pending)
		} else if err = cl.ProposeJoin(pending); err == nil {
			rep := cl.LastJoin()
			if rep.MovedBytes > rep.BoundBytes {
				h.violate("join of node %d scheduled %d bytes to move, bound %d",
					rep.Node, rep.MovedBytes, rep.BoundBytes)
			}
		}
		if err != nil {
			h.lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
	}
	v := cl.CurrentView()
	for n := 0; n < cl.Nodes(); n++ {
		if v.Joining[n] {
			h.violate("settle could not commit the join of node %d", n)
		}
		if v.Leaving[n] {
			h.violate("settle could not commit the removal of node %d", n)
		}
	}
}

// readSweep re-reads the topic end to end several times through a
// dedicated consumer — a read-heavy tail-latency probe over whatever
// slices the run persisted.
func (h *harness) readSweep(passes int) {
	c := h.lake.Consumer("chaos-sweeper")
	if err := c.Subscribe(topic); err != nil {
		h.violate("sweeper subscribe: %v", err)
		return
	}
	for pass := 0; pass < passes; pass++ {
		for s := 0; s < h.cfg.Streams; s++ {
			c.Seek(topic, s, 0)
		}
		for {
			msgs, _, err := c.Poll(64)
			if err != nil {
				h.violate("sweeper poll: %v", err)
				return
			}
			if len(msgs) == 0 {
				break
			}
		}
	}
}

// drainAndCheck reads every stream back from offset zero under a fresh
// consumer group and checks the loss and duplication invariants.
func (h *harness) drainAndCheck() {
	c := h.lake.Consumer("chaos-verifier")
	if err := c.Subscribe(topic); err != nil {
		h.violate("verifier subscribe: %v", err)
		return
	}
	seen := map[int]map[int64]string{}
	for empty := 0; empty < 2; {
		msgs, _, err := c.Poll(256)
		if err != nil {
			h.violate("verifier poll: %v", err)
			return
		}
		if len(msgs) == 0 {
			empty++
			continue
		}
		empty = 0
		h.drained += int64(len(msgs))
		for _, m := range msgs {
			sm := seen[m.Stream]
			if sm == nil {
				sm = map[int64]string{}
				seen[m.Stream] = sm
			}
			if _, dup := sm[m.Offset]; dup {
				h.violate("drain: stream %d offset %d delivered twice", m.Stream, m.Offset)
			}
			sm[m.Offset] = string(m.Key)
		}
	}
	// Zero acked-write loss, no duplicate appends: every acked offset is
	// present exactly once with the payload that was acked.
	for stream, offsets := range h.acked {
		for off, key := range offsets {
			got, ok := seen[stream][off]
			if !ok {
				h.violate("acked write lost: stream %d offset %d (%s)", stream, off, key)
			} else if got != key {
				h.violate("acked write mangled: stream %d offset %d has %q, want %q", stream, off, got, key)
			}
		}
	}
}

// clusterCheck enforces the cluster-plane invariants after the drain:
// every acked produce is in the applied metadata log, no term elected
// two leaders, and every node's committed log agrees with every other's
// on their common prefix.
func (h *harness) clusterCheck() {
	cl := h.clustered()
	if cl == nil {
		return
	}
	for stream, offs := range h.acked {
		for off := range offs {
			if !cl.ProduceCommitted(topic, stream, off, 1) {
				h.violate("acked produce missing from the metadata log: stream %d offset %d", stream, off)
			}
		}
	}
	for term, wins := range cl.LeaderCountByTerm() {
		if wins > 1 {
			h.violate("term %d elected %d leaders", term, wins)
		}
	}
	n := cl.Nodes()
	logs := make([][]cluster.Entry, n)
	for i := 0; i < n; i++ {
		logs[i] = cl.CommittedLog(i)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			m := len(logs[a])
			if len(logs[b]) < m {
				m = len(logs[b])
			}
			for i := 0; i < m; i++ {
				if logs[a][i] != logs[b][i] {
					h.violate("committed logs diverge at index %d between nodes %d and %d", i, a, b)
				}
			}
		}
	}
}

// report snapshots counters and computes the run digest.
func (h *harness) report() Report {
	snap := h.lake.Obs().Snapshot()
	hs := h.lake.HedgeStats()
	ns := h.lake.Net().Stats()
	r := Report{
		Events:     h.cfg.Events,
		Produced:   h.produced,
		Consumed:   h.consumed,
		Drained:    h.drained,
		Retries:    snap.Counters["streamsvc_retries_total"],
		NetDrops:   ns.Drops + ns.Blocked,
		Sheds:      snap.Counters["streamsvc_breaker_sheds_total"],
		Trips:      snap.Counters["streamsvc_breaker_trips_total"],
		Deadlines:  snap.Counters["streamsvc_deadline_exceeded_total"],
		Hedged:     hs.Hedged,
		HedgeWins:  hs.Wins,
		DiskKills:  h.killCount,
		Corrupted:  h.corrupted,
		TableRows:  h.tableRows,
		Coherence:  h.coherence,
		ReadP99:    snap.Histograms["plog_read_seconds"].Quantile(0.99),
		Violations: h.violations,
	}
	if c := h.lake.Cache(); c != nil {
		cs := c.Stats()
		r.CacheHits = cs.DRAMHits + cs.SCMHits
	}
	if h.cfg.GroupCommit {
		r.GroupCommits = h.lake.GroupCommitStats().Commits
	}
	if h.cfg.Compressed {
		cs := h.lake.Logs().CompressionStats()
		r.ColdLogs = cs.CompressedLogs
		r.ColdRawB = cs.RawBytes
		r.ColdCompB = cs.CompressedBytes
		if cs.CompressedBytes > cs.RawBytes {
			// The incompressible bailout guarantees stored bytes never
			// exceed raw bytes — negotiation keeps an extent raw rather
			// than let a codec inflate it.
			h.violate("compression inflated cold storage: %d compressed > %d raw",
				cs.CompressedBytes, cs.RawBytes)
			r.Violations = h.violations
		}
	}
	if h.cfg.NoisyNeighbor {
		r.NoisyAcked = h.noisyAcked
		r.NoisyLimited = h.noisyThrottled
		r.NoisyShed = h.noisyShed
		r.SteadyAcked = h.steadyAcked
		r.SteadyDenied = h.steadyDenied
	}
	if cl := h.clustered(); cl != nil {
		cs := cl.Stats()
		r.NodeKills = h.nodeKillCount
		r.Elections = cs.Elections
		r.MetaCommits = cs.Commits
		r.RebalancedB = h.reb.RepairedBytes
		r.RebalanceOK = h.reb.Complete
		if h.cfg.Elastic {
			r.Joins = int(cs.Joins)
			r.Removes = int(cs.Removes)
			r.JoinMovedB = cs.JoinMovedBytes
			r.EvacuatedB = cs.EvacuatedBytes
		}
	}
	r.Digest = h.digest(r)
	return r
}

// digest folds the run's observable outcome — acked set, consumed
// count, resilience counters — into one FNV-1a value. Two runs of the
// same config must produce the same digest: the bit-identical-replay
// invariant.
func (h *harness) digest(r Report) uint64 {
	d := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(d, format, args...) }
	w("produced=%d consumed=%d drained=%d retries=%d drops=%d sheds=%d trips=%d deadlines=%d hedged=%d p99=%d;",
		r.Produced, r.Consumed, r.Drained, r.Retries, r.NetDrops, r.Sheds, r.Trips, r.Deadlines, r.Hedged, r.ReadP99)
	if h.cfg.Mixed {
		w("tableRows=%d coherence=%d;", r.TableRows, r.Coherence)
	}
	if h.cfg.CacheMB > 0 {
		w("cacheHits=%d;", r.CacheHits)
	}
	if h.cfg.GroupCommit {
		w("groupCommits=%d;", r.GroupCommits)
	}
	if h.cfg.Compressed {
		w("coldLogs=%d coldRaw=%d coldComp=%d;", r.ColdLogs, r.ColdRawB, r.ColdCompB)
	}
	if h.cfg.NoisyNeighbor {
		w("noisyAcked=%d noisyLimited=%d noisyShed=%d steadyAcked=%d steadyDenied=%d;",
			r.NoisyAcked, r.NoisyLimited, r.NoisyShed, r.SteadyAcked, r.SteadyDenied)
	}
	if h.cfg.Nodes > 1 {
		w("nodeKills=%d elections=%d metaCommits=%d rebalanced=%d;",
			r.NodeKills, r.Elections, r.MetaCommits, r.RebalancedB)
	}
	if h.cfg.Elastic {
		w("joins=%d removes=%d joinMoved=%d evacuated=%d;",
			r.Joins, r.Removes, r.JoinMovedB, r.EvacuatedB)
	}
	streams := make([]int, 0, len(h.acked))
	for s := range h.acked {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	for _, s := range streams {
		offs := make([]int64, 0, len(h.acked[s]))
		for off := range h.acked[s] {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		w("stream=%d;", s)
		for _, off := range offs {
			w("%d=%s;", off, h.acked[s][off])
		}
	}
	for _, v := range h.violations {
		w("violation=%s;", v)
	}
	return d.Sum64()
}
