package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"streamlake"
	"streamlake/internal/cluster"
)

// TestClusterElasticChaos: runtime joins and removals interleaved with
// node kills, metadata splits, and disk kills break none of the
// invariants — and at least one join and one removal actually commit,
// so the schedule exercised the paths it claims to.
func TestClusterElasticChaos(t *testing.T) {
	rep, err := Run(Config{
		Seed:       7,
		Events:     600,
		Workers:    5,
		Elastic:    true,
		Failover:   true,
		SplitBrain: true,
		DiskKills:  true,
		DeadlineMS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Produced == 0 {
		t.Fatal("elastic chaos run acked nothing")
	}
	if rep.Joins == 0 {
		t.Fatal("elastic schedule committed no joins")
	}
	if rep.Removes == 0 {
		t.Fatal("elastic schedule committed no removals")
	}
	t.Logf("elastic chaos: acked=%d joins=%d removes=%d moved=%dB evacuated=%dB kills=%d elections=%d",
		rep.Produced, rep.Joins, rep.Removes, rep.JoinMovedB, rep.EvacuatedB, rep.NodeKills, rep.Elections)
}

// TestClusterElasticReplayIsBitIdentical: membership churn under fire is
// still a pure function of the seed.
func TestClusterElasticReplayIsBitIdentical(t *testing.T) {
	cfg := Config{
		Seed:       7,
		Events:     600,
		Workers:    5,
		Elastic:    true,
		Failover:   true,
		SplitBrain: true,
		DiskKills:  true,
		DeadlineMS: 50,
	}
	rep, same, err := RunWithReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("elastic replay diverged (digest %x)", rep.Digest)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
}

// TestClusterElasticLargeN: grow toward the nine-node ceiling with the
// full fault mix on — more nodes, more simultaneous failures, same
// invariants.
func TestClusterElasticLargeN(t *testing.T) {
	rep, err := Run(Config{
		Seed:     101,
		Events:   900,
		Workers:  5,
		Nodes:    7,
		Elastic:  true,
		Failover: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Joins == 0 {
		t.Fatal("large-N schedule committed no joins")
	}
	t.Logf("large-N elastic: acked=%d joins=%d removes=%d kills=%d", rep.Produced, rep.Joins, rep.Removes, rep.NodeKills)
}

// elasticDrillResult is one scripted join-under-fire drill's outcome.
type elasticDrillResult struct {
	digest  uint64
	joinGap time.Duration // join first proposed → first post-commit ack
	moved   int64         // bytes the join's arc migration scheduled
	bound   int64         // (live/(N+1))·(1+slack) at join time
	acked   int
}

// runElasticDrill is the ISSUE's scripted scenario: a 5-node cluster
// takes a runtime join mid-workload while one storage node is dead and
// the metadata plane is briefly split. The join must commit through the
// replicated log (no side channel), move no more bytes than the
// (1/(N+1))·(1+slack) bound, leave every acked write readable exactly
// once, and replay bit-identically.
func runElasticDrill(t *testing.T, seed uint64) elasticDrillResult {
	t.Helper()
	const drillTopic = "elastic"
	lake, err := streamlake.Open(streamlake.Config{
		Nodes:        5,
		Workers:      5,
		SSDDisks:     10,
		Seed:         seed,
		PLogCapacity: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := lake.Cluster()
	if err := lake.CreateTopic(streamlake.TopicConfig{Name: drillTopic, StreamNum: 2}); err != nil {
		t.Fatal(err)
	}
	prod := lake.Producer("elastic-producer")
	payload := bytes.Repeat([]byte("e"), 512)
	acked := map[int]map[int64]string{}
	seq := 0
	send := func() bool {
		seq++
		key := fmt.Sprintf("k%06d", seq)
		msg, _, err := prod.Send(drillTopic, []byte(key), payload)
		if err != nil {
			return false
		}
		m := acked[msg.Stream]
		if m == nil {
			m = map[int64]string{}
			acked[msg.Stream] = m
		}
		if _, dup := m[msg.Offset]; dup {
			t.Fatalf("stream %d offset %d acked twice", msg.Stream, msg.Offset)
		}
		m[msg.Offset] = key
		return true
	}

	// Phase 1: bulk healthy traffic, enough to flush durable slices on
	// every stream — the join has real bytes to rebalance.
	for i := 0; i < 700; i++ {
		if !send() {
			t.Fatalf("healthy send %d failed", i)
		}
		if i%32 == 0 {
			lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
	}

	// Phase 2: put the cluster under fire. A storage node dies, and the
	// metadata plane splits with the leader on the minority side.
	leader := cl.Leader()
	storage := (leader + 2) % 5
	if err := cl.KillNode(storage); err != nil {
		t.Fatal(err)
	}
	buddy := (leader + 1) % 5
	if buddy == storage {
		buddy = (leader + 3) % 5
	}
	np := lake.Net()
	minority := map[int]bool{leader: true, buddy: true}
	var links [][2]string
	for a := 0; a < 5; a++ {
		if !minority[a] {
			continue
		}
		for b := 0; b < 5; b++ {
			if minority[b] {
				continue
			}
			ea, eb := fmt.Sprintf("node/%d", a), fmt.Sprintf("node/%d", b)
			np.Partition(ea, eb)
			np.Partition(eb, ea)
			links = append(links, [2]string{ea, eb}, [2]string{eb, ea})
		}
	}

	// Phase 3: propose the join while the split stands. The minority
	// leader can admit the learner (its endpoint is reachable) but can
	// never commit the promotion — there is no quorum on its side, and
	// no side channel to cheat through.
	joinStart := lake.Clock().Now()
	if err := cl.ProposeJoin(5); err == nil {
		t.Fatal("join committed through a minority-side leader")
	}
	for i := 0; i < 40; i++ {
		send() // failures are legitimate while the split stands
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
	}
	for _, p := range links {
		np.Heal(p[0], p[1])
	}

	// Phase 4: with the split healed, the join must commit — either the
	// retried proposal lands, or the original entry (parked in the old
	// leader's log) commits through reconciliation once a quorum leader
	// stands, in which case the retry reports the node already exists.
	joined := false
	for i := 0; i < 400 && !joined; i++ {
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
		if err := cl.ProposeJoin(5); err == nil || errors.Is(err, cluster.ErrNodeExists) {
			vv := cl.CurrentView()
			joined = vv.Nodes > 5 && !vv.Joining[5] && !vv.Removed[5]
		}
	}
	if !joined {
		t.Fatal("join never committed after the split healed")
	}
	rep := cl.LastJoin()
	if rep.MovedBytes > rep.BoundBytes {
		t.Fatalf("join moved %dB, bound %dB", rep.MovedBytes, rep.BoundBytes)
	}
	v := cl.CurrentView()
	if v.Nodes != 6 || v.Joining[5] || !v.Alive[5] {
		t.Fatalf("join committed but view disagrees: %+v", v)
	}

	// The join is in the replicated log on every live node — including
	// the joiner, which only ever heard about itself via catch-up and
	// reconciliation. Followers converge on leader beats, so allow a few
	// boundaries for the commit index to propagate.
	joinEntry := "5" + "\x1f" + "join"
	hasJoin := func(n int) bool {
		for _, e := range cl.CommittedLog(n) {
			if e.Kind == "member" && e.Data == joinEntry {
				return true
			}
		}
		return false
	}
	for n := 0; n < 6; n++ {
		if n == storage {
			continue
		}
		for i := 0; i < 100 && !hasJoin(n); i++ {
			lake.Clock().Advance(time.Millisecond)
			cl.Tick()
		}
		if !hasJoin(n) {
			t.Fatalf("node %d's committed log is missing the join entry", n)
		}
	}

	// First post-commit ack bounds the producer gap the join caused.
	var joinGap time.Duration
	for i := 0; i < 400; i++ {
		if send() {
			joinGap = lake.Clock().Now() - joinStart
			break
		}
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
	}
	if joinGap == 0 {
		t.Fatal("producers never recovered after the join")
	}

	// Phase 5: more traffic on the grown cluster, then bounded
	// re-replication (the dead node's copies plus the join's relocated
	// ones), then the exactly-once audit.
	extra := 0
	for i := 0; i < 400 && extra < 60; i++ {
		if send() {
			extra++
		}
		lake.Clock().Advance(time.Millisecond)
		cl.Tick()
	}
	if extra < 60 {
		t.Fatalf("post-join traffic stalled: only %d acks", extra)
	}
	reb := cl.RunRebalance(2 * time.Second)
	if !reb.Complete {
		t.Fatalf("rebalance incomplete: %d logs, %d stale bytes left", reb.RemainingLogs, reb.RemainingStale)
	}

	cons := lake.Consumer("elastic-verifier")
	if err := cons.Subscribe(drillTopic); err != nil {
		t.Fatal(err)
	}
	seen := map[int]map[int64]string{}
	for empty := 0; empty < 2; {
		msgs, _, err := cons.Poll(256)
		if err != nil {
			t.Fatalf("verifier poll: %v", err)
		}
		if len(msgs) == 0 {
			empty++
			continue
		}
		empty = 0
		for _, m := range msgs {
			sm := seen[m.Stream]
			if sm == nil {
				sm = map[int64]string{}
				seen[m.Stream] = sm
			}
			if _, dup := sm[m.Offset]; dup {
				t.Fatalf("stream %d offset %d delivered twice", m.Stream, m.Offset)
			}
			sm[m.Offset] = string(m.Key)
		}
	}
	total := 0
	for stream, offs := range acked {
		for off, key := range offs {
			got, ok := seen[stream][off]
			if !ok {
				t.Fatalf("acked write lost: stream %d offset %d (%s)", stream, off, key)
			}
			if got != key {
				t.Fatalf("acked write mangled: stream %d offset %d has %q want %q", stream, off, got, key)
			}
			if !cl.ProduceCommitted(drillTopic, stream, off, 1) {
				t.Fatalf("acked write missing from metadata log: stream %d offset %d", stream, off)
			}
			total++
		}
	}

	d := fnv.New64a()
	streams := make([]int, 0, len(acked))
	for s := range acked {
		streams = append(streams, s)
	}
	sort.Ints(streams)
	for _, s := range streams {
		offs := make([]int64, 0, len(acked[s]))
		for off := range acked[s] {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		for _, off := range offs {
			fmt.Fprintf(d, "%d/%d;", s, off)
		}
	}
	fmt.Fprintf(d, "moved=%d bound=%d gap=%d rebalanced=%d;",
		rep.MovedBytes, rep.BoundBytes, joinGap, reb.RepairedBytes)
	return elasticDrillResult{
		digest:  d.Sum64(),
		joinGap: joinGap,
		moved:   rep.MovedBytes,
		bound:   rep.BoundBytes,
		acked:   total,
	}
}

// TestClusterElasticDrill: the scripted join-under-fire scenario, with
// enforced ceilings and a bit-identical replay.
func TestClusterElasticDrill(t *testing.T) {
	res := runElasticDrill(t, 424242)
	if res.acked < 700 {
		t.Fatalf("drill acked only %d writes", res.acked)
	}
	if res.moved == 0 {
		t.Fatal("join rebalanced nothing — the drill's bulk phase left no bytes to move")
	}
	if res.moved > res.bound {
		t.Fatalf("join moved %dB, bound %dB", res.moved, res.bound)
	}
	// Producer-gap ceiling: the 40-tick split window plus commit and
	// retry rounds. 120ms is the enforced ceiling benchsnap also uses.
	if budget := 120 * time.Millisecond; res.joinGap > budget {
		t.Fatalf("producers gapped %v around the join, ceiling %v", res.joinGap, budget)
	}
	again := runElasticDrill(t, 424242)
	if again.digest != res.digest {
		t.Fatalf("drill replay diverged: %x vs %x", res.digest, again.digest)
	}
	other := runElasticDrill(t, 777)
	if other.digest == res.digest {
		t.Fatal("different seeds produced identical drills")
	}
	t.Logf("elastic drill: acked=%d moved=%dB bound=%dB gap=%v",
		res.acked, res.moved, res.bound, res.joinGap)
}
