package chaos

import (
	"testing"
	"time"
)

func fullChaos(seed uint64) Config {
	return Config{
		Seed:       seed,
		Events:     400,
		DiskKills:  true,
		Corruption: true,
		Partitions: true,
		Hedging:    true,
		DeadlineMS: 50,
	}
}

// TestChaosInvariantsHold: the full fault mix — drops, delays,
// partitions, disk kills, corruption, deadlines — breaks no invariant:
// nothing acked is lost, nothing appends twice, offsets stay monotonic.
func TestChaosInvariantsHold(t *testing.T) {
	rep, err := Run(fullChaos(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.Produced == 0 {
		t.Fatal("chaos run acked nothing — the schedule is degenerate")
	}
	if rep.NetDrops == 0 || rep.Retries == 0 {
		t.Fatalf("chaos run exercised no network faults: %+v", rep)
	}
	if rep.Drained < rep.Produced {
		t.Fatalf("drain returned fewer records than were acked: %+v", rep)
	}
}

// TestChaosReplayIsBitIdentical: same seed, same digest — the whole
// run, faults and all, is a pure function of its config.
func TestChaosReplayIsBitIdentical(t *testing.T) {
	rep, same, err := RunWithReplay(fullChaos(7))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("replay diverged from original run (digest %x)", rep.Digest)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	// And a different seed must actually produce a different run.
	other, err := Run(fullChaos(8))
	if err != nil {
		t.Fatal(err)
	}
	if other.Digest == rep.Digest {
		t.Fatal("different seeds produced identical digests")
	}
}

// TestHedgingCutsTailLatency: with a degraded disk in the read path,
// the same chaos schedule ends with a measurably lower virtual-time
// read p99 when hedged reads are on than when they are off.
func TestHedgingCutsTailLatency(t *testing.T) {
	run := func(hedge bool) Report {
		// A long schedule over several streams: slices flush to PLogs
		// spread across the pool, so the degraded disk slows a minority
		// of primaries and the hedge quantile stays honest.
		cfg := Config{Seed: 11, Events: 6000, Streams: 6, Hedging: hedge, DropRate: 0.05}
		rep, err := RunDegraded(cfg, 3*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("violations (hedge=%v): %v", hedge, rep.Violations)
		}
		return rep
	}
	hedged := run(true)
	unhedged := run(false)
	if hedged.Hedged == 0 || hedged.HedgeWins == 0 {
		t.Fatalf("degraded run never hedged: %+v", hedged)
	}
	if unhedged.Hedged != 0 {
		t.Fatalf("hedging disabled but hedged: %+v", unhedged)
	}
	if hedged.ReadP99 >= unhedged.ReadP99 {
		t.Fatalf("hedging did not cut read p99: hedged=%v unhedged=%v", hedged.ReadP99, unhedged.ReadP99)
	}
}

// TestMixedWorkloadCacheCoherence: the everything-at-once run — stream
// produce/consume, lakehouse inserts and scans, scrub, physical tiering
// migrations, and the read cache all active under the full fault mix.
// It must replay bit-identically, break no streaming invariant, and
// every cache-coherence probe must see device-identical bytes.
func TestMixedWorkloadCacheCoherence(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := Config{
			Seed:       seed,
			Events:     400,
			DiskKills:  true,
			Corruption: true,
			Partitions: true,
			Hedging:    true,
			Mixed:      true,
			CacheMB:    16,
		}
		rep, same, err := RunWithReplay(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Errorf("seed %d: mixed replay diverged (digest %x)", seed, rep.Digest)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violated: %s", seed, v)
		}
		if rep.TableRows == 0 || rep.Coherence == 0 {
			t.Errorf("seed %d: mixed schedule degenerate: rows=%d coherence=%d",
				seed, rep.TableRows, rep.Coherence)
		}
		if rep.Produced == 0 {
			t.Errorf("seed %d: streaming side acked nothing", seed)
		}
		if rep.CacheHits == 0 {
			t.Errorf("seed %d: cache never hit under mixed workload", seed)
		}
	}
}

// TestGroupCommitChaos: the batched flush path under faults. With group
// commit on (4 slices per coalesced device write), a long two-stream
// schedule with disk kills must ack-and-keep every write, actually
// exercise coalesced commits, and replay bit-identically. (The schedule
// is 10x the default length so streams buffer past the group trigger;
// at this length random corruption would overwhelm 3x replication
// between scrub passes — an injector limit, not a flush-path property —
// so this run stresses disk death only.)
func TestGroupCommitChaos(t *testing.T) {
	cfg := Config{
		Seed:        5,
		Events:      4000,
		Streams:     2,
		DiskKills:   true,
		GroupCommit: true,
	}
	rep, same, err := RunWithReplay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("group-commit replay diverged (digest %x)", rep.Digest)
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violated: %s", v)
	}
	if rep.GroupCommits == 0 {
		t.Fatalf("schedule never reached the group-commit trigger: %+v", rep)
	}
	if rep.DiskKills == 0 {
		t.Fatalf("no disks died; the run proved nothing about faulted batches: %+v", rep)
	}
	if rep.Drained < rep.Produced {
		t.Fatalf("acked writes lost through the batched path: %+v", rep)
	}
}

// TestCompressedMixedChaos: the mixed workload with cold-tier
// compression on. Tiering events push quiescent logs onto the HDD pool
// where their extents compress; subsequent reads, coherence probes, and
// the final drain all land on compressed extents and must stay
// bit-identical to the acked bytes. The run must actually compress
// (cold logs with stored < raw bytes), never inflate, and replay to the
// same digest — which now folds in the compression counters.
func TestCompressedMixedChaos(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		cfg := Config{
			Seed:       seed,
			Events:     400,
			DiskKills:  true,
			Corruption: true,
			Partitions: true,
			Hedging:    true,
			Compressed: true,
			CacheMB:    16,
		}
		rep, same, err := RunWithReplay(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !same {
			t.Errorf("seed %d: compressed replay diverged (digest %x)", seed, rep.Digest)
		}
		for _, v := range rep.Violations {
			t.Errorf("seed %d: invariant violated: %s", seed, v)
		}
		if rep.ColdLogs == 0 {
			t.Errorf("seed %d: no log ever compressed — the schedule missed the tiering boundary", seed)
		}
		if rep.ColdCompB >= rep.ColdRawB {
			t.Errorf("seed %d: cold tier stored %d bytes for %d raw — compression bought nothing",
				seed, rep.ColdCompB, rep.ColdRawB)
		}
		if rep.TableRows == 0 || rep.Coherence == 0 {
			t.Errorf("seed %d: mixed schedule degenerate: rows=%d coherence=%d",
				seed, rep.TableRows, rep.Coherence)
		}
		if rep.Produced == 0 {
			t.Errorf("seed %d: streaming side acked nothing", seed)
		}
	}
}

// TestCompressionOffReplaysLegacyDigest: Config.Compressed is a
// digest-compat knob — with it off, the mixed schedule must produce the
// exact digest it produced before compression existed (same RNG draws,
// same costs, same acked set). Guarded by comparing the off-run digest
// against a plain Mixed run of the same seed.
func TestCompressionOffReplaysLegacyDigest(t *testing.T) {
	base := Config{Seed: 7, Events: 300, DiskKills: true, Corruption: true, Mixed: true, CacheMB: 8}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	off := base
	off.Compressed = false // explicit: the zero value must change nothing
	b, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("compression-off run diverged from the legacy schedule: %x vs %x", a.Digest, b.Digest)
	}
	on := base
	on.Compressed = true
	c, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Violations) != 0 {
		t.Fatalf("compressed run violated invariants: %v", c.Violations)
	}
}
