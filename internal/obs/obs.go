// Package obs is StreamLake's observability subsystem: a stdlib-only
// metrics registry (counters, gauges, virtual-time histograms) plus
// span-based tracing (trace.go). It exists because LakeBrain (Section
// VI) is explicitly driven by storage-side telemetry — I/O statistics,
// access heat, compaction cost — and because the evaluation needs a
// uniform way to observe every layer of the stack.
//
// Two properties shape the design:
//
//   - Deterministic: latencies are measured against the simulation's
//     virtual clock, never wall time, so two runs of the same seeded
//     workload produce byte-identical /metrics output. Rendering sorts
//     every family and series.
//
//   - Cheap when unused: a nil *Registry hands out nil instruments, and
//     every instrument method is a nil-receiver no-op, so a disabled
//     stack pays one pointer test per event. Enabled instruments are a
//     single atomic add on the hot path; instrument lookup is meant to
//     happen once at wiring time, not per operation.
//
// Metric names follow the Prometheus exposition conventions and may
// embed a fixed label set directly in the name, e.g.
// `bus_bytes_total{path="rdma"}`; the renderer splits the family name
// from the labels so histogram series compose with a `le` label.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/sim"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// HistBuckets is the fixed bucket count: log-scaled, 4 buckets per
// doubling anchored at 1µs (the same scheme as sim.Histogram), covering
// 1µs .. ~4300s of virtual time.
const HistBuckets = 128

// Histogram collects virtual-time latency samples in fixed log-scale
// buckets. All operations are lock-free atomics.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

func histIndex(d time.Duration) int {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		return 0
	}
	i := int(math.Log2(us) * 4)
	if i < 0 {
		i = 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// histUpper returns bucket i's upper bound.
func histUpper(i int) time.Duration {
	us := math.Pow(2, float64(i+1)/4)
	return time.Duration(us * float64(time.Microsecond))
}

// Observe records one latency sample. No-op on a nil histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[histIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of samples (zero for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all samples (zero for nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [HistBuckets]int64
}

// Mean returns the mean sample, or zero with no samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns the approximate q-quantile (bucket upper bound).
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < HistBuckets; i++ {
		seen += s.Buckets[i]
		if seen >= rank {
			return histUpper(i)
		}
	}
	return histUpper(HistBuckets - 1)
}

// snapshot copies the histogram. Buckets are read individually; a
// snapshot concurrent with observes is each-counter-consistent, which
// is the usual histogram contract.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry owns named instruments. The zero of *Registry (nil) is a
// valid disabled registry: every lookup returns a nil instrument.
type Registry struct {
	clock *sim.Clock

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry builds a registry measuring time against clock.
func NewRegistry(clock *sim.Clock) *Registry {
	return &Registry{
		clock:    clock,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
	}
}

// Clock returns the registry's virtual clock (nil for a nil registry).
func (r *Registry) Clock() *sim.Clock {
	if r == nil {
		return nil
	}
	return r.clock
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback gauge: fn is evaluated at snapshot and
// render time. The last registration for a name wins. No-op on a nil
// registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named virtual-time histogram, creating it on
// first use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument — the telemetry
// feed LakeBrain policies consume.
type Snapshot struct {
	At         time.Duration // virtual time of the snapshot
	Counters   map[string]int64
	Gauges     map[string]float64 // includes evaluated GaugeFuncs
	Histograms map[string]HistogramSnapshot
}

// Counter returns a counter value by name (zero if absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge value by name (zero if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Snapshot copies the registry. A nil registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.At = r.clock.Now()
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	// Instruments are read outside the registry lock: GaugeFuncs call
	// back into subsystem Stats() methods that take their own locks.
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, fn := range fns {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// splitName separates a metric name into its family and embedded label
// set: `bus_bytes_total{path="rdma"}` -> ("bus_bytes_total",
// `path="rdma"`).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func seriesName(family, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return family
	case labels == "":
		return family + "{" + extra + "}"
	case extra == "":
		return family + "{" + labels + "}"
	default:
		return family + "{" + labels + "," + extra + "}"
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm renders the registry in the Prometheus text exposition
// format. Output is deterministic: families and series are sorted, and
// all values derive from virtual time and seeded workloads. A nil
// registry renders nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	type series struct {
		name string // full series name with labels
		kind string // counter | gauge | histogram
	}
	families := map[string][]series{}
	order := []string{}
	add := func(name, kind string) {
		fam, _ := splitName(name)
		if _, ok := families[fam]; !ok {
			order = append(order, fam)
		}
		families[fam] = append(families[fam], series{name: name, kind: kind})
	}
	for name := range snap.Counters {
		add(name, "counter")
	}
	for name := range snap.Gauges {
		add(name, "gauge")
	}
	for name := range snap.Histograms {
		add(name, "histogram")
	}
	sort.Strings(order)
	for _, fam := range order {
		ss := families[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, ss[0].kind); err != nil {
			return err
		}
		for _, s := range ss {
			_, labels := splitName(s.name)
			switch s.kind {
			case "counter":
				if _, err := fmt.Fprintf(w, "%s %d\n", s.name, snap.Counters[s.name]); err != nil {
					return err
				}
			case "gauge":
				if _, err := fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(snap.Gauges[s.name])); err != nil {
					return err
				}
			case "histogram":
				h := snap.Histograms[s.name]
				var cum int64
				for i := 0; i < HistBuckets; i++ {
					if h.Buckets[i] == 0 {
						continue // only occupied buckets are rendered
					}
					cum += h.Buckets[i]
					le := formatFloat(histUpper(i).Seconds())
					name := seriesName(fam+"_bucket", labels, `le="`+le+`"`)
					if _, err := fmt.Fprintf(w, "%s %d\n", name, cum); err != nil {
						return err
					}
				}
				name := seriesName(fam+"_bucket", labels, `le="+Inf"`)
				if _, err := fmt.Fprintf(w, "%s %d\n", name, h.Count); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(fam+"_sum", labels, ""), formatFloat(h.Sum.Seconds())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(fam+"_count", labels, ""), h.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
