package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"streamlake/internal/sim"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("x")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("x_seconds")
	h.Observe(time.Millisecond)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram recorded samples")
	}
	r.GaugeFunc("f", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry rendered %q, err %v", b.String(), err)
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry(sim.NewClock())
	r.Counter("ops_total").Add(3)
	r.Counter("ops_total").Inc() // same instrument by name
	if got := r.Counter("ops_total").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	r.Gauge("depth").Set(2.5)
	if got := r.Gauge("depth").Value(); got != 2.5 {
		t.Fatalf("gauge = %v", got)
	}
	r.GaugeFunc("util", func() float64 { return 0.75 })
	h := r.Histogram("lat_seconds")
	h.Observe(10 * time.Microsecond)
	h.Observe(10 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d", h.Count())
	}
	snap := r.Snapshot()
	if snap.Counter("ops_total") != 4 || snap.Gauge("depth") != 2.5 || snap.Gauge("util") != 0.75 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	hs := snap.Histograms["lat_seconds"]
	if hs.Count != 3 || hs.Sum != 5*time.Millisecond+20*time.Microsecond {
		t.Fatalf("hist snapshot: %+v", hs)
	}
	if q := hs.Quantile(0.5); q < 10*time.Microsecond || q > 20*time.Microsecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := hs.Quantile(1.0); q < 5*time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry(sim.NewClock())
	r.Counter(`bus_bytes_total{path="rdma"}`).Add(100)
	r.Counter(`bus_bytes_total{path="tcp"}`).Add(50)
	r.Gauge("pool_util").Set(0.5)
	r.Histogram("append_seconds").Observe(2 * time.Microsecond)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE bus_bytes_total counter\n",
		"bus_bytes_total{path=\"rdma\"} 100\n",
		"bus_bytes_total{path=\"tcp\"} 50\n",
		"# TYPE pool_util gauge\n",
		"pool_util 0.5\n",
		"# TYPE append_seconds histogram\n",
		`append_seconds_bucket{le="+Inf"} 1` + "\n",
		"append_seconds_sum 2e-06\n",
		"append_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Families are sorted and the TYPE line precedes its series.
	if strings.Index(out, "# TYPE append_seconds") > strings.Index(out, "# TYPE bus_bytes_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	build := func() string {
		r := NewRegistry(sim.NewClock())
		// Insertion order varies; rendering must not.
		names := []string{"z_total", "a_total", `m_total{k="2"}`, `m_total{k="1"}`}
		var wg sync.WaitGroup
		for _, n := range names {
			wg.Add(1)
			go func(n string) {
				defer wg.Done()
				r.Counter(n).Add(int64(len(n)))
			}(n)
		}
		wg.Wait()
		r.Histogram("h_seconds").Observe(3 * time.Microsecond)
		var b strings.Builder
		r.WriteProm(&b)
		return b.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
}

func TestSpanTreeAndCursor(t *testing.T) {
	clock := sim.NewClock()
	clock.Advance(time.Second)
	tr := NewTracer(clock)
	root := tr.Start("gateway.produce")
	if root.ID != 1 || root.Start != time.Second {
		t.Fatalf("root: %+v", root)
	}
	a := root.Child("bus.send")
	a.End(3 * time.Microsecond)
	root.Advance(3 * time.Microsecond)
	b := root.Child("plog.append")
	b.SetAttr("log", "1")
	// Parallel fan-out to two disks: both children share b's cursor.
	d1 := b.Child("pool.write")
	d1.End(50 * time.Microsecond)
	d2 := b.Child("pool.write")
	d2.End(80 * time.Microsecond)
	b.Advance(80 * time.Microsecond) // max of the parallel section
	b.End(80 * time.Microsecond)
	root.Advance(80 * time.Microsecond)
	root.End(83 * time.Microsecond)

	if b.Off != 3*time.Microsecond {
		t.Fatalf("plog span offset = %v", b.Off)
	}
	if d1.Off != 0 || d2.Off != 0 {
		t.Fatalf("parallel children offsets: %v %v", d1.Off, d2.Off)
	}
	tree := root.Tree()
	for _, want := range []string{"gateway.produce", "bus.send", "plog.append", "pool.write", "{log=1}"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	j := root.JSON()
	if len(j.Children) != 2 || j.Children[1].Attrs["log"] != "1" {
		t.Fatalf("json: %+v", j)
	}
	if tr.Get(1) != root || tr.Last() != root {
		t.Fatal("tracer lookup failed")
	}
}

func TestTracerEvictsOldTraces(t *testing.T) {
	tr := NewTracer(sim.NewClock())
	for i := 0; i < maxTraces+10; i++ {
		tr.Start("s")
	}
	if tr.Get(1) != nil {
		t.Fatal("oldest trace not evicted")
	}
	if tr.Get(int64(maxTraces+10)) == nil {
		t.Fatal("newest trace missing")
	}
	if tr.Last().ID != int64(maxTraces+10) {
		t.Fatalf("last = %d", tr.Last().ID)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	c.End(time.Second)
	c.SetAttr("k", "v")
	c.Advance(time.Second)
	if got := c.Tree(); got != "" {
		t.Fatalf("nil tree = %q", got)
	}
	var tr *Tracer
	if sp := tr.Start("x"); sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if tr.Get(1) != nil || tr.Last() != nil {
		t.Fatal("nil tracer lookup non-nil")
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry(sim.NewClock())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds").Observe(time.Microsecond)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	if got := r.Histogram("h_seconds").Count(); got != 8000 {
		t.Fatalf("hist = %d", got)
	}
}
