// Virtual-time tracing: a Span records where a request spent its
// simulated time as it crosses gateway → streamsvc → bus → plog → pool.
// The data path computes latency as explicit device costs rather than
// by observing a wall clock, so spans are built the same way: a child
// span's offset is a cursor the parent advances as sequential costs
// accrue, and parallel work (the fan-out of a plog append across pool
// disks) shares one offset with only the maximum advancing the cursor.
// Under a fixed seed the resulting span tree is exactly reproducible.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"streamlake/internal/sim"
)

// maxTraces bounds the tracer's ring of retained root spans.
const maxTraces = 256

// Span is one timed operation in a trace. Offsets and durations are
// virtual time. A span tree is built by a single goroutine (the request
// that owns it), so spans themselves are unlocked; only the tracer's
// index is synchronized.
type Span struct {
	ID    int64         // assigned to root spans by the tracer
	Name  string        // e.g. "plog.append"
	Start time.Duration // root only: virtual time the trace began
	Off   time.Duration // offset from the trace start
	Dur   time.Duration

	attrs    map[string]string
	children []*Span
	cursor   time.Duration // where the next sequential child begins
}

// Child opens a sub-span starting at the parent's cursor. Nil-safe: a
// nil parent returns a nil child, and the whole span API no-ops on nil,
// so untraced requests thread a nil *Span through the stack for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Off: s.cursor}
	s.children = append(s.children, c)
	return c
}

// End closes the span with the given virtual-time cost and advances the
// parent cursor past it, via the child's own cursor position being
// managed by the parent: End is called on the child, so it records the
// duration; sequential advancement is the caller's contract — Child
// starts at the cursor, End moves it.
func (s *Span) End(d time.Duration) {
	if s == nil {
		return
	}
	s.Dur = d
}

// SetAttr attaches a key=value annotation (rendered sorted).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
}

// Advance moves the sequential cursor forward d: the next Child starts
// that much later. Call after closing a child whose cost is part of the
// request's critical path, or after a parallel section with the
// maximum of the parallel costs.
func (s *Span) Advance(d time.Duration) {
	if s == nil {
		return
	}
	s.cursor += d
}

// attrString renders the attributes deterministically.
func (s *Span) attrString() string {
	if len(s.attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.attrs))
	for k := range s.attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.attrs[k]
	}
	return " {" + strings.Join(parts, " ") + "}"
}

// Tree renders the span tree as indented text for lakectl trace:
//
//	gateway.produce                     +0s       92µs
//	  streamsvc.send                    +0s       92µs
//	    bus.send                        +0s       3µs
//	    streamobj.append                +3µs      89µs
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.tree(&b, 0)
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	label := indent + s.Name
	pad := 36 - len(label)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(b, "%s%s+%-10s %s%s\n", label, strings.Repeat(" ", pad), s.Off, s.Dur, s.attrString())
	for _, c := range s.children {
		c.tree(b, depth+1)
	}
}

// SpanJSON is the wire form served by the gateway's /trace/{id}.
type SpanJSON struct {
	Name     string            `json:"name"`
	OffNs    int64             `json:"off_ns"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// JSON converts the span tree to its wire form.
func (s *Span) JSON() SpanJSON {
	j := SpanJSON{Name: s.Name, OffNs: int64(s.Off), DurNs: int64(s.Dur)}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			j.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.JSON())
	}
	return j
}

// Tracer assigns trace IDs and retains the most recent root spans.
type Tracer struct {
	clock *sim.Clock

	mu     sync.Mutex
	nextID int64
	traces map[int64]*Span
	order  []int64 // insertion order, for eviction and Last
}

// NewTracer builds a tracer stamping trace starts from clock.
func NewTracer(clock *sim.Clock) *Tracer {
	return &Tracer{clock: clock, traces: map[int64]*Span{}}
}

// Start opens a new root span. IDs are sequential, so traces are
// addressable deterministically under a fixed seed. A nil tracer
// returns a nil span (the untraced path).
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{ID: t.nextID, Name: name, Start: t.clock.Now()}
	t.traces[s.ID] = s
	t.order = append(t.order, s.ID)
	if len(t.order) > maxTraces {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	return s
}

// Get returns the root span with the given ID, or nil.
func (t *Tracer) Get(id int64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// Last returns the most recently started root span, or nil.
func (t *Tracer) Last() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.order) == 0 {
		return nil
	}
	return t.traces[t.order[len(t.order)-1]]
}
