// Package ec implements Reed–Solomon erasure coding over GF(2^8), the
// data-redundancy strategy StreamLake inherits from OceanStor Pacific.
// The paper credits erasure coding with raising disk utilization from 33%
// (3x replication) to 91%, and Figure 14(d) compares replication, EC, and
// EC over columnar data; this package provides the EC half of that
// comparison and the redundancy engine used by the PLog layer.
package ec

// GF(2^8) arithmetic with the polynomial x^8+x^4+x^3+x^2+1 (0x11D), the
// conventional Reed–Solomon field, for which 2 is a primitive element.
// Multiplication and division go through log/antilog tables built once at
// package init.

const gfPoly = 0x11D

var (
	gfExp [512]byte // antilog table, doubled to avoid a mod in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. It panics on division by zero, which only a bug in
// matrix inversion could trigger.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulSlice computes out[i] ^= c * in[i] for all i (accumulating
// multiply-add, the inner loop of encoding).
func mulSliceAdd(c byte, in, out []byte) {
	if c == 0 {
		return
	}
	logC := int(gfLog[c])
	for i, v := range in {
		if v != 0 {
			out[i] ^= gfExp[logC+int(gfLog[v])]
		}
	}
}
