package ec

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamlake/internal/sim"
)

func TestGFFieldAxioms(t *testing.T) {
	// Every nonzero element has an inverse and a*inv(a)==1.
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("inverse broken for %d", a)
		}
	}
	// Distributivity spot-check over random triples.
	r := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		a, b, c := byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity broken for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("commutativity broken for %d,%d", a, b)
		}
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ k, m int }{{0, 1}, {-1, 2}, {1, -1}, {200, 100}} {
		if _, err := New(tc.k, tc.m); err == nil {
			t.Fatalf("New(%d,%d) accepted", tc.k, tc.m)
		}
	}
	if _, err := New(4, 2); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeReconstructAllErasurePatterns(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRNG(2)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64)
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	stripe, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Erase every pair of shards; reconstruction must restore both.
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			damaged := make([][]byte, 6)
			for i := range stripe {
				if i == a || i == b {
					continue
				}
				damaged[i] = append([]byte(nil), stripe[i]...)
			}
			if err := c.Reconstruct(damaged); err != nil {
				t.Fatalf("erasures (%d,%d): %v", a, b, err)
			}
			for i := range stripe {
				if !bytes.Equal(damaged[i], stripe[i]) {
					t.Fatalf("erasures (%d,%d): shard %d mismatch", a, b, i)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(3, 2)
	stripe := make([][]byte, 5)
	stripe[0] = make([]byte, 8)
	stripe[1] = make([]byte, 8)
	if err := c.Reconstruct(stripe); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructValidation(t *testing.T) {
	c, _ := New(2, 1)
	if err := c.Reconstruct(make([][]byte, 2)); err == nil {
		t.Fatal("wrong stripe width accepted")
	}
	bad := [][]byte{make([]byte, 4), make([]byte, 8), nil}
	if err := c.Reconstruct(bad); err == nil {
		t.Fatal("inconsistent shard sizes accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Encode([][]byte{make([]byte, 4)}); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := c.Encode([][]byte{make([]byte, 4), make([]byte, 5)}); err == nil {
		t.Fatal("ragged shards accepted")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := New(5, 3)
	for _, n := range []int{1, 4, 5, 17, 100, 1000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 7)
		}
		shards := c.Split(data)
		if len(shards) != 5 {
			t.Fatalf("Split made %d shards", len(shards))
		}
		got, err := c.Join(shards, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestOverhead(t *testing.T) {
	// Figure 14(d)'s core arithmetic: EC(k, m) stores (k+m)/k of the data
	// where replication stores m+1 copies.
	c, _ := New(10, 2)
	if got := c.Overhead(); got != 1.2 {
		t.Fatalf("EC(10,2) overhead = %v, want 1.2", got)
	}
	c2, _ := New(4, 2)
	if got := c2.Overhead(); got != 1.5 {
		t.Fatalf("EC(4,2) overhead = %v, want 1.5", got)
	}
}

func TestQuickEncodeReconstruct(t *testing.T) {
	// Property: for random data and a random single erasure, a (6,3) code
	// always reconstructs exactly.
	c, err := New(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, erasureSel uint8) bool {
		r := sim.NewRNG(seed)
		data := make([][]byte, 6)
		for i := range data {
			data[i] = make([]byte, 32)
			for j := range data[i] {
				data[i][j] = byte(r.Intn(256))
			}
		}
		stripe, err := c.Encode(data)
		if err != nil {
			return false
		}
		// Erase three distinct shards chosen from the selector.
		erased := map[int]bool{}
		sel := int(erasureSel)
		for len(erased) < 3 {
			erased[sel%9] = true
			sel = sel*7 + 3
		}
		damaged := make([][]byte, 9)
		for i := range stripe {
			if !erased[i] {
				damaged[i] = append([]byte(nil), stripe[i]...)
			}
		}
		if err := c.Reconstruct(damaged); err != nil {
			return false
		}
		for i := range stripe {
			if !bytes.Equal(damaged[i], stripe[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode4x2(b *testing.B) {
	c, _ := New(4, 2)
	data := make([][]byte, 4)
	for i := range data {
		data[i] = make([]byte, 64<<10)
	}
	r := sim.NewRNG(3)
	for i := range data {
		for j := range data[i] {
			data[i][j] = byte(r.Intn(256))
		}
	}
	b.SetBytes(4 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
