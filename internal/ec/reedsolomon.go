package ec

import (
	"errors"
	"fmt"
)

// Codec is a systematic Reed–Solomon coder with k data shards and m parity
// shards: any k of the k+m shards reconstruct the original data, so the
// coded stripe tolerates m erasures at a storage overhead of (k+m)/k. The
// paper's EC configuration with FT (fault tolerance) = m maps directly to
// a Codec with that m.
type Codec struct {
	k, m   int
	matrix [][]byte // (k+m) x k encoding matrix; top k rows are identity
}

// ErrTooFewShards is returned by Reconstruct when fewer than k shards are
// present.
var ErrTooFewShards = errors.New("ec: too few shards to reconstruct")

// New creates a codec with k data and m parity shards. 1 <= k, 0 <= m, and
// k+m <= 255 (the field size bounds the stripe width).
func New(k, m int) (*Codec, error) {
	if k < 1 || m < 0 || k+m > 255 {
		return nil, fmt.Errorf("ec: invalid parameters k=%d m=%d", k, m)
	}
	return &Codec{k: k, m: m, matrix: buildMatrix(k, m)}, nil
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Codec) ParityShards() int { return c.m }

// Overhead returns the storage multiplier (k+m)/k of the code.
func (c *Codec) Overhead() float64 { return float64(c.k+c.m) / float64(c.k) }

// buildMatrix builds a systematic encoding matrix: identity on top of a
// Cauchy matrix. Cauchy guarantees every k x k submatrix is invertible,
// which is the property reconstruction relies on.
func buildMatrix(k, m int) [][]byte {
	mat := make([][]byte, k+m)
	for i := 0; i < k; i++ {
		row := make([]byte, k)
		row[i] = 1
		mat[i] = row
	}
	// Cauchy: rows indexed by x_i = k+i, columns by y_j = j; all distinct
	// in GF(256) for k+m <= 255.
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = gfInv(byte(k+i) ^ byte(j))
		}
		mat[k+i] = row
	}
	return mat
}

// Encode computes the m parity shards for k equal-length data shards,
// returning the full stripe of k+m shards (data shards are aliased, not
// copied).
func (c *Codec) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("ec: Encode needs %d data shards, got %d", c.k, len(data))
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("ec: shard %d has size %d, want %d", i, len(d), size)
		}
	}
	shards := make([][]byte, c.k+c.m)
	copy(shards, data)
	for i := 0; i < c.m; i++ {
		p := make([]byte, size)
		row := c.matrix[c.k+i]
		for j := 0; j < c.k; j++ {
			mulSliceAdd(row[j], data[j], p)
		}
		shards[c.k+i] = p
	}
	return shards, nil
}

// Reconstruct fills in the missing (nil) shards of a stripe in place.
// shards must have length k+m; at least k entries must be non-nil and all
// non-nil entries must share one length.
func (c *Codec) Reconstruct(shards [][]byte) error {
	if len(shards) != c.k+c.m {
		return fmt.Errorf("ec: Reconstruct needs %d shards, got %d", c.k+c.m, len(shards))
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s == nil {
			continue
		}
		present++
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return errors.New("ec: inconsistent shard sizes")
		}
	}
	if present < c.k {
		return ErrTooFewShards
	}
	missingData := false
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missingData = true
			break
		}
	}
	if missingData {
		if err := c.reconstructData(shards, size); err != nil {
			return err
		}
	}
	// Recompute any missing parity from (now complete) data.
	for i := 0; i < c.m; i++ {
		if shards[c.k+i] != nil {
			continue
		}
		p := make([]byte, size)
		row := c.matrix[c.k+i]
		for j := 0; j < c.k; j++ {
			mulSliceAdd(row[j], shards[j], p)
		}
		shards[c.k+i] = p
	}
	return nil
}

// reconstructData solves for the missing data shards using the first k
// available shards' matrix rows.
func (c *Codec) reconstructData(shards [][]byte, size int) error {
	rows := make([][]byte, 0, c.k)
	avail := make([][]byte, 0, c.k)
	for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
		if shards[i] != nil {
			rows = append(rows, c.matrix[i])
			avail = append(avail, shards[i])
		}
	}
	inv, err := invertMatrix(rows)
	if err != nil {
		return err
	}
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			continue
		}
		d := make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulSliceAdd(inv[i][j], avail[j], d)
		}
		shards[i] = d
	}
	return nil
}

// invertMatrix inverts a k x k matrix over GF(256) by Gauss–Jordan
// elimination.
func invertMatrix(m [][]byte) ([][]byte, error) {
	k := len(m)
	// Augmented [m | I].
	aug := make([][]byte, k)
	for i := 0; i < k; i++ {
		aug[i] = make([]byte, 2*k)
		copy(aug[i], m[i])
		aug[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < k; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, errors.New("ec: singular matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalize pivot row.
		pv := aug[col][col]
		if pv != 1 {
			inv := gfInv(pv)
			for j := 0; j < 2*k; j++ {
				aug[col][j] = gfMul(aug[col][j], inv)
			}
		}
		// Eliminate the column from all other rows.
		for r := 0; r < k; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*k; j++ {
				aug[r][j] ^= gfMul(f, aug[col][j])
			}
		}
	}
	out := make([][]byte, k)
	for i := 0; i < k; i++ {
		out[i] = aug[i][k:]
	}
	return out, nil
}

// Split pads data to a multiple of k and splits it into k equal shards.
// The original length must be carried out of band (Join takes it back).
func (c *Codec) Split(data []byte) [][]byte {
	shardSize := (len(data) + c.k - 1) / c.k
	if shardSize == 0 {
		shardSize = 1
	}
	shards := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		s := make([]byte, shardSize)
		start := i * shardSize
		if start < len(data) {
			end := start + shardSize
			if end > len(data) {
				end = len(data)
			}
			copy(s, data[start:end])
		}
		shards[i] = s
	}
	return shards
}

// Join concatenates k data shards and truncates to length n, inverting
// Split.
func (c *Codec) Join(shards [][]byte, n int) ([]byte, error) {
	if len(shards) < c.k {
		return nil, fmt.Errorf("ec: Join needs %d data shards, got %d", c.k, len(shards))
	}
	out := make([]byte, 0, n)
	for i := 0; i < c.k && len(out) < n; i++ {
		if shards[i] == nil {
			return nil, errors.New("ec: Join with missing data shard")
		}
		out = append(out, shards[i]...)
	}
	if len(out) < n {
		return nil, errors.New("ec: joined data shorter than requested length")
	}
	return out[:n], nil
}
