package lakehouse

import (
	"testing"

	"streamlake/internal/cache"
	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

// newCachedEngine builds an accelerated engine with the read cache
// attached, exposing the pool so tests can account device bytes.
func newCachedEngine(t testing.TB) (*Engine, *pool.Pool, *cache.Cache) {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("lh-cached", clock, sim.NVMeSSD, 8, 4<<20)
	fs := tableobj.NewFileStore(plog.NewManager(p, 8<<20))
	cat := tableobj.NewCatalog(clock)
	e := New(clock, fs, cat, Options{Acceleration: true, FlushEvery: 8})
	c := cache.New(cache.Config{DRAMBytes: 1 << 20, SCMBytes: 4 << 20})
	e.SetCache(c)
	return e, p, c
}

func poolReadBytes(p *pool.Pool) int64 {
	var total int64
	for i := 0; i < p.DiskCount(); i++ {
		total += p.DiskStats(pool.DiskID(i)).ReadBytes
	}
	return total
}

// Repeated planning against an unchanged table must read zero manifest
// bytes from the devices: the snapshot file is served from the cache
// and only the catalog pointer (a separate SCM KV device) is consulted.
func TestRepeatedPlanningReadsNoDeviceBytes(t *testing.T) {
	e, p, c := newCachedEngine(t)
	mkTable(t, e, "t")
	for i := int64(0); i < 20; i++ {
		if _, err := e.Insert("t", []colfile.Row{cacheRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush("t"); err != nil {
		t.Fatal(err)
	}
	cold, coldCost, err := e.PlanScan("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	base := poolReadBytes(p)
	for i := 0; i < 10; i++ {
		warm, warmCost, err := e.PlanScan("t", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(warm.Files) != len(cold.Files) || warm.TotalFiles != cold.TotalFiles {
			t.Fatalf("warm plan diverged: %+v vs %+v", warm, cold)
		}
		if warmCost > coldCost {
			t.Fatalf("warm plan costlier than cold: %v > %v", warmCost, coldCost)
		}
	}
	if got := poolReadBytes(p); got != base {
		t.Fatalf("warm planning read %d device bytes, want 0", got-base)
	}
	if st := c.Stats(); st.DRAMHits+st.SCMHits < 10 {
		t.Fatalf("manifest lookups missed the cache: %+v", st)
	}
}

// A DML commit moves the snapshot pointer: planning must see the new
// manifest immediately and the superseded entry must be invalidated.
func TestManifestCacheCoherentAcrossDML(t *testing.T) {
	e, _, c := newCachedEngine(t)
	mkTable(t, e, "t")
	for i := int64(0); i < 8; i++ {
		if _, err := e.Insert("t", []colfile.Row{cacheRow(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Flush("t"); err != nil {
		t.Fatal(err)
	}
	before, _, err := e.PlanScan("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	e.PlanScan("t", nil) // warm the manifest entry
	deleted, _, err := e.Delete("t", []RangeFilter{{Column: "start_time", Lo: iv(0), Hi: iv(3)}})
	if err != nil || deleted == 0 {
		t.Fatalf("delete: %d rows, err=%v", deleted, err)
	}
	after, _, err := e.PlanScan("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rowsBefore, rowsAfter int64
	for _, f := range before.Files {
		rowsBefore += f.Rows
	}
	for _, f := range after.Files {
		rowsAfter += f.Rows
	}
	if rowsAfter != rowsBefore-deleted {
		t.Fatalf("post-delete plan sees %d rows, want %d", rowsAfter, rowsBefore-deleted)
	}
	if st := c.Stats(); st.Invalidations == 0 {
		t.Fatal("commit did not invalidate superseded manifests")
	}
}

// The cache is an accelerator, not a semantic change: plans with and
// without it must be identical.
func TestPlanIdenticalWithAndWithoutCache(t *testing.T) {
	cached, _, _ := newCachedEngine(t)
	plain := newEngine(t, true)
	for _, e := range []*Engine{cached, plain} {
		mkTable(t, e, "t")
		for i := int64(0); i < 12; i++ {
			if _, err := e.Insert("t", []colfile.Row{cacheRow(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Flush("t"); err != nil {
			t.Fatal(err)
		}
	}
	filters := []RangeFilter{{Column: "start_time", Lo: iv(200), Hi: iv(900)}}
	a, _, err := cached.PlanScan("t", filters)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := plain.PlanScan("t", filters)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Files) != len(b.Files) || a.SkippedFiles != b.SkippedFiles || a.MetadataBytes != b.MetadataBytes {
		t.Fatalf("plans diverged: cached=%+v plain=%+v", a, b)
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("file %d diverged: %s vs %s", i, a.Files[i].Path, b.Files[i].Path)
		}
	}
}

// cacheRow builds one distinct row per insert for the cache tests.
func cacheRow(i int64) colfile.Row {
	return row("http://site", i*100, "Beijing", i)
}
