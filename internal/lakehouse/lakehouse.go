// Package lakehouse implements StreamLake's lakehouse read/write
// operations (Section V-B, Figure 9): CREATE TABLE, INSERT, SELECT,
// DELETE, UPDATE and DROP over table objects, with the metadata
// acceleration the paper highlights — a key-value write cache that
// combines the many small metadata I/Os of streaming ingestion, an
// asynchronous MetaFresher that folds cached commit records into
// persistent snapshot files, and O(1) cached metadata lookups at query
// planning time in place of the file-based catalog's linear directory
// listing (the comparison of Figure 15).
package lakehouse

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"streamlake/internal/cache"
	"streamlake/internal/colfile"
	"streamlake/internal/kv"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

// Options configures an Engine.
type Options struct {
	// Acceleration enables the metadata write cache and cached planning.
	// Disabled, the engine behaves like a file-based catalog system —
	// the baseline of Figure 15.
	Acceleration bool
	// FlushEvery is the write-cache capacity in commit records: the
	// MetaFresher folds the cache into persistent metadata when it
	// fills. Zero means 64.
	FlushEvery int
	// ZoneMaps records per-row-group min/max values and per-column
	// bloom filters in data-file metadata at insert time; planning
	// consults them to prune files before any device read. Off by
	// default (the stats encoding changes when on).
	ZoneMaps bool
}

// Engine executes lakehouse operations over a file store and catalog.
type Engine struct {
	clock *sim.Clock
	fs    *tableobj.FileStore
	cat   *tableobj.Catalog
	opts  Options
	cache *kv.DB // metadata write cache on SCM

	mu      sync.Mutex
	tables  map[string]*tableState
	metrics scanMetrics
	// rcache is the shared two-tier read cache, when one is attached:
	// decoded-snapshot manifests are served from it at query-planning
	// time keyed by snapshot id (immutable by id, so never stale in
	// content), and DML commits invalidate the table's prefix.
	rcache *cache.Cache
}

// SetCache attaches the shared read cache used for snapshot-manifest
// lookups at planning time (nil detaches it).
func (e *Engine) SetCache(c *cache.Cache) {
	e.mu.Lock()
	e.rcache = c
	e.mu.Unlock()
}

func manifestPrefix(name string) string { return "manifest/" + name + "/" }

func manifestKey(name string, id int64) string {
	return manifestPrefix(name) + strconv.FormatInt(id, 10)
}

// invalidateManifests drops the table's cached manifests after a commit
// moved the snapshot pointer. Snapshot files are immutable by id, so
// this is hygiene (reclaiming dead entries), not a correctness edge.
func (e *Engine) invalidateManifests(name string) {
	e.mu.Lock()
	c := e.rcache
	e.mu.Unlock()
	if c != nil {
		c.InvalidatePrefix(manifestPrefix(name))
	}
}

type tableState struct {
	tbl *tableobj.Table
	// pending commit records in the write cache, not yet folded into a
	// persistent snapshot by the MetaFresher.
	pendingAdds    []tableobj.DataFile
	pendingRemoves []tableobj.DataFile
	cacheSeq       int64
}

// New builds an engine.
func New(clock *sim.Clock, fs *tableobj.FileStore, cat *tableobj.Catalog, opts Options) *Engine {
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 64
	}
	return &Engine{
		clock:  clock,
		fs:     fs,
		cat:    cat,
		opts:   opts,
		cache:  kv.Open(kv.Options{Device: sim.NewDeviceOf("meta-cache-scm", sim.SCM)}),
		tables: make(map[string]*tableState),
	}
}

// CreateTable registers a table and its directories (CREATE TABLE).
func (e *Engine) CreateTable(meta tableobj.TableMeta) (time.Duration, error) {
	tbl, cost, err := tableobj.Create(e.clock, e.fs, e.cat, meta)
	if err != nil {
		return cost, err
	}
	tbl.SetZoneMaps(e.opts.ZoneMaps)
	e.mu.Lock()
	e.tables[meta.Name] = &tableState{tbl: tbl}
	e.mu.Unlock()
	return cost, nil
}

func (e *Engine) state(name string) (*tableState, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.tables[name]; ok {
		return st, nil
	}
	tbl, _, err := tableobj.Open(e.clock, e.fs, e.cat, name)
	if err != nil {
		return nil, err
	}
	tbl.SetZoneMaps(e.opts.ZoneMaps)
	st := &tableState{tbl: tbl}
	e.tables[name] = st
	return st, nil
}

// Table exposes the underlying table object.
func (e *Engine) Table(name string) (*tableobj.Table, error) {
	st, err := e.state(name)
	if err != nil {
		return nil, err
	}
	return st.tbl, nil
}

// Insert writes rows (split by partition) as data files and records
// their commit metadata — through the write cache when acceleration is
// on (Figure 9 steps b-1..b-3), or as an immediate commit + snapshot
// write when it is off.
func (e *Engine) Insert(name string, rows []colfile.Row) (time.Duration, error) {
	if len(rows) == 0 {
		return 0, errors.New("lakehouse: insert with no rows")
	}
	st, err := e.state(name)
	if err != nil {
		return 0, err
	}
	// (a) Data persistence: records go straight to columnar files in the
	// partition paths.
	byPartition := map[string][]colfile.Row{}
	for _, r := range rows {
		if err := st.tbl.Schema().Validate(r); err != nil {
			return 0, err
		}
		p := st.tbl.PartitionFor(r)
		byPartition[p] = append(byPartition[p], r)
	}
	x, err := st.tbl.Begin()
	if err != nil {
		return 0, err
	}
	var files []tableobj.DataFile
	for _, part := range byPartition {
		f, err := x.WriteRows(part)
		if err != nil {
			return x.Cost(), err
		}
		files = append(files, f)
	}

	if !e.opts.Acceleration {
		// Baseline: every insert persists commit + snapshot files — the
		// flood of small metadata I/O the cache exists to absorb.
		_, err := x.Commit()
		for errors.Is(err, tableobj.ErrConflict) {
			_, err = x.Retry()
		}
		return x.Cost(), err
	}

	// (b) Metadata caching: commit records become key-value pairs in the
	// SCM write cache; the transaction's metadata write is deferred.
	cost := x.Cost()
	e.mu.Lock()
	for _, f := range files {
		st.cacheSeq++
		key := fmt.Sprintf("wcache/%s/%012d", name, st.cacheSeq)
		c, _ := e.cache.Put([]byte(key), encodeCachedFile(f))
		cost += c
		st.pendingAdds = append(st.pendingAdds, f)
	}
	pending := len(st.pendingAdds) + len(st.pendingRemoves)
	e.mu.Unlock()

	// (c) Metadata persistence: MetaFresher flushes when the buffer is
	// full.
	if pending >= e.opts.FlushEvery {
		c, err := e.Flush(name)
		return cost + c, err
	}
	return cost, nil
}

func encodeCachedFile(f tableobj.DataFile) []byte {
	var out []byte
	out = binary.AppendUvarint(out, uint64(len(f.Path)))
	out = append(out, f.Path...)
	out = binary.AppendVarint(out, f.Rows)
	out = binary.AppendVarint(out, f.Bytes)
	return out
}

// Flush is the MetaFresher: it transforms the cached commit records into
// commit and snapshot files in the table's /metadata directory as one
// batched transaction.
func (e *Engine) Flush(name string) (time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return 0, err
	}
	e.mu.Lock()
	adds := st.pendingAdds
	removes := st.pendingRemoves
	st.pendingAdds = nil
	st.pendingRemoves = nil
	e.mu.Unlock()
	if len(adds) == 0 && len(removes) == 0 {
		return 0, nil
	}
	x, err := st.tbl.Begin()
	if err != nil {
		return 0, err
	}
	for _, f := range adds {
		x.AddFile(f)
	}
	for _, f := range removes {
		x.RemoveFile(f)
	}
	_, err = x.Commit()
	for errors.Is(err, tableobj.ErrConflict) {
		_, err = x.Retry()
	}
	if err != nil {
		// Restore the cache so the records are not lost.
		e.mu.Lock()
		st.pendingAdds = append(adds, st.pendingAdds...)
		st.pendingRemoves = append(removes, st.pendingRemoves...)
		e.mu.Unlock()
		return x.Cost(), err
	}
	// Clear the flushed entries from the write cache, and drop cached
	// manifests now pointing at a superseded snapshot.
	e.cache.Scan([]byte("wcache/"+name+"/"), []byte("wcache/"+name+"0"), func(k, v []byte) bool {
		e.cache.Delete(k)
		return true
	})
	e.invalidateManifests(name)
	return x.Cost(), nil
}

// Pending reports the write-cache backlog for a table.
func (e *Engine) Pending(name string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.tables[name]; ok {
		return len(st.pendingAdds) + len(st.pendingRemoves)
	}
	return 0
}
