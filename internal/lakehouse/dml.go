package lakehouse

import (
	"errors"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/tableobj"
)

// Delete removes rows matching the filters (DELETE in Section V-B).
// Files whose every row matches are dropped by a metadata-only commit;
// partially matching files are read, filtered and rewritten, with the
// file I/O kept at the storage side (pushdown). It returns how many rows
// were deleted.
func (e *Engine) Delete(name string, filters []RangeFilter) (int64, time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return 0, 0, err
	}
	// Deletes are barrier operations: fold the write cache first so the
	// commit sees every file.
	cost, err := e.Flush(name)
	if err != nil {
		return 0, cost, err
	}
	plan, pc, err := e.PlanScan(name, filters)
	cost += pc
	if err != nil {
		return 0, cost, err
	}
	x, err := st.tbl.Begin()
	if err != nil {
		return 0, cost, err
	}
	schema := st.tbl.Schema()
	var deleted int64
	for _, f := range plan.Files {
		if fileFullyCovered(schema, f, filters) {
			// Case 1: the whole file matches — metadata-only removal.
			x.RemoveFile(f)
			deleted += f.Rows
			continue
		}
		// Case 2: partial match — rewrite the survivors.
		blob, rc, err := e.fs.Read(f.Path)
		if err != nil {
			return deleted, cost, err
		}
		cost += rc
		r, err := colfile.Open(blob)
		if err != nil {
			return deleted, cost, err
		}
		var keep []colfile.Row
		r.Scan(func(row colfile.Row) bool {
			if rowMatches(schema, row, filters) {
				deleted++
			} else {
				keep = append(keep, append(colfile.Row(nil), row...))
			}
			return true
		})
		x.RemoveFile(f)
		if len(keep) > 0 {
			if _, err := x.WriteRows(keep); err != nil {
				return deleted, cost, err
			}
		}
	}
	_, err = x.Commit()
	for errors.Is(err, tableobj.ErrConflict) {
		_, err = x.Retry()
	}
	cost += x.Cost()
	if err == nil {
		e.invalidateManifests(name)
	}
	return deleted, cost, err
}

// fileFullyCovered reports whether every row of f is guaranteed to match
// the filters: each filter's bounds contain the file's whole value range
// for that column.
func fileFullyCovered(schema colfile.Schema, f tableobj.DataFile, filters []RangeFilter) bool {
	if len(filters) == 0 {
		return true
	}
	for _, flt := range filters {
		c := schema.FieldIndex(flt.Column)
		if c < 0 || c >= len(f.Min) {
			return false
		}
		if flt.Lo != nil && colfile.Compare(f.Min[c], *flt.Lo) < 0 {
			return false
		}
		if flt.Hi != nil && colfile.Compare(f.Max[c], *flt.Hi) > 0 {
			return false
		}
	}
	return true
}

// Update rewrites rows matching the filters through set (UPDATE in
// Section V-B), using the same select-then-rewrite path as Delete with
// pushdown on the file I/O. It returns how many rows were updated.
func (e *Engine) Update(name string, filters []RangeFilter, set func(colfile.Row) colfile.Row) (int64, time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return 0, 0, err
	}
	cost, err := e.Flush(name)
	if err != nil {
		return 0, cost, err
	}
	plan, pc, err := e.PlanScan(name, filters)
	cost += pc
	if err != nil {
		return 0, cost, err
	}
	x, err := st.tbl.Begin()
	if err != nil {
		return 0, cost, err
	}
	schema := st.tbl.Schema()
	var updated int64
	for _, f := range plan.Files {
		blob, rc, err := e.fs.Read(f.Path)
		if err != nil {
			return updated, cost, err
		}
		cost += rc
		r, err := colfile.Open(blob)
		if err != nil {
			return updated, cost, err
		}
		var out []colfile.Row
		changed := false
		var scanErr error
		r.Scan(func(row colfile.Row) bool {
			row = append(colfile.Row(nil), row...)
			if rowMatches(schema, row, filters) {
				row = set(row)
				if err := schema.Validate(row); err != nil {
					scanErr = err
					return false
				}
				updated++
				changed = true
			}
			out = append(out, row)
			return true
		})
		if scanErr != nil {
			return updated, cost, scanErr
		}
		if !changed {
			continue
		}
		x.RemoveFile(f)
		if _, err := x.WriteRows(out); err != nil {
			return updated, cost, err
		}
	}
	_, err = x.Commit()
	for errors.Is(err, tableobj.ErrConflict) {
		_, err = x.Retry()
	}
	cost += x.Cost()
	if err == nil {
		e.invalidateManifests(name)
	}
	return updated, cost, err
}

// DropSoft unregisters a table, retaining data for restoration. The
// engine's cached handle is evicted so subsequent operations fail with
// ErrTableDropped until a Restore.
func (e *Engine) DropSoft(name string) (time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return 0, err
	}
	cost, err := e.Flush(name)
	if err != nil {
		return cost, err
	}
	c, err := st.tbl.DropSoft()
	if err == nil {
		e.mu.Lock()
		delete(e.tables, name)
		e.mu.Unlock()
	}
	return cost + c, err
}

// Restore re-registers a soft-dropped table.
func (e *Engine) Restore(name string) (time.Duration, error) {
	return e.cat.Restore(name)
}

// DropHard removes the table's data and metadata. Per the paper's note,
// metadata still sitting in the acceleration cache is cleared from the
// cache first, then the persistent files are deleted.
func (e *Engine) DropHard(name string) (time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return 0, err
	}
	var cost time.Duration
	// (1) Clear the write cache.
	e.mu.Lock()
	st.pendingAdds = nil
	st.pendingRemoves = nil
	e.mu.Unlock()
	e.cache.Scan([]byte("wcache/"+name+"/"), []byte("wcache/"+name+"0"), func(k, v []byte) bool {
		c, _ := e.cache.Delete(k)
		cost += c
		return true
	})
	// (2) Delete from disk and the catalog.
	c, err := st.tbl.DropHard()
	cost += c
	if err != nil {
		return cost, err
	}
	e.mu.Lock()
	delete(e.tables, name)
	e.mu.Unlock()
	e.invalidateManifests(name)
	return cost, nil
}
