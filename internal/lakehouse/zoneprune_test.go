package lakehouse

import (
	"fmt"
	"testing"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

// filePrune unit coverage: zone maps prune files whose overall range
// overlaps a predicate no row group can satisfy; blooms prune equality
// probes the file provably never stored.
func TestFilePruneReasons(t *testing.T) {
	schema := colfile.MustSchema("k:int64")
	zf := func(lo, hi int64) tableobj.ZoneMap {
		return tableobj.ZoneMap{
			Min: []colfile.Value{colfile.IntValue(lo)},
			Max: []colfile.Value{colfile.IntValue(hi)},
		}
	}
	bloom := tableobj.NewBloom(4)
	for _, v := range []int64{1, 5, 105, 109} {
		bloom.Add(colfile.IntValue(v))
	}
	f := tableobj.DataFile{
		Rows: 8,
		Min:  []colfile.Value{colfile.IntValue(1)},
		Max:  []colfile.Value{colfile.IntValue(109)},
		// Two islands: 1..9 and 100..109. The file range covers 1..109.
		Zones:  []tableobj.ZoneMap{zf(1, 9), zf(100, 109)},
		Blooms: []*tableobj.Bloom{bloom},
	}
	cases := []struct {
		lo, hi int64
		want   pruneReason
	}{
		{5, 7, pruneNone},        // inside the first island
		{200, 300, pruneRange},   // outside the file range entirely
		{50, 60, pruneZone},      // between the islands: file range overlaps, no zone does
		{7, 7, pruneBloom},       // equality probe on a value never stored
		{105, 105, pruneNone},    // equality hit on a stored value
		{9999, 9999, pruneRange}, // equality outside the range
	}
	for _, c := range cases {
		got := filePrune(schema, f, []RangeFilter{{Column: "k", Lo: iv(c.lo), Hi: iv(c.hi)}})
		if got != c.want {
			t.Fatalf("prune [%d,%d]: got %d want %d", c.lo, c.hi, got, c.want)
		}
	}
	// Files without zone stats never zone/bloom-prune.
	bare := tableobj.DataFile{Rows: 8, Min: f.Min, Max: f.Max}
	if got := filePrune(schema, bare, []RangeFilter{{Column: "k", Lo: iv(50), Hi: iv(60)}}); got != pruneNone {
		t.Fatalf("zone-free file pruned: %d", got)
	}
}

// End to end: with ZoneMaps on, a selective equality query reads a
// fraction of the files a range-stats-only plan would, because each
// file's bloom rules out the keys it never stored. Keys are dealt
// round-robin so every file's min/max covers the whole key range —
// file-level stats alone prune nothing.
func TestZoneMapsPruneSelectiveScan(t *testing.T) {
	const files, perFile = 8, 200
	run := func(zoneMaps bool) (Plan, int64) {
		clock := sim.NewClock()
		p := pool.New("lh-zm-e2e", clock, sim.NVMeSSD, 8, 16<<20)
		fs := tableobj.NewFileStore(plog.NewManager(p, 16<<20))
		e := New(clock, fs, tableobj.NewCatalog(clock), Options{
			Acceleration: true, FlushEvery: 64, ZoneMaps: zoneMaps,
		})
		mkTable(t, e, "events")
		for fi := 0; fi < files; fi++ {
			var rows []colfile.Row
			for i := 0; i < perFile; i++ {
				// start_time ≡ fi (mod files): ranges all span ~0..1600,
				// but each file holds only its own residue class.
				rows = append(rows, row(fmt.Sprintf("u%d", i), int64(i*files+fi), "bj", 1))
			}
			if _, err := e.Insert("events", rows); err != nil {
				t.Fatal(err)
			}
		}
		// 803 = 100*files + 3: mid-range, so every file's min/max covers
		// it, but only file 3 ever stored it.
		probe := []RangeFilter{{Column: "start_time", Lo: iv(803), Hi: iv(803)}}
		plan, _, err := e.PlanScan("events", probe)
		if err != nil {
			t.Fatal(err)
		}
		var matched int64
		if _, _, err := e.Scan("events", plan, probe, func(r colfile.Row) bool {
			matched++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return plan, matched
	}
	base, baseMatched := run(false)
	pruned, prunedMatched := run(true)
	if baseMatched != 1 || prunedMatched != 1 {
		t.Fatalf("matched rows: base %d, pruned %d", baseMatched, prunedMatched)
	}
	if len(base.Files) != files {
		t.Fatalf("baseline pruned %d files; the workload should defeat min/max stats", base.SkippedFiles)
	}
	// Blooms are probabilistic: the true home file always survives, and
	// at ~1% FP per probe at most one false positive should ride along.
	if len(pruned.Files) > 2 || pruned.BloomPrunedFiles < files-2 {
		t.Fatalf("zone-map plan: %d files, %d bloom-pruned (want ≤2 and ≥%d)",
			len(pruned.Files), pruned.BloomPrunedFiles, files-2)
	}
	if pruned.BloomPrunedFiles+len(pruned.Files) != files {
		t.Fatalf("plan books don't balance: %+v", pruned)
	}
}
