package lakehouse

import (
	"fmt"
	"testing"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
	"streamlake/internal/tableobj"
)

var dpiSchema = colfile.MustSchema("url:string", "start_time:int64", "province:string", "bytes:int64")

func row(url string, ts int64, prov string, b int64) colfile.Row {
	return colfile.Row{colfile.StringValue(url), colfile.IntValue(ts), colfile.StringValue(prov), colfile.IntValue(b)}
}

func newEngine(t testing.TB, accel bool) *Engine {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("lh", clock, sim.NVMeSSD, 8, 4<<20)
	fs := tableobj.NewFileStore(plog.NewManager(p, 8<<20))
	cat := tableobj.NewCatalog(clock)
	return New(clock, fs, cat, Options{Acceleration: accel, FlushEvery: 8})
}

func mkTable(t testing.TB, e *Engine, name string) {
	t.Helper()
	if _, err := e.CreateTable(tableobj.TableMeta{
		Name: name, Path: "/lake/" + name, Schema: dpiSchema, PartitionColumn: "province",
	}); err != nil {
		t.Fatal(err)
	}
}

func iv(v int64) *colfile.Value  { x := colfile.IntValue(v); return &x }
func sv(s string) *colfile.Value { x := colfile.StringValue(s); return &x }

func TestInsertAndPlanScanAccelerated(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	cost, err := e.Insert("t", []colfile.Row{
		row("http://a", 100, "Beijing", 10),
		row("http://b", 200, "Shanghai", 20),
	})
	if err != nil || cost <= 0 {
		t.Fatal(err)
	}
	// Pending in write cache, not yet flushed (FlushEvery=8).
	if e.Pending("t") != 2 {
		t.Fatalf("pending: %d", e.Pending("t"))
	}
	// Planning sees cached (unflushed) files.
	plan, _, err := e.PlanScan("t", nil)
	if err != nil || len(plan.Files) != 2 {
		t.Fatalf("plan: %+v %v", plan, err)
	}
	// Filter prunes by file stats.
	plan, _, err = e.PlanScan("t", []RangeFilter{{Column: "start_time", Lo: iv(150), Hi: iv(250)}})
	if err != nil || len(plan.Files) != 1 || plan.SkippedFiles != 1 {
		t.Fatalf("filtered plan: %+v %v", plan, err)
	}
}

func TestMetaFresherFlushOnCapacity(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	// 8 single-partition inserts hit FlushEvery=8.
	for i := 0; i < 8; i++ {
		if _, err := e.Insert("t", []colfile.Row{row(fmt.Sprintf("u%d", i), int64(i), "Beijing", 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Pending("t") != 0 {
		t.Fatalf("MetaFresher did not flush: %d pending", e.Pending("t"))
	}
	// The persistent snapshot now carries all files.
	tbl, _ := e.Table("t")
	cur, _, _ := tbl.Current()
	if cur.RowCount != 8 || len(cur.Files) != 8 {
		t.Fatalf("snapshot after flush: %+v", cur)
	}
}

func TestScanWithRowGroupSkipping(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	var rows []colfile.Row
	for i := 0; i < 20000; i++ {
		rows = append(rows, row(fmt.Sprintf("u%d", i), int64(i), "Beijing", int64(i%7)))
	}
	e.Insert("t", rows)
	e.Flush("t")
	plan, _, _ := e.PlanScan("t", nil)
	filters := []RangeFilter{{Column: "start_time", Lo: iv(100), Hi: iv(200)}}
	var got int64
	stats, cost, err := e.Scan("t", plan, filters, func(r colfile.Row) bool { got++; return true })
	if err != nil || cost <= 0 {
		t.Fatal(err)
	}
	if got != 101 || stats.RowsMatched != 101 {
		t.Fatalf("matched %d rows", got)
	}
	// 20000 rows in 8192-row groups: the filter touches group 0 only.
	if stats.SkippedGroups == 0 || stats.SkippedBytes == 0 {
		t.Fatalf("no row groups skipped: %+v", stats)
	}
}

func TestAcceleratedPlanningCheaperAndLighter(t *testing.T) {
	// The Figure 15 comparison in miniature: same data, same query, with
	// and without metadata acceleration.
	partitions := 40
	build := func(accel bool) (*Engine, Plan, time.Duration) {
		e := newEngine(t, accel)
		mkTable(t, e, "t")
		for p := 0; p < partitions; p++ {
			var rows []colfile.Row
			for i := 0; i < 5; i++ {
				rows = append(rows, row(fmt.Sprintf("u%d", i), int64(p*100+i), fmt.Sprintf("P%02d", p), 1))
			}
			if _, err := e.Insert("t", rows); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Flush("t"); err != nil {
			t.Fatal(err)
		}
		plan, cost, err := e.PlanScan("t", []RangeFilter{{Column: "start_time", Lo: iv(150), Hi: iv(250)}})
		if err != nil {
			t.Fatal(err)
		}
		return e, plan, cost
	}
	_, planA, costA := build(true)
	_, planB, costB := build(false)
	if len(planA.Files) != len(planB.Files) {
		t.Fatalf("plans disagree: %d vs %d files", len(planA.Files), len(planB.Files))
	}
	if costA >= costB {
		t.Fatalf("accelerated planning %v not cheaper than file-based %v", costA, costB)
	}
	if planA.MetadataBytes >= planB.MetadataBytes {
		t.Fatalf("accelerated planning loaded %d bytes >= baseline %d", planA.MetadataBytes, planB.MetadataBytes)
	}
}

func TestAggregatePushdownDAUQuery(t *testing.T) {
	// The Figure 13 query: COUNT(*) grouped by province with URL and
	// time filters, computed at the storage side.
	e := newEngine(t, true)
	mkTable(t, e, "tb_dpi_log_hours")
	var rows []colfile.Row
	for i := 0; i < 1000; i++ {
		prov := []string{"Beijing", "Shanghai", "Guangdong"}[i%3]
		url := "http://streamlake_fin_app.com"
		if i%5 == 0 {
			url = "http://other.example"
		}
		rows = append(rows, row(url, int64(1656806400+i), prov, 1))
	}
	e.Insert("tb_dpi_log_hours", rows)
	e.Flush("tb_dpi_log_hours")
	results, cost, err := e.AggregatePushdown("tb_dpi_log_hours",
		[]RangeFilter{
			{Column: "url", Lo: sv("http://streamlake_fin_app.com"), Hi: sv("http://streamlake_fin_app.com")},
			{Column: "start_time", Lo: iv(1656806400), Hi: iv(1656806400 + 999)},
		}, "province", "")
	if err != nil || cost <= 0 {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("groups: %+v", results)
	}
	var total int64
	for _, r := range results {
		total += r.Count
	}
	if total != 800 { // 1000 minus the 200 "other" URLs
		t.Fatalf("DAU total: %d", total)
	}
	// Groups come back sorted.
	if results[0].Group != "Beijing" || results[2].Group != "Shanghai" {
		t.Fatalf("group order: %+v", results)
	}
	// Unknown columns are rejected.
	if _, _, err := e.AggregatePushdown("tb_dpi_log_hours", nil, "zz", ""); err == nil {
		t.Fatal("unknown group column accepted")
	}
	if _, _, err := e.AggregatePushdown("tb_dpi_log_hours", nil, "", "zz"); err == nil {
		t.Fatal("unknown sum column accepted")
	}
}

func TestAggregateSum(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{
		row("a", 1, "B", 10),
		row("b", 2, "B", 20),
		row("c", 3, "S", 5),
	})
	results, _, err := e.AggregatePushdown("t", nil, "province", "bytes")
	if err != nil || len(results) != 2 {
		t.Fatalf("%+v %v", results, err)
	}
	if results[0].Group != "B" || results[0].Sum != 30 || results[1].Sum != 5 {
		t.Fatalf("sums: %+v", results)
	}
}

func TestDeleteMetadataOnlyFastPath(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	// Two partitions; delete everything in one of them.
	e.Insert("t", []colfile.Row{row("a", 1, "Beijing", 1), row("b", 2, "Beijing", 1)})
	e.Insert("t", []colfile.Row{row("c", 3, "Shanghai", 1)})
	if _, err := e.Flush("t"); err != nil {
		t.Fatal(err)
	}
	filesBefore := e.mustFS(t).Count()
	n, _, err := e.Delete("t", []RangeFilter{{Column: "province", Lo: sv("Beijing"), Hi: sv("Beijing")}})
	if err != nil || n != 2 {
		t.Fatalf("delete: %d %v", n, err)
	}
	// Fast path: no new data file was written (metadata-only drop).
	// The data file itself remains until snapshot expiration.
	if e.mustFS(t).Count() > filesBefore+2 { // +commit +snapshot only
		t.Fatalf("delete rewrote data files: %d -> %d", filesBefore, e.mustFS(t).Count())
	}
	plan, _, _ := e.PlanScan("t", nil)
	var rows int64
	for _, f := range plan.Files {
		rows += f.Rows
	}
	if rows != 1 {
		t.Fatalf("rows after delete: %d", rows)
	}
}

func (e *Engine) mustFS(t testing.TB) *tableobj.FileStore { t.Helper(); return e.fs }

func TestDeletePartialRewrite(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	var rows []colfile.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, row(fmt.Sprintf("u%d", i), int64(i), "Beijing", 1))
	}
	e.Insert("t", rows)
	n, _, err := e.Delete("t", []RangeFilter{{Column: "start_time", Lo: iv(10), Hi: iv(19)}})
	if err != nil || n != 10 {
		t.Fatalf("delete: %d %v", n, err)
	}
	var remaining int64
	plan, _, _ := e.PlanScan("t", nil)
	e.Scan("t", plan, nil, func(r colfile.Row) bool { remaining++; return true })
	if remaining != 90 {
		t.Fatalf("remaining: %d", remaining)
	}
	// Deleted range really gone.
	var hits int64
	e.Scan("t", plan, []RangeFilter{{Column: "start_time", Lo: iv(10), Hi: iv(19)}}, func(r colfile.Row) bool { hits++; return true })
	if hits != 0 {
		t.Fatalf("deleted rows still present: %d", hits)
	}
}

func TestUpdate(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{
		row("http://a", 1, "Beijing", 10),
		row("http://b", 2, "Beijing", 20),
	})
	urlIdx := dpiSchema.FieldIndex("url")
	n, _, err := e.Update("t",
		[]RangeFilter{{Column: "start_time", Lo: iv(2), Hi: iv(2)}},
		func(r colfile.Row) colfile.Row {
			r[urlIdx] = colfile.StringValue("http://masked")
			return r
		})
	if err != nil || n != 1 {
		t.Fatalf("update: %d %v", n, err)
	}
	plan, _, _ := e.PlanScan("t", nil)
	seen := map[string]bool{}
	e.Scan("t", plan, nil, func(r colfile.Row) bool { seen[r[urlIdx].Str] = true; return true })
	if !seen["http://masked"] || !seen["http://a"] || seen["http://b"] {
		t.Fatalf("post-update urls: %v", seen)
	}
	// Updates that break the schema are rejected.
	if _, _, err := e.Update("t", nil, func(r colfile.Row) colfile.Row {
		return colfile.Row{colfile.IntValue(1)}
	}); err == nil {
		t.Fatal("schema-breaking update accepted")
	}
}

func TestDropHardClearsCacheFirst(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{row("a", 1, "B", 1)}) // sits in write cache
	if e.Pending("t") == 0 {
		t.Fatal("test premise: cache should have pending records")
	}
	if _, err := e.DropHard("t"); err != nil {
		t.Fatal(err)
	}
	if e.Pending("t") != 0 {
		t.Fatal("cache not cleared")
	}
	if e.mustFS(t).Count() != 0 {
		t.Fatalf("files left: %d", e.mustFS(t).Count())
	}
	if _, err := e.Insert("t", []colfile.Row{row("a", 1, "B", 1)}); err == nil {
		t.Fatal("insert into hard-dropped table accepted")
	}
}

func TestDropSoftAndRestore(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{row("a", 1, "B", 1)})
	if _, err := e.DropSoft("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Restore("t"); err != nil {
		t.Fatal(err)
	}
	plan, _, err := e.PlanScan("t", nil)
	if err != nil || len(plan.Files) != 1 {
		t.Fatalf("after restore: %+v %v", plan, err)
	}
}

func TestInsertValidatesRows(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	if _, err := e.Insert("t", nil); err == nil {
		t.Fatal("empty insert accepted")
	}
	if _, err := e.Insert("t", []colfile.Row{{colfile.IntValue(1)}}); err == nil {
		t.Fatal("schema-violating insert accepted")
	}
	if _, err := e.Insert("ghost", []colfile.Row{row("a", 1, "B", 1)}); err == nil {
		t.Fatal("insert into unknown table accepted")
	}
}
