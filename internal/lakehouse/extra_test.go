package lakehouse

import (
	"errors"
	"fmt"
	"testing"

	"streamlake/internal/colfile"
	"streamlake/internal/tableobj"
)

func TestOperationsOnUnknownTable(t *testing.T) {
	e := newEngine(t, true)
	if _, _, err := e.PlanScan("ghost", nil); !errors.Is(err, tableobj.ErrUnknownTable) {
		t.Fatalf("plan: %v", err)
	}
	if _, _, err := e.Delete("ghost", nil); !errors.Is(err, tableobj.ErrUnknownTable) {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := e.Update("ghost", nil, nil); !errors.Is(err, tableobj.ErrUnknownTable) {
		t.Fatalf("update: %v", err)
	}
	if _, err := e.DropSoft("ghost"); !errors.Is(err, tableobj.ErrUnknownTable) {
		t.Fatalf("drop soft: %v", err)
	}
	if _, err := e.Flush("ghost"); !errors.Is(err, tableobj.ErrUnknownTable) {
		t.Fatalf("flush: %v", err)
	}
	if _, err := e.Restore("ghost"); err == nil {
		t.Fatal("restore unknown table succeeded")
	}
}

func TestScanEarlyStop(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	var rows []colfile.Row
	for i := 0; i < 100; i++ {
		rows = append(rows, row(fmt.Sprintf("u%d", i), int64(i), "Beijing", 1))
	}
	e.Insert("t", rows)
	plan, _, _ := e.PlanScan("t", nil)
	n := 0
	_, _, err := e.Scan("t", plan, nil, func(colfile.Row) bool {
		n++
		return n < 10
	})
	if err != nil || n != 10 {
		t.Fatalf("early stop: n=%d %v", n, err)
	}
}

func TestDeleteNothingMatches(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{row("a", 1, "B", 1)})
	n, _, err := e.Delete("t", []RangeFilter{{Column: "start_time", Lo: iv(100), Hi: iv(200)}})
	if err != nil || n != 0 {
		t.Fatalf("empty delete: %d %v", n, err)
	}
	// Data intact.
	plan, _, _ := e.PlanScan("t", nil)
	var count int
	e.Scan("t", plan, nil, func(colfile.Row) bool { count++; return true })
	if count != 1 {
		t.Fatalf("rows after no-op delete: %d", count)
	}
}

func TestFileBasedPlanningWithUnflushedBaselineTable(t *testing.T) {
	// The file-based engine commits per insert, so planning sees data
	// immediately.
	e := newEngine(t, false)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{row("a", 1, "Beijing", 1), row("b", 2, "Shanghai", 1)})
	plan, cost, err := e.PlanScan("t", nil)
	if err != nil || cost <= 0 {
		t.Fatal(err)
	}
	if len(plan.Files) != 2 {
		t.Fatalf("baseline plan: %+v", plan)
	}
	// Partition names recovered from paths.
	seen := map[string]bool{}
	for _, f := range plan.Files {
		seen[f.Partition] = true
	}
	if !seen["province=Beijing"] || !seen["province=Shanghai"] {
		t.Fatalf("partitions: %v", seen)
	}
}

func TestPendingOnUnknownTableIsZero(t *testing.T) {
	e := newEngine(t, true)
	if e.Pending("nope") != 0 {
		t.Fatal("pending on unknown table")
	}
}

func TestFlushEmptyIsNoop(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	cost, err := e.Flush("t")
	if err != nil || cost != 0 {
		t.Fatalf("empty flush: %v %v", cost, err)
	}
}

func TestUpdateNoMatchesLeavesFilesAlone(t *testing.T) {
	e := newEngine(t, true)
	mkTable(t, e, "t")
	e.Insert("t", []colfile.Row{row("a", 1, "B", 1)})
	e.Flush("t")
	before := e.fs.Count()
	n, _, err := e.Update("t", []RangeFilter{{Column: "start_time", Lo: iv(50), Hi: iv(60)}},
		func(r colfile.Row) colfile.Row { return r })
	if err != nil || n != 0 {
		t.Fatalf("no-op update: %d %v", n, err)
	}
	// Commit/snapshot written but no data files rewritten.
	if e.fs.Count() > before+2 {
		t.Fatalf("no-op update rewrote data: %d -> %d files", before, e.fs.Count())
	}
}
