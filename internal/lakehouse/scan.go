package lakehouse

import (
	"errors"
	"strings"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/obs"
	"streamlake/internal/tableobj"
)

// scanMetrics is the lakehouse layer's obs instrument set; wired once
// by SetObs, nil-safe no-ops until then.
type scanMetrics struct {
	scans        *obs.Counter
	rowsScanned  *obs.Counter
	readBytes    *obs.Counter
	skippedBytes *obs.Counter
	plans        *obs.Counter
	prunedFiles  *obs.Counter
	zonePruned   *obs.Counter
	bloomPruned  *obs.Counter
	scanLat      *obs.Histogram
}

// SetObs registers the lakehouse engine's scan telemetry. Call at
// wiring time, before the engine serves queries.
func (e *Engine) SetObs(reg *obs.Registry) {
	e.mu.Lock()
	e.metrics = scanMetrics{
		scans:        reg.Counter("lakehouse_scans_total"),
		rowsScanned:  reg.Counter("lakehouse_rows_scanned_total"),
		readBytes:    reg.Counter("lakehouse_scan_read_bytes_total"),
		skippedBytes: reg.Counter("lakehouse_scan_skipped_bytes_total"),
		plans:        reg.Counter("lakehouse_plans_total"),
		prunedFiles:  reg.Counter("lakehouse_pruned_files_total"),
		zonePruned:   reg.Counter("lakehouse_zone_pruned_files_total"),
		bloomPruned:  reg.Counter("lakehouse_bloom_pruned_files_total"),
		scanLat:      reg.Histogram("lakehouse_scan_seconds"),
	}
	e.mu.Unlock()
}

// RangeFilter is a pushdown predicate on one column: lo <= col <= hi,
// with nil bounds unbounded. It is the storage-side predicate shape the
// engine understands for data skipping and pushdown.
type RangeFilter struct {
	Column string
	Lo, Hi *colfile.Value
}

// Plan is the result of query planning: the data files a scan must
// visit, plus accounting of the planning work — the quantities Figure 15
// measures.
type Plan struct {
	Files []tableobj.DataFile
	// MetadataBytes is how much metadata the compute engine had to load
	// to plan the query; the baseline loads the whole listing, the
	// accelerated path only the matched manifest entries (Figure 15-b's
	// memory pressure).
	MetadataBytes int64
	// SkippedFiles counts files pruned by statistics.
	SkippedFiles int
	// ZonePrunedFiles counts the SkippedFiles subset pruned only by zone
	// maps: the file-level range overlapped the predicate but no single
	// row group's did.
	ZonePrunedFiles int
	// BloomPrunedFiles counts the SkippedFiles subset pruned only by a
	// bloom filter on an equality predicate.
	BloomPrunedFiles int
	// TotalFiles is the table's current file count.
	TotalFiles int
}

const fileMetaBytes = 220 // approximate manifest entry footprint

// PlanScan resolves the files a filtered scan must read. With
// acceleration the current snapshot manifest comes from the catalog
// pointer + snapshot file + cached pending records (cost independent of
// partition count); without it the engine behaves like a file-based
// catalog: it lists the data directory and opens every file's footer.
func (e *Engine) PlanScan(name string, filters []RangeFilter) (Plan, time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return Plan{}, 0, err
	}
	var plan Plan
	var cost time.Duration
	if e.opts.Acceleration {
		plan, cost, err = e.planAccelerated(st, filters)
	} else {
		plan, cost, err = e.planFileBased(st, filters)
	}
	if err == nil {
		e.mu.Lock()
		m := e.metrics
		e.mu.Unlock()
		m.plans.Inc()
		m.prunedFiles.Add(int64(plan.SkippedFiles))
		m.zonePruned.Add(int64(plan.ZonePrunedFiles))
		m.bloomPruned.Add(int64(plan.BloomPrunedFiles))
	}
	return plan, cost, err
}

func (e *Engine) planAccelerated(st *tableState, filters []RangeFilter) (Plan, time.Duration, error) {
	snap, cost, err := e.currentSnapshot(st)
	if err != nil {
		return Plan{}, cost, err
	}
	e.mu.Lock()
	files := append(append([]tableobj.DataFile(nil), snap.Files...), st.pendingAdds...)
	removed := map[string]bool{}
	for _, f := range st.pendingRemoves {
		removed[f.Path] = true
	}
	e.mu.Unlock()
	plan := Plan{TotalFiles: 0}
	for _, f := range files {
		if removed[f.Path] {
			continue
		}
		plan.TotalFiles++
		plan.admit(st.tbl.Schema(), f, filters)
	}
	// Only the matched entries reach the compute engine.
	plan.MetadataBytes = int64(len(plan.Files)) * fileMetaBytes
	return plan, cost, nil
}

// currentSnapshot resolves the table's current snapshot manifest,
// serving the encoded snapshot file from the read cache when one is
// attached (the Figure 15 planning acceleration: repeated planning
// reads no manifest bytes from devices). The key embeds the snapshot
// id and snapshot files are immutable by id, so a cached manifest can
// never be stale in content — the pointer lookup itself always goes to
// the catalog.
func (e *Engine) currentSnapshot(st *tableState) (tableobj.Snapshot, time.Duration, error) {
	e.mu.Lock()
	c := e.rcache
	e.mu.Unlock()
	if c == nil {
		return st.tbl.Current()
	}
	name := st.tbl.Meta().Name
	ptr, cost, err := e.cat.SnapshotPointer(name)
	if err != nil {
		return tableobj.Snapshot{}, cost, err
	}
	key := manifestKey(name, ptr)
	if blob, ccost, ok := c.Get(key); ok {
		if snap, derr := tableobj.DecodeSnapshot(blob); derr == nil {
			return snap, cost + ccost, nil
		}
		c.Invalidate(key) // undecodable entry: drop it and refill below
	}
	blob, rc, err := e.fs.Read(tableobj.SnapshotPath(st.tbl.Meta().Path, ptr))
	if err != nil {
		return tableobj.Snapshot{}, cost + rc, err
	}
	snap, err := tableobj.DecodeSnapshot(blob)
	if err != nil {
		return tableobj.Snapshot{}, cost + rc, err
	}
	c.Put(key, blob)
	return snap, cost + rc, nil
}

func (e *Engine) planFileBased(st *tableState, filters []RangeFilter) (Plan, time.Duration, error) {
	// Baseline: list every file under /data, then read each file's
	// footer for statistics. Planning cost and memory both scale with
	// the file count.
	paths, cost := e.fs.List(st.tbl.Meta().Path + "/data/")
	plan := Plan{TotalFiles: len(paths)}
	schema := st.tbl.Schema()
	for _, p := range paths {
		blob, rc, err := e.fs.Read(p)
		if err != nil {
			return plan, cost, err
		}
		cost += rc
		r, err := colfile.Open(blob)
		if err != nil {
			return plan, cost, err
		}
		f := tableobj.DataFile{Path: p, Partition: partitionOf(p), Rows: r.NumRows(), Bytes: int64(len(blob))}
		// Reconstruct file-level stats from the row-group footers.
		for c := 0; c < schema.NumFields(); c++ {
			var lo, hi colfile.Value
			for g := 0; g < r.NumRowGroups(); g++ {
				gs := r.GroupStats(g, c)
				if g == 0 {
					lo, hi = gs.Min, gs.Max
					continue
				}
				if colfile.Compare(gs.Min, lo) < 0 {
					lo = gs.Min
				}
				if colfile.Compare(gs.Max, hi) > 0 {
					hi = gs.Max
				}
			}
			f.Min = append(f.Min, lo)
			f.Max = append(f.Max, hi)
		}
		plan.admit(schema, f, filters)
	}
	// The whole listing plus every footer passed through compute memory.
	plan.MetadataBytes = int64(len(paths)) * fileMetaBytes * 4
	return plan, cost, nil
}

func partitionOf(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) >= 2 {
		return parts[len(parts)-2]
	}
	return ""
}

// admit routes one file into the plan or the skip counters, attributing
// zone-map and bloom prunes separately from file-level range prunes.
func (p *Plan) admit(schema colfile.Schema, f tableobj.DataFile, filters []RangeFilter) {
	switch filePrune(schema, f, filters) {
	case pruneNone:
		p.Files = append(p.Files, f)
	case pruneRange:
		p.SkippedFiles++
	case pruneZone:
		p.SkippedFiles++
		p.ZonePrunedFiles++
	case pruneBloom:
		p.SkippedFiles++
		p.BloomPrunedFiles++
	}
}

type pruneReason int

const (
	pruneNone  pruneReason = iota
	pruneRange             // file-level min/max (or an empty file) excludes the predicate
	pruneZone              // file range overlaps, but no row group's range does
	pruneBloom             // ranges overlap, but the bloom filter rules out an equality probe
)

// filePrune decides whether the file's statistics exclude the filters,
// consulting (in escalating precision) the file-level value ranges, the
// per-row-group zone maps, and the per-column bloom filters for
// equality predicates. Files written without zone maps carry neither
// zones nor blooms and behave exactly as before.
func filePrune(schema colfile.Schema, f tableobj.DataFile, filters []RangeFilter) pruneReason {
	if f.Rows == 0 {
		return pruneRange
	}
	for _, flt := range filters {
		c := schema.FieldIndex(flt.Column)
		if c < 0 {
			continue
		}
		if !f.Overlaps(c, flt.Lo, flt.Hi) {
			return pruneRange
		}
		if len(f.Zones) > 0 && !zonesOverlap(f.Zones, c, flt.Lo, flt.Hi) {
			return pruneZone
		}
		if flt.Lo != nil && flt.Hi != nil && colfile.Compare(*flt.Lo, *flt.Hi) == 0 &&
			c < len(f.Blooms) && !f.Blooms[c].MayContain(*flt.Lo) {
			return pruneBloom
		}
	}
	return pruneNone
}

// zonesOverlap reports whether any row group's range for column c can
// intersect [lo, hi].
func zonesOverlap(zones []tableobj.ZoneMap, c int, lo, hi *colfile.Value) bool {
	for _, z := range zones {
		if c >= len(z.Min) {
			return true // no stats for the column: cannot skip
		}
		if lo != nil && colfile.Compare(z.Max[c], *lo) < 0 {
			continue
		}
		if hi != nil && colfile.Compare(z.Min[c], *hi) > 0 {
			continue
		}
		return true
	}
	return false
}

func fileMatches(schema colfile.Schema, f tableobj.DataFile, filters []RangeFilter) bool {
	return filePrune(schema, f, filters) == pruneNone
}

func rowMatches(schema colfile.Schema, row colfile.Row, filters []RangeFilter) bool {
	for _, flt := range filters {
		c := schema.FieldIndex(flt.Column)
		if c < 0 {
			continue
		}
		if flt.Lo != nil && colfile.Compare(row[c], *flt.Lo) < 0 {
			return false
		}
		if flt.Hi != nil && colfile.Compare(row[c], *flt.Hi) > 0 {
			return false
		}
	}
	return true
}

// Scan reads the planned files and streams matching rows to fn,
// skipping row groups whose statistics exclude the filters (data
// skipping within the file) and returning the modelled read latency
// plus the bytes actually read vs skipped. The row passed to fn is a
// reused buffer, valid only for the duration of the callback: retain a
// copy, not the row itself.
func (e *Engine) Scan(name string, plan Plan, filters []RangeFilter, fn func(colfile.Row) bool) (ScanStats, time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return ScanStats{}, 0, err
	}
	schema := st.tbl.Schema()
	var stats ScanStats
	var cost time.Duration
	e.mu.Lock()
	m := e.metrics
	e.mu.Unlock()
	defer func() {
		m.scans.Inc()
		m.rowsScanned.Add(stats.RowsScanned)
		m.readBytes.Add(stats.ReadBytes)
		m.skippedBytes.Add(stats.SkippedBytes)
		m.scanLat.Observe(cost)
	}()
	var row colfile.Row // reused across rows; fn must not retain it
	for _, f := range plan.Files {
		blob, rc, err := e.fs.Read(f.Path)
		if err != nil {
			return stats, cost, err
		}
		cost += rc
		r, err := colfile.Open(blob)
		if err != nil {
			return stats, cost, err
		}
		for g := 0; g < r.NumRowGroups(); g++ {
			if !groupMatches(schema, r, g, filters) {
				stats.SkippedBytes += r.GroupBytes(g)
				stats.SkippedGroups++
				continue
			}
			stats.ReadBytes += r.GroupBytes(g)
			cols, err := r.ReadGroup(g, nil)
			if err != nil {
				return stats, cost, err
			}
			if len(row) != len(cols) {
				row = make(colfile.Row, len(cols))
			}
			for i := 0; i < r.GroupRows(g); i++ {
				for c := range cols {
					row[c] = cols[c][i]
				}
				stats.RowsScanned++
				if rowMatches(schema, row, filters) {
					stats.RowsMatched++
					if !fn(row) {
						return stats, cost, nil
					}
				}
			}
		}
	}
	return stats, cost, nil
}

func groupMatches(schema colfile.Schema, r *colfile.Reader, g int, filters []RangeFilter) bool {
	for _, flt := range filters {
		c := schema.FieldIndex(flt.Column)
		if c < 0 {
			continue
		}
		if !r.GroupStats(g, c).Overlaps(flt.Lo, flt.Hi) {
			return false
		}
	}
	return true
}

// ScanStats accounts a scan's work.
type ScanStats struct {
	RowsScanned   int64
	RowsMatched   int64
	ReadBytes     int64
	SkippedBytes  int64
	SkippedGroups int
}

// AggregateResult is one group of a pushed-down aggregation.
type AggregateResult struct {
	Group string
	Count int64
	Sum   float64
}

// AggregatePushdown runs COUNT (and SUM of sumColumn, when non-empty)
// grouped by groupColumn entirely at the storage side — the computation
// pushdown that keeps the Figure 13 DAU query from shipping raw rows to
// the compute engine.
func (e *Engine) AggregatePushdown(name string, filters []RangeFilter, groupColumn, sumColumn string) ([]AggregateResult, time.Duration, error) {
	st, err := e.state(name)
	if err != nil {
		return nil, 0, err
	}
	plan, cost, err := e.PlanScan(name, filters)
	if err != nil {
		return nil, cost, err
	}
	schema := st.tbl.Schema()
	gi := schema.FieldIndex(groupColumn)
	if groupColumn != "" && gi < 0 {
		return nil, cost, errors.New("lakehouse: unknown group column " + groupColumn)
	}
	si := schema.FieldIndex(sumColumn)
	if sumColumn != "" && si < 0 {
		return nil, cost, errors.New("lakehouse: unknown sum column " + sumColumn)
	}
	groups := map[string]*AggregateResult{}
	_, scanCost, err := e.Scan(name, plan, filters, func(row colfile.Row) bool {
		key := ""
		if gi >= 0 {
			key = row[gi].String()
		}
		g := groups[key]
		if g == nil {
			g = &AggregateResult{Group: key}
			groups[key] = g
		}
		g.Count++
		if si >= 0 {
			switch row[si].Type {
			case colfile.Int64:
				g.Sum += float64(row[si].Int)
			case colfile.Float64:
				g.Sum += row[si].Float
			}
		}
		return true
	})
	cost += scanCost
	if err != nil {
		return nil, cost, err
	}
	out := make([]AggregateResult, 0, len(groups))
	for _, g := range groups {
		out = append(out, *g)
	}
	sortAggregates(out)
	return out, cost, nil
}

func sortAggregates(rs []AggregateResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Group < rs[j-1].Group; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
