package cluster

import (
	"strconv"
	"testing"
)

func TestRingSpread(t *testing.T) {
	r := newRing(5)
	all := func(int) bool { return true }
	counts := make(map[int]int)
	for k := 0; k < 1000; k++ {
		pref := r.place("key-"+strconv.Itoa(k), 3, all)
		if len(pref) != 3 {
			t.Fatalf("want 3 nodes, got %v", pref)
		}
		seen := make(map[int]bool)
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("duplicate node in %v", pref)
			}
			seen[n] = true
		}
		counts[pref[0]]++
	}
	// Primary placements should spread: no node should own more than
	// half or fewer than 5% of 1000 keys at 64 vnodes.
	for n, c := range counts {
		if c > 500 || c < 50 {
			t.Fatalf("node %d owns %d/1000 primaries — unbalanced", n, c)
		}
	}
}

func TestRingStabilityOnDeath(t *testing.T) {
	r := newRing(5)
	all := func(int) bool { return true }
	dead := 2
	without := func(n int) bool { return n != dead }
	moved := 0
	for k := 0; k < 1000; k++ {
		key := "key-" + strconv.Itoa(k)
		before := r.place(key, 3, all)
		after := r.place(key, 3, without)
		if len(after) != 3 {
			t.Fatalf("want 3 survivors, got %v", after)
		}
		for _, n := range after {
			if n == dead {
				t.Fatalf("dead node placed: %v", after)
			}
		}
		// Keys that never touched the dead node must not move at all —
		// the consistent-hashing stability property.
		touched := false
		for _, n := range before {
			if n == dead {
				touched = true
			}
		}
		if !touched {
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("key %s moved without touching dead node: %v -> %v", key, before, after)
				}
			}
		} else {
			moved++
		}
	}
	// Only keys whose preference touched the dead node may move; the
	// exact-equality check above is the real stability property. Vnode
	// arc imbalance makes the touched fraction vary around 3/5, but a
	// meaningful share must always survive untouched.
	if moved > 950 {
		t.Fatalf("%d/1000 keys moved — ring is not stable", moved)
	}
}

func TestRingFewerAdmissibleThanWanted(t *testing.T) {
	r := newRing(3)
	only := func(n int) bool { return n == 1 }
	pref := r.place("k", 3, only)
	if len(pref) != 1 || pref[0] != 1 {
		t.Fatalf("want [1], got %v", pref)
	}
	if got := r.place("k", 0, only); got != nil {
		t.Fatalf("want nil for want=0, got %v", got)
	}
}
