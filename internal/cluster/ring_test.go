package cluster

import (
	"strconv"
	"testing"
)

func TestRingSpread(t *testing.T) {
	r := newRing(5)
	all := func(int) bool { return true }
	counts := make(map[int]int)
	for k := 0; k < 1000; k++ {
		pref := r.place("key-"+strconv.Itoa(k), 3, all)
		if len(pref) != 3 {
			t.Fatalf("want 3 nodes, got %v", pref)
		}
		seen := make(map[int]bool)
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("duplicate node in %v", pref)
			}
			seen[n] = true
		}
		counts[pref[0]]++
	}
	// Primary placements should spread: no node should own more than
	// half or fewer than 5% of 1000 keys at 64 vnodes.
	for n, c := range counts {
		if c > 500 || c < 50 {
			t.Fatalf("node %d owns %d/1000 primaries — unbalanced", n, c)
		}
	}
}

func TestRingStabilityOnDeath(t *testing.T) {
	r := newRing(5)
	all := func(int) bool { return true }
	dead := 2
	without := func(n int) bool { return n != dead }
	moved := 0
	for k := 0; k < 1000; k++ {
		key := "key-" + strconv.Itoa(k)
		before := r.place(key, 3, all)
		after := r.place(key, 3, without)
		if len(after) != 3 {
			t.Fatalf("want 3 survivors, got %v", after)
		}
		for _, n := range after {
			if n == dead {
				t.Fatalf("dead node placed: %v", after)
			}
		}
		// Keys that never touched the dead node must not move at all —
		// the consistent-hashing stability property.
		touched := false
		for _, n := range before {
			if n == dead {
				touched = true
			}
		}
		if !touched {
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("key %s moved without touching dead node: %v -> %v", key, before, after)
				}
			}
		} else {
			moved++
		}
	}
	// Only keys whose preference touched the dead node may move; the
	// exact-equality check above is the real stability property. Vnode
	// arc imbalance makes the touched fraction vary around 3/5, but a
	// meaningful share must always survive untouched.
	if moved > 950 {
		t.Fatalf("%d/1000 keys moved — ring is not stable", moved)
	}
}

// TestRingGrowMovementBound: the property the join-time movement bound
// rests on. For every cluster size N in 2..9, growing the ring by one
// node may re-home at most (1/(N+1))·(1+slack) of 10k sampled keys'
// primary placements, and every key that does move must move TO the new
// node — consistent hashing only carves arcs out for the newcomer, it
// never shuffles keys between survivors.
func TestRingGrowMovementBound(t *testing.T) {
	const keys = 10_000
	const slack = 0.5 // mirrors Config.MoveSlack's default
	all := func(int) bool { return true }
	for n := 2; n <= 9; n++ {
		before := newRing(n)
		after := newRing(n)
		after.addNode(n)
		moved := 0
		for k := 0; k < keys; k++ {
			key := "sample-" + strconv.Itoa(k) + "-key"
			b := before.place(key, 1, all)
			a := after.place(key, 1, all)
			if b[0] != a[0] {
				if a[0] != n {
					t.Fatalf("N=%d key %q moved %d -> %d, not to the new node", n, key, b[0], a[0])
				}
				moved++
			}
		}
		bound := int(float64(keys) / float64(n+1) * (1 + slack))
		if moved > bound {
			t.Fatalf("N=%d grow moved %d/%d primaries, bound %d", n, moved, keys, bound)
		}
		if moved == 0 {
			t.Fatalf("N=%d grow moved nothing — the new node owns no arcs", n)
		}
	}
}

// TestRingGrowEqualsBirth: a ring grown one node at a time has exactly
// the point set of a ring born at the final size, so placement after a
// join is indistinguishable from a cluster that always had N+1 nodes —
// the determinism the replayable drills depend on.
func TestRingGrowEqualsBirth(t *testing.T) {
	grown := newRing(2)
	for n := 2; n < 9; n++ {
		grown.addNode(n)
	}
	born := newRing(9)
	all := func(int) bool { return true }
	for k := 0; k < 1000; k++ {
		key := "eq-" + strconv.Itoa(k)
		g := grown.place(key, 3, all)
		b := born.place(key, 3, all)
		for i := range b {
			if g[i] != b[i] {
				t.Fatalf("key %q places %v grown vs %v born", key, g, b)
			}
		}
	}
}

// TestRingShrinkMovesOnlyDepartedArcs: removing a node re-homes only
// the keys whose preference touched it; every other key's full
// preference list is untouched, byte for byte.
func TestRingShrinkMovesOnlyDepartedArcs(t *testing.T) {
	const keys = 10_000
	all := func(int) bool { return true }
	for n := 3; n <= 9; n++ {
		departed := n / 2
		before := newRing(n)
		after := newRing(n)
		after.removeNode(departed)
		moved := 0
		for k := 0; k < keys; k++ {
			key := "shrink-" + strconv.Itoa(k) + "-key"
			b := before.place(key, 3, all)
			a := after.place(key, 3, all)
			touched := false
			for _, node := range b {
				if node == departed {
					touched = true
				}
			}
			if !touched {
				for i := range b {
					if a[i] != b[i] {
						t.Fatalf("N=%d key %q moved %v -> %v without touching departed node %d",
							n, key, b, a, departed)
					}
				}
				continue
			}
			moved++
			for _, node := range a {
				if node == departed {
					t.Fatalf("N=%d departed node still placed for %q: %v", n, key, a)
				}
			}
		}
		// Preference width 3 touches the departed node for roughly 3/N of
		// keys; vnode variance stays well inside a 2x envelope.
		if ceiling := int(float64(keys) * 6.0 / float64(n)); moved > ceiling {
			t.Fatalf("N=%d shrink disturbed %d/%d keys, ceiling %d", n, moved, keys, ceiling)
		}
	}
}

func TestRingFewerAdmissibleThanWanted(t *testing.T) {
	r := newRing(3)
	only := func(n int) bool { return n == 1 }
	pref := r.place("k", 3, only)
	if len(pref) != 1 || pref[0] != 1 {
		t.Fatalf("want [1], got %v", pref)
	}
	if got := r.place("k", 0, only); got != nil {
		t.Fatalf("want nil for want=0, got %v", got)
	}
}
