package cluster

import (
	"time"

	"streamlake/internal/repair"
)

// RebalanceReport summarizes one re-replication run.
type RebalanceReport struct {
	Rounds         int
	RepairedBytes  int64
	Elapsed        time.Duration // virtual time the run consumed
	RemainingLogs  int           // degraded logs still pending at exit
	RemainingStale int64         // stale bytes still pending at exit
	Complete       bool
}

// RunRebalance drives the attached repair services until every log is
// fully redundant again or the virtual-time budget runs out — the
// bounded re-replication the failover drill measures. Each repair pass
// charges its own reconstruction I/O and backoff to the shared clock;
// the rebalancer meters that consumption against the budget and ticks
// the cluster plane between passes so detection and elections keep
// pace with the time repair burns.
func (c *Cluster) RunRebalance(budget time.Duration) RebalanceReport {
	start := c.clock.Now()
	deadline := start + budget
	c.mu.Lock()
	repairs := append([]*repair.Service(nil), c.repairs...)
	pools := append([]attachedPool(nil), c.pools...)
	c.mu.Unlock()
	var rep RebalanceReport
	pending := func() (int, int64) {
		logs, bytes := 0, int64(0)
		for _, mgr := range distinctManagers(pools) {
			logs += mgr.DegradedCount()
			bytes += mgr.StaleBytes()
		}
		return logs, bytes
	}
	for {
		logs, _ := pending()
		if logs == 0 {
			rep.Complete = true
			break
		}
		if len(repairs) == 0 || c.clock.Now() >= deadline || rep.Rounds >= maxRebalanceRounds {
			break
		}
		for _, r := range repairs {
			pass := r.RunOnce()
			rep.RepairedBytes += pass.RepairedBytes
		}
		rep.Rounds++
		c.Tick()
	}
	rep.RemainingLogs, rep.RemainingStale = pending()
	rep.Elapsed = c.clock.Now() - start
	return rep
}

// maxRebalanceRounds caps pathological no-progress loops (every source
// unreachable): the budget is virtual time, which a failing pass may
// barely consume.
const maxRebalanceRounds = 256
