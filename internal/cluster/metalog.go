package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The replicated metadata log is a deliberately small Raft: leader
// election with the log-up-to-date restriction, term-fenced appends,
// majority commit counted over the full membership (dead nodes cannot
// ack, which is exactly what makes a minority partition unable to
// commit), and full-log reconciliation instead of per-follower
// nextIndex bookkeeping — the logs involved are metadata-sized, so the
// longest-common-prefix scan is cheap and keeps the protocol auditable.
// Every message rides the NetPlane, so drops, delays, and partitions
// shape elections and commits the same way they shape data traffic.

// Role is a node's position in the metadata log's consensus.
type Role int

// The consensus roles.
const (
	Follower Role = iota
	Candidate
	Leader
)

// String names the role for status displays.
func (r Role) String() string {
	switch r {
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return "follower"
	}
}

// Entry is one record of the replicated metadata log.
type Entry struct {
	Term int64
	Kind string // "produce", "member", "meta"
	Data string
}

// Errors surfaced by metadata-log operations.
var (
	// ErrNoLeader means no live node currently holds leadership; retry
	// after the failure detector and election timers make progress.
	ErrNoLeader = errors.New("cluster: no leader")
	// ErrNoQuorum means the leader could not replicate to a majority —
	// the caller's write is durable locally but NOT committed and must
	// not be acknowledged.
	ErrNoQuorum = errors.New("cluster: no quorum")
)

// Modelled message sizes on the metadata plane.
const (
	heartbeatBytes = 64
	voteBytes      = 32
	ackBytes       = 32
	entryOverhead  = 128
)

// votersLocked is the quorum denominator: full members only. Learners
// replicate but do not count; removed tombstones are gone. With no
// runtime joins or removals this equals len(c.nodes) — the birth
// behavior, bit for bit.
func (c *Cluster) votersLocked() int {
	n := 0
	for _, m := range c.nodes {
		if !m.learner && !m.removed {
			n++
		}
	}
	return n
}

func lastTerm(n *nodeState) int64 {
	if len(n.log) == 0 {
		return 0
	}
	return n.log[len(n.log)-1].Term
}

// currentLeaderLocked returns the highest-term live leader, or nil. With
// a healed partition two leaders can coexist briefly; preferring the
// higher term routes clients to the one that can still commit.
func (c *Cluster) currentLeaderLocked() *nodeState {
	var lead *nodeState
	for _, n := range c.nodes {
		if n.up && n.role == Leader && (lead == nil || n.term > lead.term) {
			lead = n
		}
	}
	return lead
}

// reconcileLocked forces peer's log to match lead's: keep the longest
// prefix where terms agree, truncate the conflict tail, append the
// leader's remainder. Term-fencing happens at the call sites (a peer
// with a higher term refuses the append and the stale leader steps
// down).
func (c *Cluster) reconcileLocked(lead, peer *nodeState) {
	n := len(peer.log)
	if len(lead.log) < n {
		n = len(lead.log)
	}
	k := 0
	for k < n && peer.log[k].Term == lead.log[k].Term {
		k++
	}
	if k < len(peer.log) {
		peer.log = peer.log[:k:k]
	}
	peer.log = append(peer.log, lead.log[k:]...)
	if lead.commit < len(peer.log) {
		peer.commit = lead.commit
	} else {
		peer.commit = len(peer.log)
	}
}

// runElectionLocked has node i campaign at boundary t. Vote requests and
// grants each ride the NetPlane, so a partitioned candidate collects no
// votes. Grants follow Raft's election restriction: a voter refuses a
// candidate whose log is less up to date than its own, which is what
// guarantees a new leader already holds every committed entry.
func (c *Cluster) runElectionLocked(i *nodeState, t time.Duration) {
	i.term++
	i.role = Candidate
	i.votedFor = i.id
	i.lastElection = t
	votes := 1
	for _, j := range c.nodes {
		if j == i || !j.up || j.learner || j.removed {
			continue
		}
		if _, err := c.net.Deliver(nodeEndpoint(i.id), nodeEndpoint(j.id), voteBytes); err != nil {
			continue
		}
		if i.term > j.term {
			j.term = i.term
			j.votedFor = -1
			j.role = Follower
		}
		if j.term > i.term {
			// The cluster moved on without this candidate. Entering the
			// newer term means its self-vote is void there: clear votedFor
			// so it can grant the newer term's candidate.
			i.term = j.term
			i.votedFor = -1
			i.role = Follower
			return
		}
		upToDate := lastTerm(i) > lastTerm(j) ||
			(lastTerm(i) == lastTerm(j) && len(i.log) >= len(j.log))
		if j.votedFor != -1 && j.votedFor != i.id || !upToDate {
			continue
		}
		// The vote is recorded at the voter even if the grant message is
		// lost on the way back — votedFor is the voter's promise.
		j.votedFor = i.id
		if _, err := c.net.Deliver(nodeEndpoint(j.id), nodeEndpoint(i.id), voteBytes); err != nil {
			continue
		}
		votes++
	}
	if votes*2 <= c.votersLocked() {
		return // stay candidate; retry after the next timeout
	}
	i.role = Leader
	i.lastLeaderBeat = t
	c.stats.Elections++
	c.termWins[i.term]++
	// Assert leadership immediately: beat and reconcile every reachable
	// peer so due election timers elsewhere stand down this boundary.
	for _, j := range c.nodes {
		if j == i || !j.up {
			continue
		}
		if _, err := c.net.Deliver(nodeEndpoint(i.id), nodeEndpoint(j.id), heartbeatBytes); err != nil {
			continue
		}
		if i.term >= j.term {
			if i.term > j.term {
				// Term increase voids any vote cast in the older term; a
				// same-term vote (for this winner or a loser) stands.
				j.votedFor = -1
			}
			j.term = i.term
			j.role = Follower
			j.lastLeaderBeat = t
			c.reconcileLocked(i, j)
		}
	}
}

// proposeLocked appends one entry at the current leader and replicates
// it synchronously. Commit requires acks from a majority of the FULL
// membership — dead and partitioned nodes simply cannot ack, so a
// minority side never commits (and therefore never acknowledges a
// producer). The returned cost is the slowest replication round trip,
// which the caller charges to the requesting operation.
func (c *Cluster) proposeLocked(kind, data string, effects *[]func()) (time.Duration, error) {
	lead := c.currentLeaderLocked()
	if lead == nil {
		c.stats.CommitFails++
		return 0, ErrNoLeader
	}
	lead.log = append(lead.log, Entry{Term: lead.term, Kind: kind, Data: data})
	size := int64(entryOverhead + len(data))
	acks := 1
	var cost time.Duration
	for _, j := range c.nodes {
		if j == lead || !j.up {
			continue
		}
		d1, err := c.net.Deliver(nodeEndpoint(lead.id), nodeEndpoint(j.id), size)
		if err != nil {
			continue
		}
		if j.term > lead.term {
			// Term fence: the peer has seen a newer leader. Step down
			// (clearing votedFor — the adopted term is one this node never
			// voted in); the conflicting tail (including this entry) will
			// be truncated by the newer leader's reconcile.
			lead.term = j.term
			lead.votedFor = -1
			lead.role = Follower
			c.stats.CommitFails++
			return cost, ErrNoQuorum
		}
		if lead.term > j.term {
			// Same rule on the follower side: adopting a higher term voids
			// any vote the follower cast in its old term.
			j.term = lead.term
			j.votedFor = -1
		}
		c.reconcileLocked(lead, j)
		if j.learner {
			// Learners replicate but never count toward quorum: a
			// catching-up node must not swing commit decisions.
			continue
		}
		d2, err := c.net.Deliver(nodeEndpoint(j.id), nodeEndpoint(lead.id), ackBytes)
		if err != nil {
			continue
		}
		if rtt := d1 + d2; rtt > cost {
			cost = rtt
		}
		acks++
	}
	if acks*2 <= c.votersLocked() {
		c.stats.CommitFails++
		return cost, ErrNoQuorum
	}
	lead.commit = len(lead.log)
	c.stats.Commits++
	c.advanceApplyLocked(lead, effects)
	return cost, nil
}

// pendingLocked reports whether the leader's log already carries an
// identical entry past the applied index — the guard that keeps a
// quorum-less leader from appending the same membership proposal every
// heartbeat boundary.
func (c *Cluster) pendingLocked(lead *nodeState, kind, data string) bool {
	from := c.applied
	if from > len(lead.log) {
		from = len(lead.log)
	}
	for _, e := range lead.log[from:] {
		if e.Kind == kind && e.Data == data {
			return true
		}
	}
	return false
}

// advanceApplyLocked applies newly committed entries, in order, to the
// cluster state machine. Side effects that must run without c.mu held
// (stale-marking in the plog layer, membership callbacks into the
// stream service) are collected into effects for the caller to run
// after unlocking.
func (c *Cluster) advanceApplyLocked(lead *nodeState, effects *[]func()) {
	for idx := c.applied; idx < lead.commit; idx++ {
		c.applyLocked(lead.log[idx], effects)
	}
	if lead.commit > c.applied {
		c.applied = lead.commit
	}
}

func (c *Cluster) applyLocked(e Entry, effects *[]func()) {
	switch e.Kind {
	case "produce":
		// Idempotent by construction: the key includes the stream's base
		// offset, so a retried batch (same base via the dedup window)
		// folds into one record no matter how many proposals committed.
		c.produced[e.Data] = true
	case "member":
		parts := strings.SplitN(e.Data, sep, 2)
		if len(parts) != 2 {
			return
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 0 || n >= len(c.nodes) {
			return
		}
		switch parts[1] {
		case "dead":
			if !c.alive[n] {
				return
			}
			c.alive[n] = false
			*effects = append(*effects, func() { c.nodeDeclaredDead(n) })
		case "alive":
			if c.alive[n] {
				return
			}
			c.alive[n] = true
			serving := !c.draining[n]
			*effects = append(*effects, func() { c.nodeDeclaredAlive(n, serving) })
		case "drain":
			if c.draining[n] {
				return
			}
			c.draining[n] = true
			*effects = append(*effects, func() { c.membershipChanged(n, false) })
		case "undrain":
			if !c.draining[n] {
				return
			}
			c.draining[n] = false
			serving := c.alive[n]
			*effects = append(*effects, func() { c.membershipChanged(n, serving) })
		case "join":
			// Promote the learner to voter in this single committed
			// config entry: it enters the ring here, and the arc
			// migration (bounded by MoveSlack) runs as a side effect.
			if !c.joining[n] {
				return
			}
			c.joining[n] = false
			c.nodes[n].learner = false
			c.ringT.addNode(n)
			c.stats.Joins++
			*effects = append(*effects, func() { c.nodeJoined(n) })
		case "leave":
			// First leg of a removal: the node stops taking placements
			// (drain semantics) and its slices relocate off as a side
			// effect. It keeps voting until the tombstone commits.
			if c.leaving[n] || c.removed[n] {
				return
			}
			c.leaving[n] = true
			c.draining[n] = true
			*effects = append(*effects, func() { c.nodeLeaving(n) })
		case "remove":
			// Tombstone: the node leaves the ring, the voter set, and
			// the heartbeat schedule, permanently. IDs are never reused.
			if c.removed[n] {
				return
			}
			c.removed[n] = true
			c.leaving[n] = false
			c.alive[n] = false
			c.nodes[n].removed = true
			c.nodes[n].up = false
			if c.nodes[n].role == Leader {
				c.nodes[n].role = Follower
			}
			c.ringT.removeNode(n)
			c.stats.Removes++
			*effects = append(*effects, func() { c.nodeRemoved(n) })
		}
	case "meta":
		if key, ok := strings.CutPrefix(e.Data, metaTombstone); ok {
			delete(c.meta, key)
		} else {
			c.meta[e.Data] = true
		}
	}
}

const sep = "\x1f"

// metaTombstone prefixes a replicated meta record that clears a
// previously committed key — deletions travel through the same log as
// creations, so a delete-then-recreate replicates both legs and a
// minority partition can do neither.
const metaTombstone = "del" + sep

func produceKey(topic string, stream int, base int64, count int) string {
	return topic + sep + strconv.Itoa(stream) + sep +
		strconv.FormatInt(base, 10) + sep + strconv.Itoa(count)
}

// CommitProduce records an acknowledged produce batch in the replicated
// metadata log — the commit gate the stream service calls between the
// durable append and the client ack. An already-committed key (a retry
// whose previous attempt committed but whose ack was lost) returns
// immediately: the dedup window already re-served the original base, and
// re-proposing would only bloat the log. On ErrNoLeader/ErrNoQuorum the
// producer must NOT ack; its retry re-enters here after the appended
// batch deduplicates.
func (c *Cluster) CommitProduce(topic string, stream int, base int64, count int) (time.Duration, error) {
	key := produceKey(topic, stream, base, count)
	var effects []func()
	c.mu.Lock()
	if c.produced[key] {
		c.mu.Unlock()
		return 0, nil
	}
	cost, err := c.proposeLocked("produce", key, &effects)
	c.mu.Unlock()
	c.runEffects(effects)
	return cost, err
}

// ProduceCommitted reports whether an acked produce batch made it into
// the applied metadata log — the chaos harness's coverage checker: every
// acknowledged write must satisfy this after the drill settles.
func (c *Cluster) ProduceCommitted(topic string, stream int, base int64, count int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.produced[produceKey(topic, stream, base, count)]
}

// ProposeMeta replicates one opaque metadata record (topic and table
// definitions) through the log.
func (c *Cluster) ProposeMeta(data string) (time.Duration, error) {
	var effects []func()
	c.mu.Lock()
	if c.meta[data] {
		c.mu.Unlock()
		return 0, nil
	}
	cost, err := c.proposeLocked("meta", data, &effects)
	c.mu.Unlock()
	c.runEffects(effects)
	return cost, err
}

// ProposeMetaDelete replicates a tombstone clearing a previously
// committed metadata record (topic deletion, table drop). A key that was
// never committed — or whose tombstone already applied — returns
// immediately, keeping the call idempotent without bloating the log.
func (c *Cluster) ProposeMetaDelete(data string) (time.Duration, error) {
	var effects []func()
	c.mu.Lock()
	if !c.meta[data] {
		c.mu.Unlock()
		return 0, nil
	}
	cost, err := c.proposeLocked("meta", metaTombstone+data, &effects)
	c.mu.Unlock()
	c.runEffects(effects)
	return cost, err
}

// MetaCommitted reports whether a metadata record is applied.
func (c *Cluster) MetaCommitted(data string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.meta[data]
}

// CommittedLog snapshots one node's committed log prefix — the chaos
// harness compares these across nodes to prove replicated-state
// agreement.
func (c *Cluster) CommittedLog(node int) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= len(c.nodes) {
		return nil
	}
	n := c.nodes[node]
	return append([]Entry(nil), n.log[:n.commit]...)
}

// LeaderCountByTerm reports how many election wins each term recorded —
// the at-most-one-leader-per-term invariant's evidence.
func (c *Cluster) LeaderCountByTerm() map[int64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int64]int, len(c.termWins))
	for t, n := range c.termWins {
		out[t] = n
	}
	return out
}

func nodeEndpoint(id int) string { return fmt.Sprintf("node/%d", id) }
