package cluster

import (
	"errors"
	"strconv"
	"testing"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

// hasMemberEntry reports whether node n's committed log carries the
// given membership entry — the only legitimate channel a join or
// removal may arrive through.
func hasMemberEntry(c *Cluster, n int, data string) bool {
	for _, e := range c.CommittedLog(n) {
		if e.Kind == "member" && e.Data == data {
			return true
		}
	}
	return false
}

// TestProposeJoinCommitsThroughLog: a join lands as a committed log
// entry on every member — including the joiner, which only ever hears
// about itself through catch-up and replication — and the view grows by
// exactly one voter.
func TestProposeJoinCommitsThroughLog(t *testing.T) {
	c, clock, _ := newTestCluster(t, 3, 42)
	if err := c.ProposeJoin(3); err != nil {
		t.Fatalf("join: %v", err)
	}
	v := c.CurrentView()
	if v.Nodes != 4 || !v.Alive[3] || v.Joining[3] {
		t.Fatalf("join committed but view disagrees: %+v", v)
	}
	if got := c.Voters(); got != 4 {
		t.Fatalf("voters after join: %d, want 4", got)
	}
	entry := "3" + sep + "join"
	for n := 0; n < 4; n++ {
		if !stepUntil(c, clock, 100, func() bool { return hasMemberEntry(c, n, entry) }) {
			t.Fatalf("node %d's committed log is missing the join entry", n)
		}
	}
	if st := c.Stats(); st.Joins != 1 {
		t.Fatalf("stats count %d joins, want 1", st.Joins)
	}
}

// TestProposeJoinValidation: dense IDs only, and an id that is already a
// member conflicts rather than double-joining.
func TestProposeJoinValidation(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 42)
	if err := c.ProposeJoin(1); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("joining an existing id: %v, want ErrNodeExists", err)
	}
	if err := c.ProposeJoin(7); err == nil {
		t.Fatal("out-of-order id joined")
	}
	v := c.CurrentView()
	if v.Nodes != 3 {
		t.Fatalf("rejected joins grew the cluster: %+v", v)
	}
}

// TestProposeJoinNeedsQuorum: a leader cut off from every follower can
// admit a learner but never commit the promotion — the join fails, and
// no committed state changes.
func TestProposeJoinNeedsQuorum(t *testing.T) {
	c, clock, net := newTestCluster(t, 3, 42)
	lead := c.Leader()
	others := []int{}
	for n := 0; n < 3; n++ {
		if n != lead {
			others = append(others, n)
		}
	}
	partitionNodes(net, []int{lead}, others)
	if err := c.ProposeJoin(3); err == nil {
		t.Fatal("join committed without a quorum")
	}
	// The learner may be admitted (it is reachable from the leader), but
	// the promotion must not commit: the node stays in joining state and
	// the voter set is unchanged.
	if v := c.CurrentView(); v.Nodes > 3 && !v.Joining[3] {
		t.Fatalf("join promoted without a quorum: %+v", v)
	}
	if got := c.Voters(); got != 3 {
		t.Fatalf("quorum-less join changed the voter set: %d", got)
	}
	// Heal; whether the parked entry commits through reconciliation or a
	// retry lands it, the cluster must converge on exactly one node 3.
	for _, o := range others {
		net.Heal(nodeEndpoint(lead), nodeEndpoint(o))
		net.Heal(nodeEndpoint(o), nodeEndpoint(lead))
	}
	joined := stepUntil(c, clock, 200, func() bool {
		err := c.ProposeJoin(3)
		if err != nil && !errors.Is(err, ErrNodeExists) {
			return false
		}
		v := c.CurrentView()
		return v.Nodes == 4 && !v.Joining[3]
	})
	if !joined {
		t.Fatal("join never committed after the heal")
	}
}

// TestProposeRemoveDrainsThenTombstones: removal is drain → evacuate →
// committed tombstone. The removed node leaves the voter set, placement
// refuses it, and both membership entries are in the replicated log.
func TestProposeRemoveDrainsThenTombstones(t *testing.T) {
	c, clock, _ := newTestCluster(t, 5, 42)
	victim := -1
	for n := 0; n < 5; n++ {
		if n != c.Leader() {
			victim = n
			break
		}
	}
	if err := c.ProposeRemove(victim); err != nil {
		t.Fatalf("remove: %v", err)
	}
	v := c.CurrentView()
	if !v.Removed[victim] || v.Alive[victim] {
		t.Fatalf("removal committed but view disagrees: %+v", v)
	}
	if got := c.Voters(); got != 4 {
		t.Fatalf("voters after removal: %d, want 4", got)
	}
	c.mu.Lock()
	ok := c.placeOKLocked(victim)
	c.mu.Unlock()
	if ok {
		t.Fatal("placement still admits the removed node")
	}
	for _, kind := range []string{"leave", "remove"} {
		entry := strconv.Itoa(victim) + sep + kind
		if !stepUntil(c, clock, 100, func() bool { return hasMemberEntry(c, c.Leader(), entry) }) {
			t.Fatalf("leader's committed log is missing the %s entry", kind)
		}
	}
	if st := c.Stats(); st.Removes != 1 {
		t.Fatalf("stats count %d removes, want 1", st.Removes)
	}
	// Idempotent: a second remove of a tombstoned id is a no-op, not a
	// second drain — the stats don't double-count.
	if err := c.ProposeRemove(victim); err != nil {
		t.Fatalf("re-removing a tombstoned node: %v", err)
	}
	if st := c.Stats(); st.Removes != 1 {
		t.Fatalf("double-remove double-counted: %d removes", st.Removes)
	}
}

// TestProposeRemoveGuards: the leader and the voter floor are
// protected, and both refusals leave no partial drain behind.
func TestProposeRemoveGuards(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 42)
	lead := c.Leader()
	if err := c.ProposeRemove(lead); !errors.Is(err, ErrRemoveLeader) {
		t.Fatalf("removing the leader: %v, want ErrRemoveLeader", err)
	}
	follower := (lead + 1) % 3
	if err := c.ProposeRemove(follower); !errors.Is(err, ErrTooFewVoters) {
		t.Fatalf("removing below the floor: %v, want ErrTooFewVoters", err)
	}
	v := c.CurrentView()
	for n := 0; n < 3; n++ {
		if v.Draining[n] || v.Leaving[n] || v.Removed[n] {
			t.Fatalf("refused removal left node %d half-drained: %+v", n, v)
		}
	}
}

// TestJoinedNodeIsAFullVoter: after a join the grown cluster survives
// losing its old leader — four voters tolerate one death, and the
// joined node is eligible to carry elections like any founder.
func TestJoinedNodeIsAFullVoter(t *testing.T) {
	c, clock, _ := newTestCluster(t, 3, 42)
	if err := c.ProposeJoin(3); err != nil {
		t.Fatalf("join: %v", err)
	}
	old := c.Leader()
	if err := c.KillNode(old); err != nil {
		t.Fatalf("kill: %v", err)
	}
	elected := stepUntil(c, clock, 400, func() bool {
		l := c.Leader()
		return l >= 0 && l != old
	})
	if !elected {
		t.Fatal("grown cluster never re-elected after losing its leader")
	}
	for term, wins := range c.LeaderCountByTerm() {
		if wins > 1 {
			t.Fatalf("term %d elected %d leaders", term, wins)
		}
	}
}

// TestPostJoinDiskAttribution: the regression the view-versioned
// disk→node table exists for. A joined node's disks sit past the birth
// range, where the old i%N rule would alias them onto founding domains;
// DomainOfDisk must attribute them to the joiner instead.
func TestPostJoinDiskAttribution(t *testing.T) {
	c, _, _ := newTestCluster(t, 5, 42)
	clock := sim.NewClock()
	p := pool.New("ssd", clock, sim.NVMeSSD, 10, 0)
	c.AttachPool(p, nil)
	for i := 0; i < 10; i++ {
		if got, want := c.DomainOfDisk(pool.DiskID(i)), i%5; got != want {
			t.Fatalf("birth disk %d attributed to node %d, want %d", i, got, want)
		}
	}
	if err := c.ProposeJoin(5); err != nil {
		t.Fatalf("join: %v", err)
	}
	if p.DiskCount() <= 10 {
		t.Fatal("join attached no disks for the new node")
	}
	for i := 10; i < p.DiskCount(); i++ {
		got := c.DomainOfDisk(pool.DiskID(i))
		if got == i%5 && got != 5 {
			t.Fatalf("joined disk %d aliased onto founding domain %d by the i%%N rule", i, got)
		}
		if got != 5 {
			t.Fatalf("joined disk %d attributed to node %d, want 5", i, got)
		}
	}
	// The view's table agrees with the accessor.
	v := c.CurrentView()
	table := v.DiskNode["ssd"]
	if len(table) != p.DiskCount() {
		t.Fatalf("view table covers %d disks, pool has %d", len(table), p.DiskCount())
	}
	for i := 10; i < len(table); i++ {
		if table[i] != 5 {
			t.Fatalf("view table attributes joined disk %d to node %d", i, table[i])
		}
	}
}
