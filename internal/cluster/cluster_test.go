package cluster

import (
	"errors"
	"testing"
	"time"

	"streamlake/internal/faults"
	"streamlake/internal/sim"
)

func newTestCluster(t *testing.T, nodes int, seed uint64) (*Cluster, *sim.Clock, *faults.NetPlane) {
	t.Helper()
	clock := sim.NewClock()
	net := faults.NewNetPlane(seed)
	c := New(Config{Nodes: nodes, Seed: seed}, clock, net)
	if err := c.Bootstrap(); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	return c, clock, net
}

// step advances one heartbeat period and ticks the cluster plane.
func step(c *Cluster, clock *sim.Clock) {
	clock.Advance(c.cfg.HeartbeatEvery)
	c.Tick()
}

// stepUntil steps until cond holds or maxSteps heartbeats pass.
func stepUntil(c *Cluster, clock *sim.Clock, maxSteps int, cond func() bool) bool {
	for i := 0; i < maxSteps; i++ {
		if cond() {
			return true
		}
		step(c, clock)
	}
	return cond()
}

// partitionNodes blocks both directions between every pair drawn from
// the two groups.
func partitionNodes(net *faults.NetPlane, groupA, groupB []int) {
	for _, a := range groupA {
		for _, b := range groupB {
			net.Partition(nodeEndpoint(a), nodeEndpoint(b))
			net.Partition(nodeEndpoint(b), nodeEndpoint(a))
		}
	}
}

func TestBootstrapElectsLeader(t *testing.T) {
	c, _, _ := newTestCluster(t, 5, 42)
	lead := c.Leader()
	if lead < 0 || lead >= 5 {
		t.Fatalf("no leader after bootstrap: %d", lead)
	}
	v := c.CurrentView()
	if v.Leader != lead {
		t.Fatalf("view leader %d != %d", v.Leader, lead)
	}
	for term, wins := range c.LeaderCountByTerm() {
		if wins > 1 {
			t.Fatalf("term %d elected %d leaders", term, wins)
		}
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	c1, clock1, _ := newTestCluster(t, 5, 99)
	c2, clock2, _ := newTestCluster(t, 5, 99)
	if c1.Leader() != c2.Leader() {
		t.Fatalf("same seed, different leaders: %d vs %d", c1.Leader(), c2.Leader())
	}
	if clock1.Now() != clock2.Now() {
		t.Fatalf("same seed, different bootstrap times: %v vs %v", clock1.Now(), clock2.Now())
	}
	if c1.CurrentView().Term != c2.CurrentView().Term {
		t.Fatalf("same seed, different terms")
	}
}

func TestLeaderFailoverAndDeadCommit(t *testing.T) {
	c, clock, _ := newTestCluster(t, 5, 7)
	old := c.Leader()
	start := clock.Now()
	if err := c.KillNode(old); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// A new leader must emerge and the death must commit to membership.
	ok := stepUntil(c, clock, 200, func() bool {
		l := c.Leader()
		return l >= 0 && l != old && !c.CurrentView().Alive[old]
	})
	if !ok {
		t.Fatalf("no failover: leader=%d alive[%d]=%v", c.Leader(), old, c.CurrentView().Alive[old])
	}
	elapsed := clock.Now() - start
	budget := 4 * (c.cfg.DeadAfter + 2*c.cfg.ElectionTimeout)
	if elapsed > budget {
		t.Fatalf("failover took %v, budget %v", elapsed, budget)
	}
	for term, wins := range c.LeaderCountByTerm() {
		if wins > 1 {
			t.Fatalf("term %d elected %d leaders", term, wins)
		}
	}
	// Revival: heartbeats resume, the leader proposes it alive again.
	if err := c.ReviveNode(old); err != nil {
		t.Fatalf("revive: %v", err)
	}
	ok = stepUntil(c, clock, 200, func() bool { return c.CurrentView().Alive[old] })
	if !ok {
		t.Fatal("revived node never committed alive")
	}
}

func TestSuspectPrecedesDead(t *testing.T) {
	c, clock, _ := newTestCluster(t, 3, 11)
	victim := (c.Leader() + 1) % 3
	c.KillNode(victim)
	// After SuspectAfter of silence the view marks it suspect, while the
	// committed membership still lists it alive.
	sawSuspectAlive := false
	stepUntil(c, clock, 200, func() bool {
		v := c.CurrentView()
		if v.Suspect[victim] && v.Alive[victim] {
			sawSuspectAlive = true
		}
		return !v.Alive[victim]
	})
	if !sawSuspectAlive {
		t.Fatal("never observed suspect-but-not-yet-dead window")
	}
	if c.CurrentView().Alive[victim] {
		t.Fatal("death never committed")
	}
}

func TestMinorityCannotCommit(t *testing.T) {
	c, clock, net := newTestCluster(t, 5, 13)
	lead := c.Leader()
	other := (lead + 1) % 5
	minority := []int{lead, other}
	var majority []int
	for i := 0; i < 5; i++ {
		if i != lead && i != other {
			majority = append(majority, i)
		}
	}
	partitionNodes(net, minority, majority)
	// The stale leader can append locally but can reach only one peer:
	// two acks out of five is not a majority.
	if _, err := c.CommitProduce("t", 0, 0, 10); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("minority commit: want ErrNoQuorum, got %v", err)
	}
	if c.ProduceCommitted("t", 0, 0, 10) {
		t.Fatal("minority-side produce must not apply")
	}
	// The majority side elects a fresh leader with a higher term and can
	// commit again.
	ok := stepUntil(c, clock, 400, func() bool {
		l := c.Leader()
		for _, m := range majority {
			if l == m {
				return true
			}
		}
		return false
	})
	if !ok {
		t.Fatalf("majority never elected a leader; leader=%d", c.Leader())
	}
	if _, err := c.CommitProduce("t", 0, 10, 5); err != nil {
		t.Fatalf("majority commit: %v", err)
	}
	if !c.ProduceCommitted("t", 0, 10, 5) {
		t.Fatal("majority-side produce did not apply")
	}
	// Heal: the stale leader steps down and converges onto the new log.
	net.HealAll()
	stepUntil(c, clock, 200, func() bool {
		logA := c.CommittedLog(lead)
		logB := c.CommittedLog(c.Leader())
		if len(logA) > len(logB) {
			return false
		}
		for i := range logA {
			if logA[i] != logB[i] {
				return false
			}
		}
		return len(logA) == len(logB)
	})
	assertPrefixConsistent(t, c)
	for term, wins := range c.LeaderCountByTerm() {
		if wins > 1 {
			t.Fatalf("term %d elected %d leaders", term, wins)
		}
	}
}

// assertPrefixConsistent checks every pair of committed logs agree on
// their common prefix — the replicated-state safety invariant.
func assertPrefixConsistent(t *testing.T, c *Cluster) {
	t.Helper()
	n := c.Nodes()
	logs := make([][]Entry, n)
	for i := 0; i < n; i++ {
		logs[i] = c.CommittedLog(i)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			m := len(logs[a])
			if len(logs[b]) < m {
				m = len(logs[b])
			}
			for i := 0; i < m; i++ {
				if logs[a][i] != logs[b][i] {
					t.Fatalf("committed logs diverge at %d: node%d=%+v node%d=%+v",
						i, a, logs[a][i], b, logs[b][i])
				}
			}
		}
	}
}

func TestCommitProduceIdempotent(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 5)
	if _, err := c.CommitProduce("topic", 2, 100, 7); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	before := c.Applied()
	cost, err := c.CommitProduce("topic", 2, 100, 7)
	if err != nil || cost != 0 {
		t.Fatalf("retry commit: cost=%v err=%v", cost, err)
	}
	if c.Applied() != before {
		t.Fatal("retry appended a duplicate entry")
	}
}

func TestMetaReplication(t *testing.T) {
	c, clock, _ := newTestCluster(t, 3, 5)
	if _, err := c.ProposeMeta("topic/events"); err != nil {
		t.Fatalf("propose meta: %v", err)
	}
	if !c.MetaCommitted("topic/events") {
		t.Fatal("meta record not applied")
	}
	// Followers learn the commit index from the next leader beat.
	step(c, clock)
	// Every node's committed log carries it.
	for i := 0; i < 3; i++ {
		found := false
		for _, e := range c.CommittedLog(i) {
			if e.Kind == "meta" && e.Data == "topic/events" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d committed log missing meta record", i)
		}
	}
}

// TestVotedForSurvivesKillRevive pins the vote's durability: votedFor is
// part of a node's durable state (alongside term and log). A node that
// voted in term T, died, and revived with votedFor reset could vote
// again in T — two leaders for one term, divergent committed logs.
func TestVotedForSurvivesKillRevive(t *testing.T) {
	c, _, _ := newTestCluster(t, 5, 42)
	// Bootstrap's election left a majority of followers with votedFor
	// recorded — pick one.
	c.mu.Lock()
	voter, want := -1, -1
	for _, n := range c.nodes {
		if n.role != Leader && n.votedFor != -1 {
			voter, want = n.id, n.votedFor
			break
		}
	}
	c.mu.Unlock()
	if voter < 0 {
		t.Fatal("no follower recorded a vote after bootstrap")
	}
	if err := c.KillNode(voter); err != nil {
		t.Fatalf("kill: %v", err)
	}
	if err := c.ReviveNode(voter); err != nil {
		t.Fatalf("revive: %v", err)
	}
	c.mu.Lock()
	got := c.nodes[voter].votedFor
	c.mu.Unlock()
	if got != want {
		t.Fatalf("votedFor not durable across kill/revive: got %d, want %d", got, want)
	}
}

func TestMetaTombstoneReplicatesDeletion(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 5)
	if _, err := c.ProposeMeta("topic/events"); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c.ProposeMetaDelete("topic/events"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if c.MetaCommitted("topic/events") {
		t.Fatal("tombstone did not clear the committed key")
	}
	// Deleting an absent key is idempotent and appends nothing.
	before := c.Applied()
	if cost, err := c.ProposeMetaDelete("topic/events"); err != nil || cost != 0 {
		t.Fatalf("redundant delete: cost=%v err=%v", cost, err)
	}
	if c.Applied() != before {
		t.Fatal("redundant delete appended a log entry")
	}
	// Recreating the same name must replicate again: the tombstone
	// cleared the dedup map, so the second create is a fresh commit.
	if _, err := c.ProposeMeta("topic/events"); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	if !c.MetaCommitted("topic/events") {
		t.Fatal("recreate did not apply")
	}
	if c.Applied() <= before {
		t.Fatal("recreate skipped replication (stale dedup)")
	}
}

func TestDrainCommitsAndExcludesPlacement(t *testing.T) {
	c, _, _ := newTestCluster(t, 5, 21)
	target := (c.Leader() + 2) % 5
	if err := c.DrainNode(target); err != nil {
		t.Fatalf("drain: %v", err)
	}
	v := c.CurrentView()
	if !v.Draining[target] || !v.Alive[target] {
		t.Fatalf("drain state: draining=%v alive=%v", v.Draining[target], v.Alive[target])
	}
	// Ring placement with the cluster's admissibility rule skips it.
	pref := c.ringT.place("k", 5, func(n int) bool {
		return v.Alive[n] && !v.Draining[n]
	})
	for _, n := range pref {
		if n == target {
			t.Fatal("draining node still admissible for placement")
		}
	}
	if err := c.UndrainNode(target); err != nil {
		t.Fatalf("undrain: %v", err)
	}
	if c.CurrentView().Draining[target] {
		t.Fatal("undrain did not commit")
	}
}

func TestNoLeaderWhenMajorityDead(t *testing.T) {
	c, clock, _ := newTestCluster(t, 5, 31)
	// Kill three of five: no quorum can form, so commits must fail no
	// matter how long the survivors campaign.
	killed := 0
	for i := 0; i < 5 && killed < 3; i++ {
		c.KillNode(i)
		killed++
	}
	for i := 0; i < 100; i++ {
		step(c, clock)
	}
	if _, err := c.CommitProduce("t", 0, 0, 1); err == nil {
		t.Fatal("commit succeeded without a quorum of live nodes")
	}
}

func TestLongGapFoldStillDetects(t *testing.T) {
	c, clock, _ := newTestCluster(t, 3, 77)
	victim := c.Leader()
	c.KillNode(victim)
	// Jump far past the fold window in one advance: the pending
	// detection must still fire inside the folded trailing window.
	clock.Advance(5 * time.Minute)
	c.Tick()
	// A few more boundaries let the new leader's dead-proposal commit.
	ok := stepUntil(c, clock, 100, func() bool {
		return c.Leader() >= 0 && c.Leader() != victim && !c.CurrentView().Alive[victim]
	})
	if !ok {
		t.Fatalf("fold hid the failure: leader=%d alive=%v", c.Leader(), c.CurrentView().Alive[victim])
	}
}

func TestStatusSnapshot(t *testing.T) {
	c, _, _ := newTestCluster(t, 3, 1)
	st := c.Status()
	if len(st.Nodes) != 3 {
		t.Fatalf("status nodes = %d", len(st.Nodes))
	}
	if st.Leader != c.Leader() {
		t.Fatalf("status leader %d != %d", st.Leader, c.Leader())
	}
	leaders := 0
	for _, n := range st.Nodes {
		if n.Role == "leader" {
			leaders++
		}
		if !n.Up || !n.Alive {
			t.Fatalf("node %d should be up and alive: %+v", n.ID, n)
		}
	}
	if leaders != 1 {
		t.Fatalf("status shows %d leaders", leaders)
	}
}
