package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over node IDs. Each node projects
// ringVnodes virtual points so placement stays balanced at small node
// counts, and Place walks clockwise from a key's hash collecting
// distinct admissible nodes — the preference order the placer feeds to
// pool.AllocGroupIn. Because the walk skips dead/draining nodes rather
// than rehashing, a node's death moves only the placements that hashed
// to it; everything else stays put (the usual consistent-hashing
// stability argument).
const ringVnodes = 64

type ringPoint struct {
	hash uint64
	node int
}

type ring struct {
	points []ringPoint
}

func newRing(nodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, nodes*ringVnodes)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64("node-" + strconv.Itoa(n) + "#" + strconv.Itoa(v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// addNode inserts node n's virtual points. The resulting point set is
// identical to newRing built at the larger size, so a cluster grown one
// node at a time places keys exactly like one born at the final size —
// the property the arc-migration bound (≈1/(N+1) of keys move on grow)
// rests on.
func (r *ring) addNode(n int) {
	for v := 0; v < ringVnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash: hash64("node-" + strconv.Itoa(n) + "#" + strconv.Itoa(v)),
			node: n,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// removeNode drops node n's virtual points. Keys that hashed to other
// nodes keep their owners (order of the surviving points is untouched),
// so a shrink moves only the departed node's arcs.
func (r *ring) removeNode(n int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// nodes returns the distinct node IDs currently projected on the ring.
func (r *ring) nodes() []int {
	seen := map[int]bool{}
	out := []int{}
	for _, p := range r.points {
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	sort.Ints(out)
	return out
}

// place returns up to want distinct nodes admissible under ok, in ring
// order starting at key's hash. Fewer than want come back when the
// admissible set is smaller — the caller degrades placement rather than
// failing.
func (r *ring) place(key string, want int, ok func(node int) bool) []int {
	if len(r.points) == 0 || want <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, want)
	out := make([]int, 0, want)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] || !ok(p.node) {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// hash64 is FNV-64a with a splitmix64-style finalizer. Raw FNV's last
// few input bytes barely diffuse (two keys differing only in a trailing
// digit land within ~2^44 of each other, far inside one ring arc at
// ~2^55 per point), which piled every placement group onto the same
// three nodes and made grow-by-one migration a no-op. The finalizer
// avalanches the full 64 bits, so sequential placement keys spread
// across arcs the way consistent hashing assumes.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
