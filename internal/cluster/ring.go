package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over node IDs. Each node projects
// ringVnodes virtual points so placement stays balanced at small node
// counts, and Place walks clockwise from a key's hash collecting
// distinct admissible nodes — the preference order the placer feeds to
// pool.AllocGroupIn. Because the walk skips dead/draining nodes rather
// than rehashing, a node's death moves only the placements that hashed
// to it; everything else stays put (the usual consistent-hashing
// stability argument).
const ringVnodes = 64

type ringPoint struct {
	hash uint64
	node int
}

type ring struct {
	points []ringPoint
}

func newRing(nodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, nodes*ringVnodes)}
	for n := 0; n < nodes; n++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64("node-" + strconv.Itoa(n) + "#" + strconv.Itoa(v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// place returns up to want distinct nodes admissible under ok, in ring
// order starting at key's hash. Fewer than want come back when the
// admissible set is smaller — the caller degrades placement rather than
// failing.
func (r *ring) place(key string, want int, ok func(node int) bool) []int {
	if len(r.points) == 0 || want <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[int]bool, want)
	out := make([]int, 0, want)
	for i := 0; i < len(r.points) && len(out) < want; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] || !ok(p.node) {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
