// Package cluster turns the single-process reproduction into a
// multi-node one (Section V's deployment shape: StreamLake runs on 3+
// node converged clusters). A Node bundles a share of every storage
// pool (its failure domain), a stream-worker share, and a metadata-log
// participant. Three mechanisms cooperate so that killing any minority
// of nodes — including the metadata leader — loses no acknowledged
// write:
//
//   - a virtual-time heartbeat failure detector with seeded timeouts
//     marks unreachable nodes suspect, then dead;
//   - a Raft-lite replicated metadata log (metalog.go) commits
//     membership changes and produce records by majority, so a minority
//     partition can elect whatever it likes but can never acknowledge;
//   - consistent-hash placement (ring.go) plus the pool's failure
//     domains keep a placement group's copies on distinct nodes, and a
//     rebalancer re-replicates a dead node's slices within a bounded
//     virtual-time budget.
//
// Every inter-node message rides the faults.NetPlane, so the existing
// drop/delay/partition machinery shapes cluster behavior for free, and
// everything draws from seeded RNGs — the whole failover drill replays
// bit-identically.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/faults"
	"streamlake/internal/obs"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/repair"
	"streamlake/internal/sim"
)

// Config shapes the cluster's detector and election timers. All
// durations are virtual time.
type Config struct {
	// Nodes is the birth cluster size. Disk i of every attached pool
	// initially belongs to node i % Nodes; after runtime joins the
	// view's disk→node table is the only truth (new disks belong to the
	// node that joined with them, not to i % birth-N).
	Nodes int
	// Seed derives every per-node RNG (election-timeout jitter).
	Seed uint64
	// HeartbeatEvery is the all-to-all heartbeat period (default 1ms).
	HeartbeatEvery time.Duration
	// SuspectAfter marks a silent node suspect: placement avoids it,
	// hedged reads and scrub skip its copies (default 4ms).
	SuspectAfter time.Duration
	// DeadAfter lets the leader propose a silent node dead, triggering
	// re-replication of its slices (default 10ms).
	DeadAfter time.Duration
	// ElectionTimeout is the base follower patience before campaigning;
	// each node adds seeded jitter in [0, ElectionTimeout) so timers
	// stay staggered (default 5ms).
	ElectionTimeout time.Duration
	// MoveSlack bounds data movement on a join: growing N→N+1 may move
	// at most (1/(N+1))·(1+MoveSlack) of the live bytes (default 0.5).
	// Consistent hashing keeps the expected movement at 1/(N+1); the
	// slack absorbs sampling variance at small N.
	MoveSlack float64
}

func (c *Config) applyDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 3
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * time.Millisecond
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 5 * time.Millisecond
	}
	if c.MoveSlack <= 0 {
		c.MoveSlack = 0.5
	}
}

// nodeState is one node's cluster-visible state: process liveness, the
// failure detector's receive timestamps, and its metadata-log
// participant state.
type nodeState struct {
	id      int
	up      bool // process alive (KillNode/ReviveNode toggle this)
	learner bool // catching up; replicated to but not counted for quorum
	removed bool // tombstoned by a committed remove; never returns

	lastHeard []time.Duration // [sender] when a heartbeat last arrived

	role            Role
	term            int64
	votedFor        int
	log             []Entry
	commit          int
	lastLeaderBeat  time.Duration
	lastElection    time.Duration
	electionTimeout time.Duration // fixed seeded jitter, staggered per node
}

// View is the lock-free liveness snapshot the pool avoid-hooks read on
// every allocation and hedged read. Alive is the committed membership;
// Suspect is the detector's pre-commit verdict. Version increments on
// every membership or topology change, and DiskNode is the
// view-versioned disk→node assignment (per pool name) that replaces the
// static i%N rule once clusters grow or shrink at runtime.
type View struct {
	Nodes    int // current node-ID space (birth nodes + joins, tombstones included)
	Alive    []bool
	Suspect  []bool
	Draining []bool
	Joining  []bool // learner admitted, promotion not yet committed
	Leaving  []bool // leave committed, tombstone not yet committed
	Removed  []bool // tombstoned
	Leader   int    // -1 when no live leader
	Term     int64
	Version  int64
	DiskNode map[string][]int // pool name → disk index → owning node
}

// Stats counts cluster-plane activity.
type Stats struct {
	Elections       int64
	Commits         int64
	CommitFails     int64
	HeartbeatsSent  int64
	HeartbeatsLost  int64
	NodesKilled     int64
	NodesRevived    int64
	StaleMarkedByte int64 // bytes marked stale by committed death verdicts
	Joins           int64 // committed node joins
	Removes         int64 // committed node removals
	JoinMovedBytes  int64 // live bytes scheduled to move by join arc migration
	EvacuatedBytes  int64 // live bytes relocated off leaving nodes
}

type attachedPool struct {
	p        *pool.Pool
	mgr      *plog.Manager // nil for pools without a plog manager (HDD tier shares the SSD manager's logs)
	diskNode []int         // disk index → owning node (the view-versioned table)
	perNode  int           // disks contributed per joining node
}

// placementRec remembers one placement-group decision so join-time arc
// migration can recompute where the ring now wants each group without a
// ground-truth side channel: the key is the same one the placer hashed.
type placementRec struct {
	p      *pool.Pool
	mgr    *plog.Manager
	key    string
	slices []pool.SliceID
}

// Cluster is the membership, placement, and metadata-consensus plane
// over the existing pools and services.
type Cluster struct {
	cfg   Config
	clock *sim.Clock
	net   *faults.NetPlane

	mu          sync.Mutex
	nodes       []*nodeState
	alive       []bool // committed membership
	draining    []bool
	joining     []bool // learner exists, join entry not yet applied
	leaving     []bool // leave entry applied, remove entry not yet
	removed     []bool // remove tombstone applied
	lastTick    time.Duration
	applied     int
	produced    map[string]bool
	meta        map[string]bool
	termWins    map[int64]int
	placeSeq    map[string]uint64
	pools       []attachedPool
	repairs     []*repair.Service
	ringT       *ring
	placements  []placementRec
	stats       Stats
	lastJoin    JoinReport
	viewVersion int64
	onKill      func(node int, up bool)
	onMember    func(node int, serving bool)

	view atomic.Pointer[View]
}

// New builds a cluster plane over the shared clock and network fault
// plane. Pools, repair services, and callbacks attach afterwards;
// Bootstrap then elects the first leader.
func New(cfg Config, clock *sim.Clock, net *faults.NetPlane) *Cluster {
	cfg.applyDefaults()
	c := &Cluster{
		cfg:      cfg,
		clock:    clock,
		net:      net,
		produced: make(map[string]bool),
		meta:     make(map[string]bool),
		termWins: make(map[int64]int),
		placeSeq: make(map[string]uint64),
		ringT:    newRing(cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		rng := sim.NewRNG(cfg.Seed ^ (0x636c7573746572 + uint64(i)*0x9E3779B9))
		jitter := time.Duration(rng.Int63n(int64(cfg.ElectionTimeout)))
		c.nodes = append(c.nodes, &nodeState{
			id:              i,
			up:              true,
			lastHeard:       make([]time.Duration, cfg.Nodes),
			votedFor:        -1,
			electionTimeout: cfg.ElectionTimeout + jitter,
		})
		c.alive = append(c.alive, true)
		c.draining = append(c.draining, false)
		c.joining = append(c.joining, false)
		c.leaving = append(c.leaving, false)
		c.removed = append(c.removed, false)
	}
	c.storeViewLocked(clock.Now())
	return c
}

// Nodes returns the current node-ID space: birth nodes plus every
// runtime join, tombstoned removals included (IDs are never reused).
func (c *Cluster) Nodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Voters counts the quorum denominator: full members, excluding
// learners still catching up and removed tombstones.
func (c *Cluster) Voters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.votersLocked()
}

// DomainOfDisk maps a disk index in the first attached pool to its
// owning node via the view-versioned disk→node table; before any pool
// attaches it falls back to the birth i%N rule. Pools with divergent
// disk counts should use DomainOfPoolDisk.
func (c *Cluster) DomainOfDisk(d pool.DiskID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ap := range c.pools {
		if int(d) >= 0 && int(d) < len(ap.diskNode) {
			return ap.diskNode[d]
		}
	}
	return int(d) % c.cfg.Nodes
}

// DomainOfPoolDisk maps one pool's disk index to its owning node via
// the disk→node table, or -1 when unknown.
func (c *Cluster) DomainOfPoolDisk(p *pool.Pool, d pool.DiskID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ap := range c.pools {
		if ap.p == p {
			if int(d) >= 0 && int(d) < len(ap.diskNode) {
				return ap.diskNode[d]
			}
			return -1
		}
	}
	return -1
}

// AttachPool registers a storage pool with the cluster: disk i joins
// node i%N's failure domain at birth (the seed of the view's disk→node
// table — later joins append their own disks to it), the allocation
// veto excludes suspect, dead, draining, and removed nodes, and (when
// mgr is non-nil) new placement groups route through the
// consistent-hash ring.
func (c *Cluster) AttachPool(p *pool.Pool, mgr *plog.Manager) {
	n := c.cfg.Nodes
	domains := make([]int, p.DiskCount())
	for i := range domains {
		domains[i] = i % n
	}
	p.SetDomains(domains)
	name := p.Name()
	p.SetAvoid(func(d pool.DiskID) bool {
		v := c.view.Load()
		if v == nil {
			return false
		}
		node := -1
		if table := v.DiskNode[name]; int(d) < len(table) {
			node = table[d]
		} else {
			node = int(d) % v.Nodes
		}
		if node < 0 || node >= len(v.Alive) {
			return true
		}
		return !v.Alive[node] || v.Suspect[node] || v.Draining[node] ||
			(node < len(v.Removed) && v.Removed[node])
	})
	c.mu.Lock()
	c.pools = append(c.pools, attachedPool{
		p: p, mgr: mgr,
		diskNode: append([]int(nil), domains...),
		perNode:  p.DiskCount() / n,
	})
	c.storeViewLocked(c.clock.Now())
	c.mu.Unlock()
	// The placer only attaches to the manager's own allocation pool; a
	// secondary pool (the HDD tier sharing the SSD manager's logs) still
	// registers for stale-marking and backlog accounting above.
	if mgr != nil && mgr.Pool() == p {
		mgr.SetPlacer(func(width int) ([]*pool.Slice, error) {
			c.mu.Lock()
			c.placeSeq[name]++
			key := name + "/" + strconv.FormatUint(c.placeSeq[name], 10)
			pref := c.ringT.place(key, width, c.placeOKLocked)
			c.mu.Unlock()
			sl, err := p.AllocGroupIn(pref, width)
			if err == nil && len(sl) > 0 {
				ids := make([]pool.SliceID, len(sl))
				for i, s := range sl {
					ids[i] = s.ID
				}
				c.mu.Lock()
				c.placements = append(c.placements, placementRec{p: p, mgr: mgr, key: key, slices: ids})
				c.mu.Unlock()
			}
			return sl, err
		})
	}
}

// placeOKLocked is the placer's admissibility rule: committed-alive,
// not draining (which covers leaving nodes), not removed.
func (c *Cluster) placeOKLocked(node int) bool {
	return node >= 0 && node < len(c.alive) &&
		c.alive[node] && !c.draining[node] && !c.removed[node]
}

// AttachRepair registers a repair service the rebalancer drives.
func (c *Cluster) AttachRepair(r *repair.Service) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.repairs = append(c.repairs, r)
}

// OnKill installs the process-death callback, invoked with up=false the
// moment a node is killed (before any detection) and up=true on revival
// — the wiring layer uses it to partition the dead node's client links.
func (c *Cluster) OnKill(fn func(node int, up bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onKill = fn
}

// OnMembership installs the committed-membership callback: serving=false
// when a node's death or drain commits (the stream service reassigns
// its workers' streams), serving=true when it rejoins.
func (c *Cluster) OnMembership(fn func(node int, serving bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMember = fn
}

// nodeDisksOf lists a node's disks in one pool via the attached pool's
// disk→node table — never the birth i%N rule, which would alias a
// joined node's disks onto old domains.
func nodeDisksOf(ap attachedPool, node int) map[pool.DiskID]bool {
	disks := make(map[pool.DiskID]bool)
	for i, n := range ap.diskNode {
		if n == node {
			disks[pool.DiskID(i)] = true
		}
	}
	return disks
}

// nodeDeclaredDead runs the committed-death side effects: every copy on
// the dead node's disks is marked fully stale (the re-replication work
// queue) and the membership callback reassigns its stream workers.
func (c *Cluster) nodeDeclaredDead(node int) {
	c.mu.Lock()
	pools := append([]attachedPool(nil), c.pools...)
	cb := c.onMember
	c.mu.Unlock()
	var marked int64
	for _, ap := range pools {
		if ap.mgr == nil {
			continue
		}
		marked += ap.mgr.MarkDisksStale(ap.p, nodeDisksOf(ap, node))
	}
	c.mu.Lock()
	c.stats.StaleMarkedByte += marked
	c.mu.Unlock()
	if cb != nil {
		cb(node, false)
	}
}

func (c *Cluster) nodeDeclaredAlive(node int, serving bool) {
	c.mu.Lock()
	cb := c.onMember
	c.mu.Unlock()
	if cb != nil && serving {
		cb(node, true)
	}
}

func (c *Cluster) membershipChanged(node int, serving bool) {
	c.mu.Lock()
	cb := c.onMember
	c.mu.Unlock()
	if cb != nil {
		cb(node, serving)
	}
}

func (c *Cluster) runEffects(effects []func()) {
	for _, fn := range effects {
		fn()
	}
}

// KillNode kills a node's process: its heartbeats stop, its disks fail
// in every attached pool (degraded writes start recording stale copies
// immediately), and its client links drop via the OnKill callback. The
// failure detector, membership commit, and rebalancer take it from
// there.
func (c *Cluster) KillNode(node int) error {
	c.mu.Lock()
	if node < 0 || node >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	n := c.nodes[node]
	if n.removed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d was removed", node)
	}
	if !n.up {
		c.mu.Unlock()
		return nil
	}
	n.up = false
	c.stats.NodesKilled++
	pools := append([]attachedPool(nil), c.pools...)
	cb := c.onKill
	c.mu.Unlock()
	for _, ap := range pools {
		for _, d := range sortedDiskIDs(nodeDisksOf(ap, node)) {
			ap.p.FailDisk(d)
		}
	}
	if cb != nil {
		cb(node, false)
	}
	return nil
}

// ReviveNode restarts a killed node: disks revive (their copies are
// still stale until repair catches them up), heartbeats resume, and the
// leader proposes the node alive once it hears from it. The node's
// metadata log, term, and votedFor survive the restart — they are its
// durable state. votedFor in particular MUST persist: a node that voted
// in term T, died, and revived with votedFor reset could vote again in
// T, electing two leaders for one term.
func (c *Cluster) ReviveNode(node int) error {
	now := c.clock.Now()
	c.mu.Lock()
	if node < 0 || node >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	n := c.nodes[node]
	if n.removed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d was removed", node)
	}
	if n.up {
		c.mu.Unlock()
		return nil
	}
	n.up = true
	n.role = Follower
	n.lastLeaderBeat = now
	n.lastElection = now
	for i := range n.lastHeard {
		n.lastHeard[i] = now
	}
	for _, m := range c.nodes {
		if m.up {
			m.lastHeard[node] = now
		}
	}
	c.stats.NodesRevived++
	pools := append([]attachedPool(nil), c.pools...)
	cb := c.onKill
	c.mu.Unlock()
	for _, ap := range pools {
		for _, d := range sortedDiskIDs(nodeDisksOf(ap, node)) {
			ap.p.ReviveDisk(d)
		}
	}
	if cb != nil {
		cb(node, true)
	}
	return nil
}

// DrainNode commits a drain record: the node keeps serving reads and
// consensus but takes no new placements and its stream workers hand
// off. Fails when the metadata log cannot commit.
func (c *Cluster) DrainNode(node int) error {
	return c.proposeMember(node, "drain")
}

// UndrainNode reverses DrainNode.
func (c *Cluster) UndrainNode(node int) error {
	return c.proposeMember(node, "undrain")
}

func (c *Cluster) proposeMember(node int, status string) error {
	c.mu.Lock()
	if node < 0 || node >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	if c.nodes[node].removed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d was removed", node)
	}
	var effects []func()
	_, err := c.proposeLocked("member", strconv.Itoa(node)+sep+status, &effects)
	now := c.clock.Now()
	c.storeViewLocked(now)
	c.mu.Unlock()
	c.runEffects(effects)
	return err
}

// NodeUp reports process liveness (pre-detection truth, for harnesses).
func (c *Cluster) NodeUp(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return node >= 0 && node < len(c.nodes) && c.nodes[node].up
}

// Leader returns the current live leader's node ID, or -1.
func (c *Cluster) Leader() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lead := c.currentLeaderLocked(); lead != nil {
		return lead.id
	}
	return -1
}

// CurrentView returns the latest liveness snapshot.
func (c *Cluster) CurrentView() View {
	if v := c.view.Load(); v != nil {
		return *v
	}
	return View{}
}

// Stats snapshots cluster-plane counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Applied reports how many metadata-log entries have been applied.
func (c *Cluster) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// storeViewLocked publishes the lock-free liveness snapshot. Suspicion
// comes from the live leader's detector when one exists (the verdict
// that actually drives membership proposals); leaderless interregna
// fall back to "no live node heard it recently".
func (c *Cluster) storeViewLocked(now time.Duration) {
	c.viewVersion++
	v := &View{
		Nodes:    len(c.nodes),
		Alive:    append([]bool(nil), c.alive...),
		Draining: append([]bool(nil), c.draining...),
		Joining:  append([]bool(nil), c.joining...),
		Leaving:  append([]bool(nil), c.leaving...),
		Removed:  append([]bool(nil), c.removed...),
		Suspect:  make([]bool, len(c.nodes)),
		Leader:   -1,
		Version:  c.viewVersion,
	}
	if len(c.pools) > 0 {
		v.DiskNode = make(map[string][]int, len(c.pools))
		for _, ap := range c.pools {
			v.DiskNode[ap.p.Name()] = append([]int(nil), ap.diskNode...)
		}
	}
	lead := c.currentLeaderLocked()
	if lead != nil {
		v.Leader = lead.id
		v.Term = lead.term
	}
	// Suspicion deliberately ignores ground-truth process liveness: the
	// view only knows what heartbeats revealed, so a freshly killed
	// node stays unsuspected until its silence crosses SuspectAfter.
	for j := range c.nodes {
		if lead != nil {
			if j != lead.id {
				v.Suspect[j] = now-lead.lastHeard[j] > c.cfg.SuspectAfter
			}
			continue
		}
		heard := false
		for _, m := range c.nodes {
			if m.up && m.id != j && now-m.lastHeard[j] <= c.cfg.SuspectAfter {
				heard = true
				break
			}
		}
		v.Suspect[j] = !heard
	}
	c.view.Store(v)
}

// Tick advances the cluster plane to the clock's current virtual time,
// replaying every heartbeat boundary since the last call: all-to-all
// detector heartbeats (each riding the NetPlane), leader beats,
// election timers, and the leader's membership proposals. Call it after
// advancing the clock; it never advances the clock itself.
//
// A gap much longer than the detector's full reaction window (a chaos
// schedule jumping minutes ahead) is folded: link state is refreshed
// optimistically for live senders to the window's start and only the
// trailing window is simulated boundary by boundary. Killed nodes'
// timestamps are left old, so pending detections still fire inside the
// window — the fold bounds the work without hiding failures.
func (c *Cluster) Tick() {
	now := c.clock.Now()
	var effects []func()
	c.mu.Lock()
	hb := c.cfg.HeartbeatEvery
	window := 4 * (c.cfg.DeadAfter + 2*c.cfg.ElectionTimeout)
	if now-c.lastTick > window {
		start := now - window
		lead := c.currentLeaderLocked()
		for _, n := range c.nodes {
			if !n.up {
				continue
			}
			for _, m := range c.nodes {
				if m == n || !m.up {
					continue
				}
				if m.lastHeard[n.id] < start {
					m.lastHeard[n.id] = start
				}
			}
			if lead != nil && n.lastLeaderBeat < start {
				n.lastLeaderBeat = start
			}
			if n.lastElection < start {
				n.lastElection = start
			}
		}
		c.lastTick = start
	}
	for t := c.lastTick - c.lastTick%hb + hb; t <= now; t += hb {
		c.boundaryLocked(t, &effects)
	}
	c.lastTick = now
	c.storeViewLocked(now)
	c.mu.Unlock()
	c.runEffects(effects)
}

// boundaryLocked runs one heartbeat boundary: detector heartbeats with
// piggybacked terms and leader beats, then due elections, then the
// leader's membership proposals — all in node-ID order so the schedule
// is a pure function of (seed, event sequence).
func (c *Cluster) boundaryLocked(t time.Duration, effects *[]func()) {
	for _, i := range c.nodes {
		if !i.up {
			continue
		}
		isLeader := i.role == Leader
		if isLeader {
			i.lastLeaderBeat = t
		}
		for _, j := range c.nodes {
			if j == i || !j.up {
				continue
			}
			c.stats.HeartbeatsSent++
			if _, err := c.net.Deliver(nodeEndpoint(i.id), nodeEndpoint(j.id), heartbeatBytes); err != nil {
				c.stats.HeartbeatsLost++
				continue
			}
			j.lastHeard[i.id] = t
			if i.term > j.term {
				j.term = i.term
				j.votedFor = -1
				j.role = Follower
			}
			if isLeader && i.term >= j.term {
				j.lastLeaderBeat = t
				// Leader beats carry log reconciliation, like Raft's
				// heartbeat AppendEntries: this is how a follower learns
				// the previous proposal's commit index and how healed
				// nodes converge without waiting for the next proposal.
				c.reconcileLocked(i, j)
			}
		}
	}
	for _, i := range c.nodes {
		// Leaving nodes keep voting (they are in the quorum until the
		// tombstone commits) but stop campaigning: a leaving leader could
		// never commit its own tombstone past the remove-the-leader guard.
		if !i.up || i.role == Leader || i.learner || i.removed || c.leaving[i.id] {
			continue
		}
		if t-i.lastLeaderBeat >= i.electionTimeout && t-i.lastElection >= i.electionTimeout {
			c.runElectionLocked(i, t)
		}
	}
	lead := c.currentLeaderLocked()
	if lead == nil {
		return
	}
	for j := range c.nodes {
		// Learners and tombstones are outside the dead/alive verdict
		// cycle: a learner's liveness starts mattering at promotion, a
		// removed node never comes back.
		if j == lead.id || c.joining[j] || c.removed[j] {
			continue
		}
		heardAgo := t - lead.lastHeard[j]
		if c.alive[j] && heardAgo > c.cfg.DeadAfter {
			data := strconv.Itoa(j) + sep + "dead"
			if !c.pendingLocked(lead, "member", data) {
				c.proposeLocked("member", data, effects)
			}
		}
		// Revival rides on detector evidence alone (a recent heartbeat),
		// never ground-truth process liveness — same discipline as the
		// suspect/dead verdicts.
		if !c.alive[j] && heardAgo <= c.cfg.SuspectAfter {
			data := strconv.Itoa(j) + sep + "alive"
			if !c.pendingLocked(lead, "member", data) {
				c.proposeLocked("member", data, effects)
			}
		}
	}
}

// Bootstrap advances virtual time in heartbeat steps until the first
// leader is elected — call once at wiring time, before traffic.
func (c *Cluster) Bootstrap() error {
	for i := 0; i < 256; i++ {
		if c.Leader() >= 0 {
			return nil
		}
		c.clock.Advance(c.cfg.HeartbeatEvery)
		c.Tick()
	}
	return errors.New("cluster: bootstrap elected no leader")
}

// NodeStatus is one node's externally visible state.
type NodeStatus struct {
	ID           int
	Up           bool
	Alive        bool // committed membership
	Suspect      bool
	Draining     bool
	Joining      bool // learner admitted, promotion not yet committed
	Leaving      bool // leave committed, awaiting tombstone
	Removed      bool // tombstoned, never returns
	Role         string
	Term         int64
	LogLen       int
	Commit       int
	SlicesOwned  int
	BacklogBytes int64 // stale bytes awaiting re-replication off this node
}

// ClusterStatus is the full status snapshot lakectl and the gateway
// serve.
type ClusterStatus struct {
	Nodes   []NodeStatus
	Leader  int
	Term    int64
	Applied int
	Stats   Stats
}

// Status assembles the cluster status view.
func (c *Cluster) Status() ClusterStatus {
	v := c.CurrentView()
	c.mu.Lock()
	st := ClusterStatus{Leader: -1, Applied: c.applied, Stats: c.stats}
	if lead := c.currentLeaderLocked(); lead != nil {
		st.Leader = lead.id
		st.Term = lead.term
	}
	nodes := make([]NodeStatus, len(c.nodes))
	for i, n := range c.nodes {
		nodes[i] = NodeStatus{
			ID: i, Up: n.up, Role: n.role.String(), Term: n.term,
			LogLen: len(n.log), Commit: n.commit,
			Alive: c.alive[i], Draining: c.draining[i],
			Joining: c.joining[i], Leaving: c.leaving[i], Removed: c.removed[i],
		}
		if i < len(v.Suspect) {
			nodes[i].Suspect = v.Suspect[i]
		}
	}
	pools := append([]attachedPool(nil), c.pools...)
	c.mu.Unlock()
	for _, ap := range pools {
		bySlice := ap.p.DomainSlices()
		for i := range nodes {
			nodes[i].SlicesOwned += bySlice[i]
		}
	}
	// Backlog counts once per (manager, pool) pair, attributing each
	// pool's stale disks through that pool's own disk→node table — disk
	// IDs alias across pools and, after joins, no longer follow i%N.
	for _, mgr := range distinctManagers(pools) {
		for _, ap := range pools {
			for d, b := range mgr.StaleByDiskIn(ap.p) {
				if n := diskNodeOf(ap, d); n >= 0 && n < len(nodes) {
					nodes[n].BacklogBytes += b
				}
			}
		}
	}
	st.Nodes = nodes
	return st
}

// diskNodeOf resolves one disk through an attached pool's table.
func diskNodeOf(ap attachedPool, d pool.DiskID) int {
	if int(d) >= 0 && int(d) < len(ap.diskNode) {
		return ap.diskNode[d]
	}
	return -1
}

// SetObs registers the cluster's telemetry: per-node liveness, slice
// ownership, and re-replication backlog gauges, plus election/commit
// counters — the /metrics surface the failover runbooks watch.
func (c *Cluster) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i := 0; i < c.cfg.Nodes; i++ {
		node := i
		label := `{node="` + strconv.Itoa(i) + `"}`
		reg.GaugeFunc("cluster_node_alive"+label, func() float64 {
			v := c.CurrentView()
			if node < len(v.Alive) && v.Alive[node] {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("cluster_node_suspect"+label, func() float64 {
			v := c.CurrentView()
			if node < len(v.Suspect) && v.Suspect[node] {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("cluster_node_slices"+label, func() float64 {
			var total int
			c.mu.Lock()
			pools := append([]attachedPool(nil), c.pools...)
			c.mu.Unlock()
			for _, ap := range pools {
				total += ap.p.DomainSlices()[node]
			}
			return float64(total)
		})
		reg.GaugeFunc("cluster_node_backlog_bytes"+label, func() float64 {
			var total int64
			c.mu.Lock()
			pools := append([]attachedPool(nil), c.pools...)
			c.mu.Unlock()
			for _, mgr := range distinctManagers(pools) {
				for _, ap := range pools {
					for d, b := range mgr.StaleByDiskIn(ap.p) {
						if diskNodeOf(ap, d) == node {
							total += b
						}
					}
				}
			}
			return float64(total)
		})
	}
	reg.GaugeFunc("cluster_leader", func() float64 { return float64(c.Leader()) })
	reg.GaugeFunc("cluster_elections_total", func() float64 { return float64(c.Stats().Elections) })
	reg.GaugeFunc("cluster_commits_total", func() float64 { return float64(c.Stats().Commits) })
	reg.GaugeFunc("cluster_commit_fails_total", func() float64 { return float64(c.Stats().CommitFails) })
	reg.GaugeFunc("cluster_heartbeats_lost_total", func() float64 { return float64(c.Stats().HeartbeatsLost) })
}

// distinctManagers returns each attached plog manager once, in attach
// order — pools can share a manager (SSD + HDD tiers).
func distinctManagers(pools []attachedPool) []*plog.Manager {
	var out []*plog.Manager
	for _, ap := range pools {
		if ap.mgr == nil {
			continue
		}
		dup := false
		for _, m := range out {
			if m == ap.mgr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, ap.mgr)
		}
	}
	return out
}

// sortedDiskIDs is a small helper for deterministic iteration in tests.
func sortedDiskIDs(m map[pool.DiskID]bool) []pool.DiskID {
	out := make([]pool.DiskID, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
