package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

// Membership changes replicate through the same Raft-lite metadata log
// as produce records — there is no ground-truth side channel. A join
// runs in two steps: the new node is admitted as a non-voting learner
// and caught up on the committed log (one bulk transfer over the
// NetPlane, so a partition blocks admission before any state mutates),
// then a single committed "join" config entry promotes it to voter,
// inserts its ring arcs, and triggers the bounded arc migration. A
// removal is the mirror image: a committed "leave" entry drains the
// node and relocates its slices off, then a committed "remove"
// tombstone drops it from the ring, the voter set, and the heartbeat
// schedule. Node IDs are never reused.

// Errors surfaced by membership changes.
var (
	// ErrNodeExists rejects joining an ID that is already a full member
	// or a tombstone.
	ErrNodeExists = errors.New("cluster: node already exists")
	// ErrRemoveLeader rejects removing the current leader — demote it
	// first (kill or wait out an election) so the removal can commit
	// through a surviving leader.
	ErrRemoveLeader = errors.New("cluster: cannot remove the current leader")
	// ErrTooFewVoters keeps the voter set at three or more: below that a
	// single failure stalls the metadata plane.
	ErrTooFewVoters = errors.New("cluster: removal would leave fewer than 3 voters")
)

// JoinReport records what one committed join actually moved — the
// evidence for the movement bound.
type JoinReport struct {
	Node        int
	MovedBytes  int64 // stale bytes scheduled onto the new node (re-replication work)
	MovedSlices int   // placement-group copies relocated
	BoundBytes  int64 // (live/(N+1))·(1+MoveSlack) at join time
	Skipped     int   // groups the ring wanted moved but the bound (or a missing victim) deferred
}

// LastJoin returns the most recent committed join's movement report.
func (c *Cluster) LastJoin() JoinReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastJoin
}

// ProposeJoin admits a new node (IDs are dense: the next valid id is
// Nodes()) or retries a stuck admission for an existing learner. The
// learner first receives the leader's committed log as one bulk
// transfer; the promotion then commits through the replicated log like
// any other entry — no quorum, no join.
func (c *Cluster) ProposeJoin(node int) error {
	now := c.clock.Now()
	var effects []func()
	c.mu.Lock()
	if node < 0 || node > len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: join id %d out of order (next is %d)", node, len(c.nodes))
	}
	if node < len(c.nodes) && !c.joining[node] {
		c.mu.Unlock()
		return ErrNodeExists
	}
	lead := c.currentLeaderLocked()
	if lead == nil {
		c.mu.Unlock()
		return ErrNoLeader
	}
	if node == len(c.nodes) {
		// Learner catch-up: ship the committed log before admitting the
		// node. A partitioned or lossy path fails here, before any
		// cluster state changes.
		size := int64(entryOverhead) * int64(len(lead.log)+1)
		for _, e := range lead.log {
			size += int64(len(e.Data))
		}
		if _, err := c.net.Deliver(nodeEndpoint(lead.id), nodeEndpoint(node), size); err != nil {
			c.mu.Unlock()
			return fmt.Errorf("cluster: learner %d catch-up: %w", node, err)
		}
		// Same seeded jitter derivation as New: a cluster grown to N
		// places its timers exactly like one born at N.
		rng := sim.NewRNG(c.cfg.Seed ^ (0x636c7573746572 + uint64(node)*0x9E3779B9))
		jitter := time.Duration(rng.Int63n(int64(c.cfg.ElectionTimeout)))
		ns := &nodeState{
			id:              node,
			up:              true,
			learner:         true,
			lastHeard:       make([]time.Duration, node+1),
			votedFor:        -1,
			electionTimeout: c.cfg.ElectionTimeout + jitter,
			lastLeaderBeat:  now,
			lastElection:    now,
		}
		for i := range ns.lastHeard {
			ns.lastHeard[i] = now
		}
		for _, m := range c.nodes {
			m.lastHeard = append(m.lastHeard, now)
		}
		c.nodes = append(c.nodes, ns)
		c.alive = append(c.alive, true)
		c.draining = append(c.draining, false)
		c.joining = append(c.joining, true)
		c.leaving = append(c.leaving, false)
		c.removed = append(c.removed, false)
	}
	ns := c.nodes[node]
	ns.term = lead.term
	c.reconcileLocked(lead, ns)
	_, err := c.proposeLocked("member", strconv.Itoa(node)+sep+"join", &effects)
	c.storeViewLocked(now)
	c.mu.Unlock()
	c.runEffects(effects)
	return err
}

// ProposeRemove retires a node: a committed "leave" entry drains it and
// relocates its slices off (the evacuation side effect), then a
// committed "remove" tombstone drops it permanently. Safe to retry — a
// half-done removal (leave committed, remove not) resumes at the
// tombstone.
func (c *Cluster) ProposeRemove(node int) error {
	now := c.clock.Now()
	var effects []func()
	c.mu.Lock()
	if node < 0 || node >= len(c.nodes) {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no node %d", node)
	}
	if c.removed[node] {
		c.mu.Unlock()
		return nil
	}
	if c.joining[node] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %d is still joining", node)
	}
	lead := c.currentLeaderLocked()
	if lead == nil {
		c.mu.Unlock()
		return ErrNoLeader
	}
	if lead.id == node {
		c.mu.Unlock()
		return ErrRemoveLeader
	}
	if c.votersLocked() <= 3 {
		c.mu.Unlock()
		return ErrTooFewVoters
	}
	var err error
	if !c.leaving[node] {
		if _, err = c.proposeLocked("member", strconv.Itoa(node)+sep+"leave", &effects); err != nil {
			c.storeViewLocked(now)
			c.mu.Unlock()
			c.runEffects(effects)
			return err
		}
	}
	_, err = c.proposeLocked("member", strconv.Itoa(node)+sep+"remove", &effects)
	c.storeViewLocked(now)
	c.mu.Unlock()
	c.runEffects(effects)
	return err
}

// nodeJoined runs the committed-join side effects: the new node's disks
// join every attached pool, the disk→node table grows, and the ring's
// arc migration relocates at most (live/(N+1))·(1+MoveSlack) bytes of
// placement-group copies onto the new node. Relocated copies are marked
// stale at their new home, so the ordinary repair plane re-replicates
// them with real, charged I/O — "bytes moved" is re-replication work,
// not a teleport.
func (c *Cluster) nodeJoined(node int) {
	c.mu.Lock()
	poolCount := len(c.pools)
	c.mu.Unlock()
	newDisks := make([]map[pool.DiskID]bool, poolCount)
	for idx := 0; idx < poolCount; idx++ {
		c.mu.Lock()
		ap := c.pools[idx]
		c.mu.Unlock()
		if ap.perNode <= 0 {
			continue
		}
		ids := ap.p.AddDisks(ap.perNode, node)
		set := make(map[pool.DiskID]bool, len(ids))
		for _, d := range ids {
			set[d] = true
		}
		newDisks[idx] = set
		c.mu.Lock()
		for range ids {
			c.pools[idx].diskNode = append(c.pools[idx].diskNode, node)
		}
		c.mu.Unlock()
	}

	c.mu.Lock()
	pools := append([]attachedPool(nil), c.pools...)
	recs := append([]placementRec(nil), c.placements...)
	var total int64
	for _, ap := range pools {
		total += ap.p.Stats().Live
	}
	nNew := len(c.ringT.nodes())
	if nNew <= 0 {
		nNew = 1
	}
	rep := JoinReport{
		Node:       node,
		BoundBytes: int64(float64(total) / float64(nNew) * (1 + c.cfg.MoveSlack)),
	}
	type moveOp struct {
		idx int // pool index (target disk set)
		id  pool.SliceID
	}
	var ops []moveOp
	var est int64
	for _, rec := range recs {
		width := len(rec.slices)
		pref := c.ringT.place(rec.key, width, c.placeOKLocked)
		if !containsInt(pref, node) {
			continue
		}
		idx := -1
		for i, ap := range pools {
			if ap.p == rec.p {
				idx = i
				break
			}
		}
		if idx < 0 || newDisks[idx] == nil {
			continue
		}
		onNew, stale := false, false
		curNodes := make([]int, width)
		for i, id := range rec.slices {
			d, err := rec.p.SliceDisk(id)
			if err != nil {
				stale = true // group destroyed or migrated to another pool
				break
			}
			curNodes[i] = diskNodeOf(pools[idx], d)
			if curNodes[i] == node {
				onNew = true
			}
		}
		if stale || onNew {
			continue
		}
		vi := -1
		for i := width - 1; i >= 0; i-- {
			if curNodes[i] >= 0 && !containsInt(pref, curNodes[i]) {
				vi = i
				break
			}
		}
		if vi < 0 {
			rep.Skipped++
			continue
		}
		live := rec.p.SliceLive(rec.slices[vi])
		if live < 0 {
			continue
		}
		if est+live > rep.BoundBytes {
			rep.Skipped++
			continue
		}
		est += live
		ops = append(ops, moveOp{idx: idx, id: rec.slices[vi]})
	}
	c.mu.Unlock()

	for _, op := range ops {
		if _, err := pools[op.idx].p.RelocateTo(op.id, newDisks[op.idx]); err == nil {
			rep.MovedSlices++
		}
	}
	// Every copy now sitting on the new node's disks arrived empty:
	// mark it stale so repair rebuilds it from its group peers.
	mgrs := distinctManagers(pools)
	for idx, set := range newDisks {
		if len(set) == 0 {
			continue
		}
		for _, mgr := range mgrs {
			rep.MovedBytes += mgr.MarkDisksStale(pools[idx].p, set)
		}
	}

	c.mu.Lock()
	c.stats.JoinMovedBytes += rep.MovedBytes
	c.lastJoin = rep
	cb := c.onMember
	c.storeViewLocked(c.clock.Now())
	c.mu.Unlock()
	if cb != nil {
		cb(node, true)
	}
}

// nodeLeaving runs the committed-leave side effects: every placement
// copy on the leaving node relocates to a surviving domain (stale at
// its new home, repaired from group peers) and its stream workers hand
// off.
func (c *Cluster) nodeLeaving(node int) {
	c.mu.Lock()
	pools := append([]attachedPool(nil), c.pools...)
	cb := c.onMember
	c.mu.Unlock()
	var moved int64
	mgrs := distinctManagers(pools)
	for _, ap := range pools {
		disks := nodeDisksOf(ap, node)
		if len(disks) == 0 {
			continue
		}
		for _, mgr := range mgrs {
			_, b := mgr.EvacuateDisks(ap.p, disks)
			moved += b
		}
	}
	c.mu.Lock()
	c.stats.EvacuatedBytes += moved
	c.storeViewLocked(c.clock.Now())
	c.mu.Unlock()
	if cb != nil {
		cb(node, false)
	}
}

// nodeRemoved runs the tombstone side effects: the departed node's
// disks fail permanently so no allocation or read ever lands there
// again. Its slices were already evacuated by the leave leg.
func (c *Cluster) nodeRemoved(node int) {
	c.mu.Lock()
	pools := append([]attachedPool(nil), c.pools...)
	c.mu.Unlock()
	for _, ap := range pools {
		for _, d := range sortedDiskIDs(nodeDisksOf(ap, node)) {
			ap.p.FailDisk(d)
		}
	}
	c.mu.Lock()
	c.storeViewLocked(c.clock.Now())
	c.mu.Unlock()
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
