package plog

import (
	"testing"
	"time"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

type scriptHook struct{ fail map[pool.DiskID]bool }

func (h *scriptHook) BeforeWrite(d pool.DiskID, n int64) (time.Duration, error) {
	if h.fail[d] {
		return 0, pool.ErrDiskFailed
	}
	return 0, nil
}
func (h *scriptHook) BeforeRead(d pool.DiskID, n int64) (time.Duration, error) { return 0, nil }

func TestAllReplicasStale(t *testing.T) {
	p := pool.New("plogtest", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 1<<20)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	h := &scriptHook{fail: map[pool.DiskID]bool{}}
	p.SetFaultHook(h)
	// Append 1: replica on disk of slice 0 fails -> stale.
	d0 := l.Placement()[0].Disk
	d1 := l.Placement()[1].Disk
	d2 := l.Placement()[2].Disk
	h.fail = map[pool.DiskID]bool{d0: true}
	if _, _, err := l.Append(make([]byte, 100)); err != nil {
		t.Fatalf("append1: %v", err)
	}
	// Append 2: the other two replicas fail; only the already-stale one lands.
	h.fail = map[pool.DiskID]bool{d1: true, d2: true}
	if _, _, err := l.Append(make([]byte, 100)); err != nil {
		t.Fatalf("append2 returned error: %v", err)
	}
	h.fail = map[pool.DiskID]bool{}
	if _, _, err := l.Read(0, 100); err != nil {
		t.Logf("Read after two successful appends: %v", err)
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Logf("RepairStale: %v", err)
	}
	t.Logf("stale after repair: %v, fullyRedundant=%v", l.Stale(), l.FullyRedundant())
}
