package plog

import (
	"streamlake/internal/pool"
)

// Placement-aware reads (locality.go): in a multi-node deployment every
// replicated log keeps one copy per node failure domain, so a reader
// co-located with one of them can be served without crossing domains.
// SetLocalReads installs the "is this disk local to the requester?"
// predicate; the read path then tries local copies first and falls back
// to remote ones under exactly the conditions that always forced
// fallback — the local copy is stale, quarantined, corrupt, or its disk
// failed — plus one new early demotion: a local copy on an avoided
// (suspect/draining-node) disk yields to trusted remote copies rather
// than betting the read on a disk the detector distrusts. Hedging still
// races a second replica when the chosen copy is slow, which is the
// cross-domain degrade path for a merely slow local disk.

// SetLocalReads installs (or clears, with nil) the shared read-locality
// preference. The predicate receives the log's own pool — a log
// migrated to another tier resolves against that pool's disk space —
// and must not call back into the plog layer.
func (m *Manager) SetLocalReads(f func(p *pool.Pool, d pool.DiskID) bool) {
	if f == nil {
		m.locality.Store(nil)
		return
	}
	m.locality.Store(&f)
}

// localOrderLocked returns the copy-index order a locality-aware read
// should try, or nil when no preference is installed (the legacy
// index-order path, allocation-free). Local copies on trusted disks
// come first, then everything else in index order — the relative order
// within each class is preserved, so the fallback behavior stays
// deterministic.
func (l *PLog) localOrderLocked() []int {
	if l.locality == nil {
		return nil
	}
	fp := l.locality.Load()
	if fp == nil {
		return nil
	}
	pref := *fp
	local := make([]bool, len(l.slices))
	count := 0
	for i, s := range l.slices {
		if pref(l.pool, s.Disk) && !l.pool.DiskAvoided(s.Disk) {
			local[i] = true
			count++
		}
	}
	if count == 0 || count == len(l.slices) {
		return nil // no local copy (or all local): index order is already right
	}
	order := make([]int, 0, len(l.slices))
	for i := range l.slices {
		if local[i] {
			order = append(order, i)
		}
	}
	for i := range l.slices {
		if !local[i] {
			order = append(order, i)
		}
	}
	return order
}
