package plog

import (
	"bytes"
	"testing"
)

// TestECRaggedTailReconstructBitExact is the regression for the
// EC-reconstruct shard-padding audit: extents whose lengths don't
// divide by K produce ragged final shards (the tail shard is
// zero-padded to the stripe's shard length), and the re-computed
// per-shard checksums (expectedSumLocked) must pad exactly the way the
// encoder (ec.Split) did or verification would misfire on every ragged
// extent. The scenario stacks the hazards: ragged lengths, a degraded
// append (one shard column missing), a corrupted tail extent, and
// repair — the read must return bit-exact bytes at every step.
func TestECRaggedTailReconstructBitExact(t *testing.T) {
	p, m := newTestManager(t, 8)
	l, err := m.Create(EC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Lengths chosen so len%K cycles through 1..3 and one extent is
	// shorter than K entirely (shard length 1, three padded columns).
	lengths := []int{5, 7, 13, 3, 41}
	var payloads [][]byte
	var offsets []int64
	for i, n := range lengths {
		pl := payload(n, byte(11*i+1))
		off, _, aerr := l.Append(pl)
		if aerr != nil {
			t.Fatal(aerr)
		}
		payloads, offsets = append(payloads, pl), append(offsets, off)
	}
	// Degraded ragged append: one shard column dies, the write lands
	// under EC(4,2)'s two-loss tolerance.
	dead := l.slices[2].Disk
	p.FailDisk(dead)
	pl := payload(9, 99) // 9 % 4 = 1: ragged tail again
	off, _, err := l.Append(pl)
	if err != nil {
		t.Fatalf("degraded ragged append: %v", err)
	}
	payloads, offsets = append(payloads, pl), append(offsets, off)
	p.ReviveDisk(dead)

	// Corrupt the tail extent on the first data shard and read through
	// it: verification must catch the flip and reconstruct bit-exactly
	// from the surviving shards, padding included.
	tail := len(payloads) - 1
	if ok, cerr := l.CorruptCopy(0, tail); cerr != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, cerr)
	}
	for i := range payloads {
		got, _, rerr := l.Read(offsets[i], int64(len(payloads[i])))
		if rerr != nil {
			t.Fatalf("read extent %d: %v", i, rerr)
		}
		if !bytes.Equal(got, payloads[i]) {
			t.Fatalf("extent %d not bit-exact after corruption: got %x want %x", i, got, payloads[i])
		}
	}
	st := l.IntegrityStats()
	if st.Mismatches == 0 {
		t.Fatal("corrupted tail extent was never detected")
	}
	if l.FullyRedundant() {
		t.Fatal("corrupt + degraded columns not tracked as stale")
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair did not restore full redundancy")
	}
	mismatches := l.IntegrityStats().Mismatches
	for i := range payloads {
		got, _, rerr := l.Read(offsets[i], int64(len(payloads[i])))
		if rerr != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("extent %d not bit-exact after repair: %v", i, rerr)
		}
	}
	if st := l.IntegrityStats(); st.Mismatches != mismatches {
		t.Fatalf("repaired shards failed re-verification: %+v", st)
	}
}

// TestECRaggedTailCompressedRoundTrip is the compression-on property
// extension: the same ragged-tail hazard stack (lengths that don't
// divide by K, a degraded append, tail corruption, repair) run against
// a log whose extents compressed as they migrated to the cold pool. The
// CRC sidecar is keyed over uncompressed bytes, so every step — the
// corrupt-copy detection, the EC reconstruct, the repair, the promote
// back to raw — must behave exactly as it does on a raw log and the
// reads must stay bit-exact throughout.
func TestECRaggedTailCompressedRoundTrip(t *testing.T) {
	p, m := newTestManager(t, 8)
	hdd := newHDDPool(8)
	m.SetCompression(hdd)
	l, err := m.Create(EC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	lengths := []int{5, 7, 13, 3, 41, 1027}
	var payloads [][]byte
	var offsets []int64
	for i, n := range lengths {
		pl := payload(n, byte(11*i+1))
		off, _, aerr := l.Append(pl)
		if aerr != nil {
			t.Fatal(aerr)
		}
		payloads, offsets = append(payloads, pl), append(offsets, off)
	}
	// Degraded ragged append before the migration: one shard column is
	// missing, and the compressing migrate must leave that hole a hole.
	dead := l.slices[2].Disk
	p.FailDisk(dead)
	pl := payload(9, 99)
	off, _, err := l.Append(pl)
	if err != nil {
		t.Fatalf("degraded ragged append: %v", err)
	}
	payloads, offsets = append(payloads, pl), append(offsets, off)
	p.ReviveDisk(dead)

	if _, err := l.Migrate(hdd); err != nil {
		t.Fatalf("compressing migrate: %v", err)
	}
	if !l.Compressed() {
		t.Fatal("log not compressed on the cold pool")
	}
	readAll := func(stage string) {
		t.Helper()
		for i := range payloads {
			got, _, rerr := l.Read(offsets[i], int64(len(payloads[i])))
			if rerr != nil {
				t.Fatalf("%s: read extent %d: %v", stage, i, rerr)
			}
			if !bytes.Equal(got, payloads[i]) {
				t.Fatalf("%s: extent %d not bit-exact", stage, i)
			}
		}
	}
	readAll("compressed")

	// Corrupt the tail extent on the first data shard: the compressed
	// read must detect it (CRC over uncompressed bytes) and reconstruct
	// from surviving columns, padding included.
	tail := len(payloads) - 1
	if ok, cerr := l.CorruptCopy(0, tail); cerr != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, cerr)
	}
	readAll("compressed+corrupt")
	if st := l.IntegrityStats(); st.Mismatches == 0 {
		t.Fatal("corrupted tail extent was never detected on the compressed log")
	}
	if l.FullyRedundant() {
		t.Fatal("corrupt + degraded columns not tracked as stale")
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatalf("repair on compressed log: %v", err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair did not restore full redundancy on the compressed log")
	}
	mismatches := l.IntegrityStats().Mismatches
	readAll("compressed+repaired")
	if st := l.IntegrityStats(); st.Mismatches != mismatches {
		t.Fatalf("repaired compressed shards failed re-verification: %+v", st)
	}
	if res, serr := l.Scrub(); serr != nil || res.Mismatches != 0 {
		t.Fatalf("compressed scrub after repair: %+v %v", res, serr)
	}

	// Promote back to the hot pool: extents decompress, state clears,
	// and everything still reads bit-exact.
	if _, err := l.Migrate(p); err != nil {
		t.Fatalf("decompressing migrate: %v", err)
	}
	if l.Compressed() {
		t.Fatal("log still compressed after promoting off the cold pool")
	}
	readAll("promoted")
	poolEmpty(t, hdd)
}
