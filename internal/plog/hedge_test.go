package plog

import (
	"bytes"
	"testing"
	"time"

	"streamlake/internal/pool"
)

// slowDiskHook adds a fixed latency to every read of one disk — a
// sick-but-alive device, the scenario hedged reads exist for.
type slowDiskHook struct {
	disk  pool.DiskID
	extra time.Duration
}

func (h *slowDiskHook) BeforeWrite(disk pool.DiskID, n int64) (time.Duration, error) {
	return 0, nil
}

func (h *slowDiskHook) BeforeRead(disk pool.DiskID, n int64) (time.Duration, error) {
	if disk == h.disk {
		return h.extra, nil
	}
	return 0, nil
}

// hedgeEnv builds a 3-replica log with payload written and the hedge
// latency tracker warmed on healthy reads, then slows the primary
// copy's disk by 2ms.
func hedgeEnv(t *testing.T, cfg HedgeConfig, enable bool) (*Manager, *PLog, []byte) {
	t.Helper()
	m := newManager(t, 3)
	if enable {
		m.SetHedge(cfg)
	}
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("hedge me "), 512)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ { // warm the latency tracker on healthy reads
		if _, _, err := l.Read(0, int64(len(payload))); err != nil {
			t.Fatal(err)
		}
	}
	l.pool.SetFaultHook(&slowDiskHook{disk: l.slices[0].Disk, extra: 2 * time.Millisecond})
	return m, l, payload
}

func TestHedgedReadBeatsSlowPrimary(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	m, l, payload := hedgeEnv(t, cfg, true)

	data, cost, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	// The primary costs 2ms+; the hedge (threshold + healthy replica)
	// finishes far earlier and the requester observes that.
	if cost >= time.Millisecond {
		t.Fatalf("hedge did not cut requester latency: cost=%v", cost)
	}
	st := m.HedgeStats()
	if st.Hedged == 0 || st.Wins == 0 || st.Saved <= 0 {
		t.Fatalf("hedge stats: %+v", st)
	}

	// Same scenario with hedging disabled: the requester eats the slow
	// primary.
	_, l2, payload2 := hedgeEnv(t, HedgeConfig{}, false)
	_, cost2, err := l2.Read(0, int64(len(payload2)))
	if err != nil {
		t.Fatal(err)
	}
	if cost2 < 2*time.Millisecond {
		t.Fatalf("unhedged read should eat the 2ms primary: cost=%v", cost2)
	}
}

// TestHedgeChargesBothReadsToDevices: hedging trades extra device time
// for requester latency — the win must not refund the primary's I/O.
func TestHedgeChargesBothReadsToDevices(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	_, l, payload := hedgeEnv(t, cfg, true)
	readBytes := func() (total int64) {
		for i := 0; i < l.pool.DiskCount(); i++ {
			total += l.pool.DiskStats(pool.DiskID(i)).ReadBytes
		}
		return total
	}
	before := readBytes()
	if _, _, err := l.Read(0, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	gotBytes := readBytes() - before
	if want := 2 * int64(len(payload)); gotBytes != want {
		t.Fatalf("hedged read charged %d device bytes, want %d (primary + hedge)", gotBytes, want)
	}
}

// TestHedgeColdTrackerStaysOff: until MinSamples primary reads are
// observed, nothing hedges no matter how slow the primary is.
func TestHedgeColdTrackerStaysOff(t *testing.T) {
	m := newManager(t, 3)
	m.SetHedge(HedgeConfig{Enabled: true, MinSamples: 1000})
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("cold start")
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.pool.SetFaultHook(&slowDiskHook{disk: l.slices[0].Disk, extra: 2 * time.Millisecond})
	if _, cost, err := l.Read(0, int64(len(payload))); err != nil || cost < 2*time.Millisecond {
		t.Fatalf("cold tracker hedged anyway: cost=%v err=%v", cost, err)
	}
	if st := m.HedgeStats(); st.Hedged != 0 {
		t.Fatalf("cold tracker hedged: %+v", st)
	}
}
