// Block-checksum integrity layer for PLogs. Every Append records one
// extent, and every placement copy (replica or EC shard column) of that
// extent carries a CRC-32C (Castagnoli) checksum "on disk": for
// replication the checksum of the payload itself, for erasure coding the
// checksum of the copy's shard column produced by a real Reed-Solomon
// encode. Reads verify the copy they serve and transparently fall back
// to a healthy replica — or EC-reconstruct from surviving shards — when
// a stored checksum disagrees with the data, so silent corruption is
// surfaced as a counter and a repair-queue entry, never as wrong bytes.
//
// The simulated substrate keeps the logical bytes once (PLog.buf) and
// models per-copy state separately, so a latent bit flip on one copy is
// modeled as damage to that copy's stored checksum: the copy's data and
// checksum no longer agree with the payload the log is known to hold.
// Verification recomputes the CRC from the authoritative bytes (for
// replication and EC data columns; parity columns compare against the
// encode-time value) and compares it with what the copy "stored".
//
// Locking: integrity state lives under its own mutex (imu) so the fault
// injector can flip stored checksums from pool-hook context — which runs
// while mu is held by an in-flight append — without deadlocking. Lock
// order: mu may be held when taking imu, never the reverse, and imu is
// never held across pool I/O.
package plog

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

// castagnoli is the CRC-32C table used for every block checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// corruptionMask is XORed into a copy's true checksum to model a latent
// bit flip. Corrupting an already-corrupt copy keeps it corrupt (the
// stored value is derived from the true sum, not flipped back and
// forth).
const corruptionMask uint32 = 0xDEADBEEF

// extent is one appended record: the byte range [off, off+len) of the
// logical stream.
type extent struct {
	off, len int64
}

// IntegrityStats counts checksum activity on a log or across a manager.
type IntegrityStats struct {
	Verifications int64 // extent-copy checksum checks performed
	Mismatches    int64 // checks where the stored checksum disagreed
	FallbackReads int64 // reads served after skipping a corrupt copy
	Injected      int64 // corruption events landed on this log's copies
	Quarantined   int64 // bytes marked stale because of mismatches
}

func (a IntegrityStats) add(b IntegrityStats) IntegrityStats {
	a.Verifications += b.Verifications
	a.Mismatches += b.Mismatches
	a.FallbackReads += b.FallbackReads
	a.Injected += b.Injected
	a.Quarantined += b.Quarantined
	return a
}

// CorruptionEvent describes one injected silent corruption.
type CorruptionEvent struct {
	Log      ID
	SliceIdx int
	Disk     pool.DiskID
	Extent   int
}

func (e CorruptionEvent) String() string {
	return fmt.Sprintf("log %d copy %d (disk %d) extent %d", e.Log, e.SliceIdx, e.Disk, e.Extent)
}

// recordExtent computes and stores the per-copy checksums for a freshly
// appended extent. failed lists the placement indices whose write was
// absorbed as a degraded write; those copies get no checksum (the bytes
// never landed) and are caught up by repair.
func (l *PLog) recordExtent(off int64, data []byte, failed []int) {
	width := l.red.Width()
	true_ := make([]uint32, width)
	if l.codec != nil {
		stripe, err := l.codec.Encode(l.codec.Split(data))
		if err != nil {
			// Cannot happen: Split always yields k equal shards.
			panic(fmt.Sprintf("plog: encode for checksum: %v", err))
		}
		for i := 0; i < width; i++ {
			true_[i] = crc32.Checksum(stripe[i], castagnoli)
		}
	} else {
		sum := crc32.Checksum(data, castagnoli)
		for i := 0; i < width; i++ {
			true_[i] = sum
		}
	}
	missed := make(map[int]bool, len(failed))
	for _, i := range failed {
		missed[i] = true
	}
	l.imu.Lock()
	defer l.imu.Unlock()
	if l.copySums == nil {
		l.copySums = make([]map[int]uint32, width)
		for i := range l.copySums {
			l.copySums[i] = make(map[int]uint32)
		}
	}
	e := len(l.extents)
	l.extents = append(l.extents, extent{off: off, len: int64(len(data))})
	l.trueSums = append(l.trueSums, true_)
	for i := 0; i < width; i++ {
		if !missed[i] {
			l.copySums[i][e] = true_[i]
		}
	}
}

// overlapping returns the extent indices intersecting [off, off+n).
// Caller holds imu.
func (l *PLog) overlappingLocked(off, n int64) []int {
	if n <= 0 {
		return nil
	}
	end := off + n
	// Extents are appended in offset order; binary-search the first one
	// that ends past off.
	i := sort.Search(len(l.extents), func(i int) bool {
		return l.extents[i].off+l.extents[i].len > off
	})
	var out []int
	for ; i < len(l.extents) && l.extents[i].off < end; i++ {
		out = append(out, i)
	}
	return out
}

// expectedSum returns the checksum copy i must hold for extent e. For
// replication and EC data columns it re-runs the real CRC over the
// authoritative bytes; EC parity columns compare against the value
// computed by the encode at append time (re-encoding parity on every
// read would charge no different outcome at GF-math cost). Caller holds
// imu.
func (l *PLog) expectedSumLocked(i, e int) uint32 {
	ext := l.extents[e]
	data := l.buf[ext.off : ext.off+ext.len]
	if l.codec == nil {
		return crc32.Checksum(data, castagnoli)
	}
	k := l.red.K
	if i < k {
		shardLen := (int(ext.len) + k - 1) / k
		if shardLen == 0 {
			shardLen = 1
		}
		start := i * shardLen
		end := start + shardLen
		col := make([]byte, shardLen)
		if start < len(data) {
			if end > len(data) {
				end = len(data)
			}
			copy(col, data[start:end])
		}
		return crc32.Checksum(col, castagnoli)
	}
	return l.trueSums[e][i]
}

// verifyCopyRange checks copy i's stored checksums for every extent
// overlapping [off, off+n), returning the extents that failed
// verification. Extents the copy never stored (degraded writes already
// tracked as stale) are skipped. Caller holds mu; imu is taken here.
func (l *PLog) verifyCopyRange(i int, off, n int64) (bad []int) {
	l.imu.Lock()
	defer l.imu.Unlock()
	for _, e := range l.overlappingLocked(off, n) {
		stored, ok := l.copySums[i][e]
		if !ok {
			continue
		}
		l.integ.Verifications++
		if stored != l.expectedSumLocked(i, e) {
			l.integ.Mismatches++
			bad = append(bad, e)
		}
	}
	return bad
}

// missingIn reports whether copy i lacks any extent overlapping
// [off, off+n) — holes from degraded writes or quarantined corruption.
// A copy that is stale elsewhere can still serve ranges it holds
// intact, so reads check the requested range rather than the coarse
// per-copy stale counter.
func (l *PLog) missingIn(i int, off, n int64) bool {
	l.imu.Lock()
	defer l.imu.Unlock()
	if len(l.extents) == 0 {
		return false
	}
	for _, e := range l.overlappingLocked(off, n) {
		if _, ok := l.copySums[i][e]; !ok {
			return true
		}
	}
	return false
}

// corruptIn returns the first corrupt extent of copy i inside
// [off, off+n), or -1, without counting a verification — the peek the
// verify-disabled read path uses to model serving wrong bytes.
func (l *PLog) corruptIn(i int, off, n int64) int {
	l.imu.Lock()
	defer l.imu.Unlock()
	for _, e := range l.overlappingLocked(off, n) {
		if stored, ok := l.copySums[i][e]; ok && stored != l.expectedSumLocked(i, e) {
			return e
		}
	}
	return -1
}

// quarantine marks copy i's corrupt extents stale so the repair service
// rebuilds them, and drops their stored checksums so one corruption is
// detected (and counted) exactly once. Caller holds mu.
func (l *PLog) quarantine(i int, bad []int) {
	l.imu.Lock()
	quarantined := false
	for _, e := range bad {
		if _, ok := l.copySums[i][e]; !ok {
			continue
		}
		delete(l.copySums[i], e)
		per := l.red.shardSize(l.extents[e].len)
		if l.stale == nil {
			l.stale = make(map[int]int64)
		}
		l.stale[i] += per
		l.integ.Quarantined += per
		l.metrics.quarantined.Add(per)
		quarantined = true
	}
	l.imu.Unlock()
	if quarantined {
		// Media under this log proved untrustworthy; drop its cached
		// ranges so subsequent reads re-verify against the devices.
		l.invalidateCached()
	}
}

// restoreSums re-establishes copy i's checksums after repair rebuilt the
// copy from healthy peers: every extent the copy was missing now holds
// the true bytes again. Caller holds mu.
func (l *PLog) restoreSums(i int) {
	l.imu.Lock()
	defer l.imu.Unlock()
	if l.copySums == nil {
		return
	}
	for e := range l.extents {
		if _, ok := l.copySums[i][e]; !ok {
			l.copySums[i][e] = l.trueSums[e][i]
		}
	}
}

// corruptBytes returns a copy of data with one bit flipped inside the
// region covered by extent e — what a reader would see serving the
// corrupt copy with verification disabled.
func (l *PLog) corruptBytes(data []byte, off int64, e int) []byte {
	out := append([]byte(nil), data...)
	l.imu.Lock()
	pos := l.extents[e].off - off
	l.imu.Unlock()
	if pos < 0 {
		pos = 0
	}
	if pos < int64(len(out)) {
		out[pos] ^= 0x01
	}
	return out
}

// CorruptCopy flips the stored checksum of one copy's extent, modeling a
// latent bit flip at rest on that copy. It returns false when the target
// is already corrupt or the copy never stored the extent (stale from a
// degraded write). Safe to call from pool-hook context.
func (l *PLog) CorruptCopy(sliceIdx, ext int) (bool, error) {
	l.imu.Lock()
	defer l.imu.Unlock()
	if sliceIdx < 0 || sliceIdx >= l.red.Width() {
		return false, fmt.Errorf("plog: copy index %d out of range (width %d)", sliceIdx, l.red.Width())
	}
	if ext < 0 || ext >= len(l.extents) {
		return false, fmt.Errorf("plog: extent %d out of range (%d extents)", ext, len(l.extents))
	}
	stored, ok := l.copySums[sliceIdx][ext]
	if !ok {
		return false, nil
	}
	want := l.trueSums[ext][sliceIdx]
	if stored != want {
		return false, nil // already corrupt
	}
	l.copySums[sliceIdx][ext] = want ^ corruptionMask
	l.integ.Injected++
	return true, nil
}

// corruptCandidatesLocked counts the healthy (verifiable, not yet
// corrupt) extent-copies of the log, optionally restricted to copies
// whose slice currently lives on disk d (d < 0 means any disk). pick,
// when in range, corrupts the pick-th candidate and returns its event.
// Caller holds imu.
func (l *PLog) corruptCandidatesLocked(d pool.DiskID, pick int) (int, CorruptionEvent, bool) {
	n := 0
	for i := range l.copySums {
		if d >= 0 {
			if disk, err := l.pool.SliceDisk(l.slices[i].ID); err != nil || disk != d {
				continue
			}
		}
		// Deterministic order: extents ascending.
		for e := 0; e < len(l.extents); e++ {
			stored, ok := l.copySums[i][e]
			if !ok || stored != l.trueSums[e][i] {
				continue
			}
			if n == pick {
				l.copySums[i][e] = l.trueSums[e][i] ^ corruptionMask
				l.integ.Injected++
				disk, _ := l.pool.SliceDisk(l.slices[i].ID)
				return n + 1, CorruptionEvent{Log: l.id, SliceIdx: i, Disk: disk, Extent: e}, true
			}
			n++
		}
	}
	return n, CorruptionEvent{}, false
}

// IntegrityStats snapshots the log's checksum counters.
func (l *PLog) IntegrityStats() IntegrityStats {
	l.imu.Lock()
	defer l.imu.Unlock()
	return l.integ
}

// ScrubResult reports one full checksum verification of a log.
type ScrubResult struct {
	Extents       int           // extent-copies read and verified
	Bytes         int64         // physical bytes read for verification
	Mismatches    int           // corrupt extent-copies found (now quarantined)
	SkippedCopies int           // copies not verifiable (failed disk or already stale)
	Cost          time.Duration // device time charged for verification reads
}

// Scrub reads and verifies every copy of every extent — the whole
// redundancy set, not just a read quorum — charging the verification
// reads to the placement disks. Corrupt copies are quarantined as stale
// for the repair service. Copies on failed disks or already stale are
// skipped; they are the repair service's problem, not the scrubber's.
func (l *PLog) Scrub() (ScrubResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res ScrubResult
	l.imu.Lock()
	nExt := len(l.extents)
	l.imu.Unlock()
	for i, s := range l.slices {
		if l.stale[i] > 0 || l.pool.DiskFailed(s.Disk) || l.pool.DiskAvoided(s.Disk) {
			// Failed/stale copies are the repair service's problem;
			// avoided disks sit on suspect or draining nodes, where a
			// scrub read races the failure detector's verdict.
			res.SkippedCopies++
			continue
		}
		var bad []int
		readFailed := false
		for e := 0; e < nExt; e++ {
			l.imu.Lock()
			stored, ok := l.copySums[i][e]
			// A compressed extent is read at its on-device (compressed)
			// size and must decompress before its CRC — which stays
			// keyed over the uncompressed bytes — can be checked; both
			// collapse to the raw shard size and zero CPU on a raw log.
			per := l.compShardLocked(e)
			dec := l.decompressCostLocked(e)
			var want uint32
			if ok {
				want = l.expectedSumLocked(i, e)
			}
			l.imu.Unlock()
			if !ok {
				continue
			}
			c, err := l.pool.Read(s.ID, per)
			if err != nil {
				// Transient read fault mid-scrub: leave this copy for the
				// next pass rather than miscounting it as corrupt.
				readFailed = true
				break
			}
			res.Cost += c + dec
			res.Extents++
			res.Bytes += per
			l.imu.Lock()
			l.integ.Verifications++
			l.imu.Unlock()
			if stored != want {
				bad = append(bad, e)
			}
		}
		if readFailed {
			res.SkippedCopies++
			continue
		}
		if len(bad) > 0 {
			l.imu.Lock()
			l.integ.Mismatches += int64(len(bad))
			l.imu.Unlock()
			l.quarantine(i, bad)
			res.Mismatches += len(bad)
		}
	}
	return res, nil
}

// SetVerifyOnRead toggles checksum verification on every read across the
// manager's logs (on by default). Disabling it models a system without
// end-to-end integrity: reads that land on a corrupt copy silently
// return wrong bytes. Because cache fills must be verified, disabling
// verification also flushes and bypasses the read cache — resident
// verified bytes could otherwise diverge from what a raw device read
// would now return.
func (m *Manager) SetVerifyOnRead(v bool) {
	m.verify.Store(!v)
	if !v {
		if c := m.cache.Load(); c != nil {
			c.Flush()
		}
	}
}

// VerifyOnRead reports whether reads verify checksums.
func (m *Manager) VerifyOnRead() bool { return !m.verify.Load() }

// CorruptCopy flips the stored checksum of one copy's extent of one log.
func (m *Manager) CorruptCopy(id ID, sliceIdx, ext int) (bool, error) {
	l := m.Get(id)
	if l == nil {
		return false, fmt.Errorf("plog: no log %d", id)
	}
	return l.CorruptCopy(sliceIdx, ext)
}

// sortedLogs snapshots the live logs ordered by ID.
func (m *Manager) sortedLogs() []*PLog {
	m.mu.Lock()
	out := make([]*PLog, 0, len(m.logs))
	for _, l := range m.logs {
		out = append(out, l)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CorruptRandom corrupts one uniformly chosen healthy extent-copy across
// all live logs, driven by the caller's seeded RNG. ok is false when
// nothing is corruptible. Safe to call from pool-hook context.
func (m *Manager) CorruptRandom(rng *sim.RNG) (CorruptionEvent, bool) {
	return m.corruptRandom(pool.DiskID(-1), rng)
}

// CorruptRandomOnDisk corrupts one uniformly chosen healthy extent-copy
// currently placed on disk d — the background bit-flip injection target.
func (m *Manager) CorruptRandomOnDisk(d pool.DiskID, rng *sim.RNG) (CorruptionEvent, bool) {
	return m.corruptRandom(d, rng)
}

func (m *Manager) corruptRandom(d pool.DiskID, rng *sim.RNG) (CorruptionEvent, bool) {
	logs := m.sortedLogs()
	total := 0
	counts := make([]int, len(logs))
	for i, l := range logs {
		l.imu.Lock()
		// Disk-scoped corruption means "disk d of this manager's pool":
		// a log migrated to another pool must not alias on the bare
		// numeric disk id. Placement writers hold both mu and imu, so
		// reading l.pool under imu is safe from hook context.
		if d < 0 || l.pool == m.pool {
			counts[i], _, _ = l.corruptCandidatesLocked(d, -1)
		}
		l.imu.Unlock()
		total += counts[i]
	}
	if total == 0 {
		return CorruptionEvent{}, false
	}
	pick := rng.Intn(total)
	for i, l := range logs {
		if pick >= counts[i] {
			pick -= counts[i]
			continue
		}
		l.imu.Lock()
		_, ev, ok := l.corruptCandidatesLocked(d, pick)
		l.imu.Unlock()
		return ev, ok
	}
	return CorruptionEvent{}, false
}

// IntegrityStats sums checksum counters across all live logs.
func (m *Manager) IntegrityStats() IntegrityStats {
	var total IntegrityStats
	for _, l := range m.sortedLogs() {
		total = total.add(l.IntegrityStats())
	}
	return total
}
