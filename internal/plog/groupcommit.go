// Group commit: the hot-path write coalescer of the "reunion" claim.
// Streaming produces many small slice flushes; issuing one placement
// write per slice pays the per-operation device overhead (seek/setup —
// the fsync-equivalent of the simulated substrate) once per slice per
// copy. AppendBatch coalesces a batch of payloads into ONE placement
// write per copy sized to the whole batch, so the overhead is charged
// once per batch per copy while every payload keeps its own extent and
// per-copy CRC sidecar — reads, scrub, corruption injection, repair and
// replay digests see exactly the extents a payload-at-a-time append
// would have produced.
package plog

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/pool"
)

// AppendBatch appends payloads back-to-back as one coalesced commit:
// each placement copy receives a single pool write covering the batch's
// physical bytes (the sum of the per-payload copy/shard sizes — the
// same byte accounting as appending one at a time, in one operation).
//
// Degraded-write semantics are batch-granular: a copy that misses the
// coalesced write misses every payload in it and goes stale for the
// repair service; when the surviving copies no longer satisfy the
// policy's fault tolerance the whole batch rolls back all-or-nothing
// and pool accounting is left untouched. The returned offsets are the
// starting offsets of each payload; cost is the slowest parallel
// placement write, exactly as in AppendSpan.
func (l *PLog) AppendBatch(payloads [][]byte, sp *obs.Span) (offsets []int64, cost time.Duration, err error) {
	if len(payloads) == 0 {
		return nil, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return nil, 0, ErrSealed
	}
	var logical int64
	var phys int64 // per-copy physical bytes: sum of per-payload shard sizes
	for _, p := range payloads {
		logical += int64(len(p))
		phys += l.red.shardSize(int64(len(p)))
	}
	if int64(len(l.buf))+logical > l.capacity {
		return nil, 0, ErrFull
	}
	var ok []pool.SliceID
	var failed []int
	var max time.Duration
	for i, s := range l.slices {
		d, werr := l.pool.Write(s.ID, phys)
		if werr != nil {
			failed = append(failed, i)
			continue
		}
		if sp != nil {
			w := sp.Child("pool.write")
			w.SetAttr("disk", strconv.Itoa(int(s.Disk)))
			w.SetAttr("batch", strconv.Itoa(len(payloads)))
			w.End(d)
		}
		ok = append(ok, s.ID)
		if d > max {
			max = d
		}
	}
	if len(ok) < l.red.required() {
		// Beyond fault tolerance: all-or-nothing, refund the survivors.
		for _, id := range ok {
			l.pool.RollbackWrite(id, phys)
		}
		return nil, 0, fmt.Errorf("%w: %d of %d placement writes failed",
			ErrUnavailable, len(failed), len(l.slices))
	}
	sp.Advance(max) // the slowest parallel write gates the commit
	for _, i := range failed {
		if l.stale == nil {
			l.stale = make(map[int]int64)
		}
		l.stale[i] += phys
	}
	offsets = make([]int64, len(payloads))
	for i, p := range payloads {
		offsets[i] = int64(len(l.buf))
		l.buf = append(l.buf, p...)
		l.recordExtent(offsets[i], p, failed)
	}
	l.metrics.appendLat.Observe(max)
	l.metrics.appendBytes.Add(logical)
	l.metrics.groupCommits.Inc()
	l.metrics.groupPayloads.Add(int64(len(payloads)))
	if len(failed) > 0 {
		l.metrics.degradedOps.Inc()
		l.invalidateCached()
	}
	return offsets, max, nil
}

// GroupCommitStats counts the coalescing work a GroupCommitter has
// coordinated.
type GroupCommitStats struct {
	Commits           int64 // coalesced device commits issued
	Payloads          int64 // slice flushes folded into them
	SavedDeviceWrites int64 // placement writes avoided vs one per payload
}

// GroupCommitter is the commit coordinator the stream-object flush path
// enqueues into: it owns the grouping policy (how many slices to fold
// into one device commit) and the accounting of how much device work
// coalescing saved. The committer holds no buffered data itself — the
// records being grouped stay journal-durable and readable in the stream
// object's open buffer until the coalesced AppendBatch lands — so a
// crash between group commits loses nothing that was acknowledged.
type GroupCommitter struct {
	target int

	mu    sync.Mutex
	stats GroupCommitStats
}

// NewGroupCommitter builds a coordinator folding up to `slices` slice
// flushes into one device commit. Values below 2 mean no coalescing.
func NewGroupCommitter(slices int) *GroupCommitter {
	if slices < 1 {
		slices = 1
	}
	return &GroupCommitter{target: slices}
}

// Target reports how many slices the coordinator folds per commit.
func (g *GroupCommitter) Target() int { return g.target }

// Note records one coalesced commit of n payloads across a placement
// group of the given width.
func (g *GroupCommitter) Note(payloads, width int) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.stats.Commits++
	g.stats.Payloads += int64(payloads)
	if payloads > 1 {
		g.stats.SavedDeviceWrites += int64(payloads-1) * int64(width)
	}
	g.mu.Unlock()
}

// Stats snapshots the coordinator's counters.
func (g *GroupCommitter) Stats() GroupCommitStats {
	if g == nil {
		return GroupCommitStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}
