package plog

import (
	"bytes"
	"errors"
	"testing"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newTestManager(t *testing.T, disks int) (*pool.Pool, *Manager) {
	t.Helper()
	p := pool.New("integ", sim.NewClock(), sim.NVMeSSD, disks, 1<<20)
	return p, NewManager(p, 1<<20)
}

func payload(n int, seed byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = seed + byte(i%31)
	}
	return out
}

// TestVerifyOnReadFallbackReplicated corrupts the first replica and
// checks the read transparently serves a healthy one, quarantines the
// bad copy, and repair restores full redundancy.
func TestVerifyOnReadFallbackReplicated(t *testing.T) {
	_, m := newTestManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	want := payload(512, 3)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	// Reads go to copy 0 first; corrupt exactly that one.
	if ok, err := l.CorruptCopy(0, 0); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	got, _, err := l.Read(0, 512)
	if err != nil {
		t.Fatalf("read with corrupt copy: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read returned wrong bytes despite verification")
	}
	st := l.IntegrityStats()
	if st.Mismatches != 1 || st.FallbackReads != 1 || st.Injected != 1 {
		t.Fatalf("integrity stats: %+v", st)
	}
	if l.FullyRedundant() {
		t.Fatal("corrupt copy not quarantined as stale")
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair did not restore redundancy")
	}
	// The repaired copy verifies again: no new mismatches on re-read.
	if got, _, err := l.Read(0, 512); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after repair: %v", err)
	}
	if st := l.IntegrityStats(); st.Mismatches != 1 {
		t.Fatalf("mismatch recounted after repair: %+v", st)
	}
}

// TestVerifyDisabledServesCorruptBytes shows the baseline without the
// integrity layer: a corrupt copy is served as-is.
func TestVerifyDisabledServesCorruptBytes(t *testing.T) {
	_, m := newTestManager(t, 3)
	m.SetVerifyOnRead(false)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	want := payload(256, 9)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	if ok, err := l.CorruptCopy(0, 0); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	got, _, err := l.Read(0, 256)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("verification disabled yet corrupt copy served correct bytes")
	}
	// Turning verification back on catches it.
	m.SetVerifyOnRead(true)
	got, _, err = l.Read(0, 256)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read with verification restored: %v", err)
	}
}

// TestECCorruptShardReconstructs corrupts one EC shard column and
// verifies the read excludes it, decodes from the survivors, and repair
// re-encodes it (exercising the real decoder).
func TestECCorruptShardReconstructs(t *testing.T) {
	_, m := newTestManager(t, 6)
	l, err := m.Create(EC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := payload(1024, 17)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	// Corrupt a data column and a parity column in turn.
	for _, col := range []int{1, 5} {
		if ok, err := l.CorruptCopy(col, 0); err != nil || !ok {
			t.Fatalf("CorruptCopy(%d): ok=%v err=%v", col, ok, err)
		}
	}
	got, _, err := l.Read(0, 1024)
	if err != nil {
		t.Fatalf("read with 2 corrupt shards: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("EC read returned wrong bytes")
	}
	if st := l.IntegrityStats(); st.Mismatches < 1 {
		t.Fatalf("no mismatch recorded: %+v", st)
	}
	if l.FullyRedundant() {
		t.Fatal("corrupt shards not quarantined")
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair did not restore EC redundancy")
	}
	if got, _, err := l.Read(0, 1024); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("read after EC repair: %v", err)
	}
}

// TestECDoubleFaultBoundary drives EC(4,2) to its tolerance boundary
// with mixed faults: one killed disk plus one corrupt shard is exactly
// tolerable; a third fault must yield ErrUnavailable, never wrong
// bytes.
func TestECDoubleFaultBoundary(t *testing.T) {
	p, m := newTestManager(t, 6)
	l, err := m.Create(EC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	want := payload(2048, 29)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	// Fault 1: kill the disk under shard 0.
	if err := p.FailDisk(l.Placement()[0].Disk); err != nil {
		t.Fatal(err)
	}
	// Fault 2: silently corrupt shard 2.
	if ok, err := l.CorruptCopy(2, 0); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	got, _, err := l.Read(0, 2048)
	if err != nil {
		t.Fatalf("read at tolerance boundary (1 dead + 1 corrupt): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("boundary read returned wrong bytes")
	}
	// Fault 3: corrupt another shard — beyond tolerance. The corruption
	// must surface as unavailability, not silent wrong bytes.
	if ok, err := l.CorruptCopy(4, 0); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	if got, _, err := l.Read(0, 2048); err == nil {
		if !bytes.Equal(got, want) {
			t.Fatal("read beyond tolerance returned WRONG bytes")
		}
		t.Fatal("read beyond tolerance succeeded")
	} else if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
}

// TestScrubFindsCorruptionOffTheReadPath corrupts a replica that reads
// never touch (the last copy) and shows only the scrubber finds it —
// the verify-all-copies-not-just-the-quorum property.
func TestScrubFindsCorruptionOffTheReadPath(t *testing.T) {
	_, m := newTestManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	want := payload(300, 7)
	for i := 0; i < 4; i++ {
		if _, _, err := l.Append(want); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt extent 2 of the LAST replica; reads serve copy 0.
	if ok, err := l.CorruptCopy(2, 2); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	for off := int64(0); off < 1200; off += 300 {
		if got, _, err := l.Read(off, 300); err != nil || !bytes.Equal(got, want) {
			t.Fatalf("read: %v", err)
		}
	}
	if st := l.IntegrityStats(); st.Mismatches != 0 {
		t.Fatalf("read path touched the corrupt copy: %+v", st)
	}
	res, err := l.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 1 {
		t.Fatalf("scrub found %d mismatches, want 1 (%+v)", res.Mismatches, res)
	}
	if res.Extents == 0 || res.Bytes == 0 {
		t.Fatalf("scrub did no verification I/O: %+v", res)
	}
	if l.FullyRedundant() {
		t.Fatal("scrub did not quarantine the corrupt copy")
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	// A second scrub pass is clean.
	res2, _ := l.Scrub()
	if res2.Mismatches != 0 {
		t.Fatalf("second scrub still dirty: %+v", res2)
	}
}

// TestCorruptRandomDeterministic verifies the seeded random corruption
// picker replays bit-for-bit.
func TestCorruptRandomDeterministic(t *testing.T) {
	run := func() []CorruptionEvent {
		_, m := newTestManager(t, 4)
		for i := 0; i < 3; i++ {
			l, err := m.Create(ReplicateN(3))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 3; j++ {
				if _, _, err := l.Append(payload(100, byte(i*3+j))); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := sim.NewRNG(42)
		var evs []CorruptionEvent
		for i := 0; i < 5; i++ {
			ev, ok := m.CorruptRandom(rng)
			if !ok {
				t.Fatal("nothing corruptible")
			}
			evs = append(evs, ev)
		}
		return evs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// Distinct picks: the picker never re-corrupts the same extent-copy.
	seen := map[CorruptionEvent]bool{}
	for _, ev := range a {
		if seen[ev] {
			t.Fatalf("duplicate corruption target %v", ev)
		}
		seen[ev] = true
	}
}

// TestCorruptRandomOnDiskTargetsDisk checks disk-scoped corruption only
// lands on copies placed on that disk.
func TestCorruptRandomOnDiskTargetsDisk(t *testing.T) {
	_, m := newTestManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	target := l.Placement()[1].Disk
	rng := sim.NewRNG(1)
	ev, ok := m.CorruptRandomOnDisk(target, rng)
	if !ok {
		t.Fatal("no candidate on target disk")
	}
	if ev.Disk != target || ev.SliceIdx != 1 {
		t.Fatalf("corruption landed on %+v, want disk %d", ev, target)
	}
}

// TestDegradedWriteThenCorruptionInterplay: a copy stale from a degraded
// write has no checksum for the missed extent; corruption can't target
// it, repair restores both the bytes and the checksums.
func TestDegradedWriteThenCorruptionInterplay(t *testing.T) {
	p, m := newTestManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	h := &scriptHook{fail: map[pool.DiskID]bool{}}
	p.SetFaultHook(h)
	want := payload(200, 5)
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	// Degrade copy 1 for the second extent.
	h.fail = map[pool.DiskID]bool{l.Placement()[1].Disk: true}
	if _, _, err := l.Append(want); err != nil {
		t.Fatal(err)
	}
	h.fail = map[pool.DiskID]bool{}
	if ok, _ := l.CorruptCopy(1, 1); ok {
		t.Fatal("corrupted an extent the copy never stored")
	}
	// Catch the copy up first: scrub skips stale copies (repair owns
	// them), so corruption is only scrubbable on fully-caught-up copies.
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	// Now corrupt an extent it holds. Repair alone can't see it — scrub
	// must detect (quarantine) before repair can fix it.
	if ok, err := l.CorruptCopy(1, 0); err != nil || !ok {
		t.Fatalf("CorruptCopy: ok=%v err=%v", ok, err)
	}
	if res, err := l.Scrub(); err != nil || res.Mismatches != 1 {
		t.Fatalf("scrub: %+v err=%v", res, err)
	}
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair left stale state")
	}
	if res, _ := l.Scrub(); res.Mismatches != 0 {
		t.Fatalf("post-repair scrub dirty: %+v", res)
	}
}
