package plog

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"streamlake/internal/pool"
)

// These are the suspect-node regression tests: a copy hosted on an
// avoided disk (the cluster marks suspect/dead nodes' disks avoided)
// must receive no hedge, scrub, or repair-source reads.

func readOps(p *pool.Pool, d pool.DiskID) int64 { return p.DiskStats(d).ReadOps }

func TestHedgeSkipsAvoidedCopy(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	m, l, payload := hedgeEnv(t, cfg, true)
	avoided := l.slices[1].Disk
	l.pool.SetAvoid(func(d pool.DiskID) bool { return d == avoided })
	before := readOps(l.pool, avoided)

	data, _, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("read returned wrong bytes")
	}
	if st := m.HedgeStats(); st.Hedged == 0 {
		t.Fatalf("slow primary should have hedged: %+v", st)
	}
	if got := readOps(l.pool, avoided); got != before {
		t.Fatalf("hedge read the avoided copy: readOps %d -> %d", before, got)
	}
}

func TestScrubSkipsAvoidedCopy(t *testing.T) {
	m := newManager(t, 3)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("scrub"), 1024)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	avoided := l.slices[2].Disk
	l.pool.SetAvoid(func(d pool.DiskID) bool { return d == avoided })
	before := readOps(l.pool, avoided)

	res, err := l.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 {
		t.Fatal("scrub verified nothing")
	}
	if got := readOps(l.pool, avoided); got != before {
		t.Fatalf("scrub read the avoided copy: readOps %d -> %d", before, got)
	}
}

func TestRepairSourceSkipsAvoidedCopy(t *testing.T) {
	m := newManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	// Degrade copy 0 by failing its disk across an append, then revive:
	// copy 0 is stale and needs repair from copies 1 or 2.
	staleDisk := l.slices[0].Disk
	l.pool.FailDisk(staleDisk)
	payload := bytes.Repeat([]byte("repair"), 1024)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.pool.ReviveDisk(staleDisk)

	// Veto copy 1's disk: repair must source from copy 2 alone.
	avoided := l.slices[1].Disk
	l.pool.SetAvoid(func(d pool.DiskID) bool { return d == avoided })
	before := readOps(l.pool, avoided)

	repaired, _, err := l.RepairStale()
	if err != nil {
		t.Fatal(err)
	}
	if repaired == 0 {
		t.Fatal("nothing repaired")
	}
	if got := readOps(l.pool, avoided); got != before {
		t.Fatalf("repair sourced from the avoided copy: readOps %d -> %d", before, got)
	}

	// Sanity: the repaired copy serves correct bytes.
	data, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("post-repair read: err=%v match=%v", err, bytes.Equal(data, payload))
	}
}

func TestRepairFallsBackWhenAllSourcesAvoided(t *testing.T) {
	m := newManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	staleDisk := l.slices[0].Disk
	l.pool.FailDisk(staleDisk)
	payload := bytes.Repeat([]byte("fallback"), 512)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	l.pool.ReviveDisk(staleDisk)

	// Every healthy source is vetoed: repair must still proceed (an
	// avoided copy beats data loss) rather than wedging the queue.
	l.pool.SetAvoid(func(d pool.DiskID) bool {
		return d == l.slices[1].Disk || d == l.slices[2].Disk
	})
	repaired, _, err := l.RepairStale()
	if err != nil {
		t.Fatalf("repair with only avoided sources: %v", err)
	}
	if repaired == 0 {
		t.Fatal("fallback repair did nothing")
	}
}

// TestAvoidFlipRace exercises concurrent avoid-hook flips against the
// hedged read path under -race: the hook is an atomic pointer, so
// readers and the flipper must not trip the race detector.
func TestAvoidFlipRace(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	_, l, payload := hedgeEnv(t, cfg, true)
	target := l.slices[1].Disk
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		on := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			on = !on
			if on {
				l.pool.SetAvoid(func(d pool.DiskID) bool { return d == target })
			} else {
				l.pool.SetAvoid(nil)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, _, err := l.Read(0, int64(len(payload))); err != nil {
			t.Errorf("read %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
