package plog

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newManager(t *testing.T, disks int) *Manager {
	t.Helper()
	p := pool.New("plogtest", sim.NewClock(), sim.NVMeSSD, disks, 1<<20)
	return NewManager(p, 1<<20) // 1 MiB logs keep tests snappy
}

func TestRedundancyPolicies(t *testing.T) {
	r3 := ReplicateN(3)
	if r3.Width() != 3 || r3.Overhead() != 3 || r3.FaultTolerance() != 2 {
		t.Fatalf("replicate(3): %+v", r3)
	}
	e := EC(4, 2)
	if e.Width() != 6 || e.Overhead() != 1.5 || e.FaultTolerance() != 2 {
		t.Fatalf("ec(4,2): %+v", e)
	}
	// The paper's headline: EC lifts disk utilization from 33% (3x
	// replication) to 91% (EC ~ 10+1).
	if u := 1 / ReplicateN(3).Overhead(); u > 0.34 || u < 0.33 {
		t.Fatalf("replication utilization %v", u)
	}
	if u := 1 / EC(10, 1).Overhead(); u < 0.90 {
		t.Fatalf("EC utilization %v", u)
	}
}

func TestCreateValidation(t *testing.T) {
	m := newManager(t, 6)
	for _, red := range []Redundancy{ReplicateN(0), EC(0, 1), EC(1, -1), EC(200, 100), {Kind: RedundancyKind(9)}} {
		if _, err := m.Create(red); err == nil {
			t.Fatalf("invalid policy accepted: %+v", red)
		}
	}
	if _, err := m.Create(ReplicateN(7)); err == nil {
		t.Fatal("placement wider than pool accepted")
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	m := newManager(t, 3)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("hello"), []byte("stream"), []byte("lake")}
	var offsets []int64
	for _, msg := range msgs {
		off, cost, err := l.Append(msg)
		if err != nil || cost <= 0 {
			t.Fatalf("append: off=%d cost=%v err=%v", off, cost, err)
		}
		offsets = append(offsets, off)
	}
	if offsets[0] != 0 || offsets[1] != 5 || offsets[2] != 11 {
		t.Fatalf("offsets: %v", offsets)
	}
	for i, msg := range msgs {
		got, cost, err := l.Read(offsets[i], int64(len(msg)))
		if err != nil || cost <= 0 {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("read %d: got %q", i, got)
		}
	}
}

func TestReadOutOfRange(t *testing.T) {
	m := newManager(t, 3)
	l, _ := m.Create(ReplicateN(2))
	l.Append([]byte("abc"))
	for _, tc := range []struct{ off, n int64 }{{-1, 1}, {0, 4}, {3, 1}, {0, -1}} {
		if _, _, err := l.Read(tc.off, tc.n); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("Read(%d,%d) err = %v", tc.off, tc.n, err)
		}
	}
	if _, _, err := l.Read(3, 0); err != nil { // empty read at end is legal
		t.Fatalf("empty read at end: %v", err)
	}
}

func TestSealAndCapacity(t *testing.T) {
	p := pool.New("cap", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 16)
	l, _ := m.Create(ReplicateN(2))
	if _, _, err := l.Append(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(make([]byte, 8)); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity append: %v", err)
	}
	if _, _, err := l.Append(make([]byte, 4)); err != nil {
		t.Fatalf("exact fill: %v", err)
	}
	l.Seal()
	if !l.Sealed() {
		t.Fatal("not sealed")
	}
	if _, _, err := l.Append([]byte("x")); !errors.Is(err, ErrSealed) {
		t.Fatalf("append to sealed: %v", err)
	}
	if _, _, err := l.Read(0, 16); err != nil {
		t.Fatalf("sealed read: %v", err)
	}
}

func TestPhysicalBytesMatchesOverhead(t *testing.T) {
	m := newManager(t, 8)
	data := make([]byte, 3000)

	rep, _ := m.Create(ReplicateN(3))
	rep.Append(data)
	if got := rep.PhysicalBytes(); got != 9000 {
		t.Fatalf("replication physical = %d, want 9000", got)
	}

	ecl, _ := m.Create(EC(4, 2))
	ecl.Append(data)
	// ceil(3000/4)=750 per shard, 6 shards = 4500 = 1.5x.
	if got := ecl.PhysicalBytes(); got != 4500 {
		t.Fatalf("EC physical = %d, want 4500", got)
	}
	if got := m.PhysicalBytes(); got != 13500 {
		t.Fatalf("manager physical = %d", got)
	}
	if got := m.LogicalBytes(); got != 6000 {
		t.Fatalf("manager logical = %d", got)
	}
}

func TestDegradedReadReplication(t *testing.T) {
	p := pool.New("deg", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(ReplicateN(3))
	l.Append([]byte("survive"))
	p.FailDisk(0)
	p.FailDisk(1)
	got, _, err := l.Read(0, 7)
	if err != nil || string(got) != "survive" {
		t.Fatalf("degraded read: %q %v", got, err)
	}
	p.FailDisk(2)
	if _, _, err := l.Read(0, 7); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read with all replicas gone: %v", err)
	}
}

func TestDegradedReadEC(t *testing.T) {
	p := pool.New("degec", sim.NewClock(), sim.NVMeSSD, 6, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(EC(4, 2))
	l.Append([]byte("erasure coded payload"))
	// Up to M=2 failures tolerated.
	p.FailDisk(0)
	p.FailDisk(1)
	got, _, err := l.Read(0, 21)
	if err != nil || string(got) != "erasure coded payload" {
		t.Fatalf("degraded EC read: %q %v", got, err)
	}
	p.FailDisk(2)
	if _, _, err := l.Read(0, 21); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("EC read beyond fault tolerance: %v", err)
	}
}

func TestVerifyReconstruct(t *testing.T) {
	m := newManager(t, 8)
	l, _ := m.Create(EC(5, 3))
	payload := make([]byte, 10_000)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	l.Append(payload)
	if err := l.VerifyReconstruct([]int{0, 4, 7}); err != nil {
		t.Fatalf("3 erasures within tolerance: %v", err)
	}
	if err := l.VerifyReconstruct([]int{0, 1, 2, 3}); err == nil {
		t.Fatal("4 erasures beyond tolerance reconstructed")
	}
	rep, _ := m.Create(ReplicateN(2))
	if err := rep.VerifyReconstruct(nil); err == nil {
		t.Fatal("VerifyReconstruct accepted a replicated log")
	}
}

func TestAppendRollbackLeavesAccountingUnchanged(t *testing.T) {
	p := pool.New("rollback", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 1<<20)
	l, err := m.Create(EC(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("baseline")); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	var disks [3]sim.DeviceStats
	for i := range disks {
		disks[i] = p.DiskStats(pool.DiskID(i))
	}
	// Fail two of the three placement disks: only one shard write can
	// land, under the K=2 durability floor, so the append must fail and
	// refund the surviving write.
	p.FailDisk(l.slices[0].Disk)
	p.FailDisk(l.slices[1].Disk)
	if _, _, err := l.Append(make([]byte, 1000)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append beyond tolerance: %v", err)
	}
	after := p.Stats()
	if after.Live != before.Live {
		t.Fatalf("failed append leaked live bytes: %d -> %d", before.Live, after.Live)
	}
	for i := range disks {
		if got := p.DiskStats(pool.DiskID(i)); got != disks[i] {
			t.Fatalf("disk %d stats changed across failed append:\nbefore %+v\nafter  %+v", i, disks[i], got)
		}
	}
	if l.StaleBytes() != 0 {
		t.Fatalf("failed append left stale bytes: %d", l.StaleBytes())
	}
	if l.Size() != 8 {
		t.Fatalf("failed append extended the log: size %d", l.Size())
	}
}

func TestDegradedWriteReplication(t *testing.T) {
	p := pool.New("degwrite", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(ReplicateN(3))
	if _, _, err := l.Append([]byte("before-")); err != nil {
		t.Fatal(err)
	}
	p.FailDisk(l.slices[2].Disk)
	off, cost, err := l.Append([]byte("degraded"))
	if err != nil || off != 7 || cost <= 0 {
		t.Fatalf("degraded append: off=%d cost=%v err=%v", off, cost, err)
	}
	st := l.Stale()
	if len(st) != 1 || st[0].SliceIdx != 2 || st[0].Bytes != 8 {
		t.Fatalf("stale tracking: %+v", st)
	}
	if l.FullyRedundant() || l.StaleBytes() != 8 {
		t.Fatalf("redundancy state: full=%v stale=%d", l.FullyRedundant(), l.StaleBytes())
	}
	if m.DegradedCount() != 1 || m.StaleBytes() != 8 || len(m.StaleLogs()) != 1 {
		t.Fatalf("manager degraded view: count=%d stale=%d", m.DegradedCount(), m.StaleBytes())
	}
	got, _, err := l.Read(0, l.Size())
	if err != nil || string(got) != "before-degraded" {
		t.Fatalf("read after degraded write: %q %v", got, err)
	}
}

func TestDegradedAppendReadAtMaxToleranceEC(t *testing.T) {
	p := pool.New("degmax", sim.NewClock(), sim.NVMeSSD, 6, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(EC(4, 2))
	if _, _, err := l.Append([]byte("first stripe payload")); err != nil {
		t.Fatal(err)
	}
	// Exactly M = 2 of the group's disks fail: the policy's maximum.
	p.FailDisk(l.slices[4].Disk)
	p.FailDisk(l.slices[5].Disk)
	if _, _, err := l.Append([]byte("second stripe, degraded")); err != nil {
		t.Fatalf("append at max tolerance: %v", err)
	}
	got, _, err := l.Read(0, l.Size())
	if err != nil || string(got) != "first stripe payloadsecond stripe, degraded" {
		t.Fatalf("read with exactly M failures: %q %v", got, err)
	}
	per := l.red.shardSize(int64(len("second stripe, degraded")))
	if l.StaleBytes() != 2*per {
		t.Fatalf("stale bytes = %d, want %d", l.StaleBytes(), 2*per)
	}
	// One more failure exceeds FaultTolerance: appends and reads refuse.
	p.FailDisk(l.slices[3].Disk)
	if _, _, err := l.Append([]byte("x")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append beyond tolerance: %v", err)
	}
	if _, _, err := l.Read(0, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("read beyond tolerance: %v", err)
	}
}

func TestVerifyReconstructMaxErasures(t *testing.T) {
	m := newManager(t, 8)
	l, _ := m.Create(EC(4, 2))
	payload := make([]byte, 8191)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	l.Append(payload)
	// Every M-sized erasure pattern class: data only, parity only, mixed.
	for _, erasures := range [][]int{{0, 1}, {4, 5}, {0, 5}, {1, 4}} {
		if err := l.VerifyReconstruct(erasures); err != nil {
			t.Fatalf("max erasures %v: %v", erasures, err)
		}
	}
	if err := l.VerifyReconstruct([]int{0, 1, 2}); err == nil {
		t.Fatal("M+1 erasures reconstructed")
	}
	if err := l.VerifyReconstruct([]int{-1}); err == nil {
		t.Fatal("out-of-range erasure accepted")
	}
}

func TestRepairStaleCatchUpInPlace(t *testing.T) {
	p := pool.New("repinplace", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(ReplicateN(3))
	l.Append([]byte("hello"))
	p.FailDisk(l.slices[1].Disk)
	l.Append([]byte(" world"))
	p.ReviveDisk(l.slices[1].Disk)
	repaired, cost, err := l.RepairStale()
	if err != nil || repaired != 6 || cost <= 0 {
		t.Fatalf("repair: n=%d cost=%v err=%v", repaired, cost, err)
	}
	if !l.FullyRedundant() {
		t.Fatal("still stale after repair")
	}
	// Live accounting fully restored: 3 copies of 11 logical bytes.
	if st := p.Stats(); st.Live != 33 || st.Reconstructed != 6 {
		t.Fatalf("pool accounting after repair: %+v", st)
	}
}

func TestRepairStaleRelocatesFromDeadDisk(t *testing.T) {
	p := pool.New("reprelocate", sim.NewClock(), sim.NVMeSSD, 4, 1<<20)
	m := NewManager(p, 1<<20)
	l, _ := m.Create(ReplicateN(3))
	l.Append(make([]byte, 100))
	dead := l.slices[2].Disk
	p.FailDisk(dead)
	l.Append(make([]byte, 50))
	repaired, _, err := l.RepairStale()
	if err != nil || repaired != 50 {
		t.Fatalf("repair: n=%d err=%v", repaired, err)
	}
	if l.slices[2].Disk == dead {
		t.Fatal("slice not relocated off the dead disk")
	}
	if !l.FullyRedundant() {
		t.Fatal("still stale after relocation")
	}
	// The relocated copy is rebuilt in full: all 150 bytes.
	if st := p.Stats(); st.Reconstructed != 150 || st.Live != 450 {
		t.Fatalf("pool accounting after relocation: %+v", st)
	}
}

// TestReadBorrowDiscipline pins the zero-copy read contract: Read
// returns a read-only borrow of the log's byte stream (two reads of the
// same range share a backing array, and the borrow stays intact across
// later appends), while ReadCopy is the escape hatch for callers that
// must mutate — its buffer is private, so scribbling on it cannot
// corrupt the log. A caller violating the borrow contract WOULD corrupt
// subsequent reads, which is exactly what makes the no-copy hot path
// measurable; the mutation audit keeps all in-tree callers read-only.
func TestReadBorrowDiscipline(t *testing.T) {
	m := newManager(t, 3)
	l, _ := m.Create(ReplicateN(2))
	l.Append([]byte("immutable"))
	got, _, err := l.Read(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := l.Read(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &again[0] {
		t.Fatal("Read copied; reads of one range should share the log's buffer")
	}
	// The borrow is full-capped: an append through it cannot land in the
	// log's live buffer.
	if cap(got) != len(got) {
		t.Fatalf("borrow not capacity-capped: len=%d cap=%d", len(got), cap(got))
	}
	// Appends after the borrow leave it intact (the logical stream is
	// append-only; a growth reallocation copies, never overwrites).
	for i := 0; i < 64; i++ {
		if _, _, err := l.Append([]byte("growgrowgrowgrow")); err != nil {
			t.Fatal(err)
		}
	}
	if string(got) != "immutable" {
		t.Fatalf("borrow invalidated by later appends: %q", got)
	}
	// ReadCopy callers may mutate freely.
	cp, _, err := l.ReadCopy(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	cp[0] = 'X'
	final, _, err := l.Read(0, 9)
	if err != nil || string(final) != "immutable" {
		t.Fatalf("mutating a ReadCopy corrupted the log: %q %v", final, err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := newManager(t, 4)
	l, err := m.Create(ReplicateN(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.Get(l.ID()) != l || m.Count() != 1 {
		t.Fatal("manager lost the log")
	}
	if err := m.Destroy(l.ID()); err != nil {
		t.Fatal(err)
	}
	if m.Get(l.ID()) != nil || m.Count() != 0 {
		t.Fatal("destroy left the log registered")
	}
	if err := m.Destroy(l.ID()); err == nil {
		t.Fatal("double destroy succeeded")
	}
}

func TestQuickAppendOffsetsContiguous(t *testing.T) {
	// Property: appended chunks produce contiguous offsets and read back
	// exactly, for any chunk size sequence.
	f := func(sizes []uint8) bool {
		p := pool.New("quick", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
		m := NewManager(p, 1<<20)
		l, err := m.Create(ReplicateN(2))
		if err != nil {
			return false
		}
		var want []byte
		for i, sz := range sizes {
			chunk := bytes.Repeat([]byte{byte(i)}, int(sz)+1)
			off, _, err := l.Append(chunk)
			if err != nil || off != int64(len(want)) {
				return false
			}
			want = append(want, chunk...)
		}
		got, _, err := l.Read(0, int64(len(want)))
		return err == nil && bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
