package plog

import (
	"sort"

	"streamlake/internal/pool"
)

// Elastic-membership support (elastic.go): the cluster layer's node
// removal path relocates every placement copy off the leaving node
// before its tombstone commits, and the per-node backlog gauges need
// stale bytes attributed through each pool's own disk space — disk IDs
// alias across pools, and after runtime joins they no longer follow the
// birth i%N rule.

// StaleByDiskIn sums the missing redundancy bytes per hosting disk,
// counting only logs placed on p — the pool-aware form of StaleByDisk
// that keeps SSD and HDD disk IDs from aliasing in per-node backlog
// attribution.
func (m *Manager) StaleByDiskIn(p *pool.Pool) map[pool.DiskID]int64 {
	out := make(map[pool.DiskID]int64)
	for _, l := range m.StaleLogs() {
		l.mu.RLock()
		onPool := !l.destroyed && l.pool == p
		l.mu.RUnlock()
		if !onPool {
			continue
		}
		for _, si := range l.Stale() {
			out[si.Disk] += si.Bytes
		}
	}
	return out
}

// EvacuateDisks relocates every live copy hosted on the given disks of
// p onto other failure domains — the drain leg of a node removal. The
// relocation preserves slice identity but carries no data: each moved
// copy is marked fully stale at its new home, so the ordinary repair
// plane rebuilds it from its surviving group peers with real, charged
// I/O. Copies that cannot relocate (no admissible target) stay put and
// stay healthy; the caller retries after conditions improve. Logs are
// visited in ID order so seeded runs replay bit-identically. Returns
// the copies moved and the stale bytes queued for re-replication.
func (m *Manager) EvacuateDisks(p *pool.Pool, disks map[pool.DiskID]bool) (moved int, bytes int64) {
	m.mu.Lock()
	logs := make([]*PLog, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	sort.Slice(logs, func(i, j int) bool { return logs[i].id < logs[j].id })
	for _, l := range logs {
		l.mu.Lock()
		if l.destroyed || l.pool != p {
			l.mu.Unlock()
			continue
		}
		changed := false
		full := l.red.shardSize(int64(len(l.buf)))
		for i, s := range l.slices {
			if !disks[s.Disk] {
				continue
			}
			// Exclude the group's other copies' disks (and, inside
			// Relocate, their whole domains) so the evacuated copy lands
			// on a node that holds none of this group.
			exclude := make(map[pool.DiskID]bool, len(l.slices)-1)
			for j, o := range l.slices {
				if j != i {
					exclude[o.Disk] = true
				}
			}
			if _, err := p.Relocate(s.ID, exclude); err != nil {
				continue
			}
			moved++
			changed = true
			if full > 0 {
				if l.stale == nil {
					l.stale = make(map[int]int64)
				}
				if have := l.stale[i]; have < full {
					bytes += full - have
					l.stale[i] = full
				}
				l.imu.Lock()
				if i < len(l.copySums) && l.copySums[i] != nil {
					l.copySums[i] = make(map[int]uint32)
				}
				l.imu.Unlock()
			}
		}
		l.mu.Unlock()
		if changed {
			l.invalidateCached()
		}
	}
	return moved, bytes
}
