package plog

import (
	"bytes"
	"testing"
	"time"
)

// With verification off a corrupt secondary used to be a valid hedge
// target: the hedge "won" with bytes that differ from what the primary
// served — a stale win credited to the latency model. Now corrupt
// copies are ineligible, and with every secondary corrupt the slow
// primary is simply endured.
func TestHedgeSkipsCorruptCopiesWithoutVerification(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	m, l, payload := hedgeEnv(t, cfg, true)
	for _, idx := range []int{1, 2} {
		if ok, err := l.CorruptCopy(idx, 0); err != nil || !ok {
			t.Fatalf("corrupt copy %d: %v %v", idx, ok, err)
		}
	}
	m.SetVerifyOnRead(false)
	data, cost, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("read returned wrong bytes")
	}
	if cost < 2*time.Millisecond {
		t.Fatalf("a hedge won against corrupt-only candidates: cost=%v", cost)
	}
	if st := m.HedgeStats(); st.Hedged != 0 {
		t.Fatalf("hedge issued against ineligible copies: %+v", st)
	}
}

// With verification on, a corrupt secondary loses the race honestly: it
// is verified, quarantined, and the hedge falls through to the next
// healthy replica — which wins. Subsequent reads skip the quarantined
// copy outright.
func TestHedgeQuarantinesCorruptCandidateAndWinsViaNext(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	m, l, payload := hedgeEnv(t, cfg, true)
	if ok, err := l.CorruptCopy(1, 0); err != nil || !ok {
		t.Fatalf("corrupt: %v %v", ok, err)
	}
	data, cost, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if cost >= time.Millisecond {
		t.Fatalf("hedge via the healthy third replica did not win: cost=%v", cost)
	}
	st := m.HedgeStats()
	if st.Hedged == 0 || st.Wins == 0 {
		t.Fatalf("hedge stats: %+v", st)
	}
	if l.StaleBytes() == 0 {
		t.Fatal("corrupt hedge candidate was not quarantined")
	}
	// The quarantined copy is now missing the range entirely; the next
	// hedge must not even attempt it.
	data, _, err = l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("read after quarantine: %v", err)
	}
}

// A hedge against a dead disk is a guaranteed loss; the hedge must go
// straight to a live replica.
func TestHedgeSkipsFailedDisk(t *testing.T) {
	cfg := HedgeConfig{Enabled: true, Quantile: 0.5, MinSamples: 8, Floor: 100 * time.Microsecond}
	m, l, payload := hedgeEnv(t, cfg, true)
	l.pool.FailDisk(l.Placement()[1].Disk)
	data, cost, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if cost >= time.Millisecond {
		t.Fatalf("hedge did not win via the surviving replica: cost=%v", cost)
	}
	if st := m.HedgeStats(); st.Wins == 0 {
		t.Fatalf("hedge stats: %+v", st)
	}
}
