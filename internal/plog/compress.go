// Cold-tier compression state for PLogs (see internal/compress for the
// codecs and the calibrated virtual-CPU cost model). Compression is a
// migration-time transform: when a log's placement group moves to the
// manager's designated cold pool, each extent is negotiated against the
// real codecs and the destination copies are written at compressed
// size; migrating off the cold pool decompresses. The logical byte
// stream (l.buf) stays authoritative and uncompressed — reads always
// serve raw bytes, the read cache stores uncompressed verified bytes,
// and every CRC-32C stays keyed over uncompressed data, so
// verify-on-read, quarantine, EC reconstruction and the scrubber work
// unchanged on compressed logs. What compression changes is accounting:
// device bytes moved/stored/read shrink to compressed sizes, and the
// codec CPU is charged to the virtual clock.
//
// Locking: l.compressed and l.ecomp follow the placement-identity rule
// (see Migrate): writers hold both mu and imu, so readers may hold
// either. The per-extent helpers below require imu, matching the
// integrity helpers they compose with.
package plog

import (
	"time"

	"streamlake/internal/compress"
	"streamlake/internal/pool"
)

// comprConfig is the manager-wide compression configuration every log
// points at (the same atomic-slot lifetime trick as the read cache):
// nil means compression-on-migrate is off.
type comprConfig struct {
	// cold is the pool whose incoming migrations compress; migrations
	// leaving it decompress.
	cold *pool.Pool
}

// extComp is one extent's negotiated compression outcome: the codec and
// the exact on-device byte count of the whole extent under it. Parallel
// to l.extents; an index at or past len(l.ecomp) (an extent appended
// after the compressing migration) is implicitly raw.
type extComp struct {
	codec compress.Codec
	clen  int64
}

// SetCompression enables compression-on-migrate for every log of the
// manager: extents compress as their log migrates onto cold and
// decompress as they migrate off it. nil disables negotiation for
// future migrations; logs already compressed stay compressed (and keep
// decompressing on reads) until they next migrate off the cold pool.
func (m *Manager) SetCompression(cold *pool.Pool) {
	if cold == nil {
		m.compr.Store(nil)
		return
	}
	m.compr.Store(&comprConfig{cold: cold})
}

// Compressed reports whether the log currently stores compressed
// extents on its placement pool.
func (l *PLog) Compressed() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.compressed
}

// compShardLocked returns the per-copy physical bytes of extent e: the
// compressed extent length for replication, one shard column of it for
// EC. Extents beyond the negotiated set (appended post-migration) are
// raw. Caller holds imu on a compressed log.
func (l *PLog) compShardLocked(e int) int64 {
	if l.compressed && e < len(l.ecomp) {
		return l.red.shardSize(l.ecomp[e].clen)
	}
	return l.red.shardSize(l.extents[e].len)
}

// decompressCostLocked returns the virtual CPU time to decompress
// extent e back to raw bytes (zero for raw/None extents). Caller holds
// imu.
func (l *PLog) decompressCostLocked(e int) time.Duration {
	if !l.compressed || e >= len(l.ecomp) {
		return 0
	}
	return compress.DecompressCost(l.ecomp[e].codec, l.extents[e].len)
}

// compReadLocked sizes a device read of [off, off+n) on a compressed
// log: compressed extents can only be read whole (there is no seeking
// into a DEFLATE stream), so the device bytes are the per-copy physical
// size of every overlapping extent, and the decompress CPU for those
// extents is returned alongside. Caller holds imu.
func (l *PLog) compReadLocked(off, n int64) (devBytes int64, dec time.Duration) {
	for _, e := range l.overlappingLocked(off, n) {
		devBytes += l.compShardLocked(e)
		dec += l.decompressCostLocked(e)
	}
	return devBytes, dec
}

// heldPhysLocked returns the physical bytes copy i holds on its device:
// the per-copy size of every extent present in its checksum sidecar
// (presence ⟺ the copy physically holds the extent; degraded appends
// and quarantine remove entries). Caller holds imu.
func (l *PLog) heldPhysLocked(i int) int64 {
	var total int64
	for e := range l.extents {
		if _, ok := l.copySums[i][e]; ok {
			total += l.compShardLocked(e)
		}
	}
	return total
}

// missingPhysLocked returns the physical bytes copy i is missing — the
// compressed-aware rebuild size for repair. Caller holds imu.
func (l *PLog) missingPhysLocked(i int) int64 {
	var total int64
	for e := range l.extents {
		if _, ok := l.copySums[i][e]; !ok {
			total += l.compShardLocked(e)
		}
	}
	return total
}

// copyPhysLocked returns the full per-copy physical size of the log —
// every extent, held or not. Caller holds imu.
func (l *PLog) copyPhysLocked() int64 {
	var total int64
	for e := range l.extents {
		total += l.compShardLocked(e)
	}
	return total
}

// CompressionStats summarizes the cold-tier byte reduction across a
// manager's compressed logs. RawBytes and CompressedBytes are logical
// (single-copy, pre-redundancy) sums, so CompressedBytes/RawBytes is
// the codec-level ratio independent of the redundancy policy.
type CompressionStats struct {
	CompressedLogs  int
	RawBytes        int64 // logical bytes held by compressed logs
	CompressedBytes int64 // those bytes as stored after negotiation
	NoneExtents     int   // extents the bailout kept raw
	RLEExtents      int
	FlateExtents    int
}

// CompressionStats snapshots the manager-wide compression counters in
// log-ID order (deterministic for digests).
func (m *Manager) CompressionStats() CompressionStats {
	var st CompressionStats
	for _, l := range m.sortedLogs() {
		l.mu.RLock()
		if !l.compressed {
			l.mu.RUnlock()
			continue
		}
		st.CompressedLogs++
		l.imu.Lock()
		for e, ext := range l.extents {
			st.RawBytes += ext.len
			if e < len(l.ecomp) {
				st.CompressedBytes += l.ecomp[e].clen
				switch l.ecomp[e].codec {
				case compress.RLE:
					st.RLEExtents++
				case compress.Flate:
					st.FlateExtents++
				default:
					st.NoneExtents++
				}
			} else {
				st.CompressedBytes += ext.len
				st.NoneExtents++
			}
		}
		l.imu.Unlock()
		l.mu.RUnlock()
	}
	return st
}
