package plog

import (
	"bytes"
	"errors"
	"testing"

	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func poolWriteOps(p *pool.Pool, disks int) int64 {
	var total int64
	for i := 0; i < disks; i++ {
		total += p.DiskStats(pool.DiskID(i)).WriteOps
	}
	return total
}

// TestAppendBatchMatchesIndividualAppends pins the group-commit
// contract: a batch lands every payload at exactly the offsets a
// payload-at-a-time sequence would, with identical logical/physical
// accounting and bit-identical reads — only the device write-op count
// differs (one per placement copy instead of one per payload).
func TestAppendBatchMatchesIndividualAppends(t *testing.T) {
	const disks = 3
	clockA := sim.NewClock()
	pa := pool.New("one-by-one", clockA, sim.NVMeSSD, disks, 1<<20)
	ma := NewManager(pa, 1<<20)
	la, _ := ma.Create(ReplicateN(2))

	clockB := sim.NewClock()
	pb := pool.New("batched", clockB, sim.NVMeSSD, disks, 1<<20)
	mb := NewManager(pb, 1<<20)
	lb, _ := mb.Create(ReplicateN(2))

	payloads := [][]byte{
		payload(100, 1), payload(57, 2), payload(4096, 3), payload(1, 4),
	}
	var wantOffsets []int64
	for _, p := range payloads {
		off, _, err := la.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		wantOffsets = append(wantOffsets, off)
	}
	gotOffsets, _, err := lb.AppendBatch(payloads, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payloads {
		if gotOffsets[i] != wantOffsets[i] {
			t.Fatalf("offset %d: batch %d, sequential %d", i, gotOffsets[i], wantOffsets[i])
		}
		got, _, err := lb.Read(gotOffsets[i], int64(len(payloads[i])))
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("read payload %d after batch: %v", i, err)
		}
	}
	if la.Size() != lb.Size() {
		t.Fatalf("logical size diverged: %d vs %d", la.Size(), lb.Size())
	}
	if pa.Stats().Live != pb.Stats().Live {
		t.Fatalf("physical bytes diverged: %d vs %d", pa.Stats().Live, pb.Stats().Live)
	}
	seq, grp := poolWriteOps(pa, disks), poolWriteOps(pb, disks)
	// 4 payloads × 2 copies sequentially vs 1 commit × 2 copies batched.
	if grp*int64(len(payloads)) != seq {
		t.Fatalf("write ops: sequential %d, batched %d (want %dx reduction)", seq, grp, len(payloads))
	}
}

// A batch against a failed disk degrades exactly like single appends:
// the whole batch's physical bytes go stale on the dead copy, repair
// restores them, and every payload reads back bit-exact throughout.
func TestAppendBatchDegradedWrite(t *testing.T) {
	p, m := newTestManager(t, 4)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append(payload(64, 9)); err != nil {
		t.Fatal(err)
	}
	p.FailDisk(l.slices[1].Disk)
	payloads := [][]byte{payload(33, 5), payload(700, 6), payload(5, 7)}
	offs, _, err := l.AppendBatch(payloads, nil)
	if err != nil {
		t.Fatalf("degraded batch: %v", err)
	}
	if l.FullyRedundant() {
		t.Fatal("degraded batch left no stale bytes")
	}
	for i, pl := range payloads {
		if got, _, err := l.Read(offs[i], int64(len(pl))); err != nil || !bytes.Equal(got, pl) {
			t.Fatalf("degraded read %d: %v", i, err)
		}
	}
	p.ReviveDisk(l.slices[1].Disk)
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair did not restore the batch's redundancy")
	}
	for i, pl := range payloads {
		if got, _, err := l.Read(offs[i], int64(len(pl))); err != nil || !bytes.Equal(got, pl) {
			t.Fatalf("post-repair read %d: %v", i, err)
		}
	}
}

// A batch below the durability floor rolls everything back: no offsets,
// no size growth, no leaked live bytes on surviving disks.
func TestAppendBatchRollbackBeyondTolerance(t *testing.T) {
	p, m := newTestManager(t, 3)
	l, err := m.Create(EC(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("seed")); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	size := l.Size()
	p.FailDisk(l.slices[0].Disk)
	p.FailDisk(l.slices[1].Disk)
	_, _, err = l.AppendBatch([][]byte{payload(100, 1), payload(200, 2)}, nil)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("batch beyond tolerance: %v", err)
	}
	if l.Size() != size {
		t.Fatalf("failed batch grew the log: %d -> %d", size, l.Size())
	}
	if after := p.Stats(); after.Live != before.Live {
		t.Fatalf("failed batch leaked live bytes: %d -> %d", before.Live, after.Live)
	}
	if l.StaleBytes() != 0 {
		t.Fatalf("failed batch left stale bytes: %d", l.StaleBytes())
	}
}

// Oversized batches and sealed logs report the same sentinels as
// single appends so the shard space can roll the chain.
func TestAppendBatchSentinels(t *testing.T) {
	_, m := newTestManager(t, 3)
	l, _ := m.Create(ReplicateN(2))
	big := [][]byte{payload(1<<19, 1), payload(1<<19, 2), payload(1<<19, 3)}
	if _, _, err := l.AppendBatch(big, nil); !errors.Is(err, ErrFull) {
		t.Fatalf("oversized batch: %v", err)
	}
	if l.Size() != 0 {
		t.Fatal("rejected batch grew the log")
	}
	l.Seal()
	if _, _, err := l.AppendBatch([][]byte{[]byte("x")}, nil); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed batch: %v", err)
	}
}

// TestMigrateAfterDestroyRefused pins the reclaim-vs-tiering race fix:
// a tiering pass holding a stale handle to a log the reclaimer already
// destroyed must be refused — migrating would allocate a placement
// group nothing tracks and double-free slice ids.
func TestMigrateAfterDestroyRefused(t *testing.T) {
	clock := sim.NewClock()
	src := pool.New("src", clock, sim.NVMeSSD, 3, 1<<20)
	dst := pool.New("dst", clock, sim.SASHDD, 3, 1<<20)
	m := NewManager(src, 1<<20)
	l, _ := m.Create(ReplicateN(2))
	if _, _, err := l.Append(payload(256, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Destroy(l.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Migrate(dst); err == nil {
		t.Fatal("migrate of a destroyed log succeeded")
	}
	if used := dst.Stats().Live; used != 0 {
		t.Fatalf("refused migration leaked %d bytes on the destination", used)
	}
	// Late appends and batches on the destroyed handle fail the same
	// deterministic way a sealed log does (the shard space rolls).
	if _, _, err := l.Append([]byte("late")); !errors.Is(err, ErrSealed) {
		t.Fatalf("late append: %v", err)
	}
	if _, _, err := l.AppendBatch([][]byte{[]byte("late")}, nil); !errors.Is(err, ErrSealed) {
		t.Fatalf("late batch: %v", err)
	}
}

func TestGroupCommitterStats(t *testing.T) {
	var nilGC *GroupCommitter
	if st := nilGC.Stats(); st != (GroupCommitStats{}) {
		t.Fatalf("nil committer stats: %+v", st)
	}
	nilGC.Note(4, 3) // must not panic
	gc := NewGroupCommitter(4)
	if gc.Target() != 4 {
		t.Fatalf("target: %d", gc.Target())
	}
	gc.Note(4, 3) // 4 payloads over 3 copies: 3 writes instead of 12
	gc.Note(1, 3) // singleton: nothing saved
	st := gc.Stats()
	if st.Commits != 2 || st.Payloads != 5 || st.SavedDeviceWrites != 9 {
		t.Fatalf("stats: %+v", st)
	}
}
