// Package plog implements PLog persistence units (Section IV-A, Figure
// 4-e/f). A PLog is an append-only unit of persistence that controls a
// fixed amount of storage space — 128 MB of addresses per logical shard —
// across multiple disks of a storage pool. When a message is received the
// PLog replicates it to multiple disks (or erasure-codes it across them)
// for redundancy. PLogs underlie both stream objects and table objects.
package plog

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/cache"
	"streamlake/internal/ec"
	"streamlake/internal/obs"
	"streamlake/internal/pool"
	"streamlake/internal/resil"
)

// DefaultCapacity is the paper's fixed PLog address space: 128 MB.
const DefaultCapacity int64 = 128 << 20

// RedundancyKind selects between full-copy replication and erasure
// coding, the two data redundancy methods the stream object's CREATE
// options expose (Figure 3).
type RedundancyKind int

const (
	// Replicate stores Replicas full copies on distinct disks.
	Replicate RedundancyKind = iota
	// ErasureCode stores K data + M parity shards on distinct disks.
	ErasureCode
)

// Redundancy describes a PLog's redundancy policy.
type Redundancy struct {
	Kind     RedundancyKind
	Replicas int // total copies for Replicate (>= 1)
	K, M     int // shards for ErasureCode
}

// ReplicateN builds an n-copy replication policy.
func ReplicateN(n int) Redundancy { return Redundancy{Kind: Replicate, Replicas: n} }

// EC builds a k+m erasure-coding policy.
func EC(k, m int) Redundancy { return Redundancy{Kind: ErasureCode, K: k, M: m} }

// Width returns the number of distinct disks the policy spans.
func (r Redundancy) Width() int {
	if r.Kind == Replicate {
		return r.Replicas
	}
	return r.K + r.M
}

// Overhead returns the physical-to-logical byte multiplier: Replicas for
// replication, (K+M)/K for erasure coding. This ratio is the whole story
// of Figure 14(d).
func (r Redundancy) Overhead() float64 {
	if r.Kind == Replicate {
		return float64(r.Replicas)
	}
	return float64(r.K+r.M) / float64(r.K)
}

// FaultTolerance returns how many disk losses the policy survives.
func (r Redundancy) FaultTolerance() int {
	if r.Kind == Replicate {
		return r.Replicas - 1
	}
	return r.M
}

func (r Redundancy) validate() error {
	switch r.Kind {
	case Replicate:
		if r.Replicas < 1 {
			return fmt.Errorf("plog: replication needs >= 1 copy, got %d", r.Replicas)
		}
	case ErasureCode:
		if r.K < 1 || r.M < 0 || r.K+r.M > 255 {
			return fmt.Errorf("plog: invalid EC parameters k=%d m=%d", r.K, r.M)
		}
	default:
		return fmt.Errorf("plog: unknown redundancy kind %d", r.Kind)
	}
	return nil
}

// ID identifies a PLog within its manager.
type ID int64

// Errors returned by PLog operations.
var (
	ErrSealed      = errors.New("plog: log is sealed")
	ErrFull        = errors.New("plog: append exceeds log capacity")
	ErrOutOfRange  = errors.New("plog: read out of range")
	ErrUnavailable = errors.New("plog: too many placement disks failed")
	// ErrCorrupt marks a checksum mismatch on a copy; reads fall back to
	// healthy copies and only surface it when no copy survives.
	ErrCorrupt = errors.New("plog: checksum mismatch")
)

// PLog is one append-only persistence unit. The logical byte stream is
// retained in memory (the simulated substrate's stand-in for the disk
// medium); redundancy is charged to the placement disks so space and time
// accounting match the policy.
type PLog struct {
	id       ID
	capacity int64
	red      Redundancy
	pool     *pool.Pool
	codec    *ec.Codec // nil for replication

	mu     sync.RWMutex
	slices []*pool.Slice
	buf    []byte
	sealed bool
	// destroyed is set by Manager.Destroy under mu. A destroyed log's
	// slices have been freed; late operations that raced the destroy
	// (a tiering migrate holding a stale pointer, a straggler append)
	// must fail deterministically instead of touching freed slices.
	destroyed bool
	// stale maps a placement-slice index to the logical bytes that copy
	// (or shard column) is missing after degraded writes. A stale slice
	// never serves reads and is the repair service's work queue.
	stale map[int]int64

	// Integrity state (see integrity.go). Guarded by imu, not mu, so the
	// fault injector can corrupt copies from pool-hook context; never
	// hold imu while doing pool I/O.
	imu      sync.Mutex
	extents  []extent
	trueSums [][]uint32       // [extent][copy] expected checksums
	copySums []map[int]uint32 // per copy: extent index -> stored checksum
	integ    IntegrityStats
	noVerify *atomic.Bool // shared manager-wide verify-on-read toggle

	// metrics points at the manager's shared instrument set (same
	// lifetime trick as noVerify). The pointer is always valid for
	// manager-created logs; the instruments inside stay nil (no-op)
	// until Manager.SetObs wires a registry.
	metrics *logMetrics

	// hedge points at the manager's shared hedged-read state (see
	// hedge.go); nil disables hedging entirely.
	hedge *hedgeState

	// rcache points at the manager's shared read-cache slot (same
	// lifetime trick as metrics); the slot holds nil until SetCache.
	// Fills are inserted only after checksum verification, and every
	// coherence edge — quarantine, repair rewrite, degraded append,
	// migration, destroy — invalidates the log's cached ranges.
	rcache *atomic.Pointer[cache.Cache]

	// locality points at the manager's shared read-locality slot (see
	// locality.go / Manager.SetLocalReads); nil — the default — keeps
	// the legacy copy-order read path, byte for byte.
	locality *atomic.Pointer[func(*pool.Pool, pool.DiskID) bool]

	// compr points at the manager's shared compression-on-migrate
	// configuration (see compress.go); the slot holds nil until
	// SetCompression. compressed/ecomp are the log's own compression
	// state and follow the placement-identity rule: writers (Migrate)
	// hold both mu and imu, readers may hold either.
	compr      *atomic.Pointer[comprConfig]
	compressed bool
	ecomp      []extComp

	// fmu guards the cache-fill version: invalidateCached bumps fillVer
	// under it, and fills snapshot the version before their device read
	// and re-check it at insert time, so a fill racing an invalidation
	// (migrate, quarantine, repair) can never re-admit bytes keyed to
	// the pre-invalidation placement. Leaf lock: mu may be held when
	// taking fmu, never the reverse.
	fmu     sync.Mutex
	fillVer uint64
}

// logMetrics is the plog layer's obs instrument set, shared by every
// log of one manager. Fields are wired once by Manager.SetObs before
// the manager serves traffic; each is a nil-safe no-op until then.
type logMetrics struct {
	appendLat      *obs.Histogram // persistence latency per append
	readLat        *obs.Histogram
	reconstructLat *obs.Histogram // repair/rebuild device time
	appendBytes    *obs.Counter
	readBytes      *obs.Counter
	degradedOps    *obs.Counter // appends that left stale copies behind
	quarantined    *obs.Counter // bytes quarantined on checksum mismatch
	repairedBytes  *obs.Counter
	hedged         *obs.Counter // reads that issued a hedge request
	hedgeWins      *obs.Counter // hedges that beat the primary
	groupCommits   *obs.Counter // coalesced AppendBatch commits
	groupPayloads  *obs.Counter // payloads folded into coalesced commits
}

// ID returns the log's identifier.
func (l *PLog) ID() ID { return l.id }

// Size returns the logical bytes appended so far.
func (l *PLog) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return int64(len(l.buf))
}

// Capacity returns the log's fixed address space.
func (l *PLog) Capacity() int64 { return l.capacity }

// Sealed reports whether the log has been sealed.
func (l *PLog) Sealed() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sealed
}

// Redundancy returns the log's redundancy policy.
func (l *PLog) Redundancy() Redundancy { return l.red }

// shardSize returns the per-disk physical size of n logical bytes under
// the policy: the full payload for replication, one shard column for EC.
func (r Redundancy) shardSize(n int64) int64 {
	if r.Kind == ErasureCode {
		return (n + int64(r.K) - 1) / int64(r.K)
	}
	return n
}

// required returns how many placement writes must succeed for an append
// to be durable under the policy: one full copy for replication, K
// shards for erasure coding (failures beyond that exceed FaultTolerance).
func (r Redundancy) required() int {
	if r.Kind == ErasureCode {
		return r.K
	}
	return 1
}

// Append writes data at the end of the log, charging the redundant
// physical writes to the placement disks. It returns the starting offset
// and the modelled persistence latency (the slowest parallel device
// write, as replicas are written concurrently).
//
// Append degrades rather than fails: as long as the surviving placement
// disks still satisfy the policy's FaultTolerance, the append succeeds
// and the missed copies/shards are recorded as stale for the repair
// service. Only when too many placement writes fail does Append return
// ErrUnavailable — and then it rolls back the charges of the writes that
// did land, so a failed append leaves pool byte and latency accounting
// untouched.
func (l *PLog) Append(data []byte) (offset int64, cost time.Duration, err error) {
	return l.AppendSpan(data, nil)
}

// AppendSpan is Append with tracing: the placement writes are recorded
// as parallel pool.write children of sp (they share a start offset; the
// slowest advances the request's critical path). A nil span traces
// nothing and costs nothing.
func (l *PLog) AppendSpan(data []byte, sp *obs.Span) (offset int64, cost time.Duration, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sealed {
		return 0, 0, ErrSealed
	}
	if int64(len(l.buf))+int64(len(data)) > l.capacity {
		return 0, 0, ErrFull
	}
	offset = int64(len(l.buf))
	per := l.red.shardSize(int64(len(data)))
	type landed struct {
		id pool.SliceID
	}
	var ok []landed
	var failed []int
	var max time.Duration
	for i, s := range l.slices {
		d, werr := l.pool.Write(s.ID, per)
		if werr != nil {
			failed = append(failed, i)
			continue
		}
		if sp != nil {
			w := sp.Child("pool.write")
			w.SetAttr("disk", strconv.Itoa(int(s.Disk)))
			w.End(d)
		}
		ok = append(ok, landed{s.ID})
		if d > max {
			max = d
		}
	}
	if len(ok) < l.red.required() {
		// Beyond fault tolerance: all-or-nothing, refund the survivors.
		for _, w := range ok {
			l.pool.RollbackWrite(w.id, per)
		}
		return 0, 0, fmt.Errorf("%w: %d of %d placement writes failed",
			ErrUnavailable, len(failed), len(l.slices))
	}
	sp.Advance(max) // the slowest parallel write gates the append
	for _, i := range failed {
		if l.stale == nil {
			l.stale = make(map[int]int64)
		}
		l.stale[i] += per
	}
	l.buf = append(l.buf, data...)
	l.recordExtent(offset, data, failed)
	l.metrics.appendLat.Observe(max)
	l.metrics.appendBytes.Add(int64(len(data)))
	if len(failed) > 0 {
		l.metrics.degradedOps.Inc()
		// Degraded write: some copies now hold stale ranges; drop the
		// log's cached ranges rather than reason about which reads could
		// have observed which copy.
		l.invalidateCached()
	}
	return offset, max, nil
}

// Read returns n bytes starting at offset, charging the device reads. For
// replication it reads one healthy copy; for erasure coding it reads K
// healthy shards in parallel (cost is the slowest). Every copy served is
// checksum-verified (unless the manager disabled verification): a
// mismatch quarantines that copy as stale for the repair service and the
// read transparently falls back to the next replica or reconstructs from
// surviving shards. When placement disks have failed, fallen stale, or
// been found corrupt it degrades the same way, and returns
// ErrUnavailable only when the policy's fault tolerance is exceeded —
// corrupt bytes are never returned while verification is on.
//
// Borrow discipline: the returned slice is a read-only borrow of the
// log's immutable byte stream (or of a shared cache entry) — callers
// MUST NOT mutate it. The log is append-only and the slice is
// capacity-capped, so the borrow stays valid and stable forever, even
// across concurrent appends, seals and migrations; verified extent
// bytes flow to the gateway and query scan with zero intermediate
// copies. A caller that needs a private, mutable buffer uses ReadCopy.
func (l *PLog) Read(offset, n int64) (data []byte, cost time.Duration, err error) {
	data, cost, _, err = l.readThrough(offset, n)
	return data, cost, err
}

// ReadCopy is Read returning a private copy the caller may mutate
// freely — the explicit-copy escape hatch of the borrow discipline.
func (l *PLog) ReadCopy(offset, n int64) (data []byte, cost time.Duration, err error) {
	data, cost, err = l.Read(offset, n)
	if data != nil {
		data = append([]byte(nil), data...)
	}
	return data, cost, err
}

// readThrough is the cache-aware read path: a resident range is served
// from the read cache (a DRAM hit at zero cost, an SCM hit at SCM
// device cost); a miss goes to the devices and, when verification is
// on, the verified bytes fill the cache. hit reports whether the cache
// served the read.
func (l *PLog) readThrough(offset, n int64) (data []byte, cost time.Duration, hit bool, err error) {
	c := l.cacheActive()
	if c == nil || n <= 0 {
		data, cost, err = l.read(offset, n)
		if err == nil {
			l.metrics.readLat.Observe(cost)
			l.metrics.readBytes.Add(n)
		}
		return data, cost, false, err
	}
	key := l.cacheKey(offset, n)
	if data, ccost, ok := c.Get(key); ok {
		l.metrics.readLat.Observe(ccost)
		l.metrics.readBytes.Add(n)
		return data, ccost, true, nil
	}
	ver := l.fillVersion()
	data, cost, err = l.read(offset, n)
	if err == nil {
		l.metrics.readLat.Observe(cost)
		l.metrics.readBytes.Add(n)
		// Verified fill: l.read only returns clean bytes while
		// verification is on (cacheActive gates the off case away). The
		// fill is version-guarded: if an invalidation (a migrate moving
		// the placement, a quarantine, a repair rewrite) ran between the
		// device read and here, the fill loses — inserting would
		// re-admit bytes keyed to the pre-invalidation placement.
		l.tryFill(c, key, data, ver)
	}
	return data, cost, false, err
}

// fillVersion snapshots the log's cache-fill version. A fill is only
// admitted if the version is unchanged at insert time (see tryFill).
func (l *PLog) fillVersion() uint64 {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.fillVer
}

// tryFill inserts a verified fill unless an invalidation has run since
// the caller snapshotted ver — the check and the insert are atomic with
// respect to invalidateCached, so a pre-invalidation fill can never
// land after the invalidation's prefix sweep.
func (l *PLog) tryFill(c *cache.Cache, key string, data []byte, ver uint64) bool {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if l.fillVer != ver {
		return false
	}
	c.Put(key, data)
	return true
}

// ReadDirect is Read bypassing the read cache: the raw device path,
// metrics-free. The chaos harness compares it against cached reads to
// enforce the "cached read never differs from device read" invariant.
func (l *PLog) ReadDirect(offset, n int64) ([]byte, time.Duration, error) {
	return l.read(offset, n)
}

// ReadSpan is Read with tracing: the read is recorded as a child span
// of sp annotated with its cache outcome, so traces honestly show
// cache hits as near-zero device time. A nil span traces nothing.
func (l *PLog) ReadSpan(offset, n int64, sp *obs.Span) ([]byte, time.Duration, error) {
	data, cost, hit, err := l.readThrough(offset, n)
	if sp != nil && err == nil {
		outcome := "uncached"
		if l.cacheActive() != nil {
			outcome = "miss"
			if hit {
				outcome = "hit"
			}
		}
		ch := sp.Child("plog.read")
		ch.SetAttr("cache", outcome)
		ch.End(cost)
	}
	return data, cost, err
}

// cacheActive returns the attached read cache, or nil when there is
// none or verification is off — an unverified fill could launder
// corrupt bytes, so the cache stands down entirely with verification
// disabled.
func (l *PLog) cacheActive() *cache.Cache {
	if l.rcache == nil {
		return nil
	}
	if l.noVerify != nil && l.noVerify.Load() {
		return nil
	}
	return l.rcache.Load()
}

func (l *PLog) cachePrefix() string {
	return "plog/" + strconv.FormatInt(int64(l.id), 10) + "/"
}

func (l *PLog) cacheKey(offset, n int64) string {
	return l.cachePrefix() + strconv.FormatInt(offset, 10) + "/" + strconv.FormatInt(n, 10)
}

// invalidateCached drops every cached range of this log. The logical
// bytes are append-only and immutable, so cached entries can never go
// stale in content — invalidation models device-state honesty on the
// coherence edges where the media under the log changed (quarantine,
// repair rewrite, degraded append, migration, destroy).
func (l *PLog) invalidateCached() {
	// Bump the fill version first: any in-flight fill that snapshotted
	// the old version aborts at insert time, and one that already landed
	// is swept by the prefix invalidation below. Either order of the
	// race leaves the cache empty of pre-invalidation entries.
	l.fmu.Lock()
	l.fillVer++
	l.fmu.Unlock()
	if l.rcache == nil {
		return
	}
	if c := l.rcache.Load(); c != nil {
		c.InvalidatePrefix(l.cachePrefix())
	}
}

// ReadCtx is Read under a resilience context: the virtual-time deadline
// is checked before any device work starts and the read's cost is
// charged to rc afterwards. A read whose cost pushes the request past
// its deadline returns the data it fetched together with
// resil.ErrDeadlineExceeded; the caller decides whether a late result
// is still useful. A nil rc makes ReadCtx identical to Read.
func (l *PLog) ReadCtx(offset, n int64, rc *resil.Ctx) (data []byte, cost time.Duration, err error) {
	if err := rc.Check(); err != nil {
		return nil, 0, err
	}
	data, cost, err = l.Read(offset, n)
	if err != nil {
		return data, cost, err
	}
	return data, cost, rc.Charge(cost)
}

func (l *PLog) read(offset, n int64) (data []byte, cost time.Duration, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset < 0 || n < 0 || offset+n > int64(len(l.buf)) {
		return nil, 0, ErrOutOfRange
	}
	verify := l.noVerify == nil || !l.noVerify.Load()
	// Compressed logs read whole extents at their compressed size and
	// pay the decompress CPU before the uncompressed bytes can be
	// CRC-verified — so a corrupt copy costs its read and its decompress
	// before the fallback, exactly like the wasted raw reads below. On a
	// raw log devN == n and decCost == 0, leaving the legacy accounting
	// byte-identical.
	devN, decCost := n, time.Duration(0)
	if l.compressed {
		l.imu.Lock()
		devN, decCost = l.compReadLocked(offset, n)
		l.imu.Unlock()
	}
	switch l.red.Kind {
	case Replicate:
		var lastErr error
		fellBack := false
		// Placement-aware reads: when the manager carries a locality
		// preference, local-domain copies are tried first and the loop
		// degrades to cross-domain copies exactly as it always has when
		// the local copy is missing, stale, quarantined, or failed. A nil
		// order (the default) keeps the legacy index-order path with zero
		// extra allocation.
		order := l.localOrderLocked()
		for k := 0; k < len(l.slices); k++ {
			i := k
			if order != nil {
				i = order[k]
			}
			s := l.slices[i]
			if l.missingIn(i, offset, n) {
				continue // copy has holes here: degraded write or quarantined
			}
			d, rerr := l.pool.Read(s.ID, devN)
			if rerr != nil {
				lastErr = rerr
				continue
			}
			d += decCost
			cost += d // wasted reads of corrupt copies stay charged
			if verify {
				if bad := l.verifyCopyRange(i, offset, n); len(bad) > 0 {
					l.quarantine(i, bad)
					lastErr = fmt.Errorf("%w on copy %d", ErrCorrupt, i)
					fellBack = true
					continue
				}
			} else if bad := l.corruptIn(i, offset, n); bad >= 0 {
				// No integrity layer: the corrupt copy is served as-is.
				return l.corruptBytes(l.buf[offset:offset+n], offset, bad), cost, nil
			}
			if fellBack {
				l.imu.Lock()
				l.integ.FallbackReads++
				l.imu.Unlock()
			}
			// Slow primary? Race a second replica after the hedge delay and
			// let the requester observe the earlier finisher. Device time of
			// both reads stays charged above.
			if saved := l.hedgeLocked(i, offset, n, devN, decCost, d, verify); saved > 0 {
				cost -= saved
			}
			// Zero-copy borrow: buf is append-only, so this full-capped
			// subslice stays valid and immutable even as the log grows.
			return l.buf[offset : offset+n : offset+n], cost, nil
		}
		if lastErr == nil {
			lastErr = errors.New("all replicas stale")
		}
		return nil, 0, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
	case ErasureCode:
		shard := (n + int64(l.red.K) - 1) / int64(l.red.K)
		if l.compressed {
			// Whole overlapping extents, one compressed shard column per
			// copy (compReadLocked already divided by K).
			shard = devN
		}
		var max time.Duration
		healthy := 0
		fellBack := false
		corruptServed := -1
		for i, s := range l.slices {
			if healthy == l.red.K {
				break
			}
			if l.missingIn(i, offset, n) {
				continue // shard has holes here: degraded write or quarantined
			}
			d, rerr := l.pool.Read(s.ID, shard)
			if rerr != nil {
				continue // failed disk; try the next shard (degraded read)
			}
			if verify {
				if bad := l.verifyCopyRange(i, offset, n); len(bad) > 0 {
					l.quarantine(i, bad)
					fellBack = true
					cost += d // wasted read of the corrupt shard
					continue
				}
			} else if bad := l.corruptIn(i, offset, n); bad >= 0 && corruptServed < 0 {
				corruptServed = bad
			}
			healthy++
			if d > max {
				max = d
			}
		}
		// The K shard columns join, then the extents decompress once
		// (zero on a raw log).
		cost += max + decCost
		if healthy < l.red.K {
			return nil, 0, ErrUnavailable
		}
		if corruptServed >= 0 {
			// No integrity layer: a corrupt shard column contributed to the
			// decode, so the joined payload comes out wrong.
			return l.corruptBytes(l.buf[offset:offset+n], offset, corruptServed), cost, nil
		}
		if fellBack {
			l.imu.Lock()
			l.integ.FallbackReads++
			l.imu.Unlock()
		}
		// Zero-copy borrow: see the Replicate branch.
		return l.buf[offset : offset+n : offset+n], cost, nil
	}
	return nil, 0, fmt.Errorf("plog: unknown redundancy kind %d", l.red.Kind)
}

// VerifyReconstruct exercises the actual erasure decode on the log's
// contents: it splits the logical bytes into K shards, encodes parity,
// erases `erasures` shards and reconstructs. It exists so failure
// injection tests exercise real decoding, not just accounting.
func (l *PLog) VerifyReconstruct(erasures []int) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.verifyReconstructLocked(erasures)
}

func (l *PLog) verifyReconstructLocked(erasures []int) error {
	if l.red.Kind != ErasureCode {
		return errors.New("plog: VerifyReconstruct on a replicated log")
	}
	data := append([]byte(nil), l.buf...)
	shards := l.codec.Split(data)
	stripe, err := l.codec.Encode(shards)
	if err != nil {
		return err
	}
	for _, e := range erasures {
		if e < 0 || e >= len(stripe) {
			return fmt.Errorf("plog: erasure index %d out of range", e)
		}
		stripe[e] = nil
	}
	if err := l.codec.Reconstruct(stripe); err != nil {
		return err
	}
	got, err := l.codec.Join(stripe, len(data))
	if err != nil {
		return err
	}
	for i := range got {
		if got[i] != data[i] {
			return fmt.Errorf("plog: reconstruction mismatch at byte %d", i)
		}
	}
	return nil
}

// Placement snapshots the log's placement slices in index order, for
// tests and diagnostics that target a specific copy.
func (l *PLog) Placement() []*pool.Slice {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]*pool.Slice(nil), l.slices...)
}

// StaleInfo describes one stale placement slice awaiting repair.
type StaleInfo struct {
	Log      ID
	SliceIdx int
	Disk     pool.DiskID
	Bytes    int64 // logical bytes the copy/shard is missing
}

// Stale snapshots the log's stale placement slices, ordered by slice
// index.
func (l *PLog) Stale() []StaleInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]StaleInfo, 0, len(l.stale))
	for i, s := range l.slices {
		if b := l.stale[i]; b > 0 {
			out = append(out, StaleInfo{Log: l.id, SliceIdx: i, Disk: s.Disk, Bytes: b})
		}
	}
	return out
}

// StaleBytes sums the bytes missing across the log's stale slices.
func (l *PLog) StaleBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total int64
	for _, b := range l.stale {
		total += b
	}
	return total
}

// MarkDiskStale records every placement copy of this log hosted on one
// of the given disks of p as fully stale — the cluster layer's "node
// died" edge. The copy stops serving reads immediately (its stored
// checksums are dropped, so every range of it reads as missing) and
// enters the repair queue; RepairStale later relocates the slice off
// the dead disk and rebuilds it from surviving peers. The pool-identity
// check guards against disk-ID aliasing: a log migrated to another pool
// numbers its disks in that pool's space, so only logs still placed on
// p match. Returns the stale bytes newly recorded.
func (l *PLog) MarkDiskStale(p *pool.Pool, disks map[pool.DiskID]bool) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.destroyed || l.pool != p {
		return 0
	}
	full := l.red.shardSize(int64(len(l.buf)))
	var added int64
	marked := false
	for i, s := range l.slices {
		if !disks[s.Disk] {
			continue
		}
		if l.stale == nil {
			l.stale = make(map[int]int64)
		}
		if have, ok := l.stale[i]; !ok || have < full {
			added += full - l.stale[i]
			l.stale[i] = full
			marked = true
		}
		l.imu.Lock()
		if i < len(l.copySums) && l.copySums[i] != nil {
			l.copySums[i] = make(map[int]uint32)
		}
		l.imu.Unlock()
	}
	if marked {
		l.invalidateCached()
	}
	return added
}

// FullyRedundant reports whether every placement slice holds its full
// copy/shard — the repair service's success condition.
func (l *PLog) FullyRedundant() bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.stale) == 0
}

// RepairStale restores redundancy on the log's stale slices. A stale
// slice whose disk recovered is caught up in place (only the missing
// bytes are rewritten); a slice stranded on a dead disk is relocated to
// a healthy disk and rebuilt in full — the whole copy for replication,
// one shard column for EC, read from the surviving peers. Erasure-coded
// rebuilds run the real decoder over the log's contents so repair
// exercises actual reconstruction, not just accounting. It returns the
// stale bytes cleared and the modelled reconstruction I/O; on error
// (no healthy target disk, injected fault mid-repair) the remaining
// slices stay stale for the caller to retry.
func (l *PLog) RepairStale() (repaired int64, cost time.Duration, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.stale) == 0 {
		return 0, 0, nil
	}
	idxs := make([]int, 0, len(l.stale))
	for i := range l.stale {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	if l.codec != nil && len(l.buf) > 0 && len(idxs) <= l.red.M {
		// Exercise the real erasure decode: erase every stale column and
		// reconstruct the payload before charging any rebuild I/O.
		if derr := l.verifyReconstructLocked(idxs); derr != nil {
			return 0, 0, fmt.Errorf("plog: repair decode: %w", derr)
		}
	}
	for _, i := range idxs {
		staleBytes := l.stale[i]
		s := l.slices[i]
		// Rebuild and live-delta accounting: raw logs move staleBytes;
		// compressed logs move the compressed size of the extents the
		// copy is actually missing (its sidecar presence set), since
		// that is what the peers store and the device will hold.
		rebuild, liveDelta := staleBytes, staleBytes
		if l.compressed {
			l.imu.Lock()
			rebuild = l.missingPhysLocked(i)
			l.imu.Unlock()
			liveDelta = rebuild
		}
		if l.pool.DiskFailed(s.Disk) {
			// Dead disk: move the slice, then rebuild the entire column.
			exclude := make(map[pool.DiskID]bool, len(l.slices)-1)
			for j, o := range l.slices {
				if j != i {
					exclude[o.Disk] = true
				}
			}
			if _, rerr := l.pool.Relocate(s.ID, exclude); rerr != nil {
				return repaired, cost, fmt.Errorf("plog: relocate slice %d of log %d: %w", i, l.id, rerr)
			}
			rebuild = l.red.shardSize(int64(len(l.buf)))
			if l.compressed {
				l.imu.Lock()
				rebuild = l.copyPhysLocked()
				l.imu.Unlock()
			}
		}
		// Reconstruction sources: healthy, non-stale peers — one for
		// replication, K for EC.
		need := 1
		if l.red.Kind == ErasureCode {
			need = l.red.K
		}
		// Prefer sources on trusted disks; only when those cannot cover
		// the rebuild fall back to avoided (suspect/draining-node) disks,
		// which still hold good bytes but may vanish mid-repair.
		sources := make([]pool.SliceID, 0, need)
		var fallback []pool.SliceID
		for j, o := range l.slices {
			if j == i || l.stale[j] > 0 || l.pool.DiskFailed(o.Disk) {
				continue
			}
			if l.pool.DiskAvoided(o.Disk) {
				fallback = append(fallback, o.ID)
				continue
			}
			sources = append(sources, o.ID)
			if len(sources) == need {
				break
			}
		}
		for _, id := range fallback {
			if len(sources) == need {
				break
			}
			sources = append(sources, id)
		}
		if len(sources) < need {
			return repaired, cost, fmt.Errorf("%w: %d of %d reconstruction sources available",
				ErrUnavailable, len(sources), need)
		}
		c, rerr := l.pool.RepairSlice(s.ID, sources, rebuild, liveDelta)
		if rerr != nil {
			return repaired, cost, fmt.Errorf("plog: rebuild slice %d of log %d: %w", i, l.id, rerr)
		}
		cost += c
		repaired += staleBytes
		delete(l.stale, i)
		// The copy holds true bytes again; its checksums verify anew.
		l.restoreSums(i)
	}
	if repaired > 0 {
		l.metrics.reconstructLat.Observe(cost)
		l.metrics.repairedBytes.Add(repaired)
		// Repair rewrote device copies under the cache; invalidate the
		// log's cached ranges so they refill from the repaired media.
		l.invalidateCached()
	}
	return repaired, cost, nil
}

// Seal makes the log immutable. Sealed logs are what the tiering service
// migrates and the stream-to-table converter drains.
func (l *PLog) Seal() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sealed = true
}

// PhysicalBytes reports the redundant bytes this log occupies on disk
// — compressed per-copy sizes when the log's extents are compressed on
// the cold tier.
func (l *PLog) PhysicalBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.compressed {
		l.imu.Lock()
		per := l.copyPhysLocked()
		l.imu.Unlock()
		return per * int64(l.red.Width())
	}
	switch l.red.Kind {
	case Replicate:
		return int64(len(l.buf)) * int64(l.red.Replicas)
	default:
		shard := (int64(len(l.buf)) + int64(l.red.K) - 1) / int64(l.red.K)
		return shard * int64(l.red.K+l.red.M)
	}
}

// Manager creates and tracks PLogs over one storage pool.
type Manager struct {
	pool     *pool.Pool
	capacity int64
	// verify is inverted (noVerify) so the zero value means
	// verification on — every log shares this toggle.
	verify atomic.Bool
	// metrics is shared by every log the manager creates (see
	// PLog.metrics); zero until SetObs wires a registry.
	metrics logMetrics
	// hedge is the shared hedged-read state (see hedge.go); hedging
	// stays off until SetHedge enables it, but the latency tracker warms
	// from the first read.
	hedge hedgeState
	// cache is the shared read-cache slot every log points at; nil
	// until SetCache attaches one.
	cache atomic.Pointer[cache.Cache]
	// placer, when set, replaces the pool's default AllocGroup for new
	// placement groups (the cluster's consistent-hash placement).
	placer atomic.Pointer[func(width int) ([]*pool.Slice, error)]
	// locality, when set, is the placement-aware read preference shared
	// by every log (see SetLocalReads): copies whose disk it reports
	// local are tried first on replicated reads.
	locality atomic.Pointer[func(*pool.Pool, pool.DiskID) bool]
	// compr is the shared compression-on-migrate slot (see compress.go);
	// nil until SetCompression designates a cold pool.
	compr atomic.Pointer[comprConfig]

	mu     sync.Mutex
	logs   map[ID]*PLog
	nextID ID
}

// SetPlacer installs (or clears, with nil) the placement-group
// allocator consulted by Create instead of pool.AllocGroup. The cluster
// layer uses it to route each new log's placement group through the
// consistent-hash ring so groups spread across node failure domains.
func (m *Manager) SetPlacer(f func(width int) ([]*pool.Slice, error)) {
	if f == nil {
		m.placer.Store(nil)
		return
	}
	m.placer.Store(&f)
}

// SetCache attaches a two-tier read cache shared by every log of the
// manager (nil detaches it). Extent reads fill the cache only after
// checksum verification, and the coherence edges (quarantine, repair,
// degraded appends, migration, destroy) invalidate affected ranges.
func (m *Manager) SetCache(c *cache.Cache) { m.cache.Store(c) }

// Cache returns the attached read cache, or nil.
func (m *Manager) Cache() *cache.Cache { return m.cache.Load() }

// SetObs registers the plog layer's telemetry: latency histograms and
// byte counters shared across the manager's logs, plus redundancy and
// footprint gauges evaluated at scrape time. Call before the manager
// serves traffic; a nil registry leaves the layer unobserved.
func (m *Manager) SetObs(reg *obs.Registry) {
	m.metrics = logMetrics{
		appendLat:      reg.Histogram("plog_append_seconds"),
		readLat:        reg.Histogram("plog_read_seconds"),
		reconstructLat: reg.Histogram("plog_reconstruct_seconds"),
		appendBytes:    reg.Counter("plog_append_bytes_total"),
		readBytes:      reg.Counter("plog_read_bytes_total"),
		degradedOps:    reg.Counter("plog_degraded_appends_total"),
		quarantined:    reg.Counter("plog_quarantined_bytes_total"),
		repairedBytes:  reg.Counter("plog_repaired_bytes_total"),
		hedged:         reg.Counter("plog_hedged_reads_total"),
		hedgeWins:      reg.Counter("plog_hedge_wins_total"),
		groupCommits:   reg.Counter("plog_group_commits_total"),
		groupPayloads:  reg.Counter("plog_group_commit_payloads_total"),
	}
	if reg == nil {
		return
	}
	reg.GaugeFunc("plog_logs", func() float64 { return float64(m.Count()) })
	reg.GaugeFunc("plog_degraded_logs", func() float64 { return float64(m.DegradedCount()) })
	reg.GaugeFunc("plog_stale_bytes", func() float64 { return float64(m.StaleBytes()) })
	reg.GaugeFunc("plog_logical_bytes", func() float64 { return float64(m.LogicalBytes()) })
	reg.GaugeFunc("plog_physical_bytes", func() float64 { return float64(m.PhysicalBytes()) })
}

// NewManager builds a manager creating logs of the given capacity (0
// means DefaultCapacity) on p.
func NewManager(p *pool.Pool, capacity int64) *Manager {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Manager{pool: p, capacity: capacity, logs: make(map[ID]*PLog)}
}

// Create allocates a new PLog with the given redundancy policy: a
// placement group of Width() slices on distinct disks.
func (m *Manager) Create(red Redundancy) (*PLog, error) {
	if err := red.validate(); err != nil {
		return nil, err
	}
	var slices []*pool.Slice
	var err error
	if fp := m.placer.Load(); fp != nil {
		slices, err = (*fp)(red.Width())
	} else {
		slices, err = m.pool.AllocGroup(red.Width())
	}
	if err != nil {
		return nil, err
	}
	var codec *ec.Codec
	if red.Kind == ErasureCode {
		codec, err = ec.New(red.K, red.M)
		if err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	l := &PLog{
		id:       m.nextID,
		capacity: m.capacity,
		red:      red,
		pool:     m.pool,
		codec:    codec,
		slices:   slices,
		noVerify: &m.verify,
		metrics:  &m.metrics,
		hedge:    &m.hedge,
		rcache:   &m.cache,
		locality: &m.locality,
		compr:    &m.compr,
	}
	m.logs[l.id] = l
	return l, nil
}

// Get returns the log with the given id, or nil.
func (m *Manager) Get(id ID) *PLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.logs[id]
}

// Destroy releases a log's slices and forgets it.
func (m *Manager) Destroy(id ID) error {
	m.mu.Lock()
	l, ok := m.logs[id]
	if ok {
		delete(m.logs, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("plog: no log %d", id)
	}
	// Free from the log's own pool, not the manager's: a tiering
	// migration may have moved the placement group to another pool,
	// whose slice ids the manager's pool knows nothing about. Sealing
	// and marking the log destroyed under the same critical section
	// makes every operation that raced the destroy deterministic: late
	// appends see ErrSealed (and the shard space rolls a fresh log), a
	// tiering migrate holding a stale pointer refuses to run instead of
	// re-homing freed slices onto a new pool and leaking them.
	l.mu.Lock()
	l.sealed = true
	l.destroyed = true
	slices, lp := l.slices, l.pool
	l.mu.Unlock()
	for _, s := range slices {
		if err := lp.Free(s.ID); err != nil {
			return err
		}
	}
	l.invalidateCached()
	return nil
}

// Count returns the number of live logs.
func (m *Manager) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.logs)
}

// PhysicalBytes sums the physical footprint of all live logs.
func (m *Manager) PhysicalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, l := range m.logs {
		total += l.PhysicalBytes()
	}
	return total
}

// LogInfo describes one live log for enumeration (tiering, diagnostics).
type LogInfo struct {
	ID     ID
	Size   int64
	Sealed bool
	Stale  int64 // bytes missing across stale placement slices
}

// Logs snapshots all live logs.
func (m *Manager) Logs() []LogInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LogInfo, 0, len(m.logs))
	for _, l := range m.logs {
		out = append(out, LogInfo{ID: l.ID(), Size: l.Size(), Sealed: l.Sealed(), Stale: l.StaleBytes()})
	}
	return out
}

// StaleLogs returns the logs that are not fully redundant, ordered by ID
// — the repair service's deterministic work queue.
func (m *Manager) StaleLogs() []*PLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*PLog
	for _, l := range m.logs {
		if !l.FullyRedundant() {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// DegradedCount reports how many live logs have stale slices.
func (m *Manager) DegradedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, l := range m.logs {
		if !l.FullyRedundant() {
			n++
		}
	}
	return n
}

// StaleBytes sums the missing redundancy bytes across all live logs.
func (m *Manager) StaleBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, l := range m.logs {
		total += l.StaleBytes()
	}
	return total
}

// MarkDisksStale marks every live log's copies on the given disks of p
// fully stale, in log-ID order for determinism, and returns the total
// stale bytes recorded — the bulk form of PLog.MarkDiskStale the
// cluster applies when a committed membership change declares a node
// dead.
func (m *Manager) MarkDisksStale(p *pool.Pool, disks map[pool.DiskID]bool) int64 {
	m.mu.Lock()
	logs := make([]*PLog, 0, len(m.logs))
	for _, l := range m.logs {
		logs = append(logs, l)
	}
	m.mu.Unlock()
	sort.Slice(logs, func(i, j int) bool { return logs[i].id < logs[j].id })
	var total int64
	for _, l := range logs {
		total += l.MarkDiskStale(p, disks)
	}
	return total
}

// StaleByDisk sums the missing redundancy bytes per hosting disk — the
// per-node re-replication backlog gauge.
func (m *Manager) StaleByDisk() map[pool.DiskID]int64 {
	out := make(map[pool.DiskID]int64)
	for _, l := range m.StaleLogs() {
		for _, si := range l.Stale() {
			out[si.Disk] += si.Bytes
		}
	}
	return out
}

// Pool exposes the storage pool the manager places logs on.
func (m *Manager) Pool() *pool.Pool { return m.pool }

// LogicalBytes sums the logical bytes of all live logs.
func (m *Manager) LogicalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, l := range m.logs {
		total += l.Size()
	}
	return total
}
