package plog

import (
	"fmt"
	"time"

	"streamlake/internal/pool"
)

// Migrate moves the log's placement group to dst, reading each copy
// from its current pool and rewriting it on the destination — the
// physical leg of a tiering migration (SSD draining to HDD after the
// demotion window). The per-extent CRC sidecar state moves with the
// data verbatim: checksums are keyed by copy index, not device
// identity, so a corrupt or stale copy stays exactly as corrupt or
// stale on the new pool and a scrub pass in flight keeps finding
// precisely what it would have found — never a false mismatch. The
// log's cached ranges are invalidated (the bytes now live on different
// media). On a destination write failure the destination allocation is
// rolled back and the log stays where it was. Migrating to the current
// pool is a no-op.
func (l *PLog) Migrate(dst *pool.Pool) (time.Duration, error) {
	if dst == nil {
		return 0, fmt.Errorf("plog: migrate log %d to nil pool", l.id)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.destroyed {
		// The log was destroyed between enumeration and migration (a
		// reclaim draining the stream while tiering held a stale
		// pointer): its slices are already freed. Migrating would
		// allocate a fresh placement group nothing tracks — a leak —
		// and free already-freed slice ids. Refuse deterministically.
		return 0, fmt.Errorf("plog: migrate log %d: log destroyed", l.id)
	}
	if l.pool == dst {
		return 0, nil
	}
	newSlices, err := dst.AllocGroup(len(l.slices))
	if err != nil {
		return 0, fmt.Errorf("plog: migrate log %d: %w", l.id, err)
	}
	per := l.red.shardSize(int64(len(l.buf)))
	var cost time.Duration
	for i, s := range l.slices {
		// Only the bytes the copy actually holds move; stale holes stay
		// holes on the destination (the repair service's job, not the
		// migration's).
		n := per - l.stale[i]
		if n <= 0 {
			continue
		}
		// Charge the source read when the source disk can serve it; an
		// unreadable source still lands on the destination (rebuilt from
		// the redundancy set, which the simulation holds authoritatively).
		if !l.pool.DiskFailed(s.Disk) {
			if c, rerr := l.pool.Read(s.ID, n); rerr == nil {
				cost += c
			}
		}
		c, werr := dst.Write(newSlices[i].ID, n)
		if werr != nil {
			for _, ns := range newSlices {
				dst.Free(ns.ID)
			}
			return cost, fmt.Errorf("plog: migrate log %d: %w", l.id, werr)
		}
		cost += c
	}
	old, oldPool := l.slices, l.pool
	// Placement-identity writers hold both mu and imu so hook-context
	// readers (corruption injection) can read l.pool/l.slices under imu
	// alone.
	l.imu.Lock()
	l.slices = newSlices
	l.pool = dst
	l.imu.Unlock()
	for _, s := range old {
		oldPool.Free(s.ID)
	}
	l.invalidateCached()
	return cost, nil
}

// MigrateLog moves one log's placement group to dst (see PLog.Migrate).
func (m *Manager) MigrateLog(id ID, dst *pool.Pool) (time.Duration, error) {
	l := m.Get(id)
	if l == nil {
		return 0, fmt.Errorf("plog: no log %d", id)
	}
	return l.Migrate(dst)
}
