package plog

import (
	"fmt"
	"time"

	"streamlake/internal/compress"
	"streamlake/internal/pool"
)

// Migrate moves the log's placement group to dst, reading each copy
// from its current pool and rewriting it on the destination — the
// physical leg of a tiering migration (SSD draining to HDD after the
// demotion window). The per-extent CRC sidecar state moves with the
// data verbatim: checksums are keyed by copy index, not device
// identity, so a corrupt or stale copy stays exactly as corrupt or
// stale on the new pool and a scrub pass in flight keeps finding
// precisely what it would have found — never a false mismatch. The
// log's cached ranges are invalidated (the bytes now live on different
// media). On a destination write failure the destination allocation is
// rolled back and the log stays where it was. Migrating to the current
// pool is a no-op.
//
// When the manager designates a cold pool (Manager.SetCompression),
// migration is also the compression boundary: extents negotiate a codec
// on the way onto the cold pool (destination copies land at compressed
// size, the trial-encode CPU is charged to the migration once per
// extent) and decompress on the way off it. The checksums are keyed
// over uncompressed bytes on both sides, so the sidecar still moves
// verbatim.
func (l *PLog) Migrate(dst *pool.Pool) (time.Duration, error) {
	if dst == nil {
		return 0, fmt.Errorf("plog: migrate log %d to nil pool", l.id)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.destroyed {
		// The log was destroyed between enumeration and migration (a
		// reclaim draining the stream while tiering held a stale
		// pointer): its slices are already freed. Migrating would
		// allocate a fresh placement group nothing tracks — a leak —
		// and free already-freed slice ids. Refuse deterministically.
		return 0, fmt.Errorf("plog: migrate log %d: log destroyed", l.id)
	}
	if l.pool == dst {
		return 0, nil
	}
	newSlices, err := dst.AllocGroup(len(l.slices))
	if err != nil {
		return 0, fmt.Errorf("plog: migrate log %d: %w", l.id, err)
	}

	var cc *comprConfig
	if l.compr != nil {
		cc = l.compr.Load()
	}
	compressTo := cc != nil && cc.cold == dst && !l.compressed
	decompressFrom := l.compressed && (cc == nil || cc.cold != dst)

	var cost time.Duration
	var newComp []extComp
	if compressTo {
		// Negotiate a codec per extent against the authoritative bytes.
		// The trial encodes run once per extent regardless of how many
		// copies move — negotiation is a logical transform, the copies
		// just store its output.
		l.imu.Lock()
		newComp = make([]extComp, len(l.extents))
		for e, ext := range l.extents {
			codec, clen := compress.Negotiate(l.buf[ext.off : ext.off+ext.len])
			newComp[e] = extComp{codec: codec, clen: clen}
			cost += compress.NegotiateCost(ext.len)
		}
		l.imu.Unlock()
	}
	if decompressFrom {
		// Every compressed extent inflates once before the raw copies
		// are rewritten on the destination.
		l.imu.Lock()
		for e := range l.extents {
			cost += l.decompressCostLocked(e)
		}
		l.imu.Unlock()
	}

	per := l.red.shardSize(int64(len(l.buf)))
	for i, s := range l.slices {
		// Only the bytes the copy actually holds move; stale holes stay
		// holes on the destination (the repair service's job, not the
		// migration's). srcN is what the copy physically stores today,
		// dstN what it will store after the codec transition.
		srcN := per - l.stale[i]
		if l.compressed {
			l.imu.Lock()
			srcN = l.heldPhysLocked(i)
			l.imu.Unlock()
		}
		dstN := srcN
		if compressTo {
			l.imu.Lock()
			dstN = 0
			for e := range l.extents {
				if _, ok := l.copySums[i][e]; ok {
					dstN += l.red.shardSize(newComp[e].clen)
				}
			}
			l.imu.Unlock()
		} else if decompressFrom {
			dstN = per - l.stale[i]
		}
		if srcN <= 0 && dstN <= 0 {
			continue
		}
		// Charge the source read when the source disk can serve it; a
		// dead source disk still lands its bytes on the destination, but
		// the reads that rebuild them from the surviving redundancy
		// copies are charged against the surviving disks — moving a
		// degraded log is not free I/O.
		if srcN > 0 {
			if !l.pool.DiskFailed(s.Disk) {
				if c, rerr := l.pool.Read(s.ID, srcN); rerr == nil {
					cost += c
				}
			} else {
				cost += l.reconstructReadLocked(i, srcN)
			}
		}
		if dstN > 0 {
			c, werr := dst.Write(newSlices[i].ID, dstN)
			if werr != nil {
				for _, ns := range newSlices {
					dst.Free(ns.ID)
				}
				return cost, fmt.Errorf("plog: migrate log %d: %w", l.id, werr)
			}
			cost += c
		}
	}
	old, oldPool := l.slices, l.pool
	// Placement-identity writers hold both mu and imu so hook-context
	// readers (corruption injection) can read l.pool/l.slices under imu
	// alone; the compression state commits in the same critical section
	// so no reader ever sees new placement with old codec state.
	l.imu.Lock()
	l.slices = newSlices
	l.pool = dst
	if compressTo {
		l.compressed = true
		l.ecomp = newComp
	} else if decompressFrom {
		l.compressed = false
		l.ecomp = nil
	}
	l.imu.Unlock()
	for _, s := range old {
		oldPool.Free(s.ID)
	}
	l.invalidateCached()
	return cost, nil
}

// reconstructReadLocked charges the reads that rebuild n bytes of copy
// i from surviving redundancy when its own disk cannot serve them: one
// healthy non-stale peer copy for replication, K healthy shard columns
// read in parallel (the slowest gates) for EC. When the survivors
// cannot cover the rebuild, whatever partial reads were issued stay
// charged and the move still completes — the simulation holds the
// logical bytes authoritatively. Caller holds mu.
func (l *PLog) reconstructReadLocked(i int, n int64) time.Duration {
	need := 1
	if l.red.Kind == ErasureCode {
		need = l.red.K
	}
	var max time.Duration
	found := 0
	for j, o := range l.slices {
		if j == i || l.stale[j] > 0 || l.pool.DiskFailed(o.Disk) {
			continue
		}
		c, err := l.pool.Read(o.ID, n)
		if err != nil {
			continue
		}
		found++
		if c > max {
			max = c
		}
		if found == need {
			break
		}
	}
	return max
}

// MigrateLog moves one log's placement group to dst (see PLog.Migrate).
func (m *Manager) MigrateLog(id ID, dst *pool.Pool) (time.Duration, error) {
	l := m.Get(id)
	if l == nil {
		return 0, fmt.Errorf("plog: no log %d", id)
	}
	return l.Migrate(dst)
}
