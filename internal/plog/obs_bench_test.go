package plog

import (
	"testing"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

// appendMany drives n appends through one manager, rolling to a fresh
// log when the current one fills.
func appendMany(b *testing.B, m *Manager, n int, data []byte) {
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(data); err == ErrFull {
			if l, err = m.Create(ReplicateN(3)); err != nil {
				b.Fatal(err)
			}
			i--
			continue
		} else if err != nil {
			b.Fatal(err)
		}
	}
}

func benchAppend(b *testing.B, wire bool) {
	clock := sim.NewClock()
	p := pool.New("bench", clock, sim.NVMeSSD, 6, 0)
	m := NewManager(p, 64<<20)
	if wire {
		m.SetObs(obs.NewRegistry(clock))
	}
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	appendMany(b, m, b.N, data)
}

// BenchmarkAppendObsDisabled is the nil-registry hot path: every
// instrument pointer is nil and each metric call is a nil-check return.
func BenchmarkAppendObsDisabled(b *testing.B) { benchAppend(b, false) }

// BenchmarkAppendObsEnabled measures the wired path for comparison.
func BenchmarkAppendObsEnabled(b *testing.B) { benchAppend(b, true) }

// TestDisabledObsOverheadBound proves the satellite's <5% bound
// directly: the per-append cost of the disabled instrumentation — the
// nil-instrument and nil-span calls AppendSpan makes — must be under 5%
// of the append itself. The instrument work is timed in isolation
// (calls per append: one span child per slice write with attr and end,
// one advance, one histogram observe, one counter add) and compared
// against the measured append time.
func TestDisabledObsOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	clock := sim.NewClock()
	p := pool.New("ovh", clock, sim.NVMeSSD, 6, 0)
	m := NewManager(p, 64<<20)
	data := make([]byte, 4096)
	const n = 20000

	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ { // warm up allocator and caches
		l.Append(data)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := l.Append(data); err == ErrFull {
			if l, err = m.Create(ReplicateN(3)); err != nil {
				t.Fatal(err)
			}
		} else if err != nil {
			t.Fatal(err)
		}
	}
	appendTime := time.Since(start)

	// The disabled-obs work per append, in isolation. The registry is
	// nil, so every instrument it hands out is nil — exactly the state
	// of a manager without SetObs.
	var reg *obs.Registry
	nilHist := reg.Histogram("x")
	nilCtr := reg.Counter("x")
	var sp *obs.Span
	start = time.Now()
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ { // one per replica slice write
			w := sp.Child("pool.write")
			w.SetAttr("disk", "0")
			w.End(0)
		}
		sp.Advance(0)
		nilHist.Observe(0)
		nilCtr.Add(int64(len(data)))
	}
	obsTime := time.Since(start)

	t.Logf("append: %v for %d ops (%.0f ns/op); disabled obs: %v (%.1f ns/op, %.2f%%)",
		appendTime, n, float64(appendTime.Nanoseconds())/n,
		obsTime, float64(obsTime.Nanoseconds())/n,
		100*float64(obsTime)/float64(appendTime))
	if obsTime*20 > appendTime {
		t.Fatalf("disabled obs overhead %v is over 5%% of append time %v", obsTime, appendTime)
	}
}
