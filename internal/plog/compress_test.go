package plog

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"streamlake/internal/cache"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

// compressible builds a run-and-text-heavy payload the codecs win on.
func compressible(n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, bytes.Repeat([]byte{0}, 64)...)
		out = append(out, []byte(fmt.Sprintf("columnar-row-%08d|", len(out)))...)
	}
	return out[:n]
}

func TestMigrateCompressesOntoColdPool(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	m.SetCompression(hdd)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := compressible(64 << 10)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	rawPhys := l.PhysicalBytes()
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if !l.Compressed() {
		t.Fatal("log not marked compressed after migrating to the cold pool")
	}
	// Bytes-on-device: the cold pool holds the compressed copies.
	live := hdd.Stats().Live
	if live == 0 || live >= int64(len(payload))*3 {
		t.Fatalf("cold live bytes %d, want 0 < live < raw %d", live, int64(len(payload))*3)
	}
	if live > int64(len(payload))*3*7/10 {
		t.Fatalf("compressible payload only shrank to %d of %d device bytes", live, int64(len(payload))*3)
	}
	if got := l.PhysicalBytes(); got != live {
		t.Fatalf("PhysicalBytes %d != cold live %d", got, live)
	}
	if got := l.PhysicalBytes(); got >= rawPhys {
		t.Fatalf("PhysicalBytes did not shrink: %d -> %d", rawPhys, got)
	}
	st := m.CompressionStats()
	if st.CompressedLogs != 1 || st.RawBytes != int64(len(payload)) || st.CompressedBytes >= st.RawBytes {
		t.Fatalf("compression stats: %+v", st)
	}

	// Reads stay bit-identical and CRC-verified over uncompressed bytes.
	before := l.IntegrityStats().Verifications
	got, cost, err := l.Read(0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("compressed read differs from the appended payload")
	}
	if cost <= 0 {
		t.Fatal("compressed read charged nothing")
	}
	if after := l.IntegrityStats().Verifications; after <= before {
		t.Fatal("compressed read skipped checksum verification")
	}
	// The device read moved compressed bytes, not raw ones.
	var devRead int64
	for i := 0; i < hdd.DiskCount(); i++ {
		devRead += hdd.DiskStats(pool.DiskID(i)).ReadBytes
	}
	if devRead == 0 || devRead >= int64(len(payload)) {
		t.Fatalf("cold read moved %d device bytes, want 0 < bytes < raw %d", devRead, len(payload))
	}
}

func TestMigrateDecompressesOffColdPool(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	m.SetCompression(hdd)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(32 << 10)
	l.Append(payload)
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Migrate(m.Pool()); err != nil {
		t.Fatal(err)
	}
	if l.Compressed() {
		t.Fatal("log still marked compressed after migrating off the cold pool")
	}
	if got := m.Pool().Stats().Live; got != int64(len(payload))*3 {
		t.Fatalf("hot pool live %d after promote, want raw %d", got, int64(len(payload))*3)
	}
	if got := l.PhysicalBytes(); got != int64(len(payload))*3 {
		t.Fatalf("PhysicalBytes %d after promote, want raw %d", got, int64(len(payload))*3)
	}
	got, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("promoted read mismatch (err=%v)", err)
	}
	poolEmpty(t, hdd)
}

func TestIncompressibleExtentsBailOutRaw(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	m.SetCompression(hdd)
	l, _ := m.Create(ReplicateN(3))
	rng := sim.NewRNG(99)
	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(rng.Intn(256))
	}
	l.Append(payload)
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	st := m.CompressionStats()
	if st.NoneExtents != 1 || st.RLEExtents+st.FlateExtents != 0 {
		t.Fatalf("random payload should bail out to None: %+v", st)
	}
	if st.CompressedBytes != st.RawBytes {
		t.Fatalf("bailout changed stored bytes: %+v", st)
	}
	if got := hdd.Stats().Live; got != int64(len(payload))*3 {
		t.Fatalf("cold live %d, want raw %d", got, int64(len(payload))*3)
	}
	got, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("bailed-out read mismatch (err=%v)", err)
	}
}

// The compression boundary is config-gated: without SetCompression a
// migration to any pool keeps the legacy raw accounting bit-identical.
func TestMigrateWithoutCompressionConfigStaysRaw(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(16 << 10)
	l.Append(payload)
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if l.Compressed() {
		t.Fatal("compression ran with no cold pool configured")
	}
	if got := hdd.Stats().Live; got != int64(len(payload))*3 {
		t.Fatalf("cold live %d, want raw %d", got, int64(len(payload))*3)
	}
}

// Scrub on a compressed log reads compressed bytes, still verifies the
// CRC over uncompressed data, and finds exactly the corruption it would
// have found raw.
func TestScrubCompressedLogFindsCorruption(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	m.SetCompression(hdd)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(32 << 10)
	l.Append(payload)
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if ok, err := l.CorruptCopy(1, 0); err != nil || !ok {
		t.Fatalf("corrupt: %v %v", ok, err)
	}
	res, err := l.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 1 {
		t.Fatalf("scrub found %d mismatches, want 1", res.Mismatches)
	}
	if res.Bytes == 0 || res.Bytes >= int64(len(payload))*3 {
		t.Fatalf("scrub read %d physical bytes, want compressed (< raw %d)", res.Bytes, int64(len(payload))*3)
	}
	// The quarantined copy repairs from compressed peers and the log
	// reads bit-exact afterwards.
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	if !l.FullyRedundant() {
		t.Fatal("repair left stale slices")
	}
	got, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-repair read mismatch (err=%v)", err)
	}
	if res, err := l.Scrub(); err != nil || res.Mismatches != 0 {
		t.Fatalf("post-repair scrub: %+v %v", res, err)
	}
}

// Regression: Migrate used to charge zero read I/O when the source disk
// was dead, even though the bytes must be rebuilt from the surviving
// copies. The reconstruction reads now land on the survivors.
func TestMigrateChargesReconstructionOnDeadSourceDisk(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(16 << 10)
	l.Append(payload)
	n := int64(len(payload))

	deadDisk := l.Placement()[1].Disk
	if err := m.Pool().FailDisk(deadDisk); err != nil {
		t.Fatal(err)
	}
	readsBefore := make(map[pool.DiskID]int64)
	for i := 0; i < m.Pool().DiskCount(); i++ {
		readsBefore[pool.DiskID(i)] = m.Pool().DiskStats(pool.DiskID(i)).ReadBytes
	}
	cost, err := l.Migrate(hdd)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("migrate off a dead disk charged nothing")
	}
	if got := m.Pool().DiskStats(deadDisk).ReadBytes - readsBefore[deadDisk]; got != 0 {
		t.Fatalf("dead disk served %d read bytes", got)
	}
	// The two healthy copies each read their own bytes, and one of them
	// additionally served the dead copy's reconstruction read.
	var survivorReads int64
	for i := 0; i < m.Pool().DiskCount(); i++ {
		id := pool.DiskID(i)
		if id == deadDisk {
			continue
		}
		survivorReads += m.Pool().DiskStats(id).ReadBytes - readsBefore[id]
	}
	if want := 3 * n; survivorReads != want {
		t.Fatalf("survivors served %d read bytes, want %d (2 own copies + 1 reconstruction)", survivorReads, want)
	}
	// The destination still received all three copies.
	if got := hdd.Stats().Live; got != 3*n {
		t.Fatalf("cold live %d, want %d", got, 3*n)
	}
	got, _, err := l.Read(0, n)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("post-migrate read mismatch (err=%v)", err)
	}
}

// The EC flavor of the dead-source regression: rebuilding one lost
// column charges K parallel column reads against the surviving disks.
func TestMigrateDeadSourceECChargesKColumnReads(t *testing.T) {
	p := pool.New("plogtest-ec", sim.NewClock(), sim.NVMeSSD, 6, 1<<20)
	m := NewManager(p, 1<<20)
	hdd := newHDDPool(6)
	l, err := m.Create(EC(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	payload := compressible(16 << 10)
	l.Append(payload)
	col := l.Redundancy().shardSize(int64(len(payload)))

	deadDisk := l.Placement()[0].Disk
	if err := p.FailDisk(deadDisk); err != nil {
		t.Fatal(err)
	}
	readsBefore := make(map[pool.DiskID]int64)
	for i := 0; i < p.DiskCount(); i++ {
		readsBefore[pool.DiskID(i)] = p.DiskStats(pool.DiskID(i)).ReadBytes
	}
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	var survivorReads int64
	for i := 0; i < p.DiskCount(); i++ {
		id := pool.DiskID(i)
		if id == deadDisk {
			continue
		}
		survivorReads += p.DiskStats(id).ReadBytes - readsBefore[id]
	}
	// 5 surviving columns read their own col bytes + K reconstruction
	// reads of col bytes each for the dead column.
	if want := 5*col + 4*col; survivorReads != want {
		t.Fatalf("survivors served %d read bytes, want %d", survivorReads, want)
	}
}

// Regression: a cache fill racing Migrate could re-admit bytes keyed to
// the old placement after invalidateCached ran. The fill-version guard
// makes the pre-migrate fill lose, deterministically.
func TestStaleFillLosesToInvalidation(t *testing.T) {
	m := newManager(t, 3)
	c := cache.New(cache.Config{DRAMBytes: 256 << 10, SCMBytes: 1 << 20})
	m.SetCache(c)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(8 << 10)
	l.Append(payload)
	n := int64(len(payload))
	key := l.cacheKey(0, n)

	// Interleave by hand: snapshot the fill version (as readThrough
	// does before its device read), run the device read, then let a
	// migration invalidate before the fill lands.
	ver := l.fillVersion()
	data, _, err := l.ReadDirect(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if l.tryFill(c, key, data, ver) {
		t.Fatal("pre-migrate fill was admitted after the invalidation")
	}
	if c.Contains(key) {
		t.Fatal("stale fill resident after migrate invalidated the log")
	}
	// A fresh read against the new placement fills normally.
	if _, _, err := l.Read(0, n); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(key) {
		t.Fatal("post-migrate fill missing")
	}
}

// The -race flavor: concurrent reads racing migrations back and forth
// must never leave a fill admitted across an invalidation, and never
// trip the race detector.
func TestConcurrentReadMigrateFillGuard(t *testing.T) {
	m := newManager(t, 6)
	c := cache.New(cache.Config{DRAMBytes: 256 << 10, SCMBytes: 1 << 20})
	m.SetCache(c)
	hdd := newHDDPool(6)
	l, _ := m.Create(ReplicateN(3))
	payload := compressible(8 << 10)
	l.Append(payload)
	n := int64(len(payload))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, _, err := l.Read(0, n)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Error("read returned wrong bytes during migration churn")
					return
				}
			}
		}()
	}
	pools := []*pool.Pool{hdd, m.Pool()}
	for i := 0; i < 40; i++ {
		if _, err := l.Migrate(pools[i%2]); err != nil {
			t.Fatalf("migrate %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// Appends after a compressing migration land raw (the negotiated set
// only covers extents that existed at migration time) and reads across
// the boundary stay bit-exact.
func TestAppendAfterCompressingMigrate(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	m.SetCompression(hdd)
	l, _ := m.Create(ReplicateN(3))
	first := compressible(8 << 10)
	l.Append(first)
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	second := compressible(4 << 10)
	if _, _, err := l.Append(second); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), first...), second...)
	got, _, err := l.Read(0, int64(len(want)))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("cross-boundary read mismatch (err=%v)", err)
	}
	if res, err := l.Scrub(); err != nil || res.Mismatches != 0 {
		t.Fatalf("scrub: %+v %v", res, err)
	}
}
