package plog

import (
	"bytes"
	"testing"

	"streamlake/internal/cache"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

func newHDDPool(disks int) *pool.Pool {
	return pool.New("plogtest-hdd", sim.NewClock(), sim.SASHDD, disks, 1<<20)
}

func poolEmpty(t *testing.T, p *pool.Pool) {
	t.Helper()
	for i := 0; i < p.DiskCount(); i++ {
		if used := p.DiskUsed(pool.DiskID(i)); used != 0 {
			t.Fatalf("disk %d of %s still holds %d bytes", i, p.Name(), used)
		}
	}
}

func TestMigrateMovesDataAcrossPools(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tiering "), 512)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	cost, err := l.Migrate(hdd)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("migration charged no device time")
	}
	data, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("post-migration read: %v", err)
	}
	poolEmpty(t, m.Pool()) // source slices freed
	var onHDD int64
	for i := 0; i < hdd.DiskCount(); i++ {
		onHDD += hdd.DiskUsed(pool.DiskID(i))
	}
	if want := int64(len(l.Placement())) * hdd.SliceSize(); onHDD != want {
		t.Fatalf("destination allocated %d bytes, want %d", onHDD, want)
	}
}

func TestMigrateSamePoolIsNoOp(t *testing.T) {
	m := newManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	l.Append([]byte("stay put"))
	before := l.Placement()
	cost, err := l.Migrate(m.Pool())
	if err != nil || cost != 0 {
		t.Fatalf("same-pool migrate: cost=%v err=%v", cost, err)
	}
	after := l.Placement()
	for i := range before {
		if before[i].ID != after[i].ID {
			t.Fatal("same-pool migrate reshuffled the placement group")
		}
	}
}

// The CRC sidecar is keyed by copy index, not device identity: a copy
// corrupted before migration is exactly as corrupt afterwards, and a
// scrub finds precisely that — no more, no less.
func TestMigrateCarriesCorruptSidecar(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	payload := bytes.Repeat([]byte("sidecar "), 256)
	l.Append(payload)
	if ok, err := l.CorruptCopy(1, 0); err != nil || !ok {
		t.Fatalf("corrupt: %v %v", ok, err)
	}
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	res, err := l.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 1 {
		t.Fatalf("scrub after migrate found %d mismatches, want exactly 1", res.Mismatches)
	}
	// The corruption is quarantined; reads still serve true bytes.
	data, _, err := l.Read(0, int64(len(payload)))
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("read after quarantine: %v", err)
	}
}

// Stale holes from degraded writes stay holes on the destination; the
// repair service — not the migration — fills them, on the new pool.
func TestMigrateCarriesStaleHoles(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	l.Append(bytes.Repeat([]byte("a"), 1024))
	bad := l.Placement()[2].Disk
	m.Pool().FailDisk(bad)
	if _, _, err := l.Append(bytes.Repeat([]byte("b"), 1024)); err != nil {
		t.Fatal(err)
	}
	stale := l.StaleBytes()
	if stale == 0 {
		t.Fatal("degraded append left nothing stale")
	}
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if got := l.StaleBytes(); got != stale {
		t.Fatalf("migration changed stale accounting: %d -> %d", stale, got)
	}
	if repaired, _, err := l.RepairStale(); err != nil || repaired != stale {
		t.Fatalf("repair on destination pool: repaired=%d err=%v", repaired, err)
	}
	if !l.FullyRedundant() {
		t.Fatal("log not fully redundant after repair on destination")
	}
}

func TestDestroyAfterMigrateFreesOwnPool(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	l.Append(bytes.Repeat([]byte("x"), 2048))
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if err := m.Destroy(l.ID()); err != nil {
		t.Fatalf("destroy after migrate: %v", err)
	}
	poolEmpty(t, hdd)
	poolEmpty(t, m.Pool())
}

func TestMigrateInvalidatesCache(t *testing.T) {
	m := newManager(t, 3)
	c := cache.New(cache.Config{DRAMBytes: 64 << 10, SCMBytes: 256 << 10})
	m.SetCache(c)
	hdd := newHDDPool(3)
	l, _ := m.Create(ReplicateN(3))
	l.Append(bytes.Repeat([]byte("m"), 512))
	l.Read(0, 512)
	if !c.Contains(l.cacheKey(0, 512)) {
		t.Fatal("fill missing")
	}
	if _, err := l.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	if c.Contains(l.cacheKey(0, 512)) {
		t.Fatal("migration left ranges cached")
	}
}

// Disk-scoped corruption injection means "disk d of this manager's
// pool". A migrated log's slices live on another pool whose disks share
// the bare numeric ids; they must not be aliased as targets.
func TestCorruptRandomOnDiskSkipsMigratedLogs(t *testing.T) {
	m := newManager(t, 3)
	hdd := newHDDPool(3)
	a, _ := m.Create(ReplicateN(3))
	a.Append(bytes.Repeat([]byte("home"), 64))
	b, _ := m.Create(ReplicateN(3))
	b.Append(bytes.Repeat([]byte("away"), 64))
	if _, err := b.Migrate(hdd); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(42)
	for d := 0; d < 3; d++ {
		for {
			if _, ok := m.CorruptRandomOnDisk(pool.DiskID(d), rng); !ok {
				break
			}
		}
	}
	if got := b.IntegrityStats().Injected; got != 0 {
		t.Fatalf("disk-scoped injection hit a migrated log %d times", got)
	}
	if got := a.IntegrityStats().Injected; got == 0 {
		t.Fatal("injection never landed on the resident log")
	}
}
