package plog

import (
	"bytes"
	"testing"

	"streamlake/internal/cache"
	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

func newCachedManager(t *testing.T, disks int) (*Manager, *cache.Cache) {
	t.Helper()
	m := newManager(t, disks)
	c := cache.New(cache.Config{DRAMBytes: 256 << 10, SCMBytes: 1 << 20})
	m.SetCache(c)
	return m, c
}

// A warm read must be served from the cache at near-zero cost, with
// bytes identical to the device path.
func TestCachedReadHitsAfterFill(t *testing.T) {
	m, c := newCachedManager(t, 3)
	l, err := m.Create(ReplicateN(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("cache me "), 256)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	n := int64(len(payload))
	cold, coldCost, err := l.Read(0, n)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmCost, err := l.Read(0, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, warm) || !bytes.Equal(warm, payload) {
		t.Fatal("warm read differs from cold read")
	}
	if warmCost >= coldCost {
		t.Fatalf("warm read not cheaper: cold=%v warm=%v", coldCost, warmCost)
	}
	st := c.Stats()
	if st.DRAMHits+st.SCMHits != 1 || st.Fills != 1 {
		t.Fatalf("cache stats: %+v", st)
	}
	// Device accounting: the warm read charged no pool device.
	disk := l.Placement()[0].Disk
	ops := l.pool.DiskStats(disk).ReadOps
	if _, _, err := l.Read(0, n); err != nil {
		t.Fatal(err)
	}
	if got := l.pool.DiskStats(disk).ReadOps; got != ops {
		t.Fatalf("warm read charged the device: %d -> %d ops", ops, got)
	}
}

// Quarantining a copy must invalidate the log's cached ranges, and the
// next read must re-verify against the devices.
func TestCacheInvalidatedOnQuarantine(t *testing.T) {
	m, c := newCachedManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	payload := bytes.Repeat([]byte("q"), 4096)
	l.Append(payload)
	if _, _, err := l.Read(0, 4096); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(l.cacheKey(0, 4096)) {
		t.Fatal("fill missing after cold read")
	}
	if ok, err := l.CorruptCopy(0, 0); err != nil || !ok {
		t.Fatalf("corrupt: %v %v", ok, err)
	}
	// A direct (uncached) read detects the corruption and quarantines.
	if _, _, err := l.ReadDirect(0, 4096); err != nil {
		t.Fatal(err)
	}
	if c.Contains(l.cacheKey(0, 4096)) {
		t.Fatal("quarantine left stale ranges cached")
	}
	data, _, err := l.Read(0, 4096)
	if err != nil || !bytes.Equal(data, payload) {
		t.Fatalf("post-quarantine read: %v", err)
	}
}

// Degraded appends and repair rewrites are invalidation edges too.
func TestCacheInvalidatedOnDegradedAppendAndRepair(t *testing.T) {
	m, c := newCachedManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	payload := bytes.Repeat([]byte("x"), 2048)
	l.Append(payload)
	l.Read(0, 2048)
	if !c.Contains(l.cacheKey(0, 2048)) {
		t.Fatal("fill missing")
	}
	l.pool.FailDisk(l.Placement()[2].Disk)
	if _, _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	if c.Contains(l.cacheKey(0, 2048)) {
		t.Fatal("degraded append left ranges cached")
	}
	l.Read(0, 2048)
	l.pool.ReviveDisk(l.Placement()[2].Disk)
	if _, _, err := l.RepairStale(); err != nil {
		t.Fatal(err)
	}
	if c.Contains(l.cacheKey(0, 2048)) {
		t.Fatal("repair rewrite left ranges cached")
	}
}

// With verification off the cache must stand down entirely: verified
// fills are impossible, and serving previously verified bytes would
// diverge from what a raw device read returns on a corrupt copy.
func TestCacheBypassedWithoutVerification(t *testing.T) {
	m, c := newCachedManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	payload := bytes.Repeat([]byte("v"), 1024)
	l.Append(payload)
	l.Read(0, 1024) // verified fill
	m.SetVerifyOnRead(false)
	if st := c.Stats(); st.EntriesDRAM+st.EntriesSCM != 0 {
		t.Fatalf("disabling verification did not flush the cache: %+v", st)
	}
	disk := l.Placement()[0].Disk
	ops := l.pool.DiskStats(disk).ReadOps
	if _, _, err := l.Read(0, 1024); err != nil {
		t.Fatal(err)
	}
	if got := l.pool.DiskStats(disk).ReadOps; got == ops {
		t.Fatal("unverified read served from cache")
	}
	if st := c.Stats(); st.Fills != 1 {
		t.Fatalf("unverified read filled the cache: %+v", st)
	}
}

// ReadSpan annotates traces with the cache outcome and shows hits as
// near-zero device time.
func TestReadSpanCacheAnnotation(t *testing.T) {
	m, _ := newCachedManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	payload := bytes.Repeat([]byte("t"), 512)
	l.Append(payload)
	clock := sim.NewClock()
	tr := obs.NewTracer(clock)
	findRead := func(sp *obs.Span) (string, int64) {
		t.Helper()
		for _, ch := range sp.JSON().Children {
			if ch.Name == "plog.read" {
				return ch.Attrs["cache"], ch.DurNs
			}
		}
		t.Fatal("no plog.read child span")
		return "", 0
	}
	cold := tr.Start("read-cold")
	if _, _, err := l.ReadSpan(0, 512, cold); err != nil {
		t.Fatal(err)
	}
	cold.End(0)
	outcome, coldDur := findRead(cold)
	if outcome != "miss" {
		t.Fatalf("cold outcome %q, want miss", outcome)
	}
	warm := tr.Start("read-warm")
	if _, _, err := l.ReadSpan(0, 512, warm); err != nil {
		t.Fatal(err)
	}
	warm.End(0)
	outcome, warmDur := findRead(warm)
	if outcome != "hit" {
		t.Fatalf("warm outcome %q, want hit", outcome)
	}
	if warmDur >= coldDur {
		t.Fatalf("trace does not show the hit as cheaper: cold=%v warm=%v", coldDur, warmDur)
	}
}

// Destroying a log reclaims its cache space.
func TestCacheInvalidatedOnDestroy(t *testing.T) {
	m, c := newCachedManager(t, 3)
	l, _ := m.Create(ReplicateN(3))
	l.Append(bytes.Repeat([]byte("d"), 256))
	l.Read(0, 256)
	key := l.cacheKey(0, 256)
	if !c.Contains(key) {
		t.Fatal("fill missing")
	}
	if err := m.Destroy(l.ID()); err != nil {
		t.Fatal(err)
	}
	if c.Contains(key) {
		t.Fatal("destroy left orphan ranges cached")
	}
}
