package plog

import (
	"sync"
	"time"

	"streamlake/internal/sim"
)

// Hedged reads ("The Tail at Scale"): when the primary replica of a
// Replicate-policy read comes back slower than a quantile-derived
// threshold of recent read latencies, the read races a second healthy
// replica that notionally started after that threshold delay. The
// requester observes min(primary, threshold + secondary); the device
// time of both reads stays charged, because hedging buys tail latency
// with extra I/O. Erasure-coded reads already fan out to K shards and
// are not hedged.

// HedgeConfig tunes hedged replica reads for a manager's logs.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile of recent primary-read latencies used as the hedge delay
	// (default 0.95).
	Quantile float64
	// MinSamples is how many primary reads must be observed before the
	// quantile is trusted (default 32). Until then nothing is hedged.
	MinSamples int64
	// Floor is the minimum hedge delay (default 500 µs): primaries faster
	// than this are never hedged, keeping healthy fast reads hedge-free
	// regardless of how tight the latency distribution gets.
	Floor time.Duration
	// Delay, when > 0, is a fixed hedge delay overriding the quantile
	// (MinSamples still gates it off until the tracker warms).
	Delay time.Duration
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.95
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.Floor <= 0 {
		c.Floor = 500 * time.Microsecond
	}
	return c
}

// HedgeStats counts hedging activity across a manager's logs.
type HedgeStats struct {
	Hedged int64         // reads that issued a hedge request
	Wins   int64         // hedges that beat the primary
	Saved  time.Duration // requester latency saved by winning hedges
}

// hedgeState is the manager-wide hedging state shared by its logs, the
// same lifetime trick as logMetrics: logs hold a pointer, the manager
// owns the value.
type hedgeState struct {
	mu    sync.Mutex
	cfg   HedgeConfig
	hist  sim.Histogram // primary-read latencies (pre-hedge)
	stats HedgeStats
}

// threshold observes one primary-read latency and returns the hedge
// delay to race it against, or -1 when this read must not hedge
// (disabled, cold tracker, or primary under the floor).
func (hs *hedgeState) threshold(primary time.Duration) time.Duration {
	hs.hist.Observe(primary)
	hs.mu.Lock()
	cfg := hs.cfg
	hs.mu.Unlock()
	if !cfg.Enabled {
		return -1
	}
	if hs.hist.Count() < cfg.MinSamples {
		return -1
	}
	h := cfg.Delay
	if h <= 0 {
		h = hs.hist.Quantile(cfg.Quantile)
	}
	if h < cfg.Floor {
		h = cfg.Floor
	}
	if primary <= h {
		return -1 // primary answered within the hedge window
	}
	return h
}

func (hs *hedgeState) record(won bool, saved time.Duration) {
	hs.mu.Lock()
	hs.stats.Hedged++
	if won {
		hs.stats.Wins++
		hs.stats.Saved += saved
	}
	hs.mu.Unlock()
}

// SetHedge configures hedged replica reads for every log of the
// manager (defaults applied; see HedgeConfig).
func (m *Manager) SetHedge(cfg HedgeConfig) {
	m.hedge.mu.Lock()
	m.hedge.cfg = cfg.withDefaults()
	m.hedge.mu.Unlock()
}

// HedgeStats snapshots the manager-wide hedging counters.
func (m *Manager) HedgeStats() HedgeStats {
	m.hedge.mu.Lock()
	defer m.hedge.mu.Unlock()
	return m.hedge.stats
}

// hedgeLocked races a second replica against a slow primary. Caller
// holds l.mu and has already verified copy `primary` (index into
// l.slices) at cost primaryCost. devN is the physical device bytes one
// copy read costs (== n on a raw log, the compressed whole-extent size
// on a compressed one) and decCost the decompress CPU the hedge replica
// would pay on top of its device read. It returns how much requester
// latency the hedge saved (0 when it lost or no second replica was
// usable).
func (l *PLog) hedgeLocked(primary int, offset, n, devN int64, decCost, primaryCost time.Duration, verify bool) time.Duration {
	if l.hedge == nil || l.red.Kind != Replicate {
		return 0
	}
	h := l.hedge.threshold(primaryCost)
	if h < 0 {
		return 0
	}
	for j, s := range l.slices {
		if j == primary || l.missingIn(j, offset, n) {
			continue // quarantined/degraded ranges can never win the race
		}
		if l.pool.DiskFailed(s.Disk) {
			continue // a hedge against a dead disk is a guaranteed loss
		}
		if l.pool.DiskAvoided(s.Disk) {
			// The disk sits on a suspect, dead, or draining node: its
			// copy may already be stale and the read would ride a link
			// the failure detector distrusts. Never hedge there.
			continue
		}
		if !verify && l.corruptIn(j, offset, n) >= 0 {
			// Without verification a corrupt copy would "win" with bytes
			// that differ from what the primary served — a stale win the
			// latency model must not credit. Skip it.
			continue
		}
		d2, rerr := l.pool.Read(s.ID, devN)
		if rerr != nil {
			continue
		}
		d2 += decCost
		if verify {
			if bad := l.verifyCopyRange(j, offset, n); len(bad) > 0 {
				l.quarantine(j, bad)
				continue
			}
		}
		var saved time.Duration
		if eff := h + d2; eff < primaryCost {
			saved = primaryCost - eff
		}
		l.hedge.record(saved > 0, saved)
		l.metrics.hedged.Inc()
		if saved > 0 {
			l.metrics.hedgeWins.Inc()
		}
		return saved
	}
	return 0
}
