package pool

import (
	"testing"
	"testing/quick"

	"streamlake/internal/sim"
)

func newTestPool(t *testing.T, disks int) *Pool {
	t.Helper()
	return New("test", sim.NewClock(), sim.NVMeSSD, disks, 1<<20)
}

func TestAllocBalancesAcrossDisks(t *testing.T) {
	p := newTestPool(t, 4)
	for i := 0; i < 40; i++ {
		if _, err := p.Alloc(nil); err != nil {
			t.Fatal(err)
		}
	}
	for d := DiskID(0); d < 4; d++ {
		if used := p.DiskUsed(d); used != 10<<20 {
			t.Fatalf("disk %d used %d, want 10MiB (balanced)", d, used)
		}
	}
}

func TestAllocGroupDistinctDisks(t *testing.T) {
	p := newTestPool(t, 5)
	g, err := p.AllocGroup(5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[DiskID]bool{}
	for _, s := range g {
		if seen[s.Disk] {
			t.Fatalf("placement group reused disk %d", s.Disk)
		}
		seen[s.Disk] = true
	}
	if _, err := p.AllocGroup(6); err == nil {
		t.Fatal("placement group wider than pool accepted")
	}
}

func TestAllocGroupRollsBackOnFailure(t *testing.T) {
	// A pool of 3 tiny disks: a group of 3 that cannot fit must leave no
	// partial allocations behind.
	clock := sim.NewClock()
	p := &Pool{name: "tiny", clock: clock, sliceSize: 1 << 20, slices: map[SliceID]*Slice{}}
	for i := 0; i < 3; i++ {
		spec := sim.Spec(sim.NVMeSSD)
		spec.Capacity = 1 << 20 // one slice each
		p.disks = append(p.disks, &disk{id: DiskID(i), dev: sim.NewDevice("d", spec), slices: map[SliceID]*Slice{}})
	}
	if _, err := p.AllocGroup(3); err != nil {
		t.Fatalf("first group should fit: %v", err)
	}
	if _, err := p.AllocGroup(3); err == nil {
		t.Fatal("second group cannot fit")
	}
	st := p.Stats()
	if st.SliceCount != 3 {
		t.Fatalf("rollback leaked slices: %d registered", st.SliceCount)
	}
}

func TestRetainFreeRefCounting(t *testing.T) {
	p := newTestPool(t, 2)
	s, err := p.Alloc(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Retain(s.ID); err != nil { // snapshot reference
		t.Fatal(err)
	}
	if err := p.Free(s.ID); err != nil {
		t.Fatal(err)
	}
	if p.Stats().SliceCount != 1 {
		t.Fatal("slice freed while snapshot still references it")
	}
	if err := p.Free(s.ID); err != nil {
		t.Fatal(err)
	}
	if p.Stats().SliceCount != 0 {
		t.Fatal("slice not freed at refcount zero")
	}
	if err := p.Free(s.ID); err != ErrUnknownSlice {
		t.Fatalf("double free: err = %v", err)
	}
}

func TestWriteReadAccounting(t *testing.T) {
	p := newTestPool(t, 1)
	s, _ := p.Alloc(nil)
	d1, err := p.Write(s.ID, 4096)
	if err != nil || d1 <= 0 {
		t.Fatalf("write: %v %v", d1, err)
	}
	d2, err := p.Read(s.ID, 4096)
	if err != nil || d2 <= 0 {
		t.Fatalf("read: %v %v", d2, err)
	}
	if got := p.Stats().Live; got != 4096 {
		t.Fatalf("live = %d", got)
	}
	if _, err := p.Write(SliceID(9999), 1); err != ErrUnknownSlice {
		t.Fatalf("unknown slice write: %v", err)
	}
}

func TestGarbageCollection(t *testing.T) {
	p := newTestPool(t, 1)
	s, _ := p.Alloc(nil)
	if _, err := p.Write(s.ID, 1000); err != nil {
		t.Fatal(err)
	}
	if err := p.MarkGarbage(s.ID, 800); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Live != 200 || st.Garbage != 800 {
		t.Fatalf("live=%d garbage=%d", st.Live, st.Garbage)
	}
	reclaimed, cost := p.GC(0.5)
	if reclaimed != 800 || cost <= 0 {
		t.Fatalf("GC reclaimed %d cost %v", reclaimed, cost)
	}
	if st := p.Stats(); st.Garbage != 0 || st.Live != 200 {
		t.Fatalf("after GC live=%d garbage=%d", st.Live, st.Garbage)
	}
	// Below-threshold garbage is left alone.
	p.MarkGarbage(s.ID, 10)
	if reclaimed, _ := p.GC(0.5); reclaimed != 0 {
		t.Fatalf("GC collected below-threshold slice: %d", reclaimed)
	}
}

func TestMarkGarbageClampsToLive(t *testing.T) {
	p := newTestPool(t, 1)
	s, _ := p.Alloc(nil)
	p.Write(s.ID, 100)
	p.MarkGarbage(s.ID, 1000)
	st := p.Stats()
	if st.Live != 0 || st.Garbage != 100 {
		t.Fatalf("clamp failed: live=%d garbage=%d", st.Live, st.Garbage)
	}
}

func TestFailDiskAndReconstruct(t *testing.T) {
	p := newTestPool(t, 3)
	var slices []*Slice
	for i := 0; i < 9; i++ {
		s, err := p.Alloc(nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Write(s.ID, 1<<19)
		slices = append(slices, s)
	}
	if err := p.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	// Failed disk rejects I/O.
	for _, s := range slices {
		if s.Disk == 0 {
			if _, err := p.Read(s.ID, 10); err != ErrDiskFailed {
				t.Fatalf("read from failed disk: %v", err)
			}
		}
	}
	migrated, cost, err := p.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 3*(1<<19) || cost <= 0 {
		t.Fatalf("migrated %d cost %v", migrated, cost)
	}
	// All slices must be readable again, and none on disk 0.
	for _, s := range slices {
		if s.Disk == 0 {
			t.Fatal("slice still placed on failed disk")
		}
		if _, err := p.Read(s.ID, 10); err != nil {
			t.Fatalf("post-reconstruction read: %v", err)
		}
	}
	st := p.Stats()
	if st.FailedDisks != 1 || st.Reconstructed != migrated {
		t.Fatalf("stats: %+v", st)
	}
}

func TestThinProvisioning(t *testing.T) {
	p := newTestPool(t, 1)
	p.Provision(100 << 40) // 100 TiB logical on an 800 GB disk: allowed
	st := p.Stats()
	if st.LogicalBytes != 100<<40 {
		t.Fatalf("logical = %d", st.LogicalBytes)
	}
	if st.LogicalBytes < st.Capacity {
		t.Fatal("test premise broken: logical should exceed physical")
	}
}

func TestUtilization(t *testing.T) {
	var s Stats
	if s.Utilization() != 0 {
		t.Fatal("empty stats utilization")
	}
	s = Stats{Capacity: 100, Used: 91}
	if got := s.Utilization(); got != 0.91 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestQuickAllocFreeInvariant(t *testing.T) {
	// Property: after any interleaving of allocs and frees, the sum of
	// per-disk used space equals sliceSize * live slice count.
	f := func(ops []bool) bool {
		p := New("q", sim.NewClock(), sim.NVMeSSD, 3, 1<<20)
		var live []SliceID
		for _, alloc := range ops {
			if alloc || len(live) == 0 {
				s, err := p.Alloc(nil)
				if err != nil {
					return false
				}
				live = append(live, s.ID)
			} else {
				p.Free(live[len(live)-1])
				live = live[:len(live)-1]
			}
		}
		var used int64
		for d := DiskID(0); d < 3; d++ {
			used += p.DiskUsed(d)
		}
		return used == int64(len(live))<<20 && p.Stats().SliceCount == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
