// Package pool implements the SSD/HDD data storage pools of StreamLake's
// store layer (Section III). Physical space on every disk in the cluster
// is divided into fixed-size slices; slices are organized as logical
// units across disks in different servers for redundancy and load
// balance. The pool also implements the storage-space features the paper
// lists: garbage collection, data reconstruction after disk failure,
// snapshot reference counting, and thin provisioning.
package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"streamlake/internal/sim"
)

// DiskID identifies a disk within one pool.
type DiskID int

// SliceID identifies an allocated slice within one pool.
type SliceID int64

// DefaultSliceSize is the allocation granularity: 4 MiB, a typical slice
// size for distributed block pools.
const DefaultSliceSize int64 = 4 << 20

// Slice is one allocated unit of physical space on a specific disk.
type Slice struct {
	ID      SliceID
	Disk    DiskID
	Size    int64
	refs    int32 // snapshot/clone reference count; freed at zero
	garbage int64 // dead bytes awaiting GC
	live    int64 // valid bytes written
}

// Live reports the valid bytes in the slice.
func (s *Slice) Live() int64 { return s.live }

// Garbage reports the dead bytes in the slice.
func (s *Slice) Garbage() int64 { return s.garbage }

type disk struct {
	id     DiskID
	dev    *sim.Device
	failed bool
	slices map[SliceID]*Slice
}

// Stats is a snapshot of pool-wide accounting.
type Stats struct {
	Disks         int
	FailedDisks   int
	Capacity      int64
	Used          int64 // bytes held by allocated slices
	Live          int64
	Garbage       int64
	LogicalBytes  int64 // thin-provisioned logical commitments
	SliceCount    int
	Reconstructed int64 // bytes migrated by reconstruction so far
}

// Utilization reports used/capacity, the disk utilization rate from the
// paper's TCO discussion.
func (s Stats) Utilization() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Used) / float64(s.Capacity)
}

// Pool is a redundancy-aware slice allocator over a set of homogeneous
// simulated disks.
type Pool struct {
	name      string
	clock     *sim.Clock
	sliceSize int64

	mu            sync.Mutex
	disks         []*disk
	slices        map[SliceID]*Slice
	nextSlice     SliceID
	logicalBytes  int64
	reconstructed int64
}

// Errors returned by pool operations.
var (
	ErrNoSpace      = errors.New("pool: no disk with free capacity")
	ErrUnknownSlice = errors.New("pool: unknown slice")
	ErrDiskFailed   = errors.New("pool: disk has failed")
	ErrNotEnough    = errors.New("pool: not enough healthy disks for placement group")
)

// New builds a pool of n identical disks of the given device class. The
// clock receives no charges directly; operation costs are returned to
// callers, who decide how to combine parallel device times.
func New(name string, clock *sim.Clock, class sim.DeviceClass, n int, sliceSize int64) *Pool {
	if sliceSize <= 0 {
		sliceSize = DefaultSliceSize
	}
	p := &Pool{
		name:      name,
		clock:     clock,
		sliceSize: sliceSize,
		slices:    make(map[SliceID]*Slice),
	}
	for i := 0; i < n; i++ {
		p.disks = append(p.disks, &disk{
			id:     DiskID(i),
			dev:    sim.NewDeviceOf(fmt.Sprintf("%s-disk%d", name, i), class),
			slices: make(map[SliceID]*Slice),
		})
	}
	return p
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// SliceSize returns the allocation granularity.
func (p *Pool) SliceSize() int64 { return p.sliceSize }

// DiskCount returns the number of disks, healthy or not.
func (p *Pool) DiskCount() int { return len(p.disks) }

// Provision records a thin-provisioned logical commitment. Logical space
// may exceed physical capacity; physical writes still fail when disks
// fill, which is exactly what thin provisioning means.
func (p *Pool) Provision(logical int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logicalBytes += logical
}

// Alloc allocates one slice on the least-used healthy disk not in
// exclude.
func (p *Pool) Alloc(exclude map[DiskID]bool) (*Slice, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocLocked(exclude)
}

func (p *Pool) allocLocked(exclude map[DiskID]bool) (*Slice, error) {
	var best *disk
	for _, d := range p.disks {
		if d.failed || exclude[d.id] {
			continue
		}
		if best == nil || d.dev.Used() < best.dev.Used() {
			best = d
		}
	}
	if best == nil {
		return nil, ErrNoSpace
	}
	if err := best.dev.Alloc(p.sliceSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	p.nextSlice++
	s := &Slice{ID: p.nextSlice, Disk: best.id, Size: p.sliceSize, refs: 1}
	p.slices[s.ID] = s
	best.slices[s.ID] = s
	return s, nil
}

// AllocGroup allocates n slices on n distinct healthy disks — the
// placement-group primitive the PLog layer uses for replication and
// erasure-coded stripes.
func (p *Pool) AllocGroup(n int) ([]*Slice, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	healthy := 0
	for _, d := range p.disks {
		if !d.failed {
			healthy++
		}
	}
	if healthy < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnough, n, healthy)
	}
	exclude := make(map[DiskID]bool, n)
	out := make([]*Slice, 0, n)
	for i := 0; i < n; i++ {
		s, err := p.allocLocked(exclude)
		if err != nil {
			for _, prev := range out {
				p.freeLocked(prev.ID)
			}
			return nil, err
		}
		exclude[s.Disk] = true
		out = append(out, s)
	}
	return out, nil
}

// Retain increments a slice's reference count (snapshot/clone support:
// copy-on-write sharing keeps a slice alive while any snapshot points at
// it).
func (p *Pool) Retain(id SliceID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	s.refs++
	return nil
}

// Free decrements a slice's reference count, releasing the physical space
// when it reaches zero.
func (p *Pool) Free(id SliceID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeLocked(id)
}

func (p *Pool) freeLocked(id SliceID) error {
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	s.refs--
	if s.refs > 0 {
		return nil
	}
	delete(p.slices, id)
	d := p.disks[s.Disk]
	delete(d.slices, id)
	d.dev.Free(s.Size)
	return nil
}

// Write charges a write of n bytes against the slice's disk and advances
// live-byte accounting. It returns the modelled device time.
func (p *Pool) Write(id SliceID, n int64) (time.Duration, error) {
	p.mu.Lock()
	s, ok := p.slices[id]
	if !ok {
		p.mu.Unlock()
		return 0, ErrUnknownSlice
	}
	d := p.disks[s.Disk]
	if d.failed {
		p.mu.Unlock()
		return 0, ErrDiskFailed
	}
	s.live += n
	p.mu.Unlock()
	return d.dev.Write(n), nil
}

// Read charges a read of n bytes against the slice's disk and returns the
// modelled device time.
func (p *Pool) Read(id SliceID, n int64) (time.Duration, error) {
	p.mu.Lock()
	s, ok := p.slices[id]
	if !ok {
		p.mu.Unlock()
		return 0, ErrUnknownSlice
	}
	d := p.disks[s.Disk]
	if d.failed {
		p.mu.Unlock()
		return 0, ErrDiskFailed
	}
	p.mu.Unlock()
	return d.dev.Read(n), nil
}

// MarkGarbage converts n live bytes of the slice into garbage awaiting
// collection (an overwrite or delete in the log-structured pools).
func (p *Pool) MarkGarbage(id SliceID, n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	if n > s.live {
		n = s.live
	}
	s.live -= n
	s.garbage += n
	return nil
}

// GC compacts slices whose garbage fraction exceeds threshold: live bytes
// are rewritten (read + write charged) and the garbage is reclaimed. It
// returns the bytes reclaimed and the total modelled device time.
func (p *Pool) GC(threshold float64) (reclaimed int64, cost time.Duration) {
	p.mu.Lock()
	var victims []*Slice
	for _, s := range p.slices {
		if s.garbage > 0 && float64(s.garbage)/float64(s.garbage+s.live+1) >= threshold {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	p.mu.Unlock()

	for _, s := range victims {
		p.mu.Lock()
		d := p.disks[s.Disk]
		g, live := s.garbage, s.live
		s.garbage = 0
		p.mu.Unlock()
		// Rewrite the live portion to reclaim the dead bytes.
		cost += d.dev.Read(live)
		cost += d.dev.Write(live)
		reclaimed += g
	}
	return reclaimed, cost
}

// FailDisk marks a disk as failed. Its slices stay registered until
// Reconstruct migrates them.
func (p *Pool) FailDisk(id DiskID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return fmt.Errorf("pool: no disk %d", id)
	}
	p.disks[id].failed = true
	return nil
}

// Reconstruct migrates every slice on failed disks onto healthy disks,
// charging the read (from a surviving redundancy copy, modelled as a read
// of the slice's live bytes spread over healthy disks) and the write to
// the new location. It returns bytes migrated and modelled time.
func (p *Pool) Reconstruct() (migrated int64, cost time.Duration, err error) {
	p.mu.Lock()
	var victims []*Slice
	for _, d := range p.disks {
		if !d.failed {
			continue
		}
		for _, s := range d.slices {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	p.mu.Unlock()

	for _, s := range victims {
		p.mu.Lock()
		old := p.disks[s.Disk]
		target, allocErr := p.allocLocked(map[DiskID]bool{s.Disk: true})
		if allocErr != nil {
			p.mu.Unlock()
			return migrated, cost, allocErr
		}
		// Move the slice identity to the new location; the replacement
		// slice record is folded into the original's ID so callers'
		// references stay valid.
		delete(old.slices, s.ID)
		delete(p.slices, target.ID)
		newDisk := p.disks[target.Disk]
		delete(newDisk.slices, target.ID)
		s.Disk = target.Disk
		newDisk.slices[s.ID] = s
		old.dev.Free(s.Size)
		live := s.live
		p.mu.Unlock()

		// Rebuild cost: read redundancy from healthy peers, write here.
		cost += newDisk.dev.Read(live)
		cost += newDisk.dev.Write(live)
		migrated += live
		p.mu.Lock()
		p.reconstructed += live
		p.mu.Unlock()
	}
	return migrated, cost, nil
}

// Stats returns a snapshot of pool accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Disks:         len(p.disks),
		LogicalBytes:  p.logicalBytes,
		SliceCount:    len(p.slices),
		Reconstructed: p.reconstructed,
	}
	for _, d := range p.disks {
		if d.failed {
			st.FailedDisks++
			continue
		}
		st.Capacity += d.dev.Spec().Capacity
		st.Used += d.dev.Used()
	}
	for _, s := range p.slices {
		st.Live += s.live
		st.Garbage += s.garbage
	}
	return st
}

// DiskUsed reports the allocated bytes on one disk, for balance tests.
func (p *Pool) DiskUsed(id DiskID) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return 0
	}
	return p.disks[id].dev.Used()
}
