// Package pool implements the SSD/HDD data storage pools of StreamLake's
// store layer (Section III). Physical space on every disk in the cluster
// is divided into fixed-size slices; slices are organized as logical
// units across disks in different servers for redundancy and load
// balance. The pool also implements the storage-space features the paper
// lists: garbage collection, data reconstruction after disk failure,
// snapshot reference counting, and thin provisioning.
package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streamlake/internal/obs"
	"streamlake/internal/sim"
)

// DiskID identifies a disk within one pool.
type DiskID int

// SliceID identifies an allocated slice within one pool.
type SliceID int64

// DefaultSliceSize is the allocation granularity: 4 MiB, a typical slice
// size for distributed block pools.
const DefaultSliceSize int64 = 4 << 20

// Slice is one allocated unit of physical space on a specific disk.
type Slice struct {
	ID      SliceID
	Disk    DiskID
	Size    int64
	refs    int32 // snapshot/clone reference count; freed at zero
	garbage int64 // dead bytes awaiting GC
	live    int64 // valid bytes written
}

// Live reports the valid bytes in the slice.
func (s *Slice) Live() int64 { return s.live }

// Garbage reports the dead bytes in the slice.
func (s *Slice) Garbage() int64 { return s.garbage }

type disk struct {
	id     DiskID
	dev    *sim.Device
	failed bool
	slices map[SliceID]*Slice
}

// Stats is a snapshot of pool-wide accounting.
type Stats struct {
	Disks         int
	FailedDisks   int
	Capacity      int64
	Used          int64 // bytes held by allocated slices
	Live          int64
	Garbage       int64
	LogicalBytes  int64 // thin-provisioned logical commitments
	SliceCount    int
	Reconstructed int64 // bytes migrated by reconstruction so far
}

// Utilization reports used/capacity, the disk utilization rate from the
// paper's TCO discussion.
func (s Stats) Utilization() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Used) / float64(s.Capacity)
}

// FaultHook intercepts disk I/O for fault injection. Implementations
// return extra latency to charge to the operation and/or an error that
// fails it before any bytes or device time are accounted. Hooks are
// invoked outside the pool's lock, so an implementation may call back
// into pool methods (FailDisk, ReviveDisk) from other goroutines without
// deadlocking.
type FaultHook interface {
	BeforeWrite(disk DiskID, n int64) (time.Duration, error)
	BeforeRead(disk DiskID, n int64) (time.Duration, error)
}

// Pool is a redundancy-aware slice allocator over a set of homogeneous
// simulated disks.
type Pool struct {
	name      string
	clock     *sim.Clock
	class     sim.DeviceClass // device class new disks are built from (AddDisks)
	sliceSize int64

	mu            sync.Mutex
	disks         []*disk
	domains       []int // failure domain per disk; nil = single-domain pool
	slices        map[SliceID]*Slice
	nextSlice     SliceID
	logicalBytes  int64
	reconstructed int64
	hook          FaultHook
	metrics       poolMetrics

	// avoid vetoes new placements on a disk without failing it (the disk
	// still serves reads and repairs-in-place). Stored atomically so the
	// allocator may consult it while holding p.mu and the owner (the
	// cluster's failure detector) may swap it from any goroutine without
	// taking pool locks — the hook itself must therefore never call back
	// into the pool.
	avoid atomic.Pointer[func(DiskID) bool]
}

// poolMetrics holds the pool's obs instruments. All fields are nil-safe
// no-ops until SetObs wires a registry; they are copied out under p.mu
// and bumped outside it, so the hot path pays one atomic add per event.
type poolMetrics struct {
	writeOps, writeBytes *obs.Counter
	readOps, readBytes   *obs.Counter
}

// Errors returned by pool operations.
var (
	ErrNoSpace      = errors.New("pool: no disk with free capacity")
	ErrUnknownSlice = errors.New("pool: unknown slice")
	ErrDiskFailed   = errors.New("pool: disk has failed")
	ErrNotEnough    = errors.New("pool: not enough healthy disks for placement group")
)

// New builds a pool of n identical disks of the given device class. The
// clock receives no charges directly; operation costs are returned to
// callers, who decide how to combine parallel device times.
func New(name string, clock *sim.Clock, class sim.DeviceClass, n int, sliceSize int64) *Pool {
	if sliceSize <= 0 {
		sliceSize = DefaultSliceSize
	}
	p := &Pool{
		name:      name,
		clock:     clock,
		class:     class,
		sliceSize: sliceSize,
		slices:    make(map[SliceID]*Slice),
	}
	for i := 0; i < n; i++ {
		p.disks = append(p.disks, &disk{
			id:     DiskID(i),
			dev:    sim.NewDeviceOf(fmt.Sprintf("%s-disk%d", name, i), class),
			slices: make(map[SliceID]*Slice),
		})
	}
	return p
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// SetFaultHook installs (or clears, with nil) the pool's fault-injection
// hook. All slice reads and writes, including repair I/O, pass through
// the hook.
func (p *Pool) SetFaultHook(h FaultHook) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hook = h
}

// SetObs registers the pool's telemetry with an obs registry: I/O
// counters labelled by pool name, plus utilization / queue-depth /
// health gauges evaluated from Stats at scrape time. A nil registry
// leaves the pool unobserved at ~zero cost.
func (p *Pool) SetObs(reg *obs.Registry) {
	label := `{pool="` + p.name + `"}`
	p.mu.Lock()
	p.metrics = poolMetrics{
		writeOps:   reg.Counter("pool_write_ops_total" + label),
		writeBytes: reg.Counter("pool_write_bytes_total" + label),
		readOps:    reg.Counter("pool_read_ops_total" + label),
		readBytes:  reg.Counter("pool_read_bytes_total" + label),
	}
	p.mu.Unlock()
	if reg == nil {
		return
	}
	reg.GaugeFunc("pool_utilization"+label, func() float64 { return p.Stats().Utilization() })
	reg.GaugeFunc("pool_failed_disks"+label, func() float64 { return float64(p.Stats().FailedDisks) })
	reg.GaugeFunc("pool_slices"+label, func() float64 { return float64(p.Stats().SliceCount) })
	// Average queue depth by Little's law: aggregate device busy time
	// over elapsed virtual time is the mean number of outstanding ops.
	reg.GaugeFunc("pool_queue_depth"+label, func() float64 {
		now := p.clock.Now()
		if now == 0 {
			return 0
		}
		var busy time.Duration
		p.mu.Lock()
		for _, d := range p.disks {
			busy += d.dev.Stats().BusyTime
		}
		p.mu.Unlock()
		return float64(busy) / float64(now)
	})
}

// SetDomains assigns each disk to a failure domain (a cluster node, a
// rack). AllocGroup then spreads a placement group across as many
// domains as possible — replicas and EC shards of one group never share
// a domain while enough domains exist — and Relocate refuses targets in
// the domains of the group's surviving copies. A nil assignment (the
// default) keeps the pool single-domain: allocation order is then
// byte-identical to the pre-domain allocator, so existing seeded runs
// replay unchanged.
func (p *Pool) SetDomains(domainOf []int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if domainOf == nil {
		p.domains = nil
		return
	}
	p.domains = make([]int, len(p.disks))
	for i := range p.domains {
		if i < len(domainOf) {
			p.domains[i] = domainOf[i]
		}
	}
}

func (p *Pool) domainOfLocked(id DiskID) int {
	if p.domains == nil || int(id) < 0 || int(id) >= len(p.domains) {
		return -1
	}
	return p.domains[id]
}

// DomainOf reports a disk's failure domain, or -1 when the pool is
// single-domain.
func (p *Pool) DomainOf(id DiskID) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.domainOfLocked(id)
}

// DomainDisks lists the disks assigned to one failure domain, in disk
// order.
func (p *Pool) DomainDisks(domain int) []DiskID {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []DiskID
	for _, d := range p.disks {
		if p.domainOfLocked(d.id) == domain {
			out = append(out, d.id)
		}
	}
	return out
}

// DomainSlices counts the slices currently hosted in each failure
// domain (the "slices owned" gauge for per-node observability).
func (p *Pool) DomainSlices() map[int]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]int)
	for _, d := range p.disks {
		out[p.domainOfLocked(d.id)] += len(d.slices)
	}
	return out
}

// SetAvoid installs (or clears, with nil) the placement veto consulted
// on every allocation. A vetoed disk takes no new slices while any
// non-vetoed disk can serve; if every candidate is vetoed the allocator
// falls back to ignoring the veto rather than failing, so draining a
// whole pool never bricks allocation. The hook runs under the pool
// lock and must not call back into the pool.
func (p *Pool) SetAvoid(f func(DiskID) bool) {
	if f == nil {
		p.avoid.Store(nil)
		return
	}
	p.avoid.Store(&f)
}

// DiskAvoided reports whether the placement veto currently excludes a
// disk — read paths (hedging, scrub, repair sources) use it to skip
// copies on suspect or draining nodes.
func (p *Pool) DiskAvoided(id DiskID) bool {
	fp := p.avoid.Load()
	return fp != nil && (*fp)(id)
}

// SliceSize returns the allocation granularity.
func (p *Pool) SliceSize() int64 { return p.sliceSize }

// DiskCount returns the number of disks, healthy or not.
func (p *Pool) DiskCount() int { return len(p.disks) }

// Provision records a thin-provisioned logical commitment. Logical space
// may exceed physical capacity; physical writes still fail when disks
// fill, which is exactly what thin provisioning means.
func (p *Pool) Provision(logical int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.logicalBytes += logical
}

// Alloc allocates one slice on the least-used healthy disk not in
// exclude.
func (p *Pool) Alloc(exclude map[DiskID]bool) (*Slice, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocLocked(exclude)
}

func (p *Pool) allocLocked(exclude map[DiskID]bool) (*Slice, error) {
	return p.allocOnLocked(p.pickLocked(exclude, nil))
}

// pickLocked selects the least-used healthy disk outside exclude.
// Vetoed disks (SetAvoid) are skipped unless no other candidate exists.
// When domainUsed is non-nil the primary sort key becomes "fewest
// group-mates already placed in this disk's domain", which spreads a
// placement group across failure domains; ties fall through to the
// least-used rule, so a nil domainUsed (or a single-domain pool, where
// every count is equal) reproduces the legacy allocator exactly.
func (p *Pool) pickLocked(exclude map[DiskID]bool, domainUsed map[int]int) *disk {
	var avoid func(DiskID) bool
	if fp := p.avoid.Load(); fp != nil {
		avoid = *fp
	}
	for pass := 0; pass < 2; pass++ {
		var best *disk
		bestDom := 0
		for _, d := range p.disks {
			if d.failed || exclude[d.id] {
				continue
			}
			if pass == 0 && avoid != nil && avoid(d.id) {
				continue
			}
			du := 0
			if domainUsed != nil {
				du = domainUsed[p.domainOfLocked(d.id)]
			}
			if best == nil || du < bestDom || (du == bestDom && d.dev.Used() < best.dev.Used()) {
				best, bestDom = d, du
			}
		}
		if best != nil || avoid == nil {
			return best
		}
	}
	return nil
}

func (p *Pool) allocOnLocked(best *disk) (*Slice, error) {
	if best == nil {
		return nil, ErrNoSpace
	}
	if err := best.dev.Alloc(p.sliceSize); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	p.nextSlice++
	s := &Slice{ID: p.nextSlice, Disk: best.id, Size: p.sliceSize, refs: 1}
	p.slices[s.ID] = s
	best.slices[s.ID] = s
	return s, nil
}

// AllocGroup allocates n slices on n distinct healthy disks — the
// placement-group primitive the PLog layer uses for replication and
// erasure-coded stripes.
func (p *Pool) AllocGroup(n int) ([]*Slice, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	healthy := 0
	for _, d := range p.disks {
		if !d.failed {
			healthy++
		}
	}
	if healthy < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnough, n, healthy)
	}
	exclude := make(map[DiskID]bool, n)
	var domainUsed map[int]int
	if p.domains != nil {
		domainUsed = make(map[int]int)
	}
	out := make([]*Slice, 0, n)
	for i := 0; i < n; i++ {
		s, err := p.allocOnLocked(p.pickLocked(exclude, domainUsed))
		if err != nil {
			for _, prev := range out {
				p.freeLocked(prev.ID)
			}
			return nil, err
		}
		exclude[s.Disk] = true
		if domainUsed != nil {
			domainUsed[p.domainOfLocked(s.Disk)]++
		}
		out = append(out, s)
	}
	return out, nil
}

// AllocGroupIn allocates n slices, steering the i-th toward preferred
// failure domain pref[i] (the cluster's consistent-hash placement
// order). A preferred domain with no allocatable disk — failed, full,
// or vetoed — falls back to the regular domain-spread pick, so
// placement degrades gracefully as nodes die instead of failing.
func (p *Pool) AllocGroupIn(pref []int, n int) ([]*Slice, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	healthy := 0
	for _, d := range p.disks {
		if !d.failed {
			healthy++
		}
	}
	if healthy < n {
		return nil, fmt.Errorf("%w: need %d, have %d", ErrNotEnough, n, healthy)
	}
	exclude := make(map[DiskID]bool, n)
	domainUsed := make(map[int]int)
	out := make([]*Slice, 0, n)
	for i := 0; i < n; i++ {
		var best *disk
		if i < len(pref) {
			best = p.pickInDomainLocked(pref[i], exclude)
		}
		if best == nil {
			best = p.pickLocked(exclude, domainUsed)
		}
		s, err := p.allocOnLocked(best)
		if err != nil {
			for _, prev := range out {
				p.freeLocked(prev.ID)
			}
			return nil, err
		}
		exclude[s.Disk] = true
		domainUsed[p.domainOfLocked(s.Disk)]++
		out = append(out, s)
	}
	return out, nil
}

// pickInDomainLocked selects the least-used healthy, non-vetoed disk of
// one failure domain, or nil when the domain has no candidate.
func (p *Pool) pickInDomainLocked(domain int, exclude map[DiskID]bool) *disk {
	var avoid func(DiskID) bool
	if fp := p.avoid.Load(); fp != nil {
		avoid = *fp
	}
	var best *disk
	for _, d := range p.disks {
		if d.failed || exclude[d.id] || p.domainOfLocked(d.id) != domain {
			continue
		}
		if avoid != nil && avoid(d.id) {
			continue
		}
		if best == nil || d.dev.Used() < best.dev.Used() {
			best = d
		}
	}
	return best
}

// Retain increments a slice's reference count (snapshot/clone support:
// copy-on-write sharing keeps a slice alive while any snapshot points at
// it).
func (p *Pool) Retain(id SliceID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	s.refs++
	return nil
}

// Free decrements a slice's reference count, releasing the physical space
// when it reaches zero.
func (p *Pool) Free(id SliceID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeLocked(id)
}

func (p *Pool) freeLocked(id SliceID) error {
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	s.refs--
	if s.refs > 0 {
		return nil
	}
	delete(p.slices, id)
	d := p.disks[s.Disk]
	delete(d.slices, id)
	d.dev.Free(s.Size)
	return nil
}

// Write charges a write of n bytes against the slice's disk and advances
// live-byte accounting. It returns the modelled device time. No bytes or
// device time are charged when the write fails (failed disk, injected
// fault), so callers never need to undo a failed Write.
func (p *Pool) Write(id SliceID, n int64) (time.Duration, error) {
	p.mu.Lock()
	s, ok := p.slices[id]
	if !ok {
		p.mu.Unlock()
		return 0, ErrUnknownSlice
	}
	d := p.disks[s.Disk]
	if d.failed {
		p.mu.Unlock()
		return 0, ErrDiskFailed
	}
	hook := p.hook
	m := p.metrics
	diskID := s.Disk
	p.mu.Unlock()
	var extra time.Duration
	if hook != nil {
		e, err := hook.BeforeWrite(diskID, n)
		if err != nil {
			return 0, err
		}
		extra = e
	}
	p.mu.Lock()
	s.live += n
	p.mu.Unlock()
	m.writeOps.Inc()
	m.writeBytes.Add(n)
	return d.dev.Write(n) + extra, nil
}

// RollbackWrite reverses the byte and device-time accounting of one
// successful Write of n bytes — the all-or-nothing half of a redundant
// write whose sibling writes failed beyond the policy's fault tolerance.
func (p *Pool) RollbackWrite(id SliceID, n int64) {
	p.mu.Lock()
	s, ok := p.slices[id]
	if !ok {
		p.mu.Unlock()
		return
	}
	s.live -= n
	if s.live < 0 {
		s.live = 0
	}
	d := p.disks[s.Disk]
	p.mu.Unlock()
	d.dev.RefundWrite(n)
}

// Read charges a read of n bytes against the slice's disk and returns the
// modelled device time.
func (p *Pool) Read(id SliceID, n int64) (time.Duration, error) {
	p.mu.Lock()
	s, ok := p.slices[id]
	if !ok {
		p.mu.Unlock()
		return 0, ErrUnknownSlice
	}
	d := p.disks[s.Disk]
	if d.failed {
		p.mu.Unlock()
		return 0, ErrDiskFailed
	}
	hook := p.hook
	m := p.metrics
	diskID := s.Disk
	p.mu.Unlock()
	var extra time.Duration
	if hook != nil {
		e, err := hook.BeforeRead(diskID, n)
		if err != nil {
			return 0, err
		}
		extra = e
	}
	m.readOps.Inc()
	m.readBytes.Add(n)
	return d.dev.Read(n) + extra, nil
}

// MarkGarbage converts n live bytes of the slice into garbage awaiting
// collection (an overwrite or delete in the log-structured pools).
func (p *Pool) MarkGarbage(id SliceID, n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return ErrUnknownSlice
	}
	if n > s.live {
		n = s.live
	}
	s.live -= n
	s.garbage += n
	return nil
}

// GC compacts slices whose garbage fraction exceeds threshold: live bytes
// are rewritten (read + write charged) and the garbage is reclaimed. It
// returns the bytes reclaimed and the total modelled device time.
func (p *Pool) GC(threshold float64) (reclaimed int64, cost time.Duration) {
	p.mu.Lock()
	var victims []*Slice
	for _, s := range p.slices {
		if s.garbage > 0 && float64(s.garbage)/float64(s.garbage+s.live+1) >= threshold {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	p.mu.Unlock()

	for _, s := range victims {
		p.mu.Lock()
		d := p.disks[s.Disk]
		g, live := s.garbage, s.live
		s.garbage = 0
		p.mu.Unlock()
		// Rewrite the live portion to reclaim the dead bytes.
		cost += d.dev.Read(live)
		cost += d.dev.Write(live)
		reclaimed += g
	}
	return reclaimed, cost
}

// FailDisk marks a disk as failed. Its slices stay registered until
// Reconstruct or Relocate migrates them, or ReviveDisk brings the disk
// back.
func (p *Pool) FailDisk(id DiskID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return fmt.Errorf("pool: no disk %d", id)
	}
	p.disks[id].failed = true
	return nil
}

// ReviveDisk clears a disk's failed flag — a transient outage (a pulled
// cable, a crashed enclosure controller) ending. Slices that missed
// writes while the disk was down are still stale; the repair service
// catches them up.
func (p *Pool) ReviveDisk(id DiskID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return fmt.Errorf("pool: no disk %d", id)
	}
	p.disks[id].failed = false
	return nil
}

// DiskFailed reports whether a disk is currently marked failed.
func (p *Pool) DiskFailed(id DiskID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return false
	}
	return p.disks[id].failed
}

// AddDisks grows the pool at runtime with n fresh disks of the pool's
// device class, all assigned to the given failure domain — the storage
// a joining node contributes. Existing disks, domains, and slices are
// untouched; the new disk IDs (dense, continuing the existing range)
// are returned so the caller can extend its own disk→node table.
func (p *Pool) AddDisks(n int, domain int) []DiskID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n <= 0 {
		return nil
	}
	// A domain assignment only makes sense on a domain-aware pool; seed
	// the table with each existing disk's current domain (identity) so
	// single-domain pools stay single-domain until SetDomains says
	// otherwise.
	if p.domains == nil && domain >= 0 {
		p.domains = make([]int, len(p.disks))
		for i := range p.domains {
			p.domains[i] = i
		}
	}
	ids := make([]DiskID, 0, n)
	for i := 0; i < n; i++ {
		id := DiskID(len(p.disks))
		p.disks = append(p.disks, &disk{
			id:     id,
			dev:    sim.NewDeviceOf(fmt.Sprintf("%s-disk%d", p.name, int(id)), p.class),
			slices: make(map[SliceID]*Slice),
		})
		if p.domains != nil {
			p.domains = append(p.domains, domain)
		}
		ids = append(ids, id)
	}
	return ids
}

// RelocateTo moves a slice — keeping its identity and byte accounting,
// like Relocate — onto the least-used healthy disk among targets. It is
// the arc-migration half of a node join: the cluster picks the joining
// node's disks as targets and the repair plane rebuilds the copy there.
func (p *Pool) RelocateTo(id SliceID, targets map[DiskID]bool) (DiskID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return 0, ErrUnknownSlice
	}
	var best *disk
	for _, d := range p.disks {
		if !targets[d.id] || d.failed || d.id == s.Disk {
			continue
		}
		if best == nil || d.dev.Used() < best.dev.Used() {
			best = d
		}
	}
	if best == nil {
		return 0, ErrNoSpace
	}
	if err := best.dev.Alloc(s.Size); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrNoSpace, err)
	}
	old := p.disks[s.Disk]
	delete(old.slices, s.ID)
	old.dev.Free(s.Size)
	s.Disk = best.id
	best.slices[s.ID] = s
	return best.id, nil
}

// SliceLive reports a slice's live bytes, or -1 for an unknown slice —
// the movement-bound estimator's per-copy cost.
func (p *Pool) SliceLive(id SliceID) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return -1
	}
	return s.live
}

// SliceDisk reports which disk currently hosts a slice.
func (p *Pool) SliceDisk(id SliceID) (DiskID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return 0, ErrUnknownSlice
	}
	return s.Disk, nil
}

// Relocate moves a slice — keeping its identity and byte accounting —
// from its current disk onto a healthy disk not in exclude. It is the
// placement half of repairing a slice stranded on a dead disk; the
// caller charges the rebuild I/O separately via RepairSlice.
func (p *Pool) Relocate(id SliceID, exclude map[DiskID]bool) (DiskID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.slices[id]
	if !ok {
		return 0, ErrUnknownSlice
	}
	ex := make(map[DiskID]bool, len(exclude)+1)
	ex[s.Disk] = true
	for d := range exclude {
		ex[d] = true
	}
	// Domain-aware pools also exclude every domain-mate of an excluded
	// disk: a slice relocated off a dead node must not land on a node
	// that already hosts one of the group's surviving copies.
	if p.domains != nil {
		doms := make(map[int]bool, len(ex))
		for d := range ex {
			doms[p.domainOfLocked(d)] = true
		}
		for _, dd := range p.disks {
			if doms[p.domainOfLocked(dd.id)] {
				ex[dd.id] = true
			}
		}
	}
	target, err := p.allocLocked(ex)
	if err != nil {
		return 0, err
	}
	old := p.disks[s.Disk]
	// Fold the freshly allocated slice's space into the original slice's
	// identity so callers' references stay valid (same trick Reconstruct
	// uses).
	delete(old.slices, s.ID)
	delete(p.slices, target.ID)
	nd := p.disks[target.Disk]
	delete(nd.slices, target.ID)
	s.Disk = target.Disk
	nd.slices[s.ID] = s
	old.dev.Free(s.Size)
	return target.Disk, nil
}

// RepairSlice charges the reconstruction I/O for rebuilding redundancy
// on the target slice: rebuild bytes are read from each source slice in
// parallel (cost is the slowest source) and written to the target.
// liveDelta restores live-byte accounting the failed original writes
// never charged. Repair I/O passes through the fault hook, so repairs
// themselves can suffer injected faults and must be retried.
func (p *Pool) RepairSlice(target SliceID, sources []SliceID, rebuild, liveDelta int64) (time.Duration, error) {
	p.mu.Lock()
	ts, ok := p.slices[target]
	if !ok {
		p.mu.Unlock()
		return 0, ErrUnknownSlice
	}
	td := p.disks[ts.Disk]
	if td.failed {
		p.mu.Unlock()
		return 0, ErrDiskFailed
	}
	type src struct {
		dev *sim.Device
		id  DiskID
	}
	srcs := make([]src, 0, len(sources))
	for _, sid := range sources {
		ss, ok := p.slices[sid]
		if !ok {
			p.mu.Unlock()
			return 0, ErrUnknownSlice
		}
		sd := p.disks[ss.Disk]
		if sd.failed {
			p.mu.Unlock()
			return 0, ErrDiskFailed
		}
		srcs = append(srcs, src{sd.dev, ss.Disk})
	}
	hook := p.hook
	targetDisk := ts.Disk
	p.mu.Unlock()

	var cost time.Duration
	for _, sc := range srcs {
		var extra time.Duration
		if hook != nil {
			e, err := hook.BeforeRead(sc.id, rebuild)
			if err != nil {
				return 0, err
			}
			extra = e
		}
		if d := sc.dev.Read(rebuild) + extra; d > cost {
			cost = d
		}
	}
	var extra time.Duration
	if hook != nil {
		e, err := hook.BeforeWrite(targetDisk, rebuild)
		if err != nil {
			return cost, err
		}
		extra = e
	}
	cost += td.dev.Write(rebuild) + extra
	p.mu.Lock()
	ts.live += liveDelta
	p.reconstructed += rebuild
	p.mu.Unlock()
	return cost, nil
}

// DiskStats snapshots one disk's device counters (for accounting
// regression tests and the lakectl faults status view).
func (p *Pool) DiskStats(id DiskID) sim.DeviceStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return sim.DeviceStats{}
	}
	return p.disks[id].dev.Stats()
}

// DiskDevice exposes one disk's simulated device (latency-degradation
// fault injection dials the device's slowdown).
func (p *Pool) DiskDevice(id DiskID) *sim.Device {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return nil
	}
	return p.disks[id].dev
}

// Reconstruct migrates every slice on failed disks onto healthy disks,
// charging the read (from a surviving redundancy copy, modelled as a read
// of the slice's live bytes spread over healthy disks) and the write to
// the new location. It returns bytes migrated and modelled time.
func (p *Pool) Reconstruct() (migrated int64, cost time.Duration, err error) {
	p.mu.Lock()
	var victims []*Slice
	for _, d := range p.disks {
		if !d.failed {
			continue
		}
		for _, s := range d.slices {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	p.mu.Unlock()

	for _, s := range victims {
		p.mu.Lock()
		old := p.disks[s.Disk]
		target, allocErr := p.allocLocked(map[DiskID]bool{s.Disk: true})
		if allocErr != nil {
			p.mu.Unlock()
			return migrated, cost, allocErr
		}
		// Move the slice identity to the new location; the replacement
		// slice record is folded into the original's ID so callers'
		// references stay valid.
		delete(old.slices, s.ID)
		delete(p.slices, target.ID)
		newDisk := p.disks[target.Disk]
		delete(newDisk.slices, target.ID)
		s.Disk = target.Disk
		newDisk.slices[s.ID] = s
		old.dev.Free(s.Size)
		live := s.live
		p.mu.Unlock()

		// Rebuild cost: read redundancy from healthy peers, write here.
		cost += newDisk.dev.Read(live)
		cost += newDisk.dev.Write(live)
		migrated += live
		p.mu.Lock()
		p.reconstructed += live
		p.mu.Unlock()
	}
	return migrated, cost, nil
}

// Stats returns a snapshot of pool accounting.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Disks:         len(p.disks),
		LogicalBytes:  p.logicalBytes,
		SliceCount:    len(p.slices),
		Reconstructed: p.reconstructed,
	}
	for _, d := range p.disks {
		if d.failed {
			st.FailedDisks++
			continue
		}
		st.Capacity += d.dev.Spec().Capacity
		st.Used += d.dev.Used()
	}
	for _, s := range p.slices {
		st.Live += s.live
		st.Garbage += s.garbage
	}
	return st
}

// DiskUsed reports the allocated bytes on one disk, for balance tests.
func (p *Pool) DiskUsed(id DiskID) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) < 0 || int(id) >= len(p.disks) {
		return 0
	}
	return p.disks[id].dev.Used()
}
