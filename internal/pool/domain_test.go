package pool

import (
	"testing"

	"streamlake/internal/sim"
)

func newDomainPool(t *testing.T, disks, nodes int) *Pool {
	t.Helper()
	p := New("domtest", sim.NewClock(), sim.NVMeSSD, disks, 1<<20)
	domains := make([]int, disks)
	for i := range domains {
		domains[i] = i % nodes
	}
	p.SetDomains(domains)
	return p
}

func TestAllocGroupSpreadsDomains(t *testing.T) {
	p := newDomainPool(t, 9, 3)
	slices, err := p.AllocGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for _, s := range slices {
		d := p.DomainOf(s.Disk)
		if seen[d] {
			t.Fatalf("two copies share domain %d: %+v", d, slices)
		}
		seen[d] = true
	}
}

func TestAllocGroupInHonorsPreference(t *testing.T) {
	p := newDomainPool(t, 9, 3)
	pref := []int{2, 0, 1}
	slices, err := p.AllocGroupIn(pref, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slices {
		if got := p.DomainOf(s.Disk); got != pref[i] {
			t.Fatalf("slice %d landed in domain %d, want %d", i, got, pref[i])
		}
	}
}

func TestAllocGroupInFallsBackPastPreference(t *testing.T) {
	p := newDomainPool(t, 6, 3)
	// Ask for more copies than the preference names: the tail falls back
	// to the domain-spread picker.
	slices, err := p.AllocGroupIn([]int{1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DomainOf(slices[0].Disk); got != 1 {
		t.Fatalf("first slice in domain %d, want 1", got)
	}
	seen := make(map[int]bool)
	for _, s := range slices {
		d := p.DomainOf(s.Disk)
		if seen[d] {
			t.Fatalf("two copies share domain %d", d)
		}
		seen[d] = true
	}
}

func TestAvoidVetoesAllocation(t *testing.T) {
	p := newDomainPool(t, 9, 3)
	p.SetAvoid(func(d DiskID) bool { return int(d)%3 == 1 }) // node 1 suspect
	slices, err := p.AllocGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slices {
		if p.DomainOf(s.Disk) == 1 {
			t.Fatalf("allocated on avoided node: disk %d", s.Disk)
		}
	}
}

func TestAvoidFallbackWhenAllVetoed(t *testing.T) {
	p := newDomainPool(t, 6, 3)
	p.SetAvoid(func(DiskID) bool { return true })
	// Every disk vetoed: allocation must still succeed rather than
	// wedging writes (availability beats placement hygiene).
	if _, err := p.AllocGroup(3); err != nil {
		t.Fatalf("alloc with everything vetoed: %v", err)
	}
}

func TestDomainSlicesAccounting(t *testing.T) {
	p := newDomainPool(t, 6, 3)
	if _, err := p.AllocGroup(3); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range p.DomainSlices() {
		total += n
	}
	if total != 3 {
		t.Fatalf("domain slice accounting: %v", p.DomainSlices())
	}
}

func TestRelocateExcludesDomainMates(t *testing.T) {
	p := newDomainPool(t, 6, 3)
	slices, err := p.AllocGroup(3)
	if err != nil {
		t.Fatal(err)
	}
	// Relocating away from slice 0's disk must also avoid slice 0's
	// domain-mate disks — otherwise the new copy would co-locate with
	// the failed node's other disks.
	excluded := slices[0].Disk
	dst, err := p.Relocate(slices[0].ID, map[DiskID]bool{excluded: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.DomainOf(dst) == p.DomainOf(excluded) {
		t.Fatalf("relocation stayed in the failed domain: disk %d", dst)
	}
}
