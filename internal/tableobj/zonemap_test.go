package tableobj

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"streamlake/internal/colfile"
)

// Files written without zone maps must keep the legacy stats encoding
// byte-for-byte — that is what keeps metadata (and replay digests)
// identical when the feature is off.
func TestStatsLegacyEncodingUnchanged(t *testing.T) {
	f := DataFile{
		Min: []colfile.Value{colfile.IntValue(1), colfile.StringValue("a")},
		Max: []colfile.Value{colfile.IntValue(9), colfile.StringValue("z")},
	}
	enc := encodeStats(f)
	if enc[0] == statsV2Marker {
		t.Fatal("zone-free stats picked the v2 encoding")
	}
	var legacy []byte
	legacy = append(legacy, 2) // uvarint field count
	for i := range f.Min {
		legacy = colfile.AppendValue(legacy, f.Min[i])
		legacy = colfile.AppendValue(legacy, f.Max[i])
	}
	if enc != string(legacy) {
		t.Fatalf("legacy encoding drifted:\n got %x\nwant %x", enc, legacy)
	}
	var back DataFile
	if err := decodeStats(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Min, f.Min) || !reflect.DeepEqual(back.Max, f.Max) {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Zones != nil || back.Blooms != nil {
		t.Fatal("legacy decode invented zones/blooms")
	}
}

// V2 stats (zones + blooms) survive a full commit encode/decode cycle.
func TestStatsV2RoundTripThroughCommit(t *testing.T) {
	bloom := NewBloom(3)
	bloom.Add(colfile.IntValue(7))
	bloom.Add(colfile.IntValue(42))
	f := DataFile{
		Path: "/lake/t/data/default/000000000001.col", Partition: "default",
		Rows: 4, Bytes: 128,
		Min: []colfile.Value{colfile.IntValue(1)},
		Max: []colfile.Value{colfile.IntValue(42)},
		Zones: []ZoneMap{
			{Min: []colfile.Value{colfile.IntValue(1)}, Max: []colfile.Value{colfile.IntValue(7)}},
			{Min: []colfile.Value{colfile.IntValue(40)}, Max: []colfile.Value{colfile.IntValue(42)}},
		},
		Blooms: []*Bloom{bloom},
	}
	blob, err := EncodeCommit(Commit{ID: 1, Ops: []FileOp{{Add: true, File: f}}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DecodeCommit(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := c.Ops[0].File
	if !reflect.DeepEqual(got.Zones, f.Zones) {
		t.Fatalf("zones: %+v", got.Zones)
	}
	if len(got.Blooms) != 1 || got.Blooms[0].K != bloom.K || !bytes.Equal(got.Blooms[0].Bits, bloom.Bits) {
		t.Fatalf("blooms: %+v", got.Blooms)
	}
	if !got.Blooms[0].MayContain(colfile.IntValue(42)) {
		t.Fatal("decoded bloom lost a member")
	}
	// A nil bloom entry (column without a filter) round-trips as nil.
	f.Blooms = []*Bloom{nil}
	blob, _ = EncodeCommit(Commit{ID: 2, Ops: []FileOp{{Add: true, File: f}}})
	c, err = DecodeCommit(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Ops[0].File.Blooms; len(got) != 1 || got[0] != nil {
		t.Fatalf("nil bloom round trip: %+v", got)
	}
}

func TestBloomMembership(t *testing.T) {
	b := NewBloom(100)
	for i := 0; i < 100; i++ {
		b.Add(colfile.StringValue(fmt.Sprintf("member-%d", i)))
	}
	for i := 0; i < 100; i++ {
		if !b.MayContain(colfile.StringValue(fmt.Sprintf("member-%d", i))) {
			t.Fatalf("false negative on member-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if b.MayContain(colfile.StringValue(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	// ~1% expected at 10 bits/key; 5% is far beyond noise.
	if fp > 50 {
		t.Fatalf("false positive rate %d/1000", fp)
	}
	// A nil filter can never prune.
	var nilBloom *Bloom
	if !nilBloom.MayContain(colfile.IntValue(1)) {
		t.Fatal("nil bloom pruned")
	}
}

// With zone maps enabled on the table handle, WriteRows harvests
// per-row-group ranges from the encoded footer and builds per-column
// blooms covering every written value; disabled, files carry neither.
func TestWriteRowsHarvestsZoneMaps(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "zm")
	tbl.SetZoneMaps(true)
	var rows []colfile.Row
	for i := 0; i < 500; i++ {
		rows = append(rows, dpiRow(fmt.Sprintf("u%03d", i), int64(i), "bj"))
	}
	x, err := tbl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	f, err := x.WriteRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Zones) == 0 {
		t.Fatal("no zones harvested")
	}
	for _, z := range f.Zones {
		if len(z.Min) != dpiSchema.NumFields() || len(z.Max) != dpiSchema.NumFields() {
			t.Fatalf("zone not schema-aligned: %+v", z)
		}
	}
	// Zone ranges must cover the file range for the int column.
	ts := dpiSchema.FieldIndex("start_time")
	lo, hi := f.Zones[0].Min[ts], f.Zones[len(f.Zones)-1].Max[ts]
	if colfile.Compare(lo, f.Min[ts]) != 0 || colfile.Compare(hi, f.Max[ts]) != 0 {
		t.Fatalf("zones don't span the file: %v..%v vs %v..%v", lo, hi, f.Min[ts], f.Max[ts])
	}
	if len(f.Blooms) != dpiSchema.NumFields() {
		t.Fatalf("blooms: %d", len(f.Blooms))
	}
	for _, r := range rows {
		for c := range r {
			if !f.Blooms[c].MayContain(r[c]) {
				t.Fatalf("bloom false negative on %v", r[c])
			}
		}
	}
	if _, err := x.Commit(); err != nil {
		t.Fatal(err)
	}
	// And the committed snapshot preserves them.
	snap, _, err := tbl.Current()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Files) != 1 || len(snap.Files[0].Zones) != len(f.Zones) {
		t.Fatalf("snapshot dropped zones: %+v", snap.Files)
	}

	tbl.SetZoneMaps(false)
	x2, _ := tbl.Begin()
	f2, err := x2.WriteRows(rows[:10])
	if err != nil {
		t.Fatal(err)
	}
	if f2.Zones != nil || f2.Blooms != nil {
		t.Fatal("zone maps collected while disabled")
	}
	x2.Abort()
}
