package tableobj

import (
	"testing"
	"time"

	"streamlake/internal/colfile"
)

// FuzzDecodeCommit hardens the commit-file parser.
func FuzzDecodeCommit(f *testing.F) {
	file := DataFile{
		Path: "p/f1", Partition: "x=1", Rows: 3, Bytes: 100,
		Min: []colfile.Value{colfile.IntValue(1)},
		Max: []colfile.Value{colfile.IntValue(9)},
	}
	valid, _ := EncodeCommit(Commit{ID: 1, Timestamp: time.Second, Ops: []FileOp{{Add: true, File: file}}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCommit(data)
		if err != nil {
			return
		}
		for _, op := range c.Ops {
			if len(op.File.Min) != len(op.File.Max) {
				t.Fatal("asymmetric stats decoded")
			}
		}
	})
}

// FuzzDecodeSnapshot hardens the snapshot-file parser.
func FuzzDecodeSnapshot(f *testing.F) {
	valid, _ := EncodeSnapshot(Snapshot{
		ID: 2, ParentID: 1, Timestamp: time.Second,
		CommitIDs: []int64{1, 2}, RowCount: 5,
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:4])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		for _, df := range s.Files {
			if len(df.Min) != len(df.Max) {
				t.Fatal("asymmetric stats decoded")
			}
		}
	})
}
