package tableobj

import (
	"encoding/binary"
	"errors"
	"hash/fnv"

	"streamlake/internal/colfile"
)

// Bloom is a per-column membership filter a data file's metadata can
// carry: equality predicates consult it during planning to prune files
// whose value ranges overlap the probe but which provably never stored
// the probed value. Keys are the canonical value encoding
// (colfile.AppendValue), hashed with FNV-64 double hashing — fully
// deterministic, so encoded filters are byte-stable across runs.
type Bloom struct {
	K    uint8  // probes per key
	Bits []byte // the bit array
}

const (
	bloomBitsPerKey = 10
	bloomProbes     = 4 // round(ln2 * 10) ≈ optimal k for 10 bits/key
)

// NewBloom sizes a filter for n keys at ~10 bits per key (≈1% false
// positives with 4 probes).
func NewBloom(n int) *Bloom {
	if n < 1 {
		n = 1
	}
	bits := n * bloomBitsPerKey
	return &Bloom{K: bloomProbes, Bits: make([]byte, (bits+7)/8)}
}

// hashValue derives the two FNV-64 hashes double hashing combines.
func hashValue(v colfile.Value) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(colfile.AppendValue(nil, v))
	h1 := h.Sum64()
	// Derived second hash (odd, so probe steps cycle the whole table).
	h2 := h1>>33 | h1<<31 | 1
	return h1, h2
}

// Add records a value.
func (b *Bloom) Add(v colfile.Value) {
	h1, h2 := hashValue(v)
	n := uint64(len(b.Bits)) * 8
	for i := uint64(0); i < uint64(b.K); i++ {
		bit := (h1 + i*h2) % n
		b.Bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether v could have been added; false is
// definitive absence.
func (b *Bloom) MayContain(v colfile.Value) bool {
	if b == nil || len(b.Bits) == 0 {
		return true // no filter: cannot prune
	}
	h1, h2 := hashValue(v)
	n := uint64(len(b.Bits)) * 8
	for i := uint64(0); i < uint64(b.K); i++ {
		bit := (h1 + i*h2) % n
		if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// appendBloom serializes b (nil encodes as an absent filter).
func appendBloom(buf []byte, b *Bloom) []byte {
	if b == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.Bits)))
	buf = append(buf, b.Bits...)
	return append(buf, byte(b.K))
}

// readBloom parses one filter, returning nil for an absent one.
func readBloom(data []byte) (*Bloom, []byte, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, errors.New("tableobj: truncated bloom length")
	}
	data = data[sz:]
	if n == 0 {
		return nil, data, nil
	}
	if uint64(len(data)) < n+1 {
		return nil, nil, errors.New("tableobj: truncated bloom bits")
	}
	b := &Bloom{Bits: append([]byte(nil), data[:n]...)}
	b.K = data[n]
	if b.K == 0 {
		return nil, nil, errors.New("tableobj: bloom with zero probes")
	}
	return b, data[n+1:], nil
}
