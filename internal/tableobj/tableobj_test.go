package tableobj

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/plog"
	"streamlake/internal/pool"
	"streamlake/internal/sim"
)

type env struct {
	clock *sim.Clock
	fs    *FileStore
	cat   *Catalog
}

func newEnv(t testing.TB) *env {
	t.Helper()
	clock := sim.NewClock()
	p := pool.New("tbl", clock, sim.NVMeSSD, 8, 4<<20)
	return &env{
		clock: clock,
		fs:    NewFileStore(plog.NewManager(p, 8<<20)),
		cat:   NewCatalog(clock),
	}
}

var dpiSchema = colfile.MustSchema("url:string", "start_time:int64", "province:string")

func dpiRow(url string, ts int64, prov string) colfile.Row {
	return colfile.Row{colfile.StringValue(url), colfile.IntValue(ts), colfile.StringValue(prov)}
}

func createTable(t testing.TB, e *env, name string) *Table {
	t.Helper()
	tbl, _, err := Create(e.clock, e.fs, e.cat, TableMeta{
		Name: name, Path: "/lake/" + name, Schema: dpiSchema, PartitionColumn: "province",
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestFileStoreBasics(t *testing.T) {
	e := newEnv(t)
	cost, err := e.fs.Write("a/b/one", []byte("hello"))
	if err != nil || cost <= 0 {
		t.Fatalf("write: %v", err)
	}
	data, _, err := e.fs.Read("a/b/one")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read: %q %v", data, err)
	}
	// Overwrite replaces content and keeps one PLog.
	e.fs.Write("a/b/one", []byte("world"))
	data, _, _ = e.fs.Read("a/b/one")
	if string(data) != "world" {
		t.Fatalf("overwrite: %q", data)
	}
	e.fs.Write("a/c/two", []byte("xx"))
	paths, listCost := e.fs.List("a/b/")
	if len(paths) != 1 || paths[0] != "a/b/one" || listCost <= 0 {
		t.Fatalf("list: %v", paths)
	}
	if n, _ := e.fs.Size("a/b/one"); n != 5 {
		t.Fatalf("size: %d", n)
	}
	if e.fs.TotalBytes() != 7 || e.fs.Count() != 2 {
		t.Fatalf("totals: %d bytes %d files", e.fs.TotalBytes(), e.fs.Count())
	}
	if err := e.fs.Delete("a/b/one"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.fs.Read("a/b/one"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read deleted: %v", err)
	}
	if err := e.fs.Delete("a/b/one"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFileStoreListCostLinear(t *testing.T) {
	e := newEnv(t)
	for i := 0; i < 100; i++ {
		e.fs.Write(fmt.Sprintf("t/f%03d", i), []byte("x"))
	}
	_, c100 := e.fs.List("t/")
	e2 := newEnv(t)
	for i := 0; i < 1000; i++ {
		e2.fs.Write(fmt.Sprintf("t/f%04d", i), []byte("x"))
	}
	_, c1000 := e2.fs.List("t/")
	if c1000 < c100*8 {
		t.Fatalf("listing cost not linear: %v vs %v", c100, c1000)
	}
}

func TestCommitSnapshotCodecRoundTrip(t *testing.T) {
	f := DataFile{
		Path: "p/f1", Partition: "province=Beijing", Rows: 10, Bytes: 1000,
		Min: []colfile.Value{colfile.StringValue("a"), colfile.IntValue(1), colfile.StringValue("B")},
		Max: []colfile.Value{colfile.StringValue("z"), colfile.IntValue(9), colfile.StringValue("S")},
	}
	c := Commit{ID: 7, Timestamp: 3 * time.Second, Ops: []FileOp{{Add: true, File: f}, {Add: false, File: f}}}
	blob, err := EncodeCommit(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCommit(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 7 || got.Timestamp != 3*time.Second || len(got.Ops) != 2 {
		t.Fatalf("commit: %+v", got)
	}
	if !got.Ops[0].Add || got.Ops[1].Add || got.Ops[0].File.Path != "p/f1" {
		t.Fatalf("ops: %+v", got.Ops)
	}
	if colfile.Compare(got.Ops[0].File.Min[1], colfile.IntValue(1)) != 0 {
		t.Fatalf("stats: %+v", got.Ops[0].File.Min)
	}

	s := Snapshot{ID: 9, ParentID: 7, Timestamp: 5 * time.Second, CommitIDs: []int64{1, 7, 9},
		Files: []DataFile{f}, RowCount: 10, AddedFiles: 1, AddedRows: 10}
	sblob, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := DecodeSnapshot(sblob)
	if err != nil {
		t.Fatal(err)
	}
	if gs.ID != 9 || gs.ParentID != 7 || len(gs.CommitIDs) != 3 || len(gs.Files) != 1 || gs.RowCount != 10 {
		t.Fatalf("snapshot: %+v", gs)
	}
	if gs.Files[0].Partition != "province=Beijing" || gs.Files[0].Rows != 10 {
		t.Fatalf("snapshot file: %+v", gs.Files[0])
	}
	// Corrupt inputs rejected.
	if _, err := DecodeCommit(blob[:2]); err == nil {
		t.Fatal("truncated commit accepted")
	}
	if _, err := DecodeSnapshot(sblob[:3]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

func TestCreateOpenTable(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "dpi_logs")
	if tbl.Schema().NumFields() != 3 {
		t.Fatalf("schema: %+v", tbl.Schema())
	}
	// Creation wrote the initial snapshot and the table properties.
	if !e.fs.Exists("/lake/dpi_logs/metadata/table.properties") {
		t.Fatal("table.properties missing")
	}
	cur, _, err := tbl.Current()
	if err != nil || len(cur.Files) != 0 {
		t.Fatalf("initial snapshot: %+v %v", cur, err)
	}
	// Duplicate create fails.
	if _, _, err := Create(e.clock, e.fs, e.cat, TableMeta{Name: "dpi_logs", Path: "/x", Schema: dpiSchema}); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	// Open by name.
	opened, _, err := Open(e.clock, e.fs, e.cat, "dpi_logs")
	if err != nil || opened.Meta().Path != "/lake/dpi_logs" {
		t.Fatalf("open: %+v %v", opened.Meta(), err)
	}
	if _, _, err := Open(e.clock, e.fs, e.cat, "nope"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("open unknown: %v", err)
	}
	// Invalid schemas rejected.
	if _, _, err := Create(e.clock, e.fs, e.cat, TableMeta{Name: "bad", Path: "/b"}); !errors.Is(err, ErrSchemaInvalid) {
		t.Fatalf("empty schema: %v", err)
	}
	if _, _, err := Create(e.clock, e.fs, e.cat, TableMeta{Name: "bad2", Path: "/b", Schema: dpiSchema, PartitionColumn: "zz"}); !errors.Is(err, ErrSchemaInvalid) {
		t.Fatalf("bad partition column: %v", err)
	}
}

func TestInsertAndScan(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	x, err := tbl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	f, err := x.WriteRows([]colfile.Row{
		dpiRow("http://a", 100, "Beijing"),
		dpiRow("http://b", 200, "Beijing"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows != 2 || f.Partition != "province=Beijing" {
		t.Fatalf("data file: %+v", f)
	}
	if f.Min[1].Int != 100 || f.Max[1].Int != 200 {
		t.Fatalf("file stats: %+v %+v", f.Min, f.Max)
	}
	snap, err := x.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if snap.RowCount != 2 || snap.AddedFiles != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Read the rows back through the snapshot manifest.
	cur, _, _ := tbl.Current()
	if len(cur.Files) != 1 {
		t.Fatalf("manifest: %+v", cur.Files)
	}
	r, _, err := tbl.ReadFile(cur.Files[0])
	if err != nil {
		t.Fatal(err)
	}
	var urls []string
	r.Scan(func(row colfile.Row) bool { urls = append(urls, row[0].Str); return true })
	if len(urls) != 2 || urls[0] != "http://a" {
		t.Fatalf("rows: %v", urls)
	}
}

func TestSnapshotIsolationReadersUnaffected(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	x, _ := tbl.Begin()
	x.WriteRows([]colfile.Row{dpiRow("u1", 1, "Beijing")})
	first, _ := x.Commit()

	// Reader pins the first snapshot.
	readerView, _, err := tbl.SnapshotByID(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Writer commits more data.
	x2, _ := tbl.Begin()
	x2.WriteRows([]colfile.Row{dpiRow("u2", 2, "Shanghai")})
	if _, err := x2.Commit(); err != nil {
		t.Fatal(err)
	}

	// The reader's view is unchanged; the current view has both.
	if readerView.RowCount != 1 {
		t.Fatalf("reader view mutated: %+v", readerView)
	}
	cur, _, _ := tbl.Current()
	if cur.RowCount != 2 || len(cur.Files) != 2 {
		t.Fatalf("current: %+v", cur)
	}
}

func TestConcurrentCommitConflictAndRetry(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	// Two transactions race from the same base.
	x1, _ := tbl.Begin()
	x2, _ := tbl.Begin()
	x1.WriteRows([]colfile.Row{dpiRow("u1", 1, "Beijing")})
	x2.WriteRows([]colfile.Row{dpiRow("u2", 2, "Beijing")})
	if _, err := x1.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := x2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second commit: %v", err)
	}
	// Retry rebases and succeeds; both rows are in.
	snap, err := x2.Retry()
	if err != nil {
		t.Fatal(err)
	}
	if snap.RowCount != 2 {
		t.Fatalf("after retry: %+v", snap)
	}
}

func TestCompactionConflictFailsRetry(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	x, _ := tbl.Begin()
	x.WriteRows([]colfile.Row{dpiRow("u1", 1, "Beijing")})
	base, _ := x.Commit()
	target := base.Files[0]

	// A "compaction" stages removal of the file; a concurrent delete
	// removes it first.
	compact, _ := tbl.Begin()
	compact.RemoveFile(target)
	compact.WriteRows([]colfile.Row{dpiRow("u1", 1, "Beijing")})

	del, _ := tbl.Begin()
	del.RemoveFile(target)
	if _, err := del.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, err := compact.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("compact commit: %v", err)
	}
	if _, err := compact.Retry(); !errors.Is(err, ErrConflict) {
		t.Fatalf("compact retry should fail (file gone): %v", err)
	}
}

func TestManyConcurrentWritersAllCommit(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x, err := tbl.Begin()
			if err != nil {
				errs <- err
				return
			}
			if _, err := x.WriteRows([]colfile.Row{dpiRow(fmt.Sprintf("u%d", i), int64(i), "Beijing")}); err != nil {
				errs <- err
				return
			}
			if _, err := x.Commit(); err != nil {
				for errors.Is(err, ErrConflict) {
					_, err = x.Retry()
				}
				if err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	cur, _, _ := tbl.Current()
	if cur.RowCount != 8 || len(cur.Files) != 8 {
		t.Fatalf("after 8 writers: %+v", cur)
	}
}

func TestTimeTravel(t *testing.T) {
	e := newEnv(t)
	e.clock.Advance(time.Hour) // so history has a definite beginning > 0
	tbl := createTable(t, e, "t")
	var stamps []time.Duration
	for i := 0; i < 3; i++ {
		e.clock.Advance(time.Hour)
		x, _ := tbl.Begin()
		x.WriteRows([]colfile.Row{dpiRow(fmt.Sprintf("u%d", i), int64(i), "Beijing")})
		if _, err := x.Commit(); err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, e.clock.Now())
	}
	// As of each commit time, the table has i+1 rows.
	for i, ts := range stamps {
		s, _, err := tbl.AsOf(ts)
		if err != nil {
			t.Fatal(err)
		}
		if s.RowCount != int64(i+1) {
			t.Fatalf("AsOf(%v): %d rows, want %d", ts, s.RowCount, i+1)
		}
	}
	// Between commits, the earlier snapshot is returned.
	s, _, err := tbl.AsOf(stamps[0] + 30*time.Minute)
	if err != nil || s.RowCount != 1 {
		t.Fatalf("mid-window AsOf: %+v %v", s, err)
	}
	// Before history begins: error.
	if _, _, err := tbl.AsOf(1); err == nil {
		t.Fatal("AsOf before creation succeeded")
	}
}

func TestDropSoftRestoreHard(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	x, _ := tbl.Begin()
	x.WriteRows([]colfile.Row{dpiRow("u", 1, "Beijing")})
	x.Commit()

	if _, err := tbl.DropSoft(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(e.clock, e.fs, e.cat, "t"); !errors.Is(err, ErrTableDropped) {
		t.Fatalf("open soft-dropped: %v", err)
	}
	// Data retained.
	if e.fs.Count() == 0 {
		t.Fatal("soft drop deleted files")
	}
	// Restore brings it back with data intact.
	if _, err := tbl.Restore(); err != nil {
		t.Fatal(err)
	}
	restored, _, err := Open(e.clock, e.fs, e.cat, "t")
	if err != nil {
		t.Fatal(err)
	}
	cur, _, _ := restored.Current()
	if cur.RowCount != 1 {
		t.Fatalf("restored table: %+v", cur)
	}

	// Hard drop removes everything.
	if _, err := restored.DropHard(); err != nil {
		t.Fatal(err)
	}
	if e.fs.Count() != 0 {
		t.Fatalf("hard drop left %d files", e.fs.Count())
	}
	if _, _, err := Open(e.clock, e.fs, e.cat, "t"); !errors.Is(err, ErrUnknownTable) {
		t.Fatalf("open hard-dropped: %v", err)
	}
}

func TestAbortDeletesStagedFiles(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	before := e.fs.Count()
	x, _ := tbl.Begin()
	x.WriteRows([]colfile.Row{dpiRow("u", 1, "Beijing")})
	if e.fs.Count() != before+1 {
		t.Fatal("staged file not written")
	}
	if err := x.Abort(); err != nil {
		t.Fatal(err)
	}
	if e.fs.Count() != before {
		t.Fatal("abort left staged file")
	}
	if _, err := x.Commit(); err == nil {
		t.Fatal("commit after abort accepted")
	}
}

func TestExpireSnapshots(t *testing.T) {
	e := newEnv(t)
	tbl := createTable(t, e, "t")
	for i := 0; i < 5; i++ {
		e.clock.Advance(time.Hour)
		x, _ := tbl.Begin()
		x.WriteRows([]colfile.Row{dpiRow(fmt.Sprintf("u%d", i), int64(i), "Beijing")})
		if _, err := x.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Expire snapshots older than 3 hours ago.
	cut := e.clock.Now() - 3*time.Hour
	removed, err := tbl.ExpireSnapshots(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("nothing expired")
	}
	// Current data still fully readable.
	cur, _, _ := tbl.Current()
	if cur.RowCount != 5 {
		t.Fatalf("current after expire: %+v", cur)
	}
	for _, f := range cur.Files {
		if _, _, err := tbl.ReadFile(f); err != nil {
			t.Fatalf("live file %s unreadable: %v", f.Path, err)
		}
	}
	// Time travel beyond the cut now fails.
	if _, _, err := tbl.AsOf(time.Hour); err == nil {
		t.Fatal("expired snapshot still reachable")
	}
}

func TestDataFileOverlaps(t *testing.T) {
	f := DataFile{
		Min: []colfile.Value{colfile.IntValue(10)},
		Max: []colfile.Value{colfile.IntValue(20)},
	}
	lo, hi := colfile.IntValue(15), colfile.IntValue(25)
	if !f.Overlaps(0, &lo, &hi) {
		t.Fatal("overlapping range skipped")
	}
	lo2 := colfile.IntValue(21)
	if f.Overlaps(0, &lo2, nil) {
		t.Fatal("disjoint range kept")
	}
	if !f.Overlaps(5, &lo, &hi) { // no stats for column 5
		t.Fatal("missing stats must not skip")
	}
}

func TestCatalogList(t *testing.T) {
	e := newEnv(t)
	createTable(t, e, "b_table")
	createTable(t, e, "a_table")
	tbl := createTable(t, e, "c_table")
	tbl.DropSoft()
	got := e.cat.List()
	if len(got) != 2 || got[0] != "a_table" || got[1] != "b_table" {
		t.Fatalf("list: %v", got)
	}
}

func TestQuickManifestAlgebra(t *testing.T) {
	// Property: after any sequence of adds and removes committed one
	// transaction each, the manifest equals the model set and RowCount
	// equals the sum of file rows.
	f := func(ops []uint8) bool {
		e := newEnv(t)
		tbl := createTable(t, e, "q")
		model := map[string]int64{}
		for _, op := range ops {
			x, err := tbl.Begin()
			if err != nil {
				return false
			}
			if op%3 != 0 || len(model) == 0 {
				df, err := x.WriteRows([]colfile.Row{dpiRow(fmt.Sprintf("u%d", op), int64(op), "P")})
				if err != nil {
					return false
				}
				model[df.Path] = df.Rows
			} else {
				// Remove an arbitrary current file.
				cur, _, _ := tbl.Current()
				victim := cur.Files[int(op)%len(cur.Files)]
				x.RemoveFile(victim)
				delete(model, victim.Path)
			}
			if _, err := x.Commit(); err != nil {
				return false
			}
		}
		cur, _, _ := tbl.Current()
		if len(cur.Files) != len(model) {
			return false
		}
		var want int64
		for _, rows := range model {
			want += rows
		}
		for _, f := range cur.Files {
			if _, ok := model[f.Path]; !ok {
				return false
			}
		}
		return cur.RowCount == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
