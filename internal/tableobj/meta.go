package tableobj

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"streamlake/internal/colfile"
	"streamlake/internal/rowcodec"
)

// DataFile is the file-level metadata a commit records: path, partition,
// record counts and per-column value ranges (the statistics commits
// carry for data skipping at the file level).
type DataFile struct {
	Path      string
	Partition string
	Rows      int64
	Bytes     int64
	Min, Max  []colfile.Value // aligned with the table schema

	// Zones are optional per-row-group value ranges (zone maps): finer
	// statistics than Min/Max that let planning prune a file when no
	// single row group can satisfy a predicate, even though the file's
	// overall range overlaps it. Empty on files written without zone
	// maps enabled.
	Zones []ZoneMap
	// Blooms are optional per-column membership filters consulted by
	// equality predicates; nil entries mean no filter for that column.
	Blooms []*Bloom
}

// ZoneMap is one row group's per-column value range, aligned with the
// table schema.
type ZoneMap struct {
	Min, Max []colfile.Value
}

// Overlaps reports whether the file's value range for column c can
// intersect [lo, hi] (nil bounds are unbounded).
func (f DataFile) Overlaps(c int, lo, hi *colfile.Value) bool {
	if c < 0 || c >= len(f.Min) {
		return true // no stats for the column: cannot skip
	}
	if lo != nil && colfile.Compare(f.Max[c], *lo) < 0 {
		return false
	}
	if hi != nil && colfile.Compare(f.Min[c], *hi) > 0 {
		return false
	}
	return true
}

// FileOp is one entry in a commit: a data file added or removed.
type FileOp struct {
	Add  bool
	File DataFile
}

// Commit is the paper's commit file: file-level metadata and statistics
// recording the changes of one insert/update/delete operation.
type Commit struct {
	ID        int64
	Timestamp time.Duration
	Ops       []FileOp
}

// Snapshot is the paper's snapshot index file: the set of valid commits
// for a time period, the current complete file manifest, and operation
// log statistics (rows/files added and removed).
type Snapshot struct {
	ID           int64
	ParentID     int64
	Timestamp    time.Duration
	CommitIDs    []int64
	Files        []DataFile
	RowCount     int64
	AddedFiles   int64
	RemovedFiles int64
	AddedRows    int64
	RemovedRows  int64
}

var commitSchema = colfile.MustSchema(
	"op:string", "path:string", "partition:string", "rows:int64", "bytes:int64", "stats:string")

// statsV2Marker introduces the extended stats encoding (zone maps and
// bloom filters appended after the legacy min/max pairs). The legacy
// encoding starts with a uvarint column count, whose first byte is 0xFF
// only for a multi-byte count of 127+ columns — no real schema — so the
// marker is unambiguous. Files with no zones and no blooms keep the
// legacy encoding byte-for-byte, which keeps metadata (and replay
// digests) identical when zone maps are off.
const statsV2Marker = 0xFF

func encodeStats(f DataFile) string {
	var buf []byte
	v2 := len(f.Zones) > 0 || len(f.Blooms) > 0
	if v2 {
		buf = append(buf, statsV2Marker)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Min)))
	for i := range f.Min {
		buf = colfile.AppendValue(buf, f.Min[i])
		buf = colfile.AppendValue(buf, f.Max[i])
	}
	if !v2 {
		return string(buf)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Zones)))
	for _, z := range f.Zones {
		buf = binary.AppendUvarint(buf, uint64(len(z.Min)))
		for i := range z.Min {
			buf = colfile.AppendValue(buf, z.Min[i])
			buf = colfile.AppendValue(buf, z.Max[i])
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Blooms)))
	for _, b := range f.Blooms {
		buf = appendBloom(buf, b)
	}
	return string(buf)
}

func decodeStats(s string, f *DataFile) error {
	data := []byte(s)
	v2 := len(data) > 0 && data[0] == statsV2Marker
	if v2 {
		data = data[1:]
	}
	var err error
	f.Min, f.Max, data, err = readRange(data)
	if err != nil {
		return err
	}
	if !v2 {
		return nil
	}
	groups, sz := binary.Uvarint(data)
	if sz <= 0 {
		return errors.New("tableobj: truncated zone maps")
	}
	data = data[sz:]
	// Untrusted count: each zone costs at least one byte.
	if groups > uint64(len(data))+1 {
		return errors.New("tableobj: zone count exceeds stats size")
	}
	for i := uint64(0); i < groups; i++ {
		var z ZoneMap
		z.Min, z.Max, data, err = readRange(data)
		if err != nil {
			return err
		}
		f.Zones = append(f.Zones, z)
	}
	cols, sz := binary.Uvarint(data)
	if sz <= 0 {
		return errors.New("tableobj: truncated bloom list")
	}
	data = data[sz:]
	if cols > uint64(len(data))+1 {
		return errors.New("tableobj: bloom count exceeds stats size")
	}
	for i := uint64(0); i < cols; i++ {
		var b *Bloom
		b, data, err = readBloom(data)
		if err != nil {
			return err
		}
		f.Blooms = append(f.Blooms, b)
	}
	return nil
}

// readRange parses one count-prefixed sequence of min/max value pairs.
func readRange(data []byte) (min, max []colfile.Value, rest []byte, err error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, nil, errors.New("tableobj: truncated stats")
	}
	data = data[sz:]
	for i := uint64(0); i < n; i++ {
		var lo, hi colfile.Value
		lo, data, err = colfile.ReadValue(data)
		if err != nil {
			return nil, nil, nil, err
		}
		hi, data, err = colfile.ReadValue(data)
		if err != nil {
			return nil, nil, nil, err
		}
		min = append(min, lo)
		max = append(max, hi)
	}
	return min, max, data, nil
}

func fileToRow(op string, f DataFile) colfile.Row {
	return colfile.Row{
		colfile.StringValue(op),
		colfile.StringValue(f.Path),
		colfile.StringValue(f.Partition),
		colfile.IntValue(f.Rows),
		colfile.IntValue(f.Bytes),
		colfile.StringValue(encodeStats(f)),
	}
}

func rowToFile(r colfile.Row) (string, DataFile, error) {
	f := DataFile{
		Path:      r[1].Str,
		Partition: r[2].Str,
		Rows:      r[3].Int,
		Bytes:     r[4].Int,
	}
	if err := decodeStats(r[5].Str, &f); err != nil {
		return "", DataFile{}, err
	}
	return r[0].Str, f, nil
}

// EncodeCommit serializes a commit file.
func EncodeCommit(c Commit) ([]byte, error) {
	var hdr []byte
	hdr = binary.AppendVarint(hdr, c.ID)
	hdr = binary.AppendVarint(hdr, int64(c.Timestamp))
	rows := make([]colfile.Row, len(c.Ops))
	for i, op := range c.Ops {
		kind := "add"
		if !op.Add {
			kind = "remove"
		}
		rows[i] = fileToRow(kind, op.File)
	}
	batch, err := rowcodec.Encode(commitSchema, rows)
	if err != nil {
		return nil, err
	}
	return append(hdr, batch...), nil
}

// DecodeCommit parses a commit file.
func DecodeCommit(data []byte) (Commit, error) {
	var c Commit
	id, sz := binary.Varint(data)
	if sz <= 0 {
		return c, errors.New("tableobj: truncated commit id")
	}
	data = data[sz:]
	ts, sz := binary.Varint(data)
	if sz <= 0 {
		return c, errors.New("tableobj: truncated commit timestamp")
	}
	data = data[sz:]
	c.ID, c.Timestamp = id, time.Duration(ts)
	schema, rows, err := rowcodec.Decode(data)
	if err != nil {
		return c, err
	}
	if !schema.Equal(commitSchema) {
		return c, errors.New("tableobj: commit batch has wrong schema")
	}
	for _, r := range rows {
		kind, f, err := rowToFile(r)
		if err != nil {
			return c, err
		}
		c.Ops = append(c.Ops, FileOp{Add: kind == "add", File: f})
	}
	return c, nil
}

var snapshotFileSchema = colfile.MustSchema(
	"path:string", "partition:string", "rows:int64", "bytes:int64", "stats:string")

// EncodeSnapshot serializes a snapshot index file.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	var hdr []byte
	for _, v := range []int64{s.ID, s.ParentID, int64(s.Timestamp), s.RowCount,
		s.AddedFiles, s.RemovedFiles, s.AddedRows, s.RemovedRows} {
		hdr = binary.AppendVarint(hdr, v)
	}
	hdr = binary.AppendUvarint(hdr, uint64(len(s.CommitIDs)))
	for _, id := range s.CommitIDs {
		hdr = binary.AppendVarint(hdr, id)
	}
	rows := make([]colfile.Row, len(s.Files))
	for i, f := range s.Files {
		r := fileToRow("", f)
		rows[i] = r[1:] // drop the op column
	}
	batch, err := rowcodec.Encode(snapshotFileSchema, rows)
	if err != nil {
		return nil, err
	}
	return append(hdr, batch...), nil
}

// DecodeSnapshot parses a snapshot index file.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	read := func() (int64, error) {
		v, sz := binary.Varint(data)
		if sz <= 0 {
			return 0, errors.New("tableobj: truncated snapshot header")
		}
		data = data[sz:]
		return v, nil
	}
	fields := []*int64{&s.ID, &s.ParentID, nil, &s.RowCount, &s.AddedFiles, &s.RemovedFiles, &s.AddedRows, &s.RemovedRows}
	for i, p := range fields {
		v, err := read()
		if err != nil {
			return s, err
		}
		if i == 2 {
			s.Timestamp = time.Duration(v)
		} else {
			*p = v
		}
	}
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return s, errors.New("tableobj: truncated commit list")
	}
	data = data[sz:]
	for i := uint64(0); i < n; i++ {
		id, err := read()
		if err != nil {
			return s, err
		}
		s.CommitIDs = append(s.CommitIDs, id)
	}
	schema, rows, err := rowcodec.Decode(data)
	if err != nil {
		return s, err
	}
	if !schema.Equal(snapshotFileSchema) {
		return s, errors.New("tableobj: snapshot batch has wrong schema")
	}
	for _, r := range rows {
		full := append(colfile.Row{colfile.StringValue("")}, r...)
		_, f, err := rowToFile(full)
		if err != nil {
			return s, err
		}
		s.Files = append(s.Files, f)
	}
	return s, nil
}

// CommitPath returns the metadata path of commit id under tablePath.
func CommitPath(tablePath string, id int64) string {
	return fmt.Sprintf("%s/metadata/commits/%012d.avro", tablePath, id)
}

// SnapshotPath returns the metadata path of snapshot id under tablePath.
func SnapshotPath(tablePath string, id int64) string {
	return fmt.Sprintf("%s/metadata/snapshots/%012d.idx", tablePath, id)
}

// DataPath returns the data-file path for a partition and file id.
func DataPath(tablePath, partition string, id int64) string {
	if partition == "" {
		partition = "default"
	}
	return fmt.Sprintf("%s/data/%s/%012d.col", tablePath, partition, id)
}
